#!/usr/bin/env python3
"""Appends bench runs to a trend ledger and reports deltas across runs.

The golden checker (check_bench_golden.py) answers "is this run sane?";
this tool answers "which way are the numbers moving?". Each `append` takes
BENCH_<name>.json files produced by the bench binaries, flattens their
numeric leaves to dotted paths, and appends one JSONL line per bench to
<trend-dir>/<bench>.jsonl:

    {"run": "ci-1234", "metrics": {"mean_ns_per_pkt": 157.0, ...}}

Appending prints the delta against the previous recorded run for every
shared metric, so a regression is visible in the CI log the moment it
lands. `report` renders the last N runs of one bench (or all benches) as a
delta table for artifact browsing.

Usage:
    bench_trend.py append --trend-dir bench/trend [--run-id ID] BENCH_*.json...
    bench_trend.py report --trend-dir bench/trend [--bench fig5] [--last 10]

--run-id defaults to $GITHUB_RUN_NUMBER, then to one past the ledger's
line count. Exit status 0 = ok, 2 = usage/IO error. Deltas never fail the
run — trend data is evidence, not a gate; the goldens gate.
"""

import argparse
import json
import os
import sys


def flatten(doc, prefix=""):
    """Numeric leaves of a JSON document as {dotted.path: value}."""
    out = {}
    if isinstance(doc, dict):
        for key, sub in sorted(doc.items()):
            out.update(flatten(sub, "%s.%s" % (prefix, key) if prefix else key))
    elif isinstance(doc, list):
        for i, sub in enumerate(doc):
            out.update(flatten(sub, "%s[%d]" % (prefix, i)))
    elif isinstance(doc, (int, float)) and not isinstance(doc, bool):
        out[prefix] = doc
    return out


def load_ledger(path):
    rows = []
    try:
        with open(path) as f:
            for line in f:
                line = line.strip()
                if line:
                    rows.append(json.loads(line))
    except OSError:
        return []
    except ValueError as err:
        raise ValueError("%s: corrupt trend ledger: %s" % (path, err))
    return rows


def fmt_delta(prev, cur):
    delta = cur - prev
    if prev != 0:
        return "%+g (%+.1f%%)" % (delta, 100.0 * delta / abs(prev))
    return "%+g" % delta


def cmd_append(args):
    os.makedirs(args.trend_dir, exist_ok=True)
    for bench_path in args.bench_files:
        try:
            with open(bench_path) as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            sys.stderr.write("bench_trend: %s: %s\n" % (bench_path, err))
            return 2
        name = doc.get("bench") if isinstance(doc, dict) else None
        if not isinstance(name, str) or not name:
            sys.stderr.write("bench_trend: %s has no 'bench' name\n" % bench_path)
            return 2
        ledger_path = os.path.join(args.trend_dir, "%s.jsonl" % name)
        try:
            rows = load_ledger(ledger_path)
        except ValueError as err:
            sys.stderr.write("bench_trend: %s\n" % err)
            return 2
        run_id = args.run_id or os.environ.get("GITHUB_RUN_NUMBER") or str(len(rows) + 1)
        metrics = flatten(doc)
        with open(ledger_path, "a") as f:
            f.write(json.dumps({"run": run_id, "metrics": metrics},
                               sort_keys=True) + "\n")
        print("%s: appended run %s (%d metrics) -> %s" % (
            name, run_id, len(metrics), ledger_path))
        if rows:
            prev = rows[-1].get("metrics", {})
            moved = [(k, prev[k], v) for k, v in sorted(metrics.items())
                     if k in prev and v != prev[k]]
            for key, pv, cv in moved:
                print("  %-46s %g -> %g  %s" % (key, pv, cv, fmt_delta(pv, cv)))
            if not moved:
                print("  no shared metric moved vs run %s" % rows[-1].get("run", "?"))
    return 0


def cmd_report(args):
    try:
        names = sorted(p[:-len(".jsonl")] for p in os.listdir(args.trend_dir)
                       if p.endswith(".jsonl"))
    except OSError as err:
        sys.stderr.write("bench_trend: %s\n" % err)
        return 2
    if args.bench:
        if args.bench not in names:
            sys.stderr.write("bench_trend: no ledger for bench %r in %s (have: %s)\n" % (
                args.bench, args.trend_dir, ", ".join(names) or "none"))
            return 2
        names = [args.bench]
    if not names:
        sys.stderr.write("bench_trend: no trend ledgers in %s\n" % args.trend_dir)
        return 2
    for name in names:
        try:
            rows = load_ledger(os.path.join(args.trend_dir, "%s.jsonl" % name))
        except ValueError as err:
            sys.stderr.write("bench_trend: %s\n" % err)
            return 2
        rows = rows[-args.last:]
        print("== %s (last %d runs) ==" % (name, len(rows)))
        for i, row in enumerate(rows):
            print("run %s:" % row.get("run", "?"))
            metrics = row.get("metrics", {})
            prev = rows[i - 1].get("metrics", {}) if i > 0 else {}
            for key, value in sorted(metrics.items()):
                if key in prev and value != prev[key]:
                    print("  %-46s %g  %s" % (key, value, fmt_delta(prev[key], value)))
                else:
                    print("  %-46s %g" % (key, value))
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Track bench results across runs with per-metric deltas.")
    sub = parser.add_subparsers(dest="command")
    p_append = sub.add_parser("append", help="record BENCH_*.json files into the ledger")
    p_append.add_argument("--trend-dir", default="bench/trend")
    p_append.add_argument("--run-id", help="run label (default: $GITHUB_RUN_NUMBER, "
                                           "else the ledger line count + 1)")
    p_append.add_argument("bench_files", nargs="+", metavar="BENCH_JSON")
    p_report = sub.add_parser("report", help="print the delta table for recorded runs")
    p_report.add_argument("--trend-dir", default="bench/trend")
    p_report.add_argument("--bench", help="one bench name (default: all ledgers)")
    p_report.add_argument("--last", type=int, default=10)
    args = parser.parse_args(argv[1:])
    if args.command == "append":
        return cmd_append(args)
    if args.command == "report":
        return cmd_report(args)
    parser.print_usage(sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
