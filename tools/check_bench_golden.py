#!/usr/bin/env python3
"""Diffs a BENCH_<name>.json bench baseline against a checked-in golden.

The golden file is a JSON object:

    {
      "tolerance": 0.05,
      "expect": { ...subset of the bench JSON... }
    }

Every leaf in `expect` must exist at the same path in the bench file.
Numeric leaves must match within the relative tolerance (absolute for
values whose expectation is 0); strings must match exactly. Keys present
in the bench file but absent from `expect` are ignored, so goldens pin
only the stable quantities (saturation throughput, who-beats-whom) and
not host-speed-dependent ones.

A golden may also carry an `out_of_hash` list of fnmatch patterns over
dotted leaf paths (as printed in mismatch messages, e.g.
"$.profile.stages*.ns_per_pkt"). A leaf whose path matches is checked for
presence and JSON type only — its value is machine-dependent (wall-clock
ns from a profiled run) and deliberately stays outside the pinned
comparison, mirroring how profile exports keep wall values out of the
content hash.

Usage: check_bench_golden.py <golden.json> <bench.json> [<golden> <bench> ...]
Multiple golden/bench pairs are checked in one invocation (CI checks fig5
throughput and fig6 latency together); each pair carries its own tolerance.
Exit status 0 = all within tolerance, 1 = any mismatch, 2 = usage/IO error.
"""

import fnmatch
import json
import sys


def out_of_hash_match(path, patterns):
    return any(fnmatch.fnmatchcase(path, pat) for pat in patterns)


def compare(expect, actual, tolerance, path, errors, out_of_hash=()):
    if isinstance(expect, dict):
        if not isinstance(actual, dict):
            errors.append("%s: expected object, got %s" % (path, type(actual).__name__))
            return
        for key, sub in sorted(expect.items()):
            if key not in actual:
                errors.append("%s.%s: missing from bench output" % (path, key))
            else:
                compare(sub, actual[key], tolerance, "%s.%s" % (path, key), errors,
                        out_of_hash)
    elif isinstance(expect, list):
        if not isinstance(actual, list):
            errors.append("%s: expected array, got %s" % (path, type(actual).__name__))
            return
        if len(actual) < len(expect):
            errors.append("%s: expected >=%d entries, got %d" % (path, len(expect), len(actual)))
            return
        for i, sub in enumerate(expect):
            compare(sub, actual[i], tolerance, "%s[%d]" % (path, i), errors, out_of_hash)
    elif isinstance(expect, bool) or not isinstance(expect, (int, float)):
        if out_of_hash_match(path, out_of_hash):
            if type(actual) is not type(expect):
                errors.append("%s: out-of-hash leaf has wrong type: expected %s, got %s" %
                              (path, type(expect).__name__, type(actual).__name__))
        elif expect != actual:
            errors.append("%s: expected %r, got %r" % (path, expect, actual))
    else:
        if not isinstance(actual, (int, float)) or isinstance(actual, bool):
            errors.append("%s: expected number, got %r" % (path, actual))
            return
        if out_of_hash_match(path, out_of_hash):
            return  # present and numeric — value is machine-dependent
        if expect == 0:
            ok = abs(actual) <= tolerance
        else:
            ok = abs(actual - expect) <= tolerance * abs(expect)
        if not ok:
            errors.append("%s: expected %g +/- %g%%, got %g" %
                          (path, expect, tolerance * 100, actual))


def load_json(path, role):
    """Loads one side of a pair; raises ValueError with a role-tagged message.

    A bench file that is missing or unparseable usually means the bench
    binary crashed or was never run — that must fail the check loudly, not
    slip through as a skipped comparison.
    """
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as err:
        raise ValueError("%s file %s: %s (was the bench run?)" % (role, path, err))
    except ValueError as err:
        raise ValueError("%s file %s: unparseable JSON: %s" % (role, path, err))


def check_pair(golden_path, bench_path):
    """Returns 0 on match, 1 on mismatch, 2 on IO/parse/structure error."""
    try:
        golden = load_json(golden_path, "golden")
        bench = load_json(bench_path, "bench")
    except ValueError as err:
        sys.stderr.write("check_bench_golden: %s\n" % err)
        return 2

    expect = golden.get("expect") if isinstance(golden, dict) else None
    if not isinstance(expect, dict) or not expect:
        # A golden that pins nothing would vacuously "pass" — treat a
        # missing/empty expect block as a broken golden, not a success.
        sys.stderr.write("check_bench_golden: golden file %s has no non-empty "
                         "'expect' object\n" % golden_path)
        return 2

    tolerance = float(golden.get("tolerance", 0.05))
    out_of_hash = golden.get("out_of_hash", [])
    if not isinstance(out_of_hash, list) or any(not isinstance(p, str) for p in out_of_hash):
        sys.stderr.write("check_bench_golden: golden file %s has a malformed "
                         "'out_of_hash' list\n" % golden_path)
        return 2
    errors = []
    compare(expect, bench, tolerance, "$", errors, tuple(out_of_hash))
    if errors:
        sys.stderr.write("golden mismatch (%s vs %s, tolerance %g%%):\n" %
                         (golden_path, bench_path, tolerance * 100))
        for err in errors:
            sys.stderr.write("  %s\n" % err)
        return 1
    print("%s: within %g%% of golden" % (bench_path, tolerance * 100))
    return 0


def main(argv):
    if len(argv) < 3 or len(argv) % 2 != 1:
        sys.stderr.write(__doc__)
        return 2
    status = 0
    for i in range(1, len(argv), 2):
        status = max(status, check_pair(argv[i], argv[i + 1]))
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
