#!/usr/bin/env python3
"""Regression tests for bench_trend.py's ledger + delta semantics.

Run as a ctest: bench_trend_test.py <bench_trend.py>. Pins the contract CI
relies on: append creates one JSONL ledger per bench name, consecutive
appends surface per-metric deltas, report renders the ledger, and malformed
inputs exit 2 without touching the ledger.
"""

import json
import os
import subprocess
import sys
import tempfile


def run(script, *args, env=None):
    proc = subprocess.run([sys.executable, script] + list(args),
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
    return proc.returncode, proc.stdout.decode(), proc.stderr.decode()


def write(path, doc):
    with open(path, "w") as f:
        if isinstance(doc, str):
            f.write(doc)
        else:
            json.dump(doc, f)
    return path


def main():
    if len(sys.argv) != 2:
        sys.stderr.write("usage: bench_trend_test.py <bench_trend.py>\n")
        return 2
    script = sys.argv[1]
    failures = []
    env = {k: v for k, v in os.environ.items() if k != "GITHUB_RUN_NUMBER"}

    def check(case, ok, extra=""):
        if not ok:
            failures.append("%s %s" % (case, extra))

    with tempfile.TemporaryDirectory() as tmp:
        trend = os.path.join(tmp, "trend")
        bench1 = write(os.path.join(tmp, "BENCH_fig5.json"),
                       {"bench": "fig5", "smoke": 1,
                        "lines": [{"name": "NFS", "saturation_iops": 800.0}]})
        bench2 = write(os.path.join(tmp, "BENCH_fig5_b.json"),
                       {"bench": "fig5", "smoke": 1,
                        "lines": [{"name": "NFS", "saturation_iops": 900.0}]})

        code, out, err = run(script, "append", "--trend-dir", trend, bench1, env=env)
        check("first append exits 0", code == 0, err)
        ledger = os.path.join(trend, "fig5.jsonl")
        check("ledger created", os.path.exists(ledger))
        with open(ledger) as f:
            rows = [json.loads(line) for line in f if line.strip()]
        check("one row recorded", len(rows) == 1)
        check("numeric leaves flattened",
              rows[0]["metrics"].get("lines[0].saturation_iops") == 800.0,
              json.dumps(rows[0]))
        check("strings not recorded", "lines[0].name" not in rows[0]["metrics"])

        code, out, err = run(script, "append", "--trend-dir", trend, "--run-id", "r2",
                             bench2, env=env)
        check("second append exits 0", code == 0, err)
        check("delta printed", "800" in out and "900" in out and "+12.5%" in out, out)
        with open(ledger) as f:
            rows = [json.loads(line) for line in f if line.strip()]
        check("rows accumulate", len(rows) == 2 and rows[1]["run"] == "r2")

        code, out, err = run(script, "report", "--trend-dir", trend, "--bench", "fig5",
                             env=env)
        check("report exits 0", code == 0, err)
        check("report shows both runs", "run 1:" in out and "run r2:" in out, out)
        check("report shows delta", "+12.5%" in out, out)

        # Unchanged metrics append without noise.
        code, out, err = run(script, "append", "--trend-dir", trend, bench2, env=env)
        check("steady append exits 0", code == 0, err)
        check("steady append says so", "no shared metric moved" in out, out)

        # Failure modes: no bench name, unparseable file, missing trend dir.
        noname = write(os.path.join(tmp, "BENCH_noname.json"), {"ops": 1})
        code, out, err = run(script, "append", "--trend-dir", trend, noname, env=env)
        check("missing bench name exits 2", code == 2, "exit=%d" % code)

        bad = write(os.path.join(tmp, "BENCH_bad.json"), "{truncated")
        code, out, err = run(script, "append", "--trend-dir", trend, bad, env=env)
        check("unparseable bench exits 2", code == 2, "exit=%d" % code)

        code, out, err = run(script, "report", "--trend-dir",
                             os.path.join(tmp, "nope"), env=env)
        check("missing trend dir exits 2", code == 2, "exit=%d" % code)

        code, out, err = run(script, "report", "--trend-dir", trend, "--bench", "nope",
                             env=env)
        check("unknown bench exits 2", code == 2, "exit=%d" % code)

    if failures:
        for f in failures:
            sys.stderr.write("FAIL %s\n" % f)
        return 1
    print("bench_trend_test: ledger and delta semantics pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
