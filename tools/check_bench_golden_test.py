#!/usr/bin/env python3
"""Regression tests for check_bench_golden.py exit-status semantics.

Run as a ctest: check_bench_golden_test.py <path-to-check_bench_golden.py>.
Pins the contract CI relies on: 0 = within tolerance, 1 = mismatch, and —
the case that must never regress — 2 for a missing or unparseable
BENCH_*.json and for a golden with no non-empty expect block.
"""

import json
import os
import subprocess
import sys
import tempfile


def run(script, *args):
    proc = subprocess.run([sys.executable, script] + list(args),
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    return proc.returncode, proc.stderr.decode()


def write(path, doc):
    with open(path, "w") as f:
        if isinstance(doc, str):
            f.write(doc)
        else:
            json.dump(doc, f)
    return path


def main():
    if len(sys.argv) != 2:
        sys.stderr.write("usage: check_bench_golden_test.py <check_bench_golden.py>\n")
        return 2
    script = sys.argv[1]
    failures = []

    def expect(case, got, want, stderr_has=None, stderr=""):
        if got != want:
            failures.append("%s: exit %d, want %d" % (case, got, want))
        elif stderr_has is not None and stderr_has not in stderr:
            failures.append("%s: stderr missing %r (got: %s)" % (case, stderr_has, stderr))

    with tempfile.TemporaryDirectory() as tmp:
        golden = write(os.path.join(tmp, "golden.json"),
                       {"tolerance": 0.05, "expect": {"ops": 100}})
        bench_ok = write(os.path.join(tmp, "bench_ok.json"), {"ops": 102})
        bench_off = write(os.path.join(tmp, "bench_off.json"), {"ops": 180})
        bench_bad = write(os.path.join(tmp, "bench_bad.json"), "{truncated")
        golden_empty = write(os.path.join(tmp, "golden_empty.json"), {"tolerance": 0.05})

        code, err = run(script, golden, bench_ok)
        expect("within tolerance", code, 0)

        code, err = run(script, golden, bench_off)
        expect("out of tolerance", code, 1)

        code, err = run(script, golden, os.path.join(tmp, "BENCH_missing.json"))
        expect("missing bench", code, 2, "was the bench run?", err)

        code, err = run(script, golden, bench_bad)
        expect("unparseable bench", code, 2, "unparseable JSON", err)

        code, err = run(script, os.path.join(tmp, "no_golden.json"), bench_ok)
        expect("missing golden", code, 2)

        code, err = run(script, golden_empty, bench_ok)
        expect("golden with no expect", code, 2, "expect", err)

        # Multi-pair: the worst status wins even when a later pair is clean.
        code, err = run(script, golden, bench_bad, golden, bench_ok)
        expect("bad pair poisons multi-pair run", code, 2)

        # out_of_hash: matched leaves are presence/type-checked only, so a
        # wildly different wall-clock number passes — but a missing leaf or a
        # non-number still fails, and unmatched leaves keep full checking.
        golden_ooh = write(os.path.join(tmp, "golden_ooh.json"),
                           {"tolerance": 0.05,
                            "expect": {"ops": 100,
                                       "profile": {"stages": [{"name": "decode",
                                                               "ns_per_pkt": 0.0}]}},
                            "out_of_hash": ["$.profile.stages*.ns_per_pkt"]})
        bench_ooh = write(os.path.join(tmp, "bench_ooh.json"),
                          {"ops": 100,
                           "profile": {"stages": [{"name": "decode", "ns_per_pkt": 87.3}]}})
        code, err = run(script, golden_ooh, bench_ooh)
        expect("out_of_hash leaf ignores value", code, 0)

        bench_ooh_miss = write(os.path.join(tmp, "bench_ooh_miss.json"),
                               {"ops": 100, "profile": {"stages": [{"name": "decode"}]}})
        code, err = run(script, golden_ooh, bench_ooh_miss)
        expect("out_of_hash leaf must still exist", code, 1, "missing", err)

        bench_ooh_type = write(os.path.join(tmp, "bench_ooh_type.json"),
                               {"ops": 100,
                                "profile": {"stages": [{"name": "decode",
                                                        "ns_per_pkt": "fast"}]}})
        code, err = run(script, golden_ooh, bench_ooh_type)
        expect("out_of_hash leaf must stay numeric", code, 1, "number", err)

        bench_ooh_other = write(os.path.join(tmp, "bench_ooh_other.json"),
                                {"ops": 180,
                                 "profile": {"stages": [{"name": "decode",
                                                         "ns_per_pkt": 87.3}]}})
        code, err = run(script, golden_ooh, bench_ooh_other)
        expect("unmatched leaves keep full checking", code, 1)

        golden_ooh_bad = write(os.path.join(tmp, "golden_ooh_bad.json"),
                               {"tolerance": 0.05, "expect": {"ops": 100},
                                "out_of_hash": "not-a-list"})
        code, err = run(script, golden_ooh_bad, bench_ok)
        expect("malformed out_of_hash is a broken golden", code, 2, "out_of_hash", err)

        code, err = run(script, golden)
        expect("odd argument count", code, 2)

    if failures:
        for f in failures:
            sys.stderr.write("FAIL %s\n" % f)
        return 1
    print("check_bench_golden_test: all exit-status cases pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
