#!/usr/bin/env python3
"""Per-tenant SLO attainment report from a Slice metrics snapshot.

Input is the canonical metrics JSON written by the benches' --metrics flag
(fig5_sfs_throughput --tenants N --metrics out.json) or a flight-recorder
dump (the embedded "metrics" object is used). With the tenant plane on, the
snapshot carries:

    "tenants":  per-tenant ops/bytes by op class, latency quantiles,
                errors, bad_ops (errors + over-threshold latencies), and
                the worst-tail exemplars (trace ids)
    "slo":      the SLO parameters plus every burn-rate alert edge

The report renders, per tenant: total ops, the error-budget objective,
measured attainment (good ops / total ops), budget consumption, tail
latency per op class, burn/clear edges, and the exemplar trace ids that
link each violation to the tracing pillar (resolve them with
slice_inspect.py --trace-id N --join-trace trace.json).

Usage:
    slice_slo_report.py metrics.json              # all tenants
    slice_slo_report.py flight.json --tenant 2    # one tenant
    slice_slo_report.py metrics.json --json       # machine-readable

Exit status 0 = report printed, 1 = no tenant plane in the snapshot,
2 = usage/IO error.
"""

import argparse
import json
import sys


def load_snapshot(path):
    with open(path) as f:
        doc = json.load(f)
    # Accept either a bare metrics snapshot or a flight dump wrapping one.
    if "tenants" not in doc and "metrics" in doc:
        doc = doc["metrics"]
    return doc


def fmt_ns(ns):
    ns = int(ns)
    if ns >= 1000000:
        return "%.2fms" % (ns / 1e6)
    if ns >= 1000:
        return "%.1fus" % (ns / 1e3)
    return "%dns" % ns


def tenant_report(tenant, data, slo):
    ops = data.get("ops", {})
    total = sum(int(v) for v in ops.values())
    bad = int(data.get("bad_ops", 0))
    good = total - bad
    report = {
        "tenant": int(tenant),
        "total_ops": total,
        "bad_ops": bad,
        "errors": int(data.get("errors", 0)),
        "ops": {k: int(v) for k, v in ops.items() if int(v) > 0},
        "bytes": {k: int(v) for k, v in data.get("bytes", {}).items() if int(v) > 0},
        "attainment": (good / total) if total else None,
        "exemplars": [
            {"trace_id": int(ex["trace_id"]), "latency_ns": int(ex["latency"]),
             "class": ex.get("class", "?"), "at_ns": int(ex["at"])}
            for ex in data.get("exemplars", [])
        ],
        "tail_latency": {},
    }
    for cls, hist in data.get("latency", {}).items():
        if int(hist.get("count", 0)) > 0:
            report["tail_latency"][cls] = {
                "count": int(hist["count"]),
                "p50_ns": int(hist["p50"]),
                "p95_ns": int(hist["p95"]),
                "p99_ns": int(hist["p99"]),
                "max_ns": int(hist["max"]),
            }
    if slo:
        budget_ppm = int(slo.get("budget_ppm", 0))
        report["objective"] = 1.0 - budget_ppm / 1e6
        if total and budget_ppm:
            # Fraction of the error budget this run consumed (1.0 = spent).
            report["budget_consumed"] = (bad / total) / (budget_ppm / 1e6)
        report["alerts"] = [
            {"at_ns": int(a["at"]), "raise": bool(a["raise"]),
             "fast_milli": int(a["fast"]), "slow_milli": int(a["slow"]),
             "trace_id": int(a["trace_id"])}
            for a in slo.get("alerts", []) if int(a.get("tenant", 0)) == int(tenant)
        ]
    return report


def print_report(report, slo):
    t = report["tenant"]
    print("tenant %d" % t)
    print("  ops: %d total, %d bad, %d errors" %
          (report["total_ops"], report["bad_ops"], report["errors"]))
    if report["ops"]:
        print("  by class: " + "  ".join(
            "%s=%d" % (k, v) for k, v in sorted(report["ops"].items())))
    if report.get("attainment") is not None:
        line = "  attainment: %.4f%%" % (100.0 * report["attainment"])
        if "objective" in report:
            met = report["attainment"] >= report["objective"]
            line += "  objective: %.4f%%  [%s]" % (100.0 * report["objective"],
                                                   "MET" if met else "MISSED")
        if "budget_consumed" in report:
            line += "  budget consumed: %.0f%%" % (100.0 * report["budget_consumed"])
        print(line)
    for cls, tail in sorted(report["tail_latency"].items()):
        print("  latency %-5s n=%-6d p50=%-10s p95=%-10s p99=%-10s max=%s" %
              (cls, tail["count"], fmt_ns(tail["p50_ns"]), fmt_ns(tail["p95_ns"]),
               fmt_ns(tail["p99_ns"]), fmt_ns(tail["max_ns"])))
    for alert in report.get("alerts", []):
        print("  %s at %s: fast burn %.2fx, slow %.2fx, exemplar trace %d" %
              ("SLO BURN " if alert["raise"] else "slo clear",
               fmt_ns(alert["at_ns"]), alert["fast_milli"] / 1000.0,
               alert["slow_milli"] / 1000.0, alert["trace_id"]))
    for ex in report["exemplars"]:
        print("  exemplar trace %d: %s %s at %s" %
              (ex["trace_id"], ex["class"], fmt_ns(ex["latency_ns"]), fmt_ns(ex["at_ns"])))


def main(argv):
    parser = argparse.ArgumentParser(
        description="Per-tenant SLO attainment from a Slice metrics snapshot.")
    parser.add_argument("snapshot", help="metrics JSON or flight dump")
    parser.add_argument("--tenant", type=int, help="report only this tenant")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the report as JSON instead of text")
    args = parser.parse_args(argv[1:])

    try:
        doc = load_snapshot(args.snapshot)
    except (OSError, ValueError) as err:
        sys.stderr.write("slice_slo_report: %s\n" % err)
        return 2

    tenants = doc.get("tenants", {})
    if not tenants:
        sys.stderr.write("slice_slo_report: no tenant plane in %s "
                         "(was the run tenanted?)\n" % args.snapshot)
        return 1
    slo = doc.get("slo", {})

    reports = []
    for tenant in sorted(tenants, key=int):
        if args.tenant is not None and int(tenant) != args.tenant:
            continue
        reports.append(tenant_report(tenant, tenants[tenant], slo))
    if not reports:
        sys.stderr.write("slice_slo_report: tenant %d not in snapshot\n" % args.tenant)
        return 1

    if args.as_json:
        out = {"slo": {k: v for k, v in slo.items() if k != "alerts"},
               "tenants": reports}
        json.dump(out, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0

    if slo:
        print("SLO: error budget %dppm, latency threshold %s, burn threshold %.1fx "
              "(fast %d / slow %d windows)" %
              (int(slo.get("budget_ppm", 0)), fmt_ns(slo.get("latency_threshold", 0)),
               int(slo.get("burn_threshold_milli", 0)) / 1000.0,
               int(slo.get("fast_windows", 0)), int(slo.get("slow_windows", 0))))
        print()
    for report in reports:
        print_report(report, slo)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
