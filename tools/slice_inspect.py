#!/usr/bin/env python3
"""Offline inspector for Slice flight-recorder dumps.

A flight dump (Ensemble::DumpFlightRecorder, bench --flight-dump, or the
automatic dump on watchdog alert / teardown) is canonical JSON:

    {"flight": {"reason", "at", "recorded", "evicted", "events": [...]},
     "inflight_traces": [...],
     "metrics": {...}}            # present when the metrics plane was on

Each event carries sim-time ns ("at"), a global sequence number, the
recording host (dotted quad), severity, category, a stable numeric code
plus symbolic name, an optional short detail tag, an optional trace id
("trace") correlating it with the end-to-end tracing pillar, and optional
small integer args.

This tool filters and pretty-prints the merged sim-time-ordered event
stream, and can join a chrome://tracing export (fig6_trace.json,
e2e_failover_trace.json) into the same timeline: spans whose "tid" matches
a selected trace id appear inline, so one invocation shows WHY (events)
and WHERE TIME WENT (spans) for the same request or failure episode.

Examples:
    slice_inspect.py dump.json                        # everything
    slice_inspect.py dump.json --sev warn             # warn and above
    slice_inspect.py dump.json --cat mgmt,failover    # categories
    slice_inspect.py dump.json --host 10.0.0.3        # one host
    slice_inspect.py dump.json --since 1.2s --until 1.8s
    slice_inspect.py dump.json --trace-id 1234        # one causal trail
    slice_inspect.py dump.json --trace-id 1234 --join-trace trace.json
    slice_inspect.py dump.json --summary              # counts only
    slice_inspect.py dump.json --profile              # profiler section
    slice_inspect.py fig5_profile.json --profile --top 5

--profile renders the profiler pillar: the per-host sim-time utilization
ledger (cpu/queue/disk/wire ns plus attribution coverage) and the top-N
wall-clock scopes ranked by exclusive ns. It accepts either a flight dump
whose run had the profiler on (the merged "profile" section) or a
standalone {"profile": ...} export (bench --profile output).

Exit status 0 = printed something, 1 = no events matched, 2 = usage error.
"""

import argparse
import json
import os
import sys

SEV_ORDER = {"debug": 0, "info": 1, "warn": 2, "error": 3}


def load_code_table(explicit_path, dump_path):
    """name -> numeric code mapping from event_codes.json.

    The table is generated at build time (tools/dump_event_codes, expanded
    from the SLICE_EVENT_CODES X-macro, so it cannot drift from the C++
    enum). Search order: --codes-file, $SLICE_EVENT_CODES, next to the
    dump, next to this script, ./event_codes.json. Returns {} when no table
    is found — numeric codes keep working without one.
    """
    candidates = []
    if explicit_path:
        candidates.append(explicit_path)
    env = os.environ.get("SLICE_EVENT_CODES")
    if env:
        candidates.append(env)
    if dump_path:
        candidates.append(os.path.join(os.path.dirname(os.path.abspath(dump_path)),
                                       "event_codes.json"))
    candidates.append(os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                   "event_codes.json"))
    candidates.append("event_codes.json")
    for path in candidates:
        try:
            with open(path) as f:
                doc = json.load(f)
        except (OSError, ValueError):
            if path == explicit_path:
                raise
            continue
        return {row["name"]: int(row["code"]) for row in doc.get("event_codes", [])}
    return {}


def parse_codes(text, table):
    """Comma-separated numeric codes and/or symbolic names -> set of ints."""
    codes = set()
    unknown = []
    for tok in text.split(","):
        tok = tok.strip()
        if not tok:
            continue
        try:
            codes.add(int(tok))
        except ValueError:
            if tok in table:
                codes.add(table[tok])
            else:
                unknown.append(tok)
    if unknown:
        hint = ("no event_codes.json found; symbolic names need the table "
                "(build tools/dump_event_codes or pass --codes-file)"
                if not table else "known names: " + ", ".join(sorted(table)))
        raise ValueError("unknown event code(s) %s: %s" % (",".join(unknown), hint))
    return codes


def parse_time(text):
    """'1.5s', '200ms', '3us' or raw nanoseconds -> ns int."""
    text = text.strip()
    for suffix, mult in (("ms", 10**6), ("us", 10**3), ("ns", 1), ("s", 10**9)):
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * mult)
    return int(text)


def fmt_time(ns):
    return "%.6fs" % (ns / 1e9)


def load_dump(path):
    with open(path) as f:
        doc = json.load(f)
    if "flight" not in doc or "events" not in doc.get("flight", {}):
        raise ValueError("%s: not a flight-recorder dump (no flight.events)" % path)
    return doc


def load_trace_spans(path, trace_ids):
    """Chrome trace-event JSON -> rows shaped like events for the merge.

    Only spans whose tid is in `trace_ids` are joined (joining a full bench
    trace would drown the events); pass trace_ids=None to join everything.
    """
    with open(path) as f:
        doc = json.load(f)
    rows = []
    for ev in doc.get("traceEvents", []):
        tid = ev.get("tid", 0)
        if trace_ids is not None and tid not in trace_ids:
            continue
        start_ns = int(float(ev.get("ts", 0)) * 1000)
        dur_us = ev.get("dur")
        # pid is the host's NetAddr; render it dotted-quad like event hosts.
        pid = ev.get("pid")
        host = ("%d.%d.%d.%d" % ((pid >> 24) & 0xFF, (pid >> 16) & 0xFF,
                                 (pid >> 8) & 0xFF, pid & 0xFF)
                if isinstance(pid, int) else str(pid))
        rows.append({
            "at": start_ns,
            "kind": "span" if ev.get("ph") == "X" else "mark",
            "host": host,
            "name": ev.get("name", "?"),
            "cat": ev.get("cat", "?"),
            "trace": tid,
            "dur_ns": int(float(dur_us) * 1000) if dur_us is not None else None,
        })
    return rows


def event_matches(ev, opts):
    if opts.host and ev.get("host") != opts.host:
        return False
    if opts.min_sev is not None and SEV_ORDER.get(ev.get("sev", "info"), 1) < opts.min_sev:
        return False
    if opts.cats and ev.get("cat") not in opts.cats:
        return False
    if opts.codes and ev.get("code") not in opts.codes:
        return False
    if opts.since is not None and ev.get("at", 0) < opts.since:
        return False
    if opts.until is not None and ev.get("at", 0) > opts.until:
        return False
    if opts.trace_ids is not None and ev.get("trace", 0) not in opts.trace_ids:
        return False
    if opts.tenant is not None:
        # Tenant attribution rides in the event args ({"tenant": N}, the SLO
        # engine's slo_burn/slo_ok) or in a "tenantN" detail tag.
        args = ev.get("args", {})
        if args.get("tenant") != opts.tenant and ev.get("detail") != "tenant%d" % opts.tenant:
            return False
    return True


def fmt_event(ev):
    args = ev.get("args", {})
    argstr = " ".join("%s=%s" % (k, v) for k, v in args.items())
    parts = [
        "%-12s" % fmt_time(ev.get("at", 0)),
        "%-11s" % ev.get("host", "?"),
        "%-5s" % ev.get("sev", "?"),
        "%-8s" % ev.get("cat", "?"),
        "%-22s" % ev.get("name", ev.get("code", "?")),
    ]
    tail = []
    if ev.get("detail"):
        tail.append(ev["detail"])
    if argstr:
        tail.append(argstr)
    if ev.get("trace"):
        tail.append("trace=%d" % ev["trace"])
    return "  ".join(parts) + ("  " + "  ".join(tail) if tail else "")


def fmt_span(row):
    parts = [
        "%-12s" % fmt_time(row["at"]),
        "%-11s" % row["host"],
        "%-5s" % ("span" if row["kind"] == "span" else "mark"),
        "%-8s" % row["cat"],
        "%-22s" % row["name"],
    ]
    tail = ["trace=%d" % row["trace"]]
    if row["dur_ns"] is not None:
        tail.append("dur=%.3fms" % (row["dur_ns"] / 1e6))
    return "  ".join(parts) + "  " + "  ".join(tail)


def print_summary(events, flight):
    by_sev, by_cat, by_code = {}, {}, {}
    for ev in events:
        by_sev[ev.get("sev", "?")] = by_sev.get(ev.get("sev", "?"), 0) + 1
        by_cat[ev.get("cat", "?")] = by_cat.get(ev.get("cat", "?"), 0) + 1
        name = ev.get("name", str(ev.get("code", "?")))
        by_code[name] = by_code.get(name, 0) + 1
    print("reason=%s  at=%s  recorded=%d  evicted=%d  shown=%d" % (
        flight.get("reason", "?"), fmt_time(flight.get("at", 0)),
        flight.get("recorded", 0), flight.get("evicted", 0), len(events)))
    print("by severity: " + "  ".join(
        "%s=%d" % (s, by_sev[s]) for s in ("debug", "info", "warn", "error") if s in by_sev))
    print("by category: " + "  ".join(
        "%s=%d" % (c, n) for c, n in sorted(by_cat.items())))
    print("by code:")
    for name, n in sorted(by_code.items(), key=lambda kv: -kv[1]):
        print("  %6d  %s" % (n, name))


def print_profile(profile, top):
    """Renders a {"sim": ..., "wall": ...} profile object; returns exit status."""
    printed = False
    sim = profile.get("sim", {})
    hosts = sim.get("hosts", [])
    if hosts:
        printed = True
        print("sim-time utilization ledger (ns):")
        print("%-11s %14s %14s %14s %14s %9s" % (
            "host", "cpu", "queue", "disk", "wire", "coverage"))
        for h in hosts:
            print("%-11s %14d %14d %14d %14d %8.2f%%" % (
                h.get("host", "?"), h.get("cpu", 0), h.get("queue", 0),
                h.get("disk", 0), h.get("wire", 0), h.get("coverage_bp", 0) / 100.0))
        total = sim.get("total", {})
        if total:
            print("%-11s %14d %14d %14d %14d" % (
                "total", total.get("cpu", 0), total.get("queue", 0),
                total.get("disk", 0), total.get("wire", 0)))
    wall = profile.get("wall", {})
    scopes = sorted(wall.get("scopes", []),
                    key=lambda s: (-s.get("excl_ns", 0), s.get("name", "")))
    if scopes:
        printed = True
        total_excl = sum(s.get("excl_ns", 0) for s in scopes) or 1
        if hosts:
            print()
        print("top %d wall-clock scopes by exclusive ns:" % min(top, len(scopes)))
        print("%-22s %12s %14s %14s %7s" % ("scope", "count", "incl_ns", "excl_ns", "excl%"))
        for s in scopes[:top]:
            print("%-22s %12d %14d %14d %6.1f%%" % (
                s.get("name", "?"), s.get("count", 0), s.get("incl_ns", 0),
                s.get("excl_ns", 0), 100.0 * s.get("excl_ns", 0) / total_excl))
        dropped = wall.get("dropped", 0)
        if dropped:
            print("dropped scopes (stack overflow): %d" % dropped)
    if not printed:
        print("(empty profile)")
        return 1
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Filter and pretty-print Slice flight-recorder dumps.")
    parser.add_argument("dump", nargs="?",
                        help="flight dump JSON (e.g. e2e_failover_flight.json)")
    parser.add_argument("--host", help="only events recorded on this host (dotted quad)")
    parser.add_argument("--sev", help="minimum severity: debug|info|warn|error")
    parser.add_argument("--cat", help="comma-separated categories (route,mgmt,failover,...)")
    parser.add_argument("--code", help="comma-separated event codes, numeric or "
                                       "symbolic (e.g. node_dead,211)")
    parser.add_argument("--codes-file", metavar="JSON",
                        help="event_codes.json path (default: $SLICE_EVENT_CODES, "
                             "next to the dump, next to this script)")
    parser.add_argument("--list-codes", action="store_true",
                        help="print the known code table and exit")
    parser.add_argument("--since", help="window start (e.g. 1.5s, 200ms, or raw ns)")
    parser.add_argument("--until", help="window end")
    parser.add_argument("--trace-id", help="comma-separated trace ids: print those causal trails")
    parser.add_argument("--tenant", type=int,
                        help="only events attributed to this tenant (SLO burn/clear "
                             "edges and any event carrying a tenant arg or tag)")
    parser.add_argument("--join-trace", metavar="TRACE_JSON",
                        help="chrome://tracing export to merge into the timeline "
                             "(spans matching --trace-id, or all spans without it)")
    parser.add_argument("--summary", action="store_true",
                        help="print counts by severity/category/code instead of rows")
    parser.add_argument("--profile", action="store_true",
                        help="print the profiler section (sim-time ledger + top wall-clock "
                             "scopes) from a flight dump or a standalone profile JSON")
    parser.add_argument("--top", type=int, default=10,
                        help="scopes shown with --profile (default 10)")
    args = parser.parse_args(argv[1:])

    try:
        code_table = load_code_table(args.codes_file, args.dump)
    except (OSError, ValueError) as err:
        sys.stderr.write("slice_inspect: %s\n" % err)
        return 2

    if args.list_codes:
        if not code_table:
            sys.stderr.write("slice_inspect: no event_codes.json found "
                             "(build tools/dump_event_codes or pass --codes-file)\n")
            return 2
        for name, code in sorted(code_table.items(), key=lambda kv: kv[1]):
            print("%5d  %s" % (code, name))
        return 0

    if not args.dump:
        sys.stderr.write("slice_inspect: a flight dump path is required\n")
        return 2

    if args.profile:
        # A profiled flight dump carries "profile" at top level; the bench
        # --profile artifact IS a bare {"profile": ...} document.
        try:
            with open(args.dump) as f:
                doc = json.load(f)
        except (OSError, ValueError) as err:
            sys.stderr.write("slice_inspect: %s\n" % err)
            return 2
        profile = doc.get("profile")
        if not isinstance(profile, dict):
            sys.stderr.write("slice_inspect: %s has no profile section (was the run "
                             "profiled?)\n" % args.dump)
            return 2
        return print_profile(profile, args.top)

    try:
        doc = load_dump(args.dump)
    except (OSError, ValueError) as err:
        sys.stderr.write("slice_inspect: %s\n" % err)
        return 2

    class Opts(object):
        pass

    opts = Opts()
    opts.host = args.host
    opts.min_sev = None
    if args.sev:
        if args.sev not in SEV_ORDER:
            sys.stderr.write("slice_inspect: unknown severity %r\n" % args.sev)
            return 2
        opts.min_sev = SEV_ORDER[args.sev]
    opts.cats = set(args.cat.split(",")) if args.cat else None
    opts.codes = None
    if args.code:
        try:
            opts.codes = parse_codes(args.code, code_table)
        except ValueError as err:
            sys.stderr.write("slice_inspect: %s\n" % err)
            return 2
    try:
        opts.since = parse_time(args.since) if args.since else None
        opts.until = parse_time(args.until) if args.until else None
    except ValueError as err:
        sys.stderr.write("slice_inspect: bad time: %s\n" % err)
        return 2
    opts.trace_ids = (set(int(t) for t in args.trace_id.split(","))
                      if args.trace_id else None)
    opts.tenant = args.tenant

    flight = doc["flight"]
    events = [ev for ev in flight["events"] if event_matches(ev, opts)]

    if args.summary:
        print_summary(events, flight)
        return 0 if events else 1

    rows = [("e", ev["at"], ev.get("seq", 0), ev) for ev in events]
    if args.join_trace:
        try:
            spans = load_trace_spans(args.join_trace, opts.trace_ids)
        except (OSError, ValueError) as err:
            sys.stderr.write("slice_inspect: %s\n" % err)
            return 2
        rows.extend(("s", row["at"], -1, row) for row in spans)
    rows.sort(key=lambda r: (r[1], r[0], r[2]))

    print("flight: reason=%s at=%s recorded=%d evicted=%d" % (
        flight.get("reason", "?"), fmt_time(flight.get("at", 0)),
        flight.get("recorded", 0), flight.get("evicted", 0)))
    inflight = doc.get("inflight_traces", [])
    if inflight:
        print("in-flight traces at dump: %s" % ", ".join(str(t) for t in inflight))
    print()
    for kind, _, _, row in rows:
        print(fmt_event(row) if kind == "e" else fmt_span(row))
    if not rows:
        print("(no events matched)")
        return 1
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
