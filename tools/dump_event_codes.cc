// Emits the event code→name table as canonical JSON (to stdout, or to the
// path in argv[1]). The table is expanded from the SLICE_EVENT_CODES X-macro
// in src/obs/eventlog.h, so it can never drift from the enum; the build
// runs this to produce event_codes.json, which tools/slice_inspect.py uses
// to resolve symbolic --code names.
#include <cstdio>
#include <string>

#include "src/obs/eventlog.h"

int main(int argc, char** argv) {
  const std::string json = slice::obs::EventCodeTableJson();
  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "dump_event_codes: cannot open %s\n", argv[1]);
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    return 0;
  }
  std::fwrite(json.data(), 1, json.size(), stdout);
  return 0;
}
