#!/usr/bin/env python3
"""Regression tests for slice_inspect.py's symbolic event-code support.

Run as a ctest: slice_inspect_test.py <slice_inspect.py> <event_codes.json>.
The table is the build-generated one (tools/dump_event_codes), so this also
proves the X-macro → JSON → inspector chain end to end: a code added to
SLICE_EVENT_CODES in src/obs/eventlog.h resolves by name here with no
further edits.
"""

import json
import os
import subprocess
import sys
import tempfile


def run(script, *args, env=None):
    proc = subprocess.run([sys.executable, script] + list(args),
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
    return proc.returncode, proc.stdout.decode(), proc.stderr.decode()


def main():
    if len(sys.argv) != 3:
        sys.stderr.write("usage: slice_inspect_test.py <slice_inspect.py> <event_codes.json>\n")
        return 2
    script, codes = sys.argv[1], sys.argv[2]
    failures = []

    def check(case, ok, extra=""):
        if not ok:
            failures.append("%s %s" % (case, extra))

    with open(codes) as f:
        table = {row["name"]: row["code"] for row in json.load(f)["event_codes"]}
    check("table has chaos codes", "fault_inject" in table and "node_dead" in table)
    check("table has slo codes", "slo_burn" in table and "slo_ok" in table)

    with tempfile.TemporaryDirectory() as tmp:
        dump = os.path.join(tmp, "dump.json")
        with open(dump, "w") as f:
            json.dump({"flight": {"reason": "test", "at": 0, "recorded": 2, "evicted": 0,
                                  "events": [
                                      {"at": 1000, "seq": 0, "host": "10.0.0.1",
                                       "sev": "error", "cat": "mgmt",
                                       "code": table["node_dead"], "name": "node_dead",
                                       "detail": "storage", "args": {"node": 3}},
                                      {"at": 2000, "seq": 1, "host": "10.0.0.1",
                                       "sev": "info", "cat": "route",
                                       "code": table["route_decision"],
                                       "name": "route_decision"},
                                      {"at": 3000, "seq": 2, "host": "10.0.5.253",
                                       "sev": "error", "cat": "alert",
                                       "code": table["slo_burn"], "name": "slo_burn",
                                       "detail": "tenant1", "trace": 42,
                                       "args": {"tenant": 1, "fast": 1400, "slow": 1100}},
                                      {"at": 4000, "seq": 3, "host": "10.0.5.253",
                                       "sev": "info", "cat": "alert",
                                       "code": table["slo_ok"], "name": "slo_ok",
                                       "detail": "tenant2",
                                       "args": {"tenant": 2, "fast": 0, "slow": 900}},
                                  ]}}, f)

        code, out, err = run(script, "--list-codes", "--codes-file", codes)
        check("--list-codes exits 0", code == 0, err)
        check("--list-codes prints node_dead", "node_dead" in out)

        code, out, err = run(script, dump, "--code", "node_dead", "--codes-file", codes)
        check("symbolic --code exits 0", code == 0, err)
        check("symbolic --code filters", "node_dead" in out and "route_decision" not in out)

        numeric = str(table["route_decision"])
        code, out, err = run(script, dump, "--code", "node_dead," + numeric,
                             "--codes-file", codes)
        check("mixed symbolic+numeric", code == 0 and "route_decision" in out, err)

        code, out, err = run(script, dump, "--code", "no_such_code", "--codes-file", codes)
        check("unknown name exits 2", code == 2, "exit=%d" % code)
        check("unknown name explains", "unknown event code" in err, err)

        code, out, err = run(script, dump, "--code", "fault_inject", "--codes-file", codes)
        check("no matches exits 1", code == 1, "exit=%d" % code)

        # SLO codes resolve symbolically straight from the X-macro table.
        code, out, err = run(script, dump, "--code", "slo_burn,slo_ok",
                             "--codes-file", codes)
        check("slo codes filter", code == 0 and "slo_burn" in out and "slo_ok" in out, err)
        check("slo codes exclude rest", "node_dead" not in out)

        # --tenant keeps only that tenant's attributed events.
        code, out, err = run(script, dump, "--tenant", "1", "--codes-file", codes)
        check("--tenant exits 0", code == 0, err)
        check("--tenant keeps tenant 1", "slo_burn" in out)
        check("--tenant drops tenant 2", "slo_ok" not in out)
        check("--tenant drops untenanted", "node_dead" not in out)

        # Table discovery next to the dump (no --codes-file).
        with open(codes) as src, open(os.path.join(tmp, "event_codes.json"), "w") as dst:
            dst.write(src.read())
        env = {k: v for k, v in os.environ.items() if k != "SLICE_EVENT_CODES"}
        code, out, err = run(script, dump, "--code", "node_dead", env=env)
        check("table found next to dump", code == 0 and "node_dead" in out, err)

    if failures:
        for f in failures:
            sys.stderr.write("FAIL %s\n" % f)
        return 1
    print("slice_inspect_test: symbolic code resolution passes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
