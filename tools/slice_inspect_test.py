#!/usr/bin/env python3
"""Regression tests for slice_inspect.py's symbolic event-code support.

Run as a ctest: slice_inspect_test.py <slice_inspect.py> <event_codes.json>.
The table is the build-generated one (tools/dump_event_codes), so this also
proves the X-macro → JSON → inspector chain end to end: a code added to
SLICE_EVENT_CODES in src/obs/eventlog.h resolves by name here with no
further edits.
"""

import json
import os
import subprocess
import sys
import tempfile


def run(script, *args, env=None):
    proc = subprocess.run([sys.executable, script] + list(args),
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
    return proc.returncode, proc.stdout.decode(), proc.stderr.decode()


def main():
    if len(sys.argv) != 3:
        sys.stderr.write("usage: slice_inspect_test.py <slice_inspect.py> <event_codes.json>\n")
        return 2
    script, codes = sys.argv[1], sys.argv[2]
    failures = []

    def check(case, ok, extra=""):
        if not ok:
            failures.append("%s %s" % (case, extra))

    with open(codes) as f:
        table = {row["name"]: row["code"] for row in json.load(f)["event_codes"]}
    check("table has chaos codes", "fault_inject" in table and "node_dead" in table)
    check("table has slo codes", "slo_burn" in table and "slo_ok" in table)

    with tempfile.TemporaryDirectory() as tmp:
        dump = os.path.join(tmp, "dump.json")
        with open(dump, "w") as f:
            json.dump({"flight": {"reason": "test", "at": 0, "recorded": 2, "evicted": 0,
                                  "events": [
                                      {"at": 1000, "seq": 0, "host": "10.0.0.1",
                                       "sev": "error", "cat": "mgmt",
                                       "code": table["node_dead"], "name": "node_dead",
                                       "detail": "storage", "args": {"node": 3}},
                                      {"at": 2000, "seq": 1, "host": "10.0.0.1",
                                       "sev": "info", "cat": "route",
                                       "code": table["route_decision"],
                                       "name": "route_decision"},
                                      {"at": 3000, "seq": 2, "host": "10.0.5.253",
                                       "sev": "error", "cat": "alert",
                                       "code": table["slo_burn"], "name": "slo_burn",
                                       "detail": "tenant1", "trace": 42,
                                       "args": {"tenant": 1, "fast": 1400, "slow": 1100}},
                                      {"at": 4000, "seq": 3, "host": "10.0.5.253",
                                       "sev": "info", "cat": "alert",
                                       "code": table["slo_ok"], "name": "slo_ok",
                                       "detail": "tenant2",
                                       "args": {"tenant": 2, "fast": 0, "slow": 900}},
                                  ]}}, f)

        code, out, err = run(script, "--list-codes", "--codes-file", codes)
        check("--list-codes exits 0", code == 0, err)
        check("--list-codes prints node_dead", "node_dead" in out)

        code, out, err = run(script, dump, "--code", "node_dead", "--codes-file", codes)
        check("symbolic --code exits 0", code == 0, err)
        check("symbolic --code filters", "node_dead" in out and "route_decision" not in out)

        numeric = str(table["route_decision"])
        code, out, err = run(script, dump, "--code", "node_dead," + numeric,
                             "--codes-file", codes)
        check("mixed symbolic+numeric", code == 0 and "route_decision" in out, err)

        code, out, err = run(script, dump, "--code", "no_such_code", "--codes-file", codes)
        check("unknown name exits 2", code == 2, "exit=%d" % code)
        check("unknown name explains", "unknown event code" in err, err)

        code, out, err = run(script, dump, "--code", "fault_inject", "--codes-file", codes)
        check("no matches exits 1", code == 1, "exit=%d" % code)

        # SLO codes resolve symbolically straight from the X-macro table.
        code, out, err = run(script, dump, "--code", "slo_burn,slo_ok",
                             "--codes-file", codes)
        check("slo codes filter", code == 0 and "slo_burn" in out and "slo_ok" in out, err)
        check("slo codes exclude rest", "node_dead" not in out)

        # --tenant keeps only that tenant's attributed events.
        code, out, err = run(script, dump, "--tenant", "1", "--codes-file", codes)
        check("--tenant exits 0", code == 0, err)
        check("--tenant keeps tenant 1", "slo_burn" in out)
        check("--tenant drops tenant 2", "slo_ok" not in out)
        check("--tenant drops untenanted", "node_dead" not in out)

        # --profile renders the profiler section: standalone {"profile": ...}
        # export (bench --profile artifact) and a flight dump both work.
        profile_doc = {"profile": {
            "sim": {"hosts": [
                {"host": "10.0.3.0", "cpu": 5000, "queue": 700, "disk": 90000,
                 "wire": 2000, "attributed": 97000, "busy": 97500,
                 "coverage_bp": 9948},
                {"host": "10.0.9.0", "cpu": 3000, "queue": 0, "disk": 0,
                 "wire": 1000, "attributed": 4000, "busy": 4000,
                 "coverage_bp": 10000}],
                "total": {"cpu": 8000, "queue": 700, "disk": 90000, "wire": 3000}},
            "wall": {"dropped": 0, "scopes": [
                {"name": "sim.dispatch", "count": 900, "incl_ns": 50000, "excl_ns": 20000},
                {"name": "uproxy.decode", "count": 400, "incl_ns": 9000, "excl_ns": 9000},
                {"name": "rpc.dispatch", "count": 300, "incl_ns": 21000, "excl_ns": 12000}],
                "stacks": []}}}
        profile_path = os.path.join(tmp, "fig5_profile.json")
        with open(profile_path, "w") as f:
            json.dump(profile_doc, f)
        code, out, err = run(script, profile_path, "--profile", "--codes-file", codes)
        check("--profile exits 0", code == 0, err)
        check("--profile prints ledger hosts", "10.0.3.0" in out and "99.48%" in out)
        check("--profile ranks by exclusive ns",
              out.find("sim.dispatch") < out.find("rpc.dispatch") < out.find("uproxy.decode"))

        code, out, err = run(script, profile_path, "--profile", "--top", "1",
                             "--codes-file", codes)
        check("--top limits scope rows", code == 0 and "sim.dispatch" in out
              and "uproxy.decode" not in out, err)

        # Flight dump with an embedded profile section: same renderer.
        merged = os.path.join(tmp, "merged.json")
        with open(dump) as f:
            merged_doc = json.load(f)
        merged_doc["profile"] = profile_doc["profile"]
        with open(merged, "w") as f:
            json.dump(merged_doc, f)
        code, out, err = run(script, merged, "--profile", "--codes-file", codes)
        check("--profile on flight dump", code == 0 and "10.0.3.0" in out, err)

        # An unprofiled dump must say so, not stack-trace.
        code, out, err = run(script, dump, "--profile", "--codes-file", codes)
        check("unprofiled dump exits 2", code == 2, "exit=%d" % code)
        check("unprofiled dump explains", "no profile section" in err, err)

        # Table discovery next to the dump (no --codes-file).
        with open(codes) as src, open(os.path.join(tmp, "event_codes.json"), "w") as dst:
            dst.write(src.read())
        env = {k: v for k, v in os.environ.items() if k != "SLICE_EVENT_CODES"}
        code, out, err = run(script, dump, "--code", "node_dead", env=env)
        check("table found next to dump", code == 0 and "node_dead" in out, err)

    if failures:
        for f in failures:
            sys.stderr.write("FAIL %s\n" % f)
        return 1
    print("slice_inspect_test: symbolic code resolution passes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
