#!/usr/bin/env python3
"""Regression tests for slice_slo_report.py.

Run as a ctest: slice_slo_report_test.py <slice_slo_report.py>. Exercises a
synthetic tenanted snapshot (attainment math, alert/exemplar rendering,
--tenant filtering, --json mode, flight-dump unwrapping) and the
no-tenant-plane error path.
"""

import json
import os
import subprocess
import sys
import tempfile


def run(script, *args):
    proc = subprocess.run([sys.executable, script] + list(args),
                          stdout=subprocess.PIPE, stderr=subprocess.PIPE)
    return proc.returncode, proc.stdout.decode(), proc.stderr.decode()


SNAPSHOT = {
    "hosts": {},
    "tenants": {
        "1": {
            "ops": {"read": 60, "write": 40, "name": 0, "attr": 0, "other": 0},
            "bytes": {"read": 491520, "write": 327680, "name": 0, "attr": 0, "other": 0},
            "latency": {
                "write": {"count": 40, "min": 1000, "max": 90000000,
                          "sum": 200000000, "p50": 2000000, "p95": 60000000,
                          "p99": 90000000},
            },
            "errors": 1,
            "bad_ops": 5,
            "slow_threshold": 50000000,
            "exemplars": [
                {"at": 700000000, "latency": 90000000, "trace_id": 354, "class": "write"},
            ],
        },
        "2": {
            "ops": {"read": 0, "write": 0, "name": 200, "attr": 0, "other": 0},
            "bytes": {},
            "latency": {},
            "errors": 0,
            "bad_ops": 0,
            "slow_threshold": 50000000,
            "exemplars": [],
        },
    },
    "slo": {
        "budget_ppm": 50000,
        "latency_threshold": 50000000,
        "burn_threshold_milli": 1000,
        "fast_windows": 3,
        "slow_windows": 8,
        "alerts": [
            {"at": 600000000, "tenant": 1, "raise": 1, "fast": 2400,
             "slow": 1500, "trace_id": 354},
            {"at": 1400000000, "tenant": 1, "raise": 0, "fast": 0,
             "slow": 800, "trace_id": 354},
        ],
    },
}


def main():
    if len(sys.argv) != 2:
        sys.stderr.write("usage: slice_slo_report_test.py <slice_slo_report.py>\n")
        return 2
    script = sys.argv[1]
    failures = []

    def check(case, ok, extra=""):
        if not ok:
            failures.append("%s %s" % (case, extra))

    with tempfile.TemporaryDirectory() as tmp:
        snap = os.path.join(tmp, "metrics.json")
        with open(snap, "w") as f:
            json.dump(SNAPSHOT, f)

        code, out, err = run(script, snap)
        check("report exits 0", code == 0, err)
        check("both tenants render", "tenant 1" in out and "tenant 2" in out)
        check("attainment math", "95.0000%" in out)       # 95/100 good ops
        check("objective rendered", "95.0000%" in out and "MET" in out)
        check("burn edge rendered", "SLO BURN" in out and "2.40x" in out)
        check("exemplar trace id", "trace 354" in out)
        check("tail latency", "p99=90.00ms" in out)

        code, out, err = run(script, snap, "--tenant", "2")
        check("--tenant filters", code == 0 and "tenant 2" in out
              and "tenant 1" not in out, err)

        code, out, err = run(script, snap, "--tenant", "9")
        check("missing tenant exits 1", code == 1, "exit=%d" % code)

        code, out, err = run(script, snap, "--json")
        check("--json exits 0", code == 0, err)
        doc = json.loads(out)
        check("--json tenants", [t["tenant"] for t in doc["tenants"]] == [1, 2])
        check("--json attainment", abs(doc["tenants"][0]["attainment"] - 0.95) < 1e-9)
        check("--json alerts", doc["tenants"][0]["alerts"][0]["trace_id"] == 354)
        check("--json objective", abs(doc["tenants"][0]["objective"] - 0.95) < 1e-9)

        # A flight dump wrapping the snapshot unwraps transparently.
        flight = os.path.join(tmp, "flight.json")
        with open(flight, "w") as f:
            json.dump({"flight": {"reason": "test", "events": []},
                       "metrics": SNAPSHOT}, f)
        code, out, err = run(script, flight, "--tenant", "1")
        check("flight dump unwraps", code == 0 and "tenant 1" in out, err)

        # No tenant plane => exit 1 with a pointed message.
        bare = os.path.join(tmp, "bare.json")
        with open(bare, "w") as f:
            json.dump({"hosts": {}}, f)
        code, out, err = run(script, bare)
        check("untenanted exits 1", code == 1, "exit=%d" % code)
        check("untenanted explains", "no tenant plane" in err, err)

    if failures:
        for f in failures:
            sys.stderr.write("FAIL %s\n" % f)
        return 1
    print("slice_slo_report_test: per-tenant report rendering passes")
    return 0


if __name__ == "__main__":
    sys.exit(main())
