// Recovery tour: the three recovery mechanisms of the Slice architecture,
// exercised end to end.
//
//   1. Dataless directory servers — crash one, replay its write-ahead log
//      from the storage array (paper §2.3).
//   2. Small-file server recovery — map records from its WAL, data refetched
//      from backing objects on demand (paper §4.4).
//   3. Coordinator intention logging — a µproxy dies mid-remove; the
//      coordinator's probe finishes the multi-site operation (paper §3.3.2).
//
//   $ ./recovery_tour
#include <cstdio>

#include "src/coord/coord_proto.h"
#include "src/slice/ensemble.h"

using namespace slice;

int main() {
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_small_file_servers = 2;
  config.num_storage_nodes = 4;
  config.num_coordinators = 1;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);
  const FileHandle root = ensemble.root();

  // --- 1. directory server crash + WAL replay ---
  std::printf("1) directory server crash/recovery\n");
  for (int i = 0; i < 20; ++i) {
    SLICE_CHECK(client->Create(root, "file" + std::to_string(i)).value().status ==
                Nfsstat3::kOk);
  }
  ensemble.dir_server(0).FlushLog();
  queue.RunUntilIdle();
  std::printf("   created 20 files; dir server 0 logged %llu bytes to the storage array\n",
              static_cast<unsigned long long>(ensemble.dir_server(0).log_bytes()));

  ensemble.dir_server(0).Fail();
  ensemble.dir_server(0).Restart();
  queue.RunUntilIdle();  // replay runs over real RPC reads
  LookupRes found = client->Lookup(root, "file7").value();
  SLICE_CHECK(found.status == Nfsstat3::kOk);
  std::printf("   crashed + restarted: %zu entries rebuilt by log replay, lookup works\n\n",
              ensemble.dir_server(0).store().entry_count());

  // --- 2. small-file server crash: dataless by construction ---
  std::printf("2) small-file server crash/recovery (dataless managers)\n");
  CreateRes small = client->Create(root, "small.dat").value();
  Bytes payload(5000, 0x5a);
  SLICE_CHECK(client->Write(*small.object, 0, payload, StableHow::kUnstable).value().status ==
              Nfsstat3::kOk);
  SLICE_CHECK(client->Commit(*small.object).value().status == Nfsstat3::kOk);
  queue.RunUntilIdle();

  for (size_t i = 0; i < ensemble.num_small_file_servers(); ++i) {
    ensemble.small_file_server(i).FlushDirtyForTest();
  }
  queue.RunUntilIdle();
  for (size_t i = 0; i < ensemble.num_small_file_servers(); ++i) {
    ensemble.small_file_server(i).Fail();
    ensemble.small_file_server(i).Restart();
  }
  queue.RunUntilIdle();
  ReadRes back = client->Read(*small.object, 0, 5000).value();
  SLICE_CHECK(back.status == Nfsstat3::kOk && back.data == payload);
  uint64_t fetches = 0;
  for (size_t i = 0; i < ensemble.num_small_file_servers(); ++i) {
    fetches += ensemble.small_file_server(i).backing_fetches();
  }
  std::printf("   both small-file servers crashed; map records replayed from WAL and\n");
  std::printf("   data refetched from the storage array (%llu backing fetches) -- RAM\n",
              static_cast<unsigned long long>(fetches));
  std::printf("   held nothing the system could not rebuild\n\n");

  // --- 3. coordinator finishes an orphaned multi-site operation ---
  std::printf("3) coordinator intention log vs. a dying µproxy\n");
  CreateRes doomed = client->Create(root, "doomed.dat").value();
  SLICE_CHECK(client
                  ->Write(*doomed.object, 1 << 20, Bytes(32768, 1), StableHow::kFileSync)
                  .value()
                  .status == Nfsstat3::kOk);
  // Remove the name; the µproxy logs an intent and fans out data removal —
  // but we immediately wipe its soft state, as if the client host rebooted.
  SLICE_CHECK(client->Remove(root, "doomed.dat").value().status == Nfsstat3::kOk);
  ensemble.uproxy(0).DropSoftState();
  queue.RunUntilIdle();  // coordinator probe fires and completes the remove
  ReadRes gone = client->Read(*doomed.object, 1 << 20, 100).value();
  std::printf("   name removed, µproxy state dropped mid-operation; coordinator ran %llu\n",
              static_cast<unsigned long long>(ensemble.coordinator(0).recoveries_run()));
  std::printf("   recovery pass(es); stale data bytes remaining: %u; pending intents: %zu\n",
              gone.count, ensemble.coordinator(0).pending_intents());
  std::printf("\nall three managers recovered from shared storage — the \"dataless\"\n"
              "principle of paper §2.3 in action.\n");
  return 0;
}
