// Mirrored striping and failover: per-file mirroring (paper §3.1) lets a
// file survive the loss of a storage node; the µproxy fans writes to every
// replica and alternates reads between them.
//
//   $ ./mirrored_failover
#include <cstdio>

#include "src/slice/ensemble.h"

using namespace slice;

int main() {
  EventQueue queue;
  EnsembleConfig config;
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 0;  // keep every byte on the mirrored bulk path
  config.default_replication = 2;     // per-file policy: new files are 2-way mirrored
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);

  CreateRes created = client->Create(ensemble.root(), "precious.db").value();
  SLICE_CHECK(created.status == Nfsstat3::kOk);
  const FileHandle fh = *created.object;
  std::printf("created precious.db with replication degree %d (from its file handle)\n",
              fh.replication());

  // Write 8 x 32KB blocks; the µproxy absorbs each write and fans it out to
  // both replicas of each stripe.
  Bytes block(32768);
  for (int b = 0; b < 8; ++b) {
    for (size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<uint8_t>(b * 31 + i);
    }
    WriteRes res =
        client->Write(fh, static_cast<uint64_t>(b) * 32768, block, StableHow::kFileSync)
            .value();
    SLICE_CHECK(res.status == Nfsstat3::kOk);
  }
  std::printf("wrote 256KB; µproxy counters: %s\n\n",
              ensemble.AggregateCounters().ToString().c_str());

  // Show which nodes hold each block's replicas, then kill one node.
  const Uproxy& proxy = ensemble.uproxy(0);
  std::printf("stripe map (block -> replica nodes): ");
  for (uint64_t b = 0; b < 4; ++b) {
    std::printf("%llu->(%u,%u) ", static_cast<unsigned long long>(b),
                ensemble.uproxy(0).StripeSite(fh, b * 32768, 0),
                ensemble.uproxy(0).StripeSite(fh, b * 32768, 1));
  }
  (void)proxy;
  const uint32_t victim = ensemble.uproxy(0).StripeSite(fh, 0, 0);
  std::printf("\n\nfailing storage node %u (primary replica of block 0)...\n", victim);
  ensemble.storage_node(victim).Fail();

  // Reads that would hit the dead node still succeed from the mirrors: the
  // surviving replica of every block serves a direct read.
  size_t recovered = 0;
  for (uint64_t b = 0; b < 8; ++b) {
    for (uint32_t replica = 0; replica < 2; ++replica) {
      const uint32_t node = ensemble.uproxy(0).StripeSite(fh, b * 32768, replica);
      if (node == victim) {
        continue;
      }
      SyncNfsClient direct(ensemble.client_host(0), queue,
                           ensemble.storage_node(node).endpoint());
      ReadRes res = direct.Read(fh, b * 32768, 32768).value();
      if (res.status == Nfsstat3::kOk && res.count == 32768) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("recovered %zu of 8 blocks from surviving replicas\n", recovered);
  SLICE_CHECK(recovered == 8);

  // Bring the node back; the ensemble is whole again (uncommitted data on
  // the failed node would have been re-sent by clients per NFSv3 commit
  // semantics — here everything was FILE_SYNC).
  ensemble.storage_node(victim).Restart();
  ReadRes healed = client->Read(fh, 0, 32768).value();
  SLICE_CHECK(healed.status == Nfsstat3::kOk);
  std::printf("node %u restarted; reads through the µproxy work again (%u bytes)\n", victim,
              healed.count);
  std::printf("\nmirroring \"is simple and reliable ... and allows load-balanced reads\"\n"
              "at the cost of double write traffic (paper §3.1, Table 2).\n");
  return 0;
}
