// Mirrored striping and automated failover: per-file mirroring (paper §3.1)
// lets a file survive the loss of a storage node, and the ensemble control
// plane (src/mgmt) notices the loss by heartbeat timeout, installs a fresh
// epoch-stamped routing table in every µproxy, and resyncs the mirror when
// the node rejoins — no manual intervention anywhere.
//
//   $ ./mirrored_failover
#include <cstdio>

#include "src/slice/ensemble.h"

using namespace slice;

int main() {
  EventQueue queue;
  EnsembleConfig config;
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 0;  // keep every byte on the mirrored bulk path
  config.default_replication = 2;     // per-file policy: new files are 2-way mirrored
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);

  CreateRes created = client->Create(ensemble.root(), "precious.db").value();
  SLICE_CHECK(created.status == Nfsstat3::kOk);
  const FileHandle fh = *created.object;
  std::printf("created precious.db with replication degree %d (from its file handle)\n",
              fh.replication());

  // Write 8 x 32KB blocks; the µproxy absorbs each write and fans it out to
  // both replicas of each stripe.
  Bytes block(32768);
  for (int b = 0; b < 8; ++b) {
    for (size_t i = 0; i < block.size(); ++i) {
      block[i] = static_cast<uint8_t>(b * 31 + i);
    }
    WriteRes res =
        client->Write(fh, static_cast<uint64_t>(b) * 32768, block, StableHow::kFileSync)
            .value();
    SLICE_CHECK(res.status == Nfsstat3::kOk);
  }
  std::printf("wrote 256KB; stripe map (block -> replica nodes): ");
  for (uint64_t b = 0; b < 4; ++b) {
    std::printf("%llu->(%u,%u) ", static_cast<unsigned long long>(b),
                ensemble.uproxy(0).StripeSite(fh, b * 32768, 0),
                ensemble.uproxy(0).StripeSite(fh, b * 32768, 1));
  }
  std::printf("\n\n");

  // Kill the primary replica of block 0 and let the simulation run: its
  // heartbeats stop, the manager's failure detector times it out, and a new
  // epoch is pushed to every µproxy.
  EnsembleManager& mgr = *ensemble.manager();
  const uint32_t victim = ensemble.uproxy(0).StripeSite(fh, 0, 0);
  const uint64_t epoch_before = mgr.current_epoch();
  std::printf("failing storage node %u (primary replica of block 0)...\n", victim);
  ensemble.storage_node(victim).Fail();
  queue.RunUntil(queue.now() + FromMillis(800));
  SLICE_CHECK(!mgr.NodeAlive(NodeClass::kStorage, victim));
  std::printf("manager declared node %u dead: epoch %llu -> %llu, µproxy table epoch %llu\n",
              victim, static_cast<unsigned long long>(epoch_before),
              static_cast<unsigned long long>(mgr.current_epoch()),
              static_cast<unsigned long long>(ensemble.uproxy(0).table_epoch()));

  // Reads now flow through the µproxy exactly as before the failure: the new
  // table's liveness bits steer every read of a dead primary to its mirror.
  for (uint64_t b = 0; b < 8; ++b) {
    ReadRes res = client->Read(fh, b * 32768, 32768).value();
    SLICE_CHECK(res.status == Nfsstat3::kOk && res.count == 32768);
  }
  std::printf("read all 8 blocks through the µproxy with node %u down (failover reads)\n",
              victim);

  // Writes keep working too: the µproxy writes the surviving replica and
  // logs the skipped one with the coordinator as a degraded region.
  for (size_t i = 0; i < block.size(); ++i) {
    block[i] = static_cast<uint8_t>(0xA5 ^ i);
  }
  WriteRes degraded = client->Write(fh, 0, block, StableHow::kFileSync).value();
  SLICE_CHECK(degraded.status == Nfsstat3::kOk);
  std::printf("wrote block 0 degraded; coordinator logged %llu region(s) for node %u\n",
              static_cast<unsigned long long>(ensemble.coordinator(0).degraded_count(victim)),
              victim);

  // Bring the node back. Heartbeats resume, the manager observes the rejoin,
  // bumps the epoch again, and the ensemble replays the degraded regions to
  // resync the mirror.
  ensemble.storage_node(victim).Restart();
  queue.RunUntil(queue.now() + FromMillis(800));
  SLICE_CHECK(mgr.NodeAlive(NodeClass::kStorage, victim));
  std::printf("node %u rejoined: epoch now %llu, coordinator ran %llu mirror repair(s)\n",
              victim, static_cast<unsigned long long>(mgr.current_epoch()),
              static_cast<unsigned long long>(ensemble.coordinator(0).repairs_run()));

  // The resynced replica serves the fresh data directly.
  SyncNfsClient direct(ensemble.client_host(0), queue,
                       ensemble.storage_node(victim).endpoint());
  ReadRes healed = direct.Read(fh, 0, 32768).value();
  SLICE_CHECK(healed.status == Nfsstat3::kOk && healed.count == 32768);
  SLICE_CHECK(healed.data[0] == static_cast<uint8_t>(0xA5));
  std::printf("\nmirroring \"is simple and reliable ... and allows load-balanced reads\"\n"
              "(paper §3.1); the control plane makes the failover automatic.\n");
  return 0;
}
