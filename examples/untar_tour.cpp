// Name-space distribution tour: runs the paper's untar workload against
// three directory servers under both routing policies and shows how the
// name entries and attribute cells actually spread across sites.
//
//   $ ./untar_tour
#include <cstdio>

#include "src/slice/ensemble.h"
#include "src/workload/untar.h"

using namespace slice;

namespace {

void RunPolicy(const char* title, NamePolicy policy, double redirect_probability) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 3;
  config.num_small_file_servers = 1;
  config.num_storage_nodes = 2;
  config.num_clients = 2;
  config.name_policy = policy;
  config.mkdir_redirect_probability = redirect_probability;
  Ensemble ensemble(queue, config);

  constexpr int kProcs = 4;
  std::vector<std::unique_ptr<UntarProcess>> procs;
  int finished = 0;
  for (int p = 0; p < kProcs; ++p) {
    UntarParams params;
    params.total_creations = 600;
    params.top_name = "tree" + std::to_string(p);
    procs.push_back(std::make_unique<UntarProcess>(
        ensemble.client_host(p % 2), queue, ensemble.virtual_server(), ensemble.root(),
        params, 42 + p, [&finished] { ++finished; }));
  }
  for (auto& proc : procs) {
    proc->Start();
  }
  queue.RunUntilIdle();
  SLICE_CHECK(finished == kProcs);

  std::printf("%s\n", title);
  double mean_ms = 0;
  uint64_t ops = 0;
  for (auto& proc : procs) {
    mean_ms += ToMillis(proc->elapsed()) / kProcs;
    ops += proc->ops_issued();
  }
  std::printf("  %d processes x 600 creations (%llu NFS ops), mean latency %.0f ms\n",
              kProcs, static_cast<unsigned long long>(ops), mean_ms);

  uint64_t total_entries = 0;
  for (size_t i = 0; i < ensemble.num_dir_servers(); ++i) {
    total_entries += ensemble.dir_server(i).store().entry_count();
  }
  for (size_t i = 0; i < ensemble.num_dir_servers(); ++i) {
    const DirServer& server = ensemble.dir_server(i);
    std::printf("  dir server %zu: %5zu entries (%4.1f%%), %5zu attr cells, "
                "%llu cross-site ops, %llu log bytes\n",
                i, server.store().entry_count(),
                100.0 * static_cast<double>(server.store().entry_count()) /
                    static_cast<double>(total_entries),
                server.store().attr_count(),
                static_cast<unsigned long long>(server.cross_site_ops()),
                static_cast<unsigned long long>(server.log_bytes()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Untar tour: how Slice spreads one volume's name space\n\n");
  RunPolicy("mkdir switching, p = 1/3 (new directories hop sites with prob. 1/3):",
            NamePolicy::kMkdirSwitching, 1.0 / 3.0);
  RunPolicy("mkdir switching, p = 0 (degenerates to volume partitioning):",
            NamePolicy::kMkdirSwitching, 0.0);
  RunPolicy("name hashing (every (dir,name) entry hashes to a site):",
            NamePolicy::kNameHashing, 0.0);
  std::printf(
      "takeaways: p=0 piles every tree onto its root's server; mkdir switching\n"
      "spreads subtrees with few cross-site ops; name hashing spreads single\n"
      "entries at the price of more cross-site traffic (paper §3.2).\n");
  return 0;
}
