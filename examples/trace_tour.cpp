// Trace tour: run a few NFS operations through the interposed µproxy with
// end-to-end tracing enabled, then look at where each operation's latency
// actually went.
//
//   $ ./trace_tour
//
// Every request gets a trace id minted at the µproxy; the span context rides
// a trailer on each packet, so every hop — route decision, wire legs, server
// CPU, disk — records into the same trace. The critical-path analyzer then
// breaks mean latency down per opclass, and the full span set exports as
// chrome://tracing JSON (open trace_tour.json in a Chromium browser at
// chrome://tracing, or in Perfetto).
#include <cstdio>
#include <fstream>

#include "src/obs/critical_path.h"
#include "src/obs/export.h"
#include "src/slice/ensemble.h"
#include "src/slice/volume_client.h"

using namespace slice;

int main() {
  // 1. Same ensemble as the quickstart, with tracing switched on.
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_small_file_servers = 2;
  config.num_storage_nodes = 4;
  config.num_coordinators = 1;
  config.trace.enabled = true;
  Ensemble ensemble(queue, config);

  VolumeClient volume(ensemble.client_host(0), queue, ensemble.virtual_server(),
                      ensemble.root());

  // 2. A small mixed workload: directory ops, a small file, a striped file.
  SLICE_CHECK(volume.MkdirAll("/traced/run").ok());
  Bytes note(2000, 'n');
  SLICE_CHECK(volume.WriteFile("/traced/run/NOTES.md", note).ok());
  Bytes big(256 << 10);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 7);
  }
  SLICE_CHECK(volume.WriteFile("/traced/run/dataset.bin", big).ok());
  SLICE_CHECK(volume.ReadFile("/traced/run/NOTES.md").value() == note);
  SLICE_CHECK(volume.ReadFile("/traced/run/dataset.bin").value() == big);
  SLICE_CHECK(volume.Stat("/traced/run/dataset.bin").ok());

  // 3. Where did the time go? Per opclass: wire vs queue vs cpu vs disk.
  const obs::CriticalPathReport report = ensemble.AnalyzeCriticalPath();
  std::printf("%llu operations traced end to end\n\n",
              static_cast<unsigned long long>(report.traces_analyzed));
  std::printf("%s", obs::CriticalPath::Format(report).c_str());

  // 4. Export the raw spans for interactive viewing.
  const std::string json = ensemble.ExportTraceJson();
  std::ofstream("trace_tour.json", std::ios::binary | std::ios::trunc) << json;
  std::printf(
      "\n%llu spans (%llu evicted) written to trace_tour.json — load it in\n"
      "chrome://tracing to walk any single request hop by hop.\n",
      static_cast<unsigned long long>(ensemble.tracer()->total_recorded()),
      static_cast<unsigned long long>(ensemble.tracer()->total_evicted()));
  return 0;
}
