// Quickstart: assemble a Slice ensemble, mount its single virtual NFS
// volume through the interposed µproxy, and watch the request routing do
// its job.
//
//   $ ./quickstart
//
// Everything runs on the in-process simulated network — no privileges or
// real sockets needed. The same API (Ensemble + VolumeClient / NfsClient)
// is what the tests and benchmark harnesses build on.
#include <cstdio>

#include "src/slice/ensemble.h"
#include "src/slice/volume_client.h"

using namespace slice;

int main() {
  // 1. Build the ensemble: 2 directory servers, 2 small-file servers,
  //    4 storage nodes, 1 coordinator — one unified volume.
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_small_file_servers = 2;
  config.num_storage_nodes = 4;
  config.num_coordinators = 1;
  Ensemble ensemble(queue, config);

  std::printf("mounted virtual server %s (one volume, %zu servers behind it)\n\n",
              EndpointToString(ensemble.virtual_server()).c_str(),
              config.num_dir_servers + config.num_small_file_servers +
                  config.num_storage_nodes + config.num_coordinators);

  // 2. Use the volume through a path-style client.
  VolumeClient volume(ensemble.client_host(0), queue, ensemble.virtual_server(),
                      ensemble.root());

  SLICE_CHECK(volume.MkdirAll("/projects/slice").ok());

  // A small file: routed to a small-file server.
  Bytes note(2000, 'n');
  SLICE_CHECK(volume.WriteFile("/projects/slice/NOTES.md", note).ok());

  // A large file: blocks beyond the 64KB threshold stripe over the storage
  // nodes.
  Bytes big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>(i * 7);
  }
  SLICE_CHECK(volume.WriteFile("/projects/slice/dataset.bin", big).ok());

  // 3. Read everything back through the same virtual endpoint.
  Bytes note_back = volume.ReadFile("/projects/slice/NOTES.md").value();
  Bytes big_back = volume.ReadFile("/projects/slice/dataset.bin").value();
  SLICE_CHECK(note_back == note);
  SLICE_CHECK(big_back == big);
  std::printf("wrote + read back a 2KB file and a 1MB file through one mount\n");

  Fattr3 attr = volume.Stat("/projects/slice/dataset.bin").value();
  std::printf("stat dataset.bin: size=%llu (attributes patched fresh by the µproxy)\n\n",
              static_cast<unsigned long long>(attr.size));

  // 4. Where did the requests actually go?
  std::printf("µproxy routing counters: %s\n\n",
              ensemble.AggregateCounters().ToString().c_str());
  size_t nodes_with_data = 0;
  for (size_t i = 0; i < ensemble.num_storage_nodes(); ++i) {
    if (ensemble.storage_node(i).store().object_count() > 0) {
      ++nodes_with_data;
    }
  }
  std::printf("storage nodes holding stripes of dataset.bin: %zu of %zu\n", nodes_with_data,
              ensemble.num_storage_nodes());
  std::printf("small-file servers holding NOTES.md: ");
  for (size_t i = 0; i < ensemble.num_small_file_servers(); ++i) {
    if (ensemble.small_file_server(i).file_count() > 0) {
      std::printf("sfs%zu ", i);
    }
  }
  std::printf("\n\ndone — %llu simulated ms elapsed\n",
              static_cast<unsigned long long>(queue.now() / kNanosPerMilli));
  return 0;
}
