// Metrics tour: run a small workload with the ensemble-wide metrics plane
// switched on, print the Prometheus text exposition every component's
// instruments roll up into, then slow the disks down until the disk-backlog
// watchdog fires and show the structured alert stream.
//
//   $ ./metrics_tour
//
// Every host owns a registry of typed instruments (counters, gauges,
// log-scale histograms); most are provider-backed, polled only at scrape
// time, so the request path pays nothing for them. A sim-time scraper
// samples everything into bounded time series on exact 100ms boundaries and
// evaluates saturation watchdogs with hysteresis. The canonical JSON
// snapshot (metrics_tour.json) is byte-identical across same-seed runs.
#include <cstdio>
#include <fstream>

#include "src/obs/metrics_export.h"
#include "src/slice/ensemble.h"
#include "src/slice/volume_client.h"
#include "src/workload/seqio.h"

using namespace slice;

int main() {
  // 1. A healthy ensemble with metrics on: mixed small/large workload.
  {
    EventQueue queue;
    EnsembleConfig config;
    config.num_dir_servers = 2;
    config.num_small_file_servers = 2;
    config.num_storage_nodes = 4;
    config.num_coordinators = 1;
    config.metrics.enabled = true;
    Ensemble ensemble(queue, config);

    VolumeClient volume(ensemble.client_host(0), queue, ensemble.virtual_server(),
                        ensemble.root());
    SLICE_CHECK(volume.MkdirAll("/metered/run").ok());
    Bytes note(2000, 'n');
    SLICE_CHECK(volume.WriteFile("/metered/run/NOTES.md", note).ok());
    Bytes big(256 << 10);
    for (size_t i = 0; i < big.size(); ++i) {
      big[i] = static_cast<uint8_t>(i * 7);
    }
    SLICE_CHECK(volume.WriteFile("/metered/run/dataset.bin", big).ok());
    SLICE_CHECK(volume.ReadFile("/metered/run/NOTES.md").value() == note);
    SLICE_CHECK(volume.ReadFile("/metered/run/dataset.bin").value() == big);

    // 2. The Prometheus exposition: one family per metric, one sample per
    // host — µproxy routing decisions, directory op mix, storage disk time,
    // NIC bytes, heartbeat traffic, all in one page.
    std::printf("=== Prometheus exposition (healthy run) ===\n%s\n",
                ensemble.ExportMetricsText().c_str());

    const std::string json = ensemble.ExportMetricsJson();
    std::ofstream("metrics_tour.json", std::ios::binary | std::ios::trunc) << json;
    std::printf("canonical snapshot written to metrics_tour.json (hash %016llx)\n\n",
                static_cast<unsigned long long>(obs::MetricsContentHash(json)));
  }

  // 3. Inject disk slowness: one storage node with a single 30ms arm and
  // FFS-like metadata amplification, fed by a sequential write stream it
  // cannot possibly keep up with. Watch the disk_backlog watchdog raise.
  {
    EventQueue queue;
    EnsembleConfig config;
    config.mgmt.enabled = false;
    config.num_storage_nodes = 1;
    config.num_small_file_servers = 0;
    config.num_clients = 1;
    config.cal.disks_per_node = 1;
    config.cal.disk.avg_position_ms = 30.0;  // a very tired arm
    config.storage_extra_meta_ios = 3.0;
    config.metrics.enabled = true;
    Ensemble ensemble(queue, config);

    auto client = ensemble.MakeSyncClient(0);
    CreateRes created = client->Create(ensemble.root(), "flood").value();
    SLICE_CHECK(created.status == Nfsstat3::kOk);

    SeqIoParams params;
    params.file_bytes = 2u << 20;
    params.write = true;
    bool done = false;
    SeqIoProcess writer(ensemble.client_host(0), queue, ensemble.virtual_server(),
                        *created.object, params, [&] { done = true; });
    writer.Start();
    queue.RunUntilIdle();
    SLICE_CHECK(done);

    std::printf("=== Watchdog alerts (injected disk slowness) ===\n");
    for (const obs::Alert& alert : ensemble.alerts()) {
      std::printf("  %8.1fms  %-14s %-12s host %s  value %lld\n", ToMillis(alert.at),
                  alert.rule.c_str(), alert.raise ? "RAISED" : "cleared",
                  obs::FormatHostAddr(alert.host).c_str(),
                  static_cast<long long>(alert.value));
    }
    std::printf("\n%llu scrapes; %llu alerts currently active\n",
                static_cast<unsigned long long>(ensemble.scraper()->scrapes()),
                static_cast<unsigned long long>(ensemble.scraper()->active_alerts()));
  }
  return 0;
}
