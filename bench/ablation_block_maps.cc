// Ablation: static striping vs coordinator block maps (paper §3.1). Static
// placement computes the storage site from (fileID, block) with zero state;
// dynamic placement consults per-file block maps managed by the coordinator,
// buying placement flexibility at the price of map-fetch round trips and
// coordinator load. The paper offers both; this bench quantifies the toll.
#include <cstdio>

#include "src/slice/ensemble.h"
#include "src/workload/seqio.h"

namespace slice {
namespace {

struct RunResult {
  double mb_per_sec;
  uint64_t map_fetches;
};

RunResult RunStream(bool use_block_maps, bool reread) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;  // static healthy ensemble; no heartbeat traffic
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 0;
  config.num_coordinators = 1;
  config.use_block_maps = use_block_maps;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);
  CreateRes created = client->Create(ensemble.root(), "mapped").value();
  SLICE_CHECK(created.status == Nfsstat3::kOk);

  auto run_once = [&](bool write) {
    SeqIoParams params;
    params.file_bytes = 64 << 20;
    params.write = write;
    params.client_ns_per_byte = write ? 24.0 : 14.0;
    bool done = false;
    SeqIoProcess proc(ensemble.client_host(0), queue, ensemble.virtual_server(),
                      *created.object, params, [&] { done = true; });
    proc.Start();
    queue.RunUntilIdle();
    SLICE_CHECK(done);
    SLICE_CHECK(proc.errors() == 0);
    return proc.ThroughputMbPerSec();
  };

  double mbps = run_once(/*write=*/true);
  if (reread) {
    // Second pass reads with a warm µproxy map cache.
    mbps = run_once(/*write=*/false);
  }
  return RunResult{mbps, ensemble.AggregateCounters().Get("map_fetches")};
}

void Run() {
  std::printf("Ablation: static striping vs coordinator block maps (64MB stream, 4 nodes)\n\n");
  std::printf("%-28s %12s %14s\n", "configuration", "MB/s", "map fetches");
  const RunResult static_write = RunStream(false, false);
  std::printf("%-28s %12.1f %14llu\n", "static striping, write", static_write.mb_per_sec,
              static_cast<unsigned long long>(static_write.map_fetches));
  const RunResult mapped_write = RunStream(true, false);
  std::printf("%-28s %12.1f %14llu\n", "block maps, cold write", mapped_write.mb_per_sec,
              static_cast<unsigned long long>(mapped_write.map_fetches));
  const RunResult static_read = RunStream(false, true);
  std::printf("%-28s %12.1f %14llu\n", "static striping, re-read", static_read.mb_per_sec,
              static_cast<unsigned long long>(static_read.map_fetches));
  const RunResult mapped_read = RunStream(true, true);
  std::printf("%-28s %12.1f %14llu\n", "block maps, warm re-read", mapped_read.mb_per_sec,
              static_cast<unsigned long long>(mapped_read.map_fetches));

  std::printf(
      "\nexpected shape: block maps cost a coordinator round trip per 64-block map\n"
      "fragment on first touch (cold), then the µproxy's map cache amortizes it —\n"
      "warm throughput approaches static striping. The paper keeps static\n"
      "placement as the default and block maps as the flexible option (§3.1).\n");
}

}  // namespace
}  // namespace slice

int main() {
  slice::Run();
  return 0;
}
