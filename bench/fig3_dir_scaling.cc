// Figure 3 reproduction: directory service scaling under the name-intensive
// untar workload.
//
//   paper: average untar latency per client process vs number of processes.
//   N-MFS (one FreeBSD MFS server) starts lowest but its CPU saturates
//   quickly; Slice-1/2/4 start slightly higher (logging + µproxy overhead)
//   and scale with more directory servers. mkdir switching (p = 1/N) and
//   name hashing perform identically on this many-directory namespace.
//
// Scaled down from the paper's 36,000 creations per process (set
// SLICE_BENCH_CREATIONS to override) — shape, not absolute seconds.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/baseline/baseline_server.h"
#include "src/slice/ensemble.h"
#include "src/workload/untar.h"

namespace slice {
namespace {

int CreationsPerProcess() {
  if (const char* env = std::getenv("SLICE_BENCH_CREATIONS"); env != nullptr) {
    return std::atoi(env);
  }
  return 1200;
}

constexpr int kClientHosts = 5;  // the paper used five client PCs

// Returns mean untar latency (ms) per process.
template <typename MakeHost, typename GetServer, typename GetRoot>
double RunUntarProcesses(EventQueue& queue, int num_processes, MakeHost&& host_for,
                         GetServer&& server, GetRoot&& root) {
  std::vector<std::unique_ptr<UntarProcess>> procs;
  int finished = 0;
  for (int p = 0; p < num_processes; ++p) {
    UntarParams params;
    params.total_creations = CreationsPerProcess();
    params.top_name = "untar_p" + std::to_string(p);
    procs.push_back(std::make_unique<UntarProcess>(host_for(p), queue, server(), root(),
                                                   params, /*seed=*/100 + p,
                                                   [&finished] { ++finished; }));
  }
  for (auto& proc : procs) {
    proc->Start();
  }
  queue.RunUntilIdle();
  SLICE_CHECK(finished == num_processes);

  double total_ms = 0;
  for (auto& proc : procs) {
    SLICE_CHECK(proc->errors() == 0);
    total_ms += ToMillis(proc->elapsed());
  }
  return total_ms / num_processes;
}

double RunSlice(int num_dir_servers, int num_processes, NamePolicy policy) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;  // static healthy ensemble; no heartbeat traffic
  config.num_dir_servers = static_cast<size_t>(num_dir_servers);
  config.num_small_file_servers = 1;
  config.num_storage_nodes = 2;
  config.num_clients = kClientHosts;
  config.name_policy = policy;
  config.mkdir_redirect_probability = 1.0 / num_dir_servers;  // p = 1/N
  Ensemble ensemble(queue, config);
  return RunUntarProcesses(
      queue, num_processes,
      [&](int p) -> Host& { return ensemble.client_host(p % kClientHosts); },
      [&] { return ensemble.virtual_server(); }, [&] { return ensemble.root(); });
}

double RunMfs(int num_processes) {
  EventQueue queue;
  Network net(queue, NetworkParams{});
  BaselineServerParams params;
  params.memory_backed = true;
  BaselineServer server(net, queue, 0x0a000010, params);
  std::vector<std::unique_ptr<Host>> hosts;
  for (int i = 0; i < kClientHosts; ++i) {
    hosts.push_back(std::make_unique<Host>(net, 0x0a000901 + static_cast<NetAddr>(i)));
  }
  return RunUntarProcesses(
      queue, num_processes, [&](int p) -> Host& { return *hosts[p % kClientHosts]; },
      [&] { return server.endpoint(); }, [&] { return server.RootHandle(); });
}

void RunFig3() {
  std::printf("Figure 3: directory service scaling — mean untar latency (ms) per process\n");
  std::printf("(%d creations/process, ~7 NFS ops per file create)\n\n",
              CreationsPerProcess());
  const int process_counts[] = {1, 2, 4, 8, 16};

  std::printf("%-10s", "procs");
  for (int procs : process_counts) {
    std::printf("%10d", procs);
  }
  std::printf("\n");

  auto print_line = [&](const char* name, auto&& runner) {
    std::printf("%-10s", name);
    for (int procs : process_counts) {
      std::printf("%10.0f", runner(procs));
      std::fflush(stdout);
    }
    std::printf("\n");
  };

  print_line("N-MFS", [&](int procs) { return RunMfs(procs); });
  print_line("Slice-1",
             [&](int procs) { return RunSlice(1, procs, NamePolicy::kMkdirSwitching); });
  print_line("Slice-2",
             [&](int procs) { return RunSlice(2, procs, NamePolicy::kMkdirSwitching); });
  print_line("Slice-4",
             [&](int procs) { return RunSlice(4, procs, NamePolicy::kMkdirSwitching); });
  print_line("Slice-4h",
             [&](int procs) { return RunSlice(4, procs, NamePolicy::kNameHashing); });

  std::printf(
      "\nshape checks (paper): N-MFS lowest at 1 process but grows steeply as its\n"
      "CPU saturates; Slice-N lines scale with N; mkdir switching (Slice-4) and\n"
      "name hashing (Slice-4h) perform identically on this namespace.\n");
}

}  // namespace
}  // namespace slice

int main() {
  slice::RunFig3();
  return 0;
}
