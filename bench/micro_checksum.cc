// Micro-benchmark: incremental checksum adjustment (RFC 1624, the paper's
// NAT-derived technique, §4.1) vs full recomputation, for the µproxy's
// address/port rewriting. The paper's claim: incremental cost is
// proportional to the bytes modified, independent of packet size.
#include <benchmark/benchmark.h>

#include "src/common/inet_checksum.h"
#include "src/common/md5.h"
#include "src/net/packet.h"
#include "src/rpc/rpc_message.h"

namespace slice {
namespace {

Packet PacketOfSize(size_t payload) {
  Bytes data(payload, 0x42);
  return Packet::MakeUdp(Endpoint{0x0a000901, 800}, Endpoint{0x0a000064, 2049}, data);
}

void BM_IncrementalRewrite(benchmark::State& state) {
  Packet pkt = PacketOfSize(static_cast<size_t>(state.range(0)));
  uint32_t flip = 0;
  for (auto _ : state) {
    pkt.RewriteDst(Endpoint{0x0a000100 + (flip++ & 1), 2049});
    benchmark::DoNotOptimize(pkt.udp_checksum());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_IncrementalRewrite)->Arg(128)->Arg(1024)->Arg(8192)->Arg(32768);

void BM_FullRecompute(benchmark::State& state) {
  Packet pkt = PacketOfSize(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    pkt.RecomputeChecksums();
    benchmark::DoNotOptimize(pkt.udp_checksum());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_FullRecompute)->Arg(128)->Arg(1024)->Arg(8192)->Arg(32768);

// Raw one's-complement sum throughput: the word-at-a-time kernel behind
// RecomputeChecksums. Feeds the per-byte cost model in EXPERIMENTS.md.
void BM_OnesComplementSum(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0x42);
  const ByteSpan span(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(OnesComplementSum(span));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_OnesComplementSum)->Arg(64)->Arg(128)->Arg(1024)->Arg(8192)->Arg(32768);

// MD5 routing-fingerprint throughput (paper §4.1: per-name hash cost). Short
// inputs dominate in practice — pathname components, not bulk data.
void BM_Md5Fingerprint(benchmark::State& state) {
  Bytes data(static_cast<size_t>(state.range(0)), 0x42);
  const ByteSpan span(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Md5Fingerprint64(Md5::Hash(span)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Md5Fingerprint)->Arg(16)->Arg(64)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace slice

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nexpected shape: incremental rewrite time is flat across packet sizes;\n"
      "full recomputation grows linearly with the packet (the paper's rationale\n"
      "for NAT-style differential checksums in the µproxy, §4.1).\n");
  return 0;
}
