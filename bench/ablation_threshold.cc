// Ablation: the small-file threshold offset (paper §3.1 fixes it at 64KB).
// Sweeps the threshold under the SFS-like mix: a tiny threshold pushes
// small-file traffic onto the storage array (losing the small-file servers'
// RAM and allocation policies); a huge threshold funnels bulk traffic
// through the small-file servers (losing striping parallelism).
#include <cstdio>

#include "bench/sfs_harness.h"

namespace slice {
namespace {

SfsPoint RunWithThreshold(uint32_t threshold, double offered) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;  // static healthy ensemble; no heartbeat traffic
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 2;
  config.num_dir_servers = 1;
  config.num_clients = 4;
  config.threshold = threshold;
  config.cal.storage_cache_mb = kSfsStorageCacheMb;
  config.cal.sfs_cache_mb = kSfsSmallFileCacheMb;
  config.storage_extra_meta_ios = kSfsMetaIos;
  Ensemble ensemble(queue, config);
  SfsParams params = ScaledSfsParams(offered);
  SfsBenchmark bench(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params);
  SLICE_CHECK(bench.Setup().ok());
  const SfsReport report = bench.Run();
  return SfsPoint{offered, report.delivered_iops, report.mean_latency_ms};
}

void Run() {
  std::printf("Ablation: small-file threshold offset (Slice-4, SFS-like mix)\n\n");
  std::printf("%-12s %14s %14s %14s %14s\n", "threshold", "IOPS@3200", "lat ms", "IOPS@6400",
              "lat ms");
  for (uint32_t threshold : {8192u, 32768u, 65536u, 262144u}) {
    const SfsPoint low = RunWithThreshold(threshold, 3200);
    std::printf("%-12u %14.0f %14.1f", threshold, low.delivered, low.latency_ms);
    std::fflush(stdout);
    const SfsPoint high = RunWithThreshold(threshold, 6400);
    std::printf(" %14.0f %14.1f\n", high.delivered, high.latency_ms);
  }
  std::printf(
      "\nshape notes: differences are modest at this scale — with an 8KB I/O unit a\n"
      "small threshold competes by striping I/O straight over four storage nodes,\n"
      "at the price of losing the small-file servers' RAM and allocation policies\n"
      "(visible as latency). The paper fixed 64KB to keep 94%% of files wholly\n"
      "behind the small-file servers while bulk transfers bypass them.\n");
}

}  // namespace
}  // namespace slice

int main() {
  slice::Run();
  return 0;
}
