// Figure 5 reproduction: SPECsfs97-style delivered throughput vs offered
// load, for the single-server NFS baseline and Slice with N storage nodes.
//
//   paper: the FreeBSD NFS baseline saturates at 850 IOPS; Slice-1 beats it
//   (faster directory ops, extra small-file caches on the same number of
//   disk arms); throughput scales with storage nodes up to ~6600 IOPS for
//   Slice-8 (64 disks). All Slice configurations serve ONE unified volume.
//
// Scaled-down substitute workload (see DESIGN.md): check the shape — who
// wins, roughly linear scaling with storage nodes, saturation plateaus.
#include <cstdio>

#include "bench/sfs_harness.h"

namespace slice {
namespace {

void RunFig5() {
  std::printf("Figure 5: SFS97-like delivered throughput (IOPS) vs offered load\n\n");
  const double offered_loads[] = {400, 800, 1600, 3200, 6400, 9600, 12800};

  std::printf("%-10s", "offered");
  for (double offered : offered_loads) {
    std::printf("%8.0f", offered);
  }
  std::printf("%12s\n", "sat(<40ms)");

  // SPECsfs disqualifies runs whose mean latency exceeds the response-time
  // bound (40ms in SFS97); delivered IOPS past that point is metadata-only
  // throughput with unusable I/O latency.
  constexpr double kLatencyBoundMs = 40.0;
  auto run_line = [&](const char* name, auto&& runner) {
    std::printf("%-10s", name);
    double best = 0;
    for (double offered : offered_loads) {
      const SfsPoint point = runner(offered);
      if (point.latency_ms <= kLatencyBoundMs) {
        best = std::max(best, point.delivered);
      }
      std::printf("%8.0f", point.delivered);
      std::fflush(stdout);
    }
    std::printf("%12.0f\n", best);
    return best;
  };

  const double base = run_line("NFS", [](double o) { return RunBaselinePoint(o); });
  const double s1 = run_line("Slice-1", [](double o) { return RunSlicePoint(1, o); });
  const double s2 = run_line("Slice-2", [](double o) { return RunSlicePoint(2, o); });
  const double s4 = run_line("Slice-4", [](double o) { return RunSlicePoint(4, o); });
  const double s8 = run_line("Slice-8", [](double o) { return RunSlicePoint(8, o); });

  std::printf("\nsaturation ratios vs baseline (paper: Slice-8/NFS = 6600/850 = 7.8x):\n");
  std::printf("  Slice-1 %.1fx  Slice-2 %.1fx  Slice-4 %.1fx  Slice-8 %.1fx\n", s1 / base,
              s2 / base, s4 / base, s8 / base);
  std::printf(
      "shape checks: Slice-1 > NFS baseline; saturation grows with storage nodes;\n"
      "all Slice lines serve a single unified volume (no volume partitioning).\n");
}

}  // namespace
}  // namespace slice

int main() {
  slice::RunFig5();
  return 0;
}
