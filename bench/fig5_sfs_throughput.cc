// Figure 5 reproduction: SPECsfs97-style delivered throughput vs offered
// load, for the single-server NFS baseline and Slice with N storage nodes.
//
//   paper: the FreeBSD NFS baseline saturates at 850 IOPS; Slice-1 beats it
//   (faster directory ops, extra small-file caches on the same number of
//   disk arms); throughput scales with storage nodes up to ~6600 IOPS for
//   Slice-8 (64 disks). All Slice configurations serve ONE unified volume.
//
// Scaled-down substitute workload (see DESIGN.md): check the shape — who
// wins, roughly linear scaling with storage nodes, saturation plateaus.
//
// Flags:
//   --smoke           small sweep (2 loads, NFS + Slice-2) for CI
//   --proxy-cache     run the Slice lines with the in-proxy metadata cache
//                     (lookup + attribute) enabled; the bench renames itself
//                     fig5_cache so the A/B artifacts get their own golden
//   --no-pool         disable the packet pool (A/B determinism check: same
//                     seed must produce byte-identical artifacts either way)
//   --no-batch        disable flight-at-a-time delivery batching (same A/B
//                     contract: batching is a cost optimization, never a
//                     behavior change)
//   --assert-zero-alloc  after the sweep, run the end-to-end fast-path probe
//                     (µproxy + real storage node round trips under a
//                     counting operator-new) and exit nonzero if the
//                     steady-state window allocates at all
//   --tenants N       run the metered Slice-2 point with N tenants (AUTH_SYS
//                     tagged generator processes) and the SLO engine on; the
//                     bench renames itself fig5_tenants and the baseline
//                     gains per-tenant op/bad-op totals for its own golden
//   --metrics <path>  re-run one Slice-2 point with the metrics plane on and
//                     write the canonical metrics JSON snapshot to <path>
//   --flight-dump <path>  re-run one Slice-2 point with the event log on and
//                     write the flight-recorder dump (tail of routing
//                     decisions + metrics snapshot) to <path>
//   --profile <path>  re-run one Slice-2 point with the profiler on and write
//                     the {"profile":...} JSON to <path> plus a collapsed-
//                     stack rendering next to it (<path minus .json>.folded);
//                     the bench renames itself fig5_profile — profiler runs
//                     register extra instruments, so they get their own
//                     artifacts instead of perturbing the fig5 golden
//
// Always writes BENCH_fig5.json (BENCH_fig5_cache.json under --proxy-cache):
// per-line points (offered, delivered, mean, p50/p95/p99 ms), the <40ms
// saturation per line, and — when --metrics ran — ensemble-wide counter
// totals from the metered run (under --proxy-cache these include the
// in-proxy cache hit counters and the reduced dir-tier op counts).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <vector>

#include "bench/bench_json.h"
#include "bench/sfs_harness.h"
#include "src/common/hash.h"
#include "src/core/uproxy.h"
#include "src/net/network.h"
#include "src/net/packet_pool.h"
#include "src/nfs/nfs_xdr.h"
#include "src/rpc/rpc_message.h"
#include "src/storage/storage_node.h"

// Process-wide allocation counter for --assert-zero-alloc: the end-to-end
// fast-path probe measures a steady-state delta, which must be exactly zero
// (the same operator-new override the fastpath_alloc_test uses).
static uint64_t g_allocs = 0;

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slice {
namespace {

// --assert-zero-alloc: the end-to-end steady-state probe. One µproxy in
// front of one REAL storage node; every round trip runs the full interposed
// path (outbound decode/route/rewrite → rpc view decode + DRC → cache-hit
// READ → span-spliced reply encode → deferred send flight → inbound pairing
// + attr patch). After warming the DRC ring, caches and pool freelists, the
// measured window must allocate exactly zero times. Returns true on success.
bool RunZeroAllocProbe() {
  constexpr NetAddr kClientAddr = 0x0a000001;
  constexpr NetAddr kStorageAddr = 0x0a000020;
  constexpr NetPort kNfsPort = 2049;
  constexpr NetPort kClientPort = 5001;

  EventQueue queue;
  Network net(queue, NetworkParams{});
  Host client_host(net, kClientAddr);

  UproxyConfig config;
  config.virtual_server = Endpoint{0x0a0000fe, kNfsPort};
  config.dir_servers = {Endpoint{0x0a000010, kNfsPort}};
  config.storage_nodes = {Endpoint{kStorageAddr, kNfsPort}};
  Uproxy uproxy(net, queue, client_host, config);

  StorageNode storage(net, queue, kStorageAddr, StorageNodeParams{});
  const FileHandle fh = FileHandle::Make(1, MakeFileid(0, 42), 1, FileType3::kReg, 1, 0);
  const ObjectId object = MixU64(fh.fileid() ^ (static_cast<uint64_t>(fh.volume()) << 48));
  constexpr uint64_t kOffset = 1 << 20;  // bulk route: straight to storage
  {
    Bytes payload(64 << 10, 0x5a);
    if (!storage.mutable_store().Write(object, kOffset, ByteSpan(payload), true).ok()) {
      return false;
    }
  }

  uint64_t replies = 0;
  client_host.Bind(kClientPort, [&replies](Packet&&) { ++replies; });

  RpcCall call;
  call.xid = 0;  // patched per request: a fixed xid would replay from the DRC
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kRead);
  {
    XdrEncoder args;
    ReadArgs rargs;
    rargs.file = fh;
    rargs.offset = kOffset;
    rargs.count = 4096;
    rargs.Encode(args);
    call.args = args.Take();
  }
  Bytes req_wire = call.Encode();

  const Endpoint client_ep{kClientAddr, kClientPort};
  uint32_t xid = 0;
  auto round_trip = [&]() {
    ++xid;
    req_wire[0] = static_cast<uint8_t>(xid >> 24);
    req_wire[1] = static_cast<uint8_t>(xid >> 16);
    req_wire[2] = static_cast<uint8_t>(xid >> 8);
    req_wire[3] = static_cast<uint8_t>(xid);
    uproxy.HandleOutbound(Packet::MakeUdp(client_ep, config.virtual_server, req_wire));
    queue.RunUntilIdle();
  };

  constexpr int kWarmup = 4096 + 128;  // run the DRC ring to FIFO steady state
  constexpr int kMeasured = 1024;
  for (int i = 0; i < kWarmup; ++i) {
    round_trip();
  }
  const uint64_t before = g_allocs;
  for (int i = 0; i < kMeasured; ++i) {
    round_trip();
  }
  const uint64_t delta = g_allocs - before;
  const bool ok = delta == 0 && replies == static_cast<uint64_t>(kWarmup) + kMeasured;
  std::printf("\n--assert-zero-alloc: %llu allocations over %d served end-to-end requests "
              "(%llu replies) — %s\n",
              static_cast<unsigned long long>(delta), kMeasured,
              static_cast<unsigned long long>(replies), ok ? "OK" : "FAILED");
  return ok;
}

struct BenchLine {
  const char* name;
  double saturation = 0;
  std::vector<SfsPoint> points;
};

void RunFig5(bool smoke, bool proxy_cache, const char* metrics_path, const char* flight_path,
             const char* profile_path, uint32_t tenants) {
  std::printf("Figure 5: SFS97-like delivered throughput (IOPS) vs offered load%s%s\n\n",
              proxy_cache ? " [in-proxy metadata cache ON]" : "",
              tenants > 0 ? " [tenant/SLO plane ON]" : "");
  const std::vector<double> offered_loads =
      smoke ? std::vector<double>{400, 800}
            : std::vector<double>{400, 800, 1600, 3200, 6400, 9600, 12800};

  std::printf("%-10s", "offered");
  for (double offered : offered_loads) {
    std::printf("%8.0f", offered);
  }
  std::printf("%12s\n", "sat(<40ms)");

  // SPECsfs disqualifies runs whose mean latency exceeds the response-time
  // bound (40ms in SFS97); delivered IOPS past that point is metadata-only
  // throughput with unusable I/O latency.
  constexpr double kLatencyBoundMs = 40.0;
  std::vector<BenchLine> lines;
  auto run_line = [&](const char* name, auto&& runner) {
    BenchLine line;
    line.name = name;
    std::printf("%-10s", name);
    for (double offered : offered_loads) {
      const SfsPoint point = runner(offered);
      if (point.latency_ms <= kLatencyBoundMs) {
        line.saturation = std::max(line.saturation, point.delivered);
      }
      line.points.push_back(point);
      std::printf("%8.0f", point.delivered);
      std::fflush(stdout);
    }
    std::printf("%12.0f\n", line.saturation);
    lines.push_back(std::move(line));
    return lines.back().saturation;
  };

  const double base = run_line("NFS", [](double o) { return RunBaselinePoint(o); });
  double s2 = 0;
  if (smoke) {
    s2 = run_line("Slice-2", [&](double o) { return RunSlicePoint(2, o, proxy_cache); });
    std::printf("\nsaturation ratio vs baseline: Slice-2 %.1fx\n", s2 / base);
  } else {
    const double s1 = run_line("Slice-1", [&](double o) { return RunSlicePoint(1, o, proxy_cache); });
    s2 = run_line("Slice-2", [&](double o) { return RunSlicePoint(2, o, proxy_cache); });
    const double s4 = run_line("Slice-4", [&](double o) { return RunSlicePoint(4, o, proxy_cache); });
    const double s8 = run_line("Slice-8", [&](double o) { return RunSlicePoint(8, o, proxy_cache); });
    std::printf("\nsaturation ratios vs baseline (paper: Slice-8/NFS = 6600/850 = 7.8x):\n");
    std::printf("  Slice-1 %.1fx  Slice-2 %.1fx  Slice-4 %.1fx  Slice-8 %.1fx\n", s1 / base,
                s2 / base, s4 / base, s8 / base);
    std::printf(
        "shape checks: Slice-1 > NFS baseline; saturation grows with storage nodes;\n"
        "all Slice lines serve a single unified volume (no volume partitioning).\n");
  }

  // Optional metered run: one Slice-2 point with the full metrics plane on
  // (plus the tenant/SLO plane under --tenants).
  std::map<std::string, uint64_t> counter_totals;
  std::map<std::string, uint64_t> tenant_totals;
  if (metrics_path != nullptr) {
    const double offered = smoke ? 800 : 1600;
    std::printf("\n--metrics: Slice-2 @ %.0f ops/s with the metrics plane enabled%s\n", offered,
                tenants > 0 ? " + tenant/SLO plane" : "");
    std::string metrics_json;
    RunSlicePointMetered(2, offered, &metrics_json, nullptr, &counter_totals, proxy_cache,
                         tenants, tenants > 0 ? &tenant_totals : nullptr);
    std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
    out << metrics_json << "\n";
    std::printf("metrics snapshot written to %s (hash %016llx)\n", metrics_path,
                static_cast<unsigned long long>(obs::MetricsContentHash(metrics_json)));
    if (proxy_cache) {
      // The acceptance evidence: lookups/getattrs absorbed at the µproxy
      // never become dir-tier RPCs, so dir_op_lookup/dir_op_getattr shrink
      // by exactly the cache hit counts (pinned in the fig5_cache golden).
      std::printf("in-proxy cache: lookup hits %llu, getattr hits %llu; "
                  "dir-tier lookup RPCs %llu, getattr RPCs %llu\n",
                  static_cast<unsigned long long>(counter_totals["uproxy_cache_lookup_hits"]),
                  static_cast<unsigned long long>(counter_totals["uproxy_cache_getattr_hits"]),
                  static_cast<unsigned long long>(counter_totals["dir_op_lookup"]),
                  static_cast<unsigned long long>(counter_totals["dir_op_getattr"]));
    }
  }

  // Optional flight-recorded run: one Slice-2 point with the event log on.
  if (flight_path != nullptr) {
    const double offered = smoke ? 800 : 1600;
    std::printf("\n--flight-dump: Slice-2 @ %.0f ops/s with the event log enabled\n", offered);
    std::string flight_json;
    RunSlicePointFlight(2, offered, &flight_json, proxy_cache);
    obs::WriteFlightDump(flight_path, flight_json);
    std::printf("flight dump written to %s (hash %016llx)\n", flight_path,
                static_cast<unsigned long long>(obs::FlightContentHash(flight_json)));
  }

  // Optional profiled run: one Slice-2 point with the profiler (plus metrics
  // and the event log, so the flight dump carries the profile section).
  SfsProfile profile;
  if (profile_path != nullptr) {
    const double offered = smoke ? 800 : 1600;
    std::printf("\n--profile: Slice-2 @ %.0f ops/s with the profiler enabled\n", offered);
    RunSlicePointProfiled(2, offered, &profile, nullptr, proxy_cache);
    std::ofstream out(profile_path, std::ios::binary | std::ios::trunc);
    out << profile.profile_json << "\n";
    std::string folded_path(profile_path);
    const size_t dot = folded_path.rfind(".json");
    folded_path = (dot == std::string::npos ? folded_path : folded_path.substr(0, dot)) +
                  ".folded";
    std::ofstream folded(folded_path, std::ios::binary | std::ios::trunc);
    folded << profile.folded;
    std::printf("profile written to %s (+ %s), sim hash %016llx, "
                "min host ledger coverage %.2f%%\n",
                profile_path, folded_path.c_str(),
                static_cast<unsigned long long>(profile.sim_hash),
                static_cast<double>(profile.min_coverage_bp) / 100.0);
  }

  if (tenants > 0 && !tenant_totals.empty()) {
    std::printf("per-tenant attribution (metered Slice-2 point):\n");
    for (uint32_t t = 1; t <= tenants; ++t) {
      const std::string prefix = "tenant" + std::to_string(t) + "_";
      uint64_t total = 0;
      for (const auto& [name, value] : tenant_totals) {
        if (name.rfind(prefix + "ops_", 0) == 0) {
          total += value;
        }
      }
      std::printf("  tenant %u: %llu ops, %llu bad\n", t,
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(tenant_totals[prefix + "bad_ops"]));
    }
  }

  const char* bench_name = profile_path != nullptr
                               ? "fig5_profile"
                               : (tenants > 0 ? "fig5_tenants"
                                              : (proxy_cache ? "fig5_cache" : "fig5"));
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String(bench_name);
  w.Key("smoke").Int(smoke ? 1 : 0);
  w.Key("proxy_cache").Int(proxy_cache ? 1 : 0);
  w.Key("tenants").Int(static_cast<int64_t>(tenants));
  w.Key("latency_bound_ms").Fixed(kLatencyBoundMs, 1);
  w.Key("offered").BeginArray();
  for (double offered : offered_loads) {
    w.Fixed(offered, 0);
  }
  w.EndArray();
  w.Key("lines").BeginArray();
  for (const BenchLine& line : lines) {
    w.BeginObject();
    w.Key("name").String(line.name);
    w.Key("saturation_iops").Fixed(line.saturation, 1);
    w.Key("points").BeginArray();
    for (const SfsPoint& point : line.points) {
      w.BeginObject();
      w.Key("offered").Fixed(point.offered, 0);
      w.Key("delivered_iops").Fixed(point.delivered, 1);
      w.Key("mean_ms").Fixed(point.latency_ms, 3);
      w.Key("p50_ms").Fixed(point.p50_ms, 3);
      w.Key("p95_ms").Fixed(point.p95_ms, 3);
      w.Key("p99_ms").Fixed(point.p99_ms, 3);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  if (!counter_totals.empty()) {
    w.Key("metrics_counter_totals").BeginObject();
    for (const auto& [name, value] : counter_totals) {
      w.Key(name).UInt(value);
    }
    w.EndObject();
  }
  if (!tenant_totals.empty()) {
    w.Key("tenant_totals").BeginObject();
    for (const auto& [name, value] : tenant_totals) {
      w.Key(name).UInt(value);
    }
    w.EndObject();
  }
  if (profile_path != nullptr) {
    // Sim-side rollup only: byte-stable same-seed, so a golden may pin it.
    w.Key("profile").BeginObject();
    w.Key("sim_hash").UInt(profile.sim_hash);
    w.Key("min_coverage_bp").UInt(profile.min_coverage_bp);
    w.EndObject();
  }
  w.EndObject();
  WriteBenchFile(bench_name, w.str());
}

}  // namespace
}  // namespace slice

int main(int argc, char** argv) {
  bool smoke = false;
  bool proxy_cache = false;
  bool assert_zero_alloc = false;
  const char* metrics_path = nullptr;
  const char* flight_path = nullptr;
  const char* profile_path = nullptr;
  uint32_t tenants = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--proxy-cache") == 0) {
      proxy_cache = true;
    } else if (std::strcmp(argv[i], "--assert-zero-alloc") == 0) {
      assert_zero_alloc = true;
    } else if (std::strcmp(argv[i], "--no-pool") == 0) {
      slice::PacketPool::SetEnabled(false);
    } else if (std::strcmp(argv[i], "--no-batch") == 0) {
      slice::Network::SetDeliveryBatching(false);
    } else if (std::strcmp(argv[i], "--metrics") == 0 && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flight-dump") == 0 && i + 1 < argc) {
      flight_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile") == 0 && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (std::strcmp(argv[i], "--tenants") == 0 && i + 1 < argc) {
      tenants = static_cast<uint32_t>(std::atoi(argv[++i]));
    }
  }
  slice::RunFig5(smoke, proxy_cache, metrics_path, flight_path, profile_path, tenants);
  if (assert_zero_alloc && !slice::RunZeroAllocProbe()) {
    return 1;
  }
  return 0;
}
