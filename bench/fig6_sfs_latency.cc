// Figure 6 reproduction: SPECsfs97-style mean latency vs delivered
// throughput.
//
//   paper: latency stays low until saturation, with visible jumps where the
//   ensemble's small-file-server cache (1GB across two servers) overflows as
//   the self-scaling file set grows; the EMC Celerra 506 comparison point
//   had lower latency in the nearest-equivalent configuration, but Slice
//   kept scaling by adding nodes.
//
// We sweep offered load (the file set grows with it, like SPECsfs) and print
// (delivered IOPS, mean ms) series for the baseline and Slice-N.
//
// Flags:
//   --smoke           small sweep (2 loads, NFS + Slice-2) for CI; the
//                     resulting BENCH_fig6.json is checked against
//                     bench/golden/fig6_smoke_golden.json
//   --trace           re-run one representative Slice point with end-to-end
//                     tracing enabled, print the critical-path breakdown
//                     behind its mean latency (wire vs queue vs cpu vs disk
//                     per opclass), and write the chrome://tracing JSON to
//                     fig6_trace.json
//   --flight-dump <path>  re-run one Slice point with the event log on and
//                     write the flight-recorder dump to <path>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "bench/bench_json.h"
#include "bench/sfs_harness.h"

namespace slice {
namespace {

void RunFig6(bool smoke) {
  std::printf("Figure 6: SFS97-like mean latency (ms) vs delivered throughput (IOPS)\n\n");
  const std::vector<double> offered_loads =
      smoke ? std::vector<double>{400, 800}
            : std::vector<double>{400, 800, 1600, 3200, 6400, 9600, 12800};

  struct BenchLine {
    const char* name;
    std::vector<SfsPoint> points;
  };
  std::vector<BenchLine> lines;
  auto run_line = [&](const char* name, auto&& runner) {
    BenchLine line{name, {}};
    std::printf("%-10s", name);
    for (double offered : offered_loads) {
      const SfsPoint point = runner(offered);
      line.points.push_back(point);
      std::printf("  (%5.0f, %5.1fms)", point.delivered, point.latency_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
    lines.push_back(std::move(line));
  };

  std::printf("%-10s  (delivered IOPS, mean latency) per offered point %s\n", "line",
              smoke ? "[400, 800]" : "[400..9600]");
  run_line("NFS", [](double o) { return RunBaselinePoint(o); });
  if (smoke) {
    run_line("Slice-2", [](double o) { return RunSlicePoint(2, o); });
  } else {
    run_line("Slice-1", [](double o) { return RunSlicePoint(1, o); });
    run_line("Slice-2", [](double o) { return RunSlicePoint(2, o); });
    run_line("Slice-4", [](double o) { return RunSlicePoint(4, o); });
    run_line("Slice-8", [](double o) { return RunSlicePoint(8, o); });
  }

  std::printf(
      "\nshape checks (paper): latency low and flat until each line approaches its\n"
      "saturation point, then climbs steeply; latency jumps appear as the growing\n"
      "file set overflows the small-file-server caches; larger Slice\n"
      "configurations sustain acceptable latency to higher IOPS.\n");

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("fig6");
  w.Key("smoke").Int(smoke ? 1 : 0);
  w.Key("offered").BeginArray();
  for (double offered : offered_loads) {
    w.Fixed(offered, 0);
  }
  w.EndArray();
  w.Key("lines").BeginArray();
  for (const BenchLine& line : lines) {
    w.BeginObject();
    w.Key("name").String(line.name);
    w.Key("points").BeginArray();
    for (const SfsPoint& point : line.points) {
      w.BeginObject();
      w.Key("offered").Fixed(point.offered, 0);
      w.Key("delivered_iops").Fixed(point.delivered, 1);
      w.Key("mean_ms").Fixed(point.latency_ms, 3);
      w.Key("p50_ms").Fixed(point.p50_ms, 3);
      w.Key("p95_ms").Fixed(point.p95_ms, 3);
      w.Key("p99_ms").Fixed(point.p99_ms, 3);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  WriteBenchFile("fig6", w.str());
}

void RunFig6Trace() {
  std::printf("\n--trace: Slice-4 @ 1600 ops/s with end-to-end tracing enabled\n\n");
  obs::CriticalPathReport report;
  std::string json;
  const SfsPoint point = RunSlicePointTraced(4, 1600, &report, &json);
  std::printf("delivered %.0f IOPS, mean %.1f ms; %llu ops traced\n\n", point.delivered,
              point.latency_ms, static_cast<unsigned long long>(report.traces_analyzed));
  std::printf("%s", obs::CriticalPath::Format(report).c_str());
  std::ofstream out("fig6_trace.json", std::ios::binary | std::ios::trunc);
  out << json;
  std::printf("\nfull trace written to fig6_trace.json (load in chrome://tracing)\n");
}

void RunFig6Flight(bool smoke, const char* path) {
  const size_t nodes = smoke ? 2 : 4;
  const double offered = smoke ? 800 : 1600;
  std::printf("\n--flight-dump: Slice-%zu @ %.0f ops/s with the event log enabled\n", nodes,
              offered);
  std::string flight_json;
  RunSlicePointFlight(nodes, offered, &flight_json);
  obs::WriteFlightDump(path, flight_json);
  std::printf("flight dump written to %s (hash %016llx)\n", path,
              static_cast<unsigned long long>(obs::FlightContentHash(flight_json)));
}

}  // namespace
}  // namespace slice

int main(int argc, char** argv) {
  bool trace = false;
  bool smoke = false;
  const char* flight_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--flight-dump") == 0 && i + 1 < argc) {
      flight_path = argv[++i];
    }
  }
  slice::RunFig6(smoke);
  if (trace) {
    slice::RunFig6Trace();
  }
  if (flight_path != nullptr) {
    slice::RunFig6Flight(smoke, flight_path);
  }
  return 0;
}
