// Figure 6 reproduction: SPECsfs97-style mean latency vs delivered
// throughput.
//
//   paper: latency stays low until saturation, with visible jumps where the
//   ensemble's small-file-server cache (1GB across two servers) overflows as
//   the self-scaling file set grows; the EMC Celerra 506 comparison point
//   had lower latency in the nearest-equivalent configuration, but Slice
//   kept scaling by adding nodes.
//
// We sweep offered load (the file set grows with it, like SPECsfs) and print
// (delivered IOPS, mean ms) series for the baseline and Slice-N.
#include <cstdio>

#include "bench/sfs_harness.h"

namespace slice {
namespace {

void RunFig6() {
  std::printf("Figure 6: SFS97-like mean latency (ms) vs delivered throughput (IOPS)\n\n");
  const double offered_loads[] = {400, 800, 1600, 3200, 6400, 9600, 12800};

  auto run_line = [&](const char* name, auto&& runner) {
    std::printf("%-10s", name);
    for (double offered : offered_loads) {
      const SfsPoint point = runner(offered);
      std::printf("  (%5.0f, %5.1fms)", point.delivered, point.latency_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  };

  std::printf("%-10s  (delivered IOPS, mean latency) per offered point %s\n", "line",
              "[400..9600]");
  run_line("NFS", [](double o) { return RunBaselinePoint(o); });
  run_line("Slice-1", [](double o) { return RunSlicePoint(1, o); });
  run_line("Slice-2", [](double o) { return RunSlicePoint(2, o); });
  run_line("Slice-4", [](double o) { return RunSlicePoint(4, o); });
  run_line("Slice-8", [](double o) { return RunSlicePoint(8, o); });

  std::printf(
      "\nshape checks (paper): latency low and flat until each line approaches its\n"
      "saturation point, then climbs steeply; latency jumps appear as the growing\n"
      "file set overflows the small-file-server caches; larger Slice\n"
      "configurations sustain acceptable latency to higher IOPS.\n");
}

}  // namespace
}  // namespace slice

int main() {
  slice::RunFig6();
  return 0;
}
