// Table 2 reproduction: bulk I/O bandwidth in the test ensemble.
//
//   paper: single-client read 62.5 MB/s, write 38.9 MB/s;
//          8-client saturation read 437 MB/s, write 479 MB/s;
//          mirrored (2 replicas): 52.9 / 32.2 single, 222 / 251 saturation.
//
// Configuration mirrors §5: eight storage nodes (8 disks each), 32KB NFS
// block size, read-ahead depth 4, striped (or 2-way mirrored) large files.
// Absolute numbers depend on calibration; the shape to check is: writes are
// client-CPU-bound near 40 MB/s, reads run faster per client, saturation
// scales with storage nodes, and mirroring costs roughly half the saturation
// bandwidth (and some single-client bandwidth).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_json.h"
#include "src/slice/ensemble.h"
#include "src/workload/seqio.h"

namespace slice {
namespace {

struct RunResult {
  double mb_per_sec = 0;
  // Per-request (block) latency distribution aggregated across streams.
  LatencyStats latency;
};

// Runs `num_clients` sequential streams of `bytes_per_client` each and
// returns aggregate bandwidth.
RunResult RunStreams(bool write, bool mirrored, int num_clients, uint64_t bytes_per_client) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;  // static healthy ensemble; no heartbeat traffic
  config.num_storage_nodes = 8;
  config.num_small_file_servers = 0;  // pure bulk path, as in the dd test
  config.num_coordinators = 1;
  config.num_clients = static_cast<size_t>(num_clients);
  config.default_replication = mirrored ? 2 : 1;
  Ensemble ensemble(queue, config);

  // Create one file per client.
  std::vector<FileHandle> files;
  for (int c = 0; c < num_clients; ++c) {
    auto client = ensemble.MakeSyncClient(static_cast<size_t>(c));
    CreateRes created =
        client->Create(ensemble.root(), "dd" + std::to_string(c)).value();
    SLICE_CHECK(created.status == Nfsstat3::kOk);
    files.push_back(*created.object);
  }

  // Reads need data on disk first: populate, then restart the storage nodes
  // so caches are cold (the paper's 1.25GB file exceeded the node caches).
  if (!write) {
    for (int c = 0; c < num_clients; ++c) {
      SeqIoParams populate;
      populate.file_bytes = bytes_per_client;
      populate.write = true;
      bool done = false;
      SeqIoProcess writer(ensemble.client_host(static_cast<size_t>(c)), queue,
                          ensemble.virtual_server(), files[static_cast<size_t>(c)], populate,
                          [&] { done = true; });
      writer.Start();
      queue.RunUntilIdle();
      SLICE_CHECK(done);
    }
    for (size_t i = 0; i < ensemble.num_storage_nodes(); ++i) {
      ensemble.storage_node(i).Fail();
      ensemble.storage_node(i).Restart();
    }
  }

  std::vector<std::unique_ptr<SeqIoProcess>> procs;
  int finished = 0;
  const SimTime start = queue.now();
  for (int c = 0; c < num_clients; ++c) {
    SeqIoParams params;
    params.file_bytes = bytes_per_client;
    params.write = write;
    // The client host's NFS stack cost; writing to both mirrors doubles the
    // payload the host must push ("the client host writes to both mirrors").
    params.client_ns_per_byte = write ? (mirrored ? 32.0 : 24.0) : 14.0;
    params.commit_every = 16 << 20;  // overlap flushing with the stream
    procs.push_back(std::make_unique<SeqIoProcess>(
        ensemble.client_host(static_cast<size_t>(c)), queue, ensemble.virtual_server(),
        files[static_cast<size_t>(c)], params, [&] { ++finished; }));
  }
  for (auto& proc : procs) {
    proc->Start();
  }
  queue.RunUntilIdle();
  SLICE_CHECK(finished == num_clients);

  // Measure to the last stream's completion (trailing writeback/probe timers
  // idle long after the data has landed).
  SimTime last_done = start;
  for (auto& proc : procs) {
    last_done = std::max(last_done, start + proc->elapsed());
  }
  const double seconds = ToSeconds(last_done - start);
  RunResult result;
  result.mb_per_sec =
      static_cast<double>(bytes_per_client) * num_clients / 1e6 / seconds;
  for (auto& proc : procs) {
    result.latency.Merge(proc->latency());
  }
  return result;
}

void RunTable2() {
  std::printf("Table 2: bulk I/O bandwidth (MB/s)\n");
  std::printf("%-18s %14s %14s %14s\n", "workload", "paper", "measured", "ratio");

  struct Row {
    const char* name;
    bool write;
    bool mirrored;
    int clients;
    uint64_t bytes;
    double paper;
  };
  const Row rows[] = {
      {"read (1 client)", false, false, 1, 256ull << 20, 62.5},
      {"write (1 client)", true, false, 1, 256ull << 20, 38.9},
      {"read-mirror (1)", false, true, 1, 256ull << 20, 52.9},
      {"write-mirror (1)", true, true, 1, 256ull << 20, 32.2},
      {"read (8 clients)", false, false, 8, 128ull << 20, 437.0},
      {"write (8 clients)", true, false, 8, 128ull << 20, 479.0},
      {"read-mirror (8)", false, true, 8, 128ull << 20, 222.0},
      {"write-mirror (8)", true, true, 8, 128ull << 20, 251.0},
  };
  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("table2");
  w.Key("rows").BeginArray();
  for (const Row& row : rows) {
    const RunResult result = RunStreams(row.write, row.mirrored, row.clients, row.bytes);
    std::printf("%-18s %14.1f %14.1f %14.2f\n", row.name, row.paper, result.mb_per_sec,
                result.mb_per_sec / row.paper);
    std::fflush(stdout);
    w.BeginObject();
    w.Key("name").String(row.name);
    w.Key("paper_mb_per_sec").Fixed(row.paper, 1);
    w.Key("measured_mb_per_sec").Fixed(result.mb_per_sec, 1);
    w.Key("ratio").Fixed(result.mb_per_sec / row.paper, 3);
    w.Key("block_p50_ms").Fixed(ToMillis(result.latency.Percentile(50)), 3);
    w.Key("block_p95_ms").Fixed(ToMillis(result.latency.Percentile(95)), 3);
    w.Key("block_p99_ms").Fixed(ToMillis(result.latency.Percentile(99)), 3);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  WriteBenchFile("table2", w.str());
  std::printf(
      "\nshape checks: writes client-CPU-bound near 40 MB/s; saturation >> single\n"
      "client; mirroring roughly halves saturation bandwidth.\n");
}

}  // namespace
}  // namespace slice

int main() {
  slice::RunTable2();
  return 0;
}
