// Ablation: routing-hash choice. The paper (§4.1) states MD5 "yields a
// combination of balanced distribution and low cost that is superior to
// competing hash functions available to us". We compare MD5 against FNV-1a
// on both axes: cost (ns per fingerprint) and balance (chi-squared-style
// spread of (parent, name) fingerprints over server buckets).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "src/common/hash.h"
#include "src/common/md5.h"
#include "src/dir/dir_server.h"
#include "src/dir/dir_store.h"

namespace slice {
namespace {

constexpr uint64_t kSecret = 0xab1e;

std::vector<std::pair<FileHandle, std::string>> NameCorpus(size_t n) {
  std::vector<std::pair<FileHandle, std::string>> corpus;
  corpus.reserve(n);
  // Realistic skew: a few parent directories, sequential-ish names (source
  // trees name files foo1.c foo2.c ... — adversarial for weak hashes).
  for (size_t i = 0; i < n; ++i) {
    const uint64_t dir_id = MakeFileid(static_cast<uint32_t>(i % 3), 1 + i % 17);
    FileHandle dir = FileHandle::Make(1, dir_id, 1, FileType3::kDir, 1, kSecret);
    corpus.emplace_back(dir, "file" + std::to_string(i) + ".c");
  }
  return corpus;
}

uint64_t FnvFingerprint(const FileHandle& parent, const std::string& name) {
  return Fnv1a64(name, Fnv1a64(parent.bytes()));
}

void BM_Md5Fingerprint(benchmark::State& state) {
  const auto corpus = NameCorpus(1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [dir, name] = corpus[i++ % corpus.size()];
    benchmark::DoNotOptimize(NameFingerprint(dir, name));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Md5Fingerprint);

void BM_FnvFingerprint(benchmark::State& state) {
  const auto corpus = NameCorpus(1024);
  size_t i = 0;
  for (auto _ : state) {
    const auto& [dir, name] = corpus[i++ % corpus.size()];
    benchmark::DoNotOptimize(FnvFingerprint(dir, name));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FnvFingerprint);

// Balance report: max/min bucket load over `buckets` servers, lower is
// better (1.0 = perfectly even).
template <typename HashFn>
double Imbalance(HashFn&& fn, size_t buckets, size_t names) {
  std::vector<size_t> counts(buckets, 0);
  const auto corpus = NameCorpus(names);
  for (const auto& [dir, name] : corpus) {
    ++counts[fn(dir, name) % buckets];
  }
  size_t max_count = 0;
  size_t min_count = names;
  for (size_t c : counts) {
    max_count = std::max(max_count, c);
    min_count = std::min(min_count, c);
  }
  return static_cast<double>(max_count) / static_cast<double>(std::max<size_t>(1, min_count));
}

void ReportBalance() {
  std::printf("\nAblation: fingerprint balance over N directory servers\n");
  std::printf("(max/min bucket load across 40000 (dir,name) pairs; 1.00 = even)\n");
  std::printf("%-8s %10s %10s\n", "servers", "md5", "fnv1a");
  for (size_t buckets : {2, 4, 8, 16}) {
    const double md5 = Imbalance(
        [](const FileHandle& d, const std::string& n) { return NameFingerprint(d, n); },
        buckets, 40000);
    const double fnv = Imbalance(
        [](const FileHandle& d, const std::string& n) { return FnvFingerprint(d, n); },
        buckets, 40000);
    std::printf("%-8zu %10.3f %10.3f\n", buckets, md5, fnv);
  }
  std::printf(
      "\nMD5 costs more per fingerprint but its balance is workload-independent;\n"
      "FNV-1a is faster yet its spread depends on name structure. The paper chose\n"
      "MD5 for exactly this robustness/cost tradeoff (§4.1).\n");
}

}  // namespace
}  // namespace slice

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  slice::ReportBalance();
  return 0;
}
