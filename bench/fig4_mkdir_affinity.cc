// Figure 4 reproduction: impact of directory affinity (1-p) on mkdir
// switching, four directory servers.
//
//   paper: X = probability a new directory stays on its parent's server;
//   Y = mean untar latency. Light load (1 process) is flat; heavier loads
//   (4/8/16 processes) dip slightly as affinity rises (fewer cross-server
//   ops), then degrade sharply toward 100% affinity as all directories pile
//   onto one server. Even distributions need < 20% of mkdirs redirected.
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/slice/ensemble.h"
#include "src/workload/untar.h"

namespace slice {
namespace {

int CreationsPerProcess() {
  if (const char* env = std::getenv("SLICE_BENCH_CREATIONS"); env != nullptr) {
    return std::atoi(env);
  }
  return 1000;
}

constexpr int kClientHosts = 4;  // the paper used four client nodes here
constexpr int kDirServers = 4;

double RunPoint(double affinity, int num_processes) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;  // static healthy ensemble; no heartbeat traffic
  config.num_dir_servers = kDirServers;
  config.num_small_file_servers = 1;
  config.num_storage_nodes = 2;
  config.num_clients = kClientHosts;
  config.name_policy = NamePolicy::kMkdirSwitching;
  config.mkdir_redirect_probability = 1.0 - affinity;
  Ensemble ensemble(queue, config);

  std::vector<std::unique_ptr<UntarProcess>> procs;
  int finished = 0;
  for (int p = 0; p < num_processes; ++p) {
    UntarParams params;
    params.total_creations = CreationsPerProcess();
    params.top_name = "untar_p" + std::to_string(p);
    procs.push_back(std::make_unique<UntarProcess>(
        ensemble.client_host(p % kClientHosts), queue, ensemble.virtual_server(),
        ensemble.root(), params, /*seed=*/500 + p, [&finished] { ++finished; }));
  }
  for (auto& proc : procs) {
    proc->Start();
  }
  queue.RunUntilIdle();
  SLICE_CHECK(finished == num_processes);

  double total_ms = 0;
  for (auto& proc : procs) {
    total_ms += ToMillis(proc->elapsed());
  }
  return total_ms / num_processes;
}

void RunFig4() {
  std::printf("Figure 4: mkdir-switching affinity sweep, %d directory servers\n", kDirServers);
  std::printf("(mean untar latency in ms; affinity = 1 - p)\n\n");

  const double affinities[] = {0.0, 0.25, 0.5, 0.75, 0.9, 1.0};
  const int process_counts[] = {1, 4, 8, 16};

  std::printf("%-10s", "affinity");
  for (double a : affinities) {
    std::printf("%10.2f", a);
  }
  std::printf("\n");
  for (int procs : process_counts) {
    std::printf("procs=%-4d", procs);
    for (double a : affinities) {
      std::printf("%10.0f", RunPoint(a, procs));
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf(
      "\nshape checks (paper): flat for 1 process; for heavier loads, latency is\n"
      "steady or slightly better at mid affinity, then climbs sharply at 1.00 as\n"
      "the whole namespace lands on one server.\n");
}

}  // namespace
}  // namespace slice

int main() {
  slice::RunFig4();
  return 0;
}
