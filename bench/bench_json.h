// Machine-readable bench baselines: every figure/table bench emits a
// BENCH_<name>.json next to its human-readable output, so CI can diff runs
// against a checked-in golden with tolerances instead of eyeballing logs.
//
// The writer is deliberately tiny and deterministic: keys are emitted in the
// order the bench writes them (benches write fixed key sequences), and all
// floats go through the integer fixed-point formatter shared with the
// metrics exporter — byte output never depends on locale or printf.
#ifndef SLICE_BENCH_BENCH_JSON_H_
#define SLICE_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/metrics_export.h"

namespace slice {

class JsonWriter {
 public:
  JsonWriter& BeginObject() {
    Prefix();
    out_ += '{';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    stack_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& BeginArray() {
    Prefix();
    out_ += '[';
    stack_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    stack_.pop_back();
    out_ += ']';
    return *this;
  }
  JsonWriter& Key(std::string_view name) {
    Prefix();
    out_ += '"';
    out_ += name;
    out_ += "\":";
    pending_key_ = true;
    return *this;
  }
  JsonWriter& String(std::string_view value) {
    Prefix();
    out_ += '"';
    out_ += value;
    out_ += '"';
    return *this;
  }
  JsonWriter& Int(int64_t value) {
    Prefix();
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& UInt(uint64_t value) {
    Prefix();
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Fixed(double value, int decimals = 3) {
    Prefix();
    obs::AppendFixed(out_, value, decimals);
    return *this;
  }
  // Splices an already-serialized JSON value (e.g. a metrics snapshot).
  JsonWriter& Raw(std::string_view json) {
    Prefix();
    out_ += json;
    return *this;
  }

  const std::string& str() const { return out_; }

 private:
  // Emits the separating comma for the second and later values in the
  // enclosing object/array. A value directly after Key() never takes one.
  void Prefix() {
    if (pending_key_) {
      pending_key_ = false;
      return;
    }
    if (!stack_.empty()) {
      if (stack_.back()) {
        out_ += ',';
      }
      stack_.back() = true;
    }
  }

  std::string out_;
  std::vector<bool> stack_;
  bool pending_key_ = false;
};

// Writes `json` to BENCH_<name>.json in the working directory (or to `path`
// when non-empty). Returns true on success.
inline bool WriteBenchFile(const std::string& name, const std::string& json,
                           const std::string& path = {}) {
  const std::string file = path.empty() ? "BENCH_" + name + ".json" : path;
  std::FILE* f = std::fopen(file.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_json: cannot open %s\n", file.c_str());
    return false;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", file.c_str());
  return true;
}

}  // namespace slice

#endif  // SLICE_BENCH_BENCH_JSON_H_
