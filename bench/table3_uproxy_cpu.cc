// Table 3 reproduction: µproxy CPU cost per packet, by stage.
//
//   paper (500 MHz Alpha, 6250 packets/s): interception 0.7%, packet decode
//   4.1%, redirection/rewriting 0.5%, soft-state logic 0.8% — 6.1% total,
//   with decode dominating because of the variable-length ONC RPC header.
//
// We measure the same stages of *this* µproxy implementation with
// google-benchmark on real packets from the untar op mix, and report each
// stage's ns/packet plus its share of total µproxy CPU and the equivalent
// %CPU at the paper's 6250 packets/s operating point.
// With --trace, a fifth stage is measured: span-context handling (minting
// ids, attaching/peeking the packet trailer, recording a span into the
// bounded ring) — the incremental µproxy cost of end-to-end tracing — plus
// the disabled-tracer fast path, which should be free.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <new>
#include <vector>

#include "bench/bench_json.h"
#include "src/core/pending_map.h"
#include "src/obs/profiler.h"
#include "src/core/request_decode.h"
#include "src/core/routing_table.h"
#include "src/dir/dir_server.h"
#include "src/net/packet.h"
#include "src/nfs/nfs_xdr.h"
#include "src/obs/trace.h"
#include "src/rpc/rpc_message.h"
#include "src/rpc/rpc_server.h"
#include "src/sim/stats.h"
#include "src/storage/block_cache.h"
#include "src/storage/object_store.h"

// Process-wide allocation counter: the fast-path measurement reports
// allocs/pkt, which must be exactly zero in steady state (the same
// operator-new override the fastpath_alloc_test uses).
static uint64_t g_allocs = 0;

void* operator new(std::size_t size) {
  ++g_allocs;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slice {
namespace {

constexpr uint64_t kSecret = 0x51ce;

// Builds the seven-packet untar request mix: lookup, access, create,
// getattr, lookup, setattr, setattr (paper §5).
std::vector<Packet> UntarPacketMix() {
  const FileHandle dir = FileHandle::Make(1, MakeFileid(0, 5), 1, FileType3::kDir, 1, kSecret);
  const FileHandle file = FileHandle::Make(1, MakeFileid(0, 6), 1, FileType3::kReg, 1, kSecret);
  const Endpoint client{0x0a000901, 800};
  const Endpoint server{0x0a000064, 2049};

  auto make = [&](NfsProc proc, const std::function<void(XdrEncoder&)>& encode_args) {
    RpcCall call;
    call.xid = 1000 + static_cast<uint32_t>(proc);
    call.prog = kNfsProgram;
    call.vers = kNfsVersion;
    call.proc = static_cast<uint32_t>(proc);
    call.cred.machine_name = "bench-client-host";  // realistic variable length
    call.cred.gids = {0, 5, 20};
    XdrEncoder enc;
    encode_args(enc);
    call.args = enc.Take();
    return Packet::MakeUdp(client, server, call.Encode());
  };

  std::vector<Packet> mix;
  mix.push_back(make(NfsProc::kLookup,
                     [&](XdrEncoder& e) { DirOpArgs{dir, "newfile.c"}.Encode(e); }));
  mix.push_back(make(NfsProc::kAccess, [&](XdrEncoder& e) { AccessArgs{dir, 0x3f}.Encode(e); }));
  mix.push_back(make(NfsProc::kCreate, [&](XdrEncoder& e) {
    CreateArgs args;
    args.dir = dir;
    args.name = "newfile.c";
    args.Encode(e);
  }));
  mix.push_back(make(NfsProc::kGetattr, [&](XdrEncoder& e) { GetattrArgs{file}.Encode(e); }));
  mix.push_back(make(NfsProc::kLookup,
                     [&](XdrEncoder& e) { DirOpArgs{dir, "newfile.c"}.Encode(e); }));
  mix.push_back(make(NfsProc::kSetattr, [&](XdrEncoder& e) {
    SetattrArgs args;
    args.object = file;
    args.new_attributes.mode = 0644;
    args.Encode(e);
  }));
  mix.push_back(make(NfsProc::kSetattr, [&](XdrEncoder& e) {
    SetattrArgs args;
    args.object = file;
    args.new_attributes.mtime = NfsTime{1, 0};
    args.Encode(e);
  }));
  return mix;
}

// Stage 1: packet interception — recognizing an intercepted UDP packet and
// locating the RPC payload (header sanity checks, address match).
void BM_Stage1_Interception(benchmark::State& state) {
  const std::vector<Packet> mix = UntarPacketMix();
  size_t i = 0;
  for (auto _ : state) {
    const Packet& pkt = mix[i++ % mix.size()];
    bool ours = pkt.IsValidUdp() && pkt.dst_port() == 2049 && pkt.dst_addr() == 0x0a000064;
    benchmark::DoNotOptimize(ours);
    ByteSpan payload = pkt.payload();
    benchmark::DoNotOptimize(payload.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Stage1_Interception);

// Stage 2: packet decode — the ONC RPC header walk (variable-length
// credential) plus extraction of the routed NFS fields.
void BM_Stage2_Decode(benchmark::State& state) {
  const std::vector<Packet> mix = UntarPacketMix();
  size_t i = 0;
  for (auto _ : state) {
    const Packet& pkt = mix[i++ % mix.size()];
    DecodedRequest req;
    Status st = DecodeNfsRequest(pkt.payload(), &req);
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(req.fh);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Stage2_Decode);

// Stage 2 (fast path): the same header walk through the single-pass
// DecodedView — no name materialization, no handle copies into owned
// storage. This is what the µproxy actually runs (and caches on the packet
// so later stages never re-parse).
void BM_Stage2_DecodeView(benchmark::State& state) {
  const std::vector<Packet> mix = UntarPacketMix();
  size_t i = 0;
  for (auto _ : state) {
    const Packet& pkt = mix[i++ % mix.size()];
    DecodedView req;
    Status st = DecodeNfsRequestView(pkt.payload(), &req);
    benchmark::DoNotOptimize(st);
    benchmark::DoNotOptimize(req.fh);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Stage2_DecodeView);

// Stage 3: redirection/rewriting — route selection + destination rewrite
// with incremental checksum adjustment.
void BM_Stage3_RedirectRewrite(benchmark::State& state) {
  std::vector<Packet> mix = UntarPacketMix();
  std::vector<DecodedRequest> reqs(mix.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    SLICE_CHECK(DecodeNfsRequest(mix[i].payload(), &reqs[i]).ok());
  }
  RoutingTable table(64, {{0x0a000100, 2049}, {0x0a000101, 2049}, {0x0a000102, 2049}});
  size_t i = 0;
  for (auto _ : state) {
    const size_t idx = i++ % mix.size();
    const Endpoint target = table.ByPhysical(SiteOfFileid(reqs[idx].fh.fileid()));
    mix[idx].RewriteDst(target);
    benchmark::DoNotOptimize(mix[idx].ip_checksum());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Stage3_RedirectRewrite);

// Stage 4: soft-state logic — pending-record insert/erase and response
// pairing bookkeeping.
void BM_Stage4_SoftState(benchmark::State& state) {
  const std::vector<Packet> mix = UntarPacketMix();
  std::vector<DecodedRequest> reqs(mix.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    SLICE_CHECK(DecodeNfsRequest(mix[i].payload(), &reqs[i]).ok());
  }
  struct Pending {
    NfsProc proc;
    FileHandle fh;
    uint64_t offset;
    uint32_t count;
  };
  std::unordered_map<uint64_t, Pending> pending;
  size_t i = 0;
  uint32_t xid = 0;
  for (auto _ : state) {
    const DecodedRequest& req = reqs[i++ % mix.size()];
    const uint64_t key = (static_cast<uint64_t>(800) << 32) | xid++;
    pending.emplace(key, Pending{req.proc, req.fh, req.offset, req.count});
    auto it = pending.find(key);  // response pairing
    benchmark::DoNotOptimize(it->second.proc);
    pending.erase(it);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Stage4_SoftState);

// Stage 4 (fast path): the flat open-addressing pending table the µproxy
// switched to — insert/find/erase with no per-node allocation.
void BM_Stage4_SoftStateFlat(benchmark::State& state) {
  const std::vector<Packet> mix = UntarPacketMix();
  std::vector<DecodedView> reqs(mix.size());
  for (size_t i = 0; i < mix.size(); ++i) {
    SLICE_CHECK(DecodeNfsRequestView(mix[i].payload(), &reqs[i]).ok());
  }
  struct Pending {
    NfsProc proc;
    FileHandle fh;
    uint64_t offset;
    uint32_t count;
  };
  FlatU64Map<Pending> pending;
  size_t i = 0;
  uint32_t xid = 0;
  for (auto _ : state) {
    const DecodedView& req = reqs[i++ % mix.size()];
    const uint64_t key = (static_cast<uint64_t>(800) << 32) | xid++;
    Pending* p = pending.Insert(key).first;
    p->proc = req.proc;
    p->fh = req.fh;
    p->offset = req.offset;
    p->count = req.count;
    const Pending* found = pending.Find(key);  // response pairing
    benchmark::DoNotOptimize(found->proc);
    pending.Erase(key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Stage4_SoftStateFlat);

// Stage 5 (--trace only): span-context handling — mint trace/span ids,
// attach the 20-byte trailer, peek it back (what every downstream hop
// does), and record the route-decision span into the bounded ring.
void BM_Stage5_TraceContext(benchmark::State& state) {
  std::vector<Packet> mix = UntarPacketMix();
  obs::Tracer tracer(obs::TracerParams{.enabled = true});
  size_t i = 0;
  for (auto _ : state) {
    Packet& pkt = mix[i++ % mix.size()];
    const obs::TraceContext ctx{tracer.NewTraceId(), tracer.NewSpanId()};
    pkt.AttachTrace(ctx.trace_id, ctx.span_id);
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    const bool present = pkt.PeekTrace(&trace_id, &span_id);
    benchmark::DoNotOptimize(present);
    tracer.RecordSpan(0x0a000064, ctx, obs::SpanCat::kCpu, "uproxy_route", SimTime{0},
                      SimTime{0}, /*root=*/true);
    pkt.DetachTrace();
  }
  state.SetItemsProcessed(state.iterations());
}

// Stage 5 control (--trace only): the same calls against a disabled tracer.
// This is the cost every deployment pays when tracing is off — it should be
// indistinguishable from zero next to the other stages.
void BM_Stage5_TraceDisabled(benchmark::State& state) {
  std::vector<Packet> mix = UntarPacketMix();
  obs::Tracer tracer(obs::TracerParams{.enabled = false});
  size_t i = 0;
  for (auto _ : state) {
    Packet& pkt = mix[i++ % mix.size()];
    const obs::TraceContext ctx{tracer.NewTraceId(), tracer.NewSpanId()};
    benchmark::DoNotOptimize(ctx);
    if (ctx.valid()) {  // never taken: ids are 0 when disabled
      pkt.AttachTrace(ctx.trace_id, ctx.span_id);
    }
    tracer.RecordSpan(0x0a000064, ctx, obs::SpanCat::kCpu, "uproxy_route", SimTime{0},
                      SimTime{0}, /*root=*/true);
  }
  state.SetItemsProcessed(state.iterations());
}

void RegisterTraceStage() {
  benchmark::RegisterBenchmark("BM_Stage5_TraceContext", BM_Stage5_TraceContext);
  benchmark::RegisterBenchmark("BM_Stage5_TraceDisabled", BM_Stage5_TraceDisabled);
}

// Whole-packet request path, fast-path form: single-pass view decode, flat
// pending table, incremental-checksum rewrite. This is the shape of
// Uproxy::HandleOutbound after the zero-allocation rework.
void BM_Total_RequestPath(benchmark::State& state) {
  std::vector<Packet> mix = UntarPacketMix();
  RoutingTable table(64, {{0x0a000100, 2049}, {0x0a000101, 2049}, {0x0a000102, 2049}});
  FlatU64Map<NfsProc> pending;
  size_t i = 0;
  uint32_t xid = 0;
  for (auto _ : state) {
    Packet& pkt = mix[i++ % mix.size()];
    bool ours = pkt.IsValidUdp() && pkt.dst_port() == 2049;
    benchmark::DoNotOptimize(ours);
    DecodedView req;
    if (DecodeNfsRequestView(pkt.payload(), &req).ok()) {
      const Endpoint target = table.ByPhysical(SiteOfFileid(req.fh.fileid()));
      pkt.RewriteDst(target);
      const uint64_t key = (static_cast<uint64_t>(800) << 32) | xid++;
      *pending.Insert(key).first = req.proc;
      pending.Erase(key);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Total_RequestPath);

// Whole-packet request path, pre-rework form (materializing decode +
// node-based hash map) — kept as the in-binary baseline the speedup in
// BENCH_table3_uproxy_cpu.json is computed against.
void BM_Total_RequestPath_Legacy(benchmark::State& state) {
  std::vector<Packet> mix = UntarPacketMix();
  RoutingTable table(64, {{0x0a000100, 2049}, {0x0a000101, 2049}, {0x0a000102, 2049}});
  std::unordered_map<uint64_t, NfsProc> pending;
  size_t i = 0;
  uint32_t xid = 0;
  for (auto _ : state) {
    Packet& pkt = mix[i++ % mix.size()];
    bool ours = pkt.IsValidUdp() && pkt.dst_port() == 2049;
    benchmark::DoNotOptimize(ours);
    DecodedRequest req;
    if (DecodeNfsRequest(pkt.payload(), &req).ok()) {
      const Endpoint target = table.ByPhysical(SiteOfFileid(req.fh.fileid()));
      pkt.RewriteDst(target);
      const uint64_t key = (static_cast<uint64_t>(800) << 32) | xid++;
      pending.emplace(key, req.proc);
      pending.erase(key);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Total_RequestPath_Legacy);

// Server-side dispatch fixture: a warm object store + block cache + DRC plus
// four preconstructed small READ calls at distinct offsets. The Serve() body
// replicates the shape of RpcServerNode::OnPacket + StorageNode::HandleRead
// after the zero-allocation rework: view decode of the RPC envelope and args,
// flat-index duplicate-request cache, cache-hit read into reusable scratch,
// span-spliced ReadRes encode, the reply envelope into a member scratch
// encoder, and the DRC reply ring recording the wire bytes. In steady state
// none of it touches the heap — the same claim the full-path alloc test pins
// against the real nodes; here we put a ns/pkt number on it.
struct ServerPathFixture {
  static constexpr ObjectId kObject = 42;
  static constexpr uint32_t kReadBytes = 512;

  ObjectStore store{64ull << 20};
  BlockCache cache{16ull << 20};
  DuplicateRequestCache drc{4096};
  std::vector<Bytes> wires;
  Fattr3 attr;
  // Per-request scratch, mirroring the node members it models.
  Bytes read_data;
  std::vector<PhysBlock> read_blocks;
  XdrEncoder result_enc;
  XdrEncoder reply_enc;
  uint32_t next_xid = 1;
  size_t next_wire = 0;

  ServerPathFixture() {
    Bytes payload(1 << 16);
    for (size_t i = 0; i < payload.size(); ++i) {
      payload[i] = static_cast<uint8_t>(i * 131);
    }
    SLICE_CHECK(store.Write(kObject, 0, ByteSpan(payload), /*stable=*/true).ok());
    attr.type = FileType3::kReg;
    attr.size = payload.size();
    for (uint64_t off : {0ull, 8192ull, 16384ull, 24576ull}) {
      RpcCall call;
      call.xid = 0;  // patched per request
      call.prog = kNfsProgram;
      call.vers = kNfsVersion;
      call.proc = static_cast<uint32_t>(NfsProc::kRead);
      call.cred.machine_name = "bench-client-host";
      call.cred.gids = {0, 5, 20};
      XdrEncoder args;
      ReadArgs rargs;
      rargs.file = FileHandle::Make(1, MakeFileid(0, 42), 1, FileType3::kReg, 1, kSecret);
      rargs.offset = off;
      rargs.count = kReadBytes;
      rargs.Encode(args);
      call.args = args.Take();
      wires.push_back(call.Encode());
    }
    Serve();  // populate scratch buffers so stage bodies can run standalone
  }

  static void PatchXid(Bytes& wire, uint32_t xid) {
    wire[0] = static_cast<uint8_t>(xid >> 24);
    wire[1] = static_cast<uint8_t>(xid >> 16);
    wire[2] = static_cast<uint8_t>(xid >> 8);
    wire[3] = static_cast<uint8_t>(xid);
  }

  // Stage bodies (each standalone so the per-stage loops time exactly one).
  void DecodeStage(const Bytes& wire, RpcMessageView* msg, ReadArgs* args) {
    Result<RpcMessageView> m = DecodeRpcMessage(ByteSpan(wire));
    SLICE_CHECK(m.ok());
    XdrDecoder dec(m->body);
    Result<ReadArgs> a = ReadArgs::Decode(dec);
    SLICE_CHECK(a.ok());
    *msg = *m;
    *args = *a;
  }

  void DrcStage(const DrcKey& key) {
    benchmark::DoNotOptimize(drc.FindReply(key));
    benchmark::DoNotOptimize(drc.InProgress(key));
    drc.BeginCall(key);
    drc.CompleteCall(key, ByteSpan(reply_enc.bytes()));
  }

  void ReadStage(const ReadArgs& args) {
    read_blocks.clear();
    Result<bool> eof = store.ReadInto(kObject, args.offset, args.count, &read_data, &read_blocks);
    SLICE_CHECK(eof.ok());
    for (PhysBlock b : read_blocks) {
      cache.Access(b);  // warm: every block is a hit
    }
  }

  void EncodeStage(uint32_t xid) {
    result_enc.Clear();
    ReadRes res;
    res.status = Nfsstat3::kOk;
    res.file_attributes = attr;
    res.count = static_cast<uint32_t>(read_data.size());
    res.eof = false;
    res.Encode(result_enc, ByteSpan(read_data));
    reply_enc.Clear();
    reply_enc.PutUint32(xid);
    reply_enc.PutEnum(static_cast<uint32_t>(RpcMsgType::kReply));
    reply_enc.PutEnum(static_cast<uint32_t>(RpcReplyStat::kAccepted));
    reply_enc.PutEnum(static_cast<uint32_t>(RpcAuthFlavor::kNone));
    reply_enc.PutUint32(0);  // zero-length verifier body
    reply_enc.PutEnum(static_cast<uint32_t>(RpcAcceptStat::kSuccess));
    reply_enc.PutOpaqueFixed(ByteSpan(result_enc.bytes()));
  }

  // The whole dispatch: what one served READ costs the server in CPU.
  void Serve() {
    Bytes& wire = wires[next_wire++ % wires.size()];
    const uint32_t xid = next_xid++;
    PatchXid(wire, xid);
    RpcMessageView msg;
    ReadArgs args;
    DecodeStage(wire, &msg, &args);
    const DrcKey key{(static_cast<uint64_t>(0x0a000901) << 16) | 800, msg.xid, msg.prog,
                     msg.vers, msg.proc};
    benchmark::DoNotOptimize(drc.FindReply(key));
    benchmark::DoNotOptimize(drc.InProgress(key));
    drc.BeginCall(key);
    ReadStage(args);
    EncodeStage(xid);
    drc.CompleteCall(key, ByteSpan(reply_enc.bytes()));
  }
};

// Whole server dispatch path (view decode → DRC → cache-hit read → reply
// encode → reply ring), google-benchmark account.
void BM_Total_ServerPath(benchmark::State& state) {
  ServerPathFixture server;
  for (int i = 0; i < 8192; ++i) {
    server.Serve();  // fill the DRC index + cache before measuring
  }
  for (auto _ : state) {
    server.Serve();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Total_ServerPath);

// Machine-readable baseline: wall-clock-times the whole request path per
// packet (the BM_Total_RequestPath body, outside google-benchmark so we can
// keep per-packet samples) and writes BENCH_table3_uproxy_cpu.json. Both the
// fast path (view decode + flat table) and the pre-rework legacy path
// (materializing decode + node-based map) are measured, so the speedup and
// the allocs/pkt invariant are recorded per run. Absolute ns are
// host-dependent; the golden pins only the structural fields (bench name,
// packet count, allocs_per_pkt == 0).
void WriteTable3Bench() {
  std::vector<Packet> mix = UntarPacketMix();
  RoutingTable table(64, {{0x0a000100, 2049}, {0x0a000101, 2049}, {0x0a000102, 2049}});
  constexpr int kWarmup = 20000;
  constexpr int kMeasured = 200000;

  // Fast path: single-pass view decode, flat pending table. Steady-state
  // allocation count across the measured window must be exactly zero.
  FlatU64Map<NfsProc> pending;
  LatencyStats per_packet;  // values are wall-clock ns, not sim time
  uint32_t xid = 0;
  uint64_t allocs_measured = 0;
  for (int iter = 0; iter < kWarmup + kMeasured; ++iter) {
    Packet& pkt = mix[static_cast<size_t>(iter) % mix.size()];
    if (iter == kWarmup) {
      allocs_measured = g_allocs;
    }
    const auto t0 = std::chrono::steady_clock::now();
    bool ours = pkt.IsValidUdp() && pkt.dst_port() == 2049;
    benchmark::DoNotOptimize(ours);
    DecodedView req;
    if (DecodeNfsRequestView(pkt.payload(), &req).ok()) {
      const Endpoint target = table.ByPhysical(SiteOfFileid(req.fh.fileid()));
      pkt.RewriteDst(target);
      const uint64_t key = (static_cast<uint64_t>(800) << 32) | xid++;
      *pending.Insert(key).first = req.proc;
      pending.Erase(key);
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (iter >= kWarmup) {
      per_packet.Record(static_cast<SimTime>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));
    }
  }
  allocs_measured = g_allocs - allocs_measured;

  // Legacy path, same packets: what every forwarded packet cost before.
  std::unordered_map<uint64_t, NfsProc> legacy_pending;
  uint64_t legacy_total_ns = 0;
  for (int iter = 0; iter < kWarmup + kMeasured; ++iter) {
    Packet& pkt = mix[static_cast<size_t>(iter) % mix.size()];
    const auto t0 = std::chrono::steady_clock::now();
    bool ours = pkt.IsValidUdp() && pkt.dst_port() == 2049;
    benchmark::DoNotOptimize(ours);
    DecodedRequest req;
    if (DecodeNfsRequest(pkt.payload(), &req).ok()) {
      const Endpoint target = table.ByPhysical(SiteOfFileid(req.fh.fileid()));
      pkt.RewriteDst(target);
      const uint64_t key = (static_cast<uint64_t>(800) << 32) | xid++;
      legacy_pending.emplace(key, req.proc);
      legacy_pending.erase(key);
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (iter >= kWarmup) {
      legacy_total_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    }
  }

  // Profiled fast path, three interleaved accounts of the identical body:
  //
  //   bulk   — no instrumentation, one tick-pair per chunk: ground truth.
  //   coarse — one compensated outbound scope per chunk: the profiler's
  //            account of the whole path through its full pipeline
  //            (scope tree, overhead compensation, tick→ns calibration).
  //            The acceptance check is |coarse - bulk| / bulk <= 10% —
  //            the profiler's total must track uninstrumented reality.
  //            Per-chunk rather than per-packet because a cycle-counter
  //            read costs ~18ns against a ~130ns body: per-packet pairs
  //            leave an ILP-dependent residue that the xorshift-based
  //            calibration cannot reproduce exactly, and the whole-path
  //            total would then measure that residue, not the path.
  //   fine   — the five per-stage scopes the live µproxy uses. Reads per
  //            packet scale 5x, so the raw fine sum carries irreducible
  //            measurement residue; the reported per-stage ns/pkt are the
  //            fine run's attribution *shares* applied to the validated
  //            coarse total (standard overhead normalization — the raw
  //            fine sum and the normalization factor are both exported).
  //
  // The three loops alternate in small chunks and share one clock, so
  // frequency drift hits all accounts equally; the bulk/coarse comparison
  // uses per-chunk *medians*, so a scheduler preemption landing inside one
  // account's chunk (a ~1ms steal against a ~260us chunk) is discarded as
  // an outlier instead of landing in the error term.
  obs::Profiler profiler(obs::ProfilerParams{.enabled = true});
  obs::Profiler coarse(obs::ProfilerParams{.enabled = true});
  FlatU64Map<NfsProc> prof_pending;
  FlatU64Map<NfsProc> coarse_pending;
  FlatU64Map<NfsProc> bulk_pending;
  std::vector<uint64_t> bulk_chunk_ns;
  std::vector<uint64_t> coarse_chunk_ns;
  constexpr int kChunk = 2000;
  auto bulk_chunk = [&] {
    for (int i = 0; i < kChunk; ++i) {
      Packet& pkt = mix[static_cast<size_t>(xid) % mix.size()];
      bool ours = pkt.IsValidUdp() && pkt.dst_port() == 2049;
      benchmark::DoNotOptimize(ours);
      DecodedView req;
      if (DecodeNfsRequestView(pkt.payload(), &req).ok()) {
        const Endpoint target = table.ByPhysical(SiteOfFileid(req.fh.fileid()));
        pkt.RewriteDst(target);
        const uint64_t key = (static_cast<uint64_t>(800) << 32) | xid++;
        *bulk_pending.Insert(key).first = req.proc;
        bulk_pending.Erase(key);
      }
    }
  };
  auto coarse_chunk = [&] {
    obs::Profiler::Scope outbound(&coarse, obs::ProfScope::kUproxyOutbound);
    for (int i = 0; i < kChunk; ++i) {
      Packet& pkt = mix[static_cast<size_t>(xid) % mix.size()];
      bool ours = pkt.IsValidUdp() && pkt.dst_port() == 2049;
      benchmark::DoNotOptimize(ours);
      DecodedView req;
      if (DecodeNfsRequestView(pkt.payload(), &req).ok()) {
        const Endpoint target = table.ByPhysical(SiteOfFileid(req.fh.fileid()));
        pkt.RewriteDst(target);
        const uint64_t key = (static_cast<uint64_t>(800) << 32) | xid++;
        *coarse_pending.Insert(key).first = req.proc;
        coarse_pending.Erase(key);
      }
    }
  };
  auto fine_chunk = [&] {
    for (int i = 0; i < kChunk; ++i) {
      Packet& pkt = mix[static_cast<size_t>(xid) % mix.size()];
      obs::Profiler::Scope outbound(&profiler, obs::ProfScope::kUproxyOutbound);
      bool ours = pkt.IsValidUdp() && pkt.dst_port() == 2049;
      benchmark::DoNotOptimize(ours);
      DecodedView req;
      Status st;
      {
        obs::Profiler::Scope s(&profiler, obs::ProfScope::kUproxyDecode);
        st = DecodeNfsRequestView(pkt.payload(), &req);
      }
      if (st.ok()) {
        Endpoint target;
        {
          obs::Profiler::Scope s(&profiler, obs::ProfScope::kUproxyRoute);
          target = table.ByPhysical(SiteOfFileid(req.fh.fileid()));
        }
        {
          obs::Profiler::Scope s(&profiler, obs::ProfScope::kUproxyRewrite);
          pkt.RewriteDst(target);
        }
        {
          obs::Profiler::Scope s(&profiler, obs::ProfScope::kUproxySoftState);
          const uint64_t key = (static_cast<uint64_t>(800) << 32) | xid++;
          *prof_pending.Insert(key).first = req.proc;
          prof_pending.Erase(key);
        }
      }
    }
  };
  for (int i = 0; i < kWarmup / kChunk; ++i) {  // warm all three bodies
    bulk_chunk();
    coarse_chunk();
    fine_chunk();
  }
  profiler.ResetWall();  // warm scope paths measured, then discarded
  coarse.ResetWall();
  bulk_chunk_ns.reserve(static_cast<size_t>(kMeasured / kChunk));
  coarse_chunk_ns.reserve(static_cast<size_t>(kMeasured / kChunk));
  for (int done = 0; done < kMeasured; done += kChunk) {
    const uint64_t t0 = obs::Profiler::Ticks();
    bulk_chunk();
    bulk_chunk_ns.push_back(profiler.ns_from_ticks(obs::Profiler::Ticks() - t0));
    const uint64_t coarse_before =
        coarse.ScopeInclusiveNs(obs::ProfScope::kUproxyOutbound);
    coarse_chunk();
    coarse_chunk_ns.push_back(
        coarse.ScopeInclusiveNs(obs::ProfScope::kUproxyOutbound) - coarse_before);
    fine_chunk();
  }

  const double total_ns = static_cast<double>(per_packet.sum());
  const double sampled_mean_ns = total_ns / kMeasured;
  const double legacy_mean_ns = static_cast<double>(legacy_total_ns) / kMeasured;
  // Speedup compares like with like: both paths carry the same per-packet
  // clock-pair overhead in the sampled account.
  const double speedup = sampled_mean_ns > 0 ? legacy_mean_ns / sampled_mean_ns : 0;
  const double allocs_per_pkt = static_cast<double>(allocs_measured) / kMeasured;

  // Reporting. B = bulk (uninstrumented) mean, C = coarse profiler total
  // (one compensated pair/pkt), V = raw fine stage sum. The acceptance
  // check is |C - B| / B <= 10%; reported stage values are the fine run's
  // shares applied to the validated total: v_i * C / V. Raw V and the
  // normalization factor are exported so the fine-instrumentation overhead
  // is visible, not hidden. ns values are host-dependent — the golden pins
  // structure, not numbers (out_of_hash).
  struct StageRow {
    const char* name;
    uint64_t count;
    double raw_ns;  // fine-account ns/pkt before normalization
    double ns_per_pkt;
  };
  std::vector<StageRow> stages;
  for (obs::ProfScope s : {obs::ProfScope::kUproxyDecode, obs::ProfScope::kUproxyRoute,
                           obs::ProfScope::kUproxyRewrite, obs::ProfScope::kUproxySoftState}) {
    stages.push_back(StageRow{obs::ProfScopeName(s), profiler.ScopeCount(s),
                              static_cast<double>(profiler.ScopeInclusiveNs(s)) / kMeasured, 0});
  }
  stages.push_back(
      StageRow{"uproxy.outbound", profiler.ScopeCount(obs::ProfScope::kUproxyOutbound),
               static_cast<double>(profiler.ScopeExclusiveNs(obs::ProfScope::kUproxyOutbound)) /
                   kMeasured,
               0});
  double fine_sum = 0;
  for (const StageRow& row : stages) {
    fine_sum += row.raw_ns;
  }
  auto chunk_median = [](std::vector<uint64_t>& v) -> double {
    if (v.empty()) {
      return 0;
    }
    std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(v.size() / 2), v.end());
    return static_cast<double>(v[v.size() / 2]);
  };
  const double bulk_mean_ns = chunk_median(bulk_chunk_ns) / kChunk;
  const double coarse_mean_ns = chunk_median(coarse_chunk_ns) / kChunk;
  const double norm = fine_sum > 0 ? coarse_mean_ns / fine_sum : 0;
  double stage_sum = 0;
  for (StageRow& row : stages) {
    row.ns_per_pkt = row.raw_ns * norm;
    stage_sum += row.ns_per_pkt;
  }
  const double attribution_err_pct =
      bulk_mean_ns > 0 ? (coarse_mean_ns - bulk_mean_ns) / bulk_mean_ns * 100.0 : 0;

  // Headline per-packet cost: the chunk-timed bulk account. The sampled mean
  // above brackets every packet with two clock reads, which on a ~120ns body
  // adds ~30-50ns of measurement overhead to the number itself; the chunked
  // account amortizes one tick pair over 2000 packets, so it reports the path
  // and not the clock. The sampled account stays exported for its p50/p99.
  const double mean_ns = bulk_mean_ns;
  const double pkts_per_sec = mean_ns > 0 ? 1e9 / mean_ns : 0;
  // The paper's operating point: %CPU this implementation would spend at
  // 6250 packets/s (paper total: 6.1% on a 500 MHz Alpha).
  const double cpu_pct_at_6250 = mean_ns * 6250.0 / 1e9 * 100.0;

  // Server-side dispatch: the same chunked methodology over the zero-alloc
  // server path (RPC view decode → DRC → cache-hit read → reply encode →
  // reply ring). end_to_end = µproxy forwarding + server dispatch, the full
  // CPU cost of one interposed, served request.
  ServerPathFixture server;
  auto chunked_ns = [&](auto&& body) -> double {
    std::vector<uint64_t> samples;
    samples.reserve(static_cast<size_t>(kMeasured / kChunk));
    for (int i = 0; i < kWarmup; ++i) {
      body();
    }
    for (int done = 0; done < kMeasured; done += kChunk) {
      const uint64_t t0 = obs::Profiler::Ticks();
      for (int i = 0; i < kChunk; ++i) {
        body();
      }
      samples.push_back(profiler.ns_from_ticks(obs::Profiler::Ticks() - t0));
    }
    return chunk_median(samples) / kChunk;
  };
  const double server_mean_ns = chunked_ns([&] { server.Serve(); });
  uint64_t server_allocs = g_allocs;
  for (int i = 0; i < kMeasured; ++i) {
    server.Serve();
  }
  server_allocs = g_allocs - server_allocs;
  const double server_allocs_per_pkt = static_cast<double>(server_allocs) / kMeasured;
  // Per-stage server accounts (each stage timed standalone; raw medians, so
  // the rows need not sum exactly to the whole-body mean — cross-stage
  // locality the split loops don't share shows up as the difference).
  RpcMessageView stage_msg;
  ReadArgs stage_args;
  server.DecodeStage(server.wires[0], &stage_msg, &stage_args);
  const DrcKey stage_key{(static_cast<uint64_t>(0x0a000901) << 16) | 800, stage_msg.xid,
                         stage_msg.prog, stage_msg.vers, stage_msg.proc};
  size_t rot = 0;
  const double srv_decode_ns = chunked_ns([&] {
    server.DecodeStage(server.wires[rot++ % server.wires.size()], &stage_msg, &stage_args);
  });
  uint32_t drc_xid = 1u << 30;
  const double srv_drc_ns = chunked_ns([&] {
    DrcKey k = stage_key;
    k.xid = drc_xid++;
    server.DrcStage(k);
  });
  const double srv_read_ns = chunked_ns([&] { server.ReadStage(stage_args); });
  const double srv_encode_ns = chunked_ns([&] { server.EncodeStage(drc_xid); });
  struct ServerStageRow {
    const char* name;
    double ns_per_pkt;
  };
  const ServerStageRow server_stages[] = {
      {"rpc.decode_view", srv_decode_ns},
      {"rpc.drc", srv_drc_ns},
      {"storage.cache_read", srv_read_ns},
      {"rpc.reply_encode", srv_encode_ns},
  };
  const double end_to_end_ns = mean_ns + server_mean_ns;

  JsonWriter w;
  w.BeginObject();
  w.Key("bench").String("table3_uproxy_cpu");
  w.Key("packets_measured").Int(kMeasured);
  w.Key("request_path_pkts_per_sec").Fixed(pkts_per_sec, 0);
  w.Key("mean_ns_per_pkt").Fixed(mean_ns, 1);
  w.Key("sampled_mean_ns_per_pkt").Fixed(sampled_mean_ns, 1);
  w.Key("legacy_mean_ns_per_pkt").Fixed(legacy_mean_ns, 1);
  w.Key("speedup_vs_legacy").Fixed(speedup, 2);
  w.Key("allocs_per_pkt").Fixed(allocs_per_pkt, 6);
  w.Key("p50_ns").UInt(per_packet.Percentile(50));
  w.Key("p95_ns").UInt(per_packet.Percentile(95));
  w.Key("p99_ns").UInt(per_packet.Percentile(99));
  w.Key("cpu_pct_at_6250_pkts").Fixed(cpu_pct_at_6250, 3);
  w.Key("paper_cpu_pct_at_6250_pkts").Fixed(6.1, 1);
  w.Key("server").BeginObject();
  w.Key("mean_ns_per_pkt").Fixed(server_mean_ns, 1);
  w.Key("allocs_per_pkt").Fixed(server_allocs_per_pkt, 6);
  w.Key("stages").BeginArray();
  for (const ServerStageRow& row : server_stages) {
    w.BeginObject();
    w.Key("name").String(row.name);
    w.Key("ns_per_pkt").Fixed(row.ns_per_pkt, 2);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  w.Key("end_to_end_ns_per_pkt").Fixed(end_to_end_ns, 1);
  w.Key("profile").BeginObject();
  w.Key("stages").BeginArray();
  for (const StageRow& row : stages) {
    w.BeginObject();
    w.Key("name").String(row.name);
    w.Key("count").UInt(row.count);
    w.Key("ns_per_pkt").Fixed(row.ns_per_pkt, 2);
    w.EndObject();
  }
  w.EndArray();
  w.Key("stage_sum_ns_per_pkt").Fixed(stage_sum, 2);
  w.Key("unprofiled_mean_ns_per_pkt").Fixed(bulk_mean_ns, 2);
  w.Key("attribution_error_pct").Fixed(attribution_err_pct, 2);
  w.Key("fine_sum_ns_per_pkt").Fixed(fine_sum, 2);
  w.Key("normalization").Fixed(norm, 4);
  w.EndObject();
  w.EndObject();
  WriteBenchFile("table3_uproxy_cpu", w.str());
  std::printf("request path: %.0f pkts/s, mean %.0f ns (sampled %.0f, p50 %llu, p99 %llu),\n"
              "%.2fx vs the legacy decode+map path (%.0f ns), %.6f allocs/pkt; %.3f%% CPU at\n"
              "the paper's 6250 pkt/s point (paper: 6.1%% on a 500MHz Alpha)\n",
              pkts_per_sec, mean_ns, sampled_mean_ns,
              static_cast<unsigned long long>(per_packet.Percentile(50)),
              static_cast<unsigned long long>(per_packet.Percentile(99)), speedup,
              legacy_mean_ns, allocs_per_pkt, cpu_pct_at_6250);
  std::printf("\nprofiled stage attribution (ns/pkt):\n");
  for (const StageRow& row : stages) {
    std::printf("  %-20s %8.1f\n", row.name, row.ns_per_pkt);
  }
  std::printf("  %-20s %8.1f  (unprofiled mean %.1f, error %+.1f%%)\n", "stage sum", stage_sum,
              bulk_mean_ns, attribution_err_pct);
  std::printf("  shares from the fine account (raw sum %.1f ns incl. per-stage scope\n"
              "  overhead, normalized x%.3f to the validated whole-path total)\n",
              fine_sum, norm);
  std::printf("\nserver dispatch (ns/pkt, %.6f allocs/pkt):\n", server_allocs_per_pkt);
  for (const ServerStageRow& row : server_stages) {
    std::printf("  %-20s %8.1f\n", row.name, row.ns_per_pkt);
  }
  std::printf("  %-20s %8.1f\n", "whole dispatch", server_mean_ns);
  std::printf("\nend-to-end (uproxy forward + server dispatch): %.1f ns/pkt\n", end_to_end_ns);
}

}  // namespace
}  // namespace slice

int main(int argc, char** argv) {
  // Strip --trace before benchmark::Initialize, which rejects unknown flags.
  bool trace = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) {
      trace = true;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (trace) {
    slice::RegisterTraceStage();
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  slice::WriteTable3Bench();
  std::printf(
      "\nTable 3 comparison (paper, 500MHz CPU @ 6250 pkt/s): interception 0.7%%,\n"
      "decode 4.1%%, redirect/rewrite 0.5%%, soft state 0.8%%. To compare shape,\n"
      "multiply each stage's ns/packet by 6250/s: %%CPU = ns * 6250 / 1e9 * 100.\n"
      "The decode stage should dominate, as the paper found.\n");
  if (trace) {
    std::printf(
        "\n--trace: Stage5_TraceContext is the added per-packet cost with tracing\n"
        "on (id mint + 20-byte trailer attach/peek + ring write); Stage5_TraceDisabled\n"
        "is the cost when tracing is compiled in but off, and should be ~0 ns.\n");
  }
  return 0;
}
