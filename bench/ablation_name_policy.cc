// Ablation: name-space distribution policy (paper §3.2). Compares, on four
// directory servers:
//   * mkdir switching (p = 1/N)  — balanced when many directories are active
//   * name hashing               — balanced regardless of directory structure
//   * volume partitioning        — the strawman the paper argues against:
//     affinity 1.0, i.e. a subtree sticks to one server forever
// under two namespaces: the many-directory untar tree, and a pathological
// single huge directory (where mkdir switching degenerates to one server).
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "src/slice/ensemble.h"
#include "src/workload/untar.h"

namespace slice {
namespace {

constexpr int kDirServers = 4;
constexpr int kProcs = 8;
constexpr int kClientHosts = 4;

int Creations() {
  if (const char* env = std::getenv("SLICE_BENCH_CREATIONS"); env != nullptr) {
    return std::atoi(env);
  }
  return 800;
}

// A flat workload: every process creates files in ONE shared directory.
class FlatCreator {
 public:
  FlatCreator(Host& host, EventQueue& queue, Endpoint server, FileHandle dir, int count,
              int index, std::function<void()> on_done)
      : client_(host, queue, server), queue_(queue), dir_(dir), remaining_(count),
        index_(index), on_done_(std::move(on_done)) {}

  void Start() {
    start_ = queue_.now();
    Next();
  }
  SimTime elapsed() const { return end_ - start_; }

 private:
  void Next() {
    if (remaining_-- <= 0) {
      end_ = queue_.now();
      on_done_();
      return;
    }
    const std::string name = "p" + std::to_string(index_) + "_" + std::to_string(remaining_);
    client_.Create(dir_, name, [this](Status, const CreateRes&) { Next(); });
  }

  NfsClient client_;
  EventQueue& queue_;
  FileHandle dir_;
  int remaining_;
  int index_;
  std::function<void()> on_done_;
  SimTime start_ = 0;
  SimTime end_ = 0;
};

struct PolicySetup {
  const char* name;
  NamePolicy policy;
  double redirect_probability;  // mkdir switching knob
};

double RunUntarTree(const PolicySetup& setup) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;  // static healthy ensemble; no heartbeat traffic
  config.num_dir_servers = kDirServers;
  config.num_small_file_servers = 1;
  config.num_storage_nodes = 2;
  config.num_clients = kClientHosts;
  config.name_policy = setup.policy;
  config.mkdir_redirect_probability = setup.redirect_probability;
  Ensemble ensemble(queue, config);

  std::vector<std::unique_ptr<UntarProcess>> procs;
  int finished = 0;
  for (int p = 0; p < kProcs; ++p) {
    UntarParams params;
    params.total_creations = Creations();
    params.top_name = "t" + std::to_string(p);
    procs.push_back(std::make_unique<UntarProcess>(
        ensemble.client_host(p % kClientHosts), queue, ensemble.virtual_server(),
        ensemble.root(), params, 900 + p, [&finished] { ++finished; }));
  }
  for (auto& proc : procs) {
    proc->Start();
  }
  queue.RunUntilIdle();
  SLICE_CHECK(finished == kProcs);
  double total = 0;
  for (auto& proc : procs) {
    total += ToMillis(proc->elapsed());
  }
  return total / kProcs;
}

double RunHugeDirectory(const PolicySetup& setup) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;  // static healthy ensemble; no heartbeat traffic
  config.num_dir_servers = kDirServers;
  config.num_small_file_servers = 1;
  config.num_storage_nodes = 2;
  config.num_clients = kClientHosts;
  config.name_policy = setup.policy;
  config.mkdir_redirect_probability = setup.redirect_probability;
  Ensemble ensemble(queue, config);

  // One shared directory; all processes hammer it.
  auto boot = ensemble.MakeSyncClient(0);
  CreateRes shared = boot->Mkdir(ensemble.root(), "shared").value();
  SLICE_CHECK(shared.status == Nfsstat3::kOk);

  std::vector<std::unique_ptr<FlatCreator>> procs;
  int finished = 0;
  for (int p = 0; p < kProcs; ++p) {
    procs.push_back(std::make_unique<FlatCreator>(
        ensemble.client_host(p % kClientHosts), queue, ensemble.virtual_server(),
        *shared.object, Creations(), p, [&finished] { ++finished; }));
  }
  for (auto& proc : procs) {
    proc->Start();
  }
  queue.RunUntilIdle();
  SLICE_CHECK(finished == kProcs);
  double total = 0;
  for (auto& proc : procs) {
    total += ToMillis(proc->elapsed());
  }
  return total / kProcs;
}

void Run() {
  const PolicySetup setups[] = {
      {"mkdir-switching", NamePolicy::kMkdirSwitching, 1.0 / kDirServers},
      {"name-hashing", NamePolicy::kNameHashing, 0.0},
      {"volume-partition", NamePolicy::kMkdirSwitching, 0.0},  // affinity 1.0
  };
  std::printf("Ablation: name-space policies on %d directory servers, %d processes\n",
              kDirServers, kProcs);
  std::printf("(mean latency in ms; %d creations/process)\n\n", Creations());
  std::printf("%-18s %14s %14s\n", "policy", "untar tree", "one huge dir");
  for (const PolicySetup& setup : setups) {
    const double tree = RunUntarTree(setup);
    std::printf("%-18s %14.0f", setup.name, tree);
    std::fflush(stdout);
    const double flat = RunHugeDirectory(setup);
    std::printf(" %14.0f\n", flat);
  }
  std::printf(
      "\nexpected shape (paper §3.2): on the many-directory tree all policies are\n"
      "close; on the single huge directory only name hashing stays balanced —\n"
      "mkdir switching binds a large directory to one server, and volume\n"
      "partitioning serializes everything on the subtree's owner.\n");
}

}  // namespace
}  // namespace slice

int main() {
  slice::Run();
  return 0;
}
