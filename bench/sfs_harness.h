// Shared harness for the SPECsfs-style benches (Figures 5 and 6): runs the
// SFS-like mix against a Slice ensemble with N storage nodes or against the
// single-server NFS baseline, with a self-scaling file set (bigger offered
// load -> bigger file set, like SPECsfs), and returns (delivered IOPS, mean
// latency) per offered-load point.
#ifndef SLICE_BENCH_SFS_HARNESS_H_
#define SLICE_BENCH_SFS_HARNESS_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/baseline/baseline_server.h"
#include "src/slice/ensemble.h"
#include "src/workload/sfs_gen.h"

namespace slice {

inline double BenchScale() {
  if (const char* env = std::getenv("SLICE_BENCH_SFS_SCALE"); env != nullptr) {
    return std::atof(env);
  }
  return 1.0;
}

inline SfsParams ScaledSfsParams(double offered) {
  SfsParams params;
  params.offered_ops_per_sec = offered;
  // SPECsfs grows the file set with offered load (10MB per op/s on the real
  // suite); we grow file count with load so cache pressure rises too.
  params.num_files = static_cast<size_t>(std::max(120.0, offered / 4.0 * BenchScale()));
  params.num_dirs = 16;
  // SPECsfs adds generator processes with offered load; without this the
  // outstanding-request cap, not the server, would bound delivered IOPS.
  params.num_processes = static_cast<size_t>(std::max(8.0, offered / 100.0));
  params.warmup = FromMillis(800);
  params.duration = FromSeconds(4);
  return params;
}

// Calibration shared by both systems: small caches relative to the scaled
// file set, and FFS-like metadata amplification so disk arms bound
// saturation as in the paper.
constexpr double kSfsMetaIos = 3.0;
constexpr double kSfsStorageCacheMb = 3.0;
constexpr double kSfsSmallFileCacheMb = 6.0;  // x2 servers = the "1GB" equivalent
// The baseline server is the same Dell 4400 as one storage node — same RAM.
// Slice's extra file-manager machines bring extra cache; that asymmetry is
// the architecture's point, not an unfair handicap.
constexpr double kSfsBaselineCacheMb = 3.0;

struct SfsPoint {
  double offered = 0;
  double delivered = 0;
  double latency_ms = 0;  // mean
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
};

inline SfsPoint PointFromReport(double offered, const SfsReport& report) {
  SfsPoint point;
  point.offered = offered;
  point.delivered = report.delivered_iops;
  point.latency_ms = report.mean_latency_ms;
  point.p50_ms = ToMillis(report.p50_latency);
  point.p95_ms = ToMillis(report.p95_latency);
  point.p99_ms = ToMillis(report.p99_latency);
  return point;
}

inline SfsPoint RunSlicePoint(size_t storage_nodes, double offered, bool proxy_cache = false) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;  // static healthy ensemble; no heartbeat traffic
  config.num_storage_nodes = storage_nodes;
  config.num_small_file_servers = 2;
  config.num_dir_servers = 1;
  config.num_clients = 4;
  config.cal.storage_cache_mb = kSfsStorageCacheMb;
  config.cal.sfs_cache_mb = kSfsSmallFileCacheMb;
  config.storage_extra_meta_ios = kSfsMetaIos;
  config.proxy_cache = proxy_cache;
  Ensemble ensemble(queue, config);
  SfsParams params = ScaledSfsParams(offered);
  SfsBenchmark bench(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params);
  SLICE_CHECK(bench.Setup().ok());
  const SfsReport report = bench.Run();
  return PointFromReport(offered, report);
}

// Same Slice point with the metrics plane on: returns the delivered numbers
// and optionally the canonical metrics JSON snapshot, the Prometheus text
// exposition, and ensemble-wide counter totals (summed across hosts)
// captured at end of run.
inline SfsPoint RunSlicePointMetered(size_t storage_nodes, double offered,
                                     std::string* metrics_json_out,
                                     std::string* prom_out = nullptr,
                                     std::map<std::string, uint64_t>* counter_totals_out =
                                         nullptr,
                                     bool proxy_cache = false, uint32_t tenants = 0,
                                     std::map<std::string, uint64_t>* tenant_totals_out =
                                         nullptr) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;
  config.num_storage_nodes = storage_nodes;
  config.num_small_file_servers = 2;
  config.num_dir_servers = 1;
  config.num_clients = 4;
  config.cal.storage_cache_mb = kSfsStorageCacheMb;
  config.cal.sfs_cache_mb = kSfsSmallFileCacheMb;
  config.storage_extra_meta_ios = kSfsMetaIos;
  config.proxy_cache = proxy_cache;
  config.metrics.enabled = true;
  if (tenants > 0) {
    // Tenant/QoS plane on: generator processes split round-robin across
    // `tenants` AUTH_SYS identities, and the SLO engine rides the scraper.
    config.num_tenants = tenants;
    config.slo.enabled = true;
  }
  Ensemble ensemble(queue, config);
  SfsParams params = ScaledSfsParams(offered);
  params.num_tenants = tenants;
  SfsBenchmark bench(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params);
  SLICE_CHECK(bench.Setup().ok());
  const SfsReport report = bench.Run();
  if (metrics_json_out != nullptr) {
    *metrics_json_out = ensemble.ExportMetricsJson();
  }
  if (prom_out != nullptr) {
    *prom_out = ensemble.ExportMetricsText();
  }
  if (counter_totals_out != nullptr) {
    for (const auto& [host, reg] : ensemble.metrics()->registries()) {
      for (const auto& [name, counter] : reg.counters()) {
        (*counter_totals_out)[name] += counter->Value();
      }
    }
  }
  if (tenant_totals_out != nullptr) {
    // Flat integer totals per tenant — deterministic, so the fig5_tenants
    // golden can pin the attribution split exactly.
    for (const obs::TenantInstruments& ti : ensemble.metrics()->tenants()) {
      const std::string prefix = "tenant" + std::to_string(ti.tenant) + "_";
      for (size_t c = 0; c < obs::kTenantOpClassCount; ++c) {
        (*tenant_totals_out)[prefix + "ops_" +
                             obs::TenantOpClassName(static_cast<obs::TenantOpClass>(c))] =
            ti.ops[c].Value();
      }
      (*tenant_totals_out)[prefix + "bad_ops"] = ti.bad_ops.Value();
      (*tenant_totals_out)[prefix + "errors"] = ti.errors.Value();
    }
  }
  return PointFromReport(offered, report);
}

// Same Slice point with the event log (plus the metrics plane, for the
// embedded snapshot) enabled — the benches' --flight-dump flag. Returns the
// delivered numbers and the canonical flight-recorder dump: the bounded
// per-host rings keep the tail of the run's routing decisions, exactly what
// a black-box recorder should retain.
inline SfsPoint RunSlicePointFlight(size_t storage_nodes, double offered,
                                    std::string* flight_json_out, bool proxy_cache = false) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;
  config.num_storage_nodes = storage_nodes;
  config.num_small_file_servers = 2;
  config.num_dir_servers = 1;
  config.num_clients = 4;
  config.cal.storage_cache_mb = kSfsStorageCacheMb;
  config.cal.sfs_cache_mb = kSfsSmallFileCacheMb;
  config.storage_extra_meta_ios = kSfsMetaIos;
  config.proxy_cache = proxy_cache;
  config.metrics.enabled = true;
  config.eventlog.enabled = true;
  Ensemble ensemble(queue, config);
  SfsParams params = ScaledSfsParams(offered);
  SfsBenchmark bench(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params);
  SLICE_CHECK(bench.Setup().ok());
  const SfsReport report = bench.Run();
  if (flight_json_out != nullptr) {
    *flight_json_out = ensemble.ExportFlightJson("bench");
  }
  return PointFromReport(offered, report);
}

// Everything a profiled run exports: the canonical profile JSON, the
// collapsed-stack rendering, the sim-section hash (byte-stable same-seed),
// and the worst per-host ledger coverage in basis points.
struct SfsProfile {
  std::string profile_json;
  std::string folded;
  uint64_t sim_hash = 0;
  uint64_t min_coverage_bp = 0;
};

// Same Slice point with the profiler on (plus metrics + event log so the
// ledger rides the time series and the flight dump carries the profile
// section) — the benches' --profile flag.
inline SfsPoint RunSlicePointProfiled(size_t storage_nodes, double offered,
                                      SfsProfile* profile_out,
                                      std::string* flight_json_out = nullptr,
                                      bool proxy_cache = false) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;
  config.num_storage_nodes = storage_nodes;
  config.num_small_file_servers = 2;
  config.num_dir_servers = 1;
  config.num_clients = 4;
  config.cal.storage_cache_mb = kSfsStorageCacheMb;
  config.cal.sfs_cache_mb = kSfsSmallFileCacheMb;
  config.storage_extra_meta_ios = kSfsMetaIos;
  config.proxy_cache = proxy_cache;
  config.metrics.enabled = true;
  config.eventlog.enabled = true;
  config.profiler.enabled = true;
  Ensemble ensemble(queue, config);
  SfsParams params = ScaledSfsParams(offered);
  SfsBenchmark bench(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params);
  SLICE_CHECK(bench.Setup().ok());
  const SfsReport report = bench.Run();
  if (profile_out != nullptr) {
    profile_out->profile_json = ensemble.ExportProfileJson();
    profile_out->folded = ensemble.ExportProfileFolded();
    profile_out->sim_hash = ensemble.ProfileSimHash();
    profile_out->min_coverage_bp = ensemble.profiler()->MinCoverageBp();
  }
  if (flight_json_out != nullptr) {
    *flight_json_out = ensemble.ExportFlightJson("bench");
  }
  return PointFromReport(offered, report);
}

// Same Slice point with end-to-end tracing enabled (--trace in the benches):
// returns the delivered numbers plus the critical-path latency breakdown,
// and optionally the full chrome://tracing JSON.
inline SfsPoint RunSlicePointTraced(size_t storage_nodes, double offered,
                                    obs::CriticalPathReport* report_out,
                                    std::string* json_out = nullptr) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;
  config.num_storage_nodes = storage_nodes;
  config.num_small_file_servers = 2;
  config.num_dir_servers = 1;
  config.num_clients = 4;
  config.cal.storage_cache_mb = kSfsStorageCacheMb;
  config.cal.sfs_cache_mb = kSfsSmallFileCacheMb;
  config.storage_extra_meta_ios = kSfsMetaIos;
  config.trace.enabled = true;
  Ensemble ensemble(queue, config);
  SfsParams params = ScaledSfsParams(offered);
  SfsBenchmark bench(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params);
  SLICE_CHECK(bench.Setup().ok());
  const SfsReport report = bench.Run();
  if (report_out != nullptr) {
    *report_out = ensemble.AnalyzeCriticalPath();
  }
  if (json_out != nullptr) {
    *json_out = ensemble.ExportTraceJson();
  }
  return PointFromReport(offered, report);
}

inline SfsPoint RunBaselinePoint(double offered) {
  EventQueue queue;
  Network net(queue, NetworkParams{});
  BaselineServerParams server_params;
  server_params.memory_backed = false;
  server_params.cache_bytes = static_cast<uint64_t>(kSfsBaselineCacheMb * (1 << 20));
  server_params.extra_meta_ios = kSfsMetaIos;
  BaselineServer server(net, queue, 0x0a000010, server_params);
  Host client_host(net, 0x0a000901);

  SfsParams params = ScaledSfsParams(offered);
  SfsBenchmark bench(client_host, queue, server.endpoint(), server.RootHandle(), params);
  SLICE_CHECK(bench.Setup().ok());
  const SfsReport report = bench.Run();
  return PointFromReport(offered, report);
}

}  // namespace slice

#endif  // SLICE_BENCH_SFS_HARNESS_H_
