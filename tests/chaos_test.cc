// Chaos subsystem unit tests: the engine applying primitives through its
// hooks on a bare network, link shaping behavior, the invariant checker on
// synthetic event streams, and the negative integration test proving the
// checker catches a deliberately injected acked-write loss.
#include <gtest/gtest.h>

#include "src/chaos/chaos_engine.h"
#include "src/chaos/invariants.h"
#include "src/chaos/scenario.h"
#include "src/chaos/workload.h"
#include "src/slice/ensemble.h"

namespace slice {
namespace {

using chaos::ChaosConfig;
using chaos::ChaosEngine;
using chaos::ChaosHooks;
using chaos::CheckInvariants;
using chaos::FaultKind;
using chaos::FaultSpec;
using chaos::InvariantBounds;
using chaos::InvariantReport;

constexpr NetAddr kHostA = 0x0a000001;
constexpr NetAddr kHostB = 0x0a000002;

Packet ABPacket(size_t payload_size = 100) {
  Bytes payload(payload_size, 0x5a);
  return Packet::MakeUdp(Endpoint{kHostA, 1000}, Endpoint{kHostB, 2049}, payload);
}

Packet BAPacket(size_t payload_size = 100) {
  Bytes payload(payload_size, 0xa5);
  return Packet::MakeUdp(Endpoint{kHostB, 2049}, Endpoint{kHostA, 1000}, payload);
}

// Two bare hosts; the engine's addr_of maps Storage(0)→A, Storage(1)→B so
// fault specs can target them without an ensemble.
class ChaosEngineTest : public ::testing::Test {
 protected:
  ChaosEngineTest() : net_(queue_, NetworkParams{}) {
    net_.Attach(kHostA, [this](Packet&& pkt) { a_inbox_.push_back(std::move(pkt)); });
    net_.Attach(kHostB, [this](Packet&& pkt) { b_inbox_.push_back(std::move(pkt)); });
  }

  ChaosHooks Hooks() {
    ChaosHooks hooks;
    hooks.queue = &queue_;
    hooks.net = &net_;
    hooks.log = &log_;
    hooks.addr_of = [](NodeClass cls, uint32_t index) -> uint32_t {
      if (cls != NodeClass::kStorage || index > 1) {
        return 0;
      }
      return index == 0 ? kHostA : kHostB;
    };
    hooks.all_hosts = {kHostA, kHostB};
    return hooks;
  }

  EventQueue queue_;
  Network net_;
  obs::EventLog log_;
  std::vector<Packet> a_inbox_;
  std::vector<Packet> b_inbox_;
};

TEST_F(ChaosEngineTest, PartitionBlocksBothDirectionsThenHeals) {
  ChaosConfig config;
  config.enabled = true;
  config.faults = {{.kind = FaultKind::kPartition,
                    .at = FromMillis(5),
                    .duration = FromMillis(10),
                    .targets = {chaos::Storage(1)}}};
  ChaosEngine engine(Hooks(), config);
  engine.Arm();
  EXPECT_EQ(engine.faults_armed(), 1u);

  net_.Send(ABPacket());  // before injection: flows
  queue_.RunUntilIdle();
  ASSERT_EQ(b_inbox_.size(), 1u);

  queue_.RunUntil(FromMillis(6));  // fault live
  EXPECT_EQ(engine.injections(), 1u);
  net_.Send(ABPacket());
  net_.Send(BAPacket());
  queue_.RunUntilIdle();
  EXPECT_EQ(b_inbox_.size(), 1u);  // both directions dead
  EXPECT_EQ(a_inbox_.size(), 0u);
  EXPECT_EQ(net_.num_shaped_links(), 2u);

  queue_.RunUntil(FromMillis(16));  // healed
  EXPECT_EQ(engine.clears(), 1u);
  EXPECT_EQ(net_.num_shaped_links(), 0u);
  net_.Send(ABPacket());
  queue_.RunUntilIdle();
  EXPECT_EQ(b_inbox_.size(), 2u);
}

TEST_F(ChaosEngineTest, AsymmetricPartitionLeavesOutboundPathAlive) {
  ChaosConfig config;
  config.enabled = true;
  config.faults = {{.kind = FaultKind::kPartition,
                    .at = FromMillis(5),
                    .duration = FromMillis(10),
                    .targets = {chaos::Storage(1)},
                    .asymmetric = true}};
  ChaosEngine engine(Hooks(), config);
  engine.Arm();

  queue_.RunUntil(FromMillis(6));
  net_.Send(ABPacket());  // toward the target: blocked
  net_.Send(BAPacket());  // from the target: still flows (heartbeat path)
  queue_.RunUntilIdle();
  EXPECT_EQ(b_inbox_.size(), 0u);
  EXPECT_EQ(a_inbox_.size(), 1u);
}

TEST_F(ChaosEngineTest, FullRateLossDropsEverythingOnShapedLink) {
  ChaosConfig config;
  config.enabled = true;
  config.faults = {{.kind = FaultKind::kLoss,
                    .at = FromMillis(5),
                    .duration = FromMillis(10),
                    .targets = {chaos::Storage(1)},
                    .asymmetric = true,
                    .rate = 1.0}};
  ChaosEngine engine(Hooks(), config);
  engine.Arm();

  queue_.RunUntil(FromMillis(6));
  for (int i = 0; i < 20; ++i) {
    net_.Send(ABPacket(10));
  }
  queue_.RunUntilIdle();
  EXPECT_EQ(b_inbox_.size(), 0u);

  queue_.RunUntil(FromMillis(16));
  net_.Send(ABPacket(10));
  queue_.RunUntilIdle();
  EXPECT_EQ(b_inbox_.size(), 1u);
}

TEST_F(ChaosEngineTest, GrayNicAddsLatencyWithoutDropping) {
  ChaosConfig config;
  config.enabled = true;
  config.faults = {{.kind = FaultKind::kGrayNic,
                    .at = 0,
                    .duration = FromMillis(10),
                    .targets = {chaos::Storage(1)},
                    .extra_latency = FromMicros(500)}};
  ChaosEngine engine(Hooks(), config);
  engine.Arm();
  queue_.RunUntil(FromMicros(1));  // apply the fault

  const SimTime start = queue_.now();
  net_.Send(ABPacket(100));
  queue_.RunUntilIdle();
  ASSERT_EQ(b_inbox_.size(), 1u);
  const SimTime gray = queue_.now() - start;
  EXPECT_GT(gray, FromMicros(500));  // the extra delay dominates a 100B packet

  queue_.RunUntil(FromMillis(11));  // healed: latency gone
  const SimTime start2 = queue_.now();
  net_.Send(ABPacket(100));
  queue_.RunUntilIdle();
  EXPECT_LT(queue_.now() - start2, FromMicros(500));
}

TEST_F(ChaosEngineTest, CrashSkewAndDiskHooksFireWithHealValues) {
  struct Call {
    std::string what;
    uint32_t index;
    double value;
  };
  std::vector<Call> calls;
  ChaosHooks hooks = Hooks();
  hooks.fail_node = [&](NodeClass, uint32_t i) { calls.push_back({"fail", i, 0}); };
  hooks.restart_node = [&](NodeClass, uint32_t i) { calls.push_back({"restart", i, 0}); };
  hooks.set_storage_disk_multiplier = [&](uint32_t i, double m) {
    calls.push_back({"disk", i, m});
  };
  hooks.set_heartbeat_scale = [&](NodeClass, uint32_t i, double m) {
    calls.push_back({"skew", i, m});
  };

  ChaosConfig config;
  config.enabled = true;
  config.faults = {
      {.kind = FaultKind::kCrash,
       .at = FromMillis(1),
       .duration = FromMillis(10),
       .targets = {chaos::Storage(0)}},
      {.kind = FaultKind::kGrayDisk,
       .at = FromMillis(2),
       .duration = FromMillis(10),
       .targets = {chaos::Storage(1)},
       .multiplier = 25.0},
      {.kind = FaultKind::kClockSkew,
       .at = FromMillis(3),
       .duration = FromMillis(10),
       .targets = {chaos::Storage(1)},
       .multiplier = 14.0},
  };
  ChaosEngine wired(std::move(hooks), config);
  wired.Arm();
  queue_.RunUntil(FromMillis(20));

  ASSERT_EQ(calls.size(), 6u);
  EXPECT_EQ(calls[0].what, "fail");
  EXPECT_EQ(calls[1].what, "disk");
  EXPECT_EQ(calls[1].value, 25.0);
  EXPECT_EQ(calls[2].what, "skew");
  EXPECT_EQ(calls[2].value, 14.0);
  EXPECT_EQ(calls[3].what, "restart");
  EXPECT_EQ(calls[4].what, "disk");
  EXPECT_EQ(calls[4].value, 1.0);  // heal restores the multiplier
  EXPECT_EQ(calls[5].what, "skew");
  EXPECT_EQ(calls[5].value, 1.0);
}

TEST_F(ChaosEngineTest, FaultEventsLandOnControllerHost) {
  ChaosConfig config;
  config.enabled = true;
  config.faults = {{.kind = FaultKind::kPartition,
                    .at = FromMillis(5),
                    .duration = FromMillis(5),
                    .targets = {chaos::Storage(1)}}};
  ChaosEngine engine(Hooks(), config);
  engine.Arm();
  queue_.RunUntil(FromMillis(20));

  size_t injects = 0;
  size_t clears = 0;
  for (const obs::Event& ev : log_.Collect()) {
    if (ev.code == obs::EventCode::kFaultInject) {
      ++injects;
      EXPECT_EQ(ev.host, chaos::kChaosControllerAddr);
      EXPECT_EQ(ev.detail_view(), "partition");
    }
    if (ev.code == obs::EventCode::kFaultClear) {
      ++clears;
    }
  }
  EXPECT_EQ(injects, 1u);
  EXPECT_EQ(clears, 1u);
}

// ---- invariant checker on synthetic streams ----

class ChaosCheckerTest : public ::testing::Test {
 protected:
  void Add(SimTime at, obs::EventCode code, const char* detail,
           std::initializer_list<obs::Kv> args, uint32_t host = 1) {
    obs::Event ev;
    ev.at = at;
    ev.seq = seq_++;
    ev.host = host;
    ev.code = code;
    ev.set_detail(detail);
    for (const obs::Kv& kv : args) {
      std::strncpy(ev.args[ev.nargs].key, kv.key, obs::kEventArgKeyCap - 1);
      ev.args[ev.nargs].value = kv.value;
      ++ev.nargs;
    }
    events_.push_back(ev);
  }

  uint64_t seq_ = 0;
  std::vector<obs::Event> events_;
};

TEST_F(ChaosCheckerTest, CleanStreamPasses) {
  Add(FromMillis(1), obs::EventCode::kChaosWriteAcked, "wv", {{"key", 7}, {"sum", 42}});
  Add(FromMillis(2), obs::EventCode::kEpochBump, nullptr, {{"epoch", 1}});
  Add(FromMillis(3), obs::EventCode::kChaosReadOk, "wv", {{"key", 7}, {"sum", 42}});
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  EXPECT_TRUE(rep.ok()) << rep.Summary();
  EXPECT_EQ(rep.acked_writes, 1u);
  EXPECT_EQ(rep.verified_ok, 1u);
  EXPECT_EQ(rep.max_epoch, 1u);
}

TEST_F(ChaosCheckerTest, LostAckedWriteFlagged) {
  Add(FromMillis(1), obs::EventCode::kChaosWriteAcked, "wv", {{"key", 7}, {"sum", 42}});
  Add(FromMillis(3), obs::EventCode::kChaosReadLost, "wv", {{"key", 7}, {"sum", 0}});
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("acked write lost"), std::string::npos);
}

TEST_F(ChaosCheckerTest, TornAckedWriteFlagged) {
  Add(FromMillis(1), obs::EventCode::kChaosWriteAcked, "wv", {{"key", 7}, {"sum", 42}});
  Add(FromMillis(3), obs::EventCode::kChaosReadOk, "wv", {{"key", 7}, {"sum", 43}});
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("torn"), std::string::npos);
}

TEST_F(ChaosCheckerTest, UnverifiedAckedWriteFlagged) {
  Add(FromMillis(1), obs::EventCode::kChaosWriteAcked, "wv", {{"key", 7}, {"sum", 42}});
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("never verified"), std::string::npos);

  InvariantBounds relaxed;
  relaxed.require_verified = false;
  EXPECT_TRUE(CheckInvariants(events_, relaxed).ok());
}

TEST_F(ChaosCheckerTest, DeathWithoutRejoinFlagged) {
  Add(FromMillis(1), obs::EventCode::kNodeDead, "storage", {{"node", 3}});
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("never closed"), std::string::npos);

  Add(FromMillis(900), obs::EventCode::kNodeRejoin, "storage", {{"node", 3}});
  rep = CheckInvariants(events_, InvariantBounds{});
  EXPECT_TRUE(rep.ok()) << rep.Summary();
  EXPECT_EQ(rep.worst_outage, FromMillis(899));
}

TEST_F(ChaosCheckerTest, OutageBoundEnforced) {
  Add(FromMillis(1), obs::EventCode::kNodeDead, "storage", {{"node", 3}});
  Add(FromMillis(901), obs::EventCode::kNodeRejoin, "storage", {{"node", 3}});
  InvariantBounds bounds;
  bounds.max_outage = FromMillis(500);
  InvariantReport rep = CheckInvariants(events_, bounds);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("unavailability bound blown"), std::string::npos);
}

TEST_F(ChaosCheckerTest, NoDeathsExpectationFlagged) {
  Add(FromMillis(1), obs::EventCode::kNodeDead, "storage", {{"node", 1}});
  Add(FromMillis(50), obs::EventCode::kNodeRejoin, "storage", {{"node", 1}});
  InvariantBounds bounds;
  bounds.expect_no_deaths = true;
  InvariantReport rep = CheckInvariants(events_, bounds);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("unexpected node_dead"), std::string::npos);
}

TEST_F(ChaosCheckerTest, EpochRegressionFlagged) {
  Add(FromMillis(1), obs::EventCode::kEpochBump, nullptr, {{"epoch", 5}});
  Add(FromMillis(2), obs::EventCode::kEpochBump, nullptr, {{"epoch", 5}});
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("epoch not monotone"), std::string::npos);
}

TEST_F(ChaosCheckerTest, TableInstallRegressionFlagged) {
  Add(FromMillis(1), obs::EventCode::kTableInstall, nullptr, {{"epoch", 5}}, /*host=*/9);
  Add(FromMillis(2), obs::EventCode::kTableInstall, nullptr, {{"epoch", 4}}, /*host=*/9);
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("table epoch regressed"), std::string::npos);
}

TEST_F(ChaosCheckerTest, DoubleAdoptionFlagged) {
  Add(FromMillis(1), obs::EventCode::kAdoptBegin, nullptr, {{"site", 1}, {"epoch", 2}});
  Add(FromMillis(2), obs::EventCode::kAdoptDone, "adopted", {{"site", 1}, {"entries", 3}});
  Add(FromMillis(3), obs::EventCode::kAdoptBegin, nullptr, {{"site", 1}, {"epoch", 3}});
  Add(FromMillis(4), obs::EventCode::kAdoptDone, "adopted", {{"site", 1}, {"entries", 3}});
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  ASSERT_GE(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("double adoption"), std::string::npos);

  // With an intervening handoff the second adoption is legal.
  events_.clear();
  Add(FromMillis(1), obs::EventCode::kAdoptBegin, nullptr, {{"site", 1}, {"epoch", 2}});
  Add(FromMillis(2), obs::EventCode::kAdoptDone, "adopted", {{"site", 1}, {"entries", 3}});
  Add(FromMillis(3), obs::EventCode::kHandoff, nullptr, {{"site", 1}, {"to", 1}});
  Add(FromMillis(4), obs::EventCode::kAdoptBegin, nullptr, {{"site", 1}, {"epoch", 3}});
  Add(FromMillis(5), obs::EventCode::kAdoptDone, "adopted", {{"site", 1}, {"entries", 3}});
  Add(FromMillis(6), obs::EventCode::kHandoff, nullptr, {{"site", 1}, {"to", 1}});
  EXPECT_TRUE(CheckInvariants(events_, InvariantBounds{}).ok());
}

TEST_F(ChaosCheckerTest, AdoptionNeverCompletedFlagged) {
  Add(FromMillis(1), obs::EventCode::kAdoptBegin, nullptr, {{"site", 1}, {"epoch", 2}});
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("never completed"), std::string::npos);
}

TEST_F(ChaosCheckerTest, AdoptDelayBoundEnforced) {
  Add(FromMillis(1), obs::EventCode::kNodeDead, "dir", {{"node", 1}});
  Add(FromMillis(2), obs::EventCode::kAdoptBegin, nullptr, {{"site", 1}, {"epoch", 2}});
  Add(FromSeconds(5), obs::EventCode::kAdoptDone, "adopted", {{"site", 1}, {"entries", 3}});
  Add(FromSeconds(6), obs::EventCode::kNodeRejoin, "dir", {{"node", 1}});
  Add(FromSeconds(6), obs::EventCode::kHandoff, nullptr, {{"site", 1}, {"to", 1}});
  InvariantBounds bounds;  // default max_adopt_delay = 2s
  InvariantReport rep = CheckInvariants(events_, bounds);
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("took"), std::string::npos);
}

TEST_F(ChaosCheckerTest, UnhealedFaultFlagged) {
  Add(FromMillis(1), obs::EventCode::kFaultInject, "partition",
      {{"fault", 0}, {"targets", 1}, {"target0", 3}});
  InvariantReport rep = CheckInvariants(events_, InvariantBounds{});
  ASSERT_EQ(rep.violations.size(), 1u);
  EXPECT_NE(rep.violations[0].find("never cleared"), std::string::npos);

  Add(FromMillis(5), obs::EventCode::kFaultClear, "partition",
      {{"fault", 0}, {"targets", 1}, {"target0", 3}});
  EXPECT_TRUE(CheckInvariants(events_, InvariantBounds{}).ok());
}

// ---- negative integration test: the checker must catch real data loss ----

// Runs the write/verify workload on a healthy ensemble, then sabotages
// acked state behind the workload's back (a rogue overwrite and a removal).
// Verify() records the damage and CheckInvariants must report both a torn
// and a lost acked write — proof the whole evidence chain actually trips.
TEST(ChaosNegativeTest, InjectedAckedWriteLossIsCaught) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_small_file_servers = 0;
  config.num_storage_nodes = 4;
  config.default_replication = 2;
  config.name_policy = NamePolicy::kNameHashing;
  config.eventlog = {.enabled = true};
  Ensemble ensemble(queue, config);

  chaos::ChaosWorkloadParams params;
  params.shape = chaos::WorkloadShape::kWriteVerify;
  params.num_files = 4;
  params.ops = 20;
  chaos::ChaosWorkload workload(ensemble, params);
  workload.Setup();
  workload.Run();

  // Sabotage through a second client: overwrite one journaled slot with
  // different bytes and remove another file entirely. Both mutations are
  // "acked" server-side but invisible to the workload's journal.
  auto rogue = ensemble.MakeSyncClient(0);
  LookupRes victim = rogue->Lookup(ensemble.root(), "chaos0").value();
  ASSERT_EQ(victim.status, Nfsstat3::kOk);
  Bytes garbage(params.write_bytes, 0xee);
  ASSERT_EQ(rogue->Write(victim.object, 0, garbage, StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  ASSERT_EQ(rogue->Remove(ensemble.root(), "chaos1").value().status, Nfsstat3::kOk);
  queue.RunUntilIdle();

  workload.Verify();
  queue.RunUntilIdle();

  EXPECT_GT(workload.stats().verified_lost, 0u);
  chaos::InvariantReport rep =
      CheckInvariants(ensemble.eventlog()->Collect(), chaos::InvariantBounds{});
  ASSERT_FALSE(rep.ok());
  bool saw_torn = false;
  bool saw_lost = false;
  for (const std::string& v : rep.violations) {
    saw_torn = saw_torn || v.find("torn") != std::string::npos;
    saw_lost = saw_lost || v.find("lost") != std::string::npos;
  }
  EXPECT_TRUE(saw_torn) << rep.Summary();
  EXPECT_TRUE(saw_lost) << rep.Summary();
}

}  // namespace
}  // namespace slice
