// Cross-module failure injection: crashes and packet loss at the worst
// moments, combined failures, and recovery interleavings. These go beyond
// the per-module recovery tests by exercising the interactions.
#include <gtest/gtest.h>

#include "src/slice/ensemble.h"

namespace slice {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 1) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 53);
  }
  return data;
}

class FailureTest : public ::testing::Test {
 protected:
  explicit FailureTest(EnsembleConfig config = DefaultConfig()) {
    ensemble_ = std::make_unique<Ensemble>(queue_, config);
    client_ = ensemble_->MakeSyncClient(0);
    root_ = ensemble_->root();
  }

  static EnsembleConfig DefaultConfig() {
    EnsembleConfig config;
    config.num_dir_servers = 2;
    config.num_small_file_servers = 2;
    config.num_storage_nodes = 2;
    return config;
  }

  EventQueue queue_;
  std::unique_ptr<Ensemble> ensemble_;
  std::unique_ptr<SyncNfsClient> client_;
  FileHandle root_;
};

TEST_F(FailureTest, SimultaneousManagerCrashes) {
  // Create state across both manager classes, flush logs, crash everything
  // at once, recover, verify.
  CreateRes created = client_->Create(root_, "sturdy").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  ASSERT_EQ(client_->Write(*created.object, 0, Pattern(3000), StableHow::kUnstable)
                .value()
                .status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Commit(*created.object).value().status, Nfsstat3::kOk);
  queue_.RunUntilIdle();

  for (size_t i = 0; i < ensemble_->num_dir_servers(); ++i) {
    ensemble_->dir_server(i).FlushLog();
  }
  for (size_t i = 0; i < ensemble_->num_small_file_servers(); ++i) {
    ensemble_->small_file_server(i).FlushDirtyForTest();
  }
  queue_.RunUntilIdle();

  for (size_t i = 0; i < ensemble_->num_dir_servers(); ++i) {
    ensemble_->dir_server(i).Fail();
  }
  for (size_t i = 0; i < ensemble_->num_small_file_servers(); ++i) {
    ensemble_->small_file_server(i).Fail();
  }
  for (size_t i = 0; i < ensemble_->num_dir_servers(); ++i) {
    ensemble_->dir_server(i).Restart();
  }
  for (size_t i = 0; i < ensemble_->num_small_file_servers(); ++i) {
    ensemble_->small_file_server(i).Restart();
  }
  queue_.RunUntilIdle();

  LookupRes found = client_->Lookup(root_, "sturdy").value();
  ASSERT_EQ(found.status, Nfsstat3::kOk);
  ReadRes read = client_->Read(found.object, 0, 3000).value();
  ASSERT_EQ(read.status, Nfsstat3::kOk);
  EXPECT_EQ(read.data, Pattern(3000));
}

TEST_F(FailureTest, LossDuringRecoveryStillConverges) {
  // WAL replay itself runs over the lossy network; RPC retransmission must
  // carry it through.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(client_->Create(root_, "pre" + std::to_string(i)).value().status,
              Nfsstat3::kOk);
  }
  ensemble_->dir_server(0).FlushLog();
  queue_.RunUntilIdle();

  ensemble_->network().set_loss_rate(0.1);
  ensemble_->dir_server(0).Fail();
  ensemble_->dir_server(0).Restart();
  queue_.RunUntilIdle();
  ensemble_->network().set_loss_rate(0.0);

  ASSERT_FALSE(ensemble_->dir_server(0).recovering());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client_->Lookup(root_, "pre" + std::to_string(i)).value().status,
              Nfsstat3::kOk);
  }
}

TEST_F(FailureTest, StorageCrashLosesOnlyUncommittedSliceData) {
  // Unstable writes buffered at the small-file server survive a STORAGE
  // node crash (they have not been flushed there yet); committed data
  // survives both crashes.
  CreateRes committed = client_->Create(root_, "committed").value();
  ASSERT_EQ(client_->Write(*committed.object, 0, Pattern(2000, 1), StableHow::kUnstable)
                .value()
                .status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Commit(*committed.object).value().status, Nfsstat3::kOk);

  CreateRes buffered = client_->Create(root_, "buffered").value();
  ASSERT_EQ(client_->Write(*buffered.object, 0, Pattern(2000, 2), StableHow::kUnstable)
                .value()
                .status,
            Nfsstat3::kOk);
  queue_.RunUntilIdle();

  for (size_t i = 0; i < ensemble_->num_storage_nodes(); ++i) {
    ensemble_->storage_node(i).Fail();
    ensemble_->storage_node(i).Restart();
  }
  queue_.RunUntilIdle();

  // Both files readable: "committed" from storage-backed pages, "buffered"
  // straight from the small-file server's RAM.
  EXPECT_EQ(client_->Read(*committed.object, 0, 2000).value().data, Pattern(2000, 1));
  EXPECT_EQ(client_->Read(*buffered.object, 0, 2000).value().data, Pattern(2000, 2));
}

TEST_F(FailureTest, RecoveringDirServerAnswersJukebox) {
  // While WAL replay is in flight, name ops get NFS3ERR_JUKEBOX (retry
  // later) rather than wrong answers.
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(client_->Create(root_, "j" + std::to_string(i)).value().status, Nfsstat3::kOk);
  }
  ensemble_->dir_server(0).FlushLog();
  queue_.RunUntilIdle();
  ensemble_->dir_server(0).Fail();
  ensemble_->dir_server(0).Restart();
  // Do NOT drain the queue: ask immediately, racing the replay.
  ASSERT_TRUE(ensemble_->dir_server(0).recovering());
  LookupRes racing = client_->Lookup(root_, "j0").value();
  EXPECT_TRUE(racing.status == Nfsstat3::kErrJukebox || racing.status == Nfsstat3::kOk);
  queue_.RunUntilIdle();
  EXPECT_EQ(client_->Lookup(root_, "j0").value().status, Nfsstat3::kOk);
}

TEST_F(FailureTest, CoordinatorCrashDuringFanoutStillCleansUp) {
  // A remove's data fan-out is in flight when the coordinator crashes; after
  // its own log-driven recovery, no intent leaks and data is gone.
  CreateRes doomed = client_->Create(root_, "doomed").value();
  ASSERT_EQ(client_->Write(*doomed.object, 1 << 20, Pattern(32768), StableHow::kFileSync)
                .value()
                .status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Remove(root_, "doomed").value().status, Nfsstat3::kOk);
  // Crash the coordinator before the µproxy's completion can land.
  ensemble_->coordinator(0).Fail();
  ensemble_->uproxy(0).DropSoftState();  // µproxy forgets the operation too
  ensemble_->coordinator(0).Restart();
  queue_.RunUntilIdle();

  EXPECT_EQ(ensemble_->coordinator(0).pending_intents(), 0u);
  EXPECT_EQ(client_->Read(*doomed.object, 1 << 20, 100).value().count, 0u)
      << "recovered remove reclaimed the bulk data";
}

TEST_F(FailureTest, RepeatedCrashRestartCycles) {
  // Hammer a directory server with crash/recover cycles interleaved with
  // mutations; the namespace stays exact.
  std::set<std::string> expected;
  for (int cycle = 0; cycle < 5; ++cycle) {
    const std::string name = "cycle" + std::to_string(cycle);
    ASSERT_EQ(client_->Create(root_, name).value().status, Nfsstat3::kOk);
    expected.insert(name);
    if (cycle % 2 == 0) {
      const std::string victim = "cycle" + std::to_string(cycle / 2);
      if (expected.erase(victim) > 0) {
        ASSERT_EQ(client_->Remove(root_, victim).value().status, Nfsstat3::kOk);
      }
    }
    ensemble_->dir_server(0).FlushLog();
    queue_.RunUntilIdle();
    ensemble_->dir_server(0).Fail();
    ensemble_->dir_server(0).Restart();
    queue_.RunUntilIdle();
  }
  for (const std::string& name : expected) {
    EXPECT_EQ(client_->Lookup(root_, name).value().status, Nfsstat3::kOk) << name;
  }
  std::vector<DirEntry> listing = client_->ReadWholeDir(root_).value();
  EXPECT_EQ(listing.size(), expected.size());
}

// End-to-end control-plane scenario: a storage node AND a directory server
// die mid-workload on a lossy network. The manager must detect both within
// the heartbeat timeout, install a higher-epoch table in every µproxy, and
// the workload must complete with zero client-visible errors (kErrJukebox is
// a retry signal, not an error). On rejoin the slots rebalance under a fresh
// epoch and the mirrors resync.
TEST(ControlPlaneE2eTest, WorkloadSurvivesStorageAndDirDeathUnderLoss) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_small_file_servers = 0;  // all I/O on the mirrored bulk path
  config.num_storage_nodes = 4;
  config.num_coordinators = 1;
  config.name_policy = NamePolicy::kNameHashing;
  config.default_replication = 2;
  config.loss_rate = 0.005;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);
  const FileHandle root = ensemble.root();
  EnsembleManager& mgr = *ensemble.manager();

  int errors = 0;
  auto check = [&](Nfsstat3 status, const char* what) {
    if (status != Nfsstat3::kOk) {
      ++errors;
      ADD_FAILURE() << what << " -> " << static_cast<int>(status);
    }
  };
  auto retry = [&](auto op) {
    for (int attempt = 0;; ++attempt) {
      auto res = op();
      if (res.status != Nfsstat3::kErrJukebox || attempt >= 100) {
        return res;
      }
      queue.RunUntil(queue.now() + FromMillis(10));
    }
  };

  // Phase 1: healthy workload — 10 mirrored files, 2 x 32KB blocks each.
  std::vector<std::string> names;
  std::vector<FileHandle> files;
  for (int i = 0; i < 10; ++i) {
    names.push_back("work" + std::to_string(i));
    CreateRes created = retry([&] { return client->Create(root, names.back()).value(); });
    check(created.status, "create");
    files.push_back(*created.object);
    for (uint64_t b = 0; b < 2; ++b) {
      check(client->Write(files.back(), b * 32768, Pattern(32768, static_cast<uint8_t>(i)),
                          StableHow::kFileSync)
                .value()
                .status,
            "write");
    }
  }
  ensemble.dir_server(0).FlushLog();
  ensemble.dir_server(1).FlushLog();
  queue.RunUntilIdle();

  // Phase 2: kill one storage node and one directory server mid-workload.
  // Node 3 backs no WAL (dir0 -> node0, dir1 -> node1, coord -> node1).
  const uint64_t epoch_before = mgr.current_epoch();
  ensemble.storage_node(3).Fail();
  ensemble.dir_server(1).Fail();
  queue.RunUntil(queue.now() + FromMillis(800));
  EXPECT_FALSE(mgr.NodeAlive(NodeClass::kStorage, 3));
  EXPECT_FALSE(mgr.NodeAlive(NodeClass::kDir, 1));
  EXPECT_GT(mgr.current_epoch(), epoch_before);
  EXPECT_EQ(ensemble.uproxy(0).table_epoch(), mgr.current_epoch());
  queue.RunUntil(queue.now() + FromMillis(300));  // adoption replay window

  // Phase 3: the workload continues through the outage. Reads fail over to
  // mirrors, writes go degraded, names on the dead server come from its
  // adopter — zero errors end to end.
  for (size_t i = 0; i < files.size(); ++i) {
    LookupRes found = retry([&] { return client->Lookup(root, names[i]).value(); });
    check(found.status, "outage lookup");
    for (uint64_t b = 0; b < 2; ++b) {
      ReadRes read =
          retry([&] { return client->Read(files[i], b * 32768, 32768).value(); });
      check(read.status, "outage read");
      EXPECT_EQ(read.data, Pattern(32768, static_cast<uint8_t>(i))) << "file " << i;
    }
  }
  // Overwrite a block guaranteed to have a replica on the dead node, so the
  // outage leaves a degraded region behind.
  size_t degraded_file = files.size();
  for (size_t i = 0; i < files.size(); ++i) {
    if (ensemble.uproxy(0).StripeSite(files[i], 0, 0) == 3 ||
        ensemble.uproxy(0).StripeSite(files[i], 0, 1) == 3) {
      degraded_file = i;
      break;
    }
  }
  ASSERT_LT(degraded_file, files.size());
  check(retry([&] {
          return client->Write(files[degraded_file], 0, Pattern(32768, 0x77),
                               StableHow::kFileSync)
              .value();
        }).status,
        "degraded write");
  for (int i = 0; i < 5; ++i) {
    check(retry([&] { return client->Create(root, "outage" + std::to_string(i)).value(); })
              .status,
          "outage create");
  }
  queue.RunUntilIdle();
  EXPECT_GE(ensemble.coordinator(0).degraded_count(3), 1u);

  // Phase 4: both nodes rejoin; fresh epoch, handoff, mirror resync.
  const uint64_t outage_epoch = mgr.current_epoch();
  ensemble.network().set_loss_rate(0.0);
  ensemble.storage_node(3).Restart();
  ensemble.dir_server(1).Restart();
  queue.RunUntil(queue.now() + FromMillis(2000));
  queue.RunUntilIdle();
  EXPECT_TRUE(mgr.NodeAlive(NodeClass::kStorage, 3));
  EXPECT_TRUE(mgr.NodeAlive(NodeClass::kDir, 1));
  EXPECT_GT(mgr.current_epoch(), outage_epoch);
  EXPECT_EQ(ensemble.uproxy(0).table_epoch(), mgr.current_epoch());
  EXPECT_TRUE(ensemble.dir_server(0).adopted_sites().empty());
  EXPECT_EQ(ensemble.coordinator(0).degraded_count(3), 0u);
  EXPECT_GE(ensemble.coordinator(0).repairs_run(), 1u);

  // Phase 5: full readback — everything written before and during the
  // outage, including names created while the dir server was down.
  for (size_t i = 0; i < files.size(); ++i) {
    const Bytes expect =
        i == degraded_file ? Pattern(32768, 0x77) : Pattern(32768, static_cast<uint8_t>(i));
    ReadRes read = retry([&] { return client->Read(files[i], 0, 32768).value(); });
    check(read.status, "final read");
    EXPECT_EQ(read.data, expect) << "file " << i;
  }
  for (int i = 0; i < 5; ++i) {
    check(retry([&] { return client->Lookup(root, "outage" + std::to_string(i)).value(); })
              .status,
          "final lookup");
  }
  EXPECT_EQ(errors, 0) << "client-visible errors during failover";
}

TEST_F(FailureTest, CapabilityForgeryBlockedAtStorage) {
  // A µproxy outside the trust boundary can only touch what its client
  // could: a handle minted with the wrong secret is refused by every
  // storage node even when sent directly.
  FileHandle forged = FileHandle::Make(1, MakeFileid(0, 999), 1, FileType3::kReg, 1,
                                       /*wrong secret=*/0xbad);
  for (size_t i = 0; i < ensemble_->num_storage_nodes(); ++i) {
    SyncNfsClient direct(ensemble_->client_host(0), queue_,
                         ensemble_->storage_node(i).endpoint());
    EXPECT_EQ(direct.Write(forged, 0, Pattern(100), StableHow::kFileSync).value().status,
              Nfsstat3::kErrBadhandle);
  }
}

}  // namespace
}  // namespace slice
