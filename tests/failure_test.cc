// Cross-module failure injection: crashes and packet loss at the worst
// moments, combined failures, and recovery interleavings. These go beyond
// the per-module recovery tests by exercising the interactions.
#include <gtest/gtest.h>

#include "src/slice/ensemble.h"

namespace slice {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 1) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 53);
  }
  return data;
}

class FailureTest : public ::testing::Test {
 protected:
  explicit FailureTest(EnsembleConfig config = DefaultConfig()) {
    ensemble_ = std::make_unique<Ensemble>(queue_, config);
    client_ = ensemble_->MakeSyncClient(0);
    root_ = ensemble_->root();
  }

  static EnsembleConfig DefaultConfig() {
    EnsembleConfig config;
    config.num_dir_servers = 2;
    config.num_small_file_servers = 2;
    config.num_storage_nodes = 2;
    return config;
  }

  EventQueue queue_;
  std::unique_ptr<Ensemble> ensemble_;
  std::unique_ptr<SyncNfsClient> client_;
  FileHandle root_;
};

TEST_F(FailureTest, SimultaneousManagerCrashes) {
  // Create state across both manager classes, flush logs, crash everything
  // at once, recover, verify.
  CreateRes created = client_->Create(root_, "sturdy").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  ASSERT_EQ(client_->Write(*created.object, 0, Pattern(3000), StableHow::kUnstable)
                .value()
                .status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Commit(*created.object).value().status, Nfsstat3::kOk);
  queue_.RunUntilIdle();

  for (size_t i = 0; i < ensemble_->num_dir_servers(); ++i) {
    ensemble_->dir_server(i).FlushLog();
  }
  for (size_t i = 0; i < ensemble_->num_small_file_servers(); ++i) {
    ensemble_->small_file_server(i).FlushDirtyForTest();
  }
  queue_.RunUntilIdle();

  for (size_t i = 0; i < ensemble_->num_dir_servers(); ++i) {
    ensemble_->dir_server(i).Fail();
  }
  for (size_t i = 0; i < ensemble_->num_small_file_servers(); ++i) {
    ensemble_->small_file_server(i).Fail();
  }
  for (size_t i = 0; i < ensemble_->num_dir_servers(); ++i) {
    ensemble_->dir_server(i).Restart();
  }
  for (size_t i = 0; i < ensemble_->num_small_file_servers(); ++i) {
    ensemble_->small_file_server(i).Restart();
  }
  queue_.RunUntilIdle();

  LookupRes found = client_->Lookup(root_, "sturdy").value();
  ASSERT_EQ(found.status, Nfsstat3::kOk);
  ReadRes read = client_->Read(found.object, 0, 3000).value();
  ASSERT_EQ(read.status, Nfsstat3::kOk);
  EXPECT_EQ(read.data, Pattern(3000));
}

TEST_F(FailureTest, LossDuringRecoveryStillConverges) {
  // WAL replay itself runs over the lossy network; RPC retransmission must
  // carry it through.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(client_->Create(root_, "pre" + std::to_string(i)).value().status,
              Nfsstat3::kOk);
  }
  ensemble_->dir_server(0).FlushLog();
  queue_.RunUntilIdle();

  ensemble_->network().set_loss_rate(0.1);
  ensemble_->dir_server(0).Fail();
  ensemble_->dir_server(0).Restart();
  queue_.RunUntilIdle();
  ensemble_->network().set_loss_rate(0.0);

  ASSERT_FALSE(ensemble_->dir_server(0).recovering());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(client_->Lookup(root_, "pre" + std::to_string(i)).value().status,
              Nfsstat3::kOk);
  }
}

TEST_F(FailureTest, StorageCrashLosesOnlyUncommittedSliceData) {
  // Unstable writes buffered at the small-file server survive a STORAGE
  // node crash (they have not been flushed there yet); committed data
  // survives both crashes.
  CreateRes committed = client_->Create(root_, "committed").value();
  ASSERT_EQ(client_->Write(*committed.object, 0, Pattern(2000, 1), StableHow::kUnstable)
                .value()
                .status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Commit(*committed.object).value().status, Nfsstat3::kOk);

  CreateRes buffered = client_->Create(root_, "buffered").value();
  ASSERT_EQ(client_->Write(*buffered.object, 0, Pattern(2000, 2), StableHow::kUnstable)
                .value()
                .status,
            Nfsstat3::kOk);
  queue_.RunUntilIdle();

  for (size_t i = 0; i < ensemble_->num_storage_nodes(); ++i) {
    ensemble_->storage_node(i).Fail();
    ensemble_->storage_node(i).Restart();
  }
  queue_.RunUntilIdle();

  // Both files readable: "committed" from storage-backed pages, "buffered"
  // straight from the small-file server's RAM.
  EXPECT_EQ(client_->Read(*committed.object, 0, 2000).value().data, Pattern(2000, 1));
  EXPECT_EQ(client_->Read(*buffered.object, 0, 2000).value().data, Pattern(2000, 2));
}

TEST_F(FailureTest, RecoveringDirServerAnswersJukebox) {
  // While WAL replay is in flight, name ops get NFS3ERR_JUKEBOX (retry
  // later) rather than wrong answers.
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(client_->Create(root_, "j" + std::to_string(i)).value().status, Nfsstat3::kOk);
  }
  ensemble_->dir_server(0).FlushLog();
  queue_.RunUntilIdle();
  ensemble_->dir_server(0).Fail();
  ensemble_->dir_server(0).Restart();
  // Do NOT drain the queue: ask immediately, racing the replay.
  ASSERT_TRUE(ensemble_->dir_server(0).recovering());
  LookupRes racing = client_->Lookup(root_, "j0").value();
  EXPECT_TRUE(racing.status == Nfsstat3::kErrJukebox || racing.status == Nfsstat3::kOk);
  queue_.RunUntilIdle();
  EXPECT_EQ(client_->Lookup(root_, "j0").value().status, Nfsstat3::kOk);
}

TEST_F(FailureTest, CoordinatorCrashDuringFanoutStillCleansUp) {
  // A remove's data fan-out is in flight when the coordinator crashes; after
  // its own log-driven recovery, no intent leaks and data is gone.
  CreateRes doomed = client_->Create(root_, "doomed").value();
  ASSERT_EQ(client_->Write(*doomed.object, 1 << 20, Pattern(32768), StableHow::kFileSync)
                .value()
                .status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Remove(root_, "doomed").value().status, Nfsstat3::kOk);
  // Crash the coordinator before the µproxy's completion can land.
  ensemble_->coordinator(0).Fail();
  ensemble_->uproxy(0).DropSoftState();  // µproxy forgets the operation too
  ensemble_->coordinator(0).Restart();
  queue_.RunUntilIdle();

  EXPECT_EQ(ensemble_->coordinator(0).pending_intents(), 0u);
  EXPECT_EQ(client_->Read(*doomed.object, 1 << 20, 100).value().count, 0u)
      << "recovered remove reclaimed the bulk data";
}

TEST_F(FailureTest, RepeatedCrashRestartCycles) {
  // Hammer a directory server with crash/recover cycles interleaved with
  // mutations; the namespace stays exact.
  std::set<std::string> expected;
  for (int cycle = 0; cycle < 5; ++cycle) {
    const std::string name = "cycle" + std::to_string(cycle);
    ASSERT_EQ(client_->Create(root_, name).value().status, Nfsstat3::kOk);
    expected.insert(name);
    if (cycle % 2 == 0) {
      const std::string victim = "cycle" + std::to_string(cycle / 2);
      if (expected.erase(victim) > 0) {
        ASSERT_EQ(client_->Remove(root_, victim).value().status, Nfsstat3::kOk);
      }
    }
    ensemble_->dir_server(0).FlushLog();
    queue_.RunUntilIdle();
    ensemble_->dir_server(0).Fail();
    ensemble_->dir_server(0).Restart();
    queue_.RunUntilIdle();
  }
  for (const std::string& name : expected) {
    EXPECT_EQ(client_->Lookup(root_, name).value().status, Nfsstat3::kOk) << name;
  }
  std::vector<DirEntry> listing = client_->ReadWholeDir(root_).value();
  EXPECT_EQ(listing.size(), expected.size());
}

TEST_F(FailureTest, CapabilityForgeryBlockedAtStorage) {
  // A µproxy outside the trust boundary can only touch what its client
  // could: a handle minted with the wrong secret is refused by every
  // storage node even when sent directly.
  FileHandle forged = FileHandle::Make(1, MakeFileid(0, 999), 1, FileType3::kReg, 1,
                                       /*wrong secret=*/0xbad);
  for (size_t i = 0; i < ensemble_->num_storage_nodes(); ++i) {
    SyncNfsClient direct(ensemble_->client_host(0), queue_,
                         ensemble_->storage_node(i).endpoint());
    EXPECT_EQ(direct.Write(forged, 0, Pattern(100), StableHow::kFileSync).value().status,
              Nfsstat3::kErrBadhandle);
  }
}

}  // namespace
}  // namespace slice
