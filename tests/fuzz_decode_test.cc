// Decoder robustness ("poor man's fuzzing", deterministic): every wire
// decoder — XDR, RPC, NFS args/results, µproxy request decode, packet
// parsing — must survive arbitrary bytes and systematic corruption of valid
// messages without crashing, over-reading, or claiming success on garbage
// it cannot have parsed.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/request_decode.h"
#include "src/nfs/nfs_xdr.h"
#include "src/rpc/rpc_message.h"

namespace slice {
namespace {

Bytes RandomBytes(Rng& rng, size_t n) {
  Bytes data(n);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return data;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, RandomBytesThroughEveryDecoder) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes data = RandomBytes(rng, rng.NextBelow(600));

    // RPC layer.
    (void)DecodeRpcMessage(data);
    (void)PeekRpcMessage(data);

    // µproxy fast path.
    DecodedRequest req;
    (void)DecodeNfsRequest(data, &req);
    DecodedReply rep;
    (void)DecodeNfsReply(data, &rep);

    // NFS procedure codecs.
    {
      XdrDecoder dec(data);
      (void)GetattrArgs::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)WriteArgs::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)RenameArgs::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)ReaddirArgs::Decode(dec, true);
    }
    {
      XdrDecoder dec(data);
      (void)ReadRes::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)ReaddirRes::Decode(dec, true);
    }
    {
      XdrDecoder dec(data);
      (void)LookupRes::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)DecodeFattr3(dec);
    }
    {
      XdrDecoder dec(data);
      (void)DecodeSattr3(dec);
    }
    {
      XdrDecoder dec(data);
      (void)DecodeWccData(dec);
    }
  }
  SUCCEED();  // the assertion is "no crash, no UB under ASAN-style checks"
}

TEST_P(FuzzSeedTest, BitFlippedValidCallsNeverCrashTheDecoder) {
  Rng rng(GetParam());
  // Build a valid WRITE call, then flip bits all over it.
  RpcCall call;
  call.xid = 9;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kWrite);
  WriteArgs wargs;
  wargs.file = FileHandle::Make(1, 5, 1, FileType3::kReg, 1, 0);
  wargs.offset = 8192;
  wargs.data = RandomBytes(rng, 300);
  wargs.count = 300;
  XdrEncoder enc;
  wargs.Encode(enc);
  call.args = enc.Take();
  const Bytes valid = call.Encode();

  for (int trial = 0; trial < 400; ++trial) {
    Bytes mutated = valid;
    const int flips = 1 + static_cast<int>(rng.NextBelow(8));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBelow(8));
    }
    DecodedRequest req;
    const Status st = DecodeNfsRequest(mutated, &req);
    if (st.ok()) {
      // If it still parses, the parsed fields must at least be internally
      // sane (proc in range, fh length respected by construction).
      EXPECT_LE(static_cast<uint32_t>(req.proc), 21u);
    }
  }
}

TEST_P(FuzzSeedTest, TruncationsOfValidMessagesFailCleanly) {
  Rng rng(GetParam());
  RpcReply reply;
  reply.xid = 3;
  ReadRes res;
  res.file_attributes = Fattr3{};
  res.data = RandomBytes(rng, 200);
  res.count = 200;
  XdrEncoder enc;
  res.Encode(enc);
  reply.result = enc.Take();
  const Bytes valid = reply.Encode();

  for (size_t keep = 0; keep < valid.size(); ++keep) {
    Result<RpcMessageView> view = DecodeRpcMessage(ByteSpan(valid.data(), keep));
    if (view.ok()) {
      // A prefix that still decodes as an RPC envelope must not yield a
      // successfully decoded READ result beyond its bytes.
      XdrDecoder dec(view->body);
      Result<ReadRes> decoded = ReadRes::Decode(dec);
      if (decoded.ok() && decoded->status == Nfsstat3::kOk) {
        EXPECT_EQ(decoded->data.size(), decoded->count);
      }
    }
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(0x1a, 0x2b, 0x3c, 0x4d, 0x5e, 0x6f));

}  // namespace
}  // namespace slice
