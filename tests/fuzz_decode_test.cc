// Decoder robustness ("poor man's fuzzing", deterministic): every wire
// decoder — XDR, RPC, NFS args/results, µproxy request decode, packet
// parsing — must survive arbitrary bytes and systematic corruption of valid
// messages without crashing, over-reading, or claiming success on garbage
// it cannot have parsed.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/core/request_decode.h"
#include "src/net/packet.h"
#include "src/nfs/nfs_xdr.h"
#include "src/obs/trace.h"
#include "src/rpc/rpc_message.h"

namespace slice {
namespace {

Bytes RandomBytes(Rng& rng, size_t n) {
  Bytes data(n);
  for (auto& b : data) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return data;
}

class FuzzSeedTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzSeedTest, RandomBytesThroughEveryDecoder) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    const Bytes data = RandomBytes(rng, rng.NextBelow(600));

    // RPC layer.
    (void)DecodeRpcMessage(data);
    (void)PeekRpcMessage(data);

    // µproxy fast path.
    DecodedRequest req;
    (void)DecodeNfsRequest(data, &req);
    DecodedReply rep;
    (void)DecodeNfsReply(data, &rep);

    // Cache-fill reply peeks (in-proxy lookup/attribute cache).
    LookupReplyView lview;
    (void)DecodeLookupReplyView(data, &lview);
    GetattrReplyView gview;
    (void)DecodeGetattrReplyView(data, &gview);

    // NFS procedure codecs.
    {
      XdrDecoder dec(data);
      (void)GetattrArgs::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)WriteArgs::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)RenameArgs::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)ReaddirArgs::Decode(dec, true);
    }
    {
      XdrDecoder dec(data);
      (void)ReadRes::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)ReaddirRes::Decode(dec, true);
    }
    {
      XdrDecoder dec(data);
      (void)LookupRes::Decode(dec);
    }
    {
      XdrDecoder dec(data);
      (void)DecodeFattr3(dec);
    }
    {
      XdrDecoder dec(data);
      (void)DecodeSattr3(dec);
    }
    {
      XdrDecoder dec(data);
      (void)DecodeWccData(dec);
    }
  }
  SUCCEED();  // the assertion is "no crash, no UB under ASAN-style checks"
}

TEST_P(FuzzSeedTest, BitFlippedValidCallsNeverCrashTheDecoder) {
  Rng rng(GetParam());
  // Build a valid WRITE call, then flip bits all over it.
  RpcCall call;
  call.xid = 9;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kWrite);
  WriteArgs wargs;
  wargs.file = FileHandle::Make(1, 5, 1, FileType3::kReg, 1, 0);
  wargs.offset = 8192;
  wargs.data = RandomBytes(rng, 300);
  wargs.count = 300;
  XdrEncoder enc;
  wargs.Encode(enc);
  call.args = enc.Take();
  const Bytes valid = call.Encode();

  for (int trial = 0; trial < 400; ++trial) {
    Bytes mutated = valid;
    const int flips = 1 + static_cast<int>(rng.NextBelow(8));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBelow(8));
    }
    DecodedRequest req;
    const Status st = DecodeNfsRequest(mutated, &req);
    if (st.ok()) {
      // If it still parses, the parsed fields must at least be internally
      // sane (proc in range, fh length respected by construction).
      EXPECT_LE(static_cast<uint32_t>(req.proc), 21u);
    }
  }
}

TEST_P(FuzzSeedTest, BitFlippedCacheFillRepliesNeverCrashTheViewDecoders) {
  Rng rng(GetParam());
  // Valid LOOKUP reply: child handle plus post-op attributes, the exact
  // shape the µproxy's cache-fill path peeks at.
  const FileHandle child = FileHandle::Make(2, 7, 3, FileType3::kReg, 2, 0);
  Bytes valid_lookup;
  {
    RpcReply reply;
    reply.xid = 77;
    LookupRes res;
    res.status = Nfsstat3::kOk;
    res.object = child;
    Fattr3 attr;
    attr.type = FileType3::kReg;
    attr.fileid = child.fileid();
    attr.size = 4096;
    res.obj_attributes = attr;
    XdrEncoder enc;
    res.Encode(enc);
    reply.result = enc.Take();
    valid_lookup = reply.Encode();
  }
  // Valid GETATTR reply.
  Bytes valid_getattr;
  {
    RpcReply reply;
    reply.xid = 78;
    GetattrRes res;
    res.status = Nfsstat3::kOk;
    res.attributes.type = FileType3::kDir;
    res.attributes.fileid = 42;
    XdrEncoder enc;
    res.Encode(enc);
    reply.result = enc.Take();
    valid_getattr = reply.Encode();
  }

  for (int trial = 0; trial < 400; ++trial) {
    Bytes lm = valid_lookup;
    Bytes gm = valid_getattr;
    const int flips = 1 + static_cast<int>(rng.NextBelow(8));
    for (int f = 0; f < flips; ++f) {
      lm[rng.NextBelow(lm.size())] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
      gm[rng.NextBelow(gm.size())] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    }
    LookupReplyView lview;
    if (DecodeLookupReplyView(lm, &lview).ok()) {
      // If it still parses, the view must be internally sane: the attribute
      // flag is a bool, and a non-OK status never claims attributes (the
      // cache-fill path trusts exactly these two invariants).
      EXPECT_LE(lview.has_attr, 1u);
      if (lview.nfs_status != 0) {
        EXPECT_EQ(lview.has_attr, 0u);
      }
    }
    GetattrReplyView gview;
    (void)DecodeGetattrReplyView(gm, &gview);
  }
}

TEST_P(FuzzSeedTest, TruncatedCacheFillRepliesFailCleanly) {
  // Every strict prefix of a valid LOOKUP/GETATTR reply must be rejected or
  // parse without over-reading; the untruncated bytes must round-trip the
  // fields the cache-fill path consumes.
  const FileHandle child = FileHandle::Make(1, 9, 2, FileType3::kReg, 4, 0);
  RpcReply reply;
  reply.xid = 501;
  LookupRes res;
  res.status = Nfsstat3::kOk;
  res.object = child;
  Fattr3 attr;
  attr.type = FileType3::kReg;
  attr.fileid = child.fileid();
  res.obj_attributes = attr;
  XdrEncoder enc;
  res.Encode(enc);
  reply.result = enc.Take();
  const Bytes valid = reply.Encode();

  // The view decoder never reads past the object attributes (the trailing
  // dir_attributes post-op flag is dead weight to the cache), so only
  // prefixes that keep everything up to that flag may parse with
  // attributes — and then the fields must round-trip, never over-read.
  const size_t attrs_end = valid.size() - 4;  // 4 = absent dir_attributes flag
  for (size_t keep = 0; keep < valid.size(); ++keep) {
    LookupReplyView view;
    const Status st =
        DecodeLookupReplyView(ByteSpan(valid.data(), keep), &view);
    if (st.ok() && view.nfs_status == 0 && view.has_attr) {
      EXPECT_GE(keep, attrs_end) << "keep=" << keep;
      EXPECT_EQ(view.fh.fileid(), child.fileid());
      EXPECT_EQ(view.attr.fileid, child.fileid());
    }
  }
  LookupReplyView view;
  ASSERT_TRUE(DecodeLookupReplyView(valid, &view).ok());
  EXPECT_EQ(view.xid, 501u);
  EXPECT_EQ(view.nfs_status, 0u);
  EXPECT_EQ(view.fh.fileid(), child.fileid());
  EXPECT_EQ(view.has_attr, 1u);
  EXPECT_EQ(view.attr.fileid, child.fileid());
}

TEST_P(FuzzSeedTest, TruncationsOfValidMessagesFailCleanly) {
  Rng rng(GetParam());
  RpcReply reply;
  reply.xid = 3;
  ReadRes res;
  res.file_attributes = Fattr3{};
  res.data = RandomBytes(rng, 200);
  res.count = 200;
  XdrEncoder enc;
  res.Encode(enc);
  reply.result = enc.Take();
  const Bytes valid = reply.Encode();

  for (size_t keep = 0; keep < valid.size(); ++keep) {
    Result<RpcMessageView> view = DecodeRpcMessage(ByteSpan(valid.data(), keep));
    if (view.ok()) {
      // A prefix that still decodes as an RPC envelope must not yield a
      // successfully decoded READ result beyond its bytes.
      XdrDecoder dec(view->body);
      Result<ReadRes> decoded = ReadRes::Decode(dec);
      if (decoded.ok() && decoded->status == Nfsstat3::kOk) {
        EXPECT_EQ(decoded->data.size(), decoded->count);
      }
    }
  }
  SUCCEED();
}

// Builds a READ reply wire exactly as the server's pooled encode path does:
// the span-encoded ReadRes result spliced into a hand-built accepted-reply
// envelope (rpc_server.cc CompleteCall), no intermediate Bytes copy.
Bytes ServerShapedReadReply(uint32_t xid, const Fattr3& attr, ByteSpan payload,
                            bool eof) {
  ReadRes res;
  res.status = Nfsstat3::kOk;
  res.file_attributes = attr;
  res.count = static_cast<uint32_t>(payload.size());
  res.eof = eof;
  XdrEncoder result;
  res.Encode(result, payload);
  XdrEncoder reply;
  reply.PutUint32(xid);
  reply.PutEnum(static_cast<uint32_t>(RpcMsgType::kReply));
  reply.PutEnum(static_cast<uint32_t>(RpcReplyStat::kAccepted));
  reply.PutEnum(static_cast<uint32_t>(RpcAuthFlavor::kNone));
  reply.PutUint32(0);  // empty verifier
  reply.PutEnum(static_cast<uint32_t>(RpcAcceptStat::kSuccess));
  reply.PutOpaqueFixed(result.bytes());
  return reply.Take();
}

TEST_P(FuzzSeedTest, ServerEncodedReadReplyRoundTrips) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const Bytes payload = RandomBytes(rng, rng.NextBelow(2000));
    Fattr3 attr;
    attr.type = FileType3::kReg;
    attr.fileid = rng.NextU64();
    attr.size = payload.size();
    const uint32_t xid = static_cast<uint32_t>(rng.NextU64());
    const bool eof = (trial & 1) != 0;
    const Bytes wire = ServerShapedReadReply(xid, attr, ByteSpan(payload), eof);

    // The span overload must be byte-identical to the materializing encoder
    // — this is the contract the zero-copy reply path stands on.
    {
      ReadRes res;
      res.status = Nfsstat3::kOk;
      res.file_attributes = attr;
      res.count = static_cast<uint32_t>(payload.size());
      res.eof = eof;
      res.data = payload;
      XdrEncoder materialized;
      res.Encode(materialized);
      XdrEncoder spanned;
      res.Encode(spanned, ByteSpan(payload));
      EXPECT_EQ(materialized.bytes().size(), spanned.bytes().size());
      EXPECT_TRUE(std::memcmp(materialized.bytes().data(), spanned.bytes().data(),
                              spanned.bytes().size()) == 0);
    }

    // Full round trip through the envelope and result decoders.
    Result<RpcMessageView> view = DecodeRpcMessage(wire);
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view->xid, xid);
    XdrDecoder dec(view->body);
    Result<ReadRes> decoded = ReadRes::Decode(dec);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->status, Nfsstat3::kOk);
    EXPECT_EQ(decoded->count, payload.size());
    EXPECT_EQ(decoded->eof, eof);
    ASSERT_EQ(decoded->data.size(), payload.size());
    EXPECT_TRUE(decoded->data == payload);
    ASSERT_TRUE(decoded->file_attributes.has_value());
    EXPECT_EQ(decoded->file_attributes->fileid, attr.fileid);

    // And through the µproxy's reply fast-path decoder.
    DecodedReply rep;
    ASSERT_TRUE(DecodeNfsReply(wire, &rep).ok());
    EXPECT_EQ(rep.xid, xid);
  }
}

TEST_P(FuzzSeedTest, BitFlippedServerRepliesNeverCrashTheDecoders) {
  Rng rng(GetParam());
  Fattr3 attr;
  attr.type = FileType3::kReg;
  attr.fileid = 77;
  const Bytes payload = RandomBytes(rng, 512);
  attr.size = payload.size();
  const Bytes valid = ServerShapedReadReply(4242, attr, ByteSpan(payload), true);

  for (int trial = 0; trial < 400; ++trial) {
    Bytes mutated = valid;
    const int flips = 1 + static_cast<int>(rng.NextBelow(8));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^=
          static_cast<uint8_t>(1u << rng.NextBelow(8));
    }
    Result<RpcMessageView> view = DecodeRpcMessage(mutated);
    if (view.ok()) {
      XdrDecoder dec(view->body);
      Result<ReadRes> decoded = ReadRes::Decode(dec);
      if (decoded.ok()) {
        // A parse that survives corruption must never claim more payload
        // than the wire could carry (no over-read).
        EXPECT_LE(decoded->data.size(), mutated.size());
      }
    }
    DecodedReply rep;
    (void)DecodeNfsReply(mutated, &rep);
  }
}

TEST_P(FuzzSeedTest, TruncatedServerRepliesFailCleanly) {
  Rng rng(GetParam());
  Fattr3 attr;
  attr.type = FileType3::kReg;
  attr.fileid = 9;
  const Bytes payload = RandomBytes(rng, 300);
  attr.size = payload.size();
  const Bytes valid = ServerShapedReadReply(600, attr, ByteSpan(payload), false);

  for (size_t keep = 0; keep < valid.size(); ++keep) {
    Result<RpcMessageView> view = DecodeRpcMessage(ByteSpan(valid.data(), keep));
    if (view.ok()) {
      XdrDecoder dec(view->body);
      Result<ReadRes> decoded = ReadRes::Decode(dec);
      if (decoded.ok() && decoded->status == Nfsstat3::kOk) {
        // The opaque length header inside the prefix is intact, so any
        // successful parse carries exactly the advertised byte count.
        EXPECT_EQ(decoded->data.size(), decoded->count);
      }
    }
    DecodedReply rep;
    (void)DecodeNfsReply(ByteSpan(valid.data(), keep), &rep);
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, RandomBytesThroughTraceTrailerDecoders) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 300; ++trial) {
    Packet pkt(RandomBytes(rng, rng.NextBelow(200)));
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    (void)pkt.HasTrace();
    (void)pkt.PeekTrace(&trace_id, &span_id);
    (void)pkt.PeekTrace(nullptr, nullptr);
    if (pkt.DetachTrace(&trace_id, &span_id)) {
      // A detached trailer is gone: a second detach must find nothing.
      EXPECT_FALSE(pkt.HasTrace());
      EXPECT_FALSE(pkt.DetachTrace());
    }
    if (pkt.IsValidUdp()) {
      (void)pkt.payload();
      (void)pkt.VerifyChecksums();
    }
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, CorruptedTraceTrailersNeverCrashOrCorruptOtherSpans) {
  Rng rng(GetParam());
  // A sentinel span recorded up front; no amount of trailer corruption on
  // unrelated packets may change it.
  obs::Tracer tracer;
  const obs::TraceContext sentinel{42, 4242};
  tracer.RecordSpan(1, sentinel, obs::SpanCat::kCpu, "sentinel", 100, 200);
  const std::vector<obs::Span> before = tracer.Collect();
  ASSERT_EQ(before.size(), 1u);

  const Bytes payload = RandomBytes(rng, 128);
  const Packet valid = [&] {
    Packet p = Packet::MakeUdp(Endpoint{0x0a000001, 700}, Endpoint{0x0a000064, 2049}, payload);
    p.AttachTrace(7, 9);
    return p;
  }();
  ASSERT_TRUE(valid.HasTrace());
  ASSERT_TRUE(valid.IsValidUdp());

  auto exercise = [&](Packet pkt) {
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    if (pkt.PeekTrace(&trace_id, &span_id)) {
      // A corrupted trailer may peek as garbage ids; recording under them
      // must stay confined to the garbage trace, never the sentinel's.
      tracer.RecordSpan(2, obs::TraceContext{trace_id, span_id}, obs::SpanCat::kWire,
                        "fuzzed", 0, 1);
    }
    if (pkt.IsValidUdp()) {
      (void)pkt.payload();
      (void)pkt.VerifyChecksums();
    }
    (void)pkt.DetachTrace();
  };

  // Systematic: every single-bit flip across the whole buffer, trailer
  // included (magic, ids, and the IP length field that gates recognition).
  const Bytes& raw = valid.bytes();
  for (size_t byte = 0; byte < raw.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      Bytes mutated = raw;
      mutated[byte] ^= static_cast<uint8_t>(1u << bit);
      exercise(Packet(std::move(mutated)));
    }
  }
  // Random: multi-bit corruption.
  for (int trial = 0; trial < 200; ++trial) {
    Bytes mutated = raw;
    const int flips = 2 + static_cast<int>(rng.NextBelow(12));
    for (int f = 0; f < flips; ++f) {
      mutated[rng.NextBelow(mutated.size())] ^= static_cast<uint8_t>(1u << rng.NextBelow(8));
    }
    exercise(Packet(std::move(mutated)));
  }

  // The sentinel span survives, bit for bit.
  const std::vector<obs::Span> after = tracer.Collect();
  const obs::Span* survivor = nullptr;
  for (const obs::Span& span : after) {
    if (span.trace_id == sentinel.trace_id) {
      ASSERT_EQ(survivor, nullptr) << "exactly one sentinel span";
      survivor = &span;
    }
  }
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(std::memcmp(survivor, &before[0], sizeof(obs::Span)), 0)
      << "corrupted trailers never touch an unrelated span";
}

TEST_P(FuzzSeedTest, TruncatedTraceTrailersFailCleanly) {
  Rng rng(GetParam());
  Packet full = Packet::MakeUdp(Endpoint{0x0a000002, 701}, Endpoint{0x0a000064, 2049},
                                RandomBytes(rng, 96));
  full.AttachTrace(1234, 5678);
  const Bytes valid = full.bytes();

  for (size_t keep = 0; keep < valid.size(); ++keep) {
    Packet pkt(Bytes(valid.begin(), valid.begin() + static_cast<ptrdiff_t>(keep)));
    uint64_t trace_id = 0;
    uint64_t span_id = 0;
    (void)pkt.HasTrace();
    (void)pkt.PeekTrace(&trace_id, &span_id);
    if (keep == valid.size() - kTraceTrailerSize) {
      // Cutting exactly the trailer restores a trace-free, fully valid
      // datagram — the trailer really is outside the IP length/checksums.
      EXPECT_FALSE(pkt.HasTrace());
      EXPECT_TRUE(pkt.IsValidUdp());
      EXPECT_TRUE(pkt.VerifyChecksums());
    } else if (keep < valid.size()) {
      // Any other truncation breaks the length relationship: never
      // misrecognized as a trailer, and never a valid datagram either.
      EXPECT_FALSE(pkt.HasTrace());
      EXPECT_FALSE(pkt.IsValidUdp());
    }
    (void)pkt.DetachTrace(&trace_id, &span_id);
  }

  // Untruncated: the ids round-trip and detaching restores the exact
  // pre-attach datagram bytes.
  Packet pkt(valid);
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  ASSERT_TRUE(pkt.PeekTrace(&trace_id, &span_id));
  EXPECT_EQ(trace_id, 1234u);
  EXPECT_EQ(span_id, 5678u);
  ASSERT_TRUE(pkt.DetachTrace());
  EXPECT_TRUE(pkt.IsValidUdp());
  EXPECT_TRUE(pkt.VerifyChecksums());
  EXPECT_EQ(pkt.size(), valid.size() - kTraceTrailerSize);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest,
                         ::testing::Values(0x1a, 0x2b, 0x3c, 0x4d, 0x5e, 0x6f));

}  // namespace
}  // namespace slice
