// In-proxy metadata cache tests (src/core/attr_cache.h LookupCache + the
// µproxy serve/fill/invalidate paths):
//
//  * the bounded LRU is checked differentially against a brain-dead model
//    cache over a randomized trace (hits, evictions, erases all match);
//  * epoch invalidation is *exact*: an epoch bump that rebinds slots flushes
//    precisely the entries resolved through those slots and nothing else;
//  * the cache-served hit path is zero-allocation at steady state, pinned
//    with the same process-wide operator-new counter as the forwarding fast
//    path (tests/fastpath_alloc_test.cc).
#include <gtest/gtest.h>

#include <cstdlib>
#include <list>
#include <new>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/core/attr_cache.h"
#include "src/core/request_decode.h"
#include "src/core/uproxy.h"
#include "src/dir/dir_server.h"
#include "src/dir/dir_store.h"
#include "src/net/packet_pool.h"
#include "src/nfs/nfs_xdr.h"
#include "src/rpc/rpc_message.h"

// Counts every operator-new in the process; the alloc test measures deltas.
static uint64_t g_news = 0;

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slice {
namespace {

Fattr3 TestAttr(uint64_t fileid) {
  Fattr3 attr;
  attr.fileid = fileid;
  attr.size = 4096 + fileid;
  return attr;
}

FileHandle ChildHandle(uint64_t fileid) {
  return FileHandle::Make(1, fileid, 1, FileType3::kReg, 1, 0);
}

// ---- LookupCache unit properties -----------------------------------------

TEST(ProxyCacheTest, LruMatchesModelCacheOverRandomTrace) {
  constexpr size_t kCapacity = 32;
  LookupCache cache(kCapacity);

  // Reference model: an explicit most-recent-first list of (dir, fp) keys.
  struct Model {
    size_t cap = kCapacity;
    uint64_t evictions = 0;
    std::list<std::pair<uint64_t, uint64_t>> order;  // front = most recent

    bool Find(uint64_t d, uint64_t f) {
      for (auto it = order.begin(); it != order.end(); ++it) {
        if (it->first == d && it->second == f) {
          order.splice(order.begin(), order, it);
          return true;
        }
      }
      return false;
    }
    void Insert(uint64_t d, uint64_t f) {
      if (Find(d, f)) {
        return;  // overwrite + touch
      }
      if (order.size() == cap) {
        order.pop_back();
        ++evictions;
      }
      order.emplace_front(d, f);
    }
    void Erase(uint64_t d, uint64_t f) {
      order.remove(std::pair<uint64_t, uint64_t>{d, f});
    }
  } model;

  Rng rng(0xcac4e);
  for (int op = 0; op < 4000; ++op) {
    const uint64_t dir = 1 + rng.NextBelow(4);
    const uint64_t fp = 0x1000 + rng.NextBelow(64);
    switch (rng.NextBelow(10)) {
      case 0:  // erase
        cache.Erase(dir, fp);
        model.Erase(dir, fp);
        break;
      case 1:
      case 2:
      case 3:  // insert
        cache.Insert(dir, fp, ChildHandle(fp), TestAttr(fp),
                     static_cast<uint32_t>(fp % 64), /*now_ns=*/op);
        model.Insert(dir, fp);
        break;
      default: {  // find
        const LookupCache::Entry* e = cache.Find(dir, fp, /*now_ns=*/op, /*ttl_ns=*/0);
        ASSERT_EQ(e != nullptr, model.Find(dir, fp)) << "op " << op;
        if (e != nullptr) {
          ASSERT_EQ(e->dir_id, dir);
          ASSERT_EQ(e->name_fp, fp);
          ASSERT_EQ(e->fh.fileid(), fp);
        }
        break;
      }
    }
    ASSERT_EQ(cache.size(), model.order.size()) << "op " << op;
    ASSERT_EQ(cache.evictions(), model.evictions) << "op " << op;
  }
  EXPECT_GT(cache.evictions(), 0u);  // the trace actually exercised capacity
}

TEST(ProxyCacheTest, TtlExpiresEntriesOnProbe) {
  LookupCache cache(8);
  cache.Insert(1, 100, ChildHandle(7), TestAttr(7), 0, /*now_ns=*/1000);
  EXPECT_NE(cache.Find(1, 100, /*now_ns=*/1500, /*ttl_ns=*/600), nullptr);
  // Past the TTL the probe drops the entry and misses.
  EXPECT_EQ(cache.Find(1, 100, /*now_ns=*/1601, /*ttl_ns=*/600), nullptr);
  EXPECT_EQ(cache.size(), 0u);
  // ttl 0 = no expiry.
  cache.Insert(1, 100, ChildHandle(7), TestAttr(7), 0, /*now_ns=*/1000);
  EXPECT_NE(cache.Find(1, 100, /*now_ns=*/1u << 30, /*ttl_ns=*/0), nullptr);
}

TEST(ProxyCacheTest, InvalidateSlotsFlushesExactlyMarkedSlots) {
  LookupCache cache(64);
  for (uint64_t i = 0; i < 24; ++i) {
    cache.Insert(1, i, ChildHandle(i), TestAttr(i),
                 /*slot=*/static_cast<uint32_t>(i % 8), /*now_ns=*/0);
  }
  std::vector<uint8_t> changed(8, 0);
  changed[2] = 1;
  changed[5] = 1;
  // 24 entries over 8 slots = 3 per slot; two slots rebound = 6 flushed.
  EXPECT_EQ(cache.InvalidateSlots(changed), 6u);
  EXPECT_EQ(cache.size(), 18u);
  for (uint64_t i = 0; i < 24; ++i) {
    const bool hit = cache.Find(1, i, 0, 0) != nullptr;
    EXPECT_EQ(hit, i % 8 != 2 && i % 8 != 5) << "fp " << i;
  }
}

TEST(ProxyCacheTest, AttrFlushWherePreservesDirtyEntries) {
  AttrCache cache(64);
  cache.MergeFromReply(10, TestAttr(10));  // clean + complete
  cache.MergeFromReply(11, TestAttr(11));  // clean, then dirtied by a write
  cache.NoteWrite(11, 9000, NfsTime{});
  cache.NoteWrite(12, 100, NfsTime{});     // dirty, partial
  ASSERT_EQ(cache.size(), 3u);
  // Flush everything flushable: only the clean entry goes.
  EXPECT_EQ(cache.FlushWhere([](uint64_t) { return true; }), 1u);
  EXPECT_EQ(cache.Find(10), nullptr);
  ASSERT_NE(cache.Find(11), nullptr);
  EXPECT_TRUE(cache.Find(11)->dirty);
  ASSERT_NE(cache.Find(12), nullptr);
  EXPECT_FALSE(cache.Find(12)->complete);
}

// ---- µproxy integration: fill, serve, epoch invalidation -----------------

constexpr NetAddr kClientAddr = 0x0a000001;
constexpr NetAddr kDirAddr0 = 0x0a000010;
constexpr NetAddr kDirAddr1 = 0x0a000011;
constexpr NetPort kNfsPort = 2049;
constexpr NetPort kClientPort = 5001;

UproxyConfig CacheConfig() {
  UproxyConfig config;
  config.virtual_server = Endpoint{0x0a0000fe, kNfsPort};
  config.dir_servers = {Endpoint{kDirAddr0, kNfsPort}, Endpoint{kDirAddr1, kNfsPort}};
  config.storage_nodes = {Endpoint{0x0a000020, kNfsPort}};
  config.proxy_cache = true;
  return config;
}

Bytes LookupCallWire(uint32_t xid, const FileHandle& dir, const std::string& name) {
  RpcCall call;
  call.xid = xid;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kLookup);
  XdrEncoder args;
  DirOpArgs da;
  da.dir = dir;
  da.name = name;
  da.Encode(args);
  call.args = args.Take();
  return call.Encode();
}

Bytes LookupReplyWire(uint32_t xid, const FileHandle& child) {
  RpcReply reply;
  reply.xid = xid;
  XdrEncoder result;
  LookupRes res;
  res.status = Nfsstat3::kOk;
  res.object = child;
  res.obj_attributes = TestAttr(child.fileid());
  res.Encode(result);
  reply.result = result.Take();
  return reply.Encode();
}

Bytes GetattrCallWire(uint32_t xid, const FileHandle& fh) {
  RpcCall call;
  call.xid = xid;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kGetattr);
  XdrEncoder args;
  GetattrArgs ga;
  ga.object = fh;
  ga.Encode(args);
  call.args = args.Take();
  return call.Encode();
}

struct ProxyRig {
  EventQueue queue;
  Network net{queue, NetworkParams{}};
  Host client_host{net, kClientAddr};
  Uproxy uproxy;
  std::vector<Bytes> replies;

  ProxyRig() : uproxy(net, queue, client_host, CacheConfig()) {
    client_host.Bind(kClientPort, [this](Packet&& pkt) {
      replies.emplace_back(pkt.payload().begin(), pkt.payload().end());
    });
  }

  // Primes one (dir, name) entry with a full wire round trip through the
  // forward + reply-fill path.
  void Fill(uint32_t xid, const FileHandle& dir, const std::string& name,
            const FileHandle& child) {
    uproxy.HandleOutbound(Packet::MakeUdp(Endpoint{kClientAddr, kClientPort},
                                          CacheConfig().virtual_server,
                                          LookupCallWire(xid, dir, name)));
    uproxy.HandleInbound(Packet::MakeUdp(Endpoint{kDirAddr0, kNfsPort},
                                         Endpoint{kClientAddr, kClientPort},
                                         LookupReplyWire(xid, child)));
    queue.RunUntilIdle();
  }

  // Issues a LOOKUP; returns true when it was answered locally (no new
  // pending forward).
  bool Probe(uint32_t xid, const FileHandle& dir, const std::string& name) {
    const size_t pending_before = uproxy.pending_count();
    const size_t replies_before = replies.size();
    uproxy.HandleOutbound(Packet::MakeUdp(Endpoint{kClientAddr, kClientPort},
                                          CacheConfig().virtual_server,
                                          LookupCallWire(xid, dir, name)));
    queue.RunUntilIdle();
    const bool served = replies.size() == replies_before + 1;
    if (served) {
      EXPECT_EQ(uproxy.pending_count(), pending_before);
    }
    return served;
  }
};

TEST(ProxyCacheTest, ServesRepeatLookupLocallyWithWireCorrectReply) {
  ProxyRig rig;
  const FileHandle dir = FileHandle::Make(1, MakeFileid(0, 2), 1, FileType3::kDir, 1, 0);
  const FileHandle child = ChildHandle(MakeFileid(0, 77));
  rig.Fill(1, dir, "alpha", child);
  ASSERT_EQ(rig.replies.size(), 1u);  // the forwarded reply reached the client

  ASSERT_TRUE(rig.Probe(2, dir, "alpha"));
  EXPECT_EQ(rig.uproxy.counters().Get("cache_lookup_hits"), 1u);
  // The cache-served reply is wire-compatible: our own reply-view decoder
  // accepts it and returns the filled handle + attributes.
  LookupReplyView view;
  ASSERT_TRUE(DecodeLookupReplyView(ByteSpan(rig.replies.back()), &view).ok());
  EXPECT_EQ(view.xid, 2u);
  EXPECT_EQ(view.nfs_status, 0u);
  EXPECT_EQ(view.fh.fileid(), child.fileid());
  ASSERT_TRUE(view.has_attr);
  EXPECT_EQ(view.attr.fileid, child.fileid());

  // Unknown names still miss and forward.
  EXPECT_FALSE(rig.Probe(3, dir, "beta"));
  EXPECT_EQ(rig.uproxy.counters().Get("cache_lookup_misses"), 2u);  // fill + beta
}

TEST(ProxyCacheTest, GetattrServedFromCompleteAttrEntryOnly) {
  ProxyRig rig;
  const FileHandle dir = FileHandle::Make(1, MakeFileid(0, 2), 1, FileType3::kDir, 1, 0);
  const FileHandle child = ChildHandle(MakeFileid(0, 9));
  rig.Fill(1, dir, "alpha", child);

  // The lookup reply's post-op attrs made the entry complete: local serve.
  const size_t replies_before = rig.replies.size();
  rig.uproxy.HandleOutbound(Packet::MakeUdp(Endpoint{kClientAddr, kClientPort},
                                            CacheConfig().virtual_server,
                                            GetattrCallWire(5, child)));
  rig.queue.RunUntilIdle();
  ASSERT_EQ(rig.replies.size(), replies_before + 1);
  EXPECT_EQ(rig.uproxy.counters().Get("cache_getattr_hits"), 1u);
  GetattrReplyView view;
  ASSERT_TRUE(DecodeGetattrReplyView(ByteSpan(rig.replies.back()), &view).ok());
  EXPECT_EQ(view.xid, 5u);
  EXPECT_EQ(view.attr.fileid, child.fileid());

  // A file the proxy has never seen attributes for goes to the server.
  const size_t pending_before = rig.uproxy.pending_count();
  rig.uproxy.HandleOutbound(Packet::MakeUdp(Endpoint{kClientAddr, kClientPort},
                                            CacheConfig().virtual_server,
                                            GetattrCallWire(6, ChildHandle(MakeFileid(0, 999)))));
  rig.queue.RunUntilIdle();
  EXPECT_EQ(rig.uproxy.pending_count(), pending_before + 1);
}

TEST(ProxyCacheTest, RemoveInvalidatesCachedNameAtRequestTime) {
  ProxyRig rig;
  const FileHandle dir = FileHandle::Make(1, MakeFileid(0, 2), 1, FileType3::kDir, 1, 0);
  const FileHandle child = ChildHandle(MakeFileid(0, 33));
  rig.Fill(1, dir, "victim", child);
  ASSERT_TRUE(rig.Probe(2, dir, "victim"));

  // The remove is forwarded (it may yet fail), but the cached name must die
  // now: a racing lookup may not be answered from the proxy.
  RpcCall call;
  call.xid = 3;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kRemove);
  XdrEncoder args;
  DirOpArgs da;
  da.dir = dir;
  da.name = "victim";
  da.Encode(args);
  call.args = args.Take();
  rig.uproxy.HandleOutbound(Packet::MakeUdp(Endpoint{kClientAddr, kClientPort},
                                            CacheConfig().virtual_server, call.Encode()));
  rig.queue.RunUntilIdle();

  EXPECT_FALSE(rig.Probe(4, dir, "victim"));
  // The victim's attributes died with its name: getattr forwards too.
  const size_t pending_before = rig.uproxy.pending_count();
  rig.uproxy.HandleOutbound(Packet::MakeUdp(Endpoint{kClientAddr, kClientPort},
                                            CacheConfig().virtual_server,
                                            GetattrCallWire(7, child)));
  rig.queue.RunUntilIdle();
  EXPECT_EQ(rig.uproxy.pending_count(), pending_before + 1);
}

TEST(ProxyCacheTest, EpochBumpFlushesExactlyReboundSlots) {
  ProxyRig rig;
  const FileHandle dir = FileHandle::Make(1, MakeFileid(0, 2), 1, FileType3::kDir, 1, 0);

  // Fill entries until two distinct logical slots hold at least one entry
  // each, tracking which name landed in which slot.
  std::vector<std::pair<std::string, uint32_t>> filled;  // (name, slot)
  uint32_t xid = 1;
  for (int i = 0; filled.size() < 6 && i < 64; ++i) {
    const std::string name = "entry_" + std::to_string(i);
    const uint64_t fp = NameFingerprint(dir, name);
    rig.Fill(xid++, dir, name, ChildHandle(MakeFileid(0, 100 + i)));
    filled.emplace_back(name, static_cast<uint32_t>(fp % kDefaultLogicalSlots));
  }

  // Rebind exactly the slot the FIRST filled name resolved through; keep
  // every other slot on its round-robin owner.
  const uint32_t rebound = filled[0].second;
  MgmtTableSet tables;
  tables.epoch = 1;
  tables.dir_servers = CacheConfig().dir_servers;
  tables.dir_alive = {1, 1};
  tables.dir_slots.resize(kDefaultLogicalSlots);
  for (uint32_t s = 0; s < kDefaultLogicalSlots; ++s) {
    tables.dir_slots[s] = s % 2;
  }
  tables.dir_slots[rebound] ^= 1;
  ASSERT_TRUE(rig.uproxy.InstallTables(tables));

  size_t expected_flushed = 0;
  for (const auto& [name, slot] : filled) {
    const bool affected = slot == rebound;
    expected_flushed += affected ? 1 : 0;
    // Affected entries miss (forward); unaffected ones still serve locally.
    EXPECT_EQ(rig.Probe(xid++, dir, name), !affected) << name;
  }
  ASSERT_GT(expected_flushed, 0u);
  EXPECT_EQ(rig.uproxy.counters().Get("cache_flushes"), 1u);
  // The attr entries of affected children flush too (they were filled via
  // site-0 fileids, so only slot-binding flushes count here): the counter
  // totals lookup entries + attr entries dropped by this bump.
  EXPECT_GE(rig.uproxy.counters().Get("cache_flushed_entries"), expected_flushed);

  // Same-epoch re-push is a no-op: no second flush event.
  EXPECT_FALSE(rig.uproxy.InstallTables(tables));
  EXPECT_EQ(rig.uproxy.counters().Get("cache_flushes"), 1u);
}

TEST(ProxyCacheTest, SteadyStateLookupHitDoesNotAllocate) {
  ASSERT_TRUE(PacketPool::Enabled());
  // Standalone rig: the reply sink only counts, so the measurement window
  // sees the proxy's allocations and nothing of the harness.
  EventQueue queue;
  Network net(queue, NetworkParams{});
  Host client_host(net, kClientAddr);
  Uproxy uproxy(net, queue, client_host, CacheConfig());
  uint64_t served = 0;
  client_host.Bind(kClientPort, [&served](Packet&&) { ++served; });

  const FileHandle dir = FileHandle::Make(1, MakeFileid(0, 2), 1, FileType3::kDir, 1, 0);
  const FileHandle child = ChildHandle(MakeFileid(0, 42));
  const Endpoint client_ep{kClientAddr, kClientPort};
  const Endpoint vserver = CacheConfig().virtual_server;
  uproxy.HandleOutbound(Packet::MakeUdp(client_ep, vserver, LookupCallWire(1, dir, "hot")));
  uproxy.HandleInbound(Packet::MakeUdp(Endpoint{kDirAddr0, kNfsPort}, client_ep,
                                       LookupReplyWire(1, child)));
  queue.RunUntilIdle();
  ASSERT_EQ(served, 1u);

  const Bytes probe_wire = LookupCallWire(77, dir, "hot");
  auto hit = [&]() {
    uproxy.HandleOutbound(Packet::MakeUdp(client_ep, vserver, probe_wire));
    queue.RunUntilIdle();
  };

  // Warm-up: op-counter map nodes, the reused reply encoder, the event heap
  // and the pool freelist all reach steady-state capacity.
  for (int i = 0; i < 64; ++i) {
    hit();
  }
  ASSERT_EQ(uproxy.counters().Get("cache_lookup_hits"), 64u);

  const uint64_t news_before = g_news;
  for (int i = 0; i < 256; ++i) {
    hit();
  }
  const uint64_t news_after = g_news;
  EXPECT_EQ(news_after - news_before, 0u)
      << "cache-served lookup allocated " << (news_after - news_before)
      << " times over 256 hits";
  EXPECT_EQ(uproxy.counters().Get("cache_lookup_hits"), 64u + 256u);
  EXPECT_EQ(served, 1u + 64u + 256u);
  EXPECT_EQ(uproxy.pending_count(), 0u);
}

}  // namespace
}  // namespace slice
