// Ensemble control plane (src/mgmt): failure detector unit tests, wire
// protocol round trips, and end-to-end detection / failover / rebalance
// scenarios on a full simulated ensemble.
#include <gtest/gtest.h>

#include "src/chaos/invariants.h"
#include "src/mgmt/failure_detector.h"
#include "src/mgmt/mgmt_proto.h"
#include "src/slice/ensemble.h"

namespace slice {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 1) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 53);
  }
  return data;
}

// --- failure detector ---

TEST(FailureDetectorTest, DeclaresDeadAfterTimeout) {
  HeartbeatFailureDetector det({.timeout = FromMillis(500)});
  det.Register(1, 0);
  det.Register(2, 0);
  det.Touch(1, FromMillis(400));
  EXPECT_TRUE(det.Sweep(FromMillis(450)).empty());
  std::vector<uint64_t> died = det.Sweep(FromMillis(600));
  ASSERT_EQ(died.size(), 1u);  // node 2 silent since t=0; node 1 heard at 400
  EXPECT_EQ(died[0], 2u);
  EXPECT_FALSE(det.alive(2));
  EXPECT_TRUE(det.alive(1));
  // A sweep never re-declares an already-dead node.
  EXPECT_TRUE(det.Sweep(FromMillis(5000)).size() == 1u);  // now node 1 too
  EXPECT_EQ(det.dead_count(), 2u);
}

TEST(FailureDetectorTest, TouchReportsRejoin) {
  HeartbeatFailureDetector det({.timeout = FromMillis(500)});
  det.Register(7, 0);
  EXPECT_FALSE(det.Touch(7, FromMillis(100)));  // still alive: not a rejoin
  ASSERT_EQ(det.Sweep(FromMillis(700)).size(), 1u);
  EXPECT_TRUE(det.Touch(7, FromMillis(800)));  // beat from a dead node
  EXPECT_TRUE(det.alive(7));
  EXPECT_FALSE(det.Touch(7, FromMillis(850)));
}

TEST(FailureDetectorTest, SweepReturnsDeterministicAscendingIds) {
  HeartbeatFailureDetector det({.timeout = FromMillis(100)});
  det.Register(NodeId(NodeClass::kDir, 1), 0);
  det.Register(NodeId(NodeClass::kStorage, 3), 0);
  det.Register(NodeId(NodeClass::kStorage, 0), 0);
  std::vector<uint64_t> died = det.Sweep(FromMillis(200));
  ASSERT_EQ(died.size(), 3u);
  EXPECT_EQ(died[0], NodeId(NodeClass::kStorage, 0));
  EXPECT_EQ(died[1], NodeId(NodeClass::kStorage, 3));
  EXPECT_EQ(died[2], NodeId(NodeClass::kDir, 1));
}

// --- wire protocol ---

TEST(MgmtProtoTest, HeartbeatRoundTrip) {
  HeartbeatArgs args;
  args.node_class = NodeClass::kSfs;
  args.index = 9;
  args.known_epoch = 42;
  XdrEncoder enc;
  args.Encode(enc);
  XdrDecoder dec(enc.bytes());
  Result<HeartbeatArgs> back = HeartbeatArgs::Decode(dec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->node_class, NodeClass::kSfs);
  EXPECT_EQ(back->index, 9u);
  EXPECT_EQ(back->known_epoch, 42u);
}

TEST(MgmtProtoTest, TableSetRoundTrip) {
  MgmtTableSet tables;
  tables.epoch = 17;
  tables.dir_servers = {{0x0a000100, kNfsPort}, {0x0a000101, kNfsPort}};
  tables.dir_slots = {0, 1, 0, 0};
  tables.dir_alive = {1, 0};
  tables.sfs_servers = {{0x0a000200, kNfsPort}};
  tables.sfs_slots = {0, 0};
  tables.sfs_alive = {1};
  tables.storage_alive = {1, 1, 0, 1};
  XdrEncoder enc;
  tables.Encode(enc);
  XdrDecoder dec(enc.bytes());
  Result<MgmtTableSet> back = MgmtTableSet::Decode(dec);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->epoch, 17u);
  EXPECT_EQ(back->dir_servers.size(), 2u);
  EXPECT_EQ(back->dir_servers[1].addr, 0x0a000101u);
  EXPECT_EQ(back->dir_slots, (std::vector<uint32_t>{0, 1, 0, 0}));
  EXPECT_EQ(back->dir_alive, (std::vector<uint8_t>{1, 0}));
  EXPECT_EQ(back->storage_alive, (std::vector<uint8_t>{1, 1, 0, 1}));
}

TEST(MgmtProtoTest, ControlMessagesCarryMagicAndEpoch) {
  MgmtTableSet tables;
  tables.epoch = 5;
  tables.dir_servers = {{1, 1}};
  tables.dir_slots = {0};
  Bytes push = EncodeTablePush(tables);
  XdrDecoder push_dec(push);
  EXPECT_EQ(*push_dec.GetUint32(), kTablePushMagic);
  ASSERT_TRUE(MgmtTableSet::Decode(push_dec).ok());

  Bytes notice = EncodeMisdirectNotice(9);
  XdrDecoder notice_dec(notice);
  EXPECT_EQ(*notice_dec.GetUint32(), kMisdirectMagic);
  EXPECT_EQ(*notice_dec.GetUint64(), 9u);
}

// --- end-to-end scenarios ---

class MgmtTest : public ::testing::Test {
 protected:
  void Build(EnsembleConfig config) {
    ensemble_ = std::make_unique<Ensemble>(queue_, config);
    client_ = ensemble_->MakeSyncClient(0);
    root_ = ensemble_->root();
  }

  // Advances simulated time so heartbeats flow and sweeps run.
  void RunFor(SimTime dt) { queue_.RunUntil(queue_.now() + dt); }

  // Retries an op through transient kErrJukebox (recovery, adoption,
  // misdirects); the client's own RPC layer already covers lost packets.
  template <typename Fn>
  auto RetryJukebox(Fn&& op) {
    for (int attempt = 0;; ++attempt) {
      auto res = op();
      if (res.status != Nfsstat3::kErrJukebox || attempt >= 50) {
        return res;
      }
      RunFor(FromMillis(10));
    }
  }

  EventQueue queue_;
  std::unique_ptr<Ensemble> ensemble_;
  std::unique_ptr<SyncNfsClient> client_;
  FileHandle root_;
};

TEST_F(MgmtTest, ManagerDetectsFailureAndRejoin) {
  EnsembleConfig config;
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 1;
  Build(config);
  EnsembleManager& mgr = *ensemble_->manager();

  RunFor(FromMillis(200));
  EXPECT_EQ(mgr.current_epoch(), 1u);
  EXPECT_GT(mgr.heartbeats_received(), 0u);
  EXPECT_TRUE(mgr.NodeAlive(NodeClass::kStorage, 2));

  ensemble_->storage_node(2).Fail();
  RunFor(FromMillis(800));
  EXPECT_FALSE(mgr.NodeAlive(NodeClass::kStorage, 2));
  EXPECT_EQ(mgr.current_epoch(), 2u);
  EXPECT_EQ(mgr.reconfigurations(), 1u);
  // The push reached the µproxy: its table epoch follows the manager's.
  EXPECT_EQ(ensemble_->uproxy(0).table_epoch(), 2u);
  EXPECT_FALSE(ensemble_->uproxy(0).StorageAlive(2));
  EXPECT_TRUE(ensemble_->uproxy(0).StorageAlive(1));

  ensemble_->storage_node(2).Restart();
  RunFor(FromMillis(800));
  EXPECT_TRUE(mgr.NodeAlive(NodeClass::kStorage, 2));
  EXPECT_EQ(mgr.current_epoch(), 3u);
  EXPECT_TRUE(ensemble_->uproxy(0).StorageAlive(2));
}

TEST_F(MgmtTest, MirroredWriteSurvivesNodeDeathAndResyncsOnRejoin) {
  EnsembleConfig config;
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 0;
  config.default_replication = 2;
  Build(config);

  CreateRes created = client_->Create(root_, "mirrored").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  const FileHandle fh = *created.object;
  ASSERT_EQ(client_->Write(fh, 0, Pattern(32768, 1), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);

  const uint32_t victim = ensemble_->uproxy(0).StripeSite(fh, 0, 0);
  ensemble_->storage_node(victim).Fail();
  RunFor(FromMillis(800));

  // Reads fail over to the surviving mirror; writes go degraded and are
  // logged with the coordinator against the dead replica.
  ReadRes read = client_->Read(fh, 0, 32768).value();
  EXPECT_EQ(read.status, Nfsstat3::kOk);
  EXPECT_EQ(read.data, Pattern(32768, 1));
  ASSERT_EQ(client_->Write(fh, 0, Pattern(32768, 2), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  queue_.RunUntilIdle();
  EXPECT_GE(ensemble_->coordinator(0).degraded_count(victim), 1u);

  // Rejoin triggers mirror resync from the surviving replica.
  ensemble_->storage_node(victim).Restart();
  RunFor(FromMillis(800));
  queue_.RunUntilIdle();
  EXPECT_EQ(ensemble_->coordinator(0).degraded_count(victim), 0u);
  EXPECT_GE(ensemble_->coordinator(0).repairs_run(), 1u);
  SyncNfsClient direct(ensemble_->client_host(0), queue_,
                       ensemble_->storage_node(victim).endpoint());
  ReadRes healed = direct.Read(fh, 0, 32768).value();
  EXPECT_EQ(healed.status, Nfsstat3::kOk);
  EXPECT_EQ(healed.data, Pattern(32768, 2));
}

TEST_F(MgmtTest, DoubleFailureOfMirroredPairFailsFast) {
  EnsembleConfig config;
  config.num_storage_nodes = 2;
  config.num_small_file_servers = 0;
  config.default_replication = 2;
  Build(config);

  CreateRes created = client_->Create(root_, "doomed").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  const FileHandle fh = *created.object;
  ASSERT_EQ(client_->Write(fh, 0, Pattern(4096), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);

  // With 2 nodes and 2-way mirroring, both replicas of every block are gone.
  ensemble_->storage_node(0).Fail();
  ensemble_->storage_node(1).Fail();
  RunFor(FromMillis(800));
  EXPECT_EQ(ensemble_->manager()->current_epoch(), 2u);  // one sweep, both dead

  // The µproxy fails the ops fast with an I/O error instead of hanging the
  // client in retransmission against dead nodes.
  ReadRes read = client_->Read(fh, 0, 4096).value();
  EXPECT_EQ(read.status, Nfsstat3::kErrIo);
  WriteRes write = client_->Write(fh, 0, Pattern(4096), StableHow::kFileSync).value();
  EXPECT_EQ(write.status, Nfsstat3::kErrIo);
}

TEST_F(MgmtTest, DirFailoverAdoptsSiteAndRebalancesOnRejoin) {
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 1;
  config.name_policy = NamePolicy::kNameHashing;
  Build(config);

  // Spread names across both servers; remember which server owns each.
  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    names.push_back("f" + std::to_string(i));
    ASSERT_EQ(client_->Create(root_, names.back()).value().status, Nfsstat3::kOk);
  }
  ensemble_->dir_server(1).FlushLog();
  queue_.RunUntilIdle();
  ASSERT_GT(ensemble_->dir_server(1).store().entry_count(), 0u);

  ensemble_->dir_server(1).Fail();
  RunFor(FromMillis(800));
  EnsembleManager& mgr = *ensemble_->manager();
  EXPECT_FALSE(mgr.NodeAlive(NodeClass::kDir, 1));
  const uint64_t failover_epoch = mgr.current_epoch();
  EXPECT_GE(failover_epoch, 2u);
  RunFor(FromMillis(200));  // let the adoption replay finish
  EXPECT_TRUE(ensemble_->dir_server(0).adopted_sites().count(1) > 0);

  // Every name resolves with one server down — site 1 is served by its
  // adopter after WAL replay (jukebox while the replay is in flight).
  for (const std::string& name : names) {
    LookupRes found = RetryJukebox([&] { return client_->Lookup(root_, name).value(); });
    EXPECT_EQ(found.status, Nfsstat3::kOk) << name;
  }
  // Mutations during the outage land on the adopter.
  ASSERT_EQ(RetryJukebox([&] { return client_->Create(root_, "during-outage").value(); }).status,
            Nfsstat3::kOk);

  // Rejoin: fresh epoch, state handed back, adopter holds nothing.
  ensemble_->dir_server(1).Restart();
  RunFor(FromMillis(1500));
  EXPECT_TRUE(mgr.NodeAlive(NodeClass::kDir, 1));
  EXPECT_GT(mgr.current_epoch(), failover_epoch);
  EXPECT_TRUE(ensemble_->dir_server(0).adopted_sites().empty());
  EXPECT_FALSE(ensemble_->dir_server(0).adopting());
  for (const std::string& name : names) {
    LookupRes found = RetryJukebox([&] { return client_->Lookup(root_, name).value(); });
    EXPECT_EQ(found.status, Nfsstat3::kOk) << name;
  }
  EXPECT_EQ(RetryJukebox([&] { return client_->Lookup(root_, "during-outage").value(); }).status,
            Nfsstat3::kOk);
}

TEST_F(MgmtTest, StaleEpochMisdirectTriggersTableReload) {
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 1;
  config.name_policy = NamePolicy::kNameHashing;
  Build(config);

  for (int i = 0; i < 12; ++i) {
    ASSERT_EQ(client_->Create(root_, "s" + std::to_string(i)).value().status, Nfsstat3::kOk);
  }
  ensemble_->dir_server(1).FlushLog();
  queue_.RunUntilIdle();

  // Fail server 1 and capture the failover tables (site 1 bound to 0), then
  // bring it back so the cluster moves on to a fresher epoch.
  ensemble_->dir_server(1).Fail();
  RunFor(FromMillis(900));
  const MgmtTableSet failover_tables = ensemble_->manager()->tables();
  ensemble_->dir_server(1).Restart();
  RunFor(FromMillis(1500));
  const uint64_t fresh_epoch = ensemble_->manager()->current_epoch();
  ASSERT_GT(fresh_epoch, failover_tables.epoch);
  ASSERT_EQ(ensemble_->uproxy(0).table_epoch(), fresh_epoch);

  // Simulate a µproxy that missed the rejoin push: force the stale failover
  // tables back in. Its requests for server-1 names now land on server 0,
  // which answers jukebox plus a misdirect notice; the µproxy fetches the
  // fresh tables from the manager and the retried op succeeds.
  ASSERT_TRUE(ensemble_->uproxy(0).InstallTables(failover_tables, /*force=*/true));
  ASSERT_EQ(ensemble_->uproxy(0).table_epoch(), failover_tables.epoch);
  const uint64_t misdirects_before = ensemble_->dir_server(0).misdirects_answered();

  for (int i = 0; i < 12; ++i) {
    LookupRes found =
        RetryJukebox([&] { return client_->Lookup(root_, "s" + std::to_string(i)).value(); });
    EXPECT_EQ(found.status, Nfsstat3::kOk) << i;
  }
  EXPECT_GT(ensemble_->dir_server(0).misdirects_answered(), misdirects_before);
  EXPECT_EQ(ensemble_->uproxy(0).table_epoch(), fresh_epoch);
  EXPECT_GT(ensemble_->uproxy(0).counters().Get("table_fetches"), 0u);
}

TEST_F(MgmtTest, FlappingDirRejoinMidAdoptionKeepsEpochsSane) {
  // Regression: a node that rejoins while its site is still being adopted
  // must not corrupt the epoch sequence or get its site adopted twice. The
  // restart lands within one sweep of the death declaration, so the
  // adopter's WAL replay and the rejoin race — the deferred-handoff path.
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 1;
  config.name_policy = NamePolicy::kNameHashing;
  config.eventlog = {.enabled = true};
  Build(config);

  std::vector<std::string> names;
  for (int i = 0; i < 12; ++i) {
    names.push_back("flap" + std::to_string(i));
    ASSERT_EQ(client_->Create(root_, names.back()).value().status, Nfsstat3::kOk);
  }
  ensemble_->dir_server(1).FlushLog();
  queue_.RunUntilIdle();

  EnsembleManager& mgr = *ensemble_->manager();
  uint64_t last_epoch = mgr.current_epoch();
  for (int cycle = 0; cycle < 2; ++cycle) {
    ensemble_->dir_server(1).Fail();
    // Restart as soon as the manager declares the node dead: the adoption
    // kicked off by that very sweep is still replaying the WAL.
    for (int i = 0; i < 400 && mgr.NodeAlive(NodeClass::kDir, 1); ++i) {
      RunFor(FromMillis(5));
    }
    ASSERT_FALSE(mgr.NodeAlive(NodeClass::kDir, 1)) << "cycle " << cycle;
    const uint64_t dead_epoch = mgr.current_epoch();
    EXPECT_GT(dead_epoch, last_epoch) << "cycle " << cycle;
    ensemble_->dir_server(1).Restart();

    RunFor(FromMillis(1500));  // rejoin, finish adoption, hand the site back
    EXPECT_TRUE(mgr.NodeAlive(NodeClass::kDir, 1)) << "cycle " << cycle;
    EXPECT_GT(mgr.current_epoch(), dead_epoch) << "cycle " << cycle;
    EXPECT_TRUE(ensemble_->dir_server(0).adopted_sites().empty()) << "cycle " << cycle;
    EXPECT_FALSE(ensemble_->dir_server(0).adopting()) << "cycle " << cycle;
    last_epoch = mgr.current_epoch();

    // The namespace survived the flap intact.
    for (const std::string& name : names) {
      LookupRes found = RetryJukebox([&] { return client_->Lookup(root_, name).value(); });
      EXPECT_EQ(found.status, Nfsstat3::kOk) << name << " cycle " << cycle;
    }
  }

  // Replay the event log through the chaos invariant checker: epochs
  // monotone, no double adoption, every failure episode closed.
  chaos::InvariantBounds bounds;
  bounds.expect_adoption = true;
  chaos::InvariantReport report =
      chaos::CheckInvariants(ensemble_->eventlog()->Collect(), bounds);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_GE(report.epoch_bumps, 4u);  // two deaths + two rejoins
}

TEST_F(MgmtTest, DisabledMgmtRunsNoManager) {
  EnsembleConfig config;
  config.mgmt.enabled = false;
  Build(config);
  EXPECT_EQ(ensemble_->manager(), nullptr);
  ASSERT_EQ(client_->Create(root_, "plain").value().status, Nfsstat3::kOk);
  RunFor(FromMillis(500));  // no heartbeat traffic to run; just works
  EXPECT_EQ(client_->Lookup(root_, "plain").value().status, Nfsstat3::kOk);
}

}  // namespace
}  // namespace slice
