// Steady-state allocation test for the µproxy forwarding fast path.
//
// The zero-allocation claim (DESIGN.md §7) is structural: pooled packet
// buffers, the flat pending table, the cached decode view and drain-based
// delivery mean that once every freelist and hash table has warmed up, a
// forwarded request and its reply touch the heap zero times. This test pins
// that down with a process-wide operator-new counter: warm up, then assert
// the delta over a measurement window is exactly zero.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "src/core/uproxy.h"
#include "src/net/packet_pool.h"
#include "src/nfs/nfs_xdr.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/rpc/rpc_message.h"
#include "src/storage/storage_node.h"

// Counts every operator-new in the process; the test measures deltas.
static uint64_t g_news = 0;

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slice {
namespace {

constexpr NetAddr kClientAddr = 0x0a000001;
constexpr NetAddr kDirAddr = 0x0a000010;
constexpr NetAddr kStorageAddr = 0x0a000020;
constexpr NetPort kNfsPort = 2049;
constexpr NetPort kClientPort = 5001;

TEST(FastPathAllocTest, SteadyStateForwardAndReplyDoNotAllocate) {
  ASSERT_TRUE(PacketPool::Enabled());

  EventQueue queue;
  Network net(queue, NetworkParams{});
  Host client_host(net, kClientAddr);

  UproxyConfig config;
  config.virtual_server = Endpoint{0x0a0000fe, kNfsPort};
  config.dir_servers = {Endpoint{kDirAddr, kNfsPort}};
  config.storage_nodes = {Endpoint{kStorageAddr, kNfsPort}};
  Uproxy uproxy(net, queue, client_host, config);

  // Tenant plane ON: the zero-allocation claim must hold with per-tenant
  // accounting live (preallocated hub instruments + the cached LUT, no map
  // lookups). The request below carries tenant 1 in its AUTH_SYS uid.
  obs::Metrics metrics;
  metrics.ConfigureTenants(2, FromMillis(50));
  uproxy.set_metrics(&metrics);

  uint64_t replies = 0;
  client_host.Bind(kClientPort, [&replies](Packet&&) { ++replies; });

  // Preconstructed wire images: a bulk READ call and its minimal reply
  // (post-op attributes absent, so the attribute patcher exits early).
  RpcCall call;
  call.xid = 99;
  call.cred.uid = 1;  // tenant tag
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kRead);
  {
    XdrEncoder args;
    ReadArgs rargs;
    rargs.file = FileHandle::Make(1, MakeFileid(0, 42), 1, FileType3::kReg, 1, 0);
    rargs.offset = 1 << 20;  // above the small-file threshold: bulk route
    rargs.count = 4096;
    rargs.Encode(args);
    call.args = args.Take();
  }
  const Bytes req_wire = call.Encode();

  RpcReply reply;
  reply.xid = 99;
  {
    XdrEncoder result;
    ReadRes res;
    res.status = Nfsstat3::kOk;
    res.count = 4096;
    res.eof = false;
    res.Encode(result);
    reply.result = result.Take();
  }
  const Bytes rep_wire = reply.Encode();

  const Endpoint client_ep{kClientAddr, kClientPort};
  const Endpoint storage_ep{kStorageAddr, kNfsPort};

  auto round_trip = [&]() {
    // Outbound: intercept, decode (view cached on the packet), route,
    // rewrite, inject. The forwarded packet dies at the (absent) storage
    // host — its buffer returns to the pool.
    uproxy.HandleOutbound(Packet::MakeUdp(client_ep, config.virtual_server, req_wire));
    // Inbound: match the pending record, rewrite the source back to the
    // virtual server, deliver to the client socket.
    uproxy.HandleInbound(Packet::MakeUdp(storage_ep, client_ep, rep_wire));
    queue.RunUntilIdle();
  };

  // Warm-up: grows the event heap, the flight queue, the pending table, the
  // op-counter map and the packet pool freelist to steady-state capacity.
  for (int i = 0; i < 64; ++i) {
    round_trip();
  }
  ASSERT_EQ(replies, 64u);

  const uint64_t pool_hits_before = PacketPool::Default().recycle_hits();
  const uint64_t news_before = g_news;
  for (int i = 0; i < 256; ++i) {
    round_trip();
  }
  const uint64_t news_after = g_news;
  const uint64_t pool_hits_after = PacketPool::Default().recycle_hits();

  EXPECT_EQ(news_after - news_before, 0u)
      << "steady-state forwarding allocated " << (news_after - news_before)
      << " times over 256 round trips";
  EXPECT_EQ(replies, 64u + 256u);
  // Sanity: the measurement window really ran on recycled pool buffers.
  EXPECT_GE(pool_hits_after - pool_hits_before, 2u * 256u);
  EXPECT_EQ(uproxy.pending_count(), 0u);
  // And the tenant plane really was live: every round trip was attributed.
  const obs::TenantInstruments* t1 = metrics.Tenant(1);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->ops[static_cast<size_t>(obs::TenantOpClass::kRead)].Value(), 64u + 256u);
}

// The same steady-state window with the profiler ON: every per-stage scope
// (outbound/decode/route/soft-state/rewrite/metrics/inbound/attr-patch) and
// every ledger charge runs on the fast path, and none of it may touch the
// heap — the scope engine is a fixed node pool + fixed stack, and the ledger
// pointer is cached at set_profiler time.
TEST(FastPathAllocTest, SteadyStateWithProfilerEnabledDoesNotAllocate) {
  ASSERT_TRUE(PacketPool::Enabled());

  EventQueue queue;
  Network net(queue, NetworkParams{});
  Host client_host(net, kClientAddr);

  UproxyConfig config;
  config.virtual_server = Endpoint{0x0a0000fe, kNfsPort};
  config.dir_servers = {Endpoint{kDirAddr, kNfsPort}};
  config.storage_nodes = {Endpoint{kStorageAddr, kNfsPort}};
  Uproxy uproxy(net, queue, client_host, config);

  // Profiler live: ledger pointer cached now, scope tree grown during
  // warm-up (FindOrAddChild only ever indexes into the fixed pool).
  obs::Profiler profiler(obs::ProfilerParams{.enabled = true});
  net.set_profiler(&profiler);
  uproxy.set_profiler(&profiler);

  uint64_t replies = 0;
  client_host.Bind(kClientPort, [&replies](Packet&&) { ++replies; });

  RpcCall call;
  call.xid = 99;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kRead);
  {
    XdrEncoder args;
    ReadArgs rargs;
    rargs.file = FileHandle::Make(1, MakeFileid(0, 42), 1, FileType3::kReg, 1, 0);
    rargs.offset = 1 << 20;
    rargs.count = 4096;
    rargs.Encode(args);
    call.args = args.Take();
  }
  const Bytes req_wire = call.Encode();

  RpcReply reply;
  reply.xid = 99;
  {
    XdrEncoder result;
    ReadRes res;
    res.status = Nfsstat3::kOk;
    res.count = 4096;
    res.eof = false;
    res.Encode(result);
    reply.result = result.Take();
  }
  const Bytes rep_wire = reply.Encode();

  const Endpoint client_ep{kClientAddr, kClientPort};
  const Endpoint storage_ep{kStorageAddr, kNfsPort};
  auto round_trip = [&]() {
    uproxy.HandleOutbound(Packet::MakeUdp(client_ep, config.virtual_server, req_wire));
    uproxy.HandleInbound(Packet::MakeUdp(storage_ep, client_ep, rep_wire));
    queue.RunUntilIdle();
  };

  for (int i = 0; i < 64; ++i) {
    round_trip();
  }
  ASSERT_EQ(replies, 64u);

  const uint64_t news_before = g_news;
  for (int i = 0; i < 256; ++i) {
    round_trip();
  }
  const uint64_t news_after = g_news;

  EXPECT_EQ(news_after - news_before, 0u)
      << "profiled steady-state forwarding allocated " << (news_after - news_before)
      << " times over 256 round trips";
  EXPECT_EQ(replies, 64u + 256u);
  EXPECT_EQ(profiler.dropped_scopes(), 0u);
  // The profiler really was live on every packet in the window.
  EXPECT_GE(profiler.ScopeCount(obs::ProfScope::kUproxyOutbound), 64u + 256u);
  EXPECT_GE(profiler.ScopeCount(obs::ProfScope::kUproxyInbound), 64u + 256u);
  // And the client host's ledger accumulated proxy CPU attribution.
  const uint64_t* ledger = profiler.LedgerFor(kClientAddr);
  EXPECT_GT(ledger[static_cast<size_t>(obs::LedgerCat::kCpu)], 0u);
}

// The full request path against a REAL storage node: µproxy outbound decode/
// route/rewrite → network delivery → RpcServerNode view decode + DRC →
// StorageNode cache-hit READ into reusable scratch → span-spliced reply
// encode → DRC reply ring → deferred send flight → µproxy inbound pairing +
// attribute patch → client socket. Once the DRC ring, flat tables, caches,
// scratch encoders and pool freelists have warmed, a served request must
// touch the heap zero times end to end.
TEST(FastPathAllocTest, FullPathThroughStorageNodeDoesNotAllocate) {
  ASSERT_TRUE(PacketPool::Enabled());

  EventQueue queue;
  Network net(queue, NetworkParams{});
  Host client_host(net, kClientAddr);

  UproxyConfig config;
  config.virtual_server = Endpoint{0x0a0000fe, kNfsPort};
  config.dir_servers = {Endpoint{kDirAddr, kNfsPort}};
  config.storage_nodes = {Endpoint{kStorageAddr, kNfsPort}};
  Uproxy uproxy(net, queue, client_host, config);

  StorageNode storage(net, queue, kStorageAddr, StorageNodeParams{});

  // Back the READ with real object bytes (stable image, physical blocks).
  const FileHandle fh = FileHandle::Make(1, MakeFileid(0, 42), 1, FileType3::kReg, 1, 0);
  const ObjectId object = MixU64(fh.fileid() ^ (static_cast<uint64_t>(fh.volume()) << 48));
  constexpr uint64_t kOffset = 1 << 20;  // above the small-file bulk threshold
  constexpr uint32_t kCount = 4096;
  {
    Bytes payload(64 << 10, 0x5a);
    ASSERT_TRUE(storage.mutable_store().Write(object, kOffset, ByteSpan(payload), true).ok());
  }

  uint64_t replies = 0;
  client_host.Bind(kClientPort, [&replies](Packet&&) { ++replies; });

  RpcCall call;
  call.xid = 0;  // patched per request: a fixed xid would hit the DRC
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kRead);
  {
    XdrEncoder args;
    ReadArgs rargs;
    rargs.file = fh;
    rargs.offset = kOffset;
    rargs.count = kCount;
    rargs.Encode(args);
    call.args = args.Take();
  }
  Bytes req_wire = call.Encode();

  const Endpoint client_ep{kClientAddr, kClientPort};
  uint32_t xid = 0;
  auto round_trip = [&]() {
    ++xid;
    req_wire[0] = static_cast<uint8_t>(xid >> 24);
    req_wire[1] = static_cast<uint8_t>(xid >> 16);
    req_wire[2] = static_cast<uint8_t>(xid >> 8);
    req_wire[3] = static_cast<uint8_t>(xid);
    uproxy.HandleOutbound(Packet::MakeUdp(client_ep, config.virtual_server, req_wire));
    queue.RunUntilIdle();
  };

  // Warm-up must run the DRC's reply ring (4096 entries) all the way to its
  // FIFO steady state so the flat index stops growing and every ring slot's
  // wire buffer has its capacity; it also fills the block cache (the first
  // trip's misses go to the simulated disks) and the pool freelists.
  constexpr int kWarmup = 4096 + 128;
  for (int i = 0; i < kWarmup; ++i) {
    round_trip();
  }
  ASSERT_EQ(replies, static_cast<uint64_t>(kWarmup));

  const uint64_t pool_hits_before = PacketPool::Default().recycle_hits();
  const uint64_t news_before = g_news;
  for (int i = 0; i < 256; ++i) {
    round_trip();
  }
  const uint64_t news_after = g_news;

  EXPECT_EQ(news_after - news_before, 0u)
      << "steady-state full path (uproxy -> rpc dispatch -> storage cache hit -> "
         "reply encode -> uproxy inbound) allocated "
      << (news_after - news_before) << " times over 256 served requests";
  EXPECT_EQ(replies, static_cast<uint64_t>(kWarmup) + 256u);
  EXPECT_EQ(storage.requests_served(), static_cast<uint64_t>(kWarmup) + 256u);
  // Each trip recycles at least the request and reply packet buffers.
  EXPECT_GE(PacketPool::Default().recycle_hits() - pool_hits_before, 2u * 256u);
  EXPECT_EQ(uproxy.pending_count(), 0u);
}

// With pooling disabled (the determinism A/B hook) the same traffic must
// still be correct — it just pays the allocations the pool elides.
TEST(FastPathAllocTest, DisabledPoolStillForwardsCorrectly) {
  PacketPool::SetEnabled(false);
  EventQueue queue;
  Network net(queue, NetworkParams{});
  Host client_host(net, kClientAddr);

  UproxyConfig config;
  config.virtual_server = Endpoint{0x0a0000fe, kNfsPort};
  config.dir_servers = {Endpoint{kDirAddr, kNfsPort}};
  config.storage_nodes = {Endpoint{kStorageAddr, kNfsPort}};
  Uproxy uproxy(net, queue, client_host, config);

  uint64_t replies = 0;
  client_host.Bind(kClientPort, [&replies](Packet&&) { ++replies; });

  RpcCall call;
  call.xid = 7;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kRead);
  XdrEncoder args;
  ReadArgs rargs;
  rargs.file = FileHandle::Make(1, MakeFileid(0, 7), 1, FileType3::kReg, 1, 0);
  rargs.offset = 1 << 20;
  rargs.count = 512;
  rargs.Encode(args);
  call.args = args.Take();

  RpcReply reply;
  reply.xid = 7;
  XdrEncoder result;
  ReadRes res;
  res.status = Nfsstat3::kOk;
  res.Encode(result);
  reply.result = result.Take();

  uproxy.HandleOutbound(
      Packet::MakeUdp(Endpoint{kClientAddr, kClientPort}, config.virtual_server, call.Encode()));
  uproxy.HandleInbound(
      Packet::MakeUdp(Endpoint{kStorageAddr, kNfsPort}, Endpoint{kClientAddr, kClientPort},
                      reply.Encode()));
  queue.RunUntilIdle();
  EXPECT_EQ(replies, 1u);
  EXPECT_EQ(uproxy.pending_count(), 0u);
  PacketPool::SetEnabled(true);
}

}  // namespace
}  // namespace slice
