// Unit tests for the XDR (RFC 4506) codec.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/xdr/xdr.h"

namespace slice {
namespace {

TEST(XdrTest, ScalarRoundTrip) {
  XdrEncoder enc;
  enc.PutUint32(0xdeadbeef);
  enc.PutInt32(-5);
  enc.PutUint64(0x0123456789abcdefull);
  enc.PutInt64(-123456789012345ll);
  enc.PutBool(true);
  enc.PutBool(false);

  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetUint32().value(), 0xdeadbeefu);
  EXPECT_EQ(dec.GetInt32().value(), -5);
  EXPECT_EQ(dec.GetUint64().value(), 0x0123456789abcdefull);
  EXPECT_EQ(dec.GetInt64().value(), -123456789012345ll);
  EXPECT_TRUE(dec.GetBool().value());
  EXPECT_FALSE(dec.GetBool().value());
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrTest, BigEndianWire) {
  XdrEncoder enc;
  enc.PutUint32(1);
  ASSERT_EQ(enc.size(), 4u);
  EXPECT_EQ(enc.bytes()[0], 0);
  EXPECT_EQ(enc.bytes()[3], 1);
}

TEST(XdrTest, StringPadding) {
  XdrEncoder enc;
  enc.PutString("abcde");  // 4 len + 5 data + 3 pad = 12
  EXPECT_EQ(enc.size(), 12u);
  EXPECT_EQ(enc.bytes()[4 + 5], 0);

  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetString().value(), "abcde");
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrTest, EmptyString) {
  XdrEncoder enc;
  enc.PutString("");
  EXPECT_EQ(enc.size(), 4u);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetString().value(), "");
}

TEST(XdrTest, OpaqueFixedAlignment) {
  XdrEncoder enc;
  const uint8_t data[] = {1, 2, 3};
  enc.PutOpaqueFixed(ByteSpan(data, 3));
  EXPECT_EQ(enc.size(), 4u);
  XdrDecoder dec(enc.bytes());
  Bytes out = dec.GetOpaqueFixed(3).value();
  EXPECT_EQ(out, Bytes({1, 2, 3}));
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrTest, OpaqueVarRoundTrip) {
  Rng rng(3);
  for (size_t len : {0u, 1u, 3u, 4u, 5u, 1000u}) {
    Bytes data(len);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    XdrEncoder enc;
    enc.PutOpaqueVar(data);
    EXPECT_EQ(enc.size() % 4, 0u);
    XdrDecoder dec(enc.bytes());
    EXPECT_EQ(dec.GetOpaqueVar().value(), data);
  }
}

TEST(XdrTest, ShortBufferIsCorrupt) {
  XdrEncoder enc;
  enc.PutUint32(7);
  XdrDecoder dec(enc.bytes());
  EXPECT_TRUE(dec.GetUint64().status().code() == StatusCode::kCorrupt);
}

TEST(XdrTest, OversizeOpaqueRejected) {
  XdrEncoder enc;
  enc.PutUint32(1 << 30);  // absurd length word
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetOpaqueVar().status().code(), StatusCode::kCorrupt);
}

TEST(XdrTest, BadBoolRejected) {
  XdrEncoder enc;
  enc.PutUint32(2);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.GetBool().status().code(), StatusCode::kCorrupt);
}

TEST(XdrTest, RawViewZeroCopy) {
  XdrEncoder enc;
  enc.PutUint32(0x11223344);
  enc.PutUint32(0x55667788);
  XdrDecoder dec(enc.bytes());
  ByteSpan view = dec.GetRawView(8).value();
  EXPECT_EQ(view.size(), 8u);
  EXPECT_EQ(view.data(), enc.bytes().data());
  EXPECT_TRUE(dec.exhausted());
}

TEST(XdrTest, PositionTracking) {
  XdrEncoder enc;
  enc.PutUint32(1);
  enc.PutUint64(2);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(dec.position(), 0u);
  ASSERT_TRUE(dec.GetUint32().ok());
  EXPECT_EQ(dec.position(), 4u);
  EXPECT_EQ(dec.remaining(), 8u);
}

TEST(XdrTest, PadHelper) {
  EXPECT_EQ(XdrPad(0), 0u);
  EXPECT_EQ(XdrPad(1), 3u);
  EXPECT_EQ(XdrPad(2), 2u);
  EXPECT_EQ(XdrPad(3), 1u);
  EXPECT_EQ(XdrPad(4), 0u);
}

// Property test: arbitrary interleavings of typed values round-trip.
TEST(XdrTest, PropertyRandomRoundTrip) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    XdrEncoder enc;
    std::vector<int> kinds;
    std::vector<uint64_t> ints;
    std::vector<std::string> strs;
    const int n = 1 + static_cast<int>(rng.NextBelow(20));
    for (int i = 0; i < n; ++i) {
      const int kind = static_cast<int>(rng.NextBelow(3));
      kinds.push_back(kind);
      if (kind == 0) {
        const uint32_t v = static_cast<uint32_t>(rng.NextU64());
        ints.push_back(v);
        enc.PutUint32(v);
      } else if (kind == 1) {
        const uint64_t v = rng.NextU64();
        ints.push_back(v);
        enc.PutUint64(v);
      } else {
        std::string s(rng.NextBelow(40), 'q');
        strs.push_back(s);
        enc.PutString(s);
      }
    }
    XdrDecoder dec(enc.bytes());
    size_t ii = 0;
    size_t si = 0;
    for (int kind : kinds) {
      if (kind == 0) {
        EXPECT_EQ(dec.GetUint32().value(), static_cast<uint32_t>(ints[ii++]));
      } else if (kind == 1) {
        EXPECT_EQ(dec.GetUint64().value(), ints[ii++]);
      } else {
        EXPECT_EQ(dec.GetString().value(), strs[si++]);
      }
    }
    EXPECT_TRUE(dec.exhausted());
  }
}

}  // namespace
}  // namespace slice
