// Trace-replay regression harness: the simulation is deterministic, so the
// exported trace of a fixed-seed workload is byte-stable — its content hash
// must be identical run to run, with and without fault injection. Any
// behaviour drift (an extra retransmission, a different route, a changed
// failover interleaving) shows up as a hash diff before it shows up as a
// user-visible bug.
//
// The fault-injected run also writes its chrome-trace JSON next to the test
// binary (e2e_failover_trace.json) so CI can attach it to failed builds.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/net/packet_pool.h"
#include "src/slice/ensemble.h"

namespace slice {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 1) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 53);
  }
  return data;
}

struct RunResult {
  uint64_t hash = 0;
  size_t spans = 0;
  std::string json;
};

// One fixed mixed workload: names, small-file I/O, bulk mirrored I/O,
// commits, reads, removes. `loss_rate` injects packet loss for the whole
// run; `kill_storage` additionally crashes a storage node mid-workload and
// lets the control plane fail over around it.
RunResult RunTracedWorkload(double loss_rate, bool kill_storage) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_small_file_servers = 2;
  config.num_storage_nodes = 3;
  config.num_coordinators = 1;
  config.default_replication = 2;  // mirrored: the workload survives a kill
  config.loss_rate = loss_rate;
  config.mgmt.enabled = kill_storage;  // failover path only when killing
  config.trace.enabled = true;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);
  const FileHandle root = ensemble.root();

  // kErrJukebox is the control plane's "retry later", not a failure.
  auto retry = [&](auto op) {
    for (int attempt = 0;; ++attempt) {
      auto res = op();
      if (res.status != Nfsstat3::kErrJukebox || attempt >= 100) {
        return res;
      }
      queue.RunUntil(queue.now() + FromMillis(10));
    }
  };

  std::vector<FileHandle> files;
  for (int i = 0; i < 6; ++i) {
    CreateRes created =
        retry([&] { return client->Create(root, "f" + std::to_string(i)).value(); });
    EXPECT_EQ(created.status, Nfsstat3::kOk);
    files.push_back(*created.object);
    // Small write -> small-file server; bulk write -> mirrored stripes.
    EXPECT_EQ(retry([&] {
                return client
                    ->Write(files[i], 0, Pattern(2048, static_cast<uint8_t>(i)),
                            StableHow::kUnstable)
                    .value();
              }).status,
              Nfsstat3::kOk);
    EXPECT_EQ(retry([&] {
                return client
                    ->Write(files[i], 70000, Pattern(32768, static_cast<uint8_t>(i + 1)),
                            StableHow::kFileSync)
                    .value();
              }).status,
              Nfsstat3::kOk);
    if (kill_storage && i == 2) {
      // Mid-workload storage crash; the manager detects it by heartbeat
      // timeout and installs a failover table in every µproxy.
      ensemble.storage_node(2).Fail();
      queue.RunUntil(queue.now() + FromMillis(800));
    }
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(retry([&] { return client->Commit(files[i]).value(); }).status, Nfsstat3::kOk);
    EXPECT_EQ(retry([&] { return client->Read(files[i], 0, 2048).value(); }).status,
              Nfsstat3::kOk);
    EXPECT_EQ(retry([&] { return client->Read(files[i], 70000, 32768).value(); }).status,
              Nfsstat3::kOk);
    EXPECT_EQ(retry([&] { return client->Lookup(root, "f" + std::to_string(i)).value(); })
                  .status,
              Nfsstat3::kOk);
  }
  EXPECT_EQ(retry([&] { return client->Remove(root, "f5").value(); }).status, Nfsstat3::kOk);
  queue.RunUntilIdle();

  RunResult result;
  result.hash = ensemble.TraceHash();
  result.spans = ensemble.CollectSpans().size();
  result.json = ensemble.ExportTraceJson();
  return result;
}

TEST(TraceDeterminismTest, LossFreeSameSeedSameHash) {
  const RunResult a = RunTracedWorkload(/*loss_rate=*/0.0, /*kill_storage=*/false);
  const RunResult b = RunTracedWorkload(/*loss_rate=*/0.0, /*kill_storage=*/false);
  EXPECT_GT(a.spans, 100u) << "workload actually produced a trace";
  EXPECT_EQ(a.spans, b.spans);
  EXPECT_EQ(a.hash, b.hash);
  // The hash covers the full export: identical hash <=> identical JSON.
  EXPECT_EQ(a.json, b.json);
}

TEST(TraceDeterminismTest, FivePercentLossSameSeedSameHash) {
  // Retransmissions, duplicate-cache replays, and drop markers all land in
  // the trace — and all of them are driven by the seeded loss RNG, so the
  // trace is still byte-stable.
  const RunResult a = RunTracedWorkload(/*loss_rate=*/0.05, /*kill_storage=*/false);
  const RunResult b = RunTracedWorkload(/*loss_rate=*/0.05, /*kill_storage=*/false);
  EXPECT_GT(a.spans, 100u);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.json, b.json);
  // Loss changes behaviour, so it must change the trace.
  EXPECT_NE(a.hash, RunTracedWorkload(0.0, false).hash);
}

TEST(TraceDeterminismTest, PacketPoolingDoesNotChangeTheTrace) {
  // Buffer pooling is a pure allocation-strategy change: recycling a packet
  // buffer instead of mallocing one must not move a single event in time or
  // alter a single traced byte. Run the identical seeded workload with the
  // pool disabled (pre-pooling allocation behaviour) and enabled, and require
  // byte-identical exports.
  PacketPool::SetEnabled(false);
  const RunResult unpooled = RunTracedWorkload(/*loss_rate=*/0.05, /*kill_storage=*/false);
  PacketPool::SetEnabled(true);
  const RunResult pooled = RunTracedWorkload(/*loss_rate=*/0.05, /*kill_storage=*/false);
  EXPECT_GT(unpooled.spans, 100u);
  EXPECT_EQ(unpooled.spans, pooled.spans);
  EXPECT_EQ(unpooled.hash, pooled.hash);
  EXPECT_EQ(unpooled.json, pooled.json);
}

TEST(TraceDeterminismTest, StorageKillUnderLossSameSeedSameHash) {
  const RunResult a = RunTracedWorkload(/*loss_rate=*/0.05, /*kill_storage=*/true);
  const RunResult b = RunTracedWorkload(/*loss_rate=*/0.05, /*kill_storage=*/true);
  EXPECT_GT(a.spans, 100u);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.json, b.json);

  // Leave the failover trace on disk for CI to upload as an artifact.
  std::ofstream out("e2e_failover_trace.json", std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out << a.json;
  out.close();
  ASSERT_TRUE(out.good());
}

}  // namespace
}  // namespace slice
