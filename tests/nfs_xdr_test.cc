// Unit tests for NFS types and XDR codecs: file handle layout and
// capabilities, fattr3 wire size, round-trips for every procedure's args and
// results, and error-path decoding.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/nfs/nfs_xdr.h"

namespace slice {
namespace {

constexpr uint64_t kSecret = 0x5ec7e7;

FileHandle TestFh(uint64_t fileid = 42, FileType3 type = FileType3::kReg,
                  uint8_t replication = 1) {
  return FileHandle::Make(7, fileid, 3, type, replication, kSecret);
}

Fattr3 TestAttr() {
  Fattr3 attr;
  attr.type = FileType3::kReg;
  attr.mode = 0644;
  attr.nlink = 2;
  attr.uid = 1000;
  attr.gid = 100;
  attr.size = 123456;
  attr.used = 131072;
  attr.fsid = 7;
  attr.fileid = 42;
  attr.atime = {100, 1};
  attr.mtime = {200, 2};
  attr.ctime = {300, 3};
  return attr;
}

TEST(FileHandleTest, FieldLayout) {
  FileHandle fh = FileHandle::Make(9, 0xabcdef0123ull, 5, FileType3::kDir, 2, kSecret);
  EXPECT_EQ(fh.volume(), 9u);
  EXPECT_EQ(fh.fileid(), 0xabcdef0123ull);
  EXPECT_EQ(fh.generation(), 5u);
  EXPECT_EQ(fh.type(), FileType3::kDir);
  EXPECT_TRUE(fh.IsDir());
  EXPECT_EQ(fh.replication(), 2);
}

TEST(FileHandleTest, CapabilityVerifies) {
  FileHandle fh = TestFh();
  EXPECT_TRUE(fh.VerifyCapability(kSecret));
  EXPECT_FALSE(fh.VerifyCapability(kSecret + 1));
}

TEST(FileHandleTest, TamperedHandleFailsCapability) {
  FileHandle fh = TestFh(100);
  Bytes raw(fh.bytes().begin(), fh.bytes().end());
  raw[5] ^= 0x01;  // twiddle the fileID
  FileHandle forged = FileHandle::FromBytes(raw);
  EXPECT_FALSE(forged.VerifyCapability(kSecret));
}

TEST(FileHandleTest, ZeroReplicationNormalizedToOne) {
  FileHandle fh = FileHandle::Make(1, 2, 3, FileType3::kReg, 0, kSecret);
  EXPECT_EQ(fh.replication(), 1);
}

TEST(FileHandleTest, EmptyAndEquality) {
  FileHandle fh;
  EXPECT_TRUE(fh.empty());
  EXPECT_FALSE(TestFh().empty());
  EXPECT_EQ(TestFh(), TestFh());
  EXPECT_NE(TestFh(1), TestFh(2));
}

TEST(FileHandleTest, RoundTripsThroughXdr) {
  FileHandle fh = TestFh(77);
  XdrEncoder enc;
  EncodeFileHandle(enc, fh);
  EXPECT_EQ(enc.size(), 4 + FileHandle::kSize);
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(DecodeFileHandle(dec).value(), fh);
}

TEST(FileHandleTest, WrongSizeRejected) {
  XdrEncoder enc;
  Bytes short_handle(16, 0xaa);
  enc.PutOpaqueVar(short_handle);
  XdrDecoder dec(enc.bytes());
  EXPECT_FALSE(DecodeFileHandle(dec).ok());
}

TEST(Fattr3Test, WireSizeIsFixed) {
  XdrEncoder enc;
  EncodeFattr3(enc, TestAttr());
  EXPECT_EQ(enc.size(), kFattr3WireSize);
}

TEST(Fattr3Test, RoundTrip) {
  XdrEncoder enc;
  EncodeFattr3(enc, TestAttr());
  XdrDecoder dec(enc.bytes());
  EXPECT_EQ(DecodeFattr3(dec).value(), TestAttr());
}

TEST(Fattr3Test, PostOpAttrAbsent) {
  XdrEncoder enc;
  EncodePostOpAttr(enc, std::nullopt);
  EXPECT_EQ(enc.size(), 4u);
  XdrDecoder dec(enc.bytes());
  EXPECT_FALSE(DecodePostOpAttr(dec).value().has_value());
}

TEST(Sattr3Test, RoundTripAllSet) {
  Sattr3 sattr;
  sattr.mode = 0600;
  sattr.uid = 5;
  sattr.gid = 6;
  sattr.size = 4096;
  sattr.atime = NfsTime{10, 0};
  sattr.mtime = NfsTime{20, 0};
  XdrEncoder enc;
  EncodeSattr3(enc, sattr);
  XdrDecoder dec(enc.bytes());
  Sattr3 out = DecodeSattr3(dec).value();
  EXPECT_EQ(out.mode, 0600u);
  EXPECT_EQ(out.size, 4096u);
  EXPECT_EQ(out.mtime->seconds, 20u);
}

TEST(Sattr3Test, RoundTripNoneSet) {
  XdrEncoder enc;
  EncodeSattr3(enc, Sattr3{});
  XdrDecoder dec(enc.bytes());
  Sattr3 out = DecodeSattr3(dec).value();
  EXPECT_FALSE(out.mode.has_value());
  EXPECT_FALSE(out.size.has_value());
  EXPECT_FALSE(out.mtime.has_value());
}

TEST(WccDataTest, RoundTrip) {
  WccData wcc;
  wcc.before = WccAttr{100, {1, 0}, {2, 0}};
  wcc.after = TestAttr();
  XdrEncoder enc;
  EncodeWccData(enc, wcc);
  XdrDecoder dec(enc.bytes());
  WccData out = DecodeWccData(dec).value();
  EXPECT_EQ(out.before->size, 100u);
  EXPECT_EQ(*out.after, TestAttr());
}

template <typename Args>
Args RoundTripArgs(const Args& args) {
  XdrEncoder enc;
  args.Encode(enc);
  XdrDecoder dec(enc.bytes());
  Result<Args> out = Args::Decode(dec);
  EXPECT_TRUE(out.ok());
  EXPECT_TRUE(dec.exhausted());
  return *out;
}

TEST(NfsArgsTest, ReadArgsRoundTrip) {
  ReadArgs args{TestFh(), 65536, 32768};
  ReadArgs out = RoundTripArgs(args);
  EXPECT_EQ(out.file, args.file);
  EXPECT_EQ(out.offset, 65536u);
  EXPECT_EQ(out.count, 32768u);
}

TEST(NfsArgsTest, WriteArgsRoundTrip) {
  WriteArgs args;
  args.file = TestFh();
  args.offset = 8192;
  Rng rng(5);
  args.data.resize(1000);
  for (auto& b : args.data) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  args.count = 1000;
  args.stable = StableHow::kFileSync;
  WriteArgs out = RoundTripArgs(args);
  EXPECT_EQ(out.data, args.data);
  EXPECT_EQ(out.stable, StableHow::kFileSync);
}

TEST(NfsArgsTest, DirOpArgsRoundTrip) {
  DirOpArgs out = RoundTripArgs(DirOpArgs{TestFh(1, FileType3::kDir), "hello.txt"});
  EXPECT_EQ(out.name, "hello.txt");
}

TEST(NfsArgsTest, CreateArgsRoundTrip) {
  CreateArgs args;
  args.dir = TestFh(1, FileType3::kDir);
  args.name = "newfile";
  args.mode = CreateMode::kGuarded;
  args.attributes.mode = 0644;
  CreateArgs out = RoundTripArgs(args);
  EXPECT_EQ(out.name, "newfile");
  EXPECT_EQ(out.mode, CreateMode::kGuarded);
  EXPECT_EQ(out.attributes.mode, 0644u);
}

TEST(NfsArgsTest, RenameArgsRoundTrip) {
  RenameArgs args{TestFh(1, FileType3::kDir), "a", TestFh(2, FileType3::kDir), "b"};
  RenameArgs out = RoundTripArgs(args);
  EXPECT_EQ(out.from_name, "a");
  EXPECT_EQ(out.to_name, "b");
  EXPECT_EQ(out.to_dir.fileid(), 2u);
}

TEST(NfsArgsTest, LinkArgsRoundTrip) {
  LinkArgs out = RoundTripArgs(LinkArgs{TestFh(5), TestFh(1, FileType3::kDir), "hard"});
  EXPECT_EQ(out.file.fileid(), 5u);
  EXPECT_EQ(out.name, "hard");
}

TEST(NfsArgsTest, SetattrArgsWithGuard) {
  SetattrArgs args;
  args.object = TestFh();
  args.new_attributes.size = 0;
  args.guard_ctime = NfsTime{77, 0};
  SetattrArgs out = RoundTripArgs(args);
  EXPECT_EQ(out.guard_ctime->seconds, 77u);
  EXPECT_EQ(*out.new_attributes.size, 0u);
}

TEST(NfsArgsTest, CommitArgsRoundTrip) {
  CommitArgs out = RoundTripArgs(CommitArgs{TestFh(), 4096, 8192});
  EXPECT_EQ(out.offset, 4096u);
  EXPECT_EQ(out.count, 8192u);
}

TEST(NfsArgsTest, ReaddirArgsRoundTrip) {
  ReaddirArgs args;
  args.dir = TestFh(1, FileType3::kDir);
  args.cookie = 55;
  args.cookieverf = 66;
  args.count = 1234;
  XdrEncoder enc;
  args.Encode(enc);
  XdrDecoder dec(enc.bytes());
  ReaddirArgs out = ReaddirArgs::Decode(dec, /*plus=*/false).value();
  EXPECT_EQ(out.cookie, 55u);
  EXPECT_EQ(out.count, 1234u);
}

TEST(NfsArgsTest, ReaddirplusArgsCarryMaxcount) {
  ReaddirArgs args;
  args.dir = TestFh(1, FileType3::kDir);
  args.plus = true;
  args.maxcount = 9999;
  XdrEncoder enc;
  args.Encode(enc);
  XdrDecoder dec(enc.bytes());
  ReaddirArgs out = ReaddirArgs::Decode(dec, /*plus=*/true).value();
  EXPECT_EQ(out.maxcount, 9999u);
}

template <typename Res>
Res RoundTripRes(const Res& res) {
  XdrEncoder enc;
  res.Encode(enc);
  XdrDecoder dec(enc.bytes());
  Result<Res> out = Res::Decode(dec);
  EXPECT_TRUE(out.ok());
  EXPECT_TRUE(dec.exhausted());
  return *out;
}

TEST(NfsResTest, GetattrOk) {
  GetattrRes res;
  res.attributes = TestAttr();
  GetattrRes out = RoundTripRes(res);
  EXPECT_EQ(out.status, Nfsstat3::kOk);
  EXPECT_EQ(out.attributes, TestAttr());
}

TEST(NfsResTest, GetattrError) {
  GetattrRes res;
  res.status = Nfsstat3::kErrStale;
  GetattrRes out = RoundTripRes(res);
  EXPECT_EQ(out.status, Nfsstat3::kErrStale);
}

TEST(NfsResTest, LookupOkCarriesHandleAndAttrs) {
  LookupRes res;
  res.object = TestFh(9);
  res.obj_attributes = TestAttr();
  res.dir_attributes = TestAttr();
  LookupRes out = RoundTripRes(res);
  EXPECT_EQ(out.object.fileid(), 9u);
  EXPECT_TRUE(out.obj_attributes.has_value());
}

TEST(NfsResTest, LookupNoentStillCarriesDirAttrs) {
  LookupRes res;
  res.status = Nfsstat3::kErrNoent;
  res.dir_attributes = TestAttr();
  LookupRes out = RoundTripRes(res);
  EXPECT_EQ(out.status, Nfsstat3::kErrNoent);
  EXPECT_TRUE(out.dir_attributes.has_value());
}

TEST(NfsResTest, ReadOkRoundTrip) {
  ReadRes res;
  res.file_attributes = TestAttr();
  res.data = Bytes(500, 0xcd);
  res.count = 500;
  res.eof = true;
  ReadRes out = RoundTripRes(res);
  EXPECT_EQ(out.count, 500u);
  EXPECT_TRUE(out.eof);
  EXPECT_EQ(out.data, res.data);
}

TEST(NfsResTest, WriteOkRoundTrip) {
  WriteRes res;
  res.count = 8192;
  res.committed = StableHow::kUnstable;
  res.verf = 0xfeedbeef;
  res.wcc.after = TestAttr();
  WriteRes out = RoundTripRes(res);
  EXPECT_EQ(out.count, 8192u);
  EXPECT_EQ(out.verf, 0xfeedbeefull);
  EXPECT_EQ(out.committed, StableHow::kUnstable);
}

TEST(NfsResTest, CreateOkRoundTrip) {
  CreateRes res;
  res.object = TestFh(33);
  res.obj_attributes = TestAttr();
  res.dir_wcc.after = TestAttr();
  CreateRes out = RoundTripRes(res);
  EXPECT_EQ(out.object->fileid(), 33u);
}

TEST(NfsResTest, CreateExistError) {
  CreateRes res;
  res.status = Nfsstat3::kErrExist;
  CreateRes out = RoundTripRes(res);
  EXPECT_EQ(out.status, Nfsstat3::kErrExist);
  EXPECT_FALSE(out.object.has_value());
}

TEST(NfsResTest, RenameRoundTrip) {
  RenameRes res;
  res.from_dir_wcc.after = TestAttr();
  res.to_dir_wcc.after = TestAttr();
  RenameRes out = RoundTripRes(res);
  EXPECT_TRUE(out.from_dir_wcc.after.has_value());
  EXPECT_TRUE(out.to_dir_wcc.after.has_value());
}

TEST(NfsResTest, ReaddirRoundTrip) {
  ReaddirRes res;
  res.dir_attributes = TestAttr();
  res.cookieverf = 99;
  for (uint64_t i = 1; i <= 10; ++i) {
    DirEntry e;
    e.fileid = i;
    e.name = "entry" + std::to_string(i);
    e.cookie = i;
    res.entries.push_back(e);
  }
  res.eof = false;

  XdrEncoder enc;
  res.Encode(enc);
  XdrDecoder dec(enc.bytes());
  ReaddirRes out = ReaddirRes::Decode(dec, /*plus=*/false).value();
  ASSERT_EQ(out.entries.size(), 10u);
  EXPECT_EQ(out.entries[4].name, "entry5");
  EXPECT_FALSE(out.eof);
}

TEST(NfsResTest, ReaddirplusCarriesAttrsAndHandles) {
  ReaddirRes res;
  res.plus = true;
  DirEntry e;
  e.fileid = 3;
  e.name = "plusentry";
  e.cookie = 1;
  e.attr = TestAttr();
  e.handle = TestFh(3);
  res.entries.push_back(e);

  XdrEncoder enc;
  res.Encode(enc);
  XdrDecoder dec(enc.bytes());
  ReaddirRes out = ReaddirRes::Decode(dec, /*plus=*/true).value();
  ASSERT_EQ(out.entries.size(), 1u);
  EXPECT_TRUE(out.entries[0].attr.has_value());
  EXPECT_EQ(out.entries[0].handle->fileid(), 3u);
}

TEST(NfsResTest, FsstatRoundTrip) {
  FsstatRes res;
  res.obj_attributes = TestAttr();
  res.tbytes = 1ull << 40;
  res.fbytes = 1ull << 39;
  FsstatRes out = RoundTripRes(res);
  EXPECT_EQ(out.tbytes, 1ull << 40);
}

TEST(NfsResTest, FsinfoRoundTrip) {
  FsinfoRes res;
  res.obj_attributes = TestAttr();
  res.rtmax = 32768;
  FsinfoRes out = RoundTripRes(res);
  EXPECT_EQ(out.rtmax, 32768u);
  EXPECT_EQ(out.properties, 0x1bu);
}

TEST(NfsResTest, CommitRoundTrip) {
  CommitRes res;
  res.verf = 0x1234;
  res.wcc.after = TestAttr();
  CommitRes out = RoundTripRes(res);
  EXPECT_EQ(out.verf, 0x1234ull);
}

TEST(NfsResTest, TruncatedResultIsCorrupt) {
  ReadRes res;
  res.file_attributes = TestAttr();
  res.data = Bytes(100, 1);
  res.count = 100;
  XdrEncoder enc;
  res.Encode(enc);
  XdrDecoder dec(ByteSpan(enc.bytes().data(), enc.size() - 60));
  EXPECT_FALSE(ReadRes::Decode(dec).ok());
}

TEST(NfsProcTest, NamesAreStable) {
  EXPECT_STREQ(NfsProcName(NfsProc::kLookup), "lookup");
  EXPECT_STREQ(NfsProcName(NfsProc::kReaddirplus), "readdirplus");
  EXPECT_STREQ(NfsProcName(NfsProc::kCommit), "commit");
}

}  // namespace
}  // namespace slice
