// Unit tests for the monolithic baseline NFS server (the N-MFS / single-NFS
// comparison points): full NFSv3 semantics on one node, memory- and
// disk-backed timing.
#include <gtest/gtest.h>

#include "src/baseline/baseline_server.h"
#include "src/nfs/nfs_client.h"

namespace slice {
namespace {

constexpr NetAddr kServerAddr = 0x0a000010;
constexpr NetAddr kClientAddr = 0x0a000001;

Bytes Pattern(size_t n, uint8_t seed = 1) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 11);
  }
  return data;
}

class BaselineTest : public ::testing::Test {
 protected:
  explicit BaselineTest(bool memory_backed = true) : net_(queue_, NetworkParams{}) {
    BaselineServerParams params;
    params.memory_backed = memory_backed;
    params.capacity_bytes = 1 << 28;
    server_ = std::make_unique<BaselineServer>(net_, queue_, kServerAddr, params);
    client_host_ = std::make_unique<Host>(net_, kClientAddr);
    client_ = std::make_unique<SyncNfsClient>(*client_host_, queue_, server_->endpoint());
    root_ = server_->RootHandle();
  }

  EventQueue queue_;
  Network net_;
  std::unique_ptr<BaselineServer> server_;
  std::unique_ptr<Host> client_host_;
  std::unique_ptr<SyncNfsClient> client_;
  FileHandle root_;
};

TEST_F(BaselineTest, CreateWriteReadRemove) {
  CreateRes created = client_->Create(root_, "f").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  const FileHandle fh = *created.object;
  const Bytes data = Pattern(10000);
  ASSERT_EQ(client_->Write(fh, 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  ReadRes read = client_->Read(fh, 0, 16384).value();
  EXPECT_EQ(read.data, data);
  EXPECT_TRUE(read.eof);
  EXPECT_EQ(client_->Remove(root_, "f").value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Lookup(root_, "f").value().status, Nfsstat3::kErrNoent);
}

TEST_F(BaselineTest, DirectoryTreeOperations) {
  CreateRes dir = client_->Mkdir(root_, "sub").value();
  ASSERT_EQ(dir.status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Getattr(root_).value().nlink, 3u);
  ASSERT_EQ(client_->Create(*dir.object, "inner").value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Rmdir(root_, "sub").value().status, Nfsstat3::kErrNotempty);
  ASSERT_EQ(client_->Remove(*dir.object, "inner").value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Rmdir(root_, "sub").value().status, Nfsstat3::kOk);
}

TEST_F(BaselineTest, RenameAndLink) {
  CreateRes created = client_->Create(root_, "a").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  ASSERT_EQ(client_->Link(*created.object, root_, "b").value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Getattr(*created.object).value().nlink, 2u);
  ASSERT_EQ(client_->Rename(root_, "a", root_, "c").value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Lookup(root_, "c").value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Lookup(root_, "b").value().status, Nfsstat3::kOk);
}

TEST_F(BaselineTest, SymlinkReadlink) {
  CreateRes made = client_->Symlink(root_, "lnk", "/somewhere").value();
  ASSERT_EQ(made.status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Readlink(*made.object).value().target, "/somewhere");
}

TEST_F(BaselineTest, ReaddirListsEverything) {
  for (int i = 0; i < 25; ++i) {
    ASSERT_EQ(client_->Create(root_, "e" + std::to_string(i)).value().status, Nfsstat3::kOk);
  }
  std::vector<DirEntry> all = client_->ReadWholeDir(root_).value();
  EXPECT_EQ(all.size(), 25u);
}

TEST_F(BaselineTest, UnstableWriteCommit) {
  CreateRes created = client_->Create(root_, "u").value();
  const FileHandle fh = *created.object;
  WriteRes w = client_->Write(fh, 0, Pattern(100), StableHow::kUnstable).value();
  EXPECT_EQ(w.committed, StableHow::kUnstable);
  CommitRes c = client_->Commit(fh).value();
  EXPECT_EQ(c.status, Nfsstat3::kOk);
  EXPECT_EQ(c.verf, w.verf);
}

TEST_F(BaselineTest, TruncateViaSetattr) {
  CreateRes created = client_->Create(root_, "t").value();
  const FileHandle fh = *created.object;
  ASSERT_EQ(client_->Write(fh, 0, Pattern(50000), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  SetattrArgs args;
  args.object = fh;
  args.new_attributes.size = 10;
  ASSERT_EQ(client_->Setattr(args).value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Getattr(fh).value().size, 10u);
}

class DiskBackedBaselineTest : public BaselineTest {
 protected:
  DiskBackedBaselineTest() : BaselineTest(/*memory_backed=*/false) {}
};

TEST_F(DiskBackedBaselineTest, ColdWritePaysDiskTimeWarmReadDoesNot) {
  CreateRes created = client_->Create(root_, "disk").value();
  const FileHandle fh = *created.object;
  ASSERT_EQ(client_->Write(fh, 0, Pattern(65536), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  const SimTime after_write = queue_.now();
  EXPECT_GT(after_write, FromMillis(2));  // disk-backed sync write

  const SimTime t0 = queue_.now();
  ASSERT_EQ(client_->Read(fh, 0, 32768).value().status, Nfsstat3::kOk);
  EXPECT_LT(queue_.now() - t0, FromMillis(2));  // warm cache read
}

TEST(BaselineMemoryTest, MfsHasNoDiskLatency) {
  EventQueue queue;
  Network net(queue, NetworkParams{});
  BaselineServerParams params;
  params.memory_backed = true;
  BaselineServer server(net, queue, kServerAddr, params);
  Host client_host(net, kClientAddr);
  SyncNfsClient client(client_host, queue, server.endpoint());

  CreateRes created = client.Create(server.RootHandle(), "fast").value();
  const SimTime t0 = queue.now();
  ASSERT_EQ(client.Write(*created.object, 0, Pattern(32768), StableHow::kFileSync)
                .value()
                .status,
            Nfsstat3::kOk);
  EXPECT_LT(queue.now() - t0, FromMillis(1));  // CPU + wire only
}

}  // namespace
}  // namespace slice
