// Tests for the workload generators: untar op sequence against the real
// ensemble, SFS generator mix/file-set properties, sequential I/O pipeline.
#include <gtest/gtest.h>

#include "src/baseline/baseline_server.h"
#include "src/slice/ensemble.h"
#include "src/workload/seqio.h"
#include "src/workload/sfs_gen.h"
#include "src/workload/untar.h"

namespace slice {
namespace {

TEST(UntarTest, CreatesRequestedTreeOnEnsemble) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  Ensemble ensemble(queue, config);

  UntarParams params;
  params.total_creations = 120;
  bool finished = false;
  UntarProcess untar(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params, /*seed=*/1, [&] { finished = true; });
  untar.Start();
  queue.RunUntilIdle();

  ASSERT_TRUE(finished);
  EXPECT_EQ(untar.errors(), 0u);
  EXPECT_GT(untar.elapsed(), 0u);
  // ~7 ops per file creation, fewer for mkdirs; the total must exceed 6x.
  EXPECT_GT(untar.ops_issued(), 120u * 6);

  // Entries really exist: count attr cells across dir servers (120 creations
  // + the top dir + root).
  size_t attr_cells = 0;
  for (size_t i = 0; i < ensemble.num_dir_servers(); ++i) {
    attr_cells += ensemble.dir_server(i).store().attr_count();
  }
  EXPECT_EQ(attr_cells, 122u);
}

TEST(UntarTest, RunsAgainstBaselineServer) {
  EventQueue queue;
  Network net(queue, NetworkParams{});
  BaselineServerParams params;
  params.memory_backed = true;
  BaselineServer server(net, queue, 0x0a000010, params);
  Host client_host(net, 0x0a000001);

  UntarParams untar_params;
  untar_params.total_creations = 60;
  bool finished = false;
  UntarProcess untar(client_host, queue, server.endpoint(), server.RootHandle(),
                     untar_params, /*seed=*/2, [&] { finished = true; });
  untar.Start();
  queue.RunUntilIdle();
  EXPECT_TRUE(finished);
  EXPECT_EQ(untar.errors(), 0u);
}

TEST(UntarTest, MultipleProcessesInParallel) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_clients = 2;
  Ensemble ensemble(queue, config);

  int finished = 0;
  std::vector<std::unique_ptr<UntarProcess>> procs;
  for (int p = 0; p < 4; ++p) {
    UntarParams params;
    params.total_creations = 50;
    params.top_name = "untar_p" + std::to_string(p);
    procs.push_back(std::make_unique<UntarProcess>(
        ensemble.client_host(p % 2), queue, ensemble.virtual_server(), ensemble.root(),
        params, /*seed=*/p + 10, [&] { ++finished; }));
  }
  for (auto& proc : procs) {
    proc->Start();
  }
  queue.RunUntilIdle();
  EXPECT_EQ(finished, 4);
  for (auto& proc : procs) {
    EXPECT_EQ(proc->errors(), 0u);
  }
}

TEST(SfsGenTest, SetupAndShortRunOnEnsemble) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_storage_nodes = 2;
  Ensemble ensemble(queue, config);

  SfsParams params;
  params.num_files = 60;
  params.num_dirs = 6;
  params.offered_ops_per_sec = 300;
  params.num_processes = 4;
  params.warmup = FromMillis(500);
  params.duration = FromSeconds(3);
  SfsBenchmark bench(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params);
  ASSERT_TRUE(bench.Setup().ok());
  SfsReport report = bench.Run();

  EXPECT_GT(report.ops_completed, 300u);  // ~900 offered over 3s
  EXPECT_NEAR(report.delivered_iops, 300, 120);
  EXPECT_GT(report.mean_latency_ms, 0.0);
  EXPECT_EQ(report.errors, 0u);
}

TEST(SfsGenTest, SaturationCapsDeliveredIops) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_storage_nodes = 1;
  config.cal.sfs_cache_mb = 1;  // tiny cache: heavy disk traffic
  Ensemble ensemble(queue, config);

  SfsParams params;
  params.num_files = 80;
  params.num_dirs = 4;
  params.offered_ops_per_sec = 100000;  // absurdly high
  params.num_processes = 4;
  params.warmup = FromMillis(200);
  params.duration = FromSeconds(2);
  SfsBenchmark bench(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params);
  ASSERT_TRUE(bench.Setup().ok());
  SfsReport report = bench.Run();
  // Saturation: delivered is far below offered.
  EXPECT_LT(report.delivered_iops, 50000);
  EXPECT_GT(report.delivered_iops, 100);
}

TEST(SeqIoTest, WriteThenReadBandwidth) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 0;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);
  CreateRes created = client->Create(ensemble.root(), "dd").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);

  SeqIoParams wparams;
  wparams.file_bytes = 16 << 20;
  wparams.write = true;
  bool wdone = false;
  SeqIoProcess writer(ensemble.client_host(0), queue, ensemble.virtual_server(),
                      *created.object, wparams, [&] { wdone = true; });
  writer.Start();
  queue.RunUntilIdle();
  ASSERT_TRUE(wdone);
  EXPECT_EQ(writer.errors(), 0u);
  const double write_mbps = writer.ThroughputMbPerSec();
  EXPECT_GT(write_mbps, 5.0);
  // The client CPU cost bounds the write path near 1/24ns = ~41 MB/s.
  EXPECT_LT(write_mbps, 45.0);

  SeqIoParams rparams;
  rparams.file_bytes = 16 << 20;
  rparams.write = false;
  rparams.client_ns_per_byte = 14.0;
  bool rdone = false;
  SeqIoProcess reader(ensemble.client_host(0), queue, ensemble.virtual_server(),
                      *created.object, rparams, [&] { rdone = true; });
  reader.Start();
  queue.RunUntilIdle();
  ASSERT_TRUE(rdone);
  EXPECT_EQ(reader.errors(), 0u);
  EXPECT_GT(reader.ThroughputMbPerSec(), write_mbps);  // zero-copy read path
}

TEST(SeqIoTest, MirroredWriteIsSlowerThanPlain) {
  EventQueue queue;

  auto run = [&](uint8_t replication) {
    EnsembleConfig config;
    config.num_storage_nodes = 4;
    config.num_small_file_servers = 0;
    config.default_replication = replication;
    EventQueue q;
    Ensemble ensemble(q, config);
    auto client = ensemble.MakeSyncClient(0);
    CreateRes created = client->Create(ensemble.root(), "dd").value();
    SeqIoParams params;
    params.file_bytes = 8 << 20;
    bool done = false;
    SeqIoProcess proc(ensemble.client_host(0), q, ensemble.virtual_server(),
                      *created.object, params, [&] { done = true; });
    proc.Start();
    q.RunUntilIdle();
    EXPECT_TRUE(done);
    EXPECT_EQ(proc.errors(), 0u);
    return proc.ThroughputMbPerSec();
  };

  const double plain = run(1);
  const double mirrored = run(2);
  EXPECT_LT(mirrored, plain);
}

}  // namespace
}  // namespace slice
