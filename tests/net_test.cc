// Unit tests for packets (header layout, checksum rewriting) and the
// simulated network (delivery, timing, taps, loss, failure).
#include <gtest/gtest.h>

#include "src/net/network.h"
#include "src/net/packet.h"

namespace slice {
namespace {

constexpr NetAddr kHostA = 0x0a000001;  // 10.0.0.1
constexpr NetAddr kHostB = 0x0a000002;  // 10.0.0.2

Packet TestPacket(size_t payload_size = 100) {
  Bytes payload(payload_size, 0x5a);
  return Packet::MakeUdp(Endpoint{kHostA, 1000}, Endpoint{kHostB, 2049}, payload);
}

TEST(PacketTest, BuildsValidUdp) {
  Packet pkt = TestPacket();
  EXPECT_TRUE(pkt.IsValidUdp());
  EXPECT_EQ(pkt.src_addr(), kHostA);
  EXPECT_EQ(pkt.dst_addr(), kHostB);
  EXPECT_EQ(pkt.src_port(), 1000);
  EXPECT_EQ(pkt.dst_port(), 2049);
  EXPECT_EQ(pkt.payload().size(), 100u);
  EXPECT_EQ(pkt.size(), kPacketHeaderSize + 100);
  EXPECT_TRUE(pkt.VerifyChecksums());
}

TEST(PacketTest, ChecksumsDetectCorruption) {
  Packet pkt = TestPacket();
  pkt.mutable_payload()[10] ^= 0xff;
  EXPECT_FALSE(pkt.VerifyChecksums());
}

TEST(PacketTest, RewriteDstPreservesChecksums) {
  Packet pkt = TestPacket();
  pkt.RewriteDst(Endpoint{0x0a0000ff, 3333});
  EXPECT_EQ(pkt.dst_addr(), 0x0a0000ffu);
  EXPECT_EQ(pkt.dst_port(), 3333);
  // The incremental update must agree with a full recompute.
  EXPECT_TRUE(pkt.VerifyChecksums());
}

TEST(PacketTest, RewriteSrcPreservesChecksums) {
  Packet pkt = TestPacket();
  pkt.RewriteSrc(Endpoint{0x0a000042, 777});
  EXPECT_EQ(pkt.src_addr(), 0x0a000042u);
  EXPECT_EQ(pkt.src_port(), 777);
  EXPECT_TRUE(pkt.VerifyChecksums());
}

TEST(PacketTest, RepeatedRewritesStayConsistent) {
  Packet pkt = TestPacket();
  for (uint32_t i = 0; i < 20; ++i) {
    pkt.RewriteDst(Endpoint{0x0a000000 + i, static_cast<NetPort>(2000 + i)});
    pkt.RewriteSrc(Endpoint{0x0a000100 + i, static_cast<NetPort>(4000 + i)});
    ASSERT_TRUE(pkt.VerifyChecksums()) << "iteration " << i;
  }
}

TEST(PacketTest, EmptyPayload) {
  Packet pkt = Packet::MakeUdp(Endpoint{kHostA, 1}, Endpoint{kHostB, 2}, ByteSpan{});
  EXPECT_TRUE(pkt.IsValidUdp());
  EXPECT_EQ(pkt.payload().size(), 0u);
  EXPECT_TRUE(pkt.VerifyChecksums());
}

TEST(PacketTest, AddrFormatting) {
  EXPECT_EQ(AddrToString(0x0a000001), "10.0.0.1");
  EXPECT_EQ(EndpointToString(Endpoint{0x0a000001, 2049}), "10.0.0.1:2049");
}

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : net_(queue_, NetworkParams{}) {
    net_.Attach(kHostA, [this](Packet&& pkt) { a_inbox_.push_back(std::move(pkt)); });
    net_.Attach(kHostB, [this](Packet&& pkt) { b_inbox_.push_back(std::move(pkt)); });
  }

  EventQueue queue_;
  Network net_;
  std::vector<Packet> a_inbox_;
  std::vector<Packet> b_inbox_;
};

TEST_F(NetworkTest, DeliversPacket) {
  net_.Send(TestPacket());
  queue_.RunUntilIdle();
  ASSERT_EQ(b_inbox_.size(), 1u);
  EXPECT_TRUE(b_inbox_[0].VerifyChecksums());
  EXPECT_EQ(a_inbox_.size(), 0u);
}

TEST_F(NetworkTest, DeliveryTakesWireTime) {
  net_.Send(TestPacket(9000));
  queue_.RunUntilIdle();
  // 9028 bytes at 1Gb/s ≈ 72.2us serialization, twice (tx+rx), + 30us switch.
  const double expect_us = 2 * (9028.0 * 8 / 1e9 * 1e6) + 30.0;
  EXPECT_NEAR(static_cast<double>(queue_.now()) / 1000.0, expect_us, 5.0);
}

TEST_F(NetworkTest, UnknownDestinationDropped) {
  Bytes payload(10, 1);
  net_.Send(Packet::MakeUdp(Endpoint{kHostA, 1}, Endpoint{0x0afffffe, 2}, payload));
  queue_.RunUntilIdle();
  EXPECT_EQ(net_.packets_dropped(), 1u);
}

TEST_F(NetworkTest, LossInjectionDropsSome) {
  net_.set_loss_rate(0.5);
  for (int i = 0; i < 200; ++i) {
    net_.Send(TestPacket(10));
  }
  queue_.RunUntilIdle();
  EXPECT_GT(b_inbox_.size(), 50u);
  EXPECT_LT(b_inbox_.size(), 150u);
  EXPECT_EQ(b_inbox_.size() + net_.packets_dropped(), 200u);
}

TEST_F(NetworkTest, FailedHostReceivesNothing) {
  net_.SetHostFailed(kHostB, true);
  net_.Send(TestPacket());
  queue_.RunUntilIdle();
  EXPECT_EQ(b_inbox_.size(), 0u);

  net_.SetHostFailed(kHostB, false);
  net_.Send(TestPacket());
  queue_.RunUntilIdle();
  EXPECT_EQ(b_inbox_.size(), 1u);
}

TEST_F(NetworkTest, FailedHostSendsNothing) {
  net_.SetHostFailed(kHostA, true);
  net_.Send(TestPacket());
  queue_.RunUntilIdle();
  EXPECT_EQ(b_inbox_.size(), 0u);
}

// A tap that redirects outbound packets to a different destination and
// counts inbound ones — the skeleton of what the µproxy does.
class RedirectTap : public PacketTap {
 public:
  RedirectTap(Network& net, Endpoint target) : net_(net), target_(target) {}

  void HandleOutbound(Packet&& pkt) override {
    ++outbound_seen;
    pkt.RewriteDst(target_);
    net_.Inject(std::move(pkt));
  }
  void HandleInbound(Packet&& pkt) override {
    ++inbound_seen;
    net_.DeliverLocal(pkt.dst_addr(), std::move(pkt));
  }

  int outbound_seen = 0;
  int inbound_seen = 0;

 private:
  Network& net_;
  Endpoint target_;
};

TEST_F(NetworkTest, TapRedirectsTraffic) {
  constexpr NetAddr kHostC = 0x0a000003;
  std::vector<Packet> c_inbox;
  net_.Attach(kHostC, [&](Packet&& pkt) { c_inbox.push_back(std::move(pkt)); });

  RedirectTap tap(net_, Endpoint{kHostC, 9999});
  net_.InstallTap(kHostA, &tap);

  net_.Send(TestPacket());  // addressed to B, tap redirects to C
  queue_.RunUntilIdle();
  EXPECT_EQ(tap.outbound_seen, 1);
  EXPECT_EQ(b_inbox_.size(), 0u);
  ASSERT_EQ(c_inbox.size(), 1u);
  EXPECT_EQ(c_inbox[0].dst_port(), 9999);
  EXPECT_TRUE(c_inbox[0].VerifyChecksums());
}

TEST_F(NetworkTest, TapSeesInbound) {
  RedirectTap tap(net_, Endpoint{kHostB, 2049});
  net_.InstallTap(kHostB, &tap);
  net_.Send(TestPacket());
  queue_.RunUntilIdle();
  EXPECT_EQ(tap.inbound_seen, 1);
  ASSERT_EQ(b_inbox_.size(), 1u);  // tap passed it up
}

TEST_F(NetworkTest, SerializationQueuesBackToBackPackets) {
  for (int i = 0; i < 10; ++i) {
    net_.Send(TestPacket(9000));
  }
  queue_.RunUntilIdle();
  EXPECT_EQ(b_inbox_.size(), 10u);
  // 10 jumbo packets serialized at 1Gb/s: at least 10 * 72us of wire time.
  EXPECT_GT(queue_.now(), FromMicros(700));
}

TEST_F(NetworkTest, CountsBytes) {
  net_.Send(TestPacket(72));
  queue_.RunUntilIdle();
  EXPECT_EQ(net_.bytes_sent(), kPacketHeaderSize + 72);
  EXPECT_EQ(net_.packets_sent(), 1u);
}

}  // namespace
}  // namespace slice
