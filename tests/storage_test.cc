// Unit tests for the object store (allocation, sparse objects, unstable
// write overlay, commit, truncate, crash loss), the block cache, and the
// storage node wire service.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.h"
#include "src/nfs/nfs_client.h"
#include "src/storage/block_cache.h"
#include "src/storage/object_store.h"
#include "src/storage/storage_node.h"

namespace slice {
namespace {

constexpr uint64_t kSecret = 0xfeed;

Bytes Pattern(size_t n, uint8_t seed = 1) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 7);
  }
  return data;
}

TEST(ObjectStoreTest, WriteReadRoundTrip) {
  ObjectStore store(1 << 20);
  const Bytes data = Pattern(5000);
  ASSERT_TRUE(store.Write(1, 0, data, /*stable=*/true).ok());
  StoreReadResult read = store.Read(1, 0, 5000).value();
  EXPECT_EQ(read.data, data);
  EXPECT_TRUE(read.eof);
}

TEST(ObjectStoreTest, ReadPastEndIsEof) {
  ObjectStore store(1 << 20);
  ASSERT_TRUE(store.Write(1, 0, Pattern(100), true).ok());
  StoreReadResult read = store.Read(1, 100, 50).value();
  EXPECT_TRUE(read.eof);
  EXPECT_TRUE(read.data.empty());
}

TEST(ObjectStoreTest, MissingObjectReadsAsEof) {
  ObjectStore store(1 << 20);
  StoreReadResult read = store.Read(99, 0, 100).value();
  EXPECT_TRUE(read.eof);
  EXPECT_TRUE(read.data.empty());
}

TEST(ObjectStoreTest, SparseHolesReadAsZeros) {
  ObjectStore store(1 << 20);
  ASSERT_TRUE(store.Write(1, 3 * kStoreBlockSize, Pattern(100), true).ok());
  StoreReadResult read = store.Read(1, 0, 100).value();
  EXPECT_EQ(read.data, Bytes(100, 0));
  EXPECT_FALSE(read.eof);
}

TEST(ObjectStoreTest, UnalignedWritesSpanBlocks) {
  ObjectStore store(1 << 20);
  const Bytes data = Pattern(3 * kStoreBlockSize);
  ASSERT_TRUE(store.Write(1, 1000, data, true).ok());
  EXPECT_EQ(store.Read(1, 1000, static_cast<uint32_t>(data.size())).value().data, data);
  // First 1000 bytes are a hole.
  EXPECT_EQ(store.Read(1, 0, 1000).value().data, Bytes(1000, 0));
}

TEST(ObjectStoreTest, SequentialWritesGetContiguousBlocks) {
  ObjectStore store(8 << 20);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        store.Write(1, static_cast<uint64_t>(i) * kStoreBlockSize, Pattern(kStoreBlockSize), true)
            .ok());
  }
  for (uint64_t b = 1; b < 10; ++b) {
    EXPECT_EQ(*store.PhysicalFor(1, b), *store.PhysicalFor(1, b - 1) + 1);
  }
}

TEST(ObjectStoreTest, UnstableWriteVisibleToReadsButNotDisk) {
  ObjectStore store(1 << 20);
  const Bytes data = Pattern(4000);
  StoreWriteResult w = store.Write(1, 0, data, /*stable=*/false).value();
  EXPECT_TRUE(w.blocks_written.empty());  // nothing hit the disk
  EXPECT_EQ(store.Read(1, 0, 4000).value().data, data);
  EXPECT_EQ(store.dirty_blocks(), 1u);
}

TEST(ObjectStoreTest, CommitFlushesDirtyBlocks) {
  ObjectStore store(1 << 20);
  ASSERT_TRUE(store.Write(1, 0, Pattern(2 * kStoreBlockSize), false).ok());
  std::vector<PhysBlock> written = store.Commit(1);
  EXPECT_EQ(written.size(), 2u);
  EXPECT_EQ(store.dirty_blocks(), 0u);
  const Bytes expect = Pattern(2 * kStoreBlockSize);
  EXPECT_EQ(store.Read(1, 0, 100).value().data, Bytes(expect.begin(), expect.begin() + 100));
}

TEST(ObjectStoreTest, CrashDropsUncommittedData) {
  ObjectStore store(1 << 20);
  const Bytes stable = Pattern(1000, 1);
  const Bytes unstable = Pattern(1000, 2);
  ASSERT_TRUE(store.Write(1, 0, stable, true).ok());
  ASSERT_TRUE(store.Write(1, 0, unstable, false).ok());
  EXPECT_EQ(store.Read(1, 0, 1000).value().data, unstable);
  store.CrashDiscardDirty();
  EXPECT_EQ(store.Read(1, 0, 1000).value().data, stable);
}

TEST(ObjectStoreTest, CommittedDataSurvivesCrash) {
  ObjectStore store(1 << 20);
  const Bytes data = Pattern(1000, 3);
  ASSERT_TRUE(store.Write(1, 0, data, false).ok());
  store.Commit(1);
  store.CrashDiscardDirty();
  EXPECT_EQ(store.Read(1, 0, 1000).value().data, data);
}

TEST(ObjectStoreTest, PartialDirtyBlockPreservesStableBytes) {
  ObjectStore store(1 << 20);
  ASSERT_TRUE(store.Write(1, 0, Bytes(kStoreBlockSize, 0xaa), true).ok());
  ASSERT_TRUE(store.Write(1, 100, Bytes(50, 0xbb), false).ok());
  store.Commit(1);
  Bytes got = store.Read(1, 0, kStoreBlockSize).value().data;
  EXPECT_EQ(got[0], 0xaa);
  EXPECT_EQ(got[100], 0xbb);
  EXPECT_EQ(got[149], 0xbb);
  EXPECT_EQ(got[150], 0xaa);
}

TEST(ObjectStoreTest, StableWriteSupersedesDirtyOverlay) {
  ObjectStore store(1 << 20);
  ASSERT_TRUE(store.Write(1, 0, Bytes(100, 0x11), false).ok());
  ASSERT_TRUE(store.Write(1, 0, Bytes(100, 0x22), true).ok());
  EXPECT_EQ(store.Read(1, 0, 100).value().data, Bytes(100, 0x22));
  store.Commit(1);
  EXPECT_EQ(store.Read(1, 0, 100).value().data, Bytes(100, 0x22));
}

TEST(ObjectStoreTest, TruncateFreesBlocks) {
  ObjectStore store(1 << 20);
  ASSERT_TRUE(store.Write(1, 0, Pattern(4 * kStoreBlockSize), true).ok());
  const uint64_t used_before = store.used_blocks();
  ASSERT_TRUE(store.Truncate(1, kStoreBlockSize).ok());
  EXPECT_EQ(store.used_blocks(), used_before - 3);
  EXPECT_EQ(store.SizeOrZero(1), kStoreBlockSize);
  StoreReadResult read = store.Read(1, 0, 2 * kStoreBlockSize).value();
  EXPECT_EQ(read.data.size(), kStoreBlockSize);
  EXPECT_TRUE(read.eof);
}

TEST(ObjectStoreTest, RemoveFreesEverything) {
  ObjectStore store(1 << 20);
  ASSERT_TRUE(store.Write(1, 0, Pattern(4 * kStoreBlockSize), true).ok());
  ASSERT_TRUE(store.Remove(1).ok());
  EXPECT_EQ(store.used_blocks(), 0u);
  EXPECT_FALSE(store.Exists(1));
  EXPECT_EQ(store.Remove(1).code(), StatusCode::kNotFound);
}

TEST(ObjectStoreTest, OutOfSpaceReported) {
  ObjectStore store(4 * kStoreBlockSize);
  EXPECT_TRUE(store.Write(1, 0, Pattern(4 * kStoreBlockSize), true).ok());
  Result<StoreWriteResult> w = store.Write(2, 0, Pattern(kStoreBlockSize), true);
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.status().code(), StatusCode::kResourceExhausted);
}

TEST(ObjectStoreTest, ManyObjectsIndependent) {
  ObjectStore store(64 << 20);
  for (uint64_t id = 1; id <= 100; ++id) {
    ASSERT_TRUE(store.Write(id, 0, Pattern(100, static_cast<uint8_t>(id)), true).ok());
  }
  EXPECT_EQ(store.object_count(), 100u);
  for (uint64_t id = 1; id <= 100; ++id) {
    EXPECT_EQ(store.Read(id, 0, 100).value().data, Pattern(100, static_cast<uint8_t>(id)));
  }
}

TEST(BlockCacheTest, HitAfterInsert) {
  BlockCache cache(10 * kStoreBlockSize);
  EXPECT_FALSE(cache.Access(1));  // miss inserts
  EXPECT_TRUE(cache.Access(1));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(BlockCacheTest, EvictsLru) {
  BlockCache cache(3 * kStoreBlockSize);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  EXPECT_TRUE(cache.Access(1));  // 1 now MRU
  cache.Insert(4);               // evicts 2
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(BlockCacheTest, SubBlockCapacityRoundsUpToOneBlock) {
  // Regression: a capacity below one block used to truncate to zero blocks,
  // so every insert immediately evicted itself — a permanent 100% miss rate
  // that silently defeated the cache. Sub-block capacities now hold a block.
  BlockCache cache(kStoreBlockSize / 2);
  EXPECT_EQ(cache.capacity_blocks(), 1u);
  EXPECT_FALSE(cache.Access(1));
  EXPECT_TRUE(cache.Access(1)) << "sole block must survive its own insert";

  // Unaligned capacities round up, not down.
  BlockCache unaligned(3 * kStoreBlockSize + 1);
  EXPECT_EQ(unaligned.capacity_blocks(), 4u);

  // An eviction storm through the minimal cache still behaves: exactly one
  // resident block, every new block displacing the previous one.
  int evictions = 0;
  cache.SetEvictionHook([&](PhysBlock) { ++evictions; });
  for (PhysBlock b = 10; b < 40; ++b) {
    cache.Insert(b);
    EXPECT_EQ(cache.size_blocks(), 1u);
  }
  EXPECT_EQ(evictions, 30);
  EXPECT_TRUE(cache.Contains(39));
}

TEST(BlockCacheTest, EraseAndClear) {
  BlockCache cache(10 * kStoreBlockSize);
  cache.Insert(5);
  cache.Erase(5);
  EXPECT_FALSE(cache.Contains(5));
  cache.Insert(6);
  cache.Clear();
  EXPECT_EQ(cache.size_blocks(), 0u);
}

// Reference LRU: a plain MRU-front vector. O(n) per op, but obviously
// correct — the differential below checks the index-threaded intrusive
// list against it under a random storm of touches, re-inserts, erases and
// clears, where the old iterator-stored variant's splice bugs would bite.
class ModelLru {
 public:
  explicit ModelLru(size_t capacity) : capacity_(capacity) {}

  // Mirrors BlockCache::Access: returns hit, touches or inserts.
  bool Access(PhysBlock block) {
    const bool hit = Touch(block);
    if (!hit && order_.size() > capacity_) {
      evicted_.push_back(order_.back());
      order_.pop_back();
    }
    return hit;
  }

  void Insert(PhysBlock block) { Access(block); }

  void Erase(PhysBlock block) {
    auto it = std::find(order_.begin(), order_.end(), block);
    if (it != order_.end()) {
      order_.erase(it);
    }
  }

  void Clear() { order_.clear(); }

  bool Contains(PhysBlock block) const {
    return std::find(order_.begin(), order_.end(), block) != order_.end();
  }

  size_t size() const { return order_.size(); }
  const std::vector<PhysBlock>& evicted() const { return evicted_; }

 private:
  bool Touch(PhysBlock block) {
    auto it = std::find(order_.begin(), order_.end(), block);
    const bool hit = it != order_.end();
    if (hit) {
      order_.erase(it);
    }
    order_.insert(order_.begin(), block);
    return hit;
  }

  size_t capacity_;
  std::vector<PhysBlock> order_;  // front = MRU
  std::vector<PhysBlock> evicted_;
};

TEST(BlockCacheTest, RandomizedModelDifferential) {
  constexpr size_t kCapacity = 8;
  constexpr PhysBlock kKeySpace = 24;  // 3x capacity: constant pressure
  BlockCache cache(kCapacity * kStoreBlockSize);
  ModelLru model(kCapacity);
  std::vector<PhysBlock> evicted;
  cache.SetEvictionHook([&](PhysBlock block) { evicted.push_back(block); });

  Rng rng(0xb10cca11u);
  for (int step = 0; step < 20000; ++step) {
    const PhysBlock block = rng.NextBelow(kKeySpace);
    switch (rng.NextBelow(10)) {
      case 0:
      case 1:
        cache.Insert(block);
        model.Insert(block);
        break;
      case 2:
        cache.Erase(block);
        model.Erase(block);
        break;
      case 3:
        if (rng.NextBelow(200) == 0) {  // rare full flush
          cache.Clear();
          model.Clear();
          break;
        }
        [[fallthrough]];
      default: {
        const bool hit = cache.Access(block);
        ASSERT_EQ(hit, model.Access(block)) << "step " << step << " block " << block;
        break;
      }
    }
    ASSERT_EQ(cache.size_blocks(), model.size()) << "step " << step;
    ASSERT_EQ(cache.Contains(block), model.Contains(block)) << "step " << step;
    // Eviction order is the strongest check: it exposes any divergence in
    // recency order, not just membership.
    ASSERT_EQ(evicted, model.evicted()) << "step " << step;
  }
  EXPECT_FALSE(evicted.empty());
  // Final membership must agree exactly.
  for (PhysBlock block = 0; block < kKeySpace; ++block) {
    EXPECT_EQ(cache.Contains(block), model.Contains(block)) << "block " << block;
  }
}

// --- storage node wire tests ---

class StorageNodeTest : public ::testing::Test {
 protected:
  StorageNodeTest()
      : net_(queue_, NetworkParams{}),
        node_(net_, queue_, 0x0a000010, MakeParams()),
        client_host_(net_, 0x0a000001),
        client_(client_host_, queue_, Endpoint{0x0a000010, kNfsPort}) {}

  static StorageNodeParams MakeParams() {
    StorageNodeParams params;
    params.volume_secret = kSecret;
    params.capacity_bytes = 1 << 26;
    return params;
  }

  FileHandle Fh(uint64_t fileid = 1) const {
    return FileHandle::Make(1, fileid, 1, FileType3::kReg, 1, kSecret);
  }

  EventQueue queue_;
  Network net_;
  StorageNode node_;
  Host client_host_;
  SyncNfsClient client_;
};

TEST_F(StorageNodeTest, WriteThenRead) {
  const Bytes data = Pattern(32768);
  WriteRes w = client_.Write(Fh(), 0, data, StableHow::kFileSync).value();
  ASSERT_EQ(w.status, Nfsstat3::kOk);
  EXPECT_EQ(w.count, 32768u);
  EXPECT_EQ(w.committed, StableHow::kFileSync);

  ReadRes r = client_.Read(Fh(), 0, 32768).value();
  ASSERT_EQ(r.status, Nfsstat3::kOk);
  EXPECT_EQ(r.data, data);
  EXPECT_TRUE(r.eof);
  ASSERT_TRUE(r.file_attributes.has_value());
  EXPECT_EQ(r.file_attributes->size, 32768u);
}

TEST_F(StorageNodeTest, BadCapabilityRejected) {
  FileHandle forged = FileHandle::Make(1, 1, 1, FileType3::kReg, 1, kSecret + 1);
  WriteRes w = client_.Write(forged, 0, Pattern(100), StableHow::kFileSync).value();
  EXPECT_EQ(w.status, Nfsstat3::kErrBadhandle);
  ReadRes r = client_.Read(forged, 0, 100).value();
  EXPECT_EQ(r.status, Nfsstat3::kErrBadhandle);
}

TEST_F(StorageNodeTest, UnstableWriteThenCommitDurable) {
  const Bytes data = Pattern(8192);
  WriteRes w = client_.Write(Fh(), 0, data, StableHow::kUnstable).value();
  ASSERT_EQ(w.status, Nfsstat3::kOk);
  EXPECT_EQ(w.committed, StableHow::kUnstable);
  const uint64_t verf = w.verf;

  CommitRes c = client_.Commit(Fh()).value();
  ASSERT_EQ(c.status, Nfsstat3::kOk);
  EXPECT_EQ(c.verf, verf);

  // Crash + restart: committed data survives, verifier changes.
  node_.Fail();
  node_.Restart();
  ReadRes r = client_.Read(Fh(), 0, 8192).value();
  EXPECT_EQ(r.data, data);
  WriteRes w2 = client_.Write(Fh(), 8192, data, StableHow::kUnstable).value();
  EXPECT_NE(w2.verf, verf);
}

TEST_F(StorageNodeTest, CrashLosesUncommittedWrites) {
  const Bytes data = Pattern(8192);
  ASSERT_EQ(client_.Write(Fh(), 0, data, StableHow::kUnstable).value().status, Nfsstat3::kOk);
  node_.Fail();
  node_.Restart();
  ReadRes r = client_.Read(Fh(), 0, 8192).value();
  EXPECT_TRUE(r.data.empty());
}

TEST_F(StorageNodeTest, TruncateViaSetattr) {
  ASSERT_EQ(client_.Write(Fh(), 0, Pattern(4 * kStoreBlockSize), StableHow::kFileSync)
                .value()
                .status,
            Nfsstat3::kOk);
  SetattrArgs args;
  args.object = Fh();
  args.new_attributes.size = 100;
  SetattrRes res = client_.Setattr(args).value();
  EXPECT_EQ(res.status, Nfsstat3::kOk);
  EXPECT_EQ(client_.Getattr(Fh()).value().size, 100u);
}

TEST_F(StorageNodeTest, RemoveObject) {
  ASSERT_EQ(client_.Write(Fh(), 0, Pattern(100), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  RemoveRes res = client_.Remove(Fh(), "").value();
  EXPECT_EQ(res.status, Nfsstat3::kOk);
  EXPECT_EQ(node_.store().object_count(), 0u);
}

TEST_F(StorageNodeTest, CachedReadIsFasterThanCold) {
  const Bytes data = Pattern(65536);
  ASSERT_EQ(client_.Write(Fh(), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  // Writes populate the cache; force eviction by restarting (clears cache).
  node_.Fail();
  node_.Restart();

  const SimTime t0 = queue_.now();
  ASSERT_EQ(client_.Read(Fh(), 0, 65536).value().status, Nfsstat3::kOk);
  const SimTime cold = queue_.now() - t0;

  const SimTime t1 = queue_.now();
  ASSERT_EQ(client_.Read(Fh(), 0, 65536).value().status, Nfsstat3::kOk);
  const SimTime warm = queue_.now() - t1;
  EXPECT_LT(warm * 2, cold);  // warm read skips all disk time
}

TEST_F(StorageNodeTest, SequentialReadTriggersPrefetch) {
  const Bytes data = Pattern(64 * kStoreBlockSize);
  ASSERT_EQ(client_.Write(Fh(), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  node_.Fail();
  node_.Restart();
  ASSERT_EQ(client_.Read(Fh(), 0, 32768).value().status, Nfsstat3::kOk);
  EXPECT_GT(node_.prefetches_issued(), 0u);
  // The prefetched blocks are cache-resident: the next sequential read sees
  // only hits.
  const uint64_t misses_before = node_.cache().misses();
  ASSERT_EQ(client_.Read(Fh(), 32768, 32768).value().status, Nfsstat3::kOk);
  EXPECT_EQ(node_.cache().misses(), misses_before);
}

TEST_F(StorageNodeTest, GetattrReportsSize) {
  ASSERT_EQ(client_.Write(Fh(7), 0, Pattern(12345), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  Fattr3 attr = client_.Getattr(Fh(7)).value();
  EXPECT_EQ(attr.size, 12345u);
  EXPECT_EQ(attr.fileid, 7u);
}

TEST_F(StorageNodeTest, FsstatReportsCapacity) {
  FsstatRes res = client_.Fsstat(Fh()).value();
  ASSERT_EQ(res.status, Nfsstat3::kOk);
  EXPECT_EQ(res.tbytes, 1u << 26);
}

TEST_F(StorageNodeTest, UnsupportedProcRejected) {
  Result<LookupRes> res = client_.Lookup(Fh(), "x");
  EXPECT_FALSE(res.ok());  // PROC_UNAVAIL surfaces as an RPC-level error
}

}  // namespace
}  // namespace slice
