// Whole-system integration tests: a client mounts the virtual NFS server and
// every operation flows through the interposed µproxy to the right server
// class. Covers functional decomposition, attribute consistency, mirrored
// striping, fan-out commit/remove, µproxy soft-state loss, packet loss,
// failover, and both name policies.
#include <gtest/gtest.h>

#include "src/slice/ensemble.h"
#include "src/slice/volume_client.h"

namespace slice {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 1) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 31);
  }
  return data;
}

class EnsembleTest : public ::testing::Test {
 protected:
  explicit EnsembleTest(EnsembleConfig config = {}) {
    config_ = config;
    ensemble_ = std::make_unique<Ensemble>(queue_, config_);
    client_ = ensemble_->MakeSyncClient(0);
    root_ = ensemble_->root();
  }

  FileHandle CreateFile(const std::string& name) {
    CreateRes res = client_->Create(root_, name).value();
    EXPECT_EQ(res.status, Nfsstat3::kOk);
    return *res.object;
  }

  EventQueue queue_;
  EnsembleConfig config_;
  std::unique_ptr<Ensemble> ensemble_;
  std::unique_ptr<SyncNfsClient> client_;
  FileHandle root_;
};

TEST_F(EnsembleTest, MountAndStatRoot) {
  Fattr3 attr = client_->Getattr(root_).value();
  EXPECT_EQ(attr.fileid, kRootFileid);
  EXPECT_EQ(attr.type, FileType3::kDir);
}

TEST_F(EnsembleTest, SmallFileRoundTripThroughSfs) {
  const FileHandle fh = CreateFile("small.txt");
  const Bytes data = Pattern(5000);
  ASSERT_EQ(client_->Write(fh, 0, data, StableHow::kUnstable).value().status, Nfsstat3::kOk);
  ReadRes read = client_->Read(fh, 0, 8192).value();
  EXPECT_EQ(read.data, data);
  // The I/O went to a small-file server, not a storage node or dir server.
  const OpCounters counters = ensemble_->AggregateCounters();
  EXPECT_GE(counters.Get("routed_sfs"), 2u);
  uint64_t sfs_files = 0;
  for (size_t i = 0; i < ensemble_->num_small_file_servers(); ++i) {
    sfs_files += ensemble_->small_file_server(i).file_count();
  }
  EXPECT_EQ(sfs_files, 1u);
}

TEST_F(EnsembleTest, LargeFileStripesAcrossStorageNodes) {
  const FileHandle fh = CreateFile("big.bin");
  const Bytes data = Pattern(1 << 20);  // 1MB
  for (size_t off = 0; off < data.size(); off += 32768) {
    ASSERT_EQ(client_
                  ->Write(fh, off, ByteSpan(data.data() + off, 32768),
                          StableHow::kUnstable)
                  .value()
                  .status,
              Nfsstat3::kOk);
  }
  ASSERT_EQ(client_->Commit(fh).value().status, Nfsstat3::kOk);

  // Read everything back through the ensemble.
  Bytes got;
  for (size_t off = 0; off < data.size(); off += 32768) {
    ReadRes read = client_->Read(fh, off, 32768).value();
    ASSERT_EQ(read.status, Nfsstat3::kOk);
    got.insert(got.end(), read.data.begin(), read.data.end());
  }
  EXPECT_EQ(got, data);

  // Bulk blocks (>= 64KB) really landed on multiple storage nodes.
  size_t nodes_with_data = 0;
  for (size_t i = 0; i < ensemble_->num_storage_nodes(); ++i) {
    if (ensemble_->storage_node(i).store().object_count() > 0) {
      ++nodes_with_data;
    }
  }
  EXPECT_GE(nodes_with_data, 2u);
}

TEST_F(EnsembleTest, AttributesStayFreshThroughIoPath) {
  const FileHandle fh = CreateFile("fresh");
  const Bytes data = Pattern(10000);
  ASSERT_EQ(client_->Write(fh, 0, data, StableHow::kUnstable).value().status, Nfsstat3::kOk);
  // getattr routes to the directory server, which has NOT yet seen the size
  // change; the µproxy's attribute cache must patch the reply.
  Fattr3 attr = client_->Getattr(fh).value();
  EXPECT_EQ(attr.size, 10000u);
}

TEST_F(EnsembleTest, AttrWritebackReachesDirServer) {
  const FileHandle fh = CreateFile("wb");
  ASSERT_EQ(client_->Write(fh, 0, Pattern(4242), StableHow::kUnstable).value().status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Commit(fh).value().status, Nfsstat3::kOk);
  queue_.RunUntilIdle();
  // The authoritative attr cell now reflects the size, without patching.
  const AttrCell* cell =
      ensemble_->dir_server(SiteOfFileid(fh.fileid())).store().FindAttr(fh.fileid());
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->attr.size, 4242u);
}

TEST_F(EnsembleTest, DeepPathsAndListing) {
  VolumeClient volume(ensemble_->client_host(0), queue_, ensemble_->virtual_server(), root_);
  ASSERT_TRUE(volume.MkdirAll("/a/b/c").ok());
  ASSERT_TRUE(volume.WriteFile("/a/b/c/file.txt", Pattern(100)).ok());
  EXPECT_EQ(volume.ReadFile("/a/b/c/file.txt").value(), Pattern(100));
  EXPECT_EQ(volume.List("/a/b").value(), std::vector<std::string>{"c"});
  EXPECT_EQ(volume.Stat("/a/b/c/file.txt").value().size, 100u);
}

TEST_F(EnsembleTest, RemoveReclaimsDataEverywhere) {
  const FileHandle fh = CreateFile("doomed");
  // Both small (below threshold) and bulk (above threshold) data.
  ASSERT_EQ(client_->Write(fh, 0, Pattern(1000), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Write(fh, 1 << 20, Pattern(32768), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Remove(root_, "doomed").value().status, Nfsstat3::kOk);
  queue_.RunUntilIdle();  // µproxy fan-out + coordinator completion

  for (size_t i = 0; i < ensemble_->num_small_file_servers(); ++i) {
    EXPECT_EQ(ensemble_->small_file_server(i).LocalSize(fh.fileid()), 0u);
  }
  EXPECT_EQ(client_->Read(fh, 1 << 20, 100).value().count, 0u);
  EXPECT_EQ(ensemble_->coordinator(0).pending_intents(), 0u);
}

TEST_F(EnsembleTest, TruncatePropagatesToDataServers) {
  const FileHandle fh = CreateFile("shrink");
  ASSERT_EQ(client_->Write(fh, 1 << 20, Pattern(32768), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  SetattrArgs args;
  args.object = fh;
  args.new_attributes.size = 0;
  ASSERT_EQ(client_->Setattr(args).value().status, Nfsstat3::kOk);
  queue_.RunUntilIdle();
  EXPECT_EQ(client_->Read(fh, 1 << 20, 100).value().count, 0u);
}

TEST_F(EnsembleTest, SoftStateLossIsHarmless) {
  const FileHandle fh = CreateFile("resilient");
  ensemble_->uproxy(0).DropSoftState();
  ASSERT_EQ(client_->Write(fh, 0, Pattern(100), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  ensemble_->uproxy(0).DropSoftState();
  EXPECT_EQ(client_->Read(fh, 0, 100).value().data, Pattern(100));
}

TEST_F(EnsembleTest, MultipleClientsShareOneVolume) {
  EnsembleConfig config;
  config.num_clients = 2;
  EventQueue queue;
  Ensemble ensemble(queue, config);
  auto alice = ensemble.MakeSyncClient(0);
  auto bob = ensemble.MakeSyncClient(1);
  const FileHandle root = ensemble.root();

  CreateRes created = alice->Create(root, "shared").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  ASSERT_EQ(alice->Write(*created.object, 0, Pattern(64), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);

  // Bob sees Alice's file through his own µproxy.
  LookupRes found = bob->Lookup(root, "shared").value();
  ASSERT_EQ(found.status, Nfsstat3::kOk);
  EXPECT_EQ(bob->Read(found.object, 0, 64).value().data, Pattern(64));
}

TEST_F(EnsembleTest, RoutingDistributionCounters) {
  for (int i = 0; i < 10; ++i) {
    const FileHandle fh = CreateFile("file" + std::to_string(i));
    ASSERT_EQ(client_->Write(fh, 0, Pattern(100), StableHow::kUnstable).value().status,
              Nfsstat3::kOk);
  }
  const OpCounters counters = ensemble_->AggregateCounters();
  EXPECT_GE(counters.Get("routed_dir"), 10u);
  EXPECT_GE(counters.Get("routed_sfs"), 10u);
  EXPECT_EQ(counters.Get("pass_through"), 0u);
}

// --- mirrored striping ---

class MirroredTest : public EnsembleTest {
 protected:
  static EnsembleConfig MirrorConfig() {
    EnsembleConfig config;
    config.default_replication = 2;
    config.num_storage_nodes = 4;
    config.num_small_file_servers = 0;  // exercise pure bulk path
    return config;
  }
  MirroredTest() : EnsembleTest(MirrorConfig()) {}
};

TEST_F(MirroredTest, WritesAreReplicated) {
  const FileHandle fh = CreateFile("mirrored");
  ASSERT_EQ(fh.replication(), 2);
  const Bytes data = Pattern(32768);
  WriteRes res = client_->Write(fh, 0, data, StableHow::kFileSync).value();
  ASSERT_EQ(res.status, Nfsstat3::kOk);
  EXPECT_EQ(res.count, 32768u);

  // Two storage nodes hold the block.
  size_t holders = 0;
  for (size_t i = 0; i < ensemble_->num_storage_nodes(); ++i) {
    Bytes probe;
    SyncNfsClient direct(ensemble_->client_host(0), queue_,
                         ensemble_->storage_node(i).endpoint());
    ReadRes read = direct.Read(fh, 0, 32768).value();
    if (read.status == Nfsstat3::kOk && read.data == data) {
      ++holders;
    }
  }
  EXPECT_EQ(holders, 2u);
  EXPECT_GE(ensemble_->AggregateCounters().Get("mirrored_writes"), 1u);
}

TEST_F(MirroredTest, SurvivesSingleNodeFailure) {
  const FileHandle fh = CreateFile("durable");
  const Bytes data = Pattern(2 * 32768);
  for (size_t off = 0; off < data.size(); off += 32768) {
    ASSERT_EQ(client_
                  ->Write(fh, off, ByteSpan(data.data() + off, 32768), StableHow::kFileSync)
                  .value()
                  .status,
              Nfsstat3::kOk);
  }

  // Kill the replica that serves block 0 reads, then read through the other.
  const uint32_t primary = ensemble_->uproxy(0).StripeSite(fh, 0, 0);
  ensemble_->storage_node(primary).Fail();

  // A direct read from the surviving replica of block 0 still works.
  const uint32_t backup = ensemble_->uproxy(0).StripeSite(fh, 0, 1);
  SyncNfsClient direct(ensemble_->client_host(0), queue_,
                       ensemble_->storage_node(backup).endpoint());
  ReadRes read = direct.Read(fh, 0, 32768).value();
  EXPECT_EQ(read.status, Nfsstat3::kOk);
  EXPECT_EQ(read.data, Bytes(data.begin(), data.begin() + 32768));
}

// --- packet loss end to end ---

TEST(EnsembleLossTest, LossyNetworkStillCorrect) {
  EnsembleConfig config;
  config.loss_rate = 0.05;
  EventQueue queue;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);
  const FileHandle root = ensemble.root();

  for (int i = 0; i < 20; ++i) {
    CreateRes created = client->Create(root, "lossy" + std::to_string(i)).value();
    ASSERT_EQ(created.status, Nfsstat3::kOk) << i;
    ASSERT_EQ(client->Write(*created.object, 0, Pattern(100, static_cast<uint8_t>(i)),
                            StableHow::kFileSync)
                  .value()
                  .status,
              Nfsstat3::kOk);
  }
  for (int i = 0; i < 20; ++i) {
    LookupRes found = client->Lookup(root, "lossy" + std::to_string(i)).value();
    ASSERT_EQ(found.status, Nfsstat3::kOk);
    EXPECT_EQ(client->Read(found.object, 0, 100).value().data,
              Pattern(100, static_cast<uint8_t>(i)));
  }
}

// --- name hashing end to end ---

class NameHashEnsembleTest : public EnsembleTest {
 protected:
  static EnsembleConfig HashConfig() {
    EnsembleConfig config;
    config.name_policy = NamePolicy::kNameHashing;
    config.num_dir_servers = 3;
    return config;
  }
  NameHashEnsembleTest() : EnsembleTest(HashConfig()) {}
};

TEST_F(NameHashEnsembleTest, CreateLookupReaddir) {
  for (int i = 0; i < 30; ++i) {
    CreateFile("hashed" + std::to_string(i));
  }
  // Entries scattered over all three dir servers.
  size_t sites_with_entries = 0;
  for (size_t i = 0; i < ensemble_->num_dir_servers(); ++i) {
    if (ensemble_->dir_server(i).store().CountDir(kRootFileid) > 0) {
      ++sites_with_entries;
    }
  }
  EXPECT_EQ(sites_with_entries, 3u);

  // Lookups and a gathered readdir both work through the µproxy.
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(client_->Lookup(root_, "hashed" + std::to_string(i)).value().status,
              Nfsstat3::kOk);
  }
  std::vector<DirEntry> all = client_->ReadWholeDir(root_).value();
  EXPECT_EQ(all.size(), 30u);
}

TEST_F(NameHashEnsembleTest, RenameAndRemoveAcrossSites) {
  CreateFile("start");
  ASSERT_EQ(client_->Rename(root_, "start", root_, "finish").value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Lookup(root_, "start").value().status, Nfsstat3::kErrNoent);
  EXPECT_EQ(client_->Lookup(root_, "finish").value().status, Nfsstat3::kOk);
  ASSERT_EQ(client_->Remove(root_, "finish").value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Lookup(root_, "finish").value().status, Nfsstat3::kErrNoent);
}

// --- dir server failover with WAL recovery, through the µproxy ---

TEST_F(EnsembleTest, DirServerCrashRecoveryEndToEnd) {
  const FileHandle fh = CreateFile("persistent");
  ensemble_->dir_server(0).FlushLog();
  queue_.RunUntilIdle();

  ensemble_->dir_server(0).Fail();
  ensemble_->dir_server(0).Restart();
  queue_.RunUntilIdle();

  LookupRes found = client_->Lookup(root_, "persistent").value();
  ASSERT_EQ(found.status, Nfsstat3::kOk);
  EXPECT_EQ(found.object, fh);
}

// --- block-map (dynamic placement) mode ---

TEST(EnsembleBlockMapTest, DynamicPlacementRoundTrips) {
  EnsembleConfig config;
  config.use_block_maps = true;
  config.num_small_file_servers = 0;
  config.num_storage_nodes = 4;
  EventQueue queue;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);

  CreateRes created = client->Create(ensemble.root(), "mapped").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  const FileHandle fh = *created.object;
  const Bytes data = Pattern(4 * 32768);
  for (size_t off = 0; off < data.size(); off += 32768) {
    ASSERT_EQ(client->Write(fh, off, ByteSpan(data.data() + off, 32768), StableHow::kFileSync)
                  .value()
                  .status,
              Nfsstat3::kOk);
  }
  Bytes got;
  for (size_t off = 0; off < data.size(); off += 32768) {
    ReadRes read = client->Read(fh, off, 32768).value();
    ASSERT_EQ(read.status, Nfsstat3::kOk);
    got.insert(got.end(), read.data.begin(), read.data.end());
  }
  EXPECT_EQ(got, data);
  EXPECT_GT(ensemble.coordinator(0).maps_assigned(), 0u);
  EXPECT_GE(ensemble.AggregateCounters().Get("map_fetches"), 1u);
}

}  // namespace
}  // namespace slice
