// Packet-level µproxy tests: everything here asserts on real wire bytes —
// checksum integrity across rewrites, in-place attribute patching, pass-
// through of foreign traffic, pending-record hygiene, and writeback timing.
#include <gtest/gtest.h>

#include "src/slice/ensemble.h"

namespace slice {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 1) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 131);
  }
  return data;
}

// A wire sniffer interposed one hop past the µproxy: attaches as the handler
// of a fake peer host and records all packets it receives.
class WireTest : public ::testing::Test {
 protected:
  WireTest() {
    EnsembleConfig config;
    config.num_dir_servers = 2;
    config.num_small_file_servers = 1;
    config.num_storage_nodes = 2;
    ensemble_ = std::make_unique<Ensemble>(queue_, config);
    client_ = ensemble_->MakeSyncClient(0);
    root_ = ensemble_->root();
  }

  EventQueue queue_;
  std::unique_ptr<Ensemble> ensemble_;
  std::unique_ptr<SyncNfsClient> client_;
  FileHandle root_;
};

TEST_F(WireTest, RewrittenRequestsCarryValidChecksums) {
  // Tap the dir server's host: every packet arriving must checksum-verify
  // even though the µproxy rewrote its destination in place.
  class Sniffer : public PacketTap {
   public:
    explicit Sniffer(Network& net) : net_(net) {}
    void HandleOutbound(Packet&& pkt) override { net_.Inject(std::move(pkt)); }
    void HandleInbound(Packet&& pkt) override {
      checked += pkt.VerifyChecksums() ? 1 : 0;
      seen += 1;
      net_.DeliverLocal(pkt.dst_addr(), std::move(pkt));
    }
    int seen = 0;
    int checked = 0;

   private:
    Network& net_;
  };
  Sniffer sniffer(ensemble_->network());
  ensemble_->network().InstallTap(ensemble_->dir_server(0).addr(), &sniffer);

  ASSERT_EQ(client_->Create(root_, "wired").value().status, Nfsstat3::kOk);
  ASSERT_EQ(client_->Lookup(root_, "wired").value().status, Nfsstat3::kOk);
  ensemble_->network().RemoveTap(ensemble_->dir_server(0).addr());

  EXPECT_GT(sniffer.seen, 0);
  EXPECT_EQ(sniffer.seen, sniffer.checked) << "every rewritten packet verified";
}

TEST_F(WireTest, RepliesArriveFromVirtualServer) {
  // The client never learns physical addresses: replies must appear to come
  // from the virtual endpoint (source rewritten + checksums fixed).
  class Sniffer : public PacketTap {
   public:
    explicit Sniffer(Network& net, Endpoint expect) : net_(net), expect_(expect) {}
    void HandleOutbound(Packet&& pkt) override { net_.Inject(std::move(pkt)); }
    void HandleInbound(Packet&& pkt) override {
      // Runs *before* the µproxy? No: taps are exclusive. This sniffer is
      // never installed on the client (the µproxy owns that slot); instead
      // we verify at the client socket via the NfsClient result below.
      net_.DeliverLocal(pkt.dst_addr(), std::move(pkt));
    }

   private:
    Network& net_;
    Endpoint expect_;
  };
  // Socket-level check: bind a raw socket on the client host and issue a raw
  // RPC to the virtual server; the reply's source must be the virtual addr.
  Host& host = ensemble_->client_host(0);
  Endpoint reply_src{};
  const NetPort port = host.Bind(0, [&](Packet&& pkt) { reply_src = pkt.src(); });

  RpcCall call;
  call.xid = 4242;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kGetattr);
  XdrEncoder args;
  GetattrArgs{root_}.Encode(args);
  call.args = args.Take();
  host.Send(Packet::MakeUdp(Endpoint{host.addr(), port}, ensemble_->virtual_server(),
                            call.Encode()));
  queue_.RunUntilIdle();

  EXPECT_TRUE(reply_src == ensemble_->virtual_server())
      << "got " << EndpointToString(reply_src);
  host.Unbind(port);
}

TEST_F(WireTest, PatchedAttributesSurviveChecksumVerification) {
  // Write through the small-file path, then getattr via the dir server: the
  // µproxy patches size/mtime into the reply payload in place. The client's
  // RPC stack already decoded it — here we assert the patched packet is
  // byte-consistent by checking the decoded result AND that no checksum
  // error dropped it (a bad patch would surface as a timeout).
  CreateRes created = client_->Create(root_, "patched").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  ASSERT_EQ(client_->Write(*created.object, 0, Pattern(7777), StableHow::kUnstable)
                .value()
                .status,
            Nfsstat3::kOk);
  Fattr3 attr = client_->Getattr(*created.object).value();
  EXPECT_EQ(attr.size, 7777u);
  EXPECT_GE(ensemble_->AggregateCounters().Get("attrs_patched"), 1u);
}

TEST_F(WireTest, NonNfsTrafficPassesThrough) {
  // A UDP datagram to the virtual address that is not a valid NFS call must
  // be forwarded untouched (and dropped by the network, since the virtual
  // address is not attached) — not crash the µproxy.
  Host& host = ensemble_->client_host(0);
  const NetPort port = host.Bind(0, [](Packet&&) {});
  Bytes junk(64, 0xee);
  host.Send(Packet::MakeUdp(Endpoint{host.addr(), port},
                            Endpoint{ensemble_->virtual_server().addr, 9}, junk));
  // Garbled "RPC" to the NFS port.
  host.Send(Packet::MakeUdp(Endpoint{host.addr(), port}, ensemble_->virtual_server(), junk));
  queue_.RunUntilIdle();
  EXPECT_GE(ensemble_->AggregateCounters().Get("pass_through"), 1u);
  // Ensemble still healthy.
  EXPECT_EQ(client_->Getattr(root_).value().fileid, kRootFileid);
  host.Unbind(port);
}

TEST_F(WireTest, PendingRecordsDrainAfterQuiescence) {
  for (int i = 0; i < 25; ++i) {
    ASSERT_EQ(client_->Create(root_, "p" + std::to_string(i)).value().status, Nfsstat3::kOk);
  }
  queue_.RunUntilIdle();
  EXPECT_EQ(ensemble_->uproxy(0).pending_count(), 0u)
      << "soft state must not accumulate";
}

TEST_F(WireTest, AttrWritebackConvergesWithoutCommit) {
  // Even with no client commit, the periodic writeback timer pushes dirty
  // attributes to the directory server within the writeback interval.
  CreateRes created = client_->Create(root_, "lazy").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  ASSERT_EQ(client_->Write(*created.object, 0, Pattern(600), StableHow::kUnstable)
                .value()
                .status,
            Nfsstat3::kOk);
  const uint64_t fileid = created.object->fileid();
  // Not yet at the dir server...
  const AttrCell* cell =
      ensemble_->dir_server(SiteOfFileid(fileid)).store().FindAttr(fileid);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->attr.size, 0u);
  // ...but after the timer fires it is.
  queue_.RunUntil(queue_.now() + FromSeconds(3));
  queue_.RunUntilIdle();
  cell = ensemble_->dir_server(SiteOfFileid(fileid)).store().FindAttr(fileid);
  ASSERT_NE(cell, nullptr);
  EXPECT_EQ(cell->attr.size, 600u);
}

TEST_F(WireTest, RoutingTableReloadRedistributesNames) {
  // Reconfiguration: reload the µproxy's directory table so name-hashed
  // slots spread over both servers; fileID-keyed ops still follow fixed
  // placement and keep working.
  CreateRes created = client_->Create(root_, "stable-name").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);

  Uproxy& proxy = ensemble_->uproxy(0);
  std::vector<Endpoint> servers{ensemble_->dir_server(0).endpoint(),
                                ensemble_->dir_server(1).endpoint()};
  proxy.ReloadDirServers(servers);
  // Rebind half the logical slots to server 1 explicitly.
  for (uint32_t slot = 0; slot < proxy.dir_table().logical_slots(); slot += 2) {
    proxy.dir_table().Rebind(slot, 1);
  }
  // Fixed-placement ops still route by embedded site: lookups and getattrs
  // keep succeeding after the reload.
  EXPECT_EQ(client_->Lookup(root_, "stable-name").value().status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Getattr(*created.object).value().fileid, created.object->fileid());
}

TEST_F(WireTest, DuplicateClientRequestsAreIdempotent) {
  // Send the same CREATE call twice, back to back, through the µproxy (as a
  // retransmitting client would): exactly one file results, and both calls
  // get answers (the second from the server's duplicate request cache).
  Host& host = ensemble_->client_host(0);
  int replies = 0;
  const NetPort port = host.Bind(0, [&](Packet&&) { ++replies; });

  RpcCall call;
  call.xid = 777;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(NfsProc::kCreate);
  XdrEncoder args;
  CreateArgs cargs;
  cargs.dir = root_;
  cargs.name = "only-once";
  cargs.mode = CreateMode::kGuarded;  // second execution would EEXIST
  cargs.Encode(args);
  call.args = args.Take();
  const Bytes wire = call.Encode();

  host.Send(Packet::MakeUdp(Endpoint{host.addr(), port}, ensemble_->virtual_server(), wire));
  host.Send(Packet::MakeUdp(Endpoint{host.addr(), port}, ensemble_->virtual_server(), wire));
  queue_.RunUntilIdle();

  EXPECT_GE(replies, 1);
  // Exactly one entry exists and it was created OK (no EEXIST surfaced to a
  // decoded retry — check via lookup).
  EXPECT_EQ(client_->Lookup(root_, "only-once").value().status, Nfsstat3::kOk);
  host.Unbind(port);
}

}  // namespace
}  // namespace slice
