// SLO engine tests: multi-window burn-rate raise/clear hysteresis against
// synthetic tenant traffic, exemplar capture (the alert's trace id is the
// tenant's worst tail request), the min-ops guard, the disabled path, and
// end-to-end same-seed determinism of the tenant plane — two tenanted runs
// (and a pool-off A/B) must export byte-identical tenant metrics JSON and
// flight dumps.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/packet_pool.h"
#include "src/obs/metrics_export.h"
#include "src/obs/slo.h"
#include "src/slice/ensemble.h"
#include "src/workload/sfs_gen.h"

namespace slice {
namespace {

using obs::EventCode;
using obs::Metrics;
using obs::SloAlert;
using obs::SloEngine;
using obs::SloParams;
using obs::TenantInstruments;
using obs::TenantOpClass;

// Test params sized for hand-computable burns: 5% budget, 3/8 windows,
// 2-scrape raise/clear streaks, 4-op floor.
SloParams TestParams() {
  SloParams params;
  params.enabled = true;
  params.error_budget_ppm = 50000;
  params.latency_threshold = FromMillis(25);
  params.fast_windows = 3;
  params.slow_windows = 8;
  params.burn_threshold_milli = 1000;
  params.raise_streak = 2;
  params.clear_streak = 2;
  params.min_ops = 4;
  return params;
}

// Feed `good` fast ops and `bad` errored ops to tenant `t`, then scrape.
void Tick(Metrics& metrics, SloEngine& engine, SimTime& now, uint32_t t, int good, int bad,
          uint64_t bad_trace = 0) {
  TenantInstruments* ti = metrics.Tenant(t);
  ASSERT_NE(ti, nullptr);
  for (int i = 0; i < good; ++i) {
    ti->Account(TenantOpClass::kRead, 4096, FromMicros(200), /*trace_id=*/0, now,
                /*error=*/false);
  }
  for (int i = 0; i < bad; ++i) {
    ti->Account(TenantOpClass::kWrite, 4096, FromMillis(60), bad_trace, now, /*error=*/true);
  }
  now += FromMillis(100);
  engine.OnScrape(now);
}

TEST(SloEngineTest, RaiseAndClearHysteresis) {
  Metrics metrics;
  metrics.ConfigureTenants(2, FromMillis(25));
  SloEngine engine(metrics, TestParams());
  SimTime now = 0;

  // Scrape 1 is the baseline snapshot: no delta window yet, no alert.
  Tick(metrics, engine, now, 1, 10, 0);
  EXPECT_EQ(engine.alerts().size(), 0u);
  EXPECT_FALSE(engine.burning(1));

  // Burning hard (5 bad / 10 ops per window = 10x the allowed rate) must
  // survive raise_streak=2 scrapes before the edge fires — one hot scrape
  // is not an incident.
  Tick(metrics, engine, now, 1, 5, 5);
  EXPECT_EQ(engine.alerts().size(), 0u) << "one hot scrape must not raise";
  EXPECT_GE(engine.fast_burn_milli(1), 1000);
  Tick(metrics, engine, now, 1, 5, 5);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_TRUE(engine.alerts()[0].raise);
  EXPECT_EQ(engine.alerts()[0].tenant, 1u);
  EXPECT_GE(engine.alerts()[0].fast_milli, 1000);
  EXPECT_GE(engine.alerts()[0].slow_milli, 1000);
  EXPECT_TRUE(engine.burning(1));
  EXPECT_EQ(engine.active_burns(), 1u);

  // Still burning: no duplicate raise edge.
  Tick(metrics, engine, now, 1, 5, 5);
  EXPECT_EQ(engine.alerts().size(), 1u);

  // Calm traffic: the fast window still covers hot scrapes at first, so the
  // clear must wait for the window to slide past them AND clear_streak calm
  // scrapes — then exactly one clear edge.
  for (int i = 0; i < 6 && engine.burning(1); ++i) {
    Tick(metrics, engine, now, 1, 10, 0);
  }
  ASSERT_EQ(engine.alerts().size(), 2u);
  EXPECT_FALSE(engine.alerts()[1].raise);
  EXPECT_FALSE(engine.burning(1));
  EXPECT_EQ(engine.active_burns(), 0u);

  // The quiet tenant never alerted.
  for (const SloAlert& alert : engine.alerts()) {
    EXPECT_EQ(alert.tenant, 1u);
  }
}

TEST(SloEngineTest, AlertCarriesWorstExemplarTrace) {
  Metrics metrics;
  metrics.ConfigureTenants(1, FromMillis(25));
  SloEngine engine(metrics, TestParams());
  SimTime now = 0;

  Tick(metrics, engine, now, 1, 10, 0);
  // The bad ops carry trace 777; it is the slowest observation, so the ring
  // retains it and the raise edge links to it.
  Tick(metrics, engine, now, 1, 5, 5, /*bad_trace=*/777);
  Tick(metrics, engine, now, 1, 5, 5, /*bad_trace=*/777);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].trace_id, 777u);
}

TEST(SloEngineTest, MinOpsGuardSuppressesThinWindows) {
  Metrics metrics;
  metrics.ConfigureTenants(1, FromMillis(25));
  SloParams params = TestParams();
  params.min_ops = 50;  // far above the traffic below
  SloEngine engine(metrics, params);
  SimTime now = 0;

  Tick(metrics, engine, now, 1, 2, 0);
  // 100% errors, but only 2 ops per scrape: the floor keeps it quiet.
  for (int i = 0; i < 6; ++i) {
    Tick(metrics, engine, now, 1, 0, 2);
  }
  EXPECT_EQ(engine.alerts().size(), 0u);
  EXPECT_EQ(engine.fast_burn_milli(1), 0);
}

TEST(SloEngineTest, BurnEdgesLandInEventLog) {
  Metrics metrics;
  metrics.ConfigureTenants(1, FromMillis(25));
  SloEngine engine(metrics, TestParams());
  obs::EventLogParams log_params;
  log_params.enabled = true;
  obs::EventLog log(log_params);
  engine.set_eventlog(&log);
  SimTime now = 0;

  Tick(metrics, engine, now, 1, 10, 0);
  Tick(metrics, engine, now, 1, 5, 5, /*bad_trace=*/42);
  Tick(metrics, engine, now, 1, 5, 5, /*bad_trace=*/42);
  for (int i = 0; i < 6 && engine.burning(1); ++i) {
    Tick(metrics, engine, now, 1, 10, 0);
  }

  bool saw_burn = false, saw_ok = false;
  for (const obs::Event& event : log.Collect()) {
    if (event.code == EventCode::kSloBurn) {
      saw_burn = true;
      EXPECT_EQ(event.host, obs::kSloHost);
      EXPECT_EQ(event.trace_id, 42u);
      EXPECT_EQ(event.detail_view(), "tenant1");
    }
    if (event.code == EventCode::kSloOk) {
      saw_ok = true;
    }
  }
  EXPECT_TRUE(saw_burn);
  EXPECT_TRUE(saw_ok);
}

TEST(SloEngineTest, DisabledEngineIsInert) {
  Metrics metrics;
  metrics.ConfigureTenants(1, FromMillis(25));
  SloParams params = TestParams();
  params.enabled = false;
  SloEngine engine(metrics, params);
  SimTime now = 0;

  for (int i = 0; i < 8; ++i) {
    Tick(metrics, engine, now, 1, 0, 10);
  }
  EXPECT_EQ(engine.alerts().size(), 0u);
  EXPECT_FALSE(engine.burning(1));
  EXPECT_EQ(engine.fast_burn_milli(1), 0);
}

TEST(ExemplarRingTest, KeepsTheSlowestObservations) {
  obs::ExemplarRing ring;
  // 6 observations, capacity 4: the two fastest must be evicted.
  const SimTime lats[] = {FromMillis(5), FromMillis(50), FromMillis(1), FromMillis(30),
                          FromMillis(40), FromMillis(20)};
  for (size_t i = 0; i < 6; ++i) {
    ring.Observe(/*at=*/SimTime(i), lats[i], /*trace_id=*/100 + i,
                 obs::TenantOpClass::kWrite);
  }
  EXPECT_EQ(ring.size(), obs::ExemplarRing::kCapacity);
  std::vector<uint64_t> traces;
  for (size_t i = 0; i < ring.size(); ++i) {
    traces.push_back(ring.at(i).trace_id);
  }
  // Survivors: 50ms (101), 30ms (103), 40ms (104), 20ms (105).
  EXPECT_EQ(std::count(traces.begin(), traces.end(), 101u), 1);
  EXPECT_EQ(std::count(traces.begin(), traces.end(), 103u), 1);
  EXPECT_EQ(std::count(traces.begin(), traces.end(), 104u), 1);
  EXPECT_EQ(std::count(traces.begin(), traces.end(), 105u), 1);
  EXPECT_EQ(ring.Worst().trace_id, 101u);
  EXPECT_EQ(ring.Worst().latency, FromMillis(50));
}

// --- end-to-end tenant-plane determinism ---------------------------------

struct TenantRun {
  std::string metrics_json;
  std::string flight_json;
};

// A small tenanted SFS run: 2 tenants split across the generator
// processes, metrics + event log + SLO engine all on.
TenantRun RunTenantedSfs() {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;
  config.num_storage_nodes = 2;
  config.num_small_file_servers = 1;
  config.num_dir_servers = 2;
  config.num_clients = 2;
  config.metrics.enabled = true;
  config.eventlog.enabled = true;
  config.num_tenants = 2;
  config.slo.enabled = true;
  config.dir_slot_metrics = true;
  Ensemble ensemble(queue, config);

  SfsParams params;
  params.offered_ops_per_sec = 400;
  params.num_files = 48;
  params.num_dirs = 8;
  params.num_processes = 4;
  params.num_tenants = 2;
  params.warmup = FromMillis(200);
  params.duration = FromSeconds(1);
  SfsBenchmark bench(ensemble.client_host(0), queue, ensemble.virtual_server(),
                     ensemble.root(), params);
  SLICE_CHECK(bench.Setup().ok());
  bench.Run();

  TenantRun run;
  run.metrics_json = ensemble.ExportMetricsJson();
  run.flight_json = ensemble.ExportFlightJson("test");
  return run;
}

TEST(TenantDeterminismTest, SameSeedSameTenantPlaneBytes) {
  const TenantRun first = RunTenantedSfs();
  const TenantRun second = RunTenantedSfs();
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.flight_json, second.flight_json);
  // The tenant plane actually exported (not vacuously equal).
  EXPECT_NE(first.metrics_json.find("\"tenants\""), std::string::npos);
  EXPECT_NE(first.metrics_json.find("\"tenant_series\""), std::string::npos);
  EXPECT_NE(first.metrics_json.find("\"slo\""), std::string::npos);
  EXPECT_NE(first.flight_json.find("\"tenants\""), std::string::npos);
}

TEST(TenantDeterminismTest, PacketPoolOnOffSameTenantPlaneBytes) {
  ASSERT_TRUE(PacketPool::Enabled());
  const TenantRun pooled = RunTenantedSfs();
  PacketPool::SetEnabled(false);
  const TenantRun unpooled = RunTenantedSfs();
  PacketPool::SetEnabled(true);
  EXPECT_EQ(pooled.metrics_json, unpooled.metrics_json);
  EXPECT_EQ(pooled.flight_json, unpooled.flight_json);
}

}  // namespace
}  // namespace slice
