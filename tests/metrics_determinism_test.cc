// End-to-end determinism and watchdog tests for the metrics plane: two
// same-seed runs — including one with a mid-run storage-node kill — must
// export byte-identical canonical metrics JSON, and the stock saturation
// watchdogs (disk backlog, heartbeat miss, node death) must fire at the
// same sim-times in every run.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/net/packet_pool.h"
#include "src/obs/metrics_export.h"
#include "src/slice/ensemble.h"
#include "src/workload/seqio.h"

namespace slice {
namespace {

bool HasAlert(const std::vector<obs::Alert>& alerts, const std::string& rule, bool raise) {
  for (const obs::Alert& alert : alerts) {
    if (alert.rule == rule && alert.raise == raise) {
      return true;
    }
  }
  return false;
}

// One storage node with a single slow arm (30ms positioning) and FFS-style
// metadata amplification: a sequential write stream outruns the arm by more
// than an order of magnitude, so queued disk work piles up far past the
// 25ms disk_backlog watermark.
struct SlowDiskRun {
  std::string metrics_json;
  uint64_t hash = 0;
  std::vector<obs::Alert> alerts;
};

SlowDiskRun RunSlowDiskScenario() {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;
  config.num_storage_nodes = 1;
  config.num_small_file_servers = 0;  // all I/O goes to the storage node
  config.num_coordinators = 1;
  config.num_clients = 1;
  config.cal.disks_per_node = 1;
  config.cal.disk.avg_position_ms = 30.0;
  config.storage_extra_meta_ios = 3.0;
  config.metrics.enabled = true;
  Ensemble ensemble(queue, config);

  auto client = ensemble.MakeSyncClient(0);
  CreateRes created = client->Create(ensemble.root(), "big").value();
  SLICE_CHECK(created.status == Nfsstat3::kOk);

  SeqIoParams params;
  params.file_bytes = 2u << 20;
  params.write = true;
  bool done = false;
  SeqIoProcess writer(ensemble.client_host(0), queue, ensemble.virtual_server(),
                      *created.object, params, [&] { done = true; });
  writer.Start();
  queue.RunUntilIdle();
  SLICE_CHECK(done);

  SlowDiskRun run;
  run.metrics_json = ensemble.ExportMetricsJson();
  run.hash = ensemble.MetricsHash();
  run.alerts = ensemble.alerts();
  return run;
}

TEST(MetricsDeterminismTest, DiskBacklogWatchdogFiresOnSlowDisk) {
  const SlowDiskRun run = RunSlowDiskScenario();
  EXPECT_TRUE(HasAlert(run.alerts, "disk_backlog", /*raise=*/true))
      << "a single 30ms arm behind a 40MB/s write stream must trip the backlog watchdog";
  EXPECT_NE(run.hash, 0u);
  EXPECT_FALSE(run.metrics_json.empty());
}

TEST(MetricsDeterminismTest, SlowDiskRunsAreByteIdentical) {
  const SlowDiskRun one = RunSlowDiskScenario();
  const SlowDiskRun two = RunSlowDiskScenario();
  EXPECT_EQ(one.metrics_json, two.metrics_json)
      << "same-seed runs must export byte-identical metrics JSON";
  EXPECT_EQ(one.hash, two.hash);
}

// Full ensemble with the control plane on; storage node 2 is killed mid-run.
// The heartbeat_miss watchdog raises while the node is silent-but-alive,
// node_dead raises once the failure detector declares it, and heartbeat_miss
// clears at that handoff.
struct KillRun {
  std::string metrics_json;
  std::string prometheus;
  uint64_t hash = 0;
  std::vector<obs::Alert> alerts;
};

KillRun RunStorageKillScenario() {
  EventQueue queue;
  EnsembleConfig config;  // mgmt enabled by default
  config.num_storage_nodes = 4;
  config.num_small_file_servers = 1;
  config.metrics.enabled = true;
  Ensemble ensemble(queue, config);

  // Let heartbeats and a couple of scrapes flow, then kill a storage node
  // and run long past the 500ms failure timeout.
  queue.RunUntil(FromMillis(250));
  ensemble.storage_node(2).Fail();
  queue.RunUntil(FromMillis(2000));

  KillRun run;
  run.metrics_json = ensemble.ExportMetricsJson();
  run.prometheus = ensemble.ExportMetricsText();
  run.hash = ensemble.MetricsHash();
  run.alerts = ensemble.alerts();
  return run;
}

TEST(MetricsDeterminismTest, StorageKillRaisesHeartbeatMissThenNodeDead) {
  const KillRun run = RunStorageKillScenario();
  EXPECT_TRUE(HasAlert(run.alerts, "heartbeat_miss", /*raise=*/true))
      << "the killed node must be seen silent-but-alive before the timeout";
  EXPECT_TRUE(HasAlert(run.alerts, "node_dead", /*raise=*/true))
      << "the failure detector must declare the node dead";
  EXPECT_TRUE(HasAlert(run.alerts, "heartbeat_miss", /*raise=*/false))
      << "heartbeat_miss hands off to node_dead once the node is declared";

  // The edges are ordered: silent-but-alive precedes declared-dead.
  SimTime miss_at = 0;
  SimTime dead_at = 0;
  for (const obs::Alert& alert : run.alerts) {
    if (alert.rule == "heartbeat_miss" && alert.raise && miss_at == 0) {
      miss_at = alert.at;
    }
    if (alert.rule == "node_dead" && alert.raise && dead_at == 0) {
      dead_at = alert.at;
    }
  }
  EXPECT_LT(miss_at, dead_at);
}

TEST(MetricsDeterminismTest, PacketPoolingDoesNotChangeTheMetrics) {
  // Pooling recycles buffers; it must not shift a scrape, a histogram bucket
  // or an alert edge. A/B the same seeded failover run with the pool off
  // (pre-pooling allocation behaviour) and on.
  PacketPool::SetEnabled(false);
  const KillRun unpooled = RunStorageKillScenario();
  PacketPool::SetEnabled(true);
  const KillRun pooled = RunStorageKillScenario();
  EXPECT_EQ(unpooled.metrics_json, pooled.metrics_json)
      << "buffer pooling must be invisible to the metrics export";
  EXPECT_EQ(unpooled.hash, pooled.hash);
  EXPECT_EQ(unpooled.prometheus, pooled.prometheus);
}

TEST(MetricsDeterminismTest, StorageKillRunsAreByteIdentical) {
  const KillRun one = RunStorageKillScenario();
  const KillRun two = RunStorageKillScenario();
  EXPECT_EQ(one.metrics_json, two.metrics_json)
      << "a failover run must still export byte-identical metrics JSON";
  EXPECT_EQ(one.hash, two.hash);
  EXPECT_EQ(one.hash, obs::MetricsContentHash(one.metrics_json));
  EXPECT_EQ(one.prometheus, two.prometheus)
      << "the Prometheus exposition must be deterministic too";
}

}  // namespace
}  // namespace slice
