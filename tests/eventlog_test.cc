// Unit tests for the structured event log and flight recorder (src/obs):
// bounded-ring eviction, severity filtering, the allocation-free disabled
// path, argument capping, merged collection order, and the canonical dump
// serialization (shape, omitted-when-empty fields, content hashing).
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "src/obs/eventlog.h"
#include "src/obs/flight_recorder.h"

// Global allocation counter for the disabled-fast-path test (same idiom as
// obs_test.cc): counts every operator-new in the process, tests measure
// deltas around the calls under scrutiny.
static uint64_t g_news = 0;

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slice {
namespace {

using obs::Event;
using obs::EventCat;
using obs::EventCode;
using obs::EventLog;
using obs::EventLogParams;
using obs::EventRing;
using obs::EventSev;

TEST(EventRingTest, BoundedEviction) {
  EventRing ring(3);
  for (uint64_t i = 0; i < 5; ++i) {
    Event e;
    e.seq = i;
    ring.Push(e);
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.capacity(), 3u);
  EXPECT_EQ(ring.evicted(), 2u);

  // Oldest entries were overwritten; survivors come back oldest-first.
  std::vector<Event> out;
  ring.CopyTo(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].seq, 2u);
  EXPECT_EQ(out[1].seq, 3u);
  EXPECT_EQ(out[2].seq, 4u);
}

TEST(EventLogTest, RecordsAndCollectsInTimeOrder) {
  EventLog log;
  // Two hosts, interleaved times: the merged view must come back ordered by
  // (at, seq) regardless of ring (host) order.
  log.Record(/*host=*/9, /*at=*/30, EventSev::kInfo, EventCat::kMgmt, EventCode::kEpochBump);
  log.Record(/*host=*/2, /*at=*/10, EventSev::kDebug, EventCat::kRoute,
             EventCode::kRouteDecision, /*trace_id=*/77, "route:dir", {{"dst", 4}});
  log.Record(/*host=*/2, /*at=*/30, EventSev::kWarn, EventCat::kRpc, EventCode::kRpcRetransmit);

  std::vector<Event> events = log.Collect();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].at, 10);
  EXPECT_EQ(events[0].host, 2u);
  EXPECT_EQ(events[0].trace_id, 77u);
  EXPECT_EQ(events[0].detail_view(), "route:dir");
  ASSERT_EQ(events[0].nargs, 1u);
  EXPECT_STREQ(events[0].args[0].key, "dst");
  EXPECT_EQ(events[0].args[0].value, 4);
  // Same sim-time: global sequence breaks the tie in mint order.
  EXPECT_EQ(events[1].code, EventCode::kEpochBump);
  EXPECT_EQ(events[2].code, EventCode::kRpcRetransmit);
  EXPECT_LT(events[1].seq, events[2].seq);

  EXPECT_EQ(log.total_recorded(), 3u);
  EXPECT_EQ(log.num_rings(), 2u);
}

TEST(EventLogTest, PerHostRingEviction) {
  EventLogParams params;
  params.ring_capacity = 4;
  EventLog log(params);
  for (int i = 0; i < 10; ++i) {
    log.Record(1, i, EventSev::kInfo, EventCat::kNet, EventCode::kPacketDrop);
  }
  // A second host's ring is independent and un-evicted.
  log.Record(2, 100, EventSev::kInfo, EventCat::kNet, EventCode::kPacketDrop);

  EXPECT_EQ(log.total_recorded(), 11u);
  EXPECT_EQ(log.total_evicted(), 6u);
  std::vector<Event> events = log.Collect();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events.front().at, 6);  // oldest survivor on host 1
  EXPECT_EQ(events.back().host, 2u);
}

TEST(EventLogTest, SeverityFloorFilters) {
  EventLogParams params;
  params.min_severity = EventSev::kWarn;
  EventLog log(params);
  log.Record(1, 0, EventSev::kDebug, EventCat::kRoute, EventCode::kRouteDecision);
  log.Record(1, 1, EventSev::kInfo, EventCat::kMgmt, EventCode::kEpochBump);
  log.Record(1, 2, EventSev::kWarn, EventCat::kRpc, EventCode::kRpcRetransmit);
  log.Record(1, 3, EventSev::kError, EventCat::kMgmt, EventCode::kNodeDead);

  std::vector<Event> events = log.Collect();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].code, EventCode::kRpcRetransmit);
  EXPECT_EQ(events[1].code, EventCode::kNodeDead);
  EXPECT_EQ(log.total_recorded(), 2u);
}

TEST(EventLogTest, DetailAndArgsAreCapped) {
  EventLog log;
  log.Record(1, 0, EventSev::kInfo, EventCat::kRoute, EventCode::kRouteDecision, 0,
             "a-detail-string-well-beyond-the-twenty-byte-cap",
             {{"a", 1}, {"b", 2}, {"c", 3}, {"dropped", 4}});
  std::vector<Event> events = log.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].detail_view().size(), obs::kEventDetailCap - 1);
  EXPECT_EQ(events[0].nargs, obs::kEventMaxArgs);
  EXPECT_STREQ(events[0].args[2].key, "c");
}

TEST(EventLogTest, DisabledPathDoesNotAllocate) {
  EventLogParams params;
  params.enabled = false;
  EventLog log(params);

  const uint64_t before = g_news;
  for (int i = 0; i < 64; ++i) {
    obs::LogEvent(&log, 1, i, EventSev::kError, EventCat::kMgmt, EventCode::kNodeDead,
                  /*trace_id=*/42, "detail", {{"k", i}});
  }
  EXPECT_EQ(g_news, before) << "disabled event logging must not allocate";
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_EQ(log.num_rings(), 0u);

  // The unwired case (null log) is the same single branch.
  const uint64_t before_null = g_news;
  obs::LogEvent(nullptr, 1, 0, EventSev::kError, EventCat::kMgmt, EventCode::kNodeDead);
  EXPECT_EQ(g_news, before_null);

  // Severity-filtered records on an enabled log are equally allocation-free.
  EventLogParams warn_params;
  warn_params.min_severity = EventSev::kWarn;
  EventLog warn_log(warn_params);
  const uint64_t before_filtered = g_news;
  for (int i = 0; i < 64; ++i) {
    obs::LogEvent(&warn_log, 1, i, EventSev::kDebug, EventCat::kRoute,
                  EventCode::kRouteDecision, 0, "route:dir", {{"dst", i}});
  }
  EXPECT_EQ(g_news, before_filtered);
}

TEST(EventLogTest, NamesAreStable) {
  EXPECT_STREQ(obs::EventSevName(EventSev::kWarn), "warn");
  EXPECT_STREQ(obs::EventCatName(EventCat::kFailover), "failover");
  EXPECT_STREQ(obs::EventCodeName(EventCode::kHeartbeatMiss), "heartbeat_miss");
  EXPECT_STREQ(obs::EventCodeName(EventCode::kAdoptBegin), "adopt_begin");
  EXPECT_STREQ(obs::EventCodeName(EventCode::kDrcReplay), "drc_replay");
}

TEST(FlightRecorderTest, DumpShapeAndOmittedFields) {
  EventLog log;
  log.Record(/*host=*/0x0a000001, /*at=*/1500, EventSev::kWarn, EventCat::kMgmt,
             EventCode::kHeartbeatMiss, /*trace_id=*/0xabc, "storage", {{"node", 2}});
  // Minimal event: no detail, no trace, no args — those keys must be omitted
  // from the serialization entirely, not emitted as empty values.
  log.Record(/*host=*/0x0a000002, /*at=*/2000, EventSev::kInfo, EventCat::kMgmt,
             EventCode::kEpochBump);

  const std::string json =
      obs::ExportFlightJson(log, /*at=*/2500, "unit_test", /*inflight_traces=*/{0xabc});
  EXPECT_NE(json.find("\"reason\":\"unit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"recorded\":2"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"heartbeat_miss\""), std::string::npos);
  EXPECT_NE(json.find("\"detail\":\"storage\""), std::string::npos);
  EXPECT_NE(json.find("\"trace\":2748"), std::string::npos);  // 0xabc
  EXPECT_NE(json.find("\"node\":2"), std::string::npos);
  EXPECT_NE(json.find("\"inflight_traces\":[2748]"), std::string::npos);
  // Hosts serialize as dotted quads, same convention as the metrics export.
  EXPECT_NE(json.find("\"host\":\"10.0.0.1\""), std::string::npos);

  // The epoch-bump event carries no optional fields.
  const size_t bump = json.find("\"name\":\"epoch_bump\"");
  ASSERT_NE(bump, std::string::npos);
  const std::string tail = json.substr(bump, 120);
  EXPECT_EQ(tail.find("\"detail\""), std::string::npos);
  EXPECT_EQ(tail.find("\"trace\""), std::string::npos);
  EXPECT_EQ(tail.find("\"args\""), std::string::npos);

  // Hash covers the full export and is deterministic.
  EXPECT_EQ(obs::FlightContentHash(json), obs::FlightContentHash(json));
  EXPECT_NE(obs::FlightContentHash(json), 0u);
  const std::string other = obs::ExportFlightJson(log, 2500, "other_reason", {0xabc});
  EXPECT_NE(obs::FlightContentHash(json), obs::FlightContentHash(other));
}

}  // namespace
}  // namespace slice
