// Unit tests for the µproxy building blocks: routing table, request decode,
// attribute cache, and route selection on a real µproxy instance.
#include <gtest/gtest.h>

#include <set>

#include <unordered_map>

#include "src/common/rng.h"
#include "src/core/attr_cache.h"
#include "src/core/pending_map.h"
#include "src/core/request_decode.h"
#include "src/core/routing_table.h"
#include "src/core/uproxy.h"
#include "src/slice/ensemble.h"

namespace slice {
namespace {

constexpr uint64_t kSecret = 0x51ce2000;

FileHandle RegFh(uint64_t fileid, uint8_t replication = 1) {
  return FileHandle::Make(1, fileid, 1, FileType3::kReg, replication, kSecret);
}
FileHandle DirFh(uint64_t fileid) {
  return FileHandle::Make(1, fileid, 1, FileType3::kDir, 1, kSecret);
}

TEST(RoutingTableTest, RoundRobinFill) {
  std::vector<Endpoint> servers{{1, 1}, {2, 1}, {3, 1}};
  RoutingTable table(9, servers);
  EXPECT_EQ(table.logical_slots(), 9u);
  EXPECT_EQ(table.physical_count(), 3u);
  EXPECT_EQ(table.Lookup(0).addr, 1u);
  EXPECT_EQ(table.Lookup(1).addr, 2u);
  EXPECT_EQ(table.Lookup(3).addr, 1u);
}

TEST(RoutingTableTest, RebindMovesOneSlot) {
  std::vector<Endpoint> servers{{1, 1}, {2, 1}};
  RoutingTable table(4, servers);
  EXPECT_EQ(table.Lookup(0).addr, 1u);
  table.Rebind(0, 1);
  EXPECT_EQ(table.Lookup(0).addr, 2u);
  EXPECT_EQ(table.Lookup(2).addr, 1u);  // others untouched
}

TEST(RoutingTableTest, ReloadRemaps) {
  RoutingTable table(8, {{1, 1}});
  table.Reload({{1, 1}, {2, 1}, {3, 1}, {4, 1}});
  EXPECT_EQ(table.physical_count(), 4u);
  std::set<NetAddr> seen;
  for (uint64_t k = 0; k < 8; ++k) {
    seen.insert(table.Lookup(k).addr);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RoutingTableDeathTest, EmptyTableLookupAborts) {
  RoutingTable table;
  ASSERT_TRUE(table.empty());
  EXPECT_DEATH(table.SlotFor(7), "slots_");
  EXPECT_DEATH(table.Lookup(7), "servers_");
  EXPECT_DEATH(table.ByPhysical(0), "servers_");
}

TEST(RoutingTableTest, EpochStampsAndInstallAssignment) {
  RoutingTable table(4, {{1, 1}, {2, 1}});
  EXPECT_EQ(table.epoch(), 0u);
  table.InstallAssignment(7, {{1, 1}, {2, 1}}, {1, 1, 0, 1});
  EXPECT_EQ(table.epoch(), 7u);
  EXPECT_EQ(table.BySlot(0).addr, 2u);
  EXPECT_EQ(table.BySlot(2).addr, 1u);
  EXPECT_EQ(table.PhysicalIndexOfSlot(3), 1u);
}

TEST(RoutingTableDeathTest, InstallAssignmentRejectsOutOfRangeSlot) {
  RoutingTable table(4, {{1, 1}, {2, 1}});
  EXPECT_DEATH(table.InstallAssignment(2, {{1, 1}, {2, 1}}, {0, 2}), "servers");
}

Bytes EncodeCall(NfsProc proc, const std::function<void(XdrEncoder&)>& args) {
  RpcCall call;
  call.xid = 42;
  call.prog = kNfsProgram;
  call.vers = kNfsVersion;
  call.proc = static_cast<uint32_t>(proc);
  XdrEncoder enc;
  args(enc);
  call.args = enc.Take();
  return call.Encode();
}

TEST(RequestDecodeTest, ReadFields) {
  const Bytes wire = EncodeCall(NfsProc::kRead, [](XdrEncoder& enc) {
    ReadArgs{RegFh(7), 65536, 32768}.Encode(enc);
  });
  DecodedRequest req;
  ASSERT_TRUE(DecodeNfsRequest(wire, &req).ok());
  EXPECT_EQ(req.proc, NfsProc::kRead);
  EXPECT_EQ(req.fh.fileid(), 7u);
  EXPECT_EQ(req.offset, 65536u);
  EXPECT_EQ(req.count, 32768u);
  EXPECT_EQ(req.xid, 42u);
}

TEST(RequestDecodeTest, WriteCarriesStability) {
  const Bytes wire = EncodeCall(NfsProc::kWrite, [](XdrEncoder& enc) {
    WriteArgs args;
    args.file = RegFh(9);
    args.offset = 100;
    args.count = 3;
    args.stable = StableHow::kFileSync;
    args.data = {1, 2, 3};
    args.Encode(enc);
  });
  DecodedRequest req;
  ASSERT_TRUE(DecodeNfsRequest(wire, &req).ok());
  EXPECT_EQ(req.stable, StableHow::kFileSync);
  EXPECT_EQ(req.count, 3u);
}

TEST(RequestDecodeTest, LookupName) {
  const Bytes wire = EncodeCall(NfsProc::kLookup, [](XdrEncoder& enc) {
    DirOpArgs{DirFh(1), "target"}.Encode(enc);
  });
  DecodedRequest req;
  ASSERT_TRUE(DecodeNfsRequest(wire, &req).ok());
  EXPECT_EQ(req.name, "target");
  EXPECT_TRUE(req.fh.IsDir());
}

TEST(RequestDecodeTest, RenameBothPairs) {
  const Bytes wire = EncodeCall(NfsProc::kRename, [](XdrEncoder& enc) {
    RenameArgs{DirFh(1), "a", DirFh(2), "b"}.Encode(enc);
  });
  DecodedRequest req;
  ASSERT_TRUE(DecodeNfsRequest(wire, &req).ok());
  EXPECT_EQ(req.name, "a");
  EXPECT_EQ(req.name2, "b");
  EXPECT_EQ(req.fh2.fileid(), 2u);
}

TEST(RequestDecodeTest, LinkRoutesByDirEntry) {
  const Bytes wire = EncodeCall(NfsProc::kLink, [](XdrEncoder& enc) {
    LinkArgs{RegFh(9), DirFh(1), "alias"}.Encode(enc);
  });
  DecodedRequest req;
  ASSERT_TRUE(DecodeNfsRequest(wire, &req).ok());
  EXPECT_EQ(req.fh.fileid(), 1u);   // the directory
  EXPECT_EQ(req.fh2.fileid(), 9u);  // the file
  EXPECT_EQ(req.name, "alias");
}

TEST(RequestDecodeTest, SetattrSizeExtraction) {
  const Bytes wire = EncodeCall(NfsProc::kSetattr, [](XdrEncoder& enc) {
    SetattrArgs args;
    args.object = RegFh(3);
    args.new_attributes.size = 777;
    args.Encode(enc);
  });
  DecodedRequest req;
  ASSERT_TRUE(DecodeNfsRequest(wire, &req).ok());
  EXPECT_EQ(req.offset, 777u);
  EXPECT_EQ(req.count, 1u);
}

TEST(RequestDecodeTest, NonNfsRejected) {
  RpcCall call;
  call.prog = 200001;  // not NFS
  DecodedRequest req;
  EXPECT_FALSE(DecodeNfsRequest(call.Encode(), &req).ok());
}

TEST(RequestDecodeTest, ReplyPeek) {
  RpcReply reply;
  reply.xid = 77;
  XdrEncoder enc;
  enc.PutUint32(0);
  reply.result = enc.bytes();
  DecodedReply out;
  ASSERT_TRUE(DecodeNfsReply(reply.Encode(), &out).ok());
  EXPECT_EQ(out.xid, 77u);
  EXPECT_EQ(out.stat, RpcAcceptStat::kSuccess);
}

TEST(AttrCacheTest, WriteUpdatesSizeAndDirties) {
  AttrCache cache(16);
  cache.NoteWrite(5, 1000, NfsTime{10, 0});
  const AttrCache::Entry* entry = cache.Find(5);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->attr.size, 1000u);
  EXPECT_TRUE(entry->dirty);
  EXPECT_EQ(cache.DirtyFiles().size(), 1u);
}

TEST(AttrCacheTest, MergeKeepsFresherLocalView) {
  AttrCache cache(16);
  cache.NoteWrite(5, 9999, NfsTime{100, 0});
  Fattr3 server_attr;
  server_attr.fileid = 5;
  server_attr.size = 100;  // stale
  server_attr.mtime = NfsTime{1, 0};
  server_attr.nlink = 3;
  cache.MergeFromReply(5, server_attr);
  const AttrCache::Entry* entry = cache.Find(5);
  EXPECT_EQ(entry->attr.size, 9999u);  // ours wins
  EXPECT_EQ(entry->attr.mtime.seconds, 100u);
  EXPECT_EQ(entry->attr.nlink, 3u);  // server fields adopted
}

TEST(AttrCacheTest, CleanEntryAdoptsServerView) {
  AttrCache cache(16);
  Fattr3 attr;
  attr.fileid = 7;
  attr.size = 123;
  cache.MergeFromReply(7, attr);
  attr.size = 456;
  cache.MergeFromReply(7, attr);
  EXPECT_EQ(cache.Find(7)->attr.size, 456u);
}

TEST(AttrCacheTest, EvictionSurfacesDirtyEntries) {
  AttrCache cache(2);
  cache.NoteWrite(1, 100, NfsTime{1, 0});
  cache.NoteWrite(2, 200, NfsTime{2, 0});
  cache.NoteWrite(3, 300, NfsTime{3, 0});  // evicts 1
  auto evicted = cache.TakeEvictedDirty();
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].first, 1u);
  EXPECT_EQ(evicted[0].second.size, 100u);
  EXPECT_TRUE(cache.TakeEvictedDirty().empty());
}

TEST(AttrCacheTest, MarkCleanStopsWriteback) {
  AttrCache cache(16);
  cache.NoteWrite(1, 100, NfsTime{1, 0});
  cache.MarkClean(1);
  EXPECT_TRUE(cache.DirtyFiles().empty());
}

TEST(AttrCacheTest, NoteReadOnUncachedIsNoop) {
  AttrCache cache(16);
  cache.NoteRead(5, NfsTime{1, 0});
  EXPECT_EQ(cache.Find(5), nullptr);
}

// --- route selection through a real µproxy (tiny ensemble) ---

class RouteSelectionTest : public ::testing::Test {
 protected:
  RouteSelectionTest() {
    EnsembleConfig config;
    config.num_dir_servers = 3;
    config.num_small_file_servers = 2;
    config.num_storage_nodes = 4;
    config.num_coordinators = 1;
    ensemble_ = std::make_unique<Ensemble>(queue_, config);
  }

  Uproxy::RouteDecision Route(const DecodedRequest& req) {
    return ensemble_->uproxy(0).SelectRoute(req);
  }

  EventQueue queue_;
  std::unique_ptr<Ensemble> ensemble_;
};

TEST_F(RouteSelectionTest, SmallIoBelowThreshold) {
  DecodedRequest req;
  req.proc = NfsProc::kRead;
  req.fh = RegFh(MakeFileid(0, 5));
  req.offset = 0;
  req.count = 8192;
  EXPECT_EQ(Route(req).cls, Uproxy::RouteClass::kSmallFile);
  req.offset = 65535;
  EXPECT_EQ(Route(req).cls, Uproxy::RouteClass::kSmallFile);
}

TEST_F(RouteSelectionTest, BulkIoAboveThreshold) {
  DecodedRequest req;
  req.proc = NfsProc::kRead;
  req.fh = RegFh(MakeFileid(0, 5));
  req.offset = 65536;
  EXPECT_EQ(Route(req).cls, Uproxy::RouteClass::kStorage);
}

TEST_F(RouteSelectionTest, StripingSpreadsBlocks) {
  DecodedRequest req;
  req.proc = NfsProc::kRead;
  req.fh = RegFh(MakeFileid(0, 5));
  std::set<uint32_t> nodes;
  for (uint64_t off = 65536; off < 65536 + 8ull * 32768; off += 32768) {
    req.offset = off;
    nodes.insert(Route(req).storage_index);
  }
  EXPECT_EQ(nodes.size(), 4u);  // all four storage nodes hit
}

TEST_F(RouteSelectionTest, MirroredWritesAbsorb) {
  DecodedRequest req;
  req.proc = NfsProc::kWrite;
  req.fh = RegFh(MakeFileid(0, 5), /*replication=*/2);
  req.offset = 1 << 20;
  EXPECT_EQ(Route(req).cls, Uproxy::RouteClass::kMirrorWrite);
}

TEST_F(RouteSelectionTest, MirroredReadsAlternateReplicas) {
  DecodedRequest req;
  req.proc = NfsProc::kRead;
  req.fh = RegFh(MakeFileid(0, 5), /*replication=*/2);
  req.offset = 1 << 20;
  const uint32_t a = Route(req).storage_index;
  req.offset += 32768;
  const uint32_t b = Route(req).storage_index;
  EXPECT_NE(a, b);
}

TEST_F(RouteSelectionTest, NameOpsFollowParentSite) {
  DecodedRequest req;
  req.proc = NfsProc::kLookup;
  req.fh = DirFh(MakeFileid(2, 9));
  req.name = "x";
  EXPECT_TRUE(Route(req).target == ensemble_->dir_server(2).endpoint());
}

TEST_F(RouteSelectionTest, GetattrFollowsEmbeddedSite) {
  DecodedRequest req;
  req.proc = NfsProc::kGetattr;
  req.fh = RegFh(MakeFileid(1, 3));
  EXPECT_TRUE(Route(req).target == ensemble_->dir_server(1).endpoint());
}

TEST_F(RouteSelectionTest, MkdirSwitchingRedirectsSome) {
  DecodedRequest req;
  req.proc = NfsProc::kMkdir;
  req.fh = DirFh(MakeFileid(0, 1));
  int redirected = 0;
  constexpr int kTrials = 400;
  for (int i = 0; i < kTrials; ++i) {
    req.name = "dir" + std::to_string(i);
    if (!(Route(req).target == ensemble_->dir_server(0).endpoint())) {
      ++redirected;
    }
  }
  // p = 0.25, but a redirect can hash back to the parent's own server
  // (1/3 of the time with 3 servers): expect roughly 0.25 * 2/3 ≈ 17%.
  EXPECT_GT(redirected, kTrials / 10);
  EXPECT_LT(redirected, kTrials / 3);
}

TEST_F(RouteSelectionTest, CommitFansOut) {
  DecodedRequest req;
  req.proc = NfsProc::kCommit;
  req.fh = RegFh(MakeFileid(0, 5));
  EXPECT_EQ(Route(req).cls, Uproxy::RouteClass::kMultiCommit);
}

TEST_F(RouteSelectionTest, DeterministicAcrossCalls) {
  DecodedRequest req;
  req.proc = NfsProc::kRead;
  req.fh = RegFh(MakeFileid(0, 123));
  req.offset = 1 << 20;
  const auto first = Route(req);
  for (int i = 0; i < 10; ++i) {
    const auto again = Route(req);
    EXPECT_EQ(again.storage_index, first.storage_index);
    EXPECT_TRUE(again.target == first.target);
  }
}

// --- FlatU64Map (the pending-request table) vs. a reference map ---
//
// Backward-shift deletion is the delicate part: a wrong "stays" predicate
// corrupts probe chains only when clusters wrap the table edge or collide
// densely, so the keys here are drawn from a small range to force both.

TEST(FlatU64MapTest, RandomizedOpsMatchUnorderedMap) {
  Rng rng(0xf1a7);
  FlatU64Map<uint64_t> map(16);
  std::unordered_map<uint64_t, uint64_t> ref;
  for (int step = 0; step < 20000; ++step) {
    const uint64_t key = rng.NextBelow(97);  // dense: forces clusters + wrap
    switch (rng.NextBelow(4)) {
      case 0:
      case 1: {  // insert / overwrite
        const uint64_t value = rng.NextU64();
        auto [slot, inserted] = map.Insert(key);
        EXPECT_EQ(inserted, ref.find(key) == ref.end());
        *slot = value;
        ref[key] = value;
        break;
      }
      case 2: {  // erase
        EXPECT_EQ(map.Erase(key), ref.erase(key) > 0);
        break;
      }
      default: {  // find
        uint64_t* found = map.Find(key);
        auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    ASSERT_EQ(map.size(), ref.size());
  }
  // Full-content check via ForEach, then Clear.
  std::unordered_map<uint64_t, uint64_t> walked;
  map.ForEach([&](uint64_t k, const uint64_t& v) { walked.emplace(k, v); });
  EXPECT_EQ(walked, ref);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), nullptr);
}

TEST(FlatU64MapTest, GrowthPreservesEntriesAndPointersStayValidUntilMutation) {
  FlatU64Map<uint32_t> map(16);
  for (uint64_t k = 0; k < 1000; ++k) {
    *map.Insert(k * 0x9e3779b97f4a7c15ull).first = static_cast<uint32_t>(k);
  }
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    uint32_t* v = map.Find(k * 0x9e3779b97f4a7c15ull);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(*v, k);
  }
}

}  // namespace
}  // namespace slice
