// Unit tests for the coordinator: protocol codecs, intent lifecycle, probe
// timeout recovery (orphaned remove/truncate/commit), block-map assignment,
// and log-based coordinator crash recovery.
#include <gtest/gtest.h>

#include "src/coord/coordinator.h"
#include "src/nfs/nfs_client.h"
#include "src/storage/storage_node.h"

namespace slice {
namespace {

constexpr uint64_t kSecret = 0xc0;
constexpr NetAddr kStorage0 = 0x0a000020;
constexpr NetAddr kStorage1 = 0x0a000021;
constexpr NetAddr kCoordAddr = 0x0a000050;
constexpr NetAddr kClientAddr = 0x0a000001;

TEST(CoordProtoTest, IntentArgsRoundTrip) {
  LogIntentArgs args;
  args.op = IntentOp::kTruncate;
  args.file = FileHandle::Make(1, 42, 1, FileType3::kReg, 1, kSecret);
  args.arg = 12345;
  XdrEncoder enc;
  args.Encode(enc);
  XdrDecoder dec(enc.bytes());
  LogIntentArgs out = LogIntentArgs::Decode(dec).value();
  EXPECT_EQ(out.op, IntentOp::kTruncate);
  EXPECT_EQ(out.file.fileid(), 42u);
  EXPECT_EQ(out.arg, 12345u);
}

TEST(CoordProtoTest, MapResRoundTrip) {
  GetMapRes res;
  res.first_block = 7;
  res.sites = {0, 1, 2, kUnmappedBlock};
  XdrEncoder enc;
  res.Encode(enc);
  XdrDecoder dec(enc.bytes());
  GetMapRes out = GetMapRes::Decode(dec).value();
  EXPECT_EQ(out.first_block, 7u);
  EXPECT_EQ(out.sites, res.sites);
}

TEST(CoordProtoTest, BadIntentOpRejected) {
  XdrEncoder enc;
  enc.PutUint32(99);
  XdrDecoder dec(enc.bytes());
  EXPECT_FALSE(LogIntentArgs::Decode(dec).ok());
}

// A tiny typed client for the coordinator protocol (the µproxy embeds the
// same calls; tests drive them directly).
class CoordClient {
 public:
  CoordClient(Host& host, EventQueue& queue, Endpoint coord)
      : queue_(queue), rpc_(host, queue), coord_(coord) {}

  uint64_t LogIntent(IntentOp op, const FileHandle& file, uint64_t arg = 0) {
    LogIntentArgs args;
    args.op = op;
    args.file = file;
    args.arg = arg;
    XdrEncoder enc;
    args.Encode(enc);
    uint64_t id = 0;
    bool done = false;
    rpc_.Call(coord_, kCoordProgram, kCoordVersion,
              static_cast<uint32_t>(CoordProc::kLogIntent), enc.Take(),
              [&](Status st, const RpcMessageView& reply) {
                done = true;
                if (st.ok()) {
                  XdrDecoder dec(reply.body);
                  id = LogIntentRes::Decode(dec).value().intent_id;
                }
              });
    while (!done && queue_.RunOne()) {
    }
    return id;
  }

  void Complete(uint64_t intent_id) {
    CompleteArgs args;
    args.intent_id = intent_id;
    XdrEncoder enc;
    args.Encode(enc);
    bool done = false;
    rpc_.Call(coord_, kCoordProgram, kCoordVersion,
              static_cast<uint32_t>(CoordProc::kComplete), enc.Take(),
              [&](Status, const RpcMessageView&) { done = true; });
    while (!done && queue_.RunOne()) {
    }
  }

  GetMapRes GetMap(const FileHandle& file, uint64_t first, uint32_t count, bool allocate) {
    GetMapArgs args;
    args.file = file;
    args.first_block = first;
    args.count = count;
    args.allocate = allocate;
    XdrEncoder enc;
    args.Encode(enc);
    GetMapRes out;
    bool done = false;
    rpc_.Call(coord_, kCoordProgram, kCoordVersion,
              static_cast<uint32_t>(CoordProc::kGetMap), enc.Take(),
              [&](Status st, const RpcMessageView& reply) {
                done = true;
                if (st.ok()) {
                  XdrDecoder dec(reply.body);
                  out = GetMapRes::Decode(dec).value();
                }
              });
    while (!done && queue_.RunOne()) {
    }
    return out;
  }

 private:
  EventQueue& queue_;
  RpcClient rpc_;
  Endpoint coord_;
};

class CoordinatorTest : public ::testing::Test {
 protected:
  CoordinatorTest() : net_(queue_, NetworkParams{}) {
    StorageNodeParams snp;
    snp.volume_secret = kSecret;
    storage_.push_back(std::make_unique<StorageNode>(net_, queue_, kStorage0, snp));
    storage_.push_back(std::make_unique<StorageNode>(net_, queue_, kStorage1, snp));

    CoordinatorParams params;
    params.volume_secret = kSecret;
    params.num_storage_sites = 2;
    params.intent_timeout = FromMillis(500);
    params.backing_node = storage_[0]->endpoint();
    params.backing_object =
        FileHandle::Make(1, (0xfcull << 48) | 0, 1, FileType3::kReg, 1, kSecret);
    coord_ = std::make_unique<Coordinator>(
        net_, queue_, kCoordAddr, params,
        std::vector<Endpoint>{storage_[0]->endpoint(), storage_[1]->endpoint()},
        std::vector<Endpoint>{});

    client_host_ = std::make_unique<Host>(net_, kClientAddr);
    coord_client_ = std::make_unique<CoordClient>(*client_host_, queue_, coord_->endpoint());
    nfs_ = std::make_unique<SyncNfsClient>(*client_host_, queue_, storage_[0]->endpoint());
    nfs1_ = std::make_unique<SyncNfsClient>(*client_host_, queue_, storage_[1]->endpoint());
  }

  FileHandle Fh(uint64_t fileid = 5) const {
    return FileHandle::Make(1, fileid, 1, FileType3::kReg, 1, kSecret);
  }

  EventQueue queue_;
  Network net_;
  std::vector<std::unique_ptr<StorageNode>> storage_;
  std::unique_ptr<Coordinator> coord_;
  std::unique_ptr<Host> client_host_;
  std::unique_ptr<CoordClient> coord_client_;
  std::unique_ptr<SyncNfsClient> nfs_;
  std::unique_ptr<SyncNfsClient> nfs1_;
};

TEST_F(CoordinatorTest, IntentLifecycle) {
  const uint64_t id = coord_client_->LogIntent(IntentOp::kRemove, Fh());
  EXPECT_GT(id, 0u);
  EXPECT_EQ(coord_->pending_intents(), 1u);
  coord_client_->Complete(id);
  EXPECT_EQ(coord_->pending_intents(), 0u);
  queue_.RunUntilIdle();
  EXPECT_EQ(coord_->recoveries_run(), 0u);  // probe found nothing to do
}

TEST_F(CoordinatorTest, OrphanedRemoveIsRecovered) {
  // Data exists on both storage nodes.
  Bytes data(1000, 0xaa);
  ASSERT_EQ(nfs_->Write(Fh(), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  ASSERT_EQ(nfs1_->Write(Fh(), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);

  // A µproxy logs a remove intent and then dies (never completes).
  coord_client_->LogIntent(IntentOp::kRemove, Fh());
  queue_.RunUntilIdle();  // probe fires, recovery fans out

  EXPECT_EQ(coord_->recoveries_run(), 1u);
  EXPECT_EQ(coord_->pending_intents(), 0u);
  // The file's data is gone from both nodes (the remaining object on node 0
  // is the coordinator's own log).
  EXPECT_EQ(nfs_->Read(Fh(), 0, 100).value().count, 0u);
  EXPECT_EQ(nfs1_->Read(Fh(), 0, 100).value().count, 0u);
}

TEST_F(CoordinatorTest, OrphanedTruncateIsRecovered) {
  Bytes data(3 * kStoreBlockSize, 0xbb);
  ASSERT_EQ(nfs_->Write(Fh(), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  coord_client_->LogIntent(IntentOp::kTruncate, Fh(), 100);
  queue_.RunUntilIdle();
  EXPECT_EQ(nfs_->Getattr(Fh()).value().size, 100u);
}

TEST_F(CoordinatorTest, OrphanedCommitForcesDurability) {
  Bytes data(2000, 0xcc);
  ASSERT_EQ(nfs_->Write(Fh(), 0, data, StableHow::kUnstable).value().status, Nfsstat3::kOk);
  EXPECT_GT(storage_[0]->store().dirty_blocks(), 0u);
  coord_client_->LogIntent(IntentOp::kMirrorWrite, Fh());
  queue_.RunUntilIdle();
  EXPECT_EQ(storage_[0]->store().dirty_blocks(), 0u);  // recovery committed
}

TEST_F(CoordinatorTest, BlockMapAssignmentIsStable) {
  GetMapRes first = coord_client_->GetMap(Fh(), 0, 8, /*allocate=*/true);
  ASSERT_EQ(first.sites.size(), 8u);
  for (uint32_t site : first.sites) {
    EXPECT_LT(site, 2u);
  }
  // Round-robin alternation across the two sites.
  for (size_t i = 1; i < first.sites.size(); ++i) {
    EXPECT_NE(first.sites[i], first.sites[i - 1]);
  }
  // Re-fetch without allocate returns the same placements.
  GetMapRes again = coord_client_->GetMap(Fh(), 0, 8, /*allocate=*/false);
  EXPECT_EQ(again.sites, first.sites);
}

TEST_F(CoordinatorTest, UnmappedReadReturnsSentinel) {
  GetMapRes res = coord_client_->GetMap(Fh(77), 0, 4, /*allocate=*/false);
  for (uint32_t site : res.sites) {
    EXPECT_EQ(site, kUnmappedBlock);
  }
}

TEST_F(CoordinatorTest, CrashRecoveryReplaysIntentsAndMaps) {
  GetMapRes map = coord_client_->GetMap(Fh(), 0, 4, /*allocate=*/true);
  Bytes data(1000, 0xdd);
  ASSERT_EQ(nfs_->Write(Fh(9), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  coord_client_->LogIntent(IntentOp::kRemove, Fh(9));
  coord_->FlushLog();
  queue_.RunUntil(queue_.now() + FromMillis(100));  // flush lands, probe not yet fired

  coord_->Fail();
  coord_->Restart();
  queue_.RunUntilIdle();  // replay + recovery of the orphaned intent

  EXPECT_EQ(coord_->pending_intents(), 0u);
  EXPECT_FALSE(storage_[0]->store().Exists(0));  // remove fanned out
  EXPECT_GT(coord_->recoveries_run(), 0u);
  // Block maps survived.
  GetMapRes again = coord_client_->GetMap(Fh(), 0, 4, /*allocate=*/false);
  EXPECT_EQ(again.sites, map.sites);
}

TEST_F(CoordinatorTest, CompletedIntentsDoNotRecoverAfterRestart) {
  const uint64_t id = coord_client_->LogIntent(IntentOp::kRemove, Fh());
  coord_client_->Complete(id);
  coord_->FlushLog();
  queue_.RunUntil(queue_.now() + FromMillis(100));
  coord_->Fail();
  coord_->Restart();
  queue_.RunUntilIdle();
  EXPECT_EQ(coord_->pending_intents(), 0u);
  EXPECT_EQ(coord_->recoveries_run(), 0u);
}

}  // namespace
}  // namespace slice
