// Unit tests for src/common: status, MD5 (RFC 1321 vectors), checksums,
// hashing, RNG determinism.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/bytes.h"
#include "src/common/hash.h"
#include "src/common/inet_checksum.h"
#include "src/common/md5.h"
#include "src/common/rng.h"
#include "src/common/status.h"

namespace slice {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status st(StatusCode::kNotFound, "no such file");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.ToString(), "NOT_FOUND: no such file");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int i = 0; i <= static_cast<int>(StatusCode::kInternal); ++i) {
    EXPECT_NE(StatusCodeName(static_cast<StatusCode>(i)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status(StatusCode::kCorrupt, "bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorrupt);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  const std::pair<std::string, std::string> vectors[] = {
      {"", "d41d8cd98f00b204e9800998ecf8427e"},
      {"a", "0cc175b9c0f1b6a831c399e269772661"},
      {"abc", "900150983cd24fb0d6963f7d28e17f72"},
      {"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
      {"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
      {"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
       "d174ab98d277d9f5a5611c2c9f419d9f"},
      {"1234567890123456789012345678901234567890123456789012345678901234567890123456"
       "7890",
       "57edf4a22be3c955ac49da2e2107b67a"},
  };
  for (const auto& [input, expected] : vectors) {
    Md5Digest d = Md5::Hash(input);
    EXPECT_EQ(ToHex(ByteSpan(d.data(), d.size())), expected) << "input: " << input;
  }
}

TEST(Md5Test, IncrementalMatchesOneShot) {
  std::string msg(1000, 'x');
  for (size_t i = 0; i < msg.size(); ++i) {
    msg[i] = static_cast<char>('a' + (i % 26));
  }
  Md5 ctx;
  // Feed in awkward chunk sizes spanning block boundaries.
  size_t pos = 0;
  const size_t chunks[] = {1, 63, 64, 65, 3, 127, 128, 300, 249};
  for (size_t c : chunks) {
    ctx.Update(std::string_view(msg).substr(pos, c));
    pos += c;
  }
  ASSERT_EQ(pos, msg.size());
  EXPECT_EQ(ctx.Finish(), Md5::Hash(msg));
}

TEST(Md5Test, Fingerprint64Differs) {
  const uint64_t a = Md5Fingerprint64(Md5::Hash("hello"));
  const uint64_t b = Md5Fingerprint64(Md5::Hash("hellp"));
  EXPECT_NE(a, b);
}

TEST(Md5Test, FingerprintDistributionIsBalanced) {
  // The paper picked MD5 for balanced routing distributions; check that
  // bucketing 10k sequential names over 8 buckets stays within 20% of even.
  constexpr int kBuckets = 8;
  constexpr int kNames = 10000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kNames; ++i) {
    const std::string name = "file" + std::to_string(i);
    counts[Md5Fingerprint64(Md5::Hash(name)) % kBuckets]++;
  }
  for (int c : counts) {
    EXPECT_GT(c, kNames / kBuckets * 0.8);
    EXPECT_LT(c, kNames / kBuckets * 1.2);
  }
}

TEST(ChecksumTest, KnownVector) {
  // RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  const uint32_t sum = OnesComplementSum(ByteSpan(data, sizeof(data)));
  EXPECT_EQ(FoldSum(sum), 0xddf2);
}

TEST(ChecksumTest, OddLengthPadsWithZero) {
  const uint8_t even[] = {0x12, 0x34, 0x56, 0x00};
  const uint8_t odd[] = {0x12, 0x34, 0x56};
  EXPECT_EQ(InetChecksum(ByteSpan(even, 4)), InetChecksum(ByteSpan(odd, 3)));
}

TEST(ChecksumTest, IncrementalMatchesFullRecompute) {
  Rng rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    Bytes data(64);
    for (auto& b : data) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    const uint16_t old_sum = InetChecksum(data);

    // Mutate a random 16-bit-aligned field of 2 or 4 bytes.
    const size_t width = rng.NextBool(0.5) ? 2 : 4;
    const size_t offset = rng.NextBelow((data.size() - width) / 2) * 2;
    Bytes old_field(data.begin() + static_cast<ptrdiff_t>(offset),
                    data.begin() + static_cast<ptrdiff_t>(offset + width));
    Bytes new_field(width);
    for (auto& b : new_field) {
      b = static_cast<uint8_t>(rng.NextU64());
    }

    const uint16_t incremental = IncrementalChecksumUpdate(old_sum, old_field, new_field);
    std::copy(new_field.begin(), new_field.end(),
              data.begin() + static_cast<ptrdiff_t>(offset));
    EXPECT_EQ(incremental, InetChecksum(data)) << "trial " << trial;
  }
}

TEST(HashTest, Fnv1aKnownValues) {
  // Standard FNV-1a test vectors.
  EXPECT_EQ(Fnv1a64(std::string_view("")), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64(std::string_view("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64(std::string_view("foobar")), 0x85944171f73967e8ull);
}

TEST(HashTest, MixU64AvalancheSmoke) {
  // Flipping one input bit should flip roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const uint64_t a = MixU64(0x123456789abcdefull);
    const uint64_t b = MixU64(0x123456789abcdefull ^ (1ull << bit));
    total_flips += __builtin_popcountll(a ^ b);
  }
  const double avg = static_cast<double>(total_flips) / 64.0;
  EXPECT_GT(avg, 24.0);
  EXPECT_LT(avg, 40.0);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int heads = 0;
  for (int i = 0; i < 10000; ++i) {
    heads += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(heads / 10000.0, 0.3, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / kN, 5.0, 0.2);
}

TEST(RngTest, ForkIndependentStreams) {
  Rng a(21);
  Rng b = a.Fork();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

TEST(BytesTest, RoundTripScalars) {
  uint8_t buf[8];
  PutU16(buf, 0xbeef);
  EXPECT_EQ(GetU16(buf), 0xbeef);
  PutU32(buf, 0xdeadbeef);
  EXPECT_EQ(GetU32(buf), 0xdeadbeefu);
  PutU64(buf, 0x0123456789abcdefull);
  EXPECT_EQ(GetU64(buf), 0x0123456789abcdefull);
}

TEST(BytesTest, BigEndianLayout) {
  uint8_t buf[4];
  PutU32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
}

TEST(BytesTest, HexFormatting) {
  const uint8_t data[] = {0xde, 0xad, 0xbe, 0xef};
  EXPECT_EQ(ToHex(ByteSpan(data, 4)), "deadbeef");
}

TEST(BytesTest, HexDumpTruncates) {
  Bytes data(100, 0xab);
  const std::string dump = HexDump(data, 4);
  EXPECT_EQ(dump.substr(0, 8), "abababab");
  EXPECT_NE(dump.find("100 bytes"), std::string::npos);
}

}  // namespace
}  // namespace slice
