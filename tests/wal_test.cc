// Unit tests for the write-ahead log: framing, group commit, replay over the
// wire, crash loss of the buffered tail, and continued appends after replay.
#include <gtest/gtest.h>

#include "src/dir/wal.h"
#include "src/storage/storage_node.h"

namespace slice {
namespace {

constexpr uint64_t kSecret = 0x11a6;
constexpr NetAddr kStorageAddr = 0x0a000020;
constexpr NetAddr kHostAddr = 0x0a000001;

class WalTest : public ::testing::Test {
 protected:
  WalTest() : net_(queue_, NetworkParams{}) {
    StorageNodeParams params;
    params.volume_secret = kSecret;
    storage_ = std::make_unique<StorageNode>(net_, queue_, kStorageAddr, params);
    host_ = std::make_unique<Host>(net_, kHostAddr);
    object_ = FileHandle::Make(1, (0xf0ull << 48) | 1, 1, FileType3::kReg, 1, kSecret);
    wal_ = std::make_unique<WriteAheadLog>(*host_, queue_, storage_->endpoint(), object_);
  }

  Bytes Record(const std::string& text) { return Bytes(text.begin(), text.end()); }

  std::vector<std::string> ReplayAll() {
    std::vector<std::string> records;
    Status final_status(StatusCode::kInternal);
    wal_->Replay(
        [&](ByteSpan record) { records.emplace_back(record.begin(), record.end()); },
        [&](Status st) { final_status = st; });
    queue_.RunUntilIdle();
    EXPECT_TRUE(final_status.ok()) << final_status.ToString();
    return records;
  }

  EventQueue queue_;
  Network net_;
  std::unique_ptr<StorageNode> storage_;
  std::unique_ptr<Host> host_;
  FileHandle object_;
  std::unique_ptr<WriteAheadLog> wal_;
};

TEST_F(WalTest, AppendFlushReplayRoundTrip) {
  wal_->Append(Record("alpha"));
  wal_->Append(Record("beta"));
  wal_->Append(Record("gamma"));
  wal_->Flush();
  queue_.RunUntilIdle();

  EXPECT_EQ(ReplayAll(), (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST_F(WalTest, GroupCommitTimerFlushesAutomatically) {
  wal_->Append(Record("timed"));
  EXPECT_EQ(wal_->flushes(), 0u);
  queue_.RunUntilIdle();  // flush timer fires
  EXPECT_EQ(wal_->flushes(), 1u);
  EXPECT_EQ(ReplayAll(), std::vector<std::string>{"timed"});
}

TEST_F(WalTest, ManyRecordsBatchIntoFewFlushes) {
  for (int i = 0; i < 200; ++i) {
    wal_->Append(Record("r" + std::to_string(i)));
  }
  queue_.RunUntilIdle();
  EXPECT_EQ(wal_->records_logged(), 200u);
  EXPECT_LE(wal_->flushes(), 3u) << "group commit must batch";
  EXPECT_EQ(ReplayAll().size(), 200u);
}

TEST_F(WalTest, DiscardBufferedModelsCrash) {
  wal_->Append(Record("durable"));
  wal_->Flush();
  queue_.RunUntilIdle();
  wal_->Append(Record("lost"));
  wal_->DiscardBuffered();
  EXPECT_EQ(ReplayAll(), std::vector<std::string>{"durable"});
}

TEST_F(WalTest, AppendsContinueAfterReplay) {
  wal_->Append(Record("one"));
  wal_->Flush();
  queue_.RunUntilIdle();
  ASSERT_EQ(ReplayAll().size(), 1u);

  // Replay repositions the append offset; further records must not clobber.
  wal_->Append(Record("two"));
  wal_->Flush();
  queue_.RunUntilIdle();
  EXPECT_EQ(ReplayAll(), (std::vector<std::string>{"one", "two"}));
}

TEST_F(WalTest, LargeRecordsSpanReplayChunks) {
  // Records larger than the 32KB replay chunk must reassemble correctly.
  std::string big(50000, 'x');
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<char>('a' + (i % 26));
  }
  wal_->Append(Record(big));
  wal_->Append(Record("tail"));
  wal_->Flush();
  queue_.RunUntilIdle();
  std::vector<std::string> records = ReplayAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], big);
  EXPECT_EQ(records[1], "tail");
}

TEST_F(WalTest, EmptyLogReplaysNothing) {
  EXPECT_TRUE(ReplayAll().empty());
}

TEST_F(WalTest, BytesLoggedAccounting) {
  wal_->Append(Record("abcd"));  // 4 + 4-byte frame
  EXPECT_EQ(wal_->bytes_logged(), 8u);
  wal_->Flush();
  queue_.RunUntilIdle();
  wal_->Append(Record("ef"));
  EXPECT_EQ(wal_->bytes_logged(), 8u + 6u);
}

}  // namespace
}  // namespace slice
