// Flight-recorder regression harness, the event-log twin of
// trace_determinism_test: the simulation is deterministic, so the canonical
// flight dump of a fixed-seed workload is byte-stable — with and without
// packet loss and mid-run node kills. Any drift in routing, retransmission,
// or failover interleaving shows up as a dump diff.
//
// The fault-injected run also checks the cross-pillar failover story: the
// dir-server outage must leave a heartbeat_miss -> node_dead -> adopt_begin
// event chain in the dump, every link stamped with the same failure-episode
// trace id, and that id must resolve to spans in the PR 2 chrome-trace
// export. The dump is written next to the test binary
// (e2e_failover_flight.json) so CI can attach it to failed builds.
#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <vector>

#include "src/net/packet_pool.h"
#include "src/slice/ensemble.h"

namespace slice {
namespace {

using obs::Event;
using obs::EventCode;

Bytes Pattern(size_t n, uint8_t seed = 1) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 53);
  }
  return data;
}

struct RunResult {
  uint64_t hash = 0;
  std::string json;        // flight dump
  std::string trace_json;  // chrome-trace export (for id resolution)
  std::vector<Event> events;
  uint64_t recorded = 0;
};

// Same fixed mixed workload as RunTracedWorkload in trace_determinism_test,
// with the event log enabled. `kill_nodes` additionally crashes a storage
// node and a dir server mid-workload, exercising mirrored-write failover and
// site adoption.
RunResult RunLoggedWorkload(double loss_rate, bool kill_nodes) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_small_file_servers = 2;
  config.num_storage_nodes = 3;
  config.num_coordinators = 1;
  config.default_replication = 2;  // mirrored: the workload survives a kill
  config.loss_rate = loss_rate;
  config.mgmt.enabled = kill_nodes;  // failover path only when killing
  config.trace.enabled = true;
  config.eventlog.enabled = true;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);
  const FileHandle root = ensemble.root();

  // kErrJukebox is the control plane's "retry later", not a failure.
  auto retry = [&](auto op) {
    for (int attempt = 0;; ++attempt) {
      auto res = op();
      if (res.status != Nfsstat3::kErrJukebox || attempt >= 100) {
        return res;
      }
      queue.RunUntil(queue.now() + FromMillis(10));
    }
  };

  std::vector<FileHandle> files;
  for (int i = 0; i < 6; ++i) {
    CreateRes created =
        retry([&] { return client->Create(root, "f" + std::to_string(i)).value(); });
    EXPECT_EQ(created.status, Nfsstat3::kOk);
    files.push_back(*created.object);
    EXPECT_EQ(retry([&] {
                return client
                    ->Write(files[i], 0, Pattern(2048, static_cast<uint8_t>(i)),
                            StableHow::kUnstable)
                    .value();
              }).status,
              Nfsstat3::kOk);
    EXPECT_EQ(retry([&] {
                return client
                    ->Write(files[i], 70000, Pattern(32768, static_cast<uint8_t>(i + 1)),
                            StableHow::kFileSync)
                    .value();
              }).status,
              Nfsstat3::kOk);
    if (kill_nodes && i == 2) {
      // Mid-workload storage crash: heartbeat timeout, failover tables.
      ensemble.storage_node(2).Fail();
      queue.RunUntil(queue.now() + FromMillis(800));
    }
    if (kill_nodes && i == 4) {
      // Dir-server crash: the surviving server adopts the dead site, which
      // is the adoption chain the flight dump must narrate.
      ensemble.dir_server(1).Fail();
      queue.RunUntil(queue.now() + FromMillis(800));
    }
  }
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(retry([&] { return client->Commit(files[i]).value(); }).status, Nfsstat3::kOk);
    EXPECT_EQ(retry([&] { return client->Read(files[i], 0, 2048).value(); }).status,
              Nfsstat3::kOk);
    EXPECT_EQ(retry([&] { return client->Read(files[i], 70000, 32768).value(); }).status,
              Nfsstat3::kOk);
    EXPECT_EQ(retry([&] { return client->Lookup(root, "f" + std::to_string(i)).value(); })
                  .status,
              Nfsstat3::kOk);
  }
  EXPECT_EQ(retry([&] { return client->Remove(root, "f5").value(); }).status, Nfsstat3::kOk);
  queue.RunUntilIdle();

  RunResult result;
  result.json = ensemble.ExportFlightJson("test");
  result.hash = ensemble.FlightHash();
  result.trace_json = ensemble.ExportTraceJson();
  result.events = ensemble.eventlog()->Collect();
  result.recorded = ensemble.eventlog()->total_recorded();
  return result;
}

// First event with `code` whose trace id matches (0 = any).
const Event* FindEvent(const std::vector<Event>& events, EventCode code, uint64_t trace_id = 0) {
  for (const Event& e : events) {
    if (e.code == code && (trace_id == 0 || e.trace_id == trace_id)) {
      return &e;
    }
  }
  return nullptr;
}

TEST(EventLogDeterminismTest, LossFreeSameSeedSameDump) {
  const RunResult a = RunLoggedWorkload(/*loss_rate=*/0.0, /*kill_nodes=*/false);
  const RunResult b = RunLoggedWorkload(/*loss_rate=*/0.0, /*kill_nodes=*/false);
  EXPECT_GT(a.recorded, 30u) << "workload actually produced events";
  EXPECT_EQ(a.hash, b.hash);
  // The hash covers the full export: identical hash <=> identical JSON.
  EXPECT_EQ(a.json, b.json);
  // Routing decisions dominate a healthy run.
  EXPECT_NE(FindEvent(a.events, EventCode::kRouteDecision), nullptr);
  // Per-request route decisions carry the same trace ids as the PR 2 spans.
  const Event* route = FindEvent(a.events, EventCode::kRouteDecision);
  ASSERT_NE(route, nullptr);
  EXPECT_NE(route->trace_id, 0u);
}

TEST(EventLogDeterminismTest, FivePercentLossSameSeedSameDump) {
  const RunResult a = RunLoggedWorkload(/*loss_rate=*/0.05, /*kill_nodes=*/false);
  const RunResult b = RunLoggedWorkload(/*loss_rate=*/0.05, /*kill_nodes=*/false);
  EXPECT_GT(a.recorded, 50u);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.json, b.json);
  // Loss leaves drop + retransmit records, and changes the dump.
  EXPECT_NE(FindEvent(a.events, EventCode::kPacketDrop), nullptr);
  EXPECT_NE(FindEvent(a.events, EventCode::kRpcRetransmit), nullptr);
  EXPECT_NE(a.hash, RunLoggedWorkload(0.0, false).hash);
}

TEST(EventLogDeterminismTest, PacketPoolingDoesNotChangeTheFlightDump) {
  // Pooled buffers must be semantically invisible: the flight-recorder dump
  // (events + spans + counters) of a seeded lossy run is byte-identical with
  // the pool off (pre-pooling allocation behaviour) and on.
  PacketPool::SetEnabled(false);
  const RunResult unpooled = RunLoggedWorkload(/*loss_rate=*/0.05, /*kill_nodes=*/false);
  PacketPool::SetEnabled(true);
  const RunResult pooled = RunLoggedWorkload(/*loss_rate=*/0.05, /*kill_nodes=*/false);
  EXPECT_GT(unpooled.recorded, 50u);
  EXPECT_EQ(unpooled.hash, pooled.hash);
  EXPECT_EQ(unpooled.json, pooled.json);
  EXPECT_EQ(unpooled.trace_json, pooled.trace_json);
}

TEST(EventLogDeterminismTest, NodeKillsUnderLossSameSeedSameDump) {
  const RunResult a = RunLoggedWorkload(/*loss_rate=*/0.05, /*kill_nodes=*/true);
  const RunResult b = RunLoggedWorkload(/*loss_rate=*/0.05, /*kill_nodes=*/true);
  EXPECT_GT(a.recorded, 100u);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.json, b.json);

  // Cross-pillar failover chain for the dir-server outage: the manager
  // opens one failure episode per dying node, and every event in the chain
  // carries that episode's trace id.
  const Event* adopt = FindEvent(a.events, EventCode::kAdoptBegin);
  ASSERT_NE(adopt, nullptr) << "dir kill must trigger site adoption";
  const uint64_t episode = adopt->trace_id;
  EXPECT_NE(episode, 0u);

  const Event* miss = FindEvent(a.events, EventCode::kHeartbeatMiss, episode);
  const Event* dead = FindEvent(a.events, EventCode::kNodeDead, episode);
  ASSERT_NE(miss, nullptr) << "suspicion precedes the death declaration";
  ASSERT_NE(dead, nullptr);
  EXPECT_LE(miss->at, dead->at);
  EXPECT_LE(dead->at, adopt->at);

  // The storage kill ran its own episode (different trace id) and left the
  // kill + epoch-bump trail.
  EXPECT_NE(FindEvent(a.events, EventCode::kNodeKill), nullptr);
  EXPECT_NE(FindEvent(a.events, EventCode::kEpochBump), nullptr);
  const Event* storage_dead = FindEvent(a.events, EventCode::kNodeDead);
  ASSERT_NE(storage_dead, nullptr);

  // Every episode id resolves in the PR 2 trace export: the manager records
  // hb_miss / node_dead instants under the same id ("tid" in chrome trace).
  const std::string needle = "\"tid\":" + std::to_string(episode) + ",";
  EXPECT_NE(a.trace_json.find(needle), std::string::npos)
      << "episode trace id must resolve in the chrome-trace export";

  // Leave the failover flight dump and its matching chrome trace on disk for
  // CI to upload as artifacts; slice_inspect.py --join-trace merges them.
  std::ofstream out("e2e_failover_flight.json", std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good());
  out << a.json;
  out.close();
  ASSERT_TRUE(out.good());
  std::ofstream tout("e2e_failover_flight_trace.json", std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(tout.good());
  tout << a.trace_json;
  tout.close();
  ASSERT_TRUE(tout.good());
}

}  // namespace
}  // namespace slice
