// Property-based tests (parameterized gtest): randomized sweeps checking
// invariants that must hold for every seed, size, policy, and topology —
// including a model-based end-to-end test that replays random file-system
// operation sequences against both the Slice ensemble and an in-memory
// reference model.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/common/rng.h"
#include "src/sfs/fragment_alloc.h"
#include "src/slice/ensemble.h"
#include "src/storage/object_store.h"

namespace slice {
namespace {

// --- ObjectStore vs flat-buffer reference model ---

class ObjectStoreModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObjectStoreModelTest, RandomOpsMatchReferenceModel) {
  Rng rng(GetParam());
  ObjectStore store(16 << 20);
  // Reference: per object, a simple byte vector (stable) + overlay vector.
  struct Ref {
    Bytes stable;
    Bytes view;  // stable with uncommitted overlay applied
  };
  std::map<ObjectId, Ref> model;

  for (int step = 0; step < 400; ++step) {
    const ObjectId id = 1 + rng.NextBelow(4);
    Ref& ref = model[id];
    switch (rng.NextBelow(6)) {
      case 0:
      case 1: {  // write (stable or unstable)
        const bool stable = rng.NextBool(0.5);
        const uint64_t offset = rng.NextBelow(64 << 10);
        Bytes data(1 + rng.NextBelow(10000));
        for (auto& b : data) {
          b = static_cast<uint8_t>(rng.NextU64());
        }
        ASSERT_TRUE(store.Write(id, offset, data, stable).ok());
        if (ref.view.size() < offset + data.size()) {
          ref.view.resize(offset + data.size(), 0);
        }
        std::copy(data.begin(), data.end(), ref.view.begin() + static_cast<ptrdiff_t>(offset));
        if (stable) {
          if (ref.stable.size() < offset + data.size()) {
            ref.stable.resize(offset + data.size(), 0);
          }
          std::copy(data.begin(), data.end(),
                    ref.stable.begin() + static_cast<ptrdiff_t>(offset));
        }
        break;
      }
      case 2: {  // commit
        store.Commit(id);
        ref.stable = ref.view;
        break;
      }
      case 3: {  // crash: uncommitted data lost
        store.CrashDiscardDirty();
        for (auto& [oid, r] : model) {
          (void)oid;
          r.view = r.stable;
        }
        break;
      }
      case 4: {  // truncate
        const uint64_t new_size = rng.NextBelow(48 << 10);
        ASSERT_TRUE(store.Truncate(id, new_size).ok());
        // Truncate makes the SIZE durable (both images take it, zero-filled
        // on extension) but does not commit overlay data within the kept
        // range — that still dies in a crash.
        ref.view.resize(new_size, 0);
        ref.stable.resize(new_size, 0);
        break;
      }
      default: {  // read and compare
        const uint64_t offset = rng.NextBelow(72 << 10);
        const uint32_t count = static_cast<uint32_t>(1 + rng.NextBelow(12000));
        StoreReadResult got = store.Read(id, offset, count).value();
        Bytes expect;
        if (offset < ref.view.size()) {
          const size_t n = std::min<size_t>(count, ref.view.size() - offset);
          expect.assign(ref.view.begin() + static_cast<ptrdiff_t>(offset),
                        ref.view.begin() + static_cast<ptrdiff_t>(offset + n));
        }
        ASSERT_EQ(got.data, expect) << "step " << step << " id " << id << " off " << offset;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectStoreModelTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// --- FragmentAllocator invariants ---

class FragmentAllocatorPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FragmentAllocatorPropertyTest, FragmentsNeverOverlapAndStayAligned) {
  Rng rng(GetParam());
  FragmentAllocator alloc;
  std::map<uint64_t, uint32_t> live;  // offset -> alloc size

  for (int step = 0; step < 600; ++step) {
    if (live.empty() || rng.NextBool(0.6)) {
      const uint32_t need = static_cast<uint32_t>(1 + rng.NextBelow(kMaxFragment));
      Fragment fragment = alloc.Allocate(need);
      ASSERT_GE(fragment.alloc_size, need);
      ASSERT_EQ(fragment.offset % fragment.alloc_size, 0u) << "natural alignment";
      // No overlap with any live fragment.
      auto next = live.lower_bound(fragment.offset);
      if (next != live.end()) {
        ASSERT_LE(fragment.offset + fragment.alloc_size, next->first);
      }
      if (next != live.begin()) {
        auto prev = std::prev(next);
        ASSERT_LE(prev->first + prev->second, fragment.offset);
      }
      live[fragment.offset] = fragment.alloc_size;
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<ptrdiff_t>(rng.NextBelow(live.size())));
      alloc.Free(Fragment{it->first, it->second});
      live.erase(it);
    }
  }
  // Accounting adds up.
  uint64_t live_bytes = 0;
  for (const auto& [offset, size] : live) {
    (void)offset;
    live_bytes += size;
  }
  EXPECT_EQ(alloc.allocated_bytes(), live_bytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FragmentAllocatorPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// --- striping invariants across topologies ---

struct StripeCase {
  size_t nodes;
  uint8_t replication;
};

class StripePropertyTest : public ::testing::TestWithParam<StripeCase> {};

TEST_P(StripePropertyTest, ReplicasDistinctDeterministicInRange) {
  const StripeCase param = GetParam();
  EventQueue queue;
  EnsembleConfig config;
  config.num_storage_nodes = param.nodes;
  config.num_small_file_servers = 0;
  config.default_replication = param.replication;
  Ensemble ensemble(queue, config);
  Uproxy& proxy = ensemble.uproxy(0);

  Rng rng(0xcafe);
  for (int trial = 0; trial < 200; ++trial) {
    const FileHandle fh = FileHandle::Make(1, MakeFileid(0, 2 + rng.NextBelow(1000)), 1,
                                           FileType3::kReg, param.replication,
                                           config.volume_secret);
    const uint64_t offset = rng.NextBelow(1ull << 30);
    std::set<uint32_t> replicas;
    for (uint32_t r = 0; r < param.replication; ++r) {
      const uint32_t site = proxy.StripeSite(fh, offset, r);
      EXPECT_LT(site, param.nodes);
      EXPECT_EQ(site, proxy.StripeSite(fh, offset, r)) << "deterministic";
      replicas.insert(site);
    }
    if (param.replication <= param.nodes) {
      EXPECT_EQ(replicas.size(), param.replication) << "replicas on distinct nodes";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Topologies, StripePropertyTest,
                         ::testing::Values(StripeCase{2, 1}, StripeCase{2, 2},
                                           StripeCase{4, 2}, StripeCase{8, 2},
                                           StripeCase{8, 3}, StripeCase{3, 2}),
                         [](const ::testing::TestParamInfo<StripeCase>& param_info) {
                           return "n" + std::to_string(param_info.param.nodes) + "r" +
                                  std::to_string(param_info.param.replication);
                         });

// --- model-based end-to-end: random namespace + data ops through the
// ensemble must match an in-memory reference file system ---

struct EndToEndCase {
  uint64_t seed;
  NamePolicy policy;
  size_t dir_servers;
  uint8_t replication;
};

class EnsembleModelTest : public ::testing::TestWithParam<EndToEndCase> {};

TEST_P(EnsembleModelTest, RandomOpsMatchReferenceFs) {
  const EndToEndCase param = GetParam();
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = param.dir_servers;
  config.num_storage_nodes = 3;
  config.name_policy = param.policy;
  config.default_replication = param.replication;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);
  const FileHandle root = ensemble.root();

  Rng rng(param.seed);
  // Reference model: name -> file contents (single flat directory plus one
  // subdirectory to exercise cross-directory renames).
  CreateRes sub = client->Mkdir(root, "sub").value();
  ASSERT_EQ(sub.status, Nfsstat3::kOk);
  struct Entry {
    FileHandle fh;
    Bytes data;
  };
  std::map<std::string, Entry> in_root;
  std::map<std::string, Entry> in_sub;
  int serial = 0;

  auto dir_of = [&](bool sub_dir) -> FileHandle { return sub_dir ? *sub.object : root; };
  auto map_of = [&](bool sub_dir) -> std::map<std::string, Entry>& {
    return sub_dir ? in_sub : in_root;
  };

  for (int step = 0; step < 120; ++step) {
    const bool sub_dir = rng.NextBool(0.3);
    auto& entries = map_of(sub_dir);
    switch (rng.NextBelow(5)) {
      case 0: {  // create + write
        const std::string name = "f" + std::to_string(serial++);
        CreateRes created = client->Create(dir_of(sub_dir), name).value();
        ASSERT_EQ(created.status, Nfsstat3::kOk);
        Bytes data(1 + rng.NextBelow(100000));  // spans both I/O classes
        for (auto& b : data) {
          b = static_cast<uint8_t>(rng.NextU64());
        }
        for (size_t off = 0; off < data.size(); off += 32768) {
          const size_t n = std::min<size_t>(32768, data.size() - off);
          ASSERT_EQ(client
                        ->Write(*created.object, off, ByteSpan(data.data() + off, n),
                                StableHow::kUnstable)
                        .value()
                        .status,
                    Nfsstat3::kOk);
        }
        ASSERT_EQ(client->Commit(*created.object).value().status, Nfsstat3::kOk);
        entries[name] = Entry{*created.object, std::move(data)};
        break;
      }
      case 1: {  // remove
        if (entries.empty()) {
          break;
        }
        auto it = entries.begin();
        std::advance(it, static_cast<ptrdiff_t>(rng.NextBelow(entries.size())));
        ASSERT_EQ(client->Remove(dir_of(sub_dir), it->first).value().status, Nfsstat3::kOk);
        entries.erase(it);
        break;
      }
      case 2: {  // rename (possibly across directories)
        if (entries.empty()) {
          break;
        }
        auto it = entries.begin();
        std::advance(it, static_cast<ptrdiff_t>(rng.NextBelow(entries.size())));
        const bool to_sub = rng.NextBool(0.5);
        const std::string new_name = "r" + std::to_string(serial++);
        RenameRes renamed =
            client->Rename(dir_of(sub_dir), it->first, dir_of(to_sub), new_name).value();
        ASSERT_EQ(renamed.status, Nfsstat3::kOk);
        map_of(to_sub)[new_name] = std::move(it->second);
        entries.erase(it);
        break;
      }
      case 3: {  // read back a random file, compare contents
        if (entries.empty()) {
          break;
        }
        auto it = entries.begin();
        std::advance(it, static_cast<ptrdiff_t>(rng.NextBelow(entries.size())));
        Bytes got;
        for (size_t off = 0; off < it->second.data.size(); off += 32768) {
          ReadRes res = client->Read(it->second.fh, off, 32768).value();
          ASSERT_EQ(res.status, Nfsstat3::kOk);
          got.insert(got.end(), res.data.begin(), res.data.end());
        }
        ASSERT_EQ(got, it->second.data) << "file " << it->first << " step " << step;
        break;
      }
      default: {  // listing matches the model
        std::vector<DirEntry> listed = client->ReadWholeDir(dir_of(sub_dir)).value();
        std::set<std::string> names;
        for (const DirEntry& entry : listed) {
          names.insert(entry.name);
        }
        for (const auto& [name, entry] : entries) {
          (void)entry;
          ASSERT_TRUE(names.contains(name)) << "missing " << name;
        }
        // The listing may also contain "sub" at root; sizes must match.
        ASSERT_EQ(names.size(), entries.size() + (sub_dir ? 0 : 1));
        break;
      }
    }
  }

  // Final sweep: every surviving file readable with exact contents and a
  // fresh, correct size attribute.
  for (const auto* entries : {&in_root, &in_sub}) {
    for (const auto& [name, entry] : *entries) {
      (void)name;
      Fattr3 attr = client->Getattr(entry.fh).value();
      EXPECT_EQ(attr.size, entry.data.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, EnsembleModelTest,
    ::testing::Values(EndToEndCase{101, NamePolicy::kMkdirSwitching, 1, 1},
                      EndToEndCase{102, NamePolicy::kMkdirSwitching, 3, 1},
                      EndToEndCase{103, NamePolicy::kNameHashing, 3, 1},
                      EndToEndCase{104, NamePolicy::kMkdirSwitching, 2, 2},
                      EndToEndCase{105, NamePolicy::kNameHashing, 2, 2}),
    [](const ::testing::TestParamInfo<EndToEndCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) +
             (param_info.param.policy == NamePolicy::kNameHashing ? "_hash" : "_switch") +
             "_d" + std::to_string(param_info.param.dir_servers) + "_r" +
             std::to_string(param_info.param.replication);
    });

// --- incremental checksum maintenance under µproxy rewrites ---
//
// Promoted from bench/micro_checksum.cc: the invariant the bench exercises
// for speed must hold for correctness on every packet shape. After any
// sequence of the µproxy's rewrite operations — source/destination NAT and
// in-payload attribute patches, with or without a trace trailer attached —
// the incrementally maintained RFC 1624 checksums must equal a from-scratch
// recomputation, and the packet must verify.

class ChecksumPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChecksumPropertyTest, IncrementalRewritesMatchFullRecompute) {
  Rng rng(GetParam());

  auto expect_checksums_fresh = [](const Packet& pkt, const char* what) {
    ASSERT_TRUE(pkt.IsValidUdp()) << what;
    EXPECT_TRUE(pkt.VerifyChecksums()) << what;
    // The ground truth: a copy recomputed from scratch stores the same sums.
    Packet scratch(pkt.bytes());
    scratch.RecomputeChecksums();
    EXPECT_EQ(pkt.ip_checksum(), scratch.ip_checksum()) << what;
    EXPECT_EQ(pkt.udp_checksum(), scratch.udp_checksum()) << what;
  };

  for (int trial = 0; trial < 200; ++trial) {
    // Randomized packet: size, contents, addressing.
    Bytes payload(rng.NextBelow(1200));
    for (auto& b : payload) {
      b = static_cast<uint8_t>(rng.NextU64());
    }
    const Endpoint src{static_cast<NetAddr>(rng.NextU64()),
                       static_cast<NetPort>(rng.NextU64())};
    const Endpoint dst{static_cast<NetAddr>(rng.NextU64()),
                       static_cast<NetPort>(rng.NextU64())};
    Packet pkt = Packet::MakeUdp(src, dst, payload);
    // Half the packets carry a trace trailer, which must be checksum-inert.
    const bool traced = rng.NextBool(0.5);
    if (traced) {
      pkt.AttachTrace(rng.NextU64(), rng.NextU64());
    }
    expect_checksums_fresh(pkt, "freshly built");

    // A random sequence of the µproxy's rewrite paths.
    for (int op = 0; op < 6; ++op) {
      switch (rng.NextBelow(3)) {
        case 0:
          pkt.RewriteSrc(Endpoint{static_cast<NetAddr>(rng.NextU64()),
                                  static_cast<NetPort>(rng.NextU64())});
          break;
        case 1:
          pkt.RewriteDst(Endpoint{static_cast<NetAddr>(rng.NextU64()),
                                  static_cast<NetPort>(rng.NextU64())});
          break;
        default: {
          // In-place payload patch (16-bit aligned, as the attribute
          // rewriter guarantees), like fileid/fsid fixups in replies.
          if (payload.size() < 2) {
            continue;
          }
          const size_t max_len = std::min<size_t>(payload.size(), 64) & ~size_t{1};
          const size_t len = 2 + (rng.NextBelow(max_len) & ~size_t{1});
          if (len > payload.size()) {
            continue;
          }
          const size_t offset =
              kPacketHeaderSize + (rng.NextBelow(payload.size() - len + 1) & ~size_t{1});
          Bytes patch(len);
          for (auto& b : patch) {
            b = static_cast<uint8_t>(rng.NextU64());
          }
          pkt.RewriteBytes(offset, patch);
          break;
        }
      }
      expect_checksums_fresh(pkt, "after incremental rewrite");
      if (traced) {
        EXPECT_TRUE(pkt.HasTrace()) << "rewrites must not eat the trailer";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChecksumPropertyTest,
                         ::testing::Values(0xc0, 0xc1, 0xc2, 0xc3));

// RFC 768 boundary: a UDP checksum that *computes* to zero is transmitted as
// 0xFFFF, because a *stored* zero means "sender supplied no checksum". Sweep
// one payload word through all 2^16 values so the computed sum crosses the
// 0/0xFFFF collapse, and check the incremental path agrees with a recompute
// on every step — the old code let an incremental update land on zero, which
// silently converted a checksummed packet into an unchecksummed one.
TEST(ChecksumRfc768Test, ComputedZeroTransmitsAsAllOnesAcrossFullSweep) {
  Bytes payload(8, 0);
  Packet pkt = Packet::MakeUdp(Endpoint{0x0a000001, 1000}, Endpoint{0x0a000002, 2049},
                               payload);
  int all_ones_seen = 0;
  for (uint32_t w = 0; w <= 0xffff; ++w) {
    uint8_t patch[2];
    PutU16(patch, static_cast<uint16_t>(w));
    pkt.RewriteBytes(kPacketHeaderSize + 4, ByteSpan(patch, 2));
    const uint16_t stored = pkt.udp_checksum();
    ASSERT_NE(stored, 0u) << "incremental update produced the no-checksum form, w=" << w;
    ASSERT_TRUE(pkt.VerifyChecksums()) << "w=" << w;
    Packet scratch(pkt.bytes());
    scratch.RecomputeChecksums();
    ASSERT_EQ(stored, scratch.udp_checksum()) << "w=" << w;
    if (stored == 0xffff) {
      ++all_ones_seen;
    }
  }
  // The sweep must actually cross the boundary for the test to mean anything.
  EXPECT_GT(all_ones_seen, 0);
}

TEST(ChecksumRfc768Test, StoredZeroMeansNoChecksumAndStaysZeroThroughRewrites) {
  Bytes payload(16, 0xab);
  Packet pkt = Packet::MakeUdp(Endpoint{0x0a000001, 1000}, Endpoint{0x0a000002, 2049},
                               payload);
  // A sender that opted out of UDP checksumming stores zero. That must
  // verify (there is nothing to check) and rewrites must not "maintain" the
  // absent checksum into a bogus nonzero value.
  PutU16(pkt.mutable_bytes().data() + kIpHeaderSize + 6, 0);
  ASSERT_TRUE(pkt.VerifyChecksums());

  pkt.RewriteDst(Endpoint{0x0a0000ff, 7777});
  pkt.RewriteSrc(Endpoint{0x0a0000fe, 8888});
  uint8_t patch[4] = {1, 2, 3, 4};
  pkt.RewriteBytes(kPacketHeaderSize + 8, ByteSpan(patch, 4));

  EXPECT_EQ(pkt.udp_checksum(), 0u) << "rewrites resurrected an absent checksum";
  EXPECT_TRUE(pkt.VerifyChecksums());
  // The IP header checksum is always present and must still track rewrites.
  Packet scratch(pkt.bytes());
  scratch.RecomputeChecksums();
  EXPECT_EQ(pkt.ip_checksum(), scratch.ip_checksum());
}

}  // namespace
}  // namespace slice
