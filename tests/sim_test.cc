// Unit tests for the discrete-event simulator: event ordering, resources,
// disk model, stats.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

#include "src/sim/disk.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace slice {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueueTest, EqualTimesRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(10, [&] {
    q.ScheduleAfter(5, [&] { fired = 1; });
  });
  q.RunUntilIdle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(q.now(), 15u);
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  SimTime fired_at = 0;
  q.ScheduleAt(100, [&] {
    q.ScheduleAt(50, [&] { fired_at = q.now(); });  // in the past
  });
  q.RunUntilIdle();
  EXPECT_EQ(fired_at, 100u);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(10, [&] { ++count; });
  q.ScheduleAt(20, [&] { ++count; });
  q.ScheduleAt(30, [&] { ++count; });
  q.RunUntil(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 20u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueueTest, RunOneReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.RunOne());
}

TEST(EventQueueTest, BackgroundEventsDoNotHoldRunUntilIdle) {
  EventQueue q;
  int background_fired = 0;
  int foreground_fired = 0;
  // A self-rearming background timer (heartbeat-style) must not keep
  // RunUntilIdle spinning once all foreground work has drained.
  std::function<void()> tick = [&] {
    ++background_fired;
    if (background_fired < 1000) {
      q.ScheduleBackgroundAfter(10, tick);
    }
  };
  q.ScheduleBackgroundAfter(10, tick);
  q.ScheduleAt(25, [&] { ++foreground_fired; });
  q.RunUntilIdle();
  EXPECT_EQ(foreground_fired, 1);
  EXPECT_LT(background_fired, 5);  // stopped as soon as foreground drained
  EXPECT_GE(q.now(), 25u);
}

TEST(EventQueueTest, BackgroundChainsInheritBackgroundStatus) {
  // Events scheduled while a background event executes (RPC sends, network
  // hops, replies) stay background: the whole causal chain of a heartbeat
  // must never pin RunUntilIdle.
  EventQueue q;
  bool child_ran = false;
  q.ScheduleBackgroundAt(10, [&] {
    q.ScheduleAfter(5, [&] { child_ran = true; });  // inherits background
  });
  q.ScheduleAt(12, [] {});
  q.RunUntilIdle();
  EXPECT_EQ(q.foreground_pending(), 0u);
  EXPECT_FALSE(child_ran);  // background child at t=15 is past the last foreground event
  q.RunUntil(20);
  EXPECT_TRUE(child_ran);  // but RunUntil drives background chains normally
}

TEST(BusyResourceTest, IdleResourceStartsImmediately) {
  BusyResource r;
  EXPECT_EQ(r.Acquire(100, 50), 150u);
}

TEST(BusyResourceTest, BusyResourceQueues) {
  BusyResource r;
  EXPECT_EQ(r.Acquire(0, 100), 100u);
  EXPECT_EQ(r.Acquire(10, 100), 200u);  // waits for first job
  EXPECT_EQ(r.Acquire(500, 100), 600u);  // idle gap
}

TEST(BusyResourceTest, TracksUtilization) {
  BusyResource r;
  r.Acquire(0, 500);
  EXPECT_DOUBLE_EQ(r.UtilizationUpTo(1000), 0.5);
  EXPECT_EQ(r.jobs(), 1u);
}

TEST(SimDiskTest, RandomIoPaysPositioning) {
  SimDisk disk(DiskParams{.avg_position_ms = 5.0, .media_mb_per_s = 33.0});
  // 8KB random read: ~5ms position + 8192/33e6 s ≈ 5.25ms total.
  const SimTime done = disk.SubmitIo(0, /*pos=*/1 << 20, 8192);
  EXPECT_NEAR(ToMillis(done), 5.25, 0.05);
}

TEST(SimDiskTest, SequentialIoSkipsPositioning) {
  SimDisk disk(DiskParams{.avg_position_ms = 5.0, .media_mb_per_s = 33.0});
  const SimTime first = disk.SubmitIo(0, 0, 65536);
  // Next I/O continues where the previous one ended: near-zero positioning.
  const SimTime second = disk.SubmitIo(first, 65536, 65536);
  const double transfer_ms = 65536.0 / 33e6 * 1e3;
  EXPECT_NEAR(ToMillis(second - first), transfer_ms + 0.15, 0.05);
}

TEST(SimDiskTest, QueueingDelaysLaterIos) {
  SimDisk disk(DiskParams{});
  const SimTime first = disk.SubmitIo(0, 0, 8192);
  const SimTime second = disk.SubmitIo(0, 1 << 30, 8192);
  EXPECT_GT(second, first);
}

TEST(DiskArrayTest, IndependentArmsOverlap) {
  DiskArray array(4, DiskParams{}, /*channel_mb_per_s=*/1e9);
  // Four random I/Os to four different arms complete at (nearly) the same
  // time since arms work in parallel and the channel is effectively infinite.
  SimTime dones[4];
  for (size_t i = 0; i < 4; ++i) {
    dones[i] = array.SubmitIo(0, i, 1 << 20, 8192);
  }
  for (size_t i = 1; i < 4; ++i) {
    EXPECT_EQ(dones[i], dones[0]);
  }
}

TEST(DiskArrayTest, SharedChannelSerializes) {
  // A very slow channel dominates: completions serialize even across arms.
  DiskArray array(4, DiskParams{.avg_position_ms = 0.0, .sequential_position_ms = 0.0},
                  /*channel_mb_per_s=*/1.0);
  const SimTime a = array.SubmitIo(0, 0, 0, 1 << 20);
  const SimTime b = array.SubmitIo(0, 1, 0, 1 << 20);
  EXPECT_GE(b, 2 * a - 1);
}

TEST(DiskArrayTest, OutOfRangeDiskAborts) {
  DiskArray array(2, DiskParams{}, 75.0);
  EXPECT_DEATH(array.SubmitIo(0, 5, 0, 512), "disk_index");
}

TEST(LatencyStatsTest, Aggregates) {
  LatencyStats stats;
  stats.Record(FromMillis(1));
  stats.Record(FromMillis(3));
  stats.Record(FromMillis(2));
  EXPECT_EQ(stats.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.MeanMillis(), 2.0);
  EXPECT_EQ(stats.min(), FromMillis(1));
  EXPECT_EQ(stats.max(), FromMillis(3));
}

TEST(LatencyStatsTest, Percentiles) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) {
    stats.Record(static_cast<SimTime>(i) * 1000);
  }
  EXPECT_NEAR(static_cast<double>(stats.Percentile(50)), 50000.0, 2000.0);
  EXPECT_NEAR(static_cast<double>(stats.Percentile(99)), 99000.0, 2000.0);
}

TEST(LatencyStatsTest, EmptyIsZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.Percentile(50), 0u);
  EXPECT_DOUBLE_EQ(stats.MeanMillis(), 0.0);
}

TEST(LatencyStatsTest, HistogramBoundsPercentileError) {
  // The log-scale histogram guarantees relative error bounded by the
  // sub-bucket resolution across many decades of latency.
  LatencyStats stats;
  std::vector<SimTime> samples;
  uint64_t v = 130;  // ~1.3x growth per sample, spanning ns to seconds
  for (int i = 0; i < 60; ++i) {
    samples.push_back(v);
    stats.Record(v);
    v += v / 3 + 1;
  }
  std::sort(samples.begin(), samples.end());
  for (double p : {10.0, 50.0, 90.0, 99.0}) {
    const size_t rank =
        std::min(samples.size() - 1, static_cast<size_t>(p / 100.0 * samples.size()));
    const double exact = static_cast<double>(samples[rank]);
    const double approx = static_cast<double>(stats.Percentile(p));
    EXPECT_NEAR(approx, exact, exact * 0.35) << "p" << p;
  }
  // Exact aggregates are not approximated.
  EXPECT_EQ(stats.count(), samples.size());
  EXPECT_EQ(stats.min(), samples.front());
  EXPECT_EQ(stats.max(), samples.back());
}

TEST(LatencyStatsTest, MergeCombinesHistograms) {
  LatencyStats a;
  LatencyStats b;
  for (int i = 1; i <= 50; ++i) {
    a.Record(static_cast<SimTime>(i) * 1000);
    b.Record(static_cast<SimTime>(i + 50) * 1000);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), 100u);
  EXPECT_EQ(a.min(), 1000u);
  EXPECT_EQ(a.max(), 100000u);
  EXPECT_NEAR(static_cast<double>(a.Percentile(50)), 50000.0, 3000.0);
}

TEST(OpCountersTest, AddAndFormat) {
  OpCounters c;
  c.Add("read");
  c.Add("read", 2);
  c.Add("write");
  EXPECT_EQ(c.Get("read"), 3u);
  EXPECT_EQ(c.Get("write"), 1u);
  EXPECT_EQ(c.Get("missing"), 0u);
  EXPECT_EQ(c.ToString(), "read=3, write=1");
}

TEST(TimeConversionTest, RoundTrips) {
  EXPECT_EQ(FromMillis(1.5), 1500000u);
  EXPECT_EQ(FromMicros(2.0), 2000u);
  EXPECT_EQ(FromSeconds(1.0), kNanosPerSec);
  EXPECT_DOUBLE_EQ(ToMillis(FromMillis(7.25)), 7.25);
  EXPECT_DOUBLE_EQ(ToSeconds(FromSeconds(3.0)), 3.0);
}

}  // namespace
}  // namespace slice
