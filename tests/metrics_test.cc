// Tests for the metrics plane (src/obs): typed instruments and provider
// backing, registry pointer stability, the bounded time-series ring, the
// window-aligned sim-time scraper, watchdog hysteresis in both value and
// delta modes, canonical export determinism, and the allocation-free
// disabled fast path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "src/obs/metrics.h"
#include "src/obs/metrics_export.h"
#include "src/obs/timeseries.h"
#include "src/sim/event_queue.h"

// Global allocation counter for the disabled-fast-path test (same idiom as
// obs_test.cc): counts every operator-new in the process; tests measure
// deltas around the calls under scrutiny.
static uint64_t g_news = 0;

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slice {
namespace {

using obs::Alert;
using obs::Counter;
using obs::Gauge;
using obs::Histogram;
using obs::Metrics;
using obs::MetricsParams;
using obs::MetricsRegistry;
using obs::Scraper;
using obs::TimeSeries;
using obs::WatchdogMode;
using obs::WatchdogRule;

TEST(InstrumentTest, CounterAccumulatesAndProviderOverrides) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);

  uint64_t backing = 7;
  c.SetProvider([&] { return backing; });
  EXPECT_TRUE(c.has_provider());
  EXPECT_EQ(c.Value(), 7u) << "provider replaces the accumulated value";
  backing = 9;
  EXPECT_EQ(c.Value(), 9u) << "provider is polled per read, not cached";
}

TEST(InstrumentTest, GaugeSetAddProvider) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.SetProvider([] { return int64_t{-5}; });
  EXPECT_EQ(g.Value(), -5);
}

TEST(InstrumentTest, HistogramObserveAndMerge) {
  Histogram a;
  Histogram b;
  a.Observe(100);
  a.Observe(200);
  b.Observe(300);
  a.Merge(b);
  EXPECT_EQ(a.stats().count(), 3u);
  EXPECT_EQ(a.stats().min(), 100u);
  EXPECT_EQ(a.stats().max(), 300u);
}

TEST(InstrumentTest, NullSafeHelpersAreNoOpsOnNull) {
  obs::Inc(nullptr);
  obs::Inc(nullptr, 5);
  obs::Set(nullptr, 5);
  obs::Observe(nullptr, 5);

  Counter c;
  Gauge g;
  Histogram h;
  obs::Inc(&c, 2);
  obs::Set(&g, 3);
  obs::Observe(&h, 4);
  EXPECT_EQ(c.Value(), 2u);
  EXPECT_EQ(g.Value(), 3);
  EXPECT_EQ(h.stats().count(), 1u);
}

TEST(InstrumentTest, DisabledHotPathDoesNotAllocate) {
  // When metrics are disabled, components hold null instrument pointers and
  // every site reduces to the null check — it must never allocate.
  Counter* counter = nullptr;
  Gauge* gauge = nullptr;
  Histogram* histogram = nullptr;
  const uint64_t before = g_news;
  for (int i = 0; i < 1000; ++i) {
    obs::Inc(counter);
    obs::Inc(counter, 64);
    obs::Set(gauge, i);
    obs::Observe(histogram, static_cast<SimTime>(i));
  }
  EXPECT_EQ(g_news, before) << "disabled metrics hot path must not allocate";

  // The enabled push path is allocation-free too once the instrument exists.
  Counter real;
  const uint64_t before_real = g_news;
  for (int i = 0; i < 1000; ++i) {
    obs::Inc(&real);
  }
  EXPECT_EQ(g_news, before_real);
  EXPECT_EQ(real.Value(), 1000u);
}

TEST(RegistryTest, InstrumentPointersAreStableAcrossGrowth) {
  MetricsRegistry reg;
  Counter* first = reg.GetCounter("alpha");
  Gauge* gauge = reg.GetGauge("alpha");  // same name, different type: distinct
  for (int i = 0; i < 200; ++i) {
    reg.GetCounter("c" + std::to_string(i));
  }
  first->Add(3);
  EXPECT_EQ(reg.GetCounter("alpha"), first) << "same name returns the same slot";
  EXPECT_EQ(reg.GetCounter("alpha")->Value(), 3u);
  gauge->Set(-1);
  EXPECT_EQ(reg.GetGauge("alpha")->Value(), -1);
  EXPECT_EQ(reg.counters().size(), 201u);
}

TEST(RegistryTest, FindReturnsNullForUnregistered) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_EQ(reg.FindGauge("missing"), nullptr);
  reg.GetCounter("present");
  EXPECT_NE(reg.FindCounter("present"), nullptr);
}

TEST(TimeSeriesTest, RingOverwritesOldest) {
  TimeSeries series(3);
  series.Push(1, 10);
  series.Push(2, 20);
  EXPECT_EQ(series.size(), 2u);
  EXPECT_EQ(series.at(0).value, 10);
  EXPECT_EQ(series.back().value, 20);

  series.Push(3, 30);
  series.Push(4, 40);  // overwrites (1, 10)
  series.Push(5, 50);  // overwrites (2, 20)
  EXPECT_EQ(series.size(), 3u);
  EXPECT_EQ(series.dropped(), 2u);
  EXPECT_EQ(series.at(0).at, 3u);
  EXPECT_EQ(series.at(1).at, 4u);
  EXPECT_EQ(series.back().at, 5u);
}

TEST(ScraperTest, ScrapesLandOnWindowBoundaries) {
  EventQueue queue;
  MetricsParams params;
  params.scrape_interval = FromMillis(100);
  Metrics metrics(params);
  uint64_t requests = 0;
  metrics.Registry(7).GetCounter("reqs")->SetProvider([&] { return requests; });

  Scraper scraper(queue, metrics);
  // Start mid-window: the first scrape must align to the NEXT multiple of
  // the interval, not to start-time + interval.
  queue.RunUntil(FromMillis(150));
  scraper.Start();
  requests = 5;
  // Background events run normally under RunUntil (only RunUntilIdle skips
  // them), so the scrape chain fires at 200/300/400ms.
  queue.RunUntil(FromMillis(450));

  EXPECT_EQ(scraper.scrapes(), 3u);
  const auto& host_series = scraper.series().at(7);
  const TimeSeries& reqs = host_series.at("reqs");
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs.at(0).at, FromMillis(200));
  EXPECT_EQ(reqs.at(1).at, FromMillis(300));
  EXPECT_EQ(reqs.at(2).at, FromMillis(400));
  EXPECT_EQ(reqs.at(0).value, 5);
}

TEST(ScraperTest, HistogramsContributeSampleCount) {
  EventQueue queue;
  Metrics metrics;
  metrics.Registry(1).GetHistogram("lat")->Observe(100);
  metrics.Registry(1).GetHistogram("lat")->Observe(200);
  Scraper scraper(queue, metrics);
  scraper.ScrapeOnce();
  EXPECT_EQ(scraper.series().at(1).at("lat").back().value, 2);
}

TEST(WatchdogTest, ValueModeHysteresis) {
  EventQueue queue;
  Metrics metrics;
  Gauge* backlog = metrics.Registry(3).GetGauge("q");
  Scraper scraper(queue, metrics);
  scraper.AddRule(WatchdogRule{.name = "q_deep",
                               .metric = "q",
                               .mode = WatchdogMode::kValue,
                               .raise_threshold = 10,
                               .clear_threshold = 3,
                               .raise_streak = 2,
                               .clear_streak = 2});

  backlog->Set(12);
  scraper.ScrapeOnce();
  EXPECT_TRUE(scraper.alerts().empty()) << "one sample above is not a streak";
  scraper.ScrapeOnce();
  ASSERT_EQ(scraper.alerts().size(), 1u);
  EXPECT_EQ(scraper.alerts()[0].rule, "q_deep");
  EXPECT_EQ(scraper.alerts()[0].host, 3u);
  EXPECT_TRUE(scraper.alerts()[0].raise);
  EXPECT_EQ(scraper.active_alerts(), 1u);

  // Re-raising while raised emits nothing; dipping below raise but above
  // clear neither clears nor resets the raise.
  scraper.ScrapeOnce();
  backlog->Set(7);
  scraper.ScrapeOnce();
  EXPECT_EQ(scraper.alerts().size(), 1u);
  EXPECT_EQ(scraper.active_alerts(), 1u);

  backlog->Set(2);
  scraper.ScrapeOnce();
  EXPECT_EQ(scraper.alerts().size(), 1u) << "one sample below clear is not a streak";
  scraper.ScrapeOnce();
  ASSERT_EQ(scraper.alerts().size(), 2u);
  EXPECT_FALSE(scraper.alerts()[1].raise);
  EXPECT_EQ(scraper.active_alerts(), 0u);
}

TEST(WatchdogTest, DeltaModeLinkSaturationFires) {
  // Synthetic link-saturation: drive the NIC busy-ns counter so each scrape
  // window's delta exceeds 90% of the interval. Uses the stock rule set.
  const SimTime interval = FromMillis(100);
  EventQueue queue;
  MetricsParams params;
  params.scrape_interval = interval;
  Metrics metrics(params);
  Counter* busy = metrics.Registry(9).GetCounter("net_nic_tx_busy_ns");
  Scraper scraper(queue, metrics);
  for (WatchdogRule& rule : obs::DefaultWatchdogRules(interval)) {
    scraper.AddRule(std::move(rule));
  }

  scraper.ScrapeOnce();  // first delta observation only sets the baseline
  busy->Add(FromMillis(95));
  scraper.ScrapeOnce();  // delta 95ms >= 90ms: streak 1
  EXPECT_TRUE(scraper.alerts().empty());
  busy->Add(FromMillis(95));
  scraper.ScrapeOnce();  // streak 2: raise
  ASSERT_EQ(scraper.alerts().size(), 1u);
  EXPECT_EQ(scraper.alerts()[0].rule, "link_saturation");
  EXPECT_EQ(scraper.alerts()[0].host, 9u);
  EXPECT_TRUE(scraper.alerts()[0].raise);

  busy->Add(FromMillis(10));
  scraper.ScrapeOnce();  // delta 10ms <= 50ms: clear streak 1
  busy->Add(FromMillis(10));
  scraper.ScrapeOnce();  // clear streak 2: clear
  ASSERT_EQ(scraper.alerts().size(), 2u);
  EXPECT_FALSE(scraper.alerts()[1].raise);
}

TEST(ExportTest, FormatHostAddrDottedQuad) {
  EXPECT_EQ(obs::FormatHostAddr(0x0a000901), "10.0.9.1");
  EXPECT_EQ(obs::FormatHostAddr(0), "0.0.0.0");
  EXPECT_EQ(obs::FormatHostAddr(0xffffffff), "255.255.255.255");
}

TEST(ExportTest, AppendFixedIsLocaleIndependentIntegerMath) {
  std::string out;
  obs::AppendFixed(out, 3.14159, 3);
  EXPECT_EQ(out, "3.142");
  out.clear();
  obs::AppendFixed(out, -2.5, 1);
  EXPECT_EQ(out, "-2.5");
  out.clear();
  obs::AppendFixed(out, 42.0, 0);
  EXPECT_EQ(out, "42");
  out.clear();
  obs::AppendFixed(out, 0.125, 2);
  EXPECT_EQ(out, "0.13");
}

TEST(ExportTest, PrometheusExpositionShape) {
  Metrics metrics;
  metrics.Registry(0x0a000064).GetCounter("reqs")->Add(5);
  metrics.Registry(0x0a000065).GetCounter("reqs")->Add(7);
  metrics.Registry(0x0a000064).GetGauge("depth")->Set(3);
  Histogram* lat = metrics.Registry(0x0a000064).GetHistogram("lat_ns");
  lat->Observe(1000);
  lat->Observe(2000);

  const std::string text = obs::ExportPrometheus(metrics);
  EXPECT_NE(text.find("# TYPE slice_reqs counter"), std::string::npos);
  EXPECT_NE(text.find("slice_reqs{host=\"10.0.0.100\"} 5"), std::string::npos);
  EXPECT_NE(text.find("slice_reqs{host=\"10.0.0.101\"} 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE slice_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE slice_lat_ns summary"), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("slice_lat_ns_count{host=\"10.0.0.100\"} 2"), std::string::npos);
}

TEST(ExportTest, JsonSnapshotIsDeterministicAndHashSensitive) {
  auto build = [](uint64_t reqs) {
    Metrics metrics;
    metrics.Registry(0x0a000002).GetCounter("b_counter")->Add(reqs);
    metrics.Registry(0x0a000002).GetCounter("a_counter")->Add(1);
    metrics.Registry(0x0a000001).GetGauge("depth")->Set(4);
    return obs::ExportMetricsJson(metrics);
  };
  const std::string one = build(5);
  const std::string two = build(5);
  EXPECT_EQ(one, two) << "same inputs must export byte-identical JSON";
  EXPECT_EQ(obs::MetricsContentHash(one), obs::MetricsContentHash(two));

  const std::string changed = build(6);
  EXPECT_NE(obs::MetricsContentHash(one), obs::MetricsContentHash(changed));

  // Sorted key order: host 10.0.0.1 before 10.0.0.2, a_counter before
  // b_counter regardless of registration order.
  EXPECT_LT(one.find("10.0.0.1"), one.find("10.0.0.2"));
  EXPECT_LT(one.find("a_counter"), one.find("b_counter"));
}

TEST(ExportTest, JsonIncludesScraperSeriesAndAlerts) {
  EventQueue queue;
  Metrics metrics;
  Gauge* g = metrics.Registry(5).GetGauge("q");
  Scraper scraper(queue, metrics);
  scraper.AddRule(WatchdogRule{.name = "q_deep",
                               .metric = "q",
                               .raise_threshold = 1,
                               .clear_threshold = 0,
                               .raise_streak = 1,
                               .clear_streak = 1});
  g->Set(2);
  scraper.ScrapeOnce();
  const std::string json = obs::ExportMetricsJson(metrics, &scraper);
  EXPECT_NE(json.find("\"scrapes\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"q_deep\""), std::string::npos);
  EXPECT_NE(json.find("\"series\""), std::string::npos);
}

}  // namespace
}  // namespace slice
