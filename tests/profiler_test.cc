// Unit tests for the profiler pillar (obs/profiler.h): the sim-time ledger
// (charges, canonical export, coverage math, FNV hash) and the wall-clock
// scope engine (path tree, nesting, overflow handling, folded rendering).
// Wall-clock magnitudes are machine-dependent, so assertions here are
// structural — counts, orderings and invariants, never absolute ns.
#include <gtest/gtest.h>

#include <string>

#include "src/obs/profiler.h"

namespace slice::obs {
namespace {

Profiler MakeProfiler() { return Profiler(ProfilerParams{.enabled = true}); }

TEST(ProfilerTest, ScopeAndCategoryNamesNeverFallThrough) {
  for (size_t s = 0; s < kNumProfScopes; ++s) {
    const char* name = ProfScopeName(static_cast<ProfScope>(s));
    ASSERT_NE(name, nullptr);
    EXPECT_STRNE(name, "?") << "scope " << s << " is missing from the X-macro";
  }
  for (size_t c = 0; c < kNumLedgerCats; ++c) {
    EXPECT_STRNE(LedgerCatName(static_cast<LedgerCat>(c)), "?");
  }
  EXPECT_STREQ(ProfScopeName(ProfScope::kSimDispatch), "sim.dispatch");
  EXPECT_STREQ(LedgerCatName(LedgerCat::kQueue), "queue");
}

TEST(ProfilerTest, LedgerChargesAccumulateAndPointerIsStable) {
  Profiler profiler = MakeProfiler();
  uint64_t* ledger = profiler.LedgerFor(0x0a000001);
  ASSERT_NE(ledger, nullptr);
  // std::map nodes never move: creating more hosts must not invalidate the
  // pointer components cached at set_profiler time.
  profiler.LedgerFor(0x0a000002);
  profiler.LedgerFor(0x01020304);
  EXPECT_EQ(ledger, profiler.LedgerFor(0x0a000001));

  ChargeSim(ledger, LedgerCat::kCpu, 100);
  ChargeSim(ledger, LedgerCat::kCpu, 50);
  ChargeSim(ledger, LedgerCat::kQueue, 25);
  ChargeSim(ledger, LedgerCat::kDisk, 7);
  EXPECT_EQ(ledger[static_cast<size_t>(LedgerCat::kCpu)], 150u);
  EXPECT_EQ(ledger[static_cast<size_t>(LedgerCat::kQueue)], 25u);
  EXPECT_EQ(ledger[static_cast<size_t>(LedgerCat::kDisk)], 7u);
  EXPECT_EQ(ledger[static_cast<size_t>(LedgerCat::kWire)], 0u);

  // The disabled-profiling path: a null cached pointer is a no-op, not a crash.
  ChargeSim(nullptr, LedgerCat::kCpu, 1000);
}

TEST(ProfilerTest, SimExportIsCanonicalWithCoverage) {
  Profiler profiler = MakeProfiler();
  uint64_t* ledger = profiler.LedgerFor(0x0a000001);
  ChargeSim(ledger, LedgerCat::kCpu, 600);
  ChargeSim(ledger, LedgerCat::kQueue, 25);  // waiting: excluded from coverage
  ChargeSim(ledger, LedgerCat::kDisk, 300);
  ChargeSim(ledger, LedgerCat::kWire, 90);
  profiler.SetBusyProvider([](std::map<uint32_t, uint64_t>* busy) {
    (*busy)[0x0a000001] = 1000;  // attributed 990 of 1000 busy -> 9900 bp
  });

  EXPECT_EQ(profiler.ExportProfileSimJson(),
            "{\"hosts\":[{\"host\":\"10.0.0.1\",\"cpu\":600,\"queue\":25,\"disk\":300,"
            "\"wire\":90,\"attributed\":990,\"busy\":1000,\"coverage_bp\":9900}],"
            "\"total\":{\"cpu\":600,\"queue\":25,\"disk\":300,\"wire\":90}}");
  EXPECT_EQ(profiler.MinCoverageBp(), 9900u);

  // The hash is the house FNV-1a over exactly those bytes.
  const std::string json = profiler.ExportProfileSimJson();
  uint64_t expected = 0xcbf29ce484222325ull;
  for (unsigned char c : json) {
    expected ^= c;
    expected *= 0x100000001b3ull;
  }
  EXPECT_EQ(profiler.ProfileSimHash(), expected);
}

TEST(ProfilerTest, BusyOnlyHostsSurfaceWithZeroCoverage) {
  // A host the busy provider knows about but the ledger never charged must
  // appear in the export (coverage 0) and drag MinCoverageBp to zero —
  // otherwise the >=99% acceptance bar could be gamed by not charging.
  Profiler profiler = MakeProfiler();
  ChargeSim(profiler.LedgerFor(0x0a000001), LedgerCat::kCpu, 1000);
  profiler.SetBusyProvider([](std::map<uint32_t, uint64_t>* busy) {
    (*busy)[0x0a000001] = 1000;
    (*busy)[0x0a000002] = 500;  // busy but unattributed
    (*busy)[0x0a000003] = 0;    // idle hosts don't count against coverage
  });
  const std::string json = profiler.ExportProfileSimJson();
  EXPECT_NE(json.find("\"host\":\"10.0.0.2\",\"cpu\":0"), std::string::npos) << json;
  EXPECT_EQ(profiler.MinCoverageBp(), 0u);
}

TEST(ProfilerTest, EmptyBusyProviderMeansFullCoverage) {
  Profiler profiler = MakeProfiler();
  EXPECT_EQ(profiler.MinCoverageBp(), 10000u);
}

TEST(ProfilerTest, WallScopesStayOutOfTheSimHash) {
  Profiler profiler = MakeProfiler();
  ChargeSim(profiler.LedgerFor(0x0a000001), LedgerCat::kCpu, 123);
  const uint64_t before = profiler.ProfileSimHash();
  for (int i = 0; i < 100; ++i) {
    Profiler::Scope outer(&profiler, ProfScope::kRpcDispatch);
    Profiler::Scope inner(&profiler, ProfScope::kStorageCache);
  }
  EXPECT_EQ(profiler.ProfileSimHash(), before)
      << "wall-clock activity must never move the pinned sim hash";
}

TEST(ProfilerTest, ScopeTreeRecordsPathsAndCounts) {
  Profiler profiler = MakeProfiler();
  for (int i = 0; i < 3; ++i) {
    Profiler::Scope outbound(&profiler, ProfScope::kUproxyOutbound);
    {
      Profiler::Scope decode(&profiler, ProfScope::kUproxyDecode);
    }
    if (i == 0) {
      Profiler::Scope route(&profiler, ProfScope::kUproxyRoute);
    }
  }
  EXPECT_EQ(profiler.ScopeCount(ProfScope::kUproxyOutbound), 3u);
  EXPECT_EQ(profiler.ScopeCount(ProfScope::kUproxyDecode), 3u);
  EXPECT_EQ(profiler.ScopeCount(ProfScope::kUproxyRoute), 1u);
  EXPECT_EQ(profiler.ScopeCount(ProfScope::kDirNameOp), 0u);
  // Inclusive can never undercut the children it contains.
  EXPECT_GE(profiler.ScopeInclusiveNs(ProfScope::kUproxyOutbound),
            profiler.ScopeExclusiveNs(ProfScope::kUproxyOutbound));

  // Collapsed-stack rendering: root->leaf paths, sorted, one per line.
  const std::string folded = profiler.ExportProfileFolded();
  EXPECT_NE(folded.find("uproxy.outbound "), std::string::npos) << folded;
  EXPECT_NE(folded.find("uproxy.outbound;uproxy.decode "), std::string::npos) << folded;
  EXPECT_NE(folded.find("uproxy.outbound;uproxy.route "), std::string::npos) << folded;
  EXPECT_EQ(folded.back(), '\n');

  // The full export wraps sim + wall under one "profile" object.
  const std::string json = profiler.ExportProfileJson();
  EXPECT_EQ(json.rfind("{\"profile\":{\"sim\":", 0), 0u) << json;
  EXPECT_NE(json.find("\"wall\":{\"dropped\":0,\"scopes\":["), std::string::npos) << json;
  EXPECT_NE(json.find("\"stack\":\"uproxy.outbound;uproxy.decode\",\"count\":3"),
            std::string::npos)
      << json;
}

TEST(ProfilerTest, DepthOverflowIsCountedAndRebalances) {
  Profiler profiler = MakeProfiler();
  // Push well past kMaxDepth (32): the overflow levels record nothing but
  // are counted, and the matched pops restore a working stack.
  constexpr int kPushes = 40;
  for (int i = 0; i < kPushes; ++i) {
    profiler.BeginScope(ProfScope::kSimDispatch);
  }
  EXPECT_EQ(profiler.dropped_scopes(), static_cast<uint64_t>(kPushes - 32));
  for (int i = 0; i < kPushes; ++i) {
    profiler.EndScope();
  }
  profiler.EndScope();  // unbalanced extra pop must be ignored, not crash

  const uint64_t count_before = profiler.ScopeCount(ProfScope::kUproxyInbound);
  {
    Profiler::Scope scope(&profiler, ProfScope::kUproxyInbound);
  }
  EXPECT_EQ(profiler.ScopeCount(ProfScope::kUproxyInbound), count_before + 1);
}

TEST(ProfilerTest, ResetWallClearsScopesButKeepsTheLedger) {
  Profiler profiler = MakeProfiler();
  uint64_t* ledger = profiler.LedgerFor(0x0a000001);
  ChargeSim(ledger, LedgerCat::kWire, 77);
  {
    Profiler::Scope scope(&profiler, ProfScope::kStorageDisk);
  }
  ASSERT_EQ(profiler.ScopeCount(ProfScope::kStorageDisk), 1u);

  profiler.ResetWall();
  EXPECT_EQ(profiler.ScopeCount(ProfScope::kStorageDisk), 0u);
  EXPECT_TRUE(profiler.ExportProfileFolded().empty());
  // The sim ledger is the deterministic record — a wall reset (bench warm-up
  // boundary) must not touch it.
  EXPECT_EQ(ledger[static_cast<size_t>(LedgerCat::kWire)], 77u);
}

TEST(ProfilerTest, NullScopeGuardIsANoOp) {
  // Components hold a null Profiler* when profiling is off; the RAII guard
  // must degrade to a single branch with no side effects.
  Profiler::Scope scope(nullptr, ProfScope::kRpcDispatch);
}

}  // namespace
}  // namespace slice::obs
