// Unit tests for ONC RPC: message codecs, peek fast path, client
// retransmission, server dispatch, duplicate request cache, cost charging.
#include <gtest/gtest.h>

#include "src/rpc/rpc_client.h"
#include "src/rpc/rpc_message.h"
#include "src/rpc/rpc_server.h"

namespace slice {
namespace {

constexpr uint32_t kTestProg = 100003;
constexpr uint32_t kTestVers = 3;
constexpr NetAddr kClientAddr = 0x0a000001;
constexpr NetAddr kServerAddr = 0x0a000010;
constexpr NetPort kServerPort = 2049;

TEST(RpcMessageTest, CallRoundTrip) {
  RpcCall call;
  call.xid = 77;
  call.prog = kTestProg;
  call.vers = kTestVers;
  call.proc = 6;
  call.cred.machine_name = "testhost";
  call.cred.uid = 100;
  call.cred.gids = {1, 2, 3};
  XdrEncoder args;
  args.PutUint64(0xfeedface);
  call.args = args.bytes();

  Result<RpcMessageView> view = DecodeRpcMessage(call.Encode());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->type, RpcMsgType::kCall);
  EXPECT_EQ(view->xid, 77u);
  EXPECT_EQ(view->prog, kTestProg);
  EXPECT_EQ(view->proc, 6u);
  EXPECT_EQ(view->cred.machine_name, "testhost");
  EXPECT_EQ(view->cred.uid, 100u);
  EXPECT_EQ(view->cred.gids.size(), 3u);

  XdrDecoder body(view->body);
  EXPECT_EQ(body.GetUint64().value(), 0xfeedfaceull);
}

TEST(RpcMessageTest, ReplyRoundTrip) {
  RpcReply reply;
  reply.xid = 88;
  XdrEncoder result;
  result.PutUint32(123);
  reply.result = result.bytes();

  Result<RpcMessageView> view = DecodeRpcMessage(reply.Encode());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->type, RpcMsgType::kReply);
  EXPECT_EQ(view->xid, 88u);
  EXPECT_EQ(view->accept_stat, RpcAcceptStat::kSuccess);
  XdrDecoder body(view->body);
  EXPECT_EQ(body.GetUint32().value(), 123u);
}

TEST(RpcMessageTest, ErrorReplyHasNoBody) {
  RpcReply reply;
  reply.xid = 9;
  reply.stat = RpcAcceptStat::kProcUnavail;
  Result<RpcMessageView> view = DecodeRpcMessage(reply.Encode());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->accept_stat, RpcAcceptStat::kProcUnavail);
  EXPECT_TRUE(view->body.empty());
}

TEST(RpcMessageTest, PeekMatchesFullDecode) {
  RpcCall call;
  call.xid = 1234;
  call.prog = kTestProg;
  call.vers = 3;
  call.proc = 8;
  call.cred.machine_name = "some-longer-machine-name";  // variable length
  call.cred.gids = {10, 20, 30, 40, 50};
  XdrEncoder args;
  args.PutUint32(0xabcd);
  call.args = args.bytes();
  const Bytes wire = call.Encode();

  Result<RpcPeek> peek = PeekRpcMessage(wire);
  Result<RpcMessageView> full = DecodeRpcMessage(wire);
  ASSERT_TRUE(peek.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(peek->xid, full->xid);
  EXPECT_EQ(peek->proc, full->proc);
  EXPECT_EQ(peek->body_offset, full->body_offset);
  EXPECT_EQ(GetU32(wire.data() + peek->body_offset), 0xabcdu);
}

TEST(RpcMessageTest, PeekVariableCredLengthsShiftBodyOffset) {
  RpcCall a;
  a.cred.machine_name = "x";
  RpcCall b = a;
  b.cred.machine_name = "a-much-longer-machine-name-here";
  const size_t off_a = PeekRpcMessage(a.Encode())->body_offset;
  const size_t off_b = PeekRpcMessage(b.Encode())->body_offset;
  EXPECT_GT(off_b, off_a);
}

TEST(RpcMessageTest, TruncatedMessageIsCorrupt) {
  RpcCall call;
  Bytes wire = call.Encode();
  for (size_t keep = 0; keep < wire.size(); keep += 7) {
    Result<RpcMessageView> view =
        DecodeRpcMessage(ByteSpan(wire.data(), keep));
    EXPECT_FALSE(view.ok()) << "keep=" << keep;
  }
}

TEST(RpcMessageTest, BadVersionRejected) {
  RpcCall call;
  Bytes wire = call.Encode();
  PutU32(wire.data() + 8, 3);  // rpcvers = 3
  EXPECT_FALSE(DecodeRpcMessage(wire).ok());
  EXPECT_FALSE(PeekRpcMessage(wire).ok());
}

// Echo server: returns its args, charging 10us CPU.
class EchoServer : public RpcServerNode {
 public:
  using RpcServerNode::RpcServerNode;

  int calls = 0;

 protected:
  RpcAcceptStat HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                           ServiceCost& cost) override {
    ++calls;
    if (call.proc == 999) {
      return RpcAcceptStat::kProcUnavail;
    }
    reply.PutOpaqueFixed(call.body);
    cost.AddCpu(FromMicros(10));
    return RpcAcceptStat::kSuccess;
  }
};

class RpcEndToEndTest : public ::testing::Test {
 protected:
  RpcEndToEndTest()
      : net_(queue_, NetworkParams{}),
        server_(net_, queue_, kServerAddr, kServerPort),
        client_host_(net_, kClientAddr),
        client_(client_host_, queue_) {}

  EventQueue queue_;
  Network net_;
  EchoServer server_;
  Host client_host_;
  RpcClient client_;
};

TEST_F(RpcEndToEndTest, CallAndReply) {
  XdrEncoder args;
  args.PutUint32(55);
  Status got_status(StatusCode::kInternal);
  uint32_t got_value = 0;
  client_.Call(server_.endpoint(), kTestProg, kTestVers, 1, args.Take(),
               [&](Status st, const RpcMessageView& reply) {
                 got_status = st;
                 if (st.ok()) {
                   XdrDecoder dec(reply.body);
                   got_value = dec.GetUint32().value();
                 }
               });
  queue_.RunUntilIdle();
  EXPECT_TRUE(got_status.ok()) << got_status.ToString();
  EXPECT_EQ(got_value, 55u);
  EXPECT_EQ(server_.calls, 1);
  EXPECT_EQ(client_.pending(), 0u);
}

TEST_F(RpcEndToEndTest, ServiceTimeIsCharged) {
  XdrEncoder args;
  args.PutUint32(1);
  SimTime reply_at = 0;
  client_.Call(server_.endpoint(), kTestProg, kTestVers, 1, args.Take(),
               [&](Status, const RpcMessageView&) { reply_at = queue_.now(); });
  queue_.RunUntilIdle();
  // Two wire crossings (~30us switch each) plus 10us service.
  EXPECT_GT(reply_at, FromMicros(70));
  EXPECT_LT(reply_at, FromMillis(2));
}

TEST_F(RpcEndToEndTest, ProcUnavailSurfacesAsError) {
  Status got_status;
  client_.Call(server_.endpoint(), kTestProg, kTestVers, 999, Bytes{},
               [&](Status st, const RpcMessageView&) { got_status = st; });
  queue_.RunUntilIdle();
  EXPECT_EQ(got_status.code(), StatusCode::kInternal);
}

TEST_F(RpcEndToEndTest, RetransmitsThroughLoss) {
  net_.set_loss_rate(0.25);  // deterministic seed; 5 transmissions suffice
  int ok_count = 0;
  constexpr int kCalls = 50;
  for (int i = 0; i < kCalls; ++i) {
    XdrEncoder args;
    args.PutUint32(static_cast<uint32_t>(i));
    client_.Call(server_.endpoint(), kTestProg, kTestVers, 1, args.Take(),
                 [&](Status st, const RpcMessageView&) { ok_count += st.ok() ? 1 : 0; });
  }
  queue_.RunUntilIdle();
  EXPECT_EQ(ok_count, kCalls);  // 5 transmissions beat 40% loss w.h.p.
  EXPECT_GT(client_.retransmissions(), 0u);
}

TEST_F(RpcEndToEndTest, DuplicateCacheAnswersRetransmits) {
  // Drop nothing, but force a retransmission by making the timeout shorter
  // than the service time.
  RpcClientParams fast;
  fast.retransmit_timeout = FromMicros(50);
  RpcClient impatient(client_host_, queue_, fast);
  int replies = 0;
  XdrEncoder args;
  args.PutUint32(7);
  impatient.Call(server_.endpoint(), kTestProg, kTestVers, 1, args.Take(),
                 [&](Status st, const RpcMessageView&) { replies += st.ok() ? 1 : 0; });
  queue_.RunUntilIdle();
  EXPECT_EQ(replies, 1);
  // The server must not have executed the call twice.
  EXPECT_EQ(server_.calls, 1);
  EXPECT_GT(server_.duplicates_answered() + impatient.retransmissions(), 0u);
}

TEST_F(RpcEndToEndTest, TimeoutWhenServerDown) {
  server_.Fail();
  Status got_status;
  client_.Call(server_.endpoint(), kTestProg, kTestVers, 1, Bytes{},
               [&](Status st, const RpcMessageView&) { got_status = st; });
  queue_.RunUntilIdle();
  EXPECT_EQ(got_status.code(), StatusCode::kTimedOut);
}

TEST_F(RpcEndToEndTest, TotalLossGivesUpInBoundedTime) {
  // Regression: the exponential backoff used to scale without bound, so a
  // generous retry budget against a black-holed server pushed the next
  // timeout out by pow(backoff, tries) — the call effectively never gave up.
  // With the per-try ceiling the worst case is max_transmissions * ceiling.
  net_.set_loss_rate(1.0);
  RpcClientParams params;
  params.retransmit_timeout = FromMillis(100);
  params.backoff_factor = 4.0;
  params.max_transmissions = 20;
  params.max_retransmit_timeout = FromSeconds(1);
  RpcClient stubborn(client_host_, queue_, params);
  Status got_status;
  stubborn.Call(server_.endpoint(), kTestProg, kTestVers, 1, Bytes{},
                [&](Status st, const RpcMessageView&) { got_status = st; });
  queue_.RunUntilIdle();
  EXPECT_EQ(got_status.code(), StatusCode::kTimedOut);
  EXPECT_EQ(stubborn.pending(), 0u);
  // Unclamped, transmission 20 alone would wait 100ms * 4^19 ≈ 870 years.
  EXPECT_LT(queue_.now(), FromSeconds(21));
  EXPECT_EQ(stubborn.retransmissions(), 19u);
}

TEST_F(RpcEndToEndTest, ServerRestartRecovers) {
  server_.Fail();
  server_.Restart();
  Status got_status(StatusCode::kInternal);
  XdrEncoder args;
  args.PutUint32(3);
  client_.Call(server_.endpoint(), kTestProg, kTestVers, 1, args.Take(),
               [&](Status st, const RpcMessageView&) { got_status = st; });
  queue_.RunUntilIdle();
  EXPECT_TRUE(got_status.ok());
}

TEST_F(RpcEndToEndTest, ConcurrentCallsMatchByXid) {
  std::vector<uint32_t> results(20, 0);
  for (uint32_t i = 0; i < 20; ++i) {
    XdrEncoder args;
    args.PutUint32(i * 100);
    client_.Call(server_.endpoint(), kTestProg, kTestVers, 1, args.Take(),
                 [&results, i](Status st, const RpcMessageView& reply) {
                   ASSERT_TRUE(st.ok());
                   XdrDecoder dec(reply.body);
                   results[i] = dec.GetUint32().value();
                 });
  }
  queue_.RunUntilIdle();
  for (uint32_t i = 0; i < 20; ++i) {
    EXPECT_EQ(results[i], i * 100);
  }
}

// --- duplicate request cache capacity and eviction ---
//
// Raw-packet harness: sends RpcCall packets with hand-picked xids from a
// bound client port, so the test controls exactly which (client, xid) keys
// the DRC sees and in what order.
class DrcCapacityTest : public ::testing::Test {
 protected:
  static constexpr size_t kDrcEntries = 4;

  DrcCapacityTest()
      : net_(queue_, NetworkParams{}),
        server_(net_, queue_, kServerAddr, kServerPort,
                RpcServerParams{.duplicate_cache_entries = kDrcEntries}),
        client_host_(net_, kClientAddr) {
    src_port_ = client_host_.Bind(0, [this](Packet&& pkt) {
      Result<RpcMessageView> view = DecodeRpcMessage(pkt.payload());
      ASSERT_TRUE(view.ok());
      reply_xids_.push_back(view->xid);
    });
  }

  // Sends proc 1 (echo) with the given xid and runs the sim to completion.
  void Call(uint32_t xid) {
    RpcCall call;
    call.xid = xid;
    call.prog = kTestProg;
    call.vers = kTestVers;
    call.proc = 1;
    XdrEncoder args;
    args.PutUint32(xid * 10);
    call.args = args.Take();
    client_host_.Send(Packet::MakeUdp(Endpoint{kClientAddr, src_port_},
                                      server_.endpoint(), call.Encode()));
    queue_.RunUntilIdle();
  }

  EventQueue queue_;
  Network net_;
  EchoServer server_;
  Host client_host_;
  NetPort src_port_ = 0;
  std::vector<uint32_t> reply_xids_;
};

TEST_F(DrcCapacityTest, FillPastCapacityEvictsOldestInOrder) {
  // Fill past capacity: 6 distinct xids through a 4-entry cache.
  for (uint32_t xid = 1; xid <= 6; ++xid) {
    Call(xid);
  }
  EXPECT_EQ(server_.calls, 6);
  EXPECT_EQ(server_.duplicates_answered(), 0u);
  ASSERT_EQ(reply_xids_.size(), 6u);

  // The newest 4 xids {3,4,5,6} are cached: retransmits replay without
  // re-execution.
  Call(5);
  Call(6);
  EXPECT_EQ(server_.calls, 6) << "cached retransmits must not re-execute";
  EXPECT_EQ(server_.duplicates_answered(), 2u);

  // The oldest 2 xids {1,2} were evicted — FIFO, insertion order. Their
  // retransmits re-execute (the procedure is idempotent) instead of
  // crashing or replaying a stale entry.
  Call(1);
  EXPECT_EQ(server_.calls, 7) << "evicted xid re-executes";
  // Re-inserting 1 evicted 3 (still FIFO); 2 was already gone.
  Call(2);
  EXPECT_EQ(server_.calls, 8);
  Call(3);
  EXPECT_EQ(server_.calls, 9) << "xid 3 was pushed out by the re-inserts";
  // Cache is now {6,1,2,3}: 6 survived all along, and the re-executed xids
  // are cached like any first execution.
  Call(6);
  Call(1);
  EXPECT_EQ(server_.calls, 9);
  EXPECT_EQ(server_.duplicates_answered(), 4u);

  // Every send — executed, replayed, or re-executed — produced a reply.
  EXPECT_EQ(reply_xids_.size(), 13u);
  EXPECT_EQ(reply_xids_.back(), 1u);
}

TEST_F(DrcCapacityTest, SameXidDifferentClientPortsAreDistinctEntries) {
  // The DRC key is (client endpoint, xid), not xid alone: the same xid from
  // another port is a fresh request, not a replay.
  Call(42);
  const NetPort other = client_host_.Bind(0, [](Packet&&) {});
  RpcCall call;
  call.xid = 42;
  call.prog = kTestProg;
  call.vers = kTestVers;
  call.proc = 1;
  XdrEncoder args;
  args.PutUint32(7);
  call.args = args.Take();
  client_host_.Send(Packet::MakeUdp(Endpoint{kClientAddr, other}, server_.endpoint(),
                                    call.Encode()));
  queue_.RunUntilIdle();
  EXPECT_EQ(server_.calls, 2);
  EXPECT_EQ(server_.duplicates_answered(), 0u);
}

TEST_F(DrcCapacityTest, SameXidDifferentProcExecutesInsteadOfReplaying) {
  // Regression: the DRC key must cover the full call identity
  // (client, xid, prog, vers, proc). A client that recycles an xid for a
  // different procedure must have that procedure executed — replaying the
  // cached reply of the other proc would hand it the wrong result bytes.
  Call(42);  // proc 1, now cached
  ASSERT_EQ(server_.calls, 1);

  auto send_variant = [&](uint32_t prog, uint32_t vers, uint32_t proc) {
    RpcCall call;
    call.xid = 42;
    call.prog = prog;
    call.vers = vers;
    call.proc = proc;
    XdrEncoder args;
    args.PutUint32(7);
    call.args = args.Take();
    client_host_.Send(Packet::MakeUdp(Endpoint{kClientAddr, src_port_},
                                      server_.endpoint(), call.Encode()));
    queue_.RunUntilIdle();
  };

  // Same client endpoint + same xid, but a different proc: fresh execution.
  send_variant(kTestProg, kTestVers, 2);
  EXPECT_EQ(server_.calls, 2) << "different proc must not replay";
  EXPECT_EQ(server_.duplicates_answered(), 0u);

  // Different version, same everything else: also a distinct entry, not a
  // replay of the cached proc-1 result.
  send_variant(kTestProg, kTestVers + 1, 1);
  EXPECT_EQ(server_.calls, 3);
  EXPECT_EQ(server_.duplicates_answered(), 0u);

  // Exact retransmits of the first two calls replay their own entries.
  Call(42);
  send_variant(kTestProg, kTestVers, 2);
  EXPECT_EQ(server_.calls, 3) << "true retransmits must not re-execute";
  EXPECT_EQ(server_.duplicates_answered(), 2u);
  // Every send got a reply (executed, rejected, or replayed).
  EXPECT_EQ(reply_xids_.size(), 5u);
}

TEST_F(DrcCapacityTest, SustainedTrafficStaysBounded) {
  // 100 distinct xids through the 4-entry cache: no blowup, no crash, every
  // call executed exactly once and replied to.
  for (uint32_t xid = 100; xid < 200; ++xid) {
    Call(xid);
  }
  EXPECT_EQ(server_.calls, 100);
  EXPECT_EQ(server_.duplicates_answered(), 0u);
  EXPECT_EQ(reply_xids_.size(), 100u);
  // Only the last kDrcEntries are replayable.
  for (uint32_t xid = 196; xid < 200; ++xid) {
    Call(xid);
  }
  EXPECT_EQ(server_.calls, 100);
  EXPECT_EQ(server_.duplicates_answered(), 4u);
  Call(150);  // long evicted -> re-executed
  EXPECT_EQ(server_.calls, 101);
}

TEST_F(RpcEndToEndTest, CpuQueueingSerializesRequests) {
  // 100 requests, 10us CPU each: last reply no earlier than 1ms of service.
  int done = 0;
  for (int i = 0; i < 100; ++i) {
    XdrEncoder args;
    args.PutUint32(1);
    client_.Call(server_.endpoint(), kTestProg, kTestVers, 1, args.Take(),
                 [&](Status, const RpcMessageView&) { ++done; });
  }
  queue_.RunUntilIdle();
  EXPECT_EQ(done, 100);
  EXPECT_GT(queue_.now(), FromMicros(1000));
}

}  // namespace
}  // namespace slice
