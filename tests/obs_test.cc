// Tests for the observability subsystem (src/obs): span lifecycle, bounded
// ring eviction, context propagation across a multi-hop request through a
// real ensemble, critical-path accounting that explains end-to-end latency,
// chrome-trace export / content hashing, and the allocation-free disabled
// fast path.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "src/obs/critical_path.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"
#include "src/slice/ensemble.h"

// Global allocation counter for the disabled-fast-path test. Counts every
// operator-new in the process; tests measure deltas around the calls under
// scrutiny (the harness itself allocates, so absolute values mean nothing).
static uint64_t g_news = 0;

void* operator new(std::size_t size) {
  ++g_news;
  if (void* p = std::malloc(size ? size : 1)) {
    return p;
  }
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slice {
namespace {

using obs::Span;
using obs::SpanCat;
using obs::TraceContext;
using obs::Tracer;
using obs::TracerParams;

TEST(TracerTest, SpanLifecycleRecordsAllFields) {
  Tracer tracer;
  const TraceContext ctx{tracer.NewTraceId(), tracer.NewSpanId()};
  ASSERT_TRUE(ctx.valid());

  const uint64_t root_id =
      tracer.RecordSpan(/*host=*/7, ctx, SpanCat::kOther, "op:read", 100, 900, /*root=*/true);
  const uint64_t child_id = tracer.RecordSpan(7, ctx, SpanCat::kCpu, "uproxy_cpu", 120, 180);
  tracer.RecordInstant(7, ctx, "route:storage", 100);
  EXPECT_EQ(root_id, ctx.span_id) << "root span reuses the minted root id";
  EXPECT_NE(child_id, root_id);

  std::vector<Span> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), 3u);
  const Span& root = spans[0];
  EXPECT_EQ(root.trace_id, ctx.trace_id);
  EXPECT_EQ(root.span_id, ctx.span_id);
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_TRUE(root.root);
  EXPECT_EQ(root.start, 100u);
  EXPECT_EQ(root.end, 900u);
  EXPECT_EQ(root.host, 7u);
  EXPECT_EQ(root.name_view(), "op:read");

  const Span& child = spans[1];
  EXPECT_EQ(child.parent_id, ctx.span_id) << "children hang off the root";
  EXPECT_EQ(child.cat, SpanCat::kCpu);
  EXPECT_FALSE(child.root);

  const Span& marker = spans[2];
  EXPECT_TRUE(marker.instant);
  EXPECT_EQ(marker.start, marker.end);
  EXPECT_EQ(tracer.total_recorded(), 3u);
}

TEST(TracerTest, UntracedContextAndDisabledTracerRecordNothing) {
  Tracer tracer;
  tracer.RecordSpan(1, TraceContext{}, SpanCat::kCpu, "x", 0, 5);
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_EQ(tracer.num_rings(), 0u);

  Tracer off(TracerParams{.enabled = false});
  EXPECT_EQ(off.NewTraceId(), 0u) << "disabled tracer mints only untraced ids";
  off.RecordSpan(1, TraceContext{5, 6}, SpanCat::kCpu, "x", 0, 5);
  EXPECT_EQ(off.total_recorded(), 0u);
}

TEST(TracerTest, EndClampedToStart) {
  Tracer tracer;
  const TraceContext ctx{tracer.NewTraceId(), tracer.NewSpanId()};
  tracer.RecordSpan(1, ctx, SpanCat::kWire, "w", 500, 400);  // end < start
  std::vector<Span> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].end, spans[0].start);
}

TEST(SpanRingTest, OverflowEvictsOldestInOrder) {
  TracerParams params;
  params.ring_capacity = 8;
  Tracer tracer(params);
  const TraceContext ctx{tracer.NewTraceId(), tracer.NewSpanId()};
  for (int i = 0; i < 20; ++i) {
    tracer.RecordSpan(3, ctx, SpanCat::kCpu, "s", static_cast<SimTime>(i),
                      static_cast<SimTime>(i) + 1);
  }
  ASSERT_EQ(tracer.num_rings(), 1u);
  const obs::SpanRing& ring = tracer.rings().at(3);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring.capacity(), 8u);
  EXPECT_EQ(ring.evicted(), 12u);
  EXPECT_EQ(tracer.total_evicted(), 12u);
  EXPECT_EQ(tracer.total_recorded(), 20u);

  // Survivors are exactly the 8 newest, oldest-first.
  std::vector<Span> spans = tracer.Collect();
  ASSERT_EQ(spans.size(), 8u);
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].start, 12 + i);
  }
}

TEST(ScopedContextTest, RestoresPreviousContextAndToleratesNullTracer) {
  Tracer tracer;
  const TraceContext outer{1, 2};
  const TraceContext inner{3, 4};
  tracer.SetCurrent(outer);
  {
    obs::ScopedContext scope(&tracer, inner);
    EXPECT_EQ(tracer.current(), inner);
    {
      obs::ScopedContext nested(&tracer, TraceContext{});
      EXPECT_FALSE(tracer.current().valid());
    }
    EXPECT_EQ(tracer.current(), inner);
  }
  EXPECT_EQ(tracer.current(), outer);
  obs::ScopedContext null_scope(nullptr, inner);  // must not crash
}

// --- context propagation through a real multi-hop request ---

TEST(TracePropagationTest, MirroredWriteSpansThreePlusHostsUnderOneTrace) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_storage_nodes = 2;
  config.num_small_file_servers = 0;
  config.num_coordinators = 1;
  config.default_replication = 2;
  config.mgmt.enabled = false;
  config.trace.enabled = true;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);

  CreateRes created = client->Create(ensemble.root(), "mirrored").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  Bytes data(100000, 0xab);  // beyond the 64KB threshold -> bulk mirrored path
  ASSERT_EQ(client->Write(*created.object, 70000, data, StableHow::kFileSync).value().status,
            Nfsstat3::kOk);

  std::vector<Span> spans = ensemble.CollectSpans();
  const Span* root = nullptr;
  for (const Span& span : spans) {
    if (span.root && span.name_view() == "op:write") {
      root = &span;
    }
  }
  ASSERT_NE(root, nullptr) << "mirrored write recorded a root span";

  // Every hop of the fan-out — µproxy CPU, wire legs, coordinator intent
  // log, both replica storage nodes — shares the one trace id and hangs off
  // the root span.
  std::set<uint32_t> hosts;
  size_t in_trace = 0;
  for (const Span& span : spans) {
    if (span.trace_id != root->trace_id) {
      continue;
    }
    ++in_trace;
    hosts.insert(span.host);
    if (!span.root) {
      EXPECT_EQ(span.parent_id, root->span_id);
      EXPECT_GE(span.start, root->start);
    }
  }
  EXPECT_GE(in_trace, 8u);
  EXPECT_GE(hosts.size(), 4u) << "client + coordinator + two replicas";
  // Both storage replicas appear (10.0.3.x address block).
  EXPECT_TRUE(hosts.contains(ensemble.storage_node(0).addr()));
  EXPECT_TRUE(hosts.contains(ensemble.storage_node(1).addr()));
}

// --- critical-path accounting ---

TEST(CriticalPathTest, SyntheticSpansSumExactly) {
  Tracer tracer;
  const TraceContext ctx{tracer.NewTraceId(), tracer.NewSpanId()};
  tracer.RecordSpan(1, ctx, SpanCat::kOther, "op:read", 0, 1000, /*root=*/true);
  tracer.RecordSpan(1, ctx, SpanCat::kCpu, "cpu", 0, 300);
  tracer.RecordSpan(1, ctx, SpanCat::kWire, "wire", 300, 600);
  // Overlap: disk outranks wire for [550, 600).
  tracer.RecordSpan(2, ctx, SpanCat::kDisk, "disk", 550, 900);
  // [900, 1000) is uncovered -> other.

  obs::CriticalPathReport report = obs::CriticalPath::Analyze(tracer.Collect());
  EXPECT_EQ(report.traces_analyzed, 1u);
  ASSERT_TRUE(report.per_class.contains("op:read"));
  const obs::CatBreakdown& b = report.per_class.at("op:read");
  EXPECT_EQ(b.ops, 1u);
  EXPECT_EQ(b.total, 1000u);
  EXPECT_EQ(b.by_cat[static_cast<size_t>(SpanCat::kCpu)], 300u);
  EXPECT_EQ(b.by_cat[static_cast<size_t>(SpanCat::kWire)], 250u);
  EXPECT_EQ(b.by_cat[static_cast<size_t>(SpanCat::kDisk)], 350u);
  EXPECT_EQ(b.by_cat[static_cast<size_t>(SpanCat::kOther)], 100u);
  EXPECT_EQ(b.attributed(), 900u);
  EXPECT_NEAR(b.coverage(), 0.9, 1e-9);
  // Categories never sum past the end-to-end window.
  EXPECT_EQ(b.attributed() + b.by_cat[static_cast<size_t>(SpanCat::kOther)], b.total);
}

TEST(CriticalPathTest, LossFreeEnsembleCoverageAtLeast99Percent) {
  EventQueue queue;
  EnsembleConfig config;
  config.num_dir_servers = 2;
  config.num_storage_nodes = 3;
  config.num_small_file_servers = 2;
  config.num_coordinators = 1;
  config.mgmt.enabled = false;
  config.trace.enabled = true;
  Ensemble ensemble(queue, config);
  auto client = ensemble.MakeSyncClient(0);

  // Mixed workload touching every service class: names, small-file I/O,
  // bulk I/O, commits, attribute reads.
  const FileHandle root = ensemble.root();
  for (int i = 0; i < 4; ++i) {
    CreateRes created = client->Create(root, "f" + std::to_string(i)).value();
    ASSERT_EQ(created.status, Nfsstat3::kOk);
    Bytes small(4096, static_cast<uint8_t>(i));
    ASSERT_EQ(client->Write(*created.object, 0, small, StableHow::kUnstable).value().status,
              Nfsstat3::kOk);
    Bytes bulk(32768, static_cast<uint8_t>(i + 1));
    ASSERT_EQ(client->Write(*created.object, 70000, bulk, StableHow::kUnstable).value().status,
              Nfsstat3::kOk);
    ASSERT_EQ(client->Commit(*created.object).value().status, Nfsstat3::kOk);
    ASSERT_EQ(client->Read(*created.object, 0, 4096).value().status, Nfsstat3::kOk);
    (void)client->Getattr(*created.object).value();
    ASSERT_EQ(client->Lookup(root, "f" + std::to_string(i)).value().status, Nfsstat3::kOk);
  }

  obs::CriticalPathReport report = ensemble.AnalyzeCriticalPath();
  EXPECT_GE(report.traces_analyzed, 24u);
  EXPECT_EQ(report.traces_without_root, 0u) << "loss-free: every trace completed";
  ASSERT_GT(report.overall.total, 0u);
  // The acceptance bar: every opclass (and the aggregate) explains >= 99%
  // of its end-to-end latency from recorded wire/queue/cpu/disk/service
  // segments. The instrumentation is gap-free on the loss-free path.
  for (const auto& [opclass, breakdown] : report.per_class) {
    EXPECT_GE(breakdown.coverage(), 0.99) << opclass;
    EXPECT_LE(breakdown.attributed(), breakdown.total) << opclass;
  }
  EXPECT_GE(report.overall.coverage(), 0.99);

  // The human-readable table mentions every opclass.
  const std::string table = obs::CriticalPath::Format(report);
  for (const auto& [opclass, breakdown] : report.per_class) {
    (void)breakdown;
    EXPECT_NE(table.find(opclass), std::string::npos) << table;
  }
}

// --- export and hashing ---

TEST(TraceExportTest, ChromeJsonShapeAndCanonicalHashStability) {
  Tracer tracer;
  const TraceContext ctx{tracer.NewTraceId(), tracer.NewSpanId()};
  tracer.RecordSpan(9, ctx, SpanCat::kOther, "op:read", 1000, 4500, /*root=*/true);
  tracer.RecordSpan(9, ctx, SpanCat::kWire, "wire_tx", 1500, 2500);
  tracer.RecordInstant(9, ctx, "rpc_retransmit", 2000);

  std::vector<Span> spans = tracer.Collect();
  const std::string json = obs::ExportChromeTrace(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"op:read\""), std::string::npos);
  // 1500ns -> 1.500us: integer-formatted microseconds, no float formatting.
  EXPECT_NE(json.find("\"ts\":1.500"), std::string::npos);

  const uint64_t hash = obs::TraceContentHash(spans);
  EXPECT_NE(hash, 0u);
  // Hash is over canonical order: a permuted input hashes identically.
  std::vector<Span> shuffled = {spans[2], spans[0], spans[1]};
  EXPECT_EQ(obs::TraceContentHash(obs::CanonicalOrder(shuffled)), hash);
  // Any field change shows up.
  std::vector<Span> tweaked = spans;
  tweaked[1].end += 1;
  EXPECT_NE(obs::TraceContentHash(tweaked), hash);
}

// --- the disabled fast path allocates nothing ---

TEST(TracerTest, DisabledFastPathAllocatesNothing) {
  Tracer off(TracerParams{.enabled = false});
  const TraceContext ctx{12, 34};

  const uint64_t before = g_news;
  for (int i = 0; i < 1000; ++i) {
    (void)off.NewTraceId();
    (void)off.NewSpanId();
    off.RecordSpan(1, ctx, SpanCat::kDisk, "disk_read", 10, 20);
    off.RecordInstant(1, ctx, "drop:loss", 15);
    obs::ScopedContext scope(&off, ctx);
    obs::ScopedContext null_scope(nullptr, ctx);
  }
  EXPECT_EQ(g_news, before) << "disabled tracing must not allocate";

  // An enabled tracer recording into an untraced context is equally free.
  Tracer on;
  const uint64_t before_untraced = g_news;
  for (int i = 0; i < 1000; ++i) {
    on.RecordSpan(1, TraceContext{}, SpanCat::kCpu, "x", 0, 1);
  }
  EXPECT_EQ(g_news, before_untraced);
}

}  // namespace
}  // namespace slice
