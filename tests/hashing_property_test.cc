// Property tests for the rendezvous (HRW) hashing primitives the µproxy
// fleet routes by (src/core/routing_table.h).
//
// The load-bearing claim is *minimal disruption*: when the membership set
// changes by one node, only the keys that touched that node move — removal
// moves exactly the removed node's keys, addition moves only keys the
// newcomer wins (≈ K/(n+1) of them), and everything else stays put. Modular
// placement, by contrast, reshuffles more than half the key space on the
// same change; the contrast test pins the gap the design paid for.
//
// The rank-k selector is checked differentially against a brute-force
// sort-everything oracle, and a handful of literal picks are pinned so an
// accidental change to the weight function (which would silently invalidate
// every chaos-matrix golden) fails loudly here first.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/common/rng.h"
#include "src/core/routing_table.h"

namespace slice {
namespace {

// Brute-force oracle: node indices sorted by (weight desc, index asc).
std::vector<uint32_t> SortedByWeight(uint64_t key, size_t n) {
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [key](uint32_t a, uint32_t b) {
    const uint64_t wa = RendezvousWeight(key, a);
    const uint64_t wb = RendezvousWeight(key, b);
    return wa != wb ? wa > wb : a < b;
  });
  return order;
}

TEST(HashingPropertyTest, RankSelectionMatchesSortOracle) {
  Rng rng(0x4157);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 1 + rng.NextBelow(64);
    const uint64_t key = rng.NextU64();
    const std::vector<uint32_t> oracle = SortedByWeight(key, n);
    for (uint32_t rank = 0; rank < n; ++rank) {
      ASSERT_EQ(RendezvousPick(key, n, rank), oracle[rank])
          << "key=" << key << " n=" << n << " rank=" << rank;
    }
  }
}

TEST(HashingPropertyTest, PickAliveMatchesArgmaxOverLiveSet) {
  Rng rng(0xa11e);
  for (int trial = 0; trial < 500; ++trial) {
    const size_t n = 1 + rng.NextBelow(48);
    const uint64_t key = rng.NextU64();
    std::vector<uint8_t> alive(n);
    for (auto& a : alive) {
      a = rng.NextBelow(4) != 0 ? 1 : 0;  // ~25% dead
    }
    // Oracle: max weight over live indices only.
    bool any = false;
    uint32_t best = 0;
    for (uint32_t i = 0; i < n; ++i) {
      if (alive[i] &&
          (!any || RendezvousWeight(key, i) > RendezvousWeight(key, best))) {
        best = i;
        any = true;
      }
    }
    uint32_t got = 0;
    ASSERT_EQ(RendezvousPickAlive(key, n, alive, &got), any);
    if (any) {
      ASSERT_EQ(got, best);
    }
  }
}

TEST(HashingPropertyTest, RemovalMovesExactlyTheRemovedNodesKeys) {
  Rng rng(0xdead);
  constexpr size_t kKeys = 4096;
  for (size_t n : {3u, 8u, 17u}) {
    const uint32_t victim = static_cast<uint32_t>(rng.NextBelow(n));
    std::vector<uint8_t> all(n, 1);
    std::vector<uint8_t> without = all;
    without[victim] = 0;

    size_t owned_by_victim = 0;
    size_t moved = 0;
    for (size_t k = 0; k < kKeys; ++k) {
      const uint64_t key = rng.NextU64();
      uint32_t before = 0, after = 0;
      ASSERT_TRUE(RendezvousPickAlive(key, n, all, &before));
      ASSERT_TRUE(RendezvousPickAlive(key, n, without, &after));
      if (before == victim) {
        ++owned_by_victim;
        EXPECT_NE(after, victim);
      } else {
        // Zero slack: a key that never touched the victim must not move.
        ASSERT_EQ(after, before) << "n=" << n << " key=" << key;
      }
      if (before != after) {
        ++moved;
      }
    }
    EXPECT_EQ(moved, owned_by_victim);
    // The victim owned roughly K/n keys; allow 2x statistical headroom.
    EXPECT_LE(moved, 2 * kKeys / n);
    EXPECT_GT(moved, 0u);
  }
}

TEST(HashingPropertyTest, AdditionMovesOnlyKeysTheNewcomerWins) {
  Rng rng(0xadd1);
  constexpr size_t kKeys = 4096;
  for (size_t n : {2u, 7u, 31u}) {
    size_t moved = 0;
    for (size_t k = 0; k < kKeys; ++k) {
      const uint64_t key = rng.NextU64();
      const uint32_t before = RendezvousPick(key, n);
      const uint32_t after = RendezvousPick(key, n + 1);
      if (before != after) {
        ++moved;
        // A moved key may only have moved TO the new node.
        ASSERT_EQ(after, n) << "n=" << n << " key=" << key;
      }
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LE(moved, 2 * kKeys / (n + 1));
  }
}

TEST(HashingPropertyTest, ModularPlacementContrastMovesMostKeys) {
  Rng rng(0x0ddc);
  constexpr size_t kKeys = 4096;
  constexpr size_t n = 8;
  size_t modular_moved = 0;
  size_t hrw_moved = 0;
  for (size_t k = 0; k < kKeys; ++k) {
    const uint64_t key = rng.NextU64();
    if (key % n != key % (n + 1)) {
      ++modular_moved;
    }
    if (RendezvousPick(key, n) != RendezvousPick(key, n + 1)) {
      ++hrw_moved;
    }
  }
  // Modular reshuffles the bulk of the key space; HRW only ~K/(n+1).
  EXPECT_GT(modular_moved, kKeys / 2);
  EXPECT_LE(hrw_moved, 2 * kKeys / (n + 1));
  EXPECT_LT(4 * hrw_moved, modular_moved);
}

TEST(HashingPropertyTest, AssignmentIsHistoryIndependent) {
  // The slot table for a membership state must depend only on that state,
  // never on the kill/revive path that led there — otherwise two µproxies
  // that saw different epoch sequences would route the same key apart.
  Rng rng(0x4157021);
  constexpr size_t kSlots = 64;
  constexpr size_t n = 6;
  std::vector<uint8_t> alive(n, 1);
  for (int step = 0; step < 40; ++step) {
    alive[rng.NextBelow(n)] ^= 1;
    if (std::find(alive.begin(), alive.end(), 1) == alive.end()) {
      alive[rng.NextBelow(n)] = 1;  // keep at least one live node
    }
    const std::vector<uint32_t> via_history = RendezvousAssignment(kSlots, n, alive);
    const std::vector<uint32_t> direct = RendezvousAssignment(kSlots, n, alive);
    ASSERT_EQ(via_history, direct);
    for (size_t s = 0; s < kSlots; ++s) {
      ASSERT_TRUE(alive[via_history[s]]) << "slot " << s << " bound to a dead node";
    }
  }
}

TEST(HashingPropertyTest, AssignmentMinimalSlotMovementOnDeath) {
  constexpr size_t kSlots = 64;
  for (size_t n : {3u, 5u, 9u}) {
    const std::vector<uint32_t> before = RendezvousAssignment(kSlots, n);
    for (uint32_t victim = 0; victim < n; ++victim) {
      std::vector<uint8_t> alive(n, 1);
      alive[victim] = 0;
      const std::vector<uint32_t> after = RendezvousAssignment(kSlots, n, alive);
      for (size_t s = 0; s < kSlots; ++s) {
        if (before[s] == victim) {
          EXPECT_NE(after[s], victim);
        } else {
          EXPECT_EQ(after[s], before[s]) << "n=" << n << " victim=" << victim
                                         << " slot=" << s;
        }
      }
    }
  }
}

TEST(HashingPropertyTest, ReplicaRanksAreDistinct) {
  Rng rng(0x5e7);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t n = 2 + rng.NextBelow(15);
    const uint64_t key = rng.NextU64();
    const size_t replicas = std::min<size_t>(n, 4);
    std::vector<uint32_t> picks;
    for (uint32_t r = 0; r < replicas; ++r) {
      picks.push_back(RendezvousPick(key, n, r));
    }
    std::sort(picks.begin(), picks.end());
    ASSERT_EQ(std::unique(picks.begin(), picks.end()), picks.end())
        << "replica ranks collided for key " << key << " n=" << n;
  }
}

TEST(HashingPropertyTest, StripeSiteStableWithinBlockAndSpread) {
  constexpr uint32_t kUnit = 32768;
  constexpr size_t kNodes = 4;
  const uint64_t fh_key = 0x5eedf00d;
  // Offsets within one stripe unit land on one site.
  const uint32_t site0 = RendezvousStripeSite(fh_key, 0, kUnit, kNodes);
  EXPECT_EQ(RendezvousStripeSite(fh_key, kUnit - 1, kUnit, kNodes), site0);
  EXPECT_EQ(RendezvousStripeSite(fh_key, kUnit / 2, kUnit, kNodes), site0);
  // Mirror replica of any block lands on a different site.
  std::vector<size_t> per_site(kNodes, 0);
  for (uint64_t block = 0; block < 4096; ++block) {
    const uint64_t off = block * kUnit;
    const uint32_t primary = RendezvousStripeSite(fh_key, off, kUnit, kNodes, 0);
    const uint32_t mirror = RendezvousStripeSite(fh_key, off, kUnit, kNodes, 1);
    ASSERT_NE(primary, mirror) << "block " << block;
    ++per_site[primary];
  }
  // Blocks spread across every site (each gets at least 10% of 4096).
  for (size_t s = 0; s < kNodes; ++s) {
    EXPECT_GT(per_site[s], 4096u / 10) << "site " << s << " starved";
  }
}

TEST(HashingPropertyTest, PinnedPicksGuardTheWeightFunction) {
  // Literal picks: a change to RendezvousWeight re-striped every deployment
  // and invalidates the chaos-matrix goldens — make it fail here by name.
  EXPECT_EQ(RendezvousPick(0, 8, 0), 4u);
  EXPECT_EQ(RendezvousPick(1, 8, 0), 5u);
  EXPECT_EQ(RendezvousPick(0x51ce, 16, 0), 13u);
  EXPECT_EQ(RendezvousPick(0x51ce, 16, 1), 6u);
  EXPECT_EQ(RendezvousAssignment(8, 3),
            (std::vector<uint32_t>{0, 1, 2, 0, 2, 2, 2, 2}));
}

}  // namespace
}  // namespace slice
