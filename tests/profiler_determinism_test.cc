// End-to-end determinism tests for the profiler pillar: a profiled ensemble
// run must export a byte-identical sim-time ledger across same-seed runs and
// across packet-pool on/off, the ledger must cover >= 99% of every host's
// independent busy-time accounting, and the sim hash is pinned — any change
// to how busy nanoseconds are attributed has to show up as a conscious hash
// bump in this file, exactly like the trace/metrics/eventlog pins.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/net/packet_pool.h"
#include "src/slice/ensemble.h"
#include "src/workload/seqio.h"

namespace slice {
namespace {

// Pinned FNV-1a hash of ExportProfileSimJson() for RunProfiledScenario.
// Recompute by running this test after an intentional attribution change;
// the failure message prints the new value.
constexpr uint64_t kPinnedSimHash = 0x482d43658a633206ull;

struct ProfiledRun {
  std::string sim_json;
  std::string folded;
  std::string flight_json;
  uint64_t hash = 0;
  uint64_t min_coverage_bp = 0;
};

// Write-then-read a 1MB file through the full Slice data path: Create is a
// dir-server name op, the bulk stream crosses uproxy routing, storage CPU,
// disk arms and the wire — every ledger category gets charged.
ProfiledRun RunProfiledScenario() {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;
  config.num_storage_nodes = 2;
  config.num_small_file_servers = 1;
  config.num_clients = 1;
  config.metrics.enabled = true;
  config.eventlog.enabled = true;  // so the flight dump exists to merge into
  config.profiler.enabled = true;
  Ensemble ensemble(queue, config);

  auto client = ensemble.MakeSyncClient(0);
  CreateRes created = client->Create(ensemble.root(), "big").value();
  SLICE_CHECK(created.status == Nfsstat3::kOk);

  SeqIoParams params;
  params.file_bytes = 1u << 20;
  params.write = true;
  bool wrote = false;
  SeqIoProcess writer(ensemble.client_host(0), queue, ensemble.virtual_server(),
                      *created.object, params, [&] { wrote = true; });
  writer.Start();
  queue.RunUntilIdle();
  SLICE_CHECK(wrote);

  params.write = false;
  bool read = false;
  SeqIoProcess reader(ensemble.client_host(0), queue, ensemble.virtual_server(),
                      *created.object, params, [&] { read = true; });
  reader.Start();
  queue.RunUntilIdle();
  SLICE_CHECK(read);

  ProfiledRun run;
  run.sim_json = ensemble.profiler()->ExportProfileSimJson();
  run.folded = ensemble.ExportProfileFolded();
  run.flight_json = ensemble.ExportFlightJson("test");
  run.hash = ensemble.ProfileSimHash();
  run.min_coverage_bp = ensemble.profiler()->MinCoverageBp();
  return run;
}

TEST(ProfilerDeterminismTest, SameSeedProfiledRunsAreByteIdentical) {
  const ProfiledRun one = RunProfiledScenario();
  const ProfiledRun two = RunProfiledScenario();
  EXPECT_EQ(one.sim_json, two.sim_json)
      << "same-seed runs must export a byte-identical sim-time ledger";
  EXPECT_EQ(one.hash, two.hash);
  EXPECT_EQ(one.hash, kPinnedSimHash)
      << "sim-ledger attribution changed; if intentional, repin kPinnedSimHash to 0x"
      << std::hex << one.hash;
}

TEST(ProfilerDeterminismTest, PacketPoolingDoesNotChangeTheLedger) {
  // Buffer recycling must be invisible to sim-time attribution: the ledger
  // records what the simulation charged, not how packets were allocated.
  PacketPool::SetEnabled(false);
  const ProfiledRun unpooled = RunProfiledScenario();
  PacketPool::SetEnabled(true);
  const ProfiledRun pooled = RunProfiledScenario();
  EXPECT_EQ(unpooled.sim_json, pooled.sim_json);
  EXPECT_EQ(unpooled.hash, pooled.hash);
}

TEST(ProfilerDeterminismTest, LedgerCoversHostBusyTime) {
  // The acceptance bar: on every host with nonzero busy time, attributed
  // cpu+disk+wire must cover >= 99% (9900 bp) of the host's independent
  // BusyResource accounting — nothing material slips through unattributed.
  const ProfiledRun run = RunProfiledScenario();
  EXPECT_GE(run.min_coverage_bp, 9900u)
      << "ledger coverage dropped below 99%:\n" << run.sim_json;
}

TEST(ProfilerDeterminismTest, FlightDumpCarriesTheProfileSection) {
  const ProfiledRun run = RunProfiledScenario();
  EXPECT_NE(run.flight_json.find("\"profile\":{\"sim\":{\"hosts\":["), std::string::npos)
      << "profiled flight dumps must embed the profile section";
  // Wall values are machine-dependent, so the profiled dump itself is not
  // hash-pinned — but the sim section inside it is the pinned export.
  EXPECT_NE(run.flight_json.find(run.sim_json), std::string::npos);
}

TEST(ProfilerDeterminismTest, FoldedExportIsWellFormed) {
  const ProfiledRun run = RunProfiledScenario();
  ASSERT_FALSE(run.folded.empty());
  EXPECT_EQ(run.folded.back(), '\n');
  // The event loop's own dispatch scope brackets everything the run did.
  EXPECT_NE(run.folded.find("sim.dispatch"), std::string::npos) << run.folded;
  // Every line is "path space integer".
  size_t start = 0;
  while (start < run.folded.size()) {
    const size_t end = run.folded.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = run.folded.substr(start, end - start);
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_LT(space + 1, line.size()) << line;
    EXPECT_EQ(line.find_first_not_of("0123456789", space + 1), std::string::npos) << line;
    start = end + 1;
  }
}

TEST(ProfilerDeterminismTest, UnprofiledEnsembleHasNoProfiler) {
  EventQueue queue;
  EnsembleConfig config;
  config.mgmt.enabled = false;
  config.num_storage_nodes = 1;
  Ensemble ensemble(queue, config);
  EXPECT_EQ(ensemble.profiler(), nullptr);
  EXPECT_TRUE(ensemble.ExportProfileJson().empty());
  EXPECT_TRUE(ensemble.ExportProfileFolded().empty());
  EXPECT_EQ(ensemble.ProfileSimHash(), 0u);
}

}  // namespace
}  // namespace slice
