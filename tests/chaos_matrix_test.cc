// The named scenario matrix as ctests: every scenario must satisfy its
// invariant bounds AND reproduce its golden flight-dump content hash. A
// golden mismatch means the simulation's event stream changed — intentional
// changes update the constant below with the hash printed in the failure
// message; unintentional ones are regressions in determinism or behavior.
//
// Each run also writes <scenario>_flight.json next to the test binary so CI
// can upload the full evidence on failure.
#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "src/chaos/scenario.h"

namespace slice {
namespace {

using chaos::FindScenario;
using chaos::RunScenario;
using chaos::Scenario;
using chaos::ScenarioMatrix;
using chaos::ScenarioResult;

struct Golden {
  const char* name;
  uint64_t flight_hash;
};

// Regenerate by running this suite and copying the printed hashes.
constexpr Golden kGoldens[] = {
    {"partition_heal", 0xa3cc3089ef2c41feull},
    {"asymmetric_loss", 0x404b7dc0de367e23ull},
    {"burst_loss", 0x4fa38d7ff3129586ull},
    {"gray_disk", 0xbb3a6d1fc4551b12ull},
    {"correlated_crash", 0xdabbb5a64254242eull},
    {"correlated_crash_restart_storm", 0xb7d02261edfcba01ull},
    {"skewed_heartbeats", 0x227fdcd7d45b5eaaull},
    {"flapping_node", 0xc543e7041ec7701eull},
    {"stale_cache_partition", 0x49f8ce5cd9db2dfdull},
    {"noisy_neighbor", 0x0791515ebaafc9f3ull},
};

uint64_t GoldenFor(const std::string& name) {
  for (const Golden& g : kGoldens) {
    if (name == g.name) {
      return g.flight_hash;
    }
  }
  ADD_FAILURE() << "no golden registered for scenario " << name;
  return 0;
}

ScenarioResult RunByName(const std::string& name) {
  const std::vector<Scenario> matrix = ScenarioMatrix();
  const Scenario* scenario = FindScenario(matrix, name);
  EXPECT_NE(scenario, nullptr) << name << " missing from ScenarioMatrix()";
  ScenarioResult result = RunScenario(*scenario);
  // Evidence for humans and for CI's artifact upload.
  std::ofstream out(name + "_flight.json", std::ios::binary);
  out << result.flight_json;
  return result;
}

void CheckScenario(const std::string& name) {
  ScenarioResult result = RunByName(name);
  // One machine-greppable stats line per scenario; EXPERIMENTS.md's
  // scenario-matrix table is regenerated from these.
  const chaos::InvariantReport& r = result.report;
  std::printf(
      "MATRIX %s acked=%zu verified=%zu/%zu deaths=%zu rejoins=%zu "
      "adoptions=%zu/%zu handoffs=%zu resyncs=%zu epochs=%zu max_epoch=%" PRIu64
      " faults=%zu/%zu worst_outage_ns=%" PRIu64
      " rebalances=%zu/%zu cache_hits=%zu cache_flushes=%zu hash=0x%016" PRIx64 "\n",
      name.c_str(), r.acked_writes, r.verified_ok,
      r.verified_ok + r.verified_lost, r.deaths, r.rejoins, r.adoptions_begun,
      r.adoptions_done, r.handoffs, r.resyncs, r.epoch_bumps, r.max_epoch,
      r.faults_injected, r.faults_cleared, static_cast<uint64_t>(r.worst_outage),
      r.rebalances_begun, r.rebalances_committed, r.cache_hits, r.cache_flushes,
      result.flight_hash);
  EXPECT_TRUE(result.report.ok()) << name << ": " << result.report.Summary();
  EXPECT_GT(result.stats.journal_size, 0u) << name << " made no durability claims";
  char actual[32];
  std::snprintf(actual, sizeof(actual), "0x%016" PRIx64, result.flight_hash);
  EXPECT_EQ(result.flight_hash, GoldenFor(name))
      << name << " flight hash changed; new hash " << actual << " ("
      << result.report.Summary() << ")";
}

TEST(ChaosMatrixTest, PartitionHeal) { CheckScenario("partition_heal"); }
TEST(ChaosMatrixTest, AsymmetricLoss) { CheckScenario("asymmetric_loss"); }
TEST(ChaosMatrixTest, BurstLoss) { CheckScenario("burst_loss"); }
TEST(ChaosMatrixTest, GrayDisk) { CheckScenario("gray_disk"); }
TEST(ChaosMatrixTest, CorrelatedCrash) { CheckScenario("correlated_crash"); }
TEST(ChaosMatrixTest, CorrelatedCrashRestartStorm) {
  CheckScenario("correlated_crash_restart_storm");
}
TEST(ChaosMatrixTest, SkewedHeartbeats) { CheckScenario("skewed_heartbeats"); }
TEST(ChaosMatrixTest, FlappingNode) { CheckScenario("flapping_node"); }
TEST(ChaosMatrixTest, StaleCachePartition) { CheckScenario("stale_cache_partition"); }
TEST(ChaosMatrixTest, NoisyNeighbor) { CheckScenario("noisy_neighbor"); }

// The tenant/QoS pillar end to end: the victim tenant's SLO must burn while
// the disks are gray, the alert must carry a worst-tail exemplar trace id
// that resolves in BOTH the span collection (chrome export) and the flight
// dump's event stream, and the burn must clear after the fault heals.
TEST(NoisyNeighborTest, SloBurnLinksExemplarAcrossPillars) {
  const std::vector<Scenario> matrix = ScenarioMatrix();
  const Scenario* scenario = FindScenario(matrix, "noisy_neighbor");
  ASSERT_NE(scenario, nullptr);

  // Run inline (same steps as RunScenario) so the ensemble stays alive for
  // the cross-pillar inspection.
  EventQueue queue;
  Ensemble ensemble(queue, scenario->config);
  chaos::ChaosWorkload workload(ensemble, scenario->workload);
  workload.Setup();
  std::shared_ptr<void> background = scenario->background(ensemble);
  workload.Run();
  SimTime horizon = queue.now();
  for (const chaos::FaultSpec& fault : scenario->config.chaos.faults) {
    horizon = std::max(horizon, fault.at + fault.duration);
  }
  queue.RunUntil(horizon + scenario->settle);
  queue.RunUntilIdle();

  ASSERT_NE(ensemble.slo_engine(), nullptr);
  const std::vector<obs::SloAlert>& alerts = ensemble.slo_engine()->alerts();

  // The victim (tenant 1) burned, with an exemplar, and later cleared.
  const obs::SloAlert* burn = nullptr;
  const obs::SloAlert* last_tenant1 = nullptr;
  for (const obs::SloAlert& alert : alerts) {
    if (alert.tenant != 1) {
      continue;
    }
    if (alert.raise && burn == nullptr) {
      burn = &alert;
    }
    last_tenant1 = &alert;
  }
  ASSERT_NE(burn, nullptr) << "tenant 1 never raised slo_burn";
  EXPECT_NE(burn->trace_id, 0u) << "slo_burn carried no exemplar trace";
  ASSERT_NE(last_tenant1, nullptr);
  EXPECT_FALSE(last_tenant1->raise) << "tenant 1's burn never cleared";
  EXPECT_FALSE(ensemble.slo_engine()->burning(1));

  // Pillar 2: the exemplar resolves in the trace export.
  bool in_spans = false;
  for (const obs::Span& span : ensemble.CollectSpans()) {
    if (span.trace_id == burn->trace_id) {
      in_spans = true;
      break;
    }
  }
  EXPECT_TRUE(in_spans) << "exemplar trace " << burn->trace_id
                        << " not found in the span collection";

  // Pillar 3: the slo_burn event in the flight dump carries the same id.
  const std::string flight = ensemble.ExportFlightJson("test");
  EXPECT_NE(flight.find("\"slo_burn\""), std::string::npos);
  EXPECT_NE(flight.find(std::to_string(burn->trace_id)), std::string::npos);
  // And the tenant plane made it into the embedded metrics snapshot.
  EXPECT_NE(flight.find("\"tenants\""), std::string::npos);
  EXPECT_NE(flight.find("\"slo\""), std::string::npos);
}

TEST(ChaosMatrixTest, MatrixCoversEveryGolden) {
  const std::vector<Scenario> matrix = ScenarioMatrix();
  EXPECT_GE(matrix.size(), 6u);
  for (const Golden& g : kGoldens) {
    EXPECT_NE(FindScenario(matrix, g.name), nullptr) << g.name;
  }
  EXPECT_EQ(FindScenario(matrix, "no_such_scenario"), nullptr);
}

// Same seed ⇒ byte-identical flight dumps, run-to-run, for scenarios from
// both the stochastic (burst loss draws) and deterministic (crash plan)
// families. This is the property the golden hashes stand on.
TEST(ChaosDeterminismTest, SameSeedSameFlightDump) {
  for (const char* name : {"partition_heal", "burst_loss", "stale_cache_partition"}) {
    ScenarioResult first = RunByName(name);
    ScenarioResult second = RunByName(name);
    EXPECT_EQ(first.flight_hash, second.flight_hash) << name;
    EXPECT_EQ(first.flight_json, second.flight_json) << name;
    EXPECT_EQ(first.finished_at, second.finished_at) << name;
  }
}

}  // namespace
}  // namespace slice
