// The named scenario matrix as ctests: every scenario must satisfy its
// invariant bounds AND reproduce its golden flight-dump content hash. A
// golden mismatch means the simulation's event stream changed — intentional
// changes update the constant below with the hash printed in the failure
// message; unintentional ones are regressions in determinism or behavior.
//
// Each run also writes <scenario>_flight.json next to the test binary so CI
// can upload the full evidence on failure.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "src/chaos/scenario.h"

namespace slice {
namespace {

using chaos::FindScenario;
using chaos::RunScenario;
using chaos::Scenario;
using chaos::ScenarioMatrix;
using chaos::ScenarioResult;

struct Golden {
  const char* name;
  uint64_t flight_hash;
};

// Regenerate by running this suite and copying the printed hashes.
constexpr Golden kGoldens[] = {
    {"partition_heal", 0xa3cc3089ef2c41feull},
    {"asymmetric_loss", 0x404b7dc0de367e23ull},
    {"burst_loss", 0x4fa38d7ff3129586ull},
    {"gray_disk", 0xbb3a6d1fc4551b12ull},
    {"correlated_crash", 0xdabbb5a64254242eull},
    {"skewed_heartbeats", 0x227fdcd7d45b5eaaull},
    {"flapping_node", 0xc543e7041ec7701eull},
    {"stale_cache_partition", 0x49f8ce5cd9db2dfdull},
};

uint64_t GoldenFor(const std::string& name) {
  for (const Golden& g : kGoldens) {
    if (name == g.name) {
      return g.flight_hash;
    }
  }
  ADD_FAILURE() << "no golden registered for scenario " << name;
  return 0;
}

ScenarioResult RunByName(const std::string& name) {
  const std::vector<Scenario> matrix = ScenarioMatrix();
  const Scenario* scenario = FindScenario(matrix, name);
  EXPECT_NE(scenario, nullptr) << name << " missing from ScenarioMatrix()";
  ScenarioResult result = RunScenario(*scenario);
  // Evidence for humans and for CI's artifact upload.
  std::ofstream out(name + "_flight.json", std::ios::binary);
  out << result.flight_json;
  return result;
}

void CheckScenario(const std::string& name) {
  ScenarioResult result = RunByName(name);
  // One machine-greppable stats line per scenario; EXPERIMENTS.md's
  // scenario-matrix table is regenerated from these.
  const chaos::InvariantReport& r = result.report;
  std::printf(
      "MATRIX %s acked=%zu verified=%zu/%zu deaths=%zu rejoins=%zu "
      "adoptions=%zu/%zu handoffs=%zu resyncs=%zu epochs=%zu max_epoch=%" PRIu64
      " faults=%zu/%zu worst_outage_ns=%" PRIu64
      " rebalances=%zu/%zu cache_hits=%zu cache_flushes=%zu hash=0x%016" PRIx64 "\n",
      name.c_str(), r.acked_writes, r.verified_ok,
      r.verified_ok + r.verified_lost, r.deaths, r.rejoins, r.adoptions_begun,
      r.adoptions_done, r.handoffs, r.resyncs, r.epoch_bumps, r.max_epoch,
      r.faults_injected, r.faults_cleared, static_cast<uint64_t>(r.worst_outage),
      r.rebalances_begun, r.rebalances_committed, r.cache_hits, r.cache_flushes,
      result.flight_hash);
  EXPECT_TRUE(result.report.ok()) << name << ": " << result.report.Summary();
  EXPECT_GT(result.stats.journal_size, 0u) << name << " made no durability claims";
  char actual[32];
  std::snprintf(actual, sizeof(actual), "0x%016" PRIx64, result.flight_hash);
  EXPECT_EQ(result.flight_hash, GoldenFor(name))
      << name << " flight hash changed; new hash " << actual << " ("
      << result.report.Summary() << ")";
}

TEST(ChaosMatrixTest, PartitionHeal) { CheckScenario("partition_heal"); }
TEST(ChaosMatrixTest, AsymmetricLoss) { CheckScenario("asymmetric_loss"); }
TEST(ChaosMatrixTest, BurstLoss) { CheckScenario("burst_loss"); }
TEST(ChaosMatrixTest, GrayDisk) { CheckScenario("gray_disk"); }
TEST(ChaosMatrixTest, CorrelatedCrash) { CheckScenario("correlated_crash"); }
TEST(ChaosMatrixTest, SkewedHeartbeats) { CheckScenario("skewed_heartbeats"); }
TEST(ChaosMatrixTest, FlappingNode) { CheckScenario("flapping_node"); }
TEST(ChaosMatrixTest, StaleCachePartition) { CheckScenario("stale_cache_partition"); }

TEST(ChaosMatrixTest, MatrixCoversEveryGolden) {
  const std::vector<Scenario> matrix = ScenarioMatrix();
  EXPECT_GE(matrix.size(), 6u);
  for (const Golden& g : kGoldens) {
    EXPECT_NE(FindScenario(matrix, g.name), nullptr) << g.name;
  }
  EXPECT_EQ(FindScenario(matrix, "no_such_scenario"), nullptr);
}

// Same seed ⇒ byte-identical flight dumps, run-to-run, for scenarios from
// both the stochastic (burst loss draws) and deterministic (crash plan)
// families. This is the property the golden hashes stand on.
TEST(ChaosDeterminismTest, SameSeedSameFlightDump) {
  for (const char* name : {"partition_heal", "burst_loss", "stale_cache_partition"}) {
    ScenarioResult first = RunByName(name);
    ScenarioResult second = RunByName(name);
    EXPECT_EQ(first.flight_hash, second.flight_hash) << name;
    EXPECT_EQ(first.flight_json, second.flight_json) << name;
    EXPECT_EQ(first.finished_at, second.finished_at) << name;
  }
}

}  // namespace
}  // namespace slice
