// Unit tests for the small-file server: fragment allocation classes, the
// paper's 8300-byte example, dataless backing via storage nodes, unstable
// write + commit semantics, cache-miss fetches, truncate/remove, recovery.
#include <gtest/gtest.h>

#include "src/nfs/nfs_client.h"
#include "src/sfs/fragment_alloc.h"
#include "src/sfs/small_file_server.h"
#include "src/storage/storage_node.h"

namespace slice {
namespace {

constexpr uint64_t kSecret = 0x5f5;
constexpr NetAddr kStorage0 = 0x0a000020;
constexpr NetAddr kStorage1 = 0x0a000021;
constexpr NetAddr kSfsAddr = 0x0a000040;
constexpr NetAddr kClientAddr = 0x0a000001;

TEST(FragmentAllocTest, SizeClasses) {
  EXPECT_EQ(FragmentSizeFor(1), 128u);
  EXPECT_EQ(FragmentSizeFor(128), 128u);
  EXPECT_EQ(FragmentSizeFor(129), 256u);
  EXPECT_EQ(FragmentSizeFor(4097), 8192u);
  EXPECT_EQ(FragmentSizeFor(8192), 8192u);
}

TEST(FragmentAllocTest, SequentialCarving) {
  FragmentAllocator alloc;
  Fragment a = alloc.Allocate(100);
  Fragment b = alloc.Allocate(100);
  EXPECT_EQ(a.offset, 0u);
  EXPECT_EQ(b.offset, 128u);  // batched into a single stream
  EXPECT_EQ(alloc.zone_tail(), 256u);
}

TEST(FragmentAllocTest, FreeListReuse) {
  FragmentAllocator alloc;
  Fragment a = alloc.Allocate(1000);  // 1024 class
  alloc.Free(a);
  Fragment b = alloc.Allocate(900);  // same class: reuses
  EXPECT_EQ(b.offset, a.offset);
  EXPECT_EQ(alloc.reused_fragments(), 1u);
}

TEST(FragmentAllocTest, PaperExample8300Bytes) {
  // "a 8300 byte file would consume only 8320 bytes of physical storage
  // space, 8192 bytes for the first block, and 128 for the remaining 108."
  FragmentAllocator alloc;
  Fragment first = alloc.Allocate(8192);
  Fragment rest = alloc.Allocate(108);
  EXPECT_EQ(first.alloc_size + rest.alloc_size, 8320u);
}

TEST(FragmentAllocTest, AccountingBalances) {
  FragmentAllocator alloc;
  Fragment a = alloc.Allocate(300);
  Fragment b = alloc.Allocate(5000);
  EXPECT_EQ(alloc.allocated_bytes(), 512u + 8192u);
  alloc.Free(a);
  alloc.Free(b);
  EXPECT_EQ(alloc.allocated_bytes(), 0u);
  EXPECT_EQ(alloc.free_bytes(), 512u + 8192u);
}

class SfsTest : public ::testing::Test {
 protected:
  SfsTest() : net_(queue_, NetworkParams{}) {
    StorageNodeParams snp;
    snp.volume_secret = kSecret;
    storage_.push_back(std::make_unique<StorageNode>(net_, queue_, kStorage0, snp));
    storage_.push_back(std::make_unique<StorageNode>(net_, queue_, kStorage1, snp));

    SmallFileServerParams params;
    params.volume_secret = kSecret;
    params.cache_bytes = 4 << 20;  // small cache so tests can overflow it
    params.backing_node = storage_[0]->endpoint();
    params.backing_object =
        FileHandle::Make(1, (0xfdull << 48) | 0, 1, FileType3::kReg, 1, kSecret);
    sfs_ = std::make_unique<SmallFileServer>(
        net_, queue_, kSfsAddr, params,
        std::vector<Endpoint>{storage_[0]->endpoint(), storage_[1]->endpoint()});

    client_host_ = std::make_unique<Host>(net_, kClientAddr);
    client_ = std::make_unique<SyncNfsClient>(*client_host_, queue_, sfs_->endpoint());
  }

  FileHandle Fh(uint64_t fileid = 10) const {
    return FileHandle::Make(1, fileid, 1, FileType3::kReg, 1, kSecret);
  }

  static Bytes Pattern(size_t n, uint8_t seed = 1) {
    Bytes data(n);
    for (size_t i = 0; i < n; ++i) {
      data[i] = static_cast<uint8_t>(seed + i * 13);
    }
    return data;
  }

  EventQueue queue_;
  Network net_;
  std::vector<std::unique_ptr<StorageNode>> storage_;
  std::unique_ptr<SmallFileServer> sfs_;
  std::unique_ptr<Host> client_host_;
  std::unique_ptr<SyncNfsClient> client_;
};

TEST_F(SfsTest, WriteReadSmallFile) {
  const Bytes data = Pattern(5000);
  WriteRes w = client_->Write(Fh(), 0, data, StableHow::kFileSync).value();
  ASSERT_EQ(w.status, Nfsstat3::kOk);
  ReadRes r = client_->Read(Fh(), 0, 8192).value();
  ASSERT_EQ(r.status, Nfsstat3::kOk);
  EXPECT_EQ(r.data, data);
  EXPECT_TRUE(r.eof);
}

TEST_F(SfsTest, ReadMissingFileIsEmptyEof) {
  ReadRes r = client_->Read(Fh(99), 0, 100).value();
  EXPECT_EQ(r.status, Nfsstat3::kOk);
  EXPECT_EQ(r.count, 0u);
  EXPECT_TRUE(r.eof);
}

TEST_F(SfsTest, GrowingFileReallocatesFragments) {
  // 100 bytes -> 128 fragment; grow to 5000 -> 8192 fragment, data intact.
  ASSERT_EQ(client_->Write(Fh(), 0, Pattern(100, 7), StableHow::kUnstable).value().status,
            Nfsstat3::kOk);
  Bytes more = Pattern(4900, 9);
  ASSERT_EQ(client_->Write(Fh(), 100, more, StableHow::kUnstable).value().status, Nfsstat3::kOk);
  ReadRes r = client_->Read(Fh(), 0, 5000).value();
  Bytes expect = Pattern(100, 7);
  expect.insert(expect.end(), more.begin(), more.end());
  EXPECT_EQ(r.data, expect);
}

TEST_F(SfsTest, PhysicalSpaceMatchesPaperExample) {
  ASSERT_EQ(client_->Write(Fh(), 0, Pattern(8300), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  Fattr3 attr = client_->Getattr(Fh()).value();
  EXPECT_EQ(attr.size, 8300u);
  EXPECT_EQ(attr.used, 8320u);
}

TEST_F(SfsTest, MultiBlockFile) {
  const Bytes data = Pattern(3 * kStoreBlockSize + 500);
  ASSERT_EQ(client_->Write(Fh(), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  ReadRes r = client_->Read(Fh(), 0, static_cast<uint32_t>(data.size())).value();
  EXPECT_EQ(r.data, data);
}

TEST_F(SfsTest, UnstableThenCommitFlushesToStorageNodes) {
  const Bytes data = Pattern(4000);
  WriteRes w = client_->Write(Fh(), 0, data, StableHow::kUnstable).value();
  ASSERT_EQ(w.status, Nfsstat3::kOk);
  EXPECT_EQ(w.committed, StableHow::kUnstable);
  const uint64_t flushes_before = sfs_->backing_flushes();
  CommitRes c = client_->Commit(Fh()).value();
  ASSERT_EQ(c.status, Nfsstat3::kOk);
  EXPECT_GT(sfs_->backing_flushes(), flushes_before);
}

TEST_F(SfsTest, DatalessRecoveryViaBackingStore) {
  const Bytes data = Pattern(6000, 3);
  ASSERT_EQ(client_->Write(Fh(), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  sfs_->FlushDirtyForTest();
  queue_.RunUntilIdle();

  // Crash: RAM pages and map records vanish; recovery replays the WAL and
  // refetches data from the storage array on demand.
  sfs_->Fail();
  sfs_->Restart();
  queue_.RunUntilIdle();

  ReadRes r = client_->Read(Fh(), 0, 6000).value();
  ASSERT_EQ(r.status, Nfsstat3::kOk);
  EXPECT_EQ(r.data, data);
  EXPECT_GT(sfs_->backing_fetches(), 0u);
}

TEST_F(SfsTest, CacheMissFetchesFromStorage) {
  const Bytes data = Pattern(2000);
  ASSERT_EQ(client_->Write(Fh(), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  // Fill the 4MB cache with other files to evict the first one.
  for (uint64_t id = 100; id < 100 + 1200; ++id) {
    ASSERT_EQ(client_->Write(Fh(id), 0, Pattern(4096), StableHow::kUnstable).value().status,
              Nfsstat3::kOk);
  }
  ASSERT_EQ(client_->Commit(Fh(100)).value().status, Nfsstat3::kOk);
  const uint64_t fetches_before = sfs_->backing_fetches();
  ReadRes r = client_->Read(Fh(), 0, 2000).value();
  EXPECT_EQ(r.data, data);
  EXPECT_GT(sfs_->backing_fetches(), fetches_before);
}

TEST_F(SfsTest, TruncateFreesFragments) {
  ASSERT_EQ(client_->Write(Fh(), 0, Pattern(3 * kStoreBlockSize), StableHow::kFileSync)
                .value()
                .status,
            Nfsstat3::kOk);
  const uint64_t allocated_before = sfs_->allocator().allocated_bytes();
  SetattrArgs args;
  args.object = Fh();
  args.new_attributes.size = 100;
  ASSERT_EQ(client_->Setattr(args).value().status, Nfsstat3::kOk);
  EXPECT_LT(sfs_->allocator().allocated_bytes(), allocated_before);
  EXPECT_EQ(client_->Getattr(Fh()).value().size, 100u);
  ReadRes r = client_->Read(Fh(), 0, 8192).value();
  EXPECT_EQ(r.count, 100u);
}

TEST_F(SfsTest, RemoveDropsFileAndSpace) {
  ASSERT_EQ(client_->Write(Fh(), 0, Pattern(1000), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);
  ASSERT_EQ(client_->Remove(Fh(), "").value().status, Nfsstat3::kOk);
  EXPECT_EQ(sfs_->file_count(), 0u);
  EXPECT_EQ(sfs_->allocator().allocated_bytes(), 0u);
  ReadRes r = client_->Read(Fh(), 0, 100).value();
  EXPECT_EQ(r.count, 0u);
}

TEST_F(SfsTest, BadCapabilityRejected) {
  FileHandle forged = FileHandle::Make(1, 10, 1, FileType3::kReg, 1, kSecret + 1);
  EXPECT_EQ(client_->Write(forged, 0, Pattern(10), StableHow::kUnstable).value().status,
            Nfsstat3::kErrBadhandle);
}

TEST_F(SfsTest, EofClearedAtThresholdBoundary) {
  // A file that reaches the 64KB threshold may continue on storage nodes;
  // the small-file server must not claim EOF.
  const Bytes data = Pattern(65536);
  ASSERT_EQ(client_->Write(Fh(), 0, data, StableHow::kFileSync).value().status, Nfsstat3::kOk);
  ReadRes r = client_->Read(Fh(), 32768, 32768).value();
  EXPECT_EQ(r.count, 32768u);
  EXPECT_FALSE(r.eof);
}

TEST_F(SfsTest, SparseSmallFileReadsZeros) {
  ASSERT_EQ(client_->Write(Fh(), 2 * kStoreBlockSize, Pattern(100), StableHow::kFileSync)
                .value()
                .status,
            Nfsstat3::kOk);
  ReadRes r = client_->Read(Fh(), 0, 100).value();
  EXPECT_EQ(r.data, Bytes(100, 0));
}

}  // namespace
}  // namespace slice
