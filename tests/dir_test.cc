// Unit tests for the directory service: name/attr cell store, NFS name-space
// semantics, cross-site peer operations under both placement policies, and
// WAL-based crash recovery.
#include <gtest/gtest.h>

#include "src/dir/dir_server.h"
#include "src/nfs/nfs_client.h"
#include "src/storage/storage_node.h"

namespace slice {
namespace {

constexpr uint64_t kSecret = 0xd00d;
constexpr NetAddr kStorageAddr = 0x0a000020;
constexpr NetAddr kClientAddr = 0x0a000001;

FileHandle BackingObjectFor(uint32_t site) {
  return FileHandle::Make(1, (0xffull << 48) | site, 1, FileType3::kReg, 1, kSecret);
}

TEST(DirStoreTest, InsertFindErase) {
  DirStore store;
  FileHandle child = FileHandle::Make(1, 5, 1, FileType3::kReg, 1, kSecret);
  EXPECT_TRUE(store.InsertEntry(1, "a", child).ok());
  EXPECT_EQ(store.FindEntry(1, "a").value(), child);
  EXPECT_EQ(store.InsertEntry(1, "a", child).code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(store.EraseEntry(1, "a").ok());
  EXPECT_EQ(store.FindEntry(1, "a").status().code(), StatusCode::kNotFound);
}

TEST(DirStoreTest, ListDirIsNameOrdered) {
  DirStore store;
  for (const char* name : {"zeta", "alpha", "mid"}) {
    ASSERT_TRUE(
        store.InsertEntry(1, name, FileHandle::Make(1, 2, 1, FileType3::kReg, 1, kSecret)).ok());
  }
  std::vector<NameCell> list = store.ListDir(1);
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[0].name, "alpha");
  EXPECT_EQ(list[2].name, "zeta");
  EXPECT_EQ(store.CountDir(1), 3u);
  EXPECT_EQ(store.CountDir(99), 0u);
}

TEST(DirStoreTest, AttrCells) {
  DirStore store;
  Fattr3 attr;
  attr.fileid = 9;
  EXPECT_TRUE(store.InsertAttr(9, attr).ok());
  ASSERT_NE(store.FindAttr(9), nullptr);
  EXPECT_EQ(store.FindAttr(9)->attr.fileid, 9u);
  EXPECT_TRUE(store.EraseAttr(9).ok());
  EXPECT_EQ(store.FindAttr(9), nullptr);
}

TEST(DirStoreTest, FingerprintsRouteConsistently) {
  FileHandle parent = FileHandle::Make(1, 1, 1, FileType3::kDir, 1, kSecret);
  const uint64_t a = NameFingerprint(parent, "x");
  const uint64_t b = NameFingerprint(parent, "x");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, NameFingerprint(parent, "y"));
}

TEST(FileidTest, SiteEmbedding) {
  const uint64_t id = MakeFileid(3, 77);
  EXPECT_EQ(SiteOfFileid(id), 3u);
  EXPECT_EQ(id & 0xffffffffffffull, 77u);
  EXPECT_EQ(SiteOfFileid(kRootFileid), 0u);
}

// Test fixture with N directory servers, a storage node for WAL backing, and
// a sync client that can be pointed at any server (standing in for the
// µproxy's routing decisions).
class DirServerTest : public ::testing::Test {
 protected:
  static constexpr int kSites = 3;

  explicit DirServerTest(NamePolicy policy = NamePolicy::kMkdirSwitching)
      : net_(queue_, NetworkParams{}) {
    StorageNodeParams snp;
    snp.volume_secret = kSecret;
    storage_ = std::make_unique<StorageNode>(net_, queue_, kStorageAddr, snp);

    std::vector<DirServer*> peers;
    for (uint32_t site = 0; site < kSites; ++site) {
      DirServerParams params;
      params.site = site;
      params.num_sites = kSites;
      params.volume_secret = kSecret;
      params.policy = policy;
      params.backing_node = storage_->endpoint();
      params.backing_object = BackingObjectFor(site);
      servers_.push_back(std::make_unique<DirServer>(
          net_, queue_, 0x0a000030 + site, params));
      peers.push_back(servers_.back().get());
    }
    for (auto& server : servers_) {
      server->SetPeers(peers);
    }
    client_host_ = std::make_unique<Host>(net_, kClientAddr);
    for (uint32_t site = 0; site < kSites; ++site) {
      clients_.push_back(std::make_unique<SyncNfsClient>(*client_host_, queue_,
                                                         servers_[site]->endpoint()));
    }
    root_ = servers_[0]->RootHandle();
  }

  // The µproxy's fileID-keyed routing: ops on a directory go to its site.
  SyncNfsClient& At(const FileHandle& fh) {
    return *clients_[SiteOfFileid(fh.fileid()) % kSites];
  }
  SyncNfsClient& AtSite(uint32_t site) { return *clients_[site]; }
  // The µproxy's name-hashing routing.
  SyncNfsClient& AtNameHash(const FileHandle& dir, const std::string& name) {
    return *clients_[NameHashSite(NameFingerprint(dir, name), kSites)];
  }

  EventQueue queue_;
  Network net_;
  std::unique_ptr<StorageNode> storage_;
  std::vector<std::unique_ptr<DirServer>> servers_;
  std::unique_ptr<Host> client_host_;
  std::vector<std::unique_ptr<SyncNfsClient>> clients_;
  FileHandle root_;
};

TEST_F(DirServerTest, RootGetattr) {
  Fattr3 attr = At(root_).Getattr(root_).value();
  EXPECT_EQ(attr.fileid, kRootFileid);
  EXPECT_EQ(attr.type, FileType3::kDir);
  EXPECT_EQ(attr.nlink, 2u);
}

TEST_F(DirServerTest, CreateLookupRoundTrip) {
  CreateRes created = At(root_).Create(root_, "hello.txt").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  ASSERT_TRUE(created.object.has_value());
  EXPECT_EQ(created.object->type(), FileType3::kReg);

  LookupRes found = At(root_).Lookup(root_, "hello.txt").value();
  ASSERT_EQ(found.status, Nfsstat3::kOk);
  EXPECT_EQ(found.object, *created.object);
  ASSERT_TRUE(found.obj_attributes.has_value());
  EXPECT_EQ(found.obj_attributes->nlink, 1u);
}

TEST_F(DirServerTest, LookupMissingIsNoent) {
  LookupRes res = At(root_).Lookup(root_, "ghost").value();
  EXPECT_EQ(res.status, Nfsstat3::kErrNoent);
  EXPECT_TRUE(res.dir_attributes.has_value());
}

TEST_F(DirServerTest, CreateUpdatesParentMtimeAndSize) {
  const Fattr3 before = At(root_).Getattr(root_).value();
  queue_.RunUntil(queue_.now() + FromSeconds(2));
  ASSERT_EQ(At(root_).Create(root_, "f1").value().status, Nfsstat3::kOk);
  const Fattr3 after = At(root_).Getattr(root_).value();
  EXPECT_EQ(after.size, before.size + 1);
  EXPECT_TRUE(before.mtime < after.mtime);
}

TEST_F(DirServerTest, GuardedCreateExists) {
  ASSERT_EQ(At(root_).Create(root_, "dup").value().status, Nfsstat3::kOk);
  // SyncNfsClient::Create issues UNCHECKED; it should return the same file.
  CreateRes again = At(root_).Create(root_, "dup").value();
  EXPECT_EQ(again.status, Nfsstat3::kOk);
}

TEST_F(DirServerTest, RemoveFileDecrementsAndDeletes) {
  CreateRes created = At(root_).Create(root_, "gone").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  RemoveRes removed = At(root_).Remove(root_, "gone").value();
  EXPECT_EQ(removed.status, Nfsstat3::kOk);
  EXPECT_EQ(At(root_).Lookup(root_, "gone").value().status, Nfsstat3::kErrNoent);
  // Attr cell is gone too.
  EXPECT_FALSE(At(*created.object).Getattr(*created.object).ok());
}

TEST_F(DirServerTest, RemoveOnDirectoryIsIsdir) {
  ASSERT_EQ(At(root_).Mkdir(root_, "d").value().status, Nfsstat3::kOk);
  EXPECT_EQ(At(root_).Remove(root_, "d").value().status, Nfsstat3::kErrIsdir);
}

TEST_F(DirServerTest, RmdirSemantics) {
  CreateRes made = At(root_).Mkdir(root_, "subdir").value();
  ASSERT_EQ(made.status, Nfsstat3::kOk);
  const FileHandle dir = *made.object;

  // Parent nlink bumped by the new directory.
  EXPECT_EQ(At(root_).Getattr(root_).value().nlink, 3u);

  // Non-empty rmdir fails.
  ASSERT_EQ(At(dir).Create(dir, "inner").value().status, Nfsstat3::kOk);
  EXPECT_EQ(At(root_).Rmdir(root_, "subdir").value().status, Nfsstat3::kErrNotempty);

  ASSERT_EQ(At(dir).Remove(dir, "inner").value().status, Nfsstat3::kOk);
  EXPECT_EQ(At(root_).Rmdir(root_, "subdir").value().status, Nfsstat3::kOk);
  EXPECT_EQ(At(root_).Getattr(root_).value().nlink, 2u);
  EXPECT_EQ(At(root_).Lookup(root_, "subdir").value().status, Nfsstat3::kErrNoent);
}

TEST_F(DirServerTest, RmdirOnFileIsNotdir) {
  ASSERT_EQ(At(root_).Create(root_, "f").value().status, Nfsstat3::kOk);
  EXPECT_EQ(At(root_).Rmdir(root_, "f").value().status, Nfsstat3::kErrNotdir);
}

TEST_F(DirServerTest, LinkBumpsNlink) {
  CreateRes created = At(root_).Create(root_, "orig").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  LinkRes linked = At(root_).Link(*created.object, root_, "alias").value();
  ASSERT_EQ(linked.status, Nfsstat3::kOk);
  ASSERT_TRUE(linked.file_attributes.has_value());
  EXPECT_EQ(linked.file_attributes->nlink, 2u);

  // Remove one name: file persists with nlink 1.
  ASSERT_EQ(At(root_).Remove(root_, "orig").value().status, Nfsstat3::kOk);
  EXPECT_EQ(At(*created.object).Getattr(*created.object).value().nlink, 1u);
  LookupRes via_alias = At(root_).Lookup(root_, "alias").value();
  EXPECT_EQ(via_alias.status, Nfsstat3::kOk);
}

TEST_F(DirServerTest, RenameWithinDirectory) {
  CreateRes created = At(root_).Create(root_, "old").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  RenameRes renamed = At(root_).Rename(root_, "old", root_, "new").value();
  ASSERT_EQ(renamed.status, Nfsstat3::kOk);
  EXPECT_EQ(At(root_).Lookup(root_, "old").value().status, Nfsstat3::kErrNoent);
  EXPECT_EQ(At(root_).Lookup(root_, "new").value().object, *created.object);
}

TEST_F(DirServerTest, RenameReplacesExistingTarget) {
  ASSERT_EQ(At(root_).Create(root_, "src").value().status, Nfsstat3::kOk);
  CreateRes victim = At(root_).Create(root_, "dst").value();
  ASSERT_EQ(victim.status, Nfsstat3::kOk);
  ASSERT_EQ(At(root_).Rename(root_, "src", root_, "dst").value().status, Nfsstat3::kOk);
  // Victim's attr cell removed.
  EXPECT_FALSE(At(*victim.object).Getattr(*victim.object).ok());
}

TEST_F(DirServerTest, RenameMissingSourceIsNoent) {
  EXPECT_EQ(At(root_).Rename(root_, "nope", root_, "x").value().status, Nfsstat3::kErrNoent);
}

TEST_F(DirServerTest, SymlinkReadlink) {
  CreateRes made = At(root_).Symlink(root_, "lnk", "/target/path").value();
  ASSERT_EQ(made.status, Nfsstat3::kOk);
  ReadlinkRes read = At(*made.object).Readlink(*made.object).value();
  ASSERT_EQ(read.status, Nfsstat3::kOk);
  EXPECT_EQ(read.target, "/target/path");
}

TEST_F(DirServerTest, SetattrUpdatesSizeAndTimes) {
  CreateRes created = At(root_).Create(root_, "file").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  SetattrArgs args;
  args.object = *created.object;
  args.new_attributes.size = 12345;
  args.new_attributes.mtime = NfsTime{500, 0};
  SetattrRes res = At(*created.object).Setattr(args).value();
  ASSERT_EQ(res.status, Nfsstat3::kOk);
  Fattr3 attr = At(*created.object).Getattr(*created.object).value();
  EXPECT_EQ(attr.size, 12345u);
  EXPECT_EQ(attr.mtime.seconds, 500u);
}

TEST_F(DirServerTest, GuardedSetattrChecksCtime) {
  CreateRes created = At(root_).Create(root_, "g").value();
  SetattrArgs args;
  args.object = *created.object;
  args.new_attributes.mode = 0600;
  args.guard_ctime = NfsTime{9999, 9999};  // wrong
  SetattrRes res = At(*created.object).Setattr(args).value();
  EXPECT_EQ(res.status, Nfsstat3::kErrNotSync);
}

TEST_F(DirServerTest, AccessIsPermissive) {
  AccessRes res = At(root_).Access(root_, 0x3f).value();
  ASSERT_EQ(res.status, Nfsstat3::kOk);
  EXPECT_EQ(res.access, 0x3fu);
}

TEST_F(DirServerTest, ReaddirPagesWithCookies) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_EQ(At(root_).Create(root_, "file" + std::to_string(i)).value().status, Nfsstat3::kOk);
  }
  std::vector<DirEntry> all = At(root_).ReadWholeDir(root_).value();
  EXPECT_EQ(all.size(), 50u);
  // Paged read with a small budget requires multiple round trips.
  ReaddirRes first = At(root_).Readdir(root_, 0, 600).value();
  EXPECT_FALSE(first.eof);
  EXPECT_LT(first.entries.size(), 50u);
}

TEST_F(DirServerTest, ReaddirplusCarriesHandles) {
  ASSERT_EQ(At(root_).Create(root_, "x").value().status, Nfsstat3::kOk);
  ReaddirRes res = At(root_).Readdirplus(root_).value();
  ASSERT_EQ(res.status, Nfsstat3::kOk);
  ASSERT_FALSE(res.entries.empty());
  EXPECT_TRUE(res.entries[0].handle.has_value());
  EXPECT_TRUE(res.entries[0].attr.has_value());
}

TEST_F(DirServerTest, MkdirSwitchingOrphanDirectory) {
  // Simulate the µproxy redirecting a mkdir to site 1 (p-probability path):
  // the entry lands at the parent's site (0), the new directory's cells at
  // site 1.
  CreateRes made = AtSite(1).Mkdir(root_, "orphan").value();
  ASSERT_EQ(made.status, Nfsstat3::kOk);
  EXPECT_EQ(SiteOfFileid(made.object->fileid()), 1u);

  // The name entry is visible at the parent's site.
  LookupRes found = AtSite(0).Lookup(root_, "orphan").value();
  ASSERT_EQ(found.status, Nfsstat3::kOk);
  EXPECT_EQ(found.object, *made.object);

  // Files created inside the orphan route to site 1 and stay local there.
  const uint64_t cross_before = servers_[1]->cross_site_ops();
  ASSERT_EQ(AtSite(1).Create(*made.object, "child").value().status, Nfsstat3::kOk);
  EXPECT_EQ(servers_[1]->cross_site_ops(), cross_before);

  // Cross-site rmdir of the orphan works (entry at 0, cells at 1).
  ASSERT_EQ(AtSite(1).Remove(*made.object, "child").value().status, Nfsstat3::kOk);
  EXPECT_EQ(AtSite(0).Rmdir(root_, "orphan").value().status, Nfsstat3::kOk);
  EXPECT_FALSE(AtSite(1).Getattr(*made.object).ok());
}

TEST_F(DirServerTest, RedirectedMkdirCountsCrossSiteOps) {
  const uint64_t before = servers_[2]->cross_site_ops();
  ASSERT_EQ(AtSite(2).Mkdir(root_, "redirected").value().status, Nfsstat3::kOk);
  EXPECT_GT(servers_[2]->cross_site_ops(), before);
}

TEST_F(DirServerTest, RecoveryReplaysLog) {
  CreateRes created = At(root_).Create(root_, "durable").value();
  ASSERT_EQ(created.status, Nfsstat3::kOk);
  ASSERT_EQ(At(root_).Mkdir(root_, "dir1").value().status, Nfsstat3::kOk);
  ASSERT_EQ(At(root_).Create(root_, "temp").value().status, Nfsstat3::kOk);
  ASSERT_EQ(At(root_).Remove(root_, "temp").value().status, Nfsstat3::kOk);

  servers_[0]->FlushLog();
  queue_.RunUntilIdle();

  servers_[0]->Fail();
  servers_[0]->Restart();
  queue_.RunUntilIdle();  // drive replay
  ASSERT_FALSE(servers_[0]->recovering());

  LookupRes found = At(root_).Lookup(root_, "durable").value();
  ASSERT_EQ(found.status, Nfsstat3::kOk);
  EXPECT_EQ(found.object, *created.object);
  EXPECT_EQ(At(root_).Lookup(root_, "temp").value().status, Nfsstat3::kErrNoent);
  EXPECT_EQ(At(root_).Lookup(root_, "dir1").value().status, Nfsstat3::kOk);

  // Minting continues without fileid reuse.
  CreateRes fresh = At(root_).Create(root_, "after").value();
  ASSERT_EQ(fresh.status, Nfsstat3::kOk);
  EXPECT_NE(fresh.object->fileid(), created.object->fileid());
}

TEST_F(DirServerTest, UnflushedTailLostOnCrash) {
  // Do NOT flush: records sit in the group-commit buffer.
  ASSERT_EQ(At(root_).Create(root_, "volatile").value().status, Nfsstat3::kOk);
  servers_[0]->Fail();
  servers_[0]->Restart();
  queue_.RunUntilIdle();
  EXPECT_EQ(At(root_).Lookup(root_, "volatile").value().status, Nfsstat3::kErrNoent);
}

// --- name hashing policy ---

class NameHashingTest : public DirServerTest {
 protected:
  NameHashingTest() : DirServerTest(NamePolicy::kNameHashing) {}
};

TEST_F(NameHashingTest, EntriesScatterAcrossSites) {
  // Create many files in one directory, routing each to its hash site the
  // way the µproxy would.
  for (int i = 0; i < 60; ++i) {
    const std::string name = "scattered" + std::to_string(i);
    ASSERT_EQ(AtNameHash(root_, name).Create(root_, name).value().status, Nfsstat3::kOk);
  }
  size_t sites_with_entries = 0;
  for (const auto& server : servers_) {
    if (server->store().CountDir(kRootFileid) > 0) {
      ++sites_with_entries;
    }
  }
  EXPECT_EQ(sites_with_entries, 3u);
}

TEST_F(NameHashingTest, ReaddirGathersAllSites) {
  for (int i = 0; i < 30; ++i) {
    const std::string name = "g" + std::to_string(i);
    ASSERT_EQ(AtNameHash(root_, name).Create(root_, name).value().status, Nfsstat3::kOk);
  }
  // readdir routes to the directory's own site (root -> site 0).
  std::vector<DirEntry> all = AtSite(0).ReadWholeDir(root_).value();
  EXPECT_EQ(all.size(), 30u);
  // Merged listing is name-ordered.
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1].name, all[i].name);
  }
}

TEST_F(NameHashingTest, ConflictingOpsSerializeAtOneSite) {
  // create/create on the same (dir, name) always hash to the same server.
  const std::string name = "contested";
  SyncNfsClient& owner = AtNameHash(root_, name);
  ASSERT_EQ(owner.Create(root_, name).value().status, Nfsstat3::kOk);
  // A lookup for the same name routes to the same site and sees it.
  EXPECT_EQ(owner.Lookup(root_, name).value().status, Nfsstat3::kOk);
}

TEST_F(NameHashingTest, RenameAcrossHashSites) {
  // Choose names that hash to different sites to force the cross-site path.
  std::string from = "from0";
  std::string to;
  for (int i = 0; i < 100; ++i) {
    std::string candidate = "to" + std::to_string(i);
    if (NameHashSite(NameFingerprint(root_, candidate), kSites) !=
        NameHashSite(NameFingerprint(root_, from), kSites)) {
      to = candidate;
      break;
    }
  }
  ASSERT_FALSE(to.empty());
  ASSERT_EQ(AtNameHash(root_, from).Create(root_, from).value().status, Nfsstat3::kOk);
  RenameRes renamed = AtNameHash(root_, from).Rename(root_, from, root_, to).value();
  ASSERT_EQ(renamed.status, Nfsstat3::kOk);
  EXPECT_EQ(AtNameHash(root_, from).Lookup(root_, from).value().status, Nfsstat3::kErrNoent);
  EXPECT_EQ(AtNameHash(root_, to).Lookup(root_, to).value().status, Nfsstat3::kOk);
}

TEST_F(NameHashingTest, RmdirChecksAllSitesForEmptiness) {
  CreateRes made = AtNameHash(root_, "dir").Mkdir(root_, "dir").value();
  ASSERT_EQ(made.status, Nfsstat3::kOk);
  const FileHandle dir = *made.object;
  // Put an entry on some site.
  ASSERT_EQ(AtNameHash(dir, "leaf").Create(dir, "leaf").value().status, Nfsstat3::kOk);
  EXPECT_EQ(AtNameHash(root_, "dir").Rmdir(root_, "dir").value().status,
            Nfsstat3::kErrNotempty);
  ASSERT_EQ(AtNameHash(dir, "leaf").Remove(dir, "leaf").value().status, Nfsstat3::kOk);
  EXPECT_EQ(AtNameHash(root_, "dir").Rmdir(root_, "dir").value().status, Nfsstat3::kOk);
}

}  // namespace
}  // namespace slice
