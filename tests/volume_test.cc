// End-to-end coverage for the remaining NFS surface through the µproxy —
// symlinks, readdirplus, fsstat/fsinfo, hard links across directories — and
// for the VolumeClient convenience layer (path resolution, error paths).
#include <gtest/gtest.h>

#include "src/slice/ensemble.h"
#include "src/slice/volume_client.h"

namespace slice {
namespace {

Bytes Pattern(size_t n, uint8_t seed = 9) {
  Bytes data(n);
  for (size_t i = 0; i < n; ++i) {
    data[i] = static_cast<uint8_t>(seed + i * 17);
  }
  return data;
}

class VolumeTest : public ::testing::Test {
 protected:
  VolumeTest() {
    EnsembleConfig config;
    config.num_dir_servers = 2;
    ensemble_ = std::make_unique<Ensemble>(queue_, config);
    client_ = ensemble_->MakeSyncClient(0);
    volume_ = std::make_unique<VolumeClient>(ensemble_->client_host(0), queue_,
                                             ensemble_->virtual_server(), ensemble_->root());
    root_ = ensemble_->root();
  }

  EventQueue queue_;
  std::unique_ptr<Ensemble> ensemble_;
  std::unique_ptr<SyncNfsClient> client_;
  std::unique_ptr<VolumeClient> volume_;
  FileHandle root_;
};

TEST_F(VolumeTest, SymlinkThroughTheEnsemble) {
  CreateRes made = client_->Symlink(root_, "latest", "releases/v2").value();
  ASSERT_EQ(made.status, Nfsstat3::kOk);
  EXPECT_EQ(made.object->type(), FileType3::kLnk);
  ReadlinkRes read = client_->Readlink(*made.object).value();
  ASSERT_EQ(read.status, Nfsstat3::kOk);
  EXPECT_EQ(read.target, "releases/v2");
  // The symlink's size attribute is the target length.
  EXPECT_EQ(client_->Getattr(*made.object).value().size, read.target.size());
}

TEST_F(VolumeTest, ReaddirplusCarriesUsableHandles) {
  for (int i = 0; i < 8; ++i) {
    CreateRes created = client_->Create(root_, "rp" + std::to_string(i)).value();
    ASSERT_EQ(created.status, Nfsstat3::kOk);
    ASSERT_EQ(client_
                  ->Write(*created.object, 0, Pattern(100, static_cast<uint8_t>(i)),
                          StableHow::kFileSync)
                  .value()
                  .status,
              Nfsstat3::kOk);
  }
  ReaddirRes res = client_->Readdirplus(root_).value();
  ASSERT_EQ(res.status, Nfsstat3::kOk);
  ASSERT_EQ(res.entries.size(), 8u);
  for (const DirEntry& entry : res.entries) {
    ASSERT_TRUE(entry.handle.has_value());
    ASSERT_TRUE(entry.attr.has_value());
    // The returned handle is live: read through it.
    ReadRes read = client_->Read(*entry.handle, 0, 100).value();
    EXPECT_EQ(read.status, Nfsstat3::kOk);
    EXPECT_EQ(read.count, 100u);
  }
}

TEST_F(VolumeTest, FsstatAndFsinfoAnswerThroughProxy) {
  FsstatRes stat = client_->Fsstat(root_).value();
  ASSERT_EQ(stat.status, Nfsstat3::kOk);
  EXPECT_GT(stat.tbytes, 0u);
  FsinfoRes info = client_->Fsinfo(root_).value();
  ASSERT_EQ(info.status, Nfsstat3::kOk);
  EXPECT_GE(info.rtmax, 32768u);
}

TEST_F(VolumeTest, HardLinksAcrossDirectories) {
  CreateRes dir = client_->Mkdir(root_, "other").value();
  ASSERT_EQ(dir.status, Nfsstat3::kOk);
  CreateRes file = client_->Create(root_, "origin").value();
  ASSERT_EQ(file.status, Nfsstat3::kOk);
  ASSERT_EQ(client_->Write(*file.object, 0, Pattern(77), StableHow::kFileSync).value().status,
            Nfsstat3::kOk);

  // "naming operations such as link and rename cannot cross volume
  // boundaries" under volume partitioning — here there are none.
  LinkRes linked = client_->Link(*file.object, *dir.object, "alias").value();
  ASSERT_EQ(linked.status, Nfsstat3::kOk);
  EXPECT_EQ(linked.file_attributes->nlink, 2u);
  // Remove the original name; content still reachable via the alias.
  ASSERT_EQ(client_->Remove(root_, "origin").value().status, Nfsstat3::kOk);
  LookupRes via = client_->Lookup(*dir.object, "alias").value();
  ASSERT_EQ(via.status, Nfsstat3::kOk);
  EXPECT_EQ(client_->Read(via.object, 0, 77).value().data, Pattern(77));
}

TEST_F(VolumeTest, RenameAcrossDirectoriesThroughProxy) {
  CreateRes a = client_->Mkdir(root_, "a").value();
  CreateRes b = client_->Mkdir(root_, "b").value();
  CreateRes file = client_->Create(*a.object, "wanderer").value();
  ASSERT_EQ(file.status, Nfsstat3::kOk);
  ASSERT_EQ(client_->Rename(*a.object, "wanderer", *b.object, "settled").value().status,
            Nfsstat3::kOk);
  EXPECT_EQ(client_->Lookup(*a.object, "wanderer").value().status, Nfsstat3::kErrNoent);
  EXPECT_EQ(client_->Lookup(*b.object, "settled").value().object, *file.object);
}

// --- VolumeClient layer ---

TEST_F(VolumeTest, MkdirAllIsIdempotent) {
  FileHandle first = volume_->MkdirAll("/x/y/z").value();
  FileHandle again = volume_->MkdirAll("/x/y/z").value();
  EXPECT_EQ(first, again);
  EXPECT_EQ(volume_->Resolve("/x/y").value().type(), FileType3::kDir);
}

TEST_F(VolumeTest, ResolveMissingPathFails) {
  Result<FileHandle> missing = volume_->Resolve("/no/such/path");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(VolumeTest, WriteFileOverwritesInPlace) {
  ASSERT_TRUE(volume_->MkdirAll("/docs").ok());
  ASSERT_TRUE(volume_->WriteFile("/docs/note", Pattern(500, 1)).ok());
  ASSERT_TRUE(volume_->WriteFile("/docs/note", Pattern(300, 2)).ok());
  Bytes got = volume_->ReadFile("/docs/note").value();
  // Overwrite reuses the file (UNCHECKED create) and rewrites the prefix;
  // the size attribute still reports the largest extent written.
  EXPECT_EQ(Bytes(got.begin(), got.begin() + 300), Pattern(300, 2));
}

TEST_F(VolumeTest, RemoveFileAndDirErrors) {
  ASSERT_TRUE(volume_->MkdirAll("/tmp").ok());
  ASSERT_TRUE(volume_->WriteFile("/tmp/f", Pattern(10)).ok());
  EXPECT_FALSE(volume_->RemoveDir("/tmp").ok());  // not empty
  EXPECT_TRUE(volume_->RemoveFile("/tmp/f").ok());
  EXPECT_TRUE(volume_->RemoveDir("/tmp").ok());
  EXPECT_FALSE(volume_->RemoveFile("/tmp/f").ok());  // parent gone
}

TEST_F(VolumeTest, ListReturnsSortedNames) {
  ASSERT_TRUE(volume_->MkdirAll("/sorted").ok());
  for (const char* name : {"charlie", "alpha", "bravo"}) {
    ASSERT_TRUE(volume_->WriteFile(std::string("/sorted/") + name, Pattern(4)).ok());
  }
  std::vector<std::string> names = volume_->List("/sorted").value();
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "bravo", "charlie"}));
}

TEST_F(VolumeTest, LargeFileRoundTripViaPaths) {
  ASSERT_TRUE(volume_->MkdirAll("/data").ok());
  const Bytes big = Pattern(300000, 5);  // spans small + bulk classes
  ASSERT_TRUE(volume_->WriteFile("/data/big", big).ok());
  EXPECT_EQ(volume_->ReadFile("/data/big").value(), big);
  EXPECT_EQ(volume_->Stat("/data/big").value().size, big.size());
}

}  // namespace
}  // namespace slice
