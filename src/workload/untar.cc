#include "src/workload/untar.h"

#include "src/common/logging.h"

namespace slice {

UntarProcess::UntarProcess(Host& host, EventQueue& queue, Endpoint server, FileHandle root,
                           UntarParams params, uint64_t seed, std::function<void()> on_done)
    : client_(host, queue, server),
      queue_(queue),
      root_(root),
      params_(params),
      rng_(seed),
      on_done_(std::move(on_done)) {}

void UntarProcess::Start() {
  started_at_ = queue_.now();
  CreateTopDir();
}

void UntarProcess::CreateTopDir() {
  ++ops_issued_;
  client_.Mkdir(root_, params_.top_name, [this](Status st, const CreateRes& res) {
    if (!st.ok() || res.status != Nfsstat3::kOk || !res.object.has_value()) {
      ++errors_;
      Finish();
      return;
    }
    dirs_.push_back(*res.object);
    NextCreation();
  });
}

void UntarProcess::NextCreation() {
  if (completed_ >= params_.total_creations) {
    Finish();
    return;
  }
  // Every (files_per_dir + 1)-th creation is a directory.
  if (completed_ % (params_.files_per_dir + 1) == params_.files_per_dir) {
    DoMkdir();
  } else {
    DoFileSequence();
  }
}

void UntarProcess::DoMkdir() {
  // Bias toward recent directories (tar extracts depth-first).
  const size_t pick = dirs_.size() <= 4
                          ? rng_.NextBelow(dirs_.size())
                          : dirs_.size() - 1 - rng_.NextBelow(4);
  const FileHandle parent = dirs_[pick];
  const std::string name = "d" + std::to_string(name_counter_++);
  ++ops_issued_;
  client_.Mkdir(parent, name, [this](Status st, const CreateRes& res) {
    if (!st.ok() || res.status != Nfsstat3::kOk || !res.object.has_value()) {
      ++errors_;
    } else {
      dirs_.push_back(*res.object);
      if (dirs_.size() > 64) {
        dirs_.erase(dirs_.begin());  // cap the working set like a real untar
      }
    }
    ++completed_;
    NextCreation();
  });
}

void UntarProcess::DoFileSequence() {
  const FileHandle parent = dirs_.back();
  const std::string name = "f" + std::to_string(name_counter_++);

  // The seven-op tar sequence: lookup (miss), access, create, getattr,
  // lookup (hit), setattr, setattr.
  ++ops_issued_;
  client_.Lookup(parent, name, [this, parent, name](Status, const LookupRes&) {
    ++ops_issued_;
    client_.Access(parent, 0x3f, [this, parent, name](Status, const AccessRes&) {
      ++ops_issued_;
      client_.Create(parent, name, [this, parent, name](Status st, const CreateRes& res) {
        if (!st.ok() || res.status != Nfsstat3::kOk || !res.object.has_value()) {
          ++errors_;
          ++completed_;
          NextCreation();
          return;
        }
        const FileHandle fh = *res.object;
        ++ops_issued_;
        client_.Getattr(fh, [this, parent, name, fh](Status, const GetattrRes&) {
          ++ops_issued_;
          client_.Lookup(parent, name, [this, fh](Status, const LookupRes&) {
            SetattrArgs sattr;
            sattr.object = fh;
            sattr.new_attributes.mode = 0644;
            ++ops_issued_;
            client_.Setattr(sattr, [this, fh](Status, const SetattrRes&) {
              SetattrArgs times;
              times.object = fh;
              times.new_attributes.mtime = NfsTime{1, 0};
              times.new_attributes.atime = NfsTime{1, 0};
              ++ops_issued_;
              client_.Setattr(times, [this](Status, const SetattrRes&) {
                ++completed_;
                NextCreation();
              });
            });
          });
        });
      });
    });
  });
}

void UntarProcess::Finish() {
  finished_at_ = queue_.now();
  done_ = true;
  if (on_done_) {
    on_done_();
  }
}

}  // namespace slice
