// Sequential bulk-I/O workload: the `dd` experiment behind Table 2. Streams
// a large file through the NFS stack with a bounded read-ahead / write-ahead
// window (the paper used a 32KB NFS block size and a prefetch depth of four
// blocks) and charges a per-byte client CPU cost — the FreeBSD client write
// path saturates one PC near 40 MB/s, the zero-copy read path is cheaper.
#ifndef SLICE_WORKLOAD_SEQIO_H_
#define SLICE_WORKLOAD_SEQIO_H_

#include <functional>

#include "src/nfs/nfs_client.h"
#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace slice {

struct SeqIoParams {
  uint64_t file_bytes = 64ull << 20;
  uint32_t block_size = 32768;
  int window = 4;  // outstanding requests (read-ahead depth)
  double client_ns_per_byte = 24.0;
  bool write = true;
  StableHow stable = StableHow::kUnstable;
  uint64_t commit_every = 0;  // bytes between periodic commits; 0 = only at end
};

class SeqIoProcess {
 public:
  SeqIoProcess(Host& host, EventQueue& queue, Endpoint server, FileHandle file,
               SeqIoParams params, std::function<void()> on_done);

  void Start();

  bool done() const { return done_; }
  SimTime elapsed() const { return finished_at_ - started_at_; }
  double ThroughputMbPerSec() const {
    if (finished_at_ <= started_at_) {
      return 0;
    }
    return static_cast<double>(params_.file_bytes) / 1e6 / ToSeconds(elapsed());
  }
  uint64_t errors() const { return errors_; }
  // Per-request issue-to-completion latency distribution.
  const LatencyStats& latency() const { return latency_; }

 private:
  void Pump();
  void IssueNext();
  void OnComplete(uint64_t bytes, bool ok);
  void MaybeFinish();

  NfsClient client_;
  EventQueue& queue_;
  FileHandle file_;
  SeqIoParams params_;
  std::function<void()> on_done_;

  BusyResource client_cpu_;
  uint64_t next_offset_ = 0;
  uint64_t completed_bytes_ = 0;
  int outstanding_ = 0;
  uint64_t errors_ = 0;
  LatencyStats latency_;
  SimTime started_at_ = 0;
  SimTime finished_at_ = 0;
  bool done_ = false;
  bool committing_ = false;
};

}  // namespace slice

#endif  // SLICE_WORKLOAD_SEQIO_H_
