#include "src/workload/seqio.h"

#include <algorithm>

namespace slice {

SeqIoProcess::SeqIoProcess(Host& host, EventQueue& queue, Endpoint server, FileHandle file,
                           SeqIoParams params, std::function<void()> on_done)
    : client_(host, queue, server), queue_(queue), file_(file), params_(params),
      on_done_(std::move(on_done)) {}

void SeqIoProcess::Start() {
  started_at_ = queue_.now();
  Pump();
}

void SeqIoProcess::Pump() {
  while (outstanding_ < params_.window && next_offset_ < params_.file_bytes) {
    IssueNext();
  }
  MaybeFinish();
}

void SeqIoProcess::IssueNext() {
  const uint64_t offset = next_offset_;
  const uint32_t n = static_cast<uint32_t>(
      std::min<uint64_t>(params_.block_size, params_.file_bytes - offset));
  next_offset_ += n;
  ++outstanding_;

  // Client-side per-byte stack cost gates how fast requests leave the host.
  const SimTime cpu_done = client_cpu_.Acquire(
      queue_.now(),
      static_cast<SimTime>(static_cast<double>(n) * params_.client_ns_per_byte));

  queue_.ScheduleAt(cpu_done, [this, offset, n]() {
    const SimTime issued = queue_.now();
    if (params_.write) {
      Bytes data(n, static_cast<uint8_t>(offset >> 15));
      client_.Write(file_, offset, data, params_.stable,
                    [this, n, issued](Status st, const WriteRes& res) {
                      latency_.Record(queue_.now() - issued);
                      OnComplete(n, st.ok() && res.status == Nfsstat3::kOk);
                    });
      // Periodic commits let the servers flush while the stream continues
      // (the kernel syncer's behavior); the commit rides outside the window.
      if (params_.commit_every > 0 && offset / params_.commit_every !=
                                          (offset + n) / params_.commit_every) {
        client_.Commit(file_, 0, 0, [](Status, const CommitRes&) {});
      }
    } else {
      client_.Read(file_, offset, n, [this, n, issued](Status st, const ReadRes& res) {
        latency_.Record(queue_.now() - issued);
        OnComplete(n, st.ok() && res.status == Nfsstat3::kOk && res.count == n);
      });
    }
  });
}

void SeqIoProcess::OnComplete(uint64_t bytes, bool ok) {
  --outstanding_;
  completed_bytes_ += bytes;
  if (!ok) {
    ++errors_;
  }
  Pump();
}

void SeqIoProcess::MaybeFinish() {
  if (done_ || committing_ || outstanding_ > 0 || next_offset_ < params_.file_bytes) {
    return;
  }
  if (params_.write && params_.stable == StableHow::kUnstable) {
    committing_ = true;
    client_.Commit(file_, 0, 0, [this](Status, const CommitRes&) {
      finished_at_ = queue_.now();
      done_ = true;
      if (on_done_) {
        on_done_();
      }
    });
    return;
  }
  finished_at_ = queue_.now();
  done_ = true;
  if (on_done_) {
    on_done_();
  }
}

}  // namespace slice
