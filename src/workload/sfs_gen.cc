#include "src/workload/sfs_gen.h"

#include <algorithm>

#include "src/common/logging.h"

namespace slice {

// One load-generating process: Poisson arrivals at its share of the offered
// rate, with a small cap on outstanding requests (like SPECsfs, delivered
// throughput falls below offered load once the server saturates).
class SfsBenchmark::Process {
 public:
  static constexpr int kMaxOutstanding = 4;

  static RpcClientParams TolerantRpc() {
    RpcClientParams params;
    params.retransmit_timeout = FromSeconds(2);  // ride out saturation tails
    return params;
  }

  Process(SfsBenchmark& bench, size_t index, uint64_t seed)
      : bench_(bench),
        index_(index),
        client_(bench.host_, bench.queue_, bench.server_, TolerantRpc()),
        rng_(seed) {}

  void Start() { ScheduleArrival(); }
  void Stop() { stopped_ = true; }
  void set_tenant(uint32_t tenant) { client_.rpc().set_tenant(tenant); }

  uint64_t created_serial = 0;

 private:
  void ScheduleArrival() {
    if (stopped_) {
      return;
    }
    const double per_process_rate =
        bench_.params_.offered_ops_per_sec / static_cast<double>(bench_.params_.num_processes);
    const SimTime gap = FromSeconds(rng_.NextExponential(1.0 / per_process_rate));
    bench_.queue_.ScheduleAfter(gap, [this]() {
      if (stopped_) {
        return;
      }
      if (outstanding_ < kMaxOutstanding) {
        IssueOne();
      }
      ScheduleArrival();
    });
  }

  // Picks an op per the mix table.
  enum class Op {
    kGetattr, kSetattr, kLookup, kReadlink, kRead, kWrite, kCreate, kRemove,
    kReaddir, kFsstat, kAccess, kCommit, kReaddirplus, kFsinfo,
  };

  Op PickOp() {
    const SfsOpMix& mix = bench_.params_.mix;
    const int weights[] = {mix.getattr, mix.setattr, mix.lookup, mix.readlink,
                           mix.read,    mix.write,   mix.create, mix.remove,
                           mix.readdir, mix.fsstat,  mix.access, mix.commit,
                           mix.readdirplus, mix.fsinfo};
    int total = 0;
    for (int w : weights) {
      total += w;
    }
    int pick = static_cast<int>(rng_.NextBelow(static_cast<uint64_t>(total)));
    for (size_t i = 0; i < std::size(weights); ++i) {
      pick -= weights[i];
      if (pick < 0) {
        return static_cast<Op>(i);
      }
    }
    return Op::kGetattr;
  }

  FileInfo& RandomFile() {
    return bench_.files_[rng_.NextBelow(bench_.files_.size())];
  }
  FileHandle RandomDir() { return bench_.dirs_[rng_.NextBelow(bench_.dirs_.size())]; }

  void IssueOne() {
    ++outstanding_;
    const SimTime start = bench_.queue_.now();
    auto finish = [this, start](bool ok) {
      --outstanding_;
      bench_.OnOpComplete(start, ok);
    };

    switch (PickOp()) {
      case Op::kGetattr:
        client_.Getattr(RandomFile().handle, [finish](Status st, const GetattrRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      case Op::kSetattr: {
        SetattrArgs args;
        args.object = RandomFile().handle;
        args.new_attributes.mtime = NfsTime{static_cast<uint32_t>(rng_.NextBelow(1u << 30)), 0};
        client_.Setattr(args, [finish](Status st, const SetattrRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      }
      case Op::kLookup: {
        FileInfo& file = RandomFile();
        client_.Lookup(file.parent, file.name, [finish](Status st, const LookupRes& res) {
          finish(st.ok() && (res.status == Nfsstat3::kOk || res.status == Nfsstat3::kErrNoent));
        });
        return;
      }
      case Op::kReadlink: {
        if (bench_.symlinks_.empty()) {
          client_.Fsinfo(bench_.root_, [finish](Status st, const FsinfoRes&) {
            finish(st.ok());
          });
          return;
        }
        const FileHandle link = bench_.symlinks_[rng_.NextBelow(bench_.symlinks_.size())];
        client_.Readlink(link, [finish](Status st, const ReadlinkRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      }
      case Op::kRead: {
        FileInfo& file = RandomFile();
        const uint64_t blocks = std::max<uint64_t>(1, file.size / bench_.params_.io_size);
        const uint64_t offset = rng_.NextBelow(blocks) * bench_.params_.io_size;
        client_.Read(file.handle, offset, bench_.params_.io_size,
                     [finish](Status st, const ReadRes& res) {
                       finish(st.ok() && res.status == Nfsstat3::kOk);
                     });
        return;
      }
      case Op::kWrite: {
        FileInfo& file = RandomFile();
        const uint64_t blocks = std::max<uint64_t>(1, file.size / bench_.params_.io_size);
        const uint64_t offset = rng_.NextBelow(blocks) * bench_.params_.io_size;
        Bytes data(bench_.params_.io_size, static_cast<uint8_t>(rng_.NextU64()));
        client_.Write(file.handle, offset, data, StableHow::kUnstable,
                      [finish](Status st, const WriteRes& res) {
                        finish(st.ok() && res.status == Nfsstat3::kOk);
                      });
        return;
      }
      case Op::kCreate: {
        // Deterministic per-process namespace: the absolute process index
        // (NOT the heap address — same-seed runs must hash identical names
        // into the dir tier's per-slot counters).
        const std::string name =
            "tmp" + std::to_string(index_) + "_" + std::to_string(created_serial++);
        const FileHandle dir = RandomDir();
        client_.Create(dir, name, [this, finish, dir, name](Status st, const CreateRes& res) {
          if (st.ok() && res.status == Nfsstat3::kOk) {
            temp_files_.emplace_back(dir, name);
          }
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      }
      case Op::kRemove: {
        if (temp_files_.empty()) {
          client_.Access(bench_.root_, 0x3f, [finish](Status st, const AccessRes&) {
            finish(st.ok());
          });
          return;
        }
        auto [dir, name] = temp_files_.back();
        temp_files_.pop_back();
        client_.Remove(dir, name, [finish](Status st, const RemoveRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      }
      case Op::kReaddir:
        client_.Readdir(RandomDir(), 0, 4096, [finish](Status st, const ReaddirRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      case Op::kFsstat:
        client_.Fsstat(bench_.root_, [finish](Status st, const FsstatRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      case Op::kAccess:
        client_.Access(RandomFile().handle, 0x3f, [finish](Status st, const AccessRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      case Op::kCommit:
        client_.Commit(RandomFile().handle, 0, 0, [finish](Status st, const CommitRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      case Op::kReaddirplus:
        client_.Readdirplus(RandomDir(), 0, 8192, [finish](Status st, const ReaddirRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
      case Op::kFsinfo:
        client_.Fsinfo(bench_.root_, [finish](Status st, const FsinfoRes& res) {
          finish(st.ok() && res.status == Nfsstat3::kOk);
        });
        return;
    }
  }

  SfsBenchmark& bench_;
  const size_t index_;  // absolute process index, stable across repeated Run()s
  NfsClient client_;
  Rng rng_;
  bool stopped_ = false;
  int outstanding_ = 0;
  std::vector<std::pair<FileHandle, std::string>> temp_files_;
};

SfsBenchmark::SfsBenchmark(Host& host, EventQueue& queue, Endpoint server, FileHandle root,
                           SfsParams params)
    : host_(host), queue_(queue), server_(server), root_(root), params_(params),
      rng_(params.seed) {}

SfsBenchmark::~SfsBenchmark() = default;

uint64_t SfsBenchmark::PickFileSize(Rng& rng) const {
  // Size buckets (KB) and weights tuned so 94% of files are <= 64KB while
  // small files hold roughly a quarter of the bytes (paper §5).
  static constexpr uint64_t kSizesKb[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 2048};
  static constexpr int kWeights[] = {11, 21, 17, 16, 15, 9, 5, 3, 2, 1};
  int total = 0;
  for (int w : kWeights) {
    total += w;
  }
  int pick = static_cast<int>(rng.NextBelow(static_cast<uint64_t>(total)));
  for (size_t i = 0; i < std::size(kWeights); ++i) {
    pick -= kWeights[i];
    if (pick < 0) {
      return kSizesKb[i] * 1024;
    }
  }
  return 1024;
}

Status SfsBenchmark::Setup() {
  SyncNfsClient client(host_, queue_, server_);

  SLICE_ASSIGN_OR_RETURN(CreateRes top, client.Mkdir(root_, "sfs"));
  if (top.status != Nfsstat3::kOk) {
    return Status(StatusCode::kInternal, "sfs setup: mkdir failed");
  }
  for (size_t d = 0; d < params_.num_dirs; ++d) {
    SLICE_ASSIGN_OR_RETURN(CreateRes dir, client.Mkdir(*top.object, "d" + std::to_string(d)));
    if (dir.status != Nfsstat3::kOk) {
      return Status(StatusCode::kInternal, "sfs setup: subdir failed");
    }
    dirs_.push_back(*dir.object);
  }

  Bytes chunk(32768);
  for (auto& b : chunk) {
    b = static_cast<uint8_t>(rng_.NextU64());
  }

  for (size_t i = 0; i < params_.num_files; ++i) {
    const FileHandle dir = dirs_[i % dirs_.size()];
    const std::string name = "f" + std::to_string(i);
    SLICE_ASSIGN_OR_RETURN(CreateRes created, client.Create(dir, name));
    if (created.status != Nfsstat3::kOk) {
      return Status(StatusCode::kInternal, "sfs setup: create failed");
    }
    FileInfo info;
    info.handle = *created.object;
    info.parent = dir;
    info.name = name;
    info.size = PickFileSize(rng_);
    for (uint64_t off = 0; off < info.size; off += chunk.size()) {
      const uint64_t n = std::min<uint64_t>(chunk.size(), info.size - off);
      SLICE_ASSIGN_OR_RETURN(
          WriteRes written,
          client.Write(info.handle, off, ByteSpan(chunk.data(), n), StableHow::kUnstable));
      if (written.status != Nfsstat3::kOk) {
        return Status(StatusCode::kInternal, "sfs setup: write failed");
      }
    }
    SLICE_ASSIGN_OR_RETURN(CommitRes committed, client.Commit(info.handle, 0, 0));
    (void)committed;
    files_.push_back(std::move(info));

    if (i % 20 == 0) {
      SLICE_ASSIGN_OR_RETURN(CreateRes link,
                             client.Symlink(dir, "l" + std::to_string(i), "/sfs/" + name));
      if (link.status == Nfsstat3::kOk) {
        symlinks_.push_back(*link.object);
      }
    }
  }
  return OkStatus();
}

void SfsBenchmark::OnOpComplete(SimTime started, bool ok) {
  if (!measuring_) {
    return;
  }
  if (!ok) {
    ++errors_;
    return;
  }
  ++completed_;
  latency_.Record(queue_.now() - started);
}

SfsReport SfsBenchmark::Run() {
  // Old processes (from a previous Run) stay alive but stopped, so any of
  // their still-scheduled arrival timers fire harmlessly.
  const size_t first_new = processes_.size();
  for (size_t p = 0; p < params_.num_processes; ++p) {
    processes_.push_back(std::make_unique<Process>(*this, first_new + p, rng_.NextU64()));
    if (params_.num_tenants > 0) {
      // Tenant by absolute process index, stable across repeated Run()s.
      processes_.back()->set_tenant(
          static_cast<uint32_t>((first_new + p) % params_.num_tenants) + 1);
    }
  }
  for (size_t p = first_new; p < processes_.size(); ++p) {
    processes_[p]->Start();
  }

  queue_.RunUntil(queue_.now() + params_.warmup);
  measuring_ = true;
  latency_.Reset();
  completed_ = 0;
  errors_ = 0;

  const SimTime measure_start = queue_.now();
  queue_.RunUntil(measure_start + params_.duration);
  measuring_ = false;
  for (auto& process : processes_) {
    process->Stop();
  }

  SfsReport report;
  report.offered_ops_per_sec = params_.offered_ops_per_sec;
  report.ops_completed = completed_;
  report.errors = errors_;
  report.delivered_iops =
      static_cast<double>(completed_) / ToSeconds(params_.duration);
  report.mean_latency_ms = latency_.MeanMillis();
  report.p50_latency = latency_.Percentile(50);
  report.p95_latency = latency_.Percentile(95);
  report.p99_latency = latency_.Percentile(99);
  return report;
}

}  // namespace slice
