// SPECsfs97-like workload generator (substitute for the licensed suite; see
// DESIGN.md). Reproduces the published NFSv3 operation mix and the
// small-file-heavy file-size distribution ("94% of files are 64 KB or
// less"), offers load at a configurable rate with Poisson arrivals, and
// reports delivered throughput (IOPS) and mean latency — the two axes of
// Figures 5 and 6.
#ifndef SLICE_WORKLOAD_SFS_GEN_H_
#define SLICE_WORKLOAD_SFS_GEN_H_

#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/nfs/nfs_client.h"
#include "src/sim/stats.h"

namespace slice {

// Published SFS97 NFSv3 op mix (percent).
struct SfsOpMix {
  int getattr = 11;
  int setattr = 1;
  int lookup = 27;
  int readlink = 7;
  int read = 18;
  int write = 9;
  int create = 1;
  int remove = 1;
  int readdir = 2;
  int fsstat = 1;
  int access = 7;
  int commit = 5;
  int readdirplus = 9;
  int fsinfo = 1;
};

struct SfsParams {
  SfsOpMix mix;
  size_t num_files = 1000;
  size_t num_dirs = 30;
  // Offered load across all generator processes.
  double offered_ops_per_sec = 500;
  size_t num_processes = 8;
  SimTime warmup = FromSeconds(2);
  SimTime duration = FromSeconds(10);
  uint32_t io_size = 8192;  // per-op transfer unit for read/write
  uint64_t seed = 0x5f5;
  // Multi-tenant mix: with N > 0, generator process p runs as tenant
  // (p % N) + 1 — every request carries the tenant in its AUTH_SYS cred so
  // the µproxy/SLO plane can attribute it. 0 = untenanted (byte-identical
  // wire traffic to older builds).
  uint32_t num_tenants = 0;
};

struct SfsReport {
  double offered_ops_per_sec = 0;
  double delivered_iops = 0;
  double mean_latency_ms = 0;
  SimTime p50_latency = 0;
  SimTime p95_latency = 0;
  SimTime p99_latency = 0;
  uint64_t ops_completed = 0;
  uint64_t errors = 0;
};

// Builds the file set, runs the generators, and reports. Drives the event
// queue itself (blocking call).
class SfsBenchmark {
 public:
  SfsBenchmark(Host& host, EventQueue& queue, Endpoint server, FileHandle root,
               SfsParams params);
  ~SfsBenchmark();

  // Creates the self-scaled file set (setup phase, untimed).
  Status Setup();
  // Runs warmup + measurement and returns the report. May be called several
  // times with different offered loads over the same file set (how SPECsfs
  // sweeps its load curve).
  SfsReport Run();
  SfsReport Run(double offered_ops_per_sec) {
    params_.offered_ops_per_sec = offered_ops_per_sec;
    return Run();
  }

 private:
  struct FileInfo {
    FileHandle handle;
    FileHandle parent;
    std::string name;
    uint64_t size = 0;
    bool exists = true;
  };

  class Process;

  uint64_t PickFileSize(Rng& rng) const;
  void OnOpComplete(SimTime started, bool ok);

  Host& host_;
  EventQueue& queue_;
  Endpoint server_;
  FileHandle root_;
  SfsParams params_;
  Rng rng_;
  std::vector<FileInfo> files_;
  std::vector<FileHandle> dirs_;
  std::vector<FileHandle> symlinks_;
  std::vector<std::unique_ptr<Process>> processes_;
  LatencyStats latency_;
  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
  bool measuring_ = false;
};

}  // namespace slice

#endif  // SLICE_WORKLOAD_SFS_GEN_H_
