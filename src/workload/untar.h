// The name-intensive "untar" benchmark from the paper's §5: repeatedly
// unpacks a set of zero-length files into a directory tree that mimics the
// FreeBSD source distribution. Each file create generates seven NFS
// operations — lookup, access, create, getattr, lookup, setattr, setattr —
// and roughly one creation in twelve is a mkdir.
//
// Each process is an asynchronous state machine driving its own NfsClient;
// many processes can share one client host (Fig 3 runs up to 32 processes
// across five client PCs).
#ifndef SLICE_WORKLOAD_UNTAR_H_
#define SLICE_WORKLOAD_UNTAR_H_

#include <functional>
#include <memory>

#include "src/common/rng.h"
#include "src/nfs/nfs_client.h"

namespace slice {

struct UntarParams {
  int total_creations = 36000;  // files + directories
  int files_per_dir = 11;       // every 12th creation is a mkdir
  std::string top_name = "untar";
};

class UntarProcess {
 public:
  // Calls `on_done` once every creation has completed.
  UntarProcess(Host& host, EventQueue& queue, Endpoint server, FileHandle root,
               UntarParams params, uint64_t seed, std::function<void()> on_done);

  void Start();

  bool done() const { return done_; }
  SimTime started_at() const { return started_at_; }
  SimTime finished_at() const { return finished_at_; }
  SimTime elapsed() const { return finished_at_ - started_at_; }
  uint64_t ops_issued() const { return ops_issued_; }
  uint64_t errors() const { return errors_; }

 private:
  void CreateTopDir();
  void NextCreation();
  void DoMkdir();
  void DoFileSequence();
  void Finish();

  NfsClient client_;
  EventQueue& queue_;
  FileHandle root_;
  UntarParams params_;
  Rng rng_;
  std::function<void()> on_done_;

  std::vector<FileHandle> dirs_;  // candidate parents (most recent favored)
  int completed_ = 0;
  int name_counter_ = 0;
  uint64_t ops_issued_ = 0;
  uint64_t errors_ = 0;
  SimTime started_at_ = 0;
  SimTime finished_at_ = 0;
  bool done_ = false;
};

}  // namespace slice

#endif  // SLICE_WORKLOAD_UNTAR_H_
