#include "src/mgmt/manager.h"

#include "src/common/logging.h"
#include "src/net/network.h"

namespace slice {
namespace {

const char* NodeClassName(NodeClass cls) {
  switch (cls) {
    case NodeClass::kStorage:
      return "storage";
    case NodeClass::kDir:
      return "dir";
    case NodeClass::kSfs:
      return "sfs";
    case NodeClass::kCoord:
      return "coord";
  }
  return "?";
}

}  // namespace

EnsembleManager::EnsembleManager(Network& net, EventQueue& queue, NetAddr addr,
                                 ClusterView view, MgmtParams params)
    : RpcServerNode(net, queue, addr, kMgmtPort),
      view_(std::move(view)),
      params_(params),
      detector_(FailureDetectorParams{params.failure_timeout}) {}

void EnsembleManager::set_metrics(obs::Metrics* metrics) {
  RpcServerNode::set_metrics(metrics);
  if (metrics == nullptr || !metrics->enabled()) {
    return;
  }
  obs::MetricsRegistry& reg = metrics->Registry(addr());
  reg.GetCounter("mgmt_heartbeats_rx")->SetProvider([this]() { return heartbeats_received_; });
  reg.GetCounter("mgmt_reconfigurations")->SetProvider([this]() { return reconfigurations_; });
  reg.GetGauge("mgmt_epoch")->SetProvider(
      [this]() { return static_cast<int64_t>(tables_.epoch); });
  reg.GetGauge("mgmt_nodes_dead")->SetProvider(
      [this]() { return static_cast<int64_t>(detector_.dead_count()); });
  // Suspicion ahead of the timeout: alive nodes silent for two heartbeat
  // intervals or more (the heartbeat_miss watchdog's input).
  reg.GetGauge("mgmt_silent_nodes")->SetProvider([this]() {
    return static_cast<int64_t>(
        detector_.SilentCount(queue().now(), 2 * params_.heartbeat_interval));
  });
}

void EnsembleManager::Start() {
  SLICE_CHECK(!started_);
  started_ = true;
  const SimTime t = now();
  for (uint32_t i = 0; i < view_.storage_nodes.size(); ++i) {
    detector_.Register(NodeId(NodeClass::kStorage, i), t);
  }
  for (uint32_t i = 0; i < view_.dir_servers.size(); ++i) {
    detector_.Register(NodeId(NodeClass::kDir, i), t);
  }
  for (uint32_t i = 0; i < view_.small_file_servers.size(); ++i) {
    detector_.Register(NodeId(NodeClass::kSfs, i), t);
  }
  for (uint32_t i = 0; i < view_.coordinators.size(); ++i) {
    detector_.Register(NodeId(NodeClass::kCoord, i), t);
  }
  RecomputeTables();
  std::shared_ptr<bool> alive = alive_;
  queue().ScheduleBackgroundAfter(params_.sweep_interval, [this, alive] {
    if (*alive) {
      Sweep();
    }
  });
}

obs::TraceContext EnsembleManager::OpenEpisode(uint64_t id, const char* marker) {
  auto it = episodes_.find(id);
  if (it == episodes_.end()) {
    obs::TraceContext ctx;
    if (tracer() != nullptr && tracer()->enabled()) {
      ctx.trace_id = tracer()->NewTraceId();
      ctx.span_id = tracer()->NewSpanId();
    }
    it = episodes_.emplace(id, ctx).first;
  }
  if (tracer() != nullptr && it->second.valid()) {
    tracer()->RecordInstant(addr(), it->second, marker, now());
  }
  return it->second;
}

void EnsembleManager::NoteSilentNodes() {
  for (uint64_t id : detector_.SilentNodes(now(), 2 * params_.heartbeat_interval)) {
    if (!suspected_.insert(id).second) {
      continue;  // already reported this episode
    }
    const obs::TraceContext ctx = OpenEpisode(id, "hb_miss");
    obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kWarn, obs::EventCat::kMgmt,
                  obs::EventCode::kHeartbeatMiss, ctx.trace_id, NodeClassName(NodeIdClass(id)),
                  {{"node", NodeIdIndex(id)}});
  }
}

void EnsembleManager::Sweep() {
  NoteSilentNodes();
  std::vector<uint64_t> died = detector_.Sweep(now());
  if (!died.empty()) {
    for (uint64_t id : died) {
      const obs::TraceContext ctx = OpenEpisode(id, "node_dead");
      obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kError, obs::EventCat::kMgmt,
                    obs::EventCode::kNodeDead, ctx.trace_id, NodeClassName(NodeIdClass(id)),
                    {{"node", NodeIdIndex(id)}});
    }
    OnMembershipChange(std::move(died), {});
  }
  std::shared_ptr<bool> alive = alive_;
  queue().ScheduleBackgroundAfter(params_.sweep_interval, [this, alive] {
    if (*alive) {
      Sweep();
    }
  });
}

RpcAcceptStat EnsembleManager::HandleCall(const RpcMessageView& call,
                                          XdrEncoder& reply,
                                          ServiceCost& cost) {
  if (call.prog != kMgmtProgram) {
    return RpcAcceptStat::kProgUnavail;
  }
  cost.AddCpu(FromMicros(params_.op_cpu_us));
  switch (static_cast<MgmtProc>(call.proc)) {
    case MgmtProc::kNull:
      return RpcAcceptStat::kSuccess;
    case MgmtProc::kHeartbeat: {
      XdrDecoder dec(call.body);
      auto args = HeartbeatArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      ++heartbeats_received_;
      const uint64_t id = NodeId(args.value().node_class, args.value().index);
      if (detector_.Touch(id, now())) {
        const obs::TraceContext ctx = OpenEpisode(id, "node_rejoin");
        obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kInfo, obs::EventCat::kMgmt,
                      obs::EventCode::kNodeRejoin, ctx.trace_id,
                      NodeClassName(NodeIdClass(id)), {{"node", NodeIdIndex(id)}});
        OnMembershipChange({}, {id});
        CloseEpisode(id);
      } else if (suspected_.erase(id) > 0) {
        // Suspicion was a false alarm (lost heartbeats, not a crash).
        const auto ep = episodes_.find(id);
        obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kInfo, obs::EventCat::kMgmt,
                      obs::EventCode::kHeartbeatResume,
                      ep != episodes_.end() ? ep->second.trace_id : 0,
                      NodeClassName(NodeIdClass(id)), {{"node", NodeIdIndex(id)}});
        episodes_.erase(id);
      }
      HeartbeatRes res;
      res.current_epoch = tables_.epoch;
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    case MgmtProc::kFetchTables:
      tables_.Encode(reply);
      return RpcAcceptStat::kSuccess;
  }
  return RpcAcceptStat::kProcUnavail;
}

void EnsembleManager::RecomputeTables() {
  MgmtTableSet t;
  t.epoch = tables_.epoch + 1;

  t.dir_servers = view_.dir_servers;
  const size_t num_dir = view_.dir_servers.size();
  t.dir_alive.resize(num_dir);
  for (uint32_t i = 0; i < num_dir; ++i) {
    t.dir_alive[i] = detector_.alive(NodeId(NodeClass::kDir, i)) ? 1 : 0;
  }
  if (num_dir > 0) {
    t.dir_slots.resize(view_.logical_slots);
    for (size_t slot = 0; slot < t.dir_slots.size(); ++slot) {
      // Default round-robin owner; if dead, rebind to the next live server.
      uint32_t phys = static_cast<uint32_t>(slot % num_dir);
      for (size_t step = 0; step < num_dir && !t.dir_alive[phys]; ++step) {
        phys = static_cast<uint32_t>((phys + 1) % num_dir);
      }
      t.dir_slots[slot] = phys;
    }
  }

  // Small-file slots keep their identity binding: a replacement server would
  // not have the files. µproxies consult sfs_alive and fail fast instead.
  t.sfs_servers = view_.small_file_servers;
  const size_t num_sfs = view_.small_file_servers.size();
  t.sfs_alive.resize(num_sfs);
  for (uint32_t i = 0; i < num_sfs; ++i) {
    t.sfs_alive[i] = detector_.alive(NodeId(NodeClass::kSfs, i)) ? 1 : 0;
  }
  if (num_sfs > 0) {
    t.sfs_slots.resize(view_.logical_slots);
    for (size_t slot = 0; slot < t.sfs_slots.size(); ++slot) {
      t.sfs_slots[slot] = static_cast<uint32_t>(slot % num_sfs);
    }
  }

  t.storage_alive.resize(view_.storage_nodes.size());
  for (uint32_t i = 0; i < view_.storage_nodes.size(); ++i) {
    t.storage_alive[i] = detector_.alive(NodeId(NodeClass::kStorage, i)) ? 1 : 0;
  }

  tables_ = std::move(t);
}

void EnsembleManager::OnMembershipChange(std::vector<uint64_t> died,
                                         std::vector<uint64_t> revived) {
  RecomputeTables();
  ++reconfigurations_;
  SLICE_ILOG << "mgmt: epoch " << tables_.epoch << " (" << died.size()
             << " died, " << revived.size() << " rejoined)";
  // The epoch bump belongs to the episode that caused it; pick the first
  // affected node's trace (reconfigurations are single-cause in practice).
  uint64_t episode_trace = 0;
  for (const auto& ids : {died, revived}) {
    for (uint64_t id : ids) {
      if (episode_trace == 0) {
        episode_trace = EpisodeContext(id).trace_id;
      }
    }
  }
  obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kInfo, obs::EventCat::kMgmt,
                obs::EventCode::kEpochBump, episode_trace, nullptr,
                {{"epoch", static_cast<int64_t>(tables_.epoch)},
                 {"died", static_cast<int64_t>(died.size())},
                 {"rejoined", static_cast<int64_t>(revived.size())}});
  if (hook_) {
    hook_(tables_, died, revived);
  }
  PushTables();
}

void EnsembleManager::PushTables() {
  const Bytes push = EncodeTablePush(tables_);
  for (const Endpoint& sub : subscribers_) {
    SendPacket(Packet::MakeUdp(endpoint(), sub, push));
  }
}

}  // namespace slice
