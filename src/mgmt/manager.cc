#include "src/mgmt/manager.h"

#include <algorithm>
#include <cstdio>

#include "src/common/logging.h"
#include "src/core/routing_table.h"
#include "src/net/network.h"

namespace slice {
namespace {

const char* NodeClassName(NodeClass cls) {
  switch (cls) {
    case NodeClass::kStorage:
      return "storage";
    case NodeClass::kDir:
      return "dir";
    case NodeClass::kSfs:
      return "sfs";
    case NodeClass::kCoord:
      return "coord";
    case NodeClass::kClient:
      return "client";
  }
  return "?";
}

}  // namespace

EnsembleManager::EnsembleManager(Network& net, EventQueue& queue, NetAddr addr,
                                 ClusterView view, MgmtParams params)
    : RpcServerNode(net, queue, addr, kMgmtPort),
      view_(std::move(view)),
      params_(params),
      detector_(FailureDetectorParams{params.failure_timeout}) {}

void EnsembleManager::set_metrics(obs::Metrics* metrics) {
  RpcServerNode::set_metrics(metrics);
  if (metrics == nullptr || !metrics->enabled()) {
    return;
  }
  obs::MetricsRegistry& reg = metrics->Registry(addr());
  reg.GetCounter("mgmt_heartbeats_rx")->SetProvider([this]() { return heartbeats_received_; });
  reg.GetCounter("mgmt_reconfigurations")->SetProvider([this]() { return reconfigurations_; });
  reg.GetCounter("mgmt_rebalances")->SetProvider([this]() { return rebalances_; });
  reg.GetGauge("mgmt_epoch")->SetProvider(
      [this]() { return static_cast<int64_t>(tables_.epoch); });
  reg.GetGauge("mgmt_nodes_dead")->SetProvider(
      [this]() { return static_cast<int64_t>(detector_.dead_count()); });
  // Suspicion ahead of the timeout: alive nodes silent for two heartbeat
  // intervals or more (the heartbeat_miss watchdog's input).
  reg.GetGauge("mgmt_silent_nodes")->SetProvider([this]() {
    return static_cast<int64_t>(
        detector_.SilentCount(queue().now(), 2 * params_.heartbeat_interval));
  });
}

void EnsembleManager::Start() {
  SLICE_CHECK(!started_);
  started_ = true;
  const SimTime t = now();
  for (uint32_t i = 0; i < view_.storage_nodes.size(); ++i) {
    detector_.Register(NodeId(NodeClass::kStorage, i), t);
  }
  for (uint32_t i = 0; i < view_.dir_servers.size(); ++i) {
    detector_.Register(NodeId(NodeClass::kDir, i), t);
  }
  for (uint32_t i = 0; i < view_.small_file_servers.size(); ++i) {
    detector_.Register(NodeId(NodeClass::kSfs, i), t);
  }
  for (uint32_t i = 0; i < view_.coordinators.size(); ++i) {
    detector_.Register(NodeId(NodeClass::kCoord, i), t);
  }
  RecomputeTables();
  std::shared_ptr<bool> alive = alive_;
  queue().ScheduleBackgroundAfter(params_.sweep_interval, [this, alive] {
    if (*alive) {
      Sweep();
    }
  });
  if (params_.hotspot_enabled && view_.dir_servers.size() >= 2) {
    hotspot_last_ops_.assign(view_.dir_servers.size(), 0);
    if (params_.hotspot_per_slot) {
      hotspot_last_slot_ops_.assign(view_.dir_servers.size() * view_.logical_slots, 0);
    }
    ArmHotspotCheck();
  }
}

void EnsembleManager::ArmHotspotCheck() {
  std::shared_ptr<bool> alive = alive_;
  queue().ScheduleBackgroundAfter(params_.hotspot_interval, [this, alive] {
    if (*alive) {
      CheckHotspots();
      ArmHotspotCheck();
    }
  });
}

void EnsembleManager::CheckHotspots() {
  if (metrics() == nullptr || !metrics()->enabled()) {
    return;  // detector needs the metrics plane
  }
  const size_t num_dir = view_.dir_servers.size();
  // Sample per-dir local-op deltas since the previous pass. A restarted
  // server's counter may be below our last sample; clamp to zero.
  std::vector<uint64_t> delta(num_dir, 0);
  for (uint32_t i = 0; i < num_dir; ++i) {
    const obs::Counter* c =
        metrics()->Registry(view_.dir_servers[i].addr).FindCounter("dir_local_ops");
    const uint64_t total = c != nullptr ? c->Value() : 0;
    delta[i] = total - std::min(total, hotspot_last_ops_[i]);
    hotspot_last_ops_[i] = total;
  }
  // Per-slot deltas (hotspot_per_slot), sampled every pass — even when the
  // episode budget is spent — so they stay current for the slot ranking.
  std::vector<uint64_t> slot_delta;
  if (params_.hotspot_per_slot) {
    slot_delta.assign(num_dir * view_.logical_slots, 0);
    for (uint32_t i = 0; i < num_dir; ++i) {
      obs::MetricsRegistry& reg = metrics()->Registry(view_.dir_servers[i].addr);
      for (uint32_t s = 0; s < view_.logical_slots; ++s) {
        char name[32];
        std::snprintf(name, sizeof(name), "dir_slot%02u_ops", s);
        const obs::Counter* c = reg.FindCounter(name);
        const uint64_t total = c != nullptr ? c->Value() : 0;
        const size_t idx = i * view_.logical_slots + s;
        slot_delta[idx] = total - std::min(total, hotspot_last_slot_ops_[idx]);
        hotspot_last_slot_ops_[idx] = total;
      }
    }
  }
  if (hotspot_episodes_ >= params_.hotspot_max_episodes) {
    return;  // budget spent; keep sampling so deltas stay current
  }
  // Hottest and coldest among live servers only: moving load onto a dead
  // server is pointless, and a dead server's zero delta is not "cold".
  bool have_hot = false, have_cold = false;
  uint32_t hot = 0, cold = 0;
  for (uint32_t i = 0; i < num_dir; ++i) {
    if (!detector_.alive(NodeId(NodeClass::kDir, i))) {
      continue;
    }
    if (!have_hot || delta[i] > delta[hot]) {
      hot = i;
      have_hot = true;
    }
    if (!have_cold || delta[i] < delta[cold]) {
      cold = i;
      have_cold = true;
    }
  }
  if (!have_hot || hot == cold) {
    return;
  }
  const uint64_t hot_delta = delta[hot];
  const uint64_t cold_delta = delta[cold];
  if (hot_delta < params_.hotspot_min_ops ||
      static_cast<double>(hot_delta) <
          params_.hotspot_imbalance * static_cast<double>(std::max<uint64_t>(cold_delta, 1))) {
    return;
  }
  // Re-bind up to max_slots of the hot server's name slots to the cold one.
  // Only slots >= num_dir are movable: the low slots double as the dir
  // peer-protocol's static cell ownership (ensemble SetPeers), which a
  // fronting change must not disturb.
  std::vector<uint32_t> moved;
  if (params_.hotspot_per_slot) {
    // Rank the hot server's movable slots by their own measured heat and move
    // the hottest ones. Stable sort keeps the pick deterministic on ties
    // (lower slot index wins); slots with zero delta are never moved.
    std::vector<uint32_t> candidates;
    for (uint32_t slot = static_cast<uint32_t>(num_dir); slot < tables_.dir_slots.size();
         ++slot) {
      if (tables_.dir_slots[slot] == hot) {
        candidates.push_back(slot);
      }
    }
    const size_t base = static_cast<size_t>(hot) * view_.logical_slots;
    std::stable_sort(candidates.begin(), candidates.end(), [&](uint32_t a, uint32_t b) {
      return slot_delta[base + a] > slot_delta[base + b];
    });
    for (uint32_t slot : candidates) {
      if (moved.size() >= params_.hotspot_max_slots || slot_delta[base + slot] == 0) {
        break;
      }
      moved.push_back(slot);
      slot_overrides_[slot] = cold;
    }
  } else {
    for (uint32_t slot = static_cast<uint32_t>(num_dir);
         slot < tables_.dir_slots.size() && moved.size() < params_.hotspot_max_slots; ++slot) {
      if (tables_.dir_slots[slot] == hot) {
        moved.push_back(slot);
        slot_overrides_[slot] = cold;
      }
    }
  }
  if (moved.empty()) {
    return;
  }
  ++hotspot_episodes_;
  ++rebalances_;
  // Each rebalance episode gets its own trace id so begin/commit (and any
  // downstream cache flushes) correlate in the flight recorder.
  obs::TraceContext ctx;
  if (tracer() != nullptr && tracer()->enabled()) {
    ctx.trace_id = tracer()->NewTraceId();
    ctx.span_id = tracer()->NewSpanId();
    tracer()->RecordInstant(addr(), ctx, "rebalance", now());
  }
  obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kInfo, obs::EventCat::kMgmt,
                obs::EventCode::kRebalanceBegin, ctx.trace_id, "dir",
                {{"from", static_cast<int64_t>(hot)},
                 {"to", static_cast<int64_t>(cold)},
                 {"slots", static_cast<int64_t>(moved.size())}});
  SLICE_ILOG << "mgmt: rebalance dir " << hot << " -> " << cold << " ("
             << moved.size() << " slots)";
  // Move the slots' directory entries before anyone sees the new binding:
  // the migrate + table install happen in one sim instant, so a lookup
  // routed by the new tables always finds its names on the new owner.
  if (rebalance_hook_) {
    for (uint32_t slot : moved) {
      rebalance_hook_(slot, static_cast<uint32_t>(tables_.dir_slots.size()), hot, cold);
    }
  }
  RecomputeTables();
  ++reconfigurations_;
  if (hook_) {
    hook_(tables_, {}, {});
  }
  PushTables();
  obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kInfo, obs::EventCat::kMgmt,
                obs::EventCode::kRebalanceCommit, ctx.trace_id, "dir",
                {{"epoch", static_cast<int64_t>(tables_.epoch)}});
}

obs::TraceContext EnsembleManager::OpenEpisode(uint64_t id, const char* marker) {
  auto it = episodes_.find(id);
  if (it == episodes_.end()) {
    obs::TraceContext ctx;
    if (tracer() != nullptr && tracer()->enabled()) {
      ctx.trace_id = tracer()->NewTraceId();
      ctx.span_id = tracer()->NewSpanId();
    }
    it = episodes_.emplace(id, ctx).first;
  }
  if (tracer() != nullptr && it->second.valid()) {
    tracer()->RecordInstant(addr(), it->second, marker, now());
  }
  return it->second;
}

void EnsembleManager::NoteSilentNodes() {
  for (uint64_t id : detector_.SilentNodes(now(), 2 * params_.heartbeat_interval)) {
    if (!suspected_.insert(id).second) {
      continue;  // already reported this episode
    }
    const obs::TraceContext ctx = OpenEpisode(id, "hb_miss");
    obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kWarn, obs::EventCat::kMgmt,
                  obs::EventCode::kHeartbeatMiss, ctx.trace_id, NodeClassName(NodeIdClass(id)),
                  {{"node", NodeIdIndex(id)}});
  }
}

void EnsembleManager::Sweep() {
  NoteSilentNodes();
  std::vector<uint64_t> died = detector_.Sweep(now());
  if (!died.empty()) {
    for (uint64_t id : died) {
      const obs::TraceContext ctx = OpenEpisode(id, "node_dead");
      obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kError, obs::EventCat::kMgmt,
                    obs::EventCode::kNodeDead, ctx.trace_id, NodeClassName(NodeIdClass(id)),
                    {{"node", NodeIdIndex(id)}});
    }
    OnMembershipChange(std::move(died), {});
  }
  std::shared_ptr<bool> alive = alive_;
  queue().ScheduleBackgroundAfter(params_.sweep_interval, [this, alive] {
    if (*alive) {
      Sweep();
    }
  });
}

RpcAcceptStat EnsembleManager::HandleCall(const RpcMessageView& call,
                                          XdrEncoder& reply,
                                          ServiceCost& cost) {
  if (call.prog != kMgmtProgram) {
    return RpcAcceptStat::kProgUnavail;
  }
  cost.AddCpu(FromMicros(params_.op_cpu_us));
  switch (static_cast<MgmtProc>(call.proc)) {
    case MgmtProc::kNull:
      return RpcAcceptStat::kSuccess;
    case MgmtProc::kHeartbeat: {
      XdrDecoder dec(call.body);
      auto args = HeartbeatArgs::Decode(dec);
      if (!args.ok()) {
        return RpcAcceptStat::kGarbageArgs;
      }
      ++heartbeats_received_;
      const uint64_t id = NodeId(args.value().node_class, args.value().index);
      if (detector_.Touch(id, now())) {
        const obs::TraceContext ctx = OpenEpisode(id, "node_rejoin");
        obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kInfo, obs::EventCat::kMgmt,
                      obs::EventCode::kNodeRejoin, ctx.trace_id,
                      NodeClassName(NodeIdClass(id)), {{"node", NodeIdIndex(id)}});
        OnMembershipChange({}, {id});
        CloseEpisode(id);
      } else if (suspected_.erase(id) > 0) {
        // Suspicion was a false alarm (lost heartbeats, not a crash).
        const auto ep = episodes_.find(id);
        obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kInfo, obs::EventCat::kMgmt,
                      obs::EventCode::kHeartbeatResume,
                      ep != episodes_.end() ? ep->second.trace_id : 0,
                      NodeClassName(NodeIdClass(id)), {{"node", NodeIdIndex(id)}});
        episodes_.erase(id);
      }
      HeartbeatRes res;
      res.current_epoch = tables_.epoch;
      res.Encode(reply);
      return RpcAcceptStat::kSuccess;
    }
    case MgmtProc::kFetchTables:
      tables_.Encode(reply);
      return RpcAcceptStat::kSuccess;
  }
  return RpcAcceptStat::kProcUnavail;
}

void EnsembleManager::RecomputeTables() {
  MgmtTableSet t;
  t.epoch = tables_.epoch + 1;

  t.dir_servers = view_.dir_servers;
  const size_t num_dir = view_.dir_servers.size();
  t.dir_alive.resize(num_dir);
  for (uint32_t i = 0; i < num_dir; ++i) {
    t.dir_alive[i] = detector_.alive(NodeId(NodeClass::kDir, i)) ? 1 : 0;
  }
  if (num_dir > 0) {
    t.dir_slots.resize(view_.logical_slots);
    for (size_t slot = 0; slot < t.dir_slots.size(); ++slot) {
      // Default round-robin owner; if dead, rebind to the next live server.
      uint32_t phys = static_cast<uint32_t>(slot % num_dir);
      for (size_t step = 0; step < num_dir && !t.dir_alive[phys]; ++step) {
        phys = static_cast<uint32_t>((phys + 1) % num_dir);
      }
      t.dir_slots[slot] = phys;
    }
    // Hotspot re-striping decisions ride on top of the default walk; an
    // override only holds while its target is alive.
    for (const auto& [slot, phys] : slot_overrides_) {
      if (slot < t.dir_slots.size() && phys < num_dir && t.dir_alive[phys]) {
        t.dir_slots[slot] = phys;
      }
    }
  }

  // Small-file slots keep their identity binding: a replacement server would
  // not have the files. µproxies consult sfs_alive and fail fast instead.
  t.sfs_servers = view_.small_file_servers;
  const size_t num_sfs = view_.small_file_servers.size();
  t.sfs_alive.resize(num_sfs);
  for (uint32_t i = 0; i < num_sfs; ++i) {
    t.sfs_alive[i] = detector_.alive(NodeId(NodeClass::kSfs, i)) ? 1 : 0;
  }
  if (num_sfs > 0) {
    if (params_.rendezvous_sfs_slots) {
      // Rendezvous-filled slots: adding/removing a server perturbs only the
      // minimal slot set, so most of the fleet's cached mappings survive.
      t.sfs_slots = RendezvousAssignment(view_.logical_slots, num_sfs);
    } else {
      t.sfs_slots.resize(view_.logical_slots);
      for (size_t slot = 0; slot < t.sfs_slots.size(); ++slot) {
        t.sfs_slots[slot] = static_cast<uint32_t>(slot % num_sfs);
      }
    }
  }

  t.storage_alive.resize(view_.storage_nodes.size());
  for (uint32_t i = 0; i < view_.storage_nodes.size(); ++i) {
    t.storage_alive[i] = detector_.alive(NodeId(NodeClass::kStorage, i)) ? 1 : 0;
  }

  tables_ = std::move(t);
}

void EnsembleManager::OnMembershipChange(std::vector<uint64_t> died,
                                         std::vector<uint64_t> revived) {
  RecomputeTables();
  ++reconfigurations_;
  SLICE_ILOG << "mgmt: epoch " << tables_.epoch << " (" << died.size()
             << " died, " << revived.size() << " rejoined)";
  // The epoch bump belongs to the episode that caused it; pick the first
  // affected node's trace (reconfigurations are single-cause in practice).
  uint64_t episode_trace = 0;
  for (const auto& ids : {died, revived}) {
    for (uint64_t id : ids) {
      if (episode_trace == 0) {
        episode_trace = EpisodeContext(id).trace_id;
      }
    }
  }
  obs::LogEvent(eventlog(), addr(), now(), obs::EventSev::kInfo, obs::EventCat::kMgmt,
                obs::EventCode::kEpochBump, episode_trace, nullptr,
                {{"epoch", static_cast<int64_t>(tables_.epoch)},
                 {"died", static_cast<int64_t>(died.size())},
                 {"rejoined", static_cast<int64_t>(revived.size())}});
  if (hook_) {
    hook_(tables_, died, revived);
  }
  PushTables();
}

void EnsembleManager::PushTables() {
  const Bytes push = EncodeTablePush(tables_);
  for (const Endpoint& sub : subscribers_) {
    SendPacket(Packet::MakeUdp(endpoint(), sub, push));
  }
}

}  // namespace slice
