// Timeout-based failure detector: a node is suspected dead when no heartbeat
// has arrived for `timeout`. With one-shot heartbeats every 50ms and a 500ms
// timeout, a false positive needs ~10 consecutive heartbeat losses — vanishing
// even at 10% injected packet loss — while real failures are declared within
// one timeout of the last beat.
#ifndef SLICE_MGMT_FAILURE_DETECTOR_H_
#define SLICE_MGMT_FAILURE_DETECTOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/sim/event_queue.h"

namespace slice {

struct FailureDetectorParams {
  SimTime timeout = FromMillis(500);
};

class HeartbeatFailureDetector {
 public:
  explicit HeartbeatFailureDetector(FailureDetectorParams params = {})
      : params_(params) {}

  // Starts tracking a node, initially alive as of `now`.
  void Register(uint64_t id, SimTime now) { nodes_[id] = Entry{now, true}; }

  // Records a heartbeat. Returns true if the node was previously declared
  // dead (i.e. this beat is a rejoin).
  bool Touch(uint64_t id, SimTime now) {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) {
      nodes_[id] = Entry{now, true};
      return false;
    }
    const bool rejoined = !it->second.alive;
    it->second.last_heard = now;
    it->second.alive = true;
    return rejoined;
  }

  // Declares nodes dead whose silence exceeds the timeout; returns the ids
  // newly declared dead (deterministic ascending order).
  std::vector<uint64_t> Sweep(SimTime now) {
    std::vector<uint64_t> died;
    for (auto& [id, entry] : nodes_) {
      if (entry.alive && now > entry.last_heard &&
          now - entry.last_heard >= params_.timeout) {
        entry.alive = false;
        died.push_back(id);
      }
    }
    return died;
  }

  bool alive(uint64_t id) const {
    const auto it = nodes_.find(id);
    return it != nodes_.end() && it->second.alive;
  }
  size_t tracked() const { return nodes_.size(); }
  // Nodes still considered alive but silent for at least `silence` — the
  // heartbeat-miss watchdog's input: suspicion building before the timeout
  // declares them dead.
  size_t SilentCount(SimTime now, SimTime silence) const {
    size_t n = 0;
    for (const auto& [id, entry] : nodes_) {
      if (entry.alive && now > entry.last_heard && now - entry.last_heard >= silence) {
        ++n;
      }
    }
    return n;
  }
  // Ids behind SilentCount, ascending — the manager logs a heartbeat_miss
  // event (and opens a failure-episode trace) the first time a node shows
  // up here.
  std::vector<uint64_t> SilentNodes(SimTime now, SimTime silence) const {
    std::vector<uint64_t> out;
    for (const auto& [id, entry] : nodes_) {
      if (entry.alive && now > entry.last_heard && now - entry.last_heard >= silence) {
        out.push_back(id);
      }
    }
    return out;
  }
  size_t dead_count() const {
    size_t n = 0;
    for (const auto& [id, entry] : nodes_) {
      n += entry.alive ? 0 : 1;
    }
    return n;
  }

 private:
  struct Entry {
    SimTime last_heard = 0;
    bool alive = true;
  };

  std::map<uint64_t, Entry> nodes_;
  FailureDetectorParams params_;
};

}  // namespace slice

#endif  // SLICE_MGMT_FAILURE_DETECTOR_H_
