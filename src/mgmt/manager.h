// Ensemble manager: the control plane's single authority (paper §4). Runs as
// a real RPC endpoint on the simulated network, collects heartbeats from
// every server, declares nodes dead on heartbeat timeout, recomputes
// epoch-stamped slot assignments (directory slot rebinding; identity-bound
// small-file slots with liveness bits; mirrored-partner promotion happens in
// the µproxy via storage liveness bits), and distributes tables eagerly by
// pushing to subscribed µproxy control ports. Lazy distribution — misdirect
// notices and stale-epoch fetches — is driven by the servers and µproxies
// against this manager's kFetchTables procedure.
#ifndef SLICE_MGMT_MANAGER_H_
#define SLICE_MGMT_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/mgmt/failure_detector.h"
#include "src/mgmt/mgmt_proto.h"
#include "src/rpc/rpc_server.h"

namespace slice {

struct MgmtParams {
  bool enabled = true;
  SimTime heartbeat_interval = FromMillis(50);
  SimTime failure_timeout = FromMillis(500);
  SimTime sweep_interval = FromMillis(50);
  double op_cpu_us = 5.0;

  // Fleet routing: fill small-file slots by rendezvous (HRW) hashing instead
  // of round-robin, so a membership change moves only the minimal slot set.
  bool rendezvous_sfs_slots = false;

  // Hotspot detector: periodically sample each directory server's local-op
  // counter from the metrics plane; when the hottest live server's
  // per-interval delta exceeds `hotspot_imbalance` × the coldest's, re-bind
  // up to `hotspot_max_slots` of its name slots to the coldest server and
  // push the re-striped tables (a "rebalance episode", bounded by
  // `hotspot_max_episodes` per run). Requires metrics to be enabled.
  bool hotspot_enabled = false;
  SimTime hotspot_interval = FromMillis(250);
  uint64_t hotspot_min_ops = 64;   // hot server's delta must reach this
  double hotspot_imbalance = 2.0;  // hottest/coldest delta ratio trigger
  uint32_t hotspot_max_slots = 4;  // slots re-bound per episode
  uint32_t hotspot_max_episodes = 4;
  // Finer signal: also sample each dir server's per-slot op counters
  // ("dir_slotNN_ops", requires DirServerParams::slot_metrics) and move the
  // hot server's *hottest* movable slots, instead of the first ones found in
  // slot order. Slots with no measured heat are never moved.
  bool hotspot_per_slot = false;
};

// Static membership the manager supervises.
struct ClusterView {
  std::vector<Endpoint> dir_servers;
  std::vector<Endpoint> small_file_servers;
  std::vector<Endpoint> storage_nodes;
  std::vector<Endpoint> coordinators;
  size_t logical_slots = 64;
};

class EnsembleManager : public RpcServerNode {
 public:
  // Invoked after every epoch change, with the new tables and the node ids
  // that died / rejoined in this reconfiguration. The embedding ensemble uses
  // it to drive failover orchestration (dir site adoption, peer remapping,
  // storage resync).
  using ReconfigureHook =
      std::function<void(const MgmtTableSet& tables,
                         const std::vector<uint64_t>& died,
                         const std::vector<uint64_t>& revived)>;

  // Invoked once per slot a hotspot episode moves, before the new tables are
  // installed anywhere: (slot, num_slots, from_phys, to_phys). The ensemble
  // uses it to migrate the slot's directory entries to the new owner in the
  // same sim instant, so a rebound lookup never sees a nameless server.
  using RebalanceHook =
      std::function<void(uint32_t slot, uint32_t num_slots, uint32_t from, uint32_t to)>;

  EnsembleManager(Network& net, EventQueue& queue, NetAddr addr,
                  ClusterView view, MgmtParams params = {});
  ~EnsembleManager() override { *alive_ = false; }

  // Registers all members as alive now and arms the background sweep.
  void Start();

  void SetReconfigureHook(ReconfigureHook hook) { hook_ = std::move(hook); }
  void SetRebalanceHook(RebalanceHook hook) { rebalance_hook_ = std::move(hook); }
  // Adds a µproxy control endpoint that receives eager table pushes.
  void Subscribe(Endpoint proxy_control) { subscribers_.push_back(proxy_control); }

  const MgmtTableSet& tables() const { return tables_; }
  uint64_t current_epoch() const { return tables_.epoch; }
  bool NodeAlive(NodeClass cls, uint32_t index) const {
    return detector_.alive(NodeId(cls, index));
  }
  uint64_t reconfigurations() const { return reconfigurations_; }
  uint64_t heartbeats_received() const { return heartbeats_received_; }
  uint64_t rebalances() const { return rebalances_; }
  // Hotspot re-striping decisions currently in force (slot -> physical dir).
  const std::map<uint32_t, uint32_t>& slot_overrides() const {
    return slot_overrides_;
  }

  // Adds control-plane instruments on top of the base server metrics:
  // heartbeat totals, epoch, declared-dead count, and the silent-node gauge
  // the heartbeat_miss watchdog watches (silence >= 2 heartbeat intervals).
  void set_metrics(obs::Metrics* metrics) override;

  // Cross-pillar correlation: the first heartbeat miss for a node opens a
  // "failure episode" — a trace context whose instants (hb_miss, node_dead,
  // node_rejoin) land in the PR 2 trace export, and whose trace id stamps
  // every eventlog record of that episode (death, epoch bump, adoption,
  // handoff, resync). The embedding ensemble reads it in its reconfigure
  // hook to tag its own failover events. Returns an invalid context if no
  // episode is open for `node_id`.
  obs::TraceContext EpisodeContext(uint64_t node_id) const {
    const auto it = episodes_.find(node_id);
    return it != episodes_.end() ? it->second : obs::TraceContext{};
  }

 protected:
  RpcAcceptStat HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                           ServiceCost& cost) override;

 private:
  void Sweep();
  void RecomputeTables();
  // Hotspot detector (hotspot_enabled): one sampling pass, possibly opening
  // a rebalance episode; re-arms itself every hotspot_interval.
  void CheckHotspots();
  void ArmHotspotCheck();
  void OnMembershipChange(std::vector<uint64_t> died,
                          std::vector<uint64_t> revived);
  void PushTables();
  // Marks newly-silent nodes (the suspicion window is two heartbeat
  // intervals), opening an episode trace + heartbeat_miss event for each.
  void NoteSilentNodes();
  // Opens (or returns) the failure episode for `id`, recording `marker` as
  // a trace instant at the manager.
  obs::TraceContext OpenEpisode(uint64_t id, const char* marker);
  void CloseEpisode(uint64_t id) {
    episodes_.erase(id);
    suspected_.erase(id);
  }

  ClusterView view_;
  MgmtParams params_;
  HeartbeatFailureDetector detector_;
  MgmtTableSet tables_;
  ReconfigureHook hook_;
  RebalanceHook rebalance_hook_;
  std::vector<Endpoint> subscribers_;
  uint64_t reconfigurations_ = 0;
  uint64_t heartbeats_received_ = 0;
  // Open failure episodes (node id -> trace context) and the nodes already
  // flagged silent, so each miss is reported once per episode.
  std::map<uint64_t, obs::TraceContext> episodes_;
  std::set<uint64_t> suspected_;
  // Hotspot detector state: last-sampled per-dir op totals, re-striping
  // overrides applied on top of the default slot walk, episode budget.
  std::vector<uint64_t> hotspot_last_ops_;
  // Per-slot sampling state (hotspot_per_slot): flat dir×slot op totals,
  // index = dir * logical_slots + slot.
  std::vector<uint64_t> hotspot_last_slot_ops_;
  std::map<uint32_t, uint32_t> slot_overrides_;
  uint32_t hotspot_episodes_ = 0;
  uint64_t rebalances_ = 0;
  bool started_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace slice

#endif  // SLICE_MGMT_MANAGER_H_
