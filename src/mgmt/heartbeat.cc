#include "src/mgmt/heartbeat.h"

namespace slice {

namespace {
RpcClientParams OneShotParams() {
  RpcClientParams p;
  // A heartbeat that outlives its interval is worthless; give the reply one
  // interval's worth of time and never retransmit.
  p.retransmit_timeout = FromMillis(45);
  p.max_transmissions = 1;
  return p;
}
}  // namespace

HeartbeatAgent::HeartbeatAgent(Host& host, EventQueue& queue,
                               HeartbeatAgentParams params)
    : queue_(queue), params_(params), addr_(host.addr()), rpc_(host, queue, OneShotParams()) {}

HeartbeatAgent::~HeartbeatAgent() { *alive_ = false; }

void HeartbeatAgent::RegisterMetrics(obs::Metrics* metrics) {
  if (metrics == nullptr || !metrics->enabled()) {
    return;
  }
  obs::MetricsRegistry& reg = metrics->Registry(addr_);
  reg.GetCounter("hb_beats_sent")->SetProvider([this]() { return beats_sent_; });
  reg.GetCounter("hb_beats_acked")->SetProvider([this]() { return beats_acked_; });
  reg.GetGauge("hb_known_epoch")->SetProvider(
      [this]() { return static_cast<int64_t>(known_epoch_); });
}

void HeartbeatAgent::Start() {
  std::shared_ptr<bool> alive = alive_;
  queue_.ScheduleBackgroundAfter(0, [this, alive] {
    if (*alive) {
      Tick();
    }
  });
}

void HeartbeatAgent::Tick() {
  HeartbeatArgs args;
  args.node_class = params_.node_class;
  args.index = params_.index;
  args.known_epoch = known_epoch_;
  XdrEncoder enc;
  args.Encode(enc);
  ++beats_sent_;
  std::shared_ptr<bool> alive = alive_;
  rpc_.Call(params_.manager, kMgmtProgram, kMgmtVersion,
            static_cast<uint32_t>(MgmtProc::kHeartbeat), enc.Take(),
            [this, alive](Status status, const RpcMessageView& reply) {
              if (!*alive || !status.ok()) {
                return;
              }
              XdrDecoder dec(reply.body);
              auto res = HeartbeatRes::Decode(dec);
              if (res.ok()) {
                ++beats_acked_;
                known_epoch_ = res.value().current_epoch;
              }
            });
  const auto interval = static_cast<SimTime>(
      static_cast<double>(params_.interval) * interval_scale_);
  queue_.ScheduleBackgroundAfter(interval, [this, alive] {
    if (*alive) {
      Tick();
    }
  });
}

}  // namespace slice
