// Wire protocol for the ensemble control plane (paper §4): heartbeats from
// every server to the manager, epoch-stamped routing-table distribution, and
// the one-way control messages the manager/servers send to µproxies (eager
// table pushes and stale-epoch misdirect notices).
#ifndef SLICE_MGMT_MGMT_PROTO_H_
#define SLICE_MGMT_MGMT_PROTO_H_

#include <vector>

#include "src/net/packet.h"
#include "src/xdr/xdr.h"

namespace slice {

constexpr uint32_t kMgmtProgram = 400100;
constexpr uint32_t kMgmtVersion = 1;
// RPC port of the ensemble manager.
constexpr NetPort kMgmtPort = 2050;
// Control port on each client host where the µproxy receives one-way table
// pushes and misdirect notices.
constexpr NetPort kMgmtClientPort = 2051;

enum class MgmtProc : uint32_t {
  kNull = 0,
  kHeartbeat = 1,
  kFetchTables = 2,
};

enum class NodeClass : uint32_t {
  kStorage = 0,
  kDir = 1,
  kSfs = 2,
  kCoord = 3,
  // Client hosts are not supervised (no heartbeats, no tables) but chaos
  // scenarios address them through the same (class, index) coordinates.
  kClient = 4,
};

// Stable identity of a supervised node: (class, index within class).
inline uint64_t NodeId(NodeClass cls, uint32_t index) {
  return (static_cast<uint64_t>(cls) << 32) | index;
}
inline NodeClass NodeIdClass(uint64_t id) {
  return static_cast<NodeClass>(id >> 32);
}
inline uint32_t NodeIdIndex(uint64_t id) {
  return static_cast<uint32_t>(id);
}

struct HeartbeatArgs {
  NodeClass node_class = NodeClass::kStorage;
  uint32_t index = 0;
  uint64_t known_epoch = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<HeartbeatArgs> Decode(XdrDecoder& dec);
};

struct HeartbeatRes {
  uint64_t current_epoch = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<HeartbeatRes> Decode(XdrDecoder& dec);
};

// The manager's complete epoch-stamped view: slot assignments for the
// directory and small-file classes plus liveness bits for every class.
// Small-file slots keep their identity binding across failures (the
// replacement server would not have the file state); µproxies use the alive
// bits to fail such requests fast instead of silently misrouting them.
struct MgmtTableSet {
  uint64_t epoch = 0;
  std::vector<Endpoint> dir_servers;
  std::vector<uint32_t> dir_slots;
  std::vector<uint8_t> dir_alive;
  std::vector<Endpoint> sfs_servers;
  std::vector<uint32_t> sfs_slots;
  std::vector<uint8_t> sfs_alive;
  std::vector<uint8_t> storage_alive;
  void Encode(XdrEncoder& enc) const;
  static Result<MgmtTableSet> Decode(XdrDecoder& dec);
};

// One-way control messages, distinguished by a leading magic word.
constexpr uint32_t kTablePushMagic = 0x534c4350;  // "SLCP"
constexpr uint32_t kMisdirectMagic = 0x534c434d;  // "SLCM"

Bytes EncodeTablePush(const MgmtTableSet& tables);
Bytes EncodeMisdirectNotice(uint64_t epoch);

}  // namespace slice

#endif  // SLICE_MGMT_MGMT_PROTO_H_
