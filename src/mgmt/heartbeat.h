// Heartbeat agent: lives on a server's host and sends a periodic one-shot
// heartbeat RPC to the ensemble manager. Heartbeats are fire-and-forget
// (max_transmissions = 1) so each tick is an independent liveness sample —
// retransmitting a stale beat would only mask real silence. When the host is
// failed (crash simulation) the network drops its packets, so silence at the
// manager is exactly host death; when the host restarts, beats resume and the
// manager observes the rejoin with no agent-side logic.
#ifndef SLICE_MGMT_HEARTBEAT_H_
#define SLICE_MGMT_HEARTBEAT_H_

#include <memory>

#include "src/mgmt/mgmt_proto.h"
#include "src/obs/metrics.h"
#include "src/rpc/rpc_client.h"

namespace slice {

struct HeartbeatAgentParams {
  NodeClass node_class = NodeClass::kStorage;
  uint32_t index = 0;
  Endpoint manager;
  SimTime interval = FromMillis(50);
};

class HeartbeatAgent {
 public:
  HeartbeatAgent(Host& host, EventQueue& queue, HeartbeatAgentParams params);
  ~HeartbeatAgent();

  HeartbeatAgent(const HeartbeatAgent&) = delete;
  HeartbeatAgent& operator=(const HeartbeatAgent&) = delete;

  // Sends the first beat immediately and arms the background timer.
  void Start();

  // Registers this agent's beat counters against its host's registry.
  void RegisterMetrics(obs::Metrics* metrics);

  uint64_t beats_sent() const { return beats_sent_; }
  uint64_t beats_acked() const { return beats_acked_; }
  // Last epoch the manager reported in a heartbeat reply.
  uint64_t known_epoch() const { return known_epoch_; }

  NodeClass node_class() const { return params_.node_class; }
  uint32_t index() const { return params_.index; }

  // Clock-skew fault (src/chaos): scales the beat interval. The node is
  // healthy — its clock just runs slow — so a scale that pushes the
  // effective interval past the detector timeout makes an alive node look
  // dead; a milder one keeps it flapping in and out of suspicion. Takes
  // effect from the next tick; 1.0 restores nominal pacing.
  void set_interval_scale(double scale) { interval_scale_ = scale > 0 ? scale : 1.0; }
  double interval_scale() const { return interval_scale_; }

 private:
  void Tick();

  EventQueue& queue_;
  HeartbeatAgentParams params_;
  NetAddr addr_;
  RpcClient rpc_;
  double interval_scale_ = 1.0;
  uint64_t beats_sent_ = 0;
  uint64_t beats_acked_ = 0;
  uint64_t known_epoch_ = 0;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace slice

#endif  // SLICE_MGMT_HEARTBEAT_H_
