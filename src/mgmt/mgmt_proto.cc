#include "src/mgmt/mgmt_proto.h"

namespace slice {

namespace {

void EncodeEndpointList(XdrEncoder& enc, const std::vector<Endpoint>& eps) {
  enc.PutUint32(static_cast<uint32_t>(eps.size()));
  for (const Endpoint& ep : eps) {
    enc.PutUint32(ep.addr);
    enc.PutUint32(ep.port);
  }
}

Result<std::vector<Endpoint>> DecodeEndpointList(XdrDecoder& dec) {
  SLICE_ASSIGN_OR_RETURN(uint32_t n, dec.GetUint32());
  if (n > 4096) {
    return Status(StatusCode::kCorrupt, "mgmt: oversized endpoint list");
  }
  std::vector<Endpoint> eps;
  eps.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Endpoint ep;
    SLICE_ASSIGN_OR_RETURN(ep.addr, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(uint32_t port, dec.GetUint32());
    ep.port = static_cast<NetPort>(port);
    eps.push_back(ep);
  }
  return eps;
}

void EncodeU32List(XdrEncoder& enc, const std::vector<uint32_t>& v) {
  enc.PutUint32(static_cast<uint32_t>(v.size()));
  for (uint32_t x : v) {
    enc.PutUint32(x);
  }
}

Result<std::vector<uint32_t>> DecodeU32List(XdrDecoder& dec) {
  SLICE_ASSIGN_OR_RETURN(uint32_t n, dec.GetUint32());
  if (n > 65536) {
    return Status(StatusCode::kCorrupt, "mgmt: oversized slot list");
  }
  std::vector<uint32_t> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SLICE_ASSIGN_OR_RETURN(uint32_t x, dec.GetUint32());
    v.push_back(x);
  }
  return v;
}

void EncodeBoolList(XdrEncoder& enc, const std::vector<uint8_t>& v) {
  enc.PutUint32(static_cast<uint32_t>(v.size()));
  for (uint8_t x : v) {
    enc.PutBool(x != 0);
  }
}

Result<std::vector<uint8_t>> DecodeBoolList(XdrDecoder& dec) {
  SLICE_ASSIGN_OR_RETURN(uint32_t n, dec.GetUint32());
  if (n > 4096) {
    return Status(StatusCode::kCorrupt, "mgmt: oversized liveness list");
  }
  std::vector<uint8_t> v;
  v.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SLICE_ASSIGN_OR_RETURN(bool x, dec.GetBool());
    v.push_back(x ? 1 : 0);
  }
  return v;
}

}  // namespace

void HeartbeatArgs::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(node_class));
  enc.PutUint32(index);
  enc.PutUint64(known_epoch);
}

Result<HeartbeatArgs> HeartbeatArgs::Decode(XdrDecoder& dec) {
  HeartbeatArgs args;
  SLICE_ASSIGN_OR_RETURN(uint32_t cls, dec.GetUint32());
  if (cls > 3) {
    return Status(StatusCode::kCorrupt, "mgmt: bad node class");
  }
  args.node_class = static_cast<NodeClass>(cls);
  SLICE_ASSIGN_OR_RETURN(args.index, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(args.known_epoch, dec.GetUint64());
  return args;
}

void HeartbeatRes::Encode(XdrEncoder& enc) const { enc.PutUint64(current_epoch); }

Result<HeartbeatRes> HeartbeatRes::Decode(XdrDecoder& dec) {
  HeartbeatRes res;
  SLICE_ASSIGN_OR_RETURN(res.current_epoch, dec.GetUint64());
  return res;
}

void MgmtTableSet::Encode(XdrEncoder& enc) const {
  enc.PutUint64(epoch);
  EncodeEndpointList(enc, dir_servers);
  EncodeU32List(enc, dir_slots);
  EncodeBoolList(enc, dir_alive);
  EncodeEndpointList(enc, sfs_servers);
  EncodeU32List(enc, sfs_slots);
  EncodeBoolList(enc, sfs_alive);
  EncodeBoolList(enc, storage_alive);
}

Result<MgmtTableSet> MgmtTableSet::Decode(XdrDecoder& dec) {
  MgmtTableSet t;
  SLICE_ASSIGN_OR_RETURN(t.epoch, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(t.dir_servers, DecodeEndpointList(dec));
  SLICE_ASSIGN_OR_RETURN(t.dir_slots, DecodeU32List(dec));
  SLICE_ASSIGN_OR_RETURN(t.dir_alive, DecodeBoolList(dec));
  SLICE_ASSIGN_OR_RETURN(t.sfs_servers, DecodeEndpointList(dec));
  SLICE_ASSIGN_OR_RETURN(t.sfs_slots, DecodeU32List(dec));
  SLICE_ASSIGN_OR_RETURN(t.sfs_alive, DecodeBoolList(dec));
  SLICE_ASSIGN_OR_RETURN(t.storage_alive, DecodeBoolList(dec));
  for (uint32_t s : t.dir_slots) {
    if (s >= t.dir_servers.size()) {
      return Status(StatusCode::kCorrupt, "mgmt: dir slot out of range");
    }
  }
  for (uint32_t s : t.sfs_slots) {
    if (s >= t.sfs_servers.size()) {
      return Status(StatusCode::kCorrupt, "mgmt: sfs slot out of range");
    }
  }
  return t;
}

Bytes EncodeTablePush(const MgmtTableSet& tables) {
  XdrEncoder enc;
  enc.PutUint32(kTablePushMagic);
  tables.Encode(enc);
  return enc.Take();
}

Bytes EncodeMisdirectNotice(uint64_t epoch) {
  XdrEncoder enc;
  enc.PutUint32(kMisdirectMagic);
  enc.PutUint64(epoch);
  return enc.Take();
}

}  // namespace slice
