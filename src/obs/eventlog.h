// Structured event log (third observability pillar, next to tracing and
// metrics).
//
// Spans (obs/trace.h) say *where time went*; instruments (obs/metrics.h) say
// *how much*; neither says *why* — which route class the µproxy picked, why a
// request was rejected, when the manager first flagged a node silent, which
// dir server adopted an orphaned site. The event log records those discrete
// decisions as small, trivially-copyable records in bounded per-host rings,
// so every Alert and every failed request has a causal trail that survives
// to the flight-recorder dump (obs/flight_recorder.h).
//
// Design constraints (shared with the other pillars):
//  * Near-zero cost when disabled: instrumentation sites go through the
//    null-safe LogEvent() helper (one branch), and a disabled or
//    severity-filtered EventLog::Record is an early-out that allocates
//    nothing. Payloads are fixed-capacity so recording never allocates
//    beyond the preallocated ring slots.
//  * Deterministic: events carry sim-time plus a global monotonic sequence
//    number minted in event-execution order; rings are keyed by host address
//    in an ordered map. Same seed => byte-identical dump.
//  * Stable schema: EventCode values are append-only and grouped by
//    category, so dumps from different builds stay comparable and
//    tools/slice_inspect.py can filter by code.
#ifndef SLICE_OBS_EVENTLOG_H_
#define SLICE_OBS_EVENTLOG_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <map>
#include <string_view>
#include <vector>

#include "src/sim/event_queue.h"

namespace slice::obs {

enum class EventSev : uint8_t {
  kDebug = 0,  // per-request decisions (route class, attr writeback)
  kInfo = 1,   // state transitions in the normal course (epoch bump, rejoin)
  kWarn = 2,   // suspicious but recoverable (retransmit, drop, hb miss)
  kError = 3,  // declared failures (node dead, request rejected)
};
constexpr size_t kNumEventSevs = 4;

enum class EventCat : uint8_t {
  kRoute = 0,     // µproxy request routing + rewrite decisions
  kCache = 1,     // µproxy soft state (attr cache, table cache)
  kMgmt = 2,      // heartbeats, membership, epochs, table distribution
  kFailover = 3,  // kill/recover, adoption/handoff, resync, WAL replay
  kRpc = 4,       // retransmit / timeout / DRC replay
  kNet = 5,       // packet drops
  kAlert = 6,     // watchdog alert raise/clear
};
constexpr size_t kNumEventCats = 7;

// Stable, append-only event codes, grouped by category in blocks of 100.
// Never renumber: dumps are compared across builds and the inspector keys
// off these values.
enum class EventCode : uint16_t {
  kNone = 0,
  // -- route (µproxy request path) --
  kRouteDecision = 100,          // request functionally switched to a target
  kRouteUnavailable = 101,       // no live target; rejected back to client
  kRouteFailoverRedirect = 102,  // preferred target dead, rerouted by epoch table
  kMisdirectNotice = 110,        // server told us our table is stale
  kTableInstall = 111,           // new epoch-stamped table set installed
  kTableFetch = 112,             // lazy table fetch issued to the manager
  kSoftStateDrop = 113,          // proxy soft state dropped (restart)
  // -- cache (µproxy soft state) --
  kAttrWriteback = 120,          // cached attributes applied to a reply
  // -- mgmt (membership + tables) --
  kHeartbeatMiss = 200,    // node newly silent past the suspicion window
  kNodeDead = 201,         // failure detector declared the node dead
  kNodeRejoin = 202,       // heartbeat from a previously-dead node
  kEpochBump = 203,        // routing tables recomputed under a new epoch
  kHeartbeatResume = 204,  // suspected-silent node heartbeated again
  // -- failover (recovery machinery) --
  kAdoptBegin = 210,   // surviving dir server starts adopting a dead site
  kAdoptDone = 211,    // adoption WAL replay finished
  kHandoff = 212,      // adopted site handed back to its rejoined owner
  kResync = 213,       // mirror resync scheduled for a revived storage node
  kWalReplay = 214,    // WAL replayed on restart (dir recovery)
  kNodeKill = 215,     // simulated crash: host stops responding
  kNodeRecover = 216,  // host restarted with volatile state cleared
  // -- rpc --
  kRpcRetransmit = 300,  // client retransmitted an unanswered call
  kRpcTimeout = 301,     // client gave up on a call
  kDrcReplay = 302,      // server answered a duplicate from its DRC
  kRpcGiveUp = 303,      // transmission budget exhausted; call abandoned
  // -- net --
  kPacketDrop = 400,  // packet lost (loss model or dead endpoint)
  // -- alert --
  kAlertRaise = 500,
  kAlertClear = 501,
};

const char* EventSevName(EventSev sev);
const char* EventCatName(EventCat cat);
const char* EventCodeName(EventCode code);

// Fixed capacities keep Event trivially copyable and recording
// allocation-free. Details are short tags ("loss", "small_commit", rule
// names — longest stock rule is "srv_cpu_backlog", 15 chars).
constexpr size_t kEventDetailCap = 20;
constexpr size_t kEventArgKeyCap = 12;
constexpr size_t kEventMaxArgs = 3;

struct EventArg {
  char key[kEventArgKeyCap] = {};
  int64_t value = 0;
};

struct Event {
  SimTime at = 0;
  uint64_t seq = 0;       // global mint order; tie-breaker for same-time events
  uint64_t trace_id = 0;  // 0 = not correlated with a PR 2 trace
  uint32_t host = 0;      // NetAddr of the recording host
  EventSev sev = EventSev::kInfo;
  EventCat cat = EventCat::kRoute;
  EventCode code = EventCode::kNone;
  uint8_t nargs = 0;
  char detail[kEventDetailCap] = {};
  EventArg args[kEventMaxArgs] = {};

  void set_detail(const char* d) {
    if (d == nullptr) {
      detail[0] = '\0';
      return;
    }
    std::strncpy(detail, d, kEventDetailCap - 1);
    detail[kEventDetailCap - 1] = '\0';
  }
  std::string_view detail_view() const { return std::string_view(detail); }
};

// Bounded per-host event storage; oldest entries overwritten on overflow
// (same soft-state discipline as SpanRing / TimeSeries).
class EventRing {
 public:
  explicit EventRing(size_t capacity) : slots_(capacity > 0 ? capacity : 1) {}

  void Push(const Event& event) {
    if (size_ == slots_.size()) {
      slots_[head_] = event;
      head_ = (head_ + 1) % slots_.size();
      ++evicted_;
    } else {
      slots_[(head_ + size_) % slots_.size()] = event;
      ++size_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }
  uint64_t evicted() const { return evicted_; }

  // Appends the ring's events, oldest first, to `out`.
  void CopyTo(std::vector<Event>& out) const {
    for (size_t i = 0; i < size_; ++i) {
      out.push_back(slots_[(head_ + i) % slots_.size()]);
    }
  }

 private:
  std::vector<Event> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t evicted_ = 0;
};

struct EventLogParams {
  bool enabled = true;
  size_t ring_capacity = 1 << 13;      // events per host
  EventSev min_severity = EventSev::kDebug;
};

// Named key/value argument at a call site. Passing these by initializer_list
// keeps Record() allocation-free (the list lives on the caller's stack).
struct Kv {
  const char* key;
  int64_t value;
};

class EventLog {
 public:
  explicit EventLog(EventLogParams params = {}) : params_(params) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  bool enabled() const { return params_.enabled; }
  EventSev min_severity() const { return params_.min_severity; }

  // Records one event on `host`'s ring. Early-out (no allocation, no ring
  // creation) when disabled or below the severity floor. Args beyond
  // kEventMaxArgs are dropped.
  void Record(uint32_t host, SimTime at, EventSev sev, EventCat cat, EventCode code,
              uint64_t trace_id = 0, const char* detail = nullptr,
              std::initializer_list<Kv> args = {});

  // Merged view of every ring ordered by (at, seq): hosts in address order,
  // oldest-first per host, then a stable merge on the global sequence.
  std::vector<Event> Collect() const;

  uint64_t total_recorded() const { return recorded_; }
  uint64_t total_evicted() const;
  size_t num_rings() const { return rings_.size(); }
  const std::map<uint32_t, EventRing>& rings() const { return rings_; }

  void Clear() {
    rings_.clear();
    recorded_ = 0;
  }

 private:
  EventLogParams params_;
  uint64_t next_seq_ = 0;
  uint64_t recorded_ = 0;
  std::map<uint32_t, EventRing> rings_;  // ordered => deterministic dump
};

// Null-safe instrumentation helper: the single branch components pay when
// event logging is not wired up.
inline void LogEvent(EventLog* log, uint32_t host, SimTime at, EventSev sev, EventCat cat,
                     EventCode code, uint64_t trace_id = 0, const char* detail = nullptr,
                     std::initializer_list<Kv> args = {}) {
  if (log != nullptr) {
    log->Record(host, at, sev, cat, code, trace_id, detail, args);
  }
}

}  // namespace slice::obs

#endif  // SLICE_OBS_EVENTLOG_H_
