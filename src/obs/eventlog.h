// Structured event log (third observability pillar, next to tracing and
// metrics).
//
// Spans (obs/trace.h) say *where time went*; instruments (obs/metrics.h) say
// *how much*; neither says *why* — which route class the µproxy picked, why a
// request was rejected, when the manager first flagged a node silent, which
// dir server adopted an orphaned site. The event log records those discrete
// decisions as small, trivially-copyable records in bounded per-host rings,
// so every Alert and every failed request has a causal trail that survives
// to the flight-recorder dump (obs/flight_recorder.h).
//
// Design constraints (shared with the other pillars):
//  * Near-zero cost when disabled: instrumentation sites go through the
//    null-safe LogEvent() helper (one branch), and a disabled or
//    severity-filtered EventLog::Record is an early-out that allocates
//    nothing. Payloads are fixed-capacity so recording never allocates
//    beyond the preallocated ring slots.
//  * Deterministic: events carry sim-time plus a global monotonic sequence
//    number minted in event-execution order; rings are keyed by host address
//    in an ordered map. Same seed => byte-identical dump.
//  * Stable schema: EventCode values are append-only and grouped by
//    category, so dumps from different builds stay comparable and
//    tools/slice_inspect.py can filter by code.
#ifndef SLICE_OBS_EVENTLOG_H_
#define SLICE_OBS_EVENTLOG_H_

#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/event_queue.h"

namespace slice::obs {

enum class EventSev : uint8_t {
  kDebug = 0,  // per-request decisions (route class, attr writeback)
  kInfo = 1,   // state transitions in the normal course (epoch bump, rejoin)
  kWarn = 2,   // suspicious but recoverable (retransmit, drop, hb miss)
  kError = 3,  // declared failures (node dead, request rejected)
};
constexpr size_t kNumEventSevs = 4;

enum class EventCat : uint8_t {
  kRoute = 0,     // µproxy request routing + rewrite decisions
  kCache = 1,     // µproxy soft state (attr cache, table cache)
  kMgmt = 2,      // heartbeats, membership, epochs, table distribution
  kFailover = 3,  // kill/recover, adoption/handoff, resync, WAL replay
  kRpc = 4,       // retransmit / timeout / DRC replay
  kNet = 5,       // packet drops
  kAlert = 6,     // watchdog alert raise/clear
  kChaos = 7,     // chaos engine: fault injection + workload verification
};
constexpr size_t kNumEventCats = 8;

// Stable, append-only event codes, grouped by category in blocks of 100.
// Never renumber: dumps are compared across builds and the inspector keys
// off these values.
//
// This X-macro list is the single source of truth for the numeric value,
// the symbolic name, and the wire name of every code: the enum,
// EventCodeName(), and the generated code→name table that
// tools/slice_inspect.py consumes (tools/dump_event_codes →
// event_codes.json) are all expanded from it, so a code added here shows
// up named in the inspector with no further edits.
#define SLICE_EVENT_CODES(X)                                                     \
  X(kNone, 0, "none")                                                            \
  /* -- route (µproxy request path) -- */                                        \
  X(kRouteDecision, 100, "route_decision")           /* switched to a target */  \
  X(kRouteUnavailable, 101, "route_unavailable")     /* no live target */        \
  X(kRouteFailoverRedirect, 102, "route_failover_redirect")                      \
  X(kMisdirectNotice, 110, "misdirect_notice")       /* stale-table notice */    \
  X(kTableInstall, 111, "table_install")             /* epoch table installed */ \
  X(kTableFetch, 112, "table_fetch")                 /* lazy fetch issued */     \
  X(kSoftStateDrop, 113, "soft_state_drop")          /* proxy state dropped */   \
  /* -- cache (µproxy soft state) -- */                                          \
  X(kAttrWriteback, 120, "attr_writeback")                                       \
  X(kCacheHit, 121, "cache_hit")     /* reply served from proxy cache */         \
  X(kCacheFlush, 122, "cache_flush") /* epoch bump flushed entries */            \
  /* -- mgmt (membership + tables) -- */                                         \
  X(kHeartbeatMiss, 200, "heartbeat_miss")     /* newly silent */                \
  X(kNodeDead, 201, "node_dead")               /* declared dead */               \
  X(kNodeRejoin, 202, "node_rejoin")           /* heartbeat after death */       \
  X(kEpochBump, 203, "epoch_bump")             /* tables recomputed */           \
  X(kHeartbeatResume, 204, "heartbeat_resume") /* silent node beat again */      \
  X(kRebalanceBegin, 205, "rebalance_begin")   /* hotspot episode opened */      \
  X(kRebalanceCommit, 206, "rebalance_commit") /* re-striped tables pushed */    \
  /* -- failover (recovery machinery) -- */                                      \
  X(kAdoptBegin, 210, "adopt_begin")   /* dir starts adopting a dead site */     \
  X(kAdoptDone, 211, "adopt_done")     /* adoption WAL replay finished */        \
  X(kHandoff, 212, "handoff")          /* site handed back to owner */           \
  X(kResync, 213, "resync")            /* mirror resync scheduled */             \
  X(kWalReplay, 214, "wal_replay")     /* WAL replayed on restart */             \
  X(kNodeKill, 215, "node_kill")       /* simulated crash */                     \
  X(kNodeRecover, 216, "node_recover") /* restart, volatile state cleared */     \
  /* -- rpc -- */                                                                \
  X(kRpcRetransmit, 300, "rpc_retransmit")                                       \
  X(kRpcTimeout, 301, "rpc_timeout")                                             \
  X(kDrcReplay, 302, "drc_replay")                                               \
  X(kRpcGiveUp, 303, "rpc_give_up")                                              \
  /* -- net -- */                                                                \
  X(kPacketDrop, 400, "packet_drop") /* loss model, chaos, or dead endpoint */   \
  /* -- alert -- */                                                              \
  X(kAlertRaise, 500, "alert_raise")                                             \
  X(kAlertClear, 501, "alert_clear")                                             \
  X(kSloBurn, 510, "slo_burn") /* tenant burn-rate over budget */                \
  X(kSloOk, 511, "slo_ok")     /* tenant burn-rate recovered */                  \
  /* -- chaos (fault injection + invariant workload) -- */                       \
  X(kScenarioStart, 600, "scenario_start") /* named scenario armed */            \
  X(kScenarioEnd, 601, "scenario_end")     /* scenario workload drained */       \
  X(kFaultInject, 602, "fault_inject")     /* a primitive fault applied */       \
  X(kFaultClear, 603, "fault_clear")       /* a primitive fault healed */        \
  X(kChaosWriteAcked, 610, "chaos_write_acked") /* durable-claim journaled */    \
  X(kChaosReadOk, 611, "chaos_read_ok")         /* verify read matched */        \
  X(kChaosReadLost, 612, "chaos_read_lost")     /* acked data missing/torn */

enum class EventCode : uint16_t {
#define SLICE_EVENT_CODE_ENUM(sym, value, name) sym = value,
  SLICE_EVENT_CODES(SLICE_EVENT_CODE_ENUM)
#undef SLICE_EVENT_CODE_ENUM
};

const char* EventSevName(EventSev sev);
const char* EventCatName(EventCat cat);
const char* EventCodeName(EventCode code);

// The full code table as canonical JSON, for tools that want the mapping
// without parsing C++ (tools/dump_event_codes writes this to
// event_codes.json; tools/slice_inspect.py resolves symbolic --code names
// from it): {"event_codes":[{"code":100,"name":"route_decision"},...]}.
std::string EventCodeTableJson();

// Fixed capacities keep Event trivially copyable and recording
// allocation-free. Details are short tags ("loss", "small_commit", rule
// names — longest stock rule is "srv_cpu_backlog", 15 chars).
constexpr size_t kEventDetailCap = 20;
constexpr size_t kEventArgKeyCap = 12;
constexpr size_t kEventMaxArgs = 3;

struct EventArg {
  char key[kEventArgKeyCap] = {};
  int64_t value = 0;
};

struct Event {
  SimTime at = 0;
  uint64_t seq = 0;       // global mint order; tie-breaker for same-time events
  uint64_t trace_id = 0;  // 0 = not correlated with a PR 2 trace
  uint32_t host = 0;      // NetAddr of the recording host
  EventSev sev = EventSev::kInfo;
  EventCat cat = EventCat::kRoute;
  EventCode code = EventCode::kNone;
  uint8_t nargs = 0;
  char detail[kEventDetailCap] = {};
  EventArg args[kEventMaxArgs] = {};

  void set_detail(const char* d) {
    if (d == nullptr) {
      detail[0] = '\0';
      return;
    }
    std::strncpy(detail, d, kEventDetailCap - 1);
    detail[kEventDetailCap - 1] = '\0';
  }
  std::string_view detail_view() const { return std::string_view(detail); }
};

// Bounded per-host event storage; oldest entries overwritten on overflow
// (same soft-state discipline as SpanRing / TimeSeries).
class EventRing {
 public:
  explicit EventRing(size_t capacity) : slots_(capacity > 0 ? capacity : 1) {}

  void Push(const Event& event) {
    if (size_ == slots_.size()) {
      slots_[head_] = event;
      head_ = (head_ + 1) % slots_.size();
      ++evicted_;
    } else {
      slots_[(head_ + size_) % slots_.size()] = event;
      ++size_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }
  uint64_t evicted() const { return evicted_; }

  // Appends the ring's events, oldest first, to `out`.
  void CopyTo(std::vector<Event>& out) const {
    for (size_t i = 0; i < size_; ++i) {
      out.push_back(slots_[(head_ + i) % slots_.size()]);
    }
  }

 private:
  std::vector<Event> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t evicted_ = 0;
};

struct EventLogParams {
  bool enabled = true;
  size_t ring_capacity = 1 << 13;      // events per host
  EventSev min_severity = EventSev::kDebug;
};

// Named key/value argument at a call site. Passing these by initializer_list
// keeps Record() allocation-free (the list lives on the caller's stack).
struct Kv {
  const char* key;
  int64_t value;
};

class EventLog {
 public:
  explicit EventLog(EventLogParams params = {}) : params_(params) {}

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  bool enabled() const { return params_.enabled; }
  EventSev min_severity() const { return params_.min_severity; }

  // Records one event on `host`'s ring. Early-out (no allocation, no ring
  // creation) when disabled or below the severity floor. Args beyond
  // kEventMaxArgs are dropped.
  void Record(uint32_t host, SimTime at, EventSev sev, EventCat cat, EventCode code,
              uint64_t trace_id = 0, const char* detail = nullptr,
              std::initializer_list<Kv> args = {});

  // Merged view of every ring ordered by (at, seq): hosts in address order,
  // oldest-first per host, then a stable merge on the global sequence.
  std::vector<Event> Collect() const;

  uint64_t total_recorded() const { return recorded_; }
  uint64_t total_evicted() const;
  size_t num_rings() const { return rings_.size(); }
  const std::map<uint32_t, EventRing>& rings() const { return rings_; }

  void Clear() {
    rings_.clear();
    recorded_ = 0;
  }

 private:
  EventLogParams params_;
  uint64_t next_seq_ = 0;
  uint64_t recorded_ = 0;
  std::map<uint32_t, EventRing> rings_;  // ordered => deterministic dump
};

// Null-safe instrumentation helper: the single branch components pay when
// event logging is not wired up.
inline void LogEvent(EventLog* log, uint32_t host, SimTime at, EventSev sev, EventCat cat,
                     EventCode code, uint64_t trace_id = 0, const char* detail = nullptr,
                     std::initializer_list<Kv> args = {}) {
  if (log != nullptr) {
    log->Record(host, at, sev, cat, code, trace_id, detail, args);
  }
}

}  // namespace slice::obs

#endif  // SLICE_OBS_EVENTLOG_H_
