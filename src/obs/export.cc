#include "src/obs/export.h"

#include <algorithm>

namespace slice::obs {
namespace {

// Microsecond timestamp with nanosecond fraction, formatted from integers so
// the output never depends on floating-point printing.
void AppendMicros(std::string& out, SimTime ns) {
  out += std::to_string(ns / 1000);
  out += '.';
  const uint64_t frac = ns % 1000;
  out += static_cast<char>('0' + frac / 100);
  out += static_cast<char>('0' + (frac / 10) % 10);
  out += static_cast<char>('0' + frac % 10);
}

void HashBytes(uint64_t& h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
}

void HashU64(uint64_t& h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }

}  // namespace

std::vector<Span> CanonicalOrder(std::vector<Span> spans) {
  std::sort(spans.begin(), spans.end(), [](const Span& a, const Span& b) {
    if (a.start != b.start) {
      return a.start < b.start;
    }
    if (a.end != b.end) {
      return a.end < b.end;
    }
    if (a.host != b.host) {
      return a.host < b.host;
    }
    if (a.trace_id != b.trace_id) {
      return a.trace_id < b.trace_id;
    }
    return a.span_id < b.span_id;
  });
  return spans;
}

std::string ExportChromeTrace(const std::vector<Span>& spans) {
  const std::vector<Span> ordered = CanonicalOrder(spans);
  std::string out;
  out.reserve(ordered.size() * 160 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const Span& span : ordered) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    out += span.name_view();
    out += "\",\"cat\":\"";
    out += SpanCatName(span.cat);
    out += "\",\"ph\":\"";
    out += span.instant ? 'i' : 'X';
    out += "\",\"ts\":";
    AppendMicros(out, span.start);
    if (span.instant) {
      out += ",\"s\":\"t\"";
    } else {
      out += ",\"dur\":";
      AppendMicros(out, span.end - span.start);
    }
    out += ",\"pid\":";
    out += std::to_string(span.host);
    out += ",\"tid\":";
    out += std::to_string(span.trace_id);
    out += ",\"args\":{\"span\":";
    out += std::to_string(span.span_id);
    out += ",\"parent\":";
    out += std::to_string(span.parent_id);
    if (span.root) {
      out += ",\"root\":1";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

uint64_t TraceContentHash(const std::vector<Span>& spans) {
  const std::vector<Span> ordered = CanonicalOrder(spans);
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (const Span& span : ordered) {
    HashU64(h, span.trace_id);
    HashU64(h, span.span_id);
    HashU64(h, span.parent_id);
    HashU64(h, span.start);
    HashU64(h, span.end);
    HashU64(h, span.host);
    HashU64(h, static_cast<uint64_t>(span.cat));
    HashU64(h, (span.root ? 2u : 0u) | (span.instant ? 1u : 0u));
    const std::string_view name = span.name_view();
    HashBytes(h, name.data(), name.size());
    HashU64(h, name.size());
  }
  HashU64(h, ordered.size());
  return h;
}

}  // namespace slice::obs
