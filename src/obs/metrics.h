// Ensemble-wide metrics plane (observability subsystem).
//
// Every host in the simulated ensemble owns a MetricsRegistry of typed
// instruments: monotonic Counters, Gauges, and Histograms backed by the
// log-scale LatencyStats buckets. Instruments are either pushed from hot
// paths through the null-safe Inc/Set/Observe helpers, or pulled at sample
// time through a provider callback — the Prometheus CounterFunc idiom —
// which lets components expose the accessor counters they already keep
// (requests served, cache hits, disk busy time) with zero hot-path cost.
//
// The registries feed two consumers: the sim-time Scraper (obs/timeseries.h)
// which snapshots every instrument into fixed-interval time-series rings and
// evaluates saturation watchdogs, and the exporters (obs/metrics_export.h)
// which produce Prometheus text exposition and a canonical JSON snapshot.
//
// Design constraints mirror the tracer's:
//  * Near-zero cost when disabled: components hold null instrument pointers
//    and every instrumentation site reduces to one null check — no lookup,
//    no allocation.
//  * Deterministic: registries are keyed by host address and instruments by
//    name in ordered maps, so iteration order — and every export derived
//    from it — is stable run-to-run for a given seed.
#ifndef SLICE_OBS_METRICS_H_
#define SLICE_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace slice::obs {

// Monotonically non-decreasing event count. Either accumulated with Add()
// from instrumentation sites, or backed by a provider polled at sample time
// (the provider's value replaces the accumulated one).
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  void SetProvider(std::function<uint64_t()> provider) { provider_ = std::move(provider); }
  uint64_t Value() const { return provider_ ? provider_() : value_; }
  bool has_provider() const { return static_cast<bool>(provider_); }

 private:
  uint64_t value_ = 0;
  std::function<uint64_t()> provider_;
};

// Point-in-time level (queue depth, backlog nanoseconds, resident entries).
class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  void Add(int64_t delta) { value_ += delta; }
  void SetProvider(std::function<int64_t()> provider) { provider_ = std::move(provider); }
  int64_t Value() const { return provider_ ? provider_() : value_; }

 private:
  int64_t value_ = 0;
  std::function<int64_t()> provider_;
};

// Distribution instrument backed by the fixed-memory log-scale LatencyStats
// histogram (count/sum/min/max exact, ~3% bounded quantile error).
class Histogram {
 public:
  void Observe(SimTime value) { stats_.Record(value); }
  void Merge(const Histogram& other) { stats_.Merge(other.stats_); }
  const LatencyStats& stats() const { return stats_; }

 private:
  LatencyStats stats_;
};

// Null-safe hot-path helpers: components hold plain instrument pointers that
// stay null when metrics are disabled, so the disabled path is one branch.
inline void Inc(Counter* counter, uint64_t delta = 1) {
  if (counter != nullptr) {
    counter->Add(delta);
  }
}
inline void Set(Gauge* gauge, int64_t value) {
  if (gauge != nullptr) {
    gauge->Set(value);
  }
}
inline void Observe(Histogram* histogram, SimTime value) {
  if (histogram != nullptr) {
    histogram->Observe(value);
  }
}

// One host's instruments, keyed by metric name in sorted order. Get* returns
// a stable pointer (instruments are heap-slotted), creating on first use.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Read-side lookups; null when the instrument was never registered.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;

  const std::map<std::string, std::unique_ptr<Counter>, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

struct MetricsParams {
  bool enabled = true;
  // Scraper cadence: samples land at exact multiples of this interval.
  SimTime scrape_interval = FromMillis(100);
  // Bounded samples kept per (host, metric) time series; oldest dropped.
  size_t series_capacity = 4096;
};

// --- tenant plane ---------------------------------------------------------

// Coarse op classes for per-tenant accounting: every NFS procedure maps to
// one of these, so a tenant's instruments stay a fixed-size array the µproxy
// indexes allocation-free on the fast path.
enum class TenantOpClass : uint8_t { kRead = 0, kWrite = 1, kName = 2, kAttr = 3, kOther = 4 };
inline constexpr size_t kTenantOpClassCount = 5;
const char* TenantOpClassName(TenantOpClass oc);

// One tail observation: a request slow enough to rank among the tenant's
// worst, carrying the trace id that resolves it in the chrome export and the
// flight recorder (0 when tracing is off).
struct TenantExemplar {
  SimTime at = 0;       // completion time
  SimTime latency = 0;  // end-to-end latency as observed at the µproxy
  uint64_t trace_id = 0;
  uint8_t opclass = 0;  // TenantOpClass
};

// Fixed-capacity worst-latency ring: every observation is offered; only the
// kCapacity slowest survive. Replacement is deterministic (the strictly
// smallest resident latency goes first; first index wins ties), so two
// same-seed runs keep identical exemplar sets.
class ExemplarRing {
 public:
  static constexpr size_t kCapacity = 4;

  void Observe(SimTime at, SimTime latency, uint64_t trace_id, TenantOpClass oc) {
    size_t victim;
    if (size_ < kCapacity) {
      victim = size_++;
    } else {
      victim = kCapacity;
      SimTime min_latency = latency;
      for (size_t i = 0; i < kCapacity; ++i) {
        if (slots_[i].latency < min_latency) {
          min_latency = slots_[i].latency;
          victim = i;
        }
      }
      if (victim == kCapacity) {
        return;  // not slower than any resident exemplar
      }
    }
    slots_[victim] = TenantExemplar{at, latency, trace_id, static_cast<uint8_t>(oc)};
  }

  size_t size() const { return size_; }
  const TenantExemplar& at(size_t i) const { return slots_[i]; }

  // The slowest resident observation (zeroed exemplar when empty).
  TenantExemplar Worst() const {
    TenantExemplar worst;
    for (size_t i = 0; i < size_; ++i) {
      if (slots_[i].latency > worst.latency) {
        worst = slots_[i];
      }
    }
    return worst;
  }

 private:
  TenantExemplar slots_[kCapacity] = {};
  size_t size_ = 0;
};

// Per-tenant instruments: per-opclass ops/bytes/latency plus the SLO inputs
// (errors, "bad" ops = errors + over-threshold latencies) and the tail
// exemplar ring. Preallocated once by Metrics::ConfigureTenants so hot paths
// never create instruments; Account() is the single zero-allocation
// instrumentation point.
struct TenantInstruments {
  uint32_t tenant = 0;
  // Latency above this counts against the tenant's error budget.
  SimTime slow_threshold = 0;
  Counter ops[kTenantOpClassCount];
  Counter bytes[kTenantOpClassCount];
  Histogram latency[kTenantOpClassCount];
  Counter errors;
  Counter bad_ops;

  ExemplarRing exemplars;

  void Account(TenantOpClass oc, uint32_t nbytes, SimTime lat, uint64_t trace_id, SimTime now,
               bool error) {
    const auto i = static_cast<size_t>(oc);
    ops[i].Add();
    if (nbytes != 0) {
      bytes[i].Add(nbytes);
    }
    latency[i].Observe(lat);
    if (error) {
      errors.Add();
    }
    if (error || (slow_threshold != 0 && lat > slow_threshold)) {
      bad_ops.Add();
    }
    exemplars.Observe(now, lat, trace_id, oc);
  }

  uint64_t TotalOps() const {
    uint64_t total = 0;
    for (const Counter& c : ops) {
      total += c.Value();
    }
    return total;
  }
};

// The per-ensemble metrics hub: one registry per host address, in address
// order. Components receive a Metrics* via set_metrics() and register their
// instruments/providers against their own host's registry.
class Metrics {
 public:
  explicit Metrics(MetricsParams params = {}) : params_(params) {}

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  bool enabled() const { return params_.enabled; }
  const MetricsParams& params() const { return params_; }

  MetricsRegistry& Registry(uint32_t host) { return registries_[host]; }
  const std::map<uint32_t, MetricsRegistry>& registries() const { return registries_; }

  // Tenant plane: preallocate instruments for tenants 1..count (tenant 0 is
  // untenanted/system traffic and is never accounted). Call once at ensemble
  // construction, before traffic starts; the arrays never move afterwards so
  // hot paths may cache the TenantData() pointer.
  void ConfigureTenants(uint32_t count, SimTime slow_threshold) {
    tenants_.assign(count, TenantInstruments{});
    for (uint32_t j = 0; j < count; ++j) {
      tenants_[j].tenant = j + 1;
      tenants_[j].slow_threshold = slow_threshold;
    }
  }
  uint32_t num_tenants() const { return static_cast<uint32_t>(tenants_.size()); }
  // O(1) lookup; null for tenant 0 or out-of-range tags.
  TenantInstruments* Tenant(uint32_t tenant) {
    return (tenant >= 1 && tenant <= tenants_.size()) ? &tenants_[tenant - 1] : nullptr;
  }
  // Raw base pointer for the µproxy's allocation-free fast path (index j =
  // tenant j+1); pair with num_tenants() for the bound.
  TenantInstruments* TenantData() { return tenants_.data(); }
  const std::vector<TenantInstruments>& tenants() const { return tenants_; }

 private:
  MetricsParams params_;
  std::map<uint32_t, MetricsRegistry> registries_;  // ordered => deterministic
  std::vector<TenantInstruments> tenants_;          // index j => tenant j+1
};

// --- saturation watchdogs -------------------------------------------------

// How a rule reads its metric each scrape: the sampled value itself, or the
// per-window delta against the previous scrape (for monotonic counters —
// e.g. busy-nanoseconds per window is a utilization measure).
enum class WatchdogMode : uint8_t { kValue = 0, kDelta = 1 };

// Threshold rule with hysteresis, evaluated per host each scrape. Raises
// after `raise_streak` consecutive samples >= raise_threshold; clears after
// `clear_streak` consecutive samples <= clear_threshold.
struct WatchdogRule {
  std::string name;    // alert name, e.g. "disk_backlog"
  std::string metric;  // instrument watched (counter or gauge)
  WatchdogMode mode = WatchdogMode::kValue;
  int64_t raise_threshold = 0;
  int64_t clear_threshold = 0;
  uint32_t raise_streak = 1;
  uint32_t clear_streak = 1;
};

// Structured alert record emitted on every raise/clear edge, consumable by
// tests and serialized into the JSON snapshot.
struct Alert {
  SimTime at = 0;
  std::string rule;
  uint32_t host = 0;
  int64_t value = 0;   // the sample that crossed the edge
  bool raise = true;   // false = cleared
};

// The stock rule set the ensemble installs: disk queue-depth watermark, NIC
// transmit >90% utilization per window, heartbeat-miss streak, declared-dead
// membership, and server CPU backlog.
std::vector<WatchdogRule> DefaultWatchdogRules(SimTime scrape_interval);

}  // namespace slice::obs

#endif  // SLICE_OBS_METRICS_H_
