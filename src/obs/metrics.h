// Ensemble-wide metrics plane (observability subsystem).
//
// Every host in the simulated ensemble owns a MetricsRegistry of typed
// instruments: monotonic Counters, Gauges, and Histograms backed by the
// log-scale LatencyStats buckets. Instruments are either pushed from hot
// paths through the null-safe Inc/Set/Observe helpers, or pulled at sample
// time through a provider callback — the Prometheus CounterFunc idiom —
// which lets components expose the accessor counters they already keep
// (requests served, cache hits, disk busy time) with zero hot-path cost.
//
// The registries feed two consumers: the sim-time Scraper (obs/timeseries.h)
// which snapshots every instrument into fixed-interval time-series rings and
// evaluates saturation watchdogs, and the exporters (obs/metrics_export.h)
// which produce Prometheus text exposition and a canonical JSON snapshot.
//
// Design constraints mirror the tracer's:
//  * Near-zero cost when disabled: components hold null instrument pointers
//    and every instrumentation site reduces to one null check — no lookup,
//    no allocation.
//  * Deterministic: registries are keyed by host address and instruments by
//    name in ordered maps, so iteration order — and every export derived
//    from it — is stable run-to-run for a given seed.
#ifndef SLICE_OBS_METRICS_H_
#define SLICE_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/sim/stats.h"

namespace slice::obs {

// Monotonically non-decreasing event count. Either accumulated with Add()
// from instrumentation sites, or backed by a provider polled at sample time
// (the provider's value replaces the accumulated one).
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  void SetProvider(std::function<uint64_t()> provider) { provider_ = std::move(provider); }
  uint64_t Value() const { return provider_ ? provider_() : value_; }
  bool has_provider() const { return static_cast<bool>(provider_); }

 private:
  uint64_t value_ = 0;
  std::function<uint64_t()> provider_;
};

// Point-in-time level (queue depth, backlog nanoseconds, resident entries).
class Gauge {
 public:
  void Set(int64_t value) { value_ = value; }
  void Add(int64_t delta) { value_ += delta; }
  void SetProvider(std::function<int64_t()> provider) { provider_ = std::move(provider); }
  int64_t Value() const { return provider_ ? provider_() : value_; }

 private:
  int64_t value_ = 0;
  std::function<int64_t()> provider_;
};

// Distribution instrument backed by the fixed-memory log-scale LatencyStats
// histogram (count/sum/min/max exact, ~3% bounded quantile error).
class Histogram {
 public:
  void Observe(SimTime value) { stats_.Record(value); }
  void Merge(const Histogram& other) { stats_.Merge(other.stats_); }
  const LatencyStats& stats() const { return stats_; }

 private:
  LatencyStats stats_;
};

// Null-safe hot-path helpers: components hold plain instrument pointers that
// stay null when metrics are disabled, so the disabled path is one branch.
inline void Inc(Counter* counter, uint64_t delta = 1) {
  if (counter != nullptr) {
    counter->Add(delta);
  }
}
inline void Set(Gauge* gauge, int64_t value) {
  if (gauge != nullptr) {
    gauge->Set(value);
  }
}
inline void Observe(Histogram* histogram, SimTime value) {
  if (histogram != nullptr) {
    histogram->Observe(value);
  }
}

// One host's instruments, keyed by metric name in sorted order. Get* returns
// a stable pointer (instruments are heap-slotted), creating on first use.
class MetricsRegistry {
 public:
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // Read-side lookups; null when the instrument was never registered.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;

  const std::map<std::string, std::unique_ptr<Counter>, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>, std::less<>>& gauges() const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>, std::less<>>& histograms() const {
    return histograms_;
  }

 private:
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

struct MetricsParams {
  bool enabled = true;
  // Scraper cadence: samples land at exact multiples of this interval.
  SimTime scrape_interval = FromMillis(100);
  // Bounded samples kept per (host, metric) time series; oldest dropped.
  size_t series_capacity = 4096;
};

// The per-ensemble metrics hub: one registry per host address, in address
// order. Components receive a Metrics* via set_metrics() and register their
// instruments/providers against their own host's registry.
class Metrics {
 public:
  explicit Metrics(MetricsParams params = {}) : params_(params) {}

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  bool enabled() const { return params_.enabled; }
  const MetricsParams& params() const { return params_; }

  MetricsRegistry& Registry(uint32_t host) { return registries_[host]; }
  const std::map<uint32_t, MetricsRegistry>& registries() const { return registries_; }

 private:
  MetricsParams params_;
  std::map<uint32_t, MetricsRegistry> registries_;  // ordered => deterministic
};

// --- saturation watchdogs -------------------------------------------------

// How a rule reads its metric each scrape: the sampled value itself, or the
// per-window delta against the previous scrape (for monotonic counters —
// e.g. busy-nanoseconds per window is a utilization measure).
enum class WatchdogMode : uint8_t { kValue = 0, kDelta = 1 };

// Threshold rule with hysteresis, evaluated per host each scrape. Raises
// after `raise_streak` consecutive samples >= raise_threshold; clears after
// `clear_streak` consecutive samples <= clear_threshold.
struct WatchdogRule {
  std::string name;    // alert name, e.g. "disk_backlog"
  std::string metric;  // instrument watched (counter or gauge)
  WatchdogMode mode = WatchdogMode::kValue;
  int64_t raise_threshold = 0;
  int64_t clear_threshold = 0;
  uint32_t raise_streak = 1;
  uint32_t clear_streak = 1;
};

// Structured alert record emitted on every raise/clear edge, consumable by
// tests and serialized into the JSON snapshot.
struct Alert {
  SimTime at = 0;
  std::string rule;
  uint32_t host = 0;
  int64_t value = 0;   // the sample that crossed the edge
  bool raise = true;   // false = cleared
};

// The stock rule set the ensemble installs: disk queue-depth watermark, NIC
// transmit >90% utilization per window, heartbeat-miss streak, declared-dead
// membership, and server CPU backlog.
std::vector<WatchdogRule> DefaultWatchdogRules(SimTime scrape_interval);

}  // namespace slice::obs

#endif  // SLICE_OBS_METRICS_H_
