#include "src/obs/eventlog.h"

#include <algorithm>

namespace slice::obs {

const char* EventSevName(EventSev sev) {
  switch (sev) {
    case EventSev::kDebug:
      return "debug";
    case EventSev::kInfo:
      return "info";
    case EventSev::kWarn:
      return "warn";
    case EventSev::kError:
      return "error";
  }
  return "?";
}

const char* EventCatName(EventCat cat) {
  switch (cat) {
    case EventCat::kRoute:
      return "route";
    case EventCat::kCache:
      return "cache";
    case EventCat::kMgmt:
      return "mgmt";
    case EventCat::kFailover:
      return "failover";
    case EventCat::kRpc:
      return "rpc";
    case EventCat::kNet:
      return "net";
    case EventCat::kAlert:
      return "alert";
    case EventCat::kChaos:
      return "chaos";
  }
  return "?";
}

const char* EventCodeName(EventCode code) {
  switch (code) {
#define SLICE_EVENT_CODE_NAME(sym, value, name) \
  case EventCode::sym:                          \
    return name;
    SLICE_EVENT_CODES(SLICE_EVENT_CODE_NAME)
#undef SLICE_EVENT_CODE_NAME
  }
  return "?";
}

std::string EventCodeTableJson() {
  std::string out = "{\"event_codes\":[";
  bool first = true;
#define SLICE_EVENT_CODE_JSON(sym, value, name)              \
  if (!first) {                                              \
    out += ",";                                              \
  }                                                          \
  first = false;                                             \
  out += "{\"code\":" + std::to_string(value) + ",\"name\":\"" + name + "\"}";
  SLICE_EVENT_CODES(SLICE_EVENT_CODE_JSON)
#undef SLICE_EVENT_CODE_JSON
  out += "]}\n";
  return out;
}

void EventLog::Record(uint32_t host, SimTime at, EventSev sev, EventCat cat, EventCode code,
                      uint64_t trace_id, const char* detail, std::initializer_list<Kv> args) {
  if (!params_.enabled || sev < params_.min_severity) {
    return;
  }
  Event event;
  event.at = at;
  event.seq = next_seq_++;
  event.trace_id = trace_id;
  event.host = host;
  event.sev = sev;
  event.cat = cat;
  event.code = code;
  event.set_detail(detail);
  for (const Kv& kv : args) {
    if (event.nargs == kEventMaxArgs) {
      break;
    }
    EventArg& arg = event.args[event.nargs++];
    std::strncpy(arg.key, kv.key, kEventArgKeyCap - 1);
    arg.key[kEventArgKeyCap - 1] = '\0';
    arg.value = kv.value;
  }
  auto it = rings_.find(host);
  if (it == rings_.end()) {
    it = rings_.emplace(host, EventRing(params_.ring_capacity)).first;
  }
  it->second.Push(event);
  ++recorded_;
}

std::vector<Event> EventLog::Collect() const {
  std::vector<Event> out;
  size_t total = 0;
  for (const auto& [host, ring] : rings_) {
    total += ring.size();
  }
  out.reserve(total);
  for (const auto& [host, ring] : rings_) {
    ring.CopyTo(out);
  }
  // Per-host runs are already seq-ordered (rings evict oldest-first), so a
  // stable sort on (at, seq) yields the global causal order.
  std::stable_sort(out.begin(), out.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.seq < b.seq;
  });
  return out;
}

uint64_t EventLog::total_evicted() const {
  uint64_t total = 0;
  for (const auto& [host, ring] : rings_) {
    total += ring.evicted();
  }
  return total;
}

}  // namespace slice::obs
