// End-to-end request tracing (observability subsystem).
//
// Every client-originated NFS request is assigned a trace id at the µproxy
// that intercepts it; the (trace id, root span id) pair rides along with the
// request across every hop — network links, RPC retransmissions, server
// dispatch, disk I/O, µproxy fan-outs — as a checksum-neutral packet trailer
// (see Packet::AttachTrace). Each host records completed spans into a
// bounded, preallocated ring buffer; the merged rings reduce to a
// chrome://tracing JSON view (obs/export.h) and a critical-path breakdown
// (obs/critical_path.h).
//
// Design constraints:
//  * Near-zero cost when disabled: every instrumentation site is guarded by
//    a single null/zero check, and the disabled paths allocate nothing.
//  * Deterministic: ids come from plain counters, rings are keyed by host
//    address in an ordered map, and no wall-clock or address-dependent state
//    leaks in — so the same seed yields a byte-identical trace.
#ifndef SLICE_OBS_TRACE_H_
#define SLICE_OBS_TRACE_H_

#include <cstdint>
#include <cstring>
#include <map>
#include <string_view>
#include <vector>

#include "src/sim/event_queue.h"

namespace slice::obs {

// Span context propagated with a request. trace_id == 0 means "untraced".
struct TraceContext {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;  // the span this hop is causally under (root span)

  bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;
};

// Latency category a span's wall time is attributed to by the critical-path
// analyzer. Order here is storage order, not priority; see SpanCatPriority.
enum class SpanCat : uint8_t {
  kWire = 0,     // NIC serialization + switch latency
  kQueue = 1,    // waiting for a busy resource (NIC, server CPU)
  kCpu = 2,      // µproxy or server CPU service
  kDisk = 3,     // disk positioning + transfer (queue wait included)
  kService = 4,  // server-side completion not otherwise classified
  kOther = 5,    // markers / root spans / unattributed time
};
constexpr size_t kNumSpanCats = 6;

const char* SpanCatName(SpanCat cat);
// Higher wins when intervals overlap: disk > cpu > queue > wire > service.
int SpanCatPriority(SpanCat cat);

// Fixed-capacity name so Span stays trivially copyable and recording a span
// never allocates (ring slots are preallocated up front).
constexpr size_t kSpanNameCap = 24;

struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  SimTime start = 0;
  SimTime end = 0;
  uint32_t host = 0;  // NetAddr of the recording host
  SpanCat cat = SpanCat::kOther;
  bool root = false;     // defines the end-to-end window of its trace
  bool instant = false;  // zero-duration marker (retransmit, drop, route)
  char name[kSpanNameCap] = {};

  void set_name(const char* n) {
    std::strncpy(name, n, kSpanNameCap - 1);
    name[kSpanNameCap - 1] = '\0';
  }
  std::string_view name_view() const { return std::string_view(name); }
};

// Bounded per-host span storage: oldest entries are overwritten on overflow
// (soft state, like everything else the observer keeps).
class SpanRing {
 public:
  explicit SpanRing(size_t capacity) : slots_(capacity > 0 ? capacity : 1) {}

  void Push(const Span& span) {
    if (size_ == slots_.size()) {
      slots_[head_] = span;  // overwrite the oldest slot
      head_ = (head_ + 1) % slots_.size();
      ++evicted_;
    } else {
      slots_[(head_ + size_) % slots_.size()] = span;
      ++size_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }
  uint64_t evicted() const { return evicted_; }

  // Appends the ring's spans, oldest first, to `out`.
  void CopyTo(std::vector<Span>& out) const {
    for (size_t i = 0; i < size_; ++i) {
      out.push_back(slots_[(head_ + i) % slots_.size()]);
    }
  }

 private:
  std::vector<Span> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t evicted_ = 0;
};

struct TracerParams {
  bool enabled = true;
  size_t ring_capacity = 1 << 16;  // spans per host
};

class Tracer {
 public:
  explicit Tracer(TracerParams params = {}) : params_(params) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  bool enabled() const { return params_.enabled; }

  // Deterministic id generators (ids are minted in event-execution order,
  // which the simulator keeps stable for a given seed).
  uint64_t NewTraceId() { return params_.enabled ? ++last_trace_id_ : 0; }
  uint64_t NewSpanId() { return params_.enabled ? ++last_span_id_ : 0; }

  // Records a completed span on `host`'s ring. No-op (and allocation-free)
  // when the tracer is disabled or `ctx` is untraced. Returns the span id.
  uint64_t RecordSpan(uint32_t host, const TraceContext& ctx, SpanCat cat, const char* name,
                      SimTime start, SimTime end, bool root = false);

  // Zero-duration marker (retransmission, drop, routing decision...).
  uint64_t RecordInstant(uint32_t host, const TraceContext& ctx, const char* name, SimTime at);

  // Implicit context: the request being serviced "right now". Components
  // that issue nested work synchronously (server handlers, µproxy fan-outs)
  // read this to inherit the caller's trace.
  const TraceContext& current() const { return current_; }
  void SetCurrent(const TraceContext& ctx) { current_ = ctx; }

  // Merged view of every ring: hosts in address order, oldest-first within
  // each host.
  std::vector<Span> Collect() const;

  uint64_t total_recorded() const { return recorded_; }
  uint64_t total_evicted() const;
  size_t num_rings() const { return rings_.size(); }
  const std::map<uint32_t, SpanRing>& rings() const { return rings_; }

  void Clear() {
    rings_.clear();
    recorded_ = 0;
  }

 private:
  TracerParams params_;
  uint64_t last_trace_id_ = 0;
  uint64_t last_span_id_ = 0;
  uint64_t recorded_ = 0;
  TraceContext current_;
  std::map<uint32_t, SpanRing> rings_;  // ordered => deterministic export
};

// RAII guard that installs `ctx` as the tracer's current context and
// restores the previous one on exit. Null-tracer safe (no-op).
class ScopedContext {
 public:
  ScopedContext(Tracer* tracer, const TraceContext& ctx) : tracer_(tracer) {
    if (tracer_ != nullptr) {
      prev_ = tracer_->current();
      tracer_->SetCurrent(ctx);
    }
  }
  ~ScopedContext() {
    if (tracer_ != nullptr) {
      tracer_->SetCurrent(prev_);
    }
  }

  ScopedContext(const ScopedContext&) = delete;
  ScopedContext& operator=(const ScopedContext&) = delete;

 private:
  Tracer* tracer_;
  TraceContext prev_;
};

}  // namespace slice::obs

#endif  // SLICE_OBS_TRACE_H_
