// Metrics exporters: Prometheus-style text exposition for eyeballs and
// scrape-shaped tooling, and a canonical JSON snapshot whose byte content is
// deterministic for a given seed — sorted host/metric iteration, integer
// values only (times in nanoseconds), no locale- or platform-dependent
// float formatting anywhere. MetricsContentHash over the JSON is the
// metrics-plane analogue of the trace content hash: any behaviour change
// (extra request, different cache mix, late failover) shows up as a diff.
#ifndef SLICE_OBS_METRICS_EXPORT_H_
#define SLICE_OBS_METRICS_EXPORT_H_

#include <string>
#include <string_view>

#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"

namespace slice::obs {

// Dotted-quad rendering of a host address ("10.0.3.0") — stable labels for
// both exposition formats.
std::string FormatHostAddr(uint32_t addr);

// Locale-independent fixed-point decimal append (integer math only).
// Shared by the bench JSON baseline writer.
void AppendFixed(std::string& out, double value, int decimals);

// Prometheus text exposition: one family per metric name (slice_ prefix),
// one sample per host, histograms as summaries with p50/p95/p99 quantiles.
std::string ExportPrometheus(const Metrics& metrics);

// Canonical JSON snapshot: every instrument's current value per host, plus
// (when a scraper is supplied) the time-series rings and alert log.
// Stable key order; byte-identical across same-seed runs.
//
// When tenants are configured (Metrics::ConfigureTenants) the snapshot
// grows strictly-appended opt-in sections — "tenants" (per-tenant ×
// per-opclass instruments and tail exemplars), "tenant_series" (scrape
// rings) and "slo" (objective + burn alert stream) — so untenanted runs
// export byte-identical JSON to older builds and every pinned golden holds.
std::string ExportMetricsJson(const Metrics& metrics, const Scraper* scraper = nullptr,
                              const SloEngine* slo = nullptr);

// FNV-1a over the canonical JSON bytes.
uint64_t MetricsContentHash(std::string_view canonical_json);

}  // namespace slice::obs

#endif  // SLICE_OBS_METRICS_EXPORT_H_
