// Per-tenant SLO engine: multi-window burn-rate alerting over the tenant
// instruments (obs/metrics.h).
//
// Each tenant has one latency/availability objective, expressed as an error
// budget: at most `error_budget_ppm` of requests may be "bad" (an NFS error,
// or end-to-end latency above the tenant's slow threshold). The engine rides
// the Scraper's scrape hook, so burn rates are a pure function of the
// window-aligned scrape-time snapshots — same seed, same alert stream.
//
// Burn rate is the classic SRE multi-window form: how fast the budget is
// being consumed relative to the allowed rate, evaluated over a fast window
// (catches acute incidents quickly) and a slow window (filters blips). An
// alert raises only when BOTH windows burn above threshold for
// `raise_streak` consecutive scrapes, and clears when the fast window calms
// for `clear_streak` scrapes — the same raise/clear hysteresis discipline as
// the saturation watchdogs.
//
// All arithmetic is integer (parts-per-million budgets, milli-burn rates):
// no floating point touches the alert stream or the JSON export, so flight
// hashes stay portable across libm implementations.
#ifndef SLICE_OBS_SLO_H_
#define SLICE_OBS_SLO_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/obs/eventlog.h"
#include "src/obs/metrics.h"
#include "src/sim/event_queue.h"

namespace slice::obs {

// Pseudo host address for SLO events (the chaos controller uses
// 0x0a0005fe; the SLO engine sits next to it in the 10.0.5.x service range).
inline constexpr uint32_t kSloHost = 0x0a0005fd;

struct SloParams {
  bool enabled = false;
  // Error budget: max "bad" requests per million (1000 ppm = 99.9%).
  uint32_t error_budget_ppm = 1000;
  // Latency objective: requests slower than this are budget-consuming.
  // Stamped into TenantInstruments::slow_threshold by the ensemble.
  SimTime latency_threshold = FromMillis(50);
  // Window lengths in scrapes (at the default 100ms scrape interval:
  // 500ms fast / 6s slow).
  uint32_t fast_windows = 5;
  uint32_t slow_windows = 60;
  // Raise when both windows burn at >= this rate, in milli-burns
  // (1000 = consuming budget exactly at the allowed rate).
  int64_t burn_threshold_milli = 1000;
  uint32_t raise_streak = 2;
  uint32_t clear_streak = 2;
  // Windows with fewer ops than this are treated as burning nothing
  // (avoids 1-error-out-of-2-ops false alarms).
  uint64_t min_ops = 8;
};

// One raise/clear edge of a tenant's burn alert. `trace_id` is the tenant's
// worst tail exemplar at edge time: the concrete request that explains the
// violation, resolvable in the chrome trace export and the flight recorder.
struct SloAlert {
  SimTime at = 0;
  uint32_t tenant = 0;
  bool raise = true;
  int64_t fast_milli = 0;  // fast-window burn rate at the edge
  int64_t slow_milli = 0;  // slow-window burn rate at the edge
  uint64_t trace_id = 0;
};

class SloEngine {
 public:
  SloEngine(Metrics& metrics, SloParams params) : metrics_(metrics), params_(params) {}

  SloEngine(const SloEngine&) = delete;
  SloEngine& operator=(const SloEngine&) = delete;

  void set_eventlog(EventLog* log) { eventlog_ = log; }
  const SloParams& params() const { return params_; }

  // Scrape-hook entry point: snapshot every tenant's cumulative (ops, bad)
  // counters, evaluate both burn windows, emit kSloBurn/kSloOk edges.
  void OnScrape(SimTime now);

  // Edges in emission order (scrape time, then tenant order).
  const std::vector<SloAlert>& alerts() const { return alerts_; }
  // Tenants currently burning (raised and not yet cleared).
  size_t active_burns() const;
  bool burning(uint32_t tenant) const;

  // Latest burn rates for a tenant (0 before the first scrape).
  int64_t fast_burn_milli(uint32_t tenant) const;
  int64_t slow_burn_milli(uint32_t tenant) const;

 private:
  struct Snap {
    uint64_t ops = 0;
    uint64_t bad = 0;
  };
  struct TenantState {
    std::vector<Snap> ring;  // cumulative snapshots, capacity slow_windows+1
    size_t head = 0;
    size_t size = 0;
    uint32_t above = 0;
    uint32_t below = 0;
    bool raised = false;
    int64_t fast_milli = 0;
    int64_t slow_milli = 0;
  };

  // Burn rate over the last `windows` scrapes, in milli-burns; partial
  // windows use the oldest snapshot available.
  int64_t BurnMilli(const TenantState& st, uint32_t windows) const;
  void EmitEdge(SimTime now, uint32_t tenant, const TenantState& st, uint64_t trace_id);

  Metrics& metrics_;
  SloParams params_;
  EventLog* eventlog_ = nullptr;
  std::map<uint32_t, TenantState> state_;  // tenant -> window state
  std::vector<SloAlert> alerts_;
};

}  // namespace slice::obs

#endif  // SLICE_OBS_SLO_H_
