#include "src/obs/profiler.h"

#include <algorithm>
#include <vector>

#include "src/obs/metrics_export.h"

namespace slice::obs {

// Sink for the calibration work chain so the compiler cannot elide it.
volatile uint64_t g_calibration_sink = 0;

const char* ProfScopeName(ProfScope scope) {
  switch (scope) {
#define SLICE_PROF_NAME(sym, name) \
  case ProfScope::sym:             \
    return name;
    SLICE_PROFILE_SCOPES(SLICE_PROF_NAME)
#undef SLICE_PROF_NAME
  }
  return "?";
}

const char* LedgerCatName(LedgerCat cat) {
  switch (cat) {
    case LedgerCat::kCpu:
      return "cpu";
    case LedgerCat::kQueue:
      return "queue";
    case LedgerCat::kDisk:
      return "disk";
    case LedgerCat::kWire:
      return "wire";
  }
  return "?";
}

Profiler::Profiler(const ProfilerParams& params) {
  (void)params;
  nodes_[0] = Node{};  // synthetic root
  Calibrate();
}

void Profiler::Calibrate() {
  // ns per tick: spin the cycle counter against steady_clock for ~200us.
  // Integer-scaled by 2^20 so hot-path conversion is a multiply and shift.
  using Clock = std::chrono::steady_clock;
  const auto wall_start = Clock::now();
  const uint64_t tick_start = Ticks();
  uint64_t tick_end = tick_start;
  uint64_t wall_ns = 0;
  do {
    tick_end = Ticks();
    wall_ns = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - wall_start).count());
  } while (wall_ns < 200 * 1000);
  const uint64_t ticks = tick_end > tick_start ? tick_end - tick_start : 1;
  ns_per_tick_shifted_ = (wall_ns << 20) / ticks;
  if (ns_per_tick_shifted_ == 0) {
    ns_per_tick_shifted_ = 1;
  }

  // Per-pair measurement overhead, two views: what a pair over-reports for
  // itself (ovh_self) and what an enclosing scope sees for the full
  // Begin+End sequence (ovh_nested). Measured IN CONTEXT: back-to-back
  // empty pairs let consecutive cycle-counter reads pipeline and undercount
  // what a pair costs when it brackets real work, so run a short xorshift
  // dependency chain bare and bracketed — the deltas are the marginal
  // costs. The engine measures itself (constants still zero), then the
  // scratch tree is discarded.
  constexpr int kReps = 8192;
  ovh_self_ticks_ = 0;
  ovh_nested_ticks_ = 0;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  const auto chain = [&x]() {
    for (int k = 0; k < 8; ++k) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
    }
  };
  const uint64_t bare_start = Ticks();
  for (int i = 0; i < kReps; ++i) {
    chain();
  }
  const uint64_t bare_ticks = Ticks() - bare_start;
  const uint64_t paired_start = Ticks();
  for (int i = 0; i < kReps; ++i) {
    BeginScope(ProfScope::kSimDispatch);
    chain();
    EndScope();
  }
  const uint64_t paired_ticks = Ticks() - paired_start;
  g_calibration_sink = x;  // the chain result must stay observable
  const uint64_t bare_per = bare_ticks / kReps;
  const uint64_t recorded_per = nodes_[1].ticks / kReps;  // raw spans: constants were 0
  ovh_self_ticks_ = recorded_per > bare_per ? recorded_per - bare_per : 0;
  const uint64_t paired_per = paired_ticks / kReps;
  ovh_nested_ticks_ = paired_per > bare_per ? paired_per - bare_per : 0;
  if (ovh_nested_ticks_ < ovh_self_ticks_) {
    ovh_nested_ticks_ = ovh_self_ticks_;
  }
  ResetWall();
}

uint64_t* Profiler::LedgerFor(uint32_t host) {
  return ledger_[host].data();  // value-initialized to zeros on first use
}

uint64_t Profiler::ns_from_ticks(uint64_t ticks) const {
  // Split to avoid overflow for large accumulations.
  const uint64_t whole = ticks >> 20;
  const uint64_t frac = ticks & ((1ull << 20) - 1);
  return whole * ns_per_tick_shifted_ + ((frac * ns_per_tick_shifted_) >> 20);
}

uint64_t Profiler::ScopeInclusiveNs(ProfScope scope) const {
  uint64_t ticks = 0;
  for (uint32_t i = 1; i < node_count_; ++i) {
    if (nodes_[i].scope == scope) {
      ticks += nodes_[i].ticks;
    }
  }
  return ns_from_ticks(ticks);
}

uint64_t Profiler::ScopeExclusiveNs(ProfScope scope) const {
  uint64_t ticks = 0;
  for (uint32_t i = 1; i < node_count_; ++i) {
    if (nodes_[i].scope == scope) {
      ticks += nodes_[i].ticks - nodes_[i].child_ticks;
    }
  }
  return ns_from_ticks(ticks);
}

uint64_t Profiler::ScopeCount(ProfScope scope) const {
  uint64_t count = 0;
  for (uint32_t i = 1; i < node_count_; ++i) {
    if (nodes_[i].scope == scope) {
      count += nodes_[i].count;
    }
  }
  return count;
}

void Profiler::ResetWall() {
  nodes_[0] = Node{};
  node_count_ = 1;
  depth_ = 0;
  pops_ = 0;
  dropped_scopes_ = 0;
}

std::string Profiler::ExportProfileSimJson() const {
  // Union of charged hosts and busy-reference hosts, ordered by address: a
  // host the provider knows about but the ledger never charged must still
  // show up (with coverage 0), or the coverage bar could be gamed.
  std::map<uint32_t, uint64_t> busy;
  if (busy_provider_) {
    busy_provider_(&busy);
  }
  std::map<uint32_t, std::array<uint64_t, kNumLedgerCats>> hosts;
  for (const auto& [host, cats] : ledger_) {
    hosts[host] = cats;
  }
  for (const auto& [host, ns] : busy) {
    (void)ns;
    hosts.emplace(host, std::array<uint64_t, kNumLedgerCats>{});
  }

  std::string out;
  out.reserve(1 << 12);
  std::array<uint64_t, kNumLedgerCats> total{};
  out += "{\"hosts\":[";
  bool first = true;
  for (const auto& [host, cats] : hosts) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"host\":\"";
    out += FormatHostAddr(host);
    out += '"';
    for (size_t c = 0; c < kNumLedgerCats; ++c) {
      out += ",\"";
      out += LedgerCatName(static_cast<LedgerCat>(c));
      out += "\":";
      out += std::to_string(cats[c]);
      total[c] += cats[c];
    }
    // Attributed busy time excludes queueing (waiting is not busy); the
    // reference is the host's independent BusyResource accounting.
    const uint64_t attributed = cats[static_cast<size_t>(LedgerCat::kCpu)] +
                                cats[static_cast<size_t>(LedgerCat::kDisk)] +
                                cats[static_cast<size_t>(LedgerCat::kWire)];
    const auto busy_it = busy.find(host);
    const uint64_t busy_ns = busy_it != busy.end() ? busy_it->second : 0;
    const uint64_t coverage_bp =
        busy_ns > 0 ? (attributed * 10000) / busy_ns : (attributed > 0 ? 10000 : 0);
    out += ",\"attributed\":";
    out += std::to_string(attributed);
    out += ",\"busy\":";
    out += std::to_string(busy_ns);
    out += ",\"coverage_bp\":";
    out += std::to_string(coverage_bp);
    out += '}';
  }
  out += "],\"total\":{";
  for (size_t c = 0; c < kNumLedgerCats; ++c) {
    if (c > 0) {
      out += ',';
    }
    out += '"';
    out += LedgerCatName(static_cast<LedgerCat>(c));
    out += "\":";
    out += std::to_string(total[c]);
  }
  out += "}}";
  return out;
}

namespace {

// Depth-first path walk collecting "a;b;c" collapsed stacks with exclusive
// ns. Sorted by path afterwards so the rendering order never depends on
// first-call order.
struct StackLine {
  std::string path;
  uint64_t count;
  uint64_t excl_ns;
};

}  // namespace

void Profiler::AppendWallJson(std::string& out) const {
  out += "{\"dropped\":";
  out += std::to_string(dropped_scopes_);
  out += ",\"scopes\":[";
  bool first = true;
  for (size_t s = 0; s < kNumProfScopes; ++s) {
    const ProfScope scope = static_cast<ProfScope>(s);
    const uint64_t count = ScopeCount(scope);
    if (count == 0) {
      continue;
    }
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    out += ProfScopeName(scope);
    out += "\",\"count\":";
    out += std::to_string(count);
    out += ",\"incl_ns\":";
    out += std::to_string(ScopeInclusiveNs(scope));
    out += ",\"excl_ns\":";
    out += std::to_string(ScopeExclusiveNs(scope));
    out += '}';
  }
  out += "],\"stacks\":[";
  std::vector<StackLine> lines;
  for (uint32_t i = 1; i < node_count_; ++i) {
    if (nodes_[i].count == 0) {
      continue;
    }
    std::string path;
    // Build root→leaf by walking parents and reversing segment order.
    std::vector<uint32_t> chain;
    for (uint32_t n = i; n != 0; n = nodes_[n].parent) {
      chain.push_back(n);
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!path.empty()) {
        path += ';';
      }
      path += ProfScopeName(nodes_[*it].scope);
    }
    lines.push_back(
        StackLine{std::move(path), nodes_[i].count,
                  ns_from_ticks(nodes_[i].ticks - nodes_[i].child_ticks)});
  }
  std::sort(lines.begin(), lines.end(),
            [](const StackLine& a, const StackLine& b) { return a.path < b.path; });
  first = true;
  for (const StackLine& line : lines) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"stack\":\"";
    out += line.path;
    out += "\",\"count\":";
    out += std::to_string(line.count);
    out += ",\"ns\":";
    out += std::to_string(line.excl_ns);
    out += '}';
  }
  out += "]}";
}

std::string Profiler::ExportProfileJson() const {
  std::string out;
  out.reserve(1 << 13);
  out += "{\"profile\":{\"sim\":";
  out += ExportProfileSimJson();
  out += ",\"wall\":";
  AppendWallJson(out);
  out += "}}";
  return out;
}

std::string Profiler::ExportProfileFolded() const {
  std::vector<std::string> lines;
  for (uint32_t i = 1; i < node_count_; ++i) {
    if (nodes_[i].count == 0) {
      continue;
    }
    std::vector<uint32_t> chain;
    for (uint32_t n = i; n != 0; n = nodes_[n].parent) {
      chain.push_back(n);
    }
    std::string line;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!line.empty()) {
        line += ';';
      }
      line += ProfScopeName(nodes_[*it].scope);
    }
    line += ' ';
    line += std::to_string(ns_from_ticks(nodes_[i].ticks - nodes_[i].child_ticks));
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

uint64_t Profiler::MinCoverageBp() const {
  std::map<uint32_t, uint64_t> busy;
  if (busy_provider_) {
    busy_provider_(&busy);
  }
  uint64_t min_bp = 10000;
  for (const auto& [host, busy_ns] : busy) {
    if (busy_ns == 0) {
      continue;
    }
    const auto it = ledger_.find(host);
    uint64_t attributed = 0;
    if (it != ledger_.end()) {
      attributed = it->second[static_cast<size_t>(LedgerCat::kCpu)] +
                   it->second[static_cast<size_t>(LedgerCat::kDisk)] +
                   it->second[static_cast<size_t>(LedgerCat::kWire)];
    }
    min_bp = std::min(min_bp, (attributed * 10000) / busy_ns);
  }
  return min_bp;
}

uint64_t Profiler::ProfileSimHash() const {
  const std::string json = ExportProfileSimJson();
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (unsigned char c : json) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace slice::obs
