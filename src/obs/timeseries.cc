#include "src/obs/timeseries.h"

namespace slice::obs {

void Scraper::Start() {
  if (started_ || !metrics_.enabled()) {
    return;
  }
  started_ = true;
  ScheduleNext();
}

void Scraper::ScheduleNext() {
  const SimTime interval = metrics_.params().scrape_interval;
  // Next exact multiple of the interval strictly after now: scrapes are
  // window-aligned regardless of when the scraper was started.
  const SimTime next = (queue_.now() / interval + 1) * interval;
  queue_.ScheduleBackgroundAt(next, [this, alive = alive_]() {
    if (!*alive) {
      return;
    }
    ScrapeOnce();
    ScheduleNext();
  });
}

void Scraper::ScrapeOnce() {
  const SimTime now = queue_.now();
  const size_t capacity = metrics_.params().series_capacity;
  for (const auto& [host, reg] : metrics_.registries()) {
    auto& host_series = series_[host];
    auto push = [&](const std::string& name, int64_t value) {
      auto it = host_series.find(name);
      if (it == host_series.end()) {
        it = host_series.emplace(name, TimeSeries(capacity)).first;
      }
      it->second.Push(now, value);
    };
    for (const auto& [name, counter] : reg.counters()) {
      push(name, static_cast<int64_t>(counter->Value()));
    }
    for (const auto& [name, gauge] : reg.gauges()) {
      push(name, gauge->Value());
    }
    for (const auto& [name, histogram] : reg.histograms()) {
      push(name, static_cast<int64_t>(histogram->stats().count()));
    }
  }
  for (const TenantInstruments& ti : metrics_.tenants()) {
    auto& ts = tenant_series_[ti.tenant];
    auto push = [&](const std::string& name, int64_t value) {
      auto it = ts.find(name);
      if (it == ts.end()) {
        it = ts.emplace(name, TimeSeries(capacity)).first;
      }
      it->second.Push(now, value);
    };
    for (size_t i = 0; i < kTenantOpClassCount; ++i) {
      const std::string cls = TenantOpClassName(static_cast<TenantOpClass>(i));
      push("ops_" + cls, static_cast<int64_t>(ti.ops[i].Value()));
      push("bytes_" + cls, static_cast<int64_t>(ti.bytes[i].Value()));
    }
    push("errors", static_cast<int64_t>(ti.errors.Value()));
    push("bad_ops", static_cast<int64_t>(ti.bad_ops.Value()));
  }
  ++scrapes_;
  EvaluateRules(now);
  if (scrape_hook_) {
    scrape_hook_(now);
  }
}

int64_t Scraper::SampleMetric(const MetricsRegistry& reg, std::string_view name,
                              bool* found) const {
  if (const Counter* counter = reg.FindCounter(name); counter != nullptr) {
    *found = true;
    return static_cast<int64_t>(counter->Value());
  }
  if (const Gauge* gauge = reg.FindGauge(name); gauge != nullptr) {
    *found = true;
    return gauge->Value();
  }
  *found = false;
  return 0;
}

void Scraper::EvaluateRules(SimTime now) {
  for (size_t r = 0; r < rules_.size(); ++r) {
    const WatchdogRule& rule = rules_[r];
    for (const auto& [host, reg] : metrics_.registries()) {
      bool found = false;
      const int64_t value = SampleMetric(reg, rule.metric, &found);
      if (!found) {
        continue;
      }
      RuleState& st = state_[{r, host}];
      int64_t sample = value;
      if (rule.mode == WatchdogMode::kDelta) {
        if (!st.has_prev) {
          // First observation establishes the window baseline.
          st.prev = value;
          st.has_prev = true;
          continue;
        }
        sample = value - st.prev;
        st.prev = value;
      }
      if (!st.raised) {
        if (sample >= rule.raise_threshold) {
          if (++st.above >= rule.raise_streak) {
            st.raised = true;
            st.above = 0;
            st.below = 0;
            EmitAlert(Alert{now, rule.name, host, sample, /*raise=*/true});
          }
        } else {
          st.above = 0;
        }
      } else {
        if (sample <= rule.clear_threshold) {
          if (++st.below >= rule.clear_streak) {
            st.raised = false;
            st.above = 0;
            st.below = 0;
            EmitAlert(Alert{now, rule.name, host, sample, /*raise=*/false});
          }
        } else {
          st.below = 0;
        }
      }
    }
  }
}

void Scraper::EmitAlert(const Alert& alert) {
  alerts_.push_back(alert);
  LogEvent(eventlog_, alert.host, alert.at, alert.raise ? EventSev::kError : EventSev::kInfo,
           EventCat::kAlert, alert.raise ? EventCode::kAlertRaise : EventCode::kAlertClear,
           /*trace_id=*/0, alert.rule.c_str(), {{"value", alert.value}});
  if (alert_hook_) {
    alert_hook_(alert);
  }
}

size_t Scraper::active_alerts() const {
  size_t n = 0;
  for (const auto& [key, st] : state_) {
    n += st.raised ? 1 : 0;
  }
  return n;
}

}  // namespace slice::obs
