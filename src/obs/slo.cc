#include "src/obs/slo.h"

#include <cstdio>

namespace slice::obs {

int64_t SloEngine::BurnMilli(const TenantState& st, uint32_t windows) const {
  if (st.size < 2) {
    return 0;  // need at least two snapshots for a delta
  }
  const size_t cap = st.ring.size();
  const auto at = [&](size_t i) -> const Snap& { return st.ring[(st.head + i) % cap]; };
  const size_t newest = st.size - 1;
  const size_t back = windows < newest ? windows : newest;  // partial: oldest available
  const Snap& cur = at(newest);
  const Snap& old = at(newest - back);
  const uint64_t ops = cur.ops - old.ops;
  const uint64_t bad = cur.bad - old.bad;
  if (ops < params_.min_ops || bad == 0) {
    return 0;
  }
  // burn = (bad/ops) / (budget_ppm/1e6); in milli-burns: bad*1e9/(ops*ppm).
  return static_cast<int64_t>(bad * 1000000000ULL /
                              (ops * static_cast<uint64_t>(params_.error_budget_ppm)));
}

void SloEngine::OnScrape(SimTime now) {
  if (!params_.enabled) {
    return;
  }
  for (const TenantInstruments& ti : metrics_.tenants()) {
    TenantState& st = state_[ti.tenant];
    if (st.ring.empty()) {
      st.ring.resize(params_.slow_windows + 1);
    }
    const size_t cap = st.ring.size();
    const Snap snap{ti.TotalOps(), ti.bad_ops.Value()};
    if (st.size == cap) {
      st.ring[st.head] = snap;
      st.head = (st.head + 1) % cap;
    } else {
      st.ring[(st.head + st.size) % cap] = snap;
      ++st.size;
    }

    st.fast_milli = BurnMilli(st, params_.fast_windows);
    st.slow_milli = BurnMilli(st, params_.slow_windows);

    if (!st.raised) {
      if (st.fast_milli >= params_.burn_threshold_milli &&
          st.slow_milli >= params_.burn_threshold_milli) {
        if (++st.above >= params_.raise_streak) {
          st.raised = true;
          st.above = 0;
          st.below = 0;
          EmitEdge(now, ti.tenant, st, ti.exemplars.Worst().trace_id);
        }
      } else {
        st.above = 0;
      }
    } else {
      if (st.fast_milli < params_.burn_threshold_milli) {
        if (++st.below >= params_.clear_streak) {
          st.raised = false;
          st.above = 0;
          st.below = 0;
          EmitEdge(now, ti.tenant, st, ti.exemplars.Worst().trace_id);
        }
      } else {
        st.below = 0;
      }
    }
  }
}

void SloEngine::EmitEdge(SimTime now, uint32_t tenant, const TenantState& st,
                         uint64_t trace_id) {
  alerts_.push_back(
      SloAlert{now, tenant, st.raised, st.fast_milli, st.slow_milli, trace_id});
  char detail[kEventDetailCap];
  std::snprintf(detail, sizeof(detail), "tenant%u", tenant);
  LogEvent(eventlog_, kSloHost, now, st.raised ? EventSev::kError : EventSev::kInfo,
           EventCat::kAlert, st.raised ? EventCode::kSloBurn : EventCode::kSloOk, trace_id,
           detail,
           {{"tenant", static_cast<int64_t>(tenant)},
            {"fast", st.fast_milli},
            {"slow", st.slow_milli}});
}

size_t SloEngine::active_burns() const {
  size_t n = 0;
  for (const auto& [tenant, st] : state_) {
    n += st.raised ? 1 : 0;
  }
  return n;
}

bool SloEngine::burning(uint32_t tenant) const {
  const auto it = state_.find(tenant);
  return it != state_.end() && it->second.raised;
}

int64_t SloEngine::fast_burn_milli(uint32_t tenant) const {
  const auto it = state_.find(tenant);
  return it == state_.end() ? 0 : it->second.fast_milli;
}

int64_t SloEngine::slow_burn_milli(uint32_t tenant) const {
  const auto it = state_.find(tenant);
  return it == state_.end() ? 0 : it->second.slow_milli;
}

}  // namespace slice::obs
