// Black-box flight recorder: canonical JSON dump of the structured event
// log (obs/eventlog.h) merged across hosts in sim-time order, together with
// the current metrics snapshot and the trace ids of requests still in
// flight at dump time.
//
// Dumps are byte-identical across same-seed runs (integer-only rendering,
// ordered maps, stable merge), hashed with the same FNV-1a convention as
// TraceContentHash / MetricsContentHash. tools/slice_inspect.py consumes
// this format offline.
#ifndef SLICE_OBS_FLIGHT_RECORDER_H_
#define SLICE_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/eventlog.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/slo.h"
#include "src/obs/timeseries.h"

namespace slice::obs {

// Renders the flight dump. `metrics`/`scraper`/`slo`/`inflight`/`profiler`
// are optional (null / empty => the corresponding section is omitted or
// empty). `reason` tags why the dump was cut ("teardown", "alert:<rule>",
// "manual", ...); `at` is the sim time of the dump. The profile section
// carries wall-clock values, so profiled dumps are not hash-pinned — pin
// Profiler::ProfileSimHash instead.
std::string ExportFlightJson(const EventLog& log, SimTime at, const char* reason,
                             const std::vector<uint64_t>& inflight_traces = {},
                             const Metrics* metrics = nullptr, const Scraper* scraper = nullptr,
                             const SloEngine* slo = nullptr, const Profiler* profiler = nullptr);

// FNV-1a over the canonical dump bytes (same convention as the trace and
// metrics content hashes).
uint64_t FlightContentHash(std::string_view canonical_json);

// Writes `json` to `path` (binary, truncating). Returns false on IO error.
bool WriteFlightDump(const std::string& path, std::string_view json);

}  // namespace slice::obs

#endif  // SLICE_OBS_FLIGHT_RECORDER_H_
