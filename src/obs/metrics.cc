#include "src/obs/metrics.h"

namespace slice::obs {
namespace {

template <typename T>
T* GetOrCreate(std::map<std::string, std::unique_ptr<T>, std::less<>>& slots,
               std::string_view name) {
  auto it = slots.find(name);
  if (it == slots.end()) {
    it = slots.emplace(std::string(name), std::make_unique<T>()).first;
  }
  return it->second.get();
}

}  // namespace

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  return GetOrCreate(counters_, name);
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) { return GetOrCreate(gauges_, name); }

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  return GetOrCreate(histograms_, name);
}

const char* TenantOpClassName(TenantOpClass oc) {
  switch (oc) {
    case TenantOpClass::kRead:
      return "read";
    case TenantOpClass::kWrite:
      return "write";
    case TenantOpClass::kName:
      return "name";
    case TenantOpClass::kAttr:
      return "attr";
    case TenantOpClass::kOther:
      return "other";
  }
  return "other";
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

std::vector<WatchdogRule> DefaultWatchdogRules(SimTime scrape_interval) {
  std::vector<WatchdogRule> rules;

  // Disk arm backlog watermark: more than ~25ms of queued positioning +
  // transfer work on a storage node's busiest arm, sustained for two
  // scrapes, means the arms are the bottleneck (paper §5's saturation mode).
  rules.push_back(WatchdogRule{.name = "disk_backlog",
                               .metric = "storage_disk_backlog_ns",
                               .mode = WatchdogMode::kValue,
                               .raise_threshold = static_cast<int64_t>(FromMillis(25)),
                               .clear_threshold = static_cast<int64_t>(FromMillis(5)),
                               .raise_streak = 2,
                               .clear_streak = 2});

  // NIC transmit link >90% utilized across a scrape window (busy-ns delta
  // against the window length).
  rules.push_back(
      WatchdogRule{.name = "link_saturation",
                   .metric = "net_nic_tx_busy_ns",
                   .mode = WatchdogMode::kDelta,
                   .raise_threshold = static_cast<int64_t>(scrape_interval * 9 / 10),
                   .clear_threshold = static_cast<int64_t>(scrape_interval / 2),
                   .raise_streak = 2,
                   .clear_streak = 2});

  // Heartbeat-miss streak: nodes the manager still considers alive but that
  // have been silent past two heartbeat intervals, for two scrapes running.
  // Clears when the silence ends — or when the failure detector gives up and
  // declares the node dead (node_dead below takes over).
  rules.push_back(WatchdogRule{.name = "heartbeat_miss",
                               .metric = "mgmt_silent_nodes",
                               .mode = WatchdogMode::kValue,
                               .raise_threshold = 1,
                               .clear_threshold = 0,
                               .raise_streak = 2,
                               .clear_streak = 1});

  // Membership loss: the failure detector has declared at least one node
  // dead.
  rules.push_back(WatchdogRule{.name = "node_dead",
                               .metric = "mgmt_nodes_dead",
                               .mode = WatchdogMode::kValue,
                               .raise_threshold = 1,
                               .clear_threshold = 0,
                               .raise_streak = 1,
                               .clear_streak = 1});

  // Server CPU backlog: requests queued behind a busy service CPU.
  rules.push_back(WatchdogRule{.name = "srv_cpu_backlog",
                               .metric = "srv_cpu_backlog_ns",
                               .mode = WatchdogMode::kValue,
                               .raise_threshold = static_cast<int64_t>(FromMillis(20)),
                               .clear_threshold = static_cast<int64_t>(FromMillis(2)),
                               .raise_streak = 2,
                               .clear_streak = 2});

  return rules;
}

}  // namespace slice::obs
