// Sim-time metrics scraping: a periodic DES background event that snapshots
// every registered instrument into fixed-interval, bounded time-series rings
// and evaluates the saturation watchdog rules with hysteresis.
//
// Scrapes land at exact multiples of the scrape interval (window-aligned),
// so two same-seed runs sample identical sim-times and produce identical
// series — the scraper introduces no nondeterminism of its own.
#ifndef SLICE_OBS_TIMESERIES_H_
#define SLICE_OBS_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/eventlog.h"
#include "src/obs/metrics.h"
#include "src/sim/event_queue.h"

namespace slice::obs {

struct Sample {
  SimTime at = 0;
  int64_t value = 0;
};

// Bounded fixed-interval sample ring: oldest samples are dropped on
// overflow (soft state, like the span rings).
class TimeSeries {
 public:
  explicit TimeSeries(size_t capacity) : slots_(capacity > 0 ? capacity : 1) {}

  void Push(SimTime at, int64_t value) {
    if (size_ == slots_.size()) {
      slots_[head_] = Sample{at, value};
      head_ = (head_ + 1) % slots_.size();
      ++dropped_;
    } else {
      slots_[(head_ + size_) % slots_.size()] = Sample{at, value};
      ++size_;
    }
  }

  size_t size() const { return size_; }
  size_t capacity() const { return slots_.size(); }
  uint64_t dropped() const { return dropped_; }
  // i-th sample, oldest first.
  const Sample& at(size_t i) const { return slots_[(head_ + i) % slots_.size()]; }
  const Sample& back() const { return at(size_ - 1); }

 private:
  std::vector<Sample> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
  uint64_t dropped_ = 0;
};

class Scraper {
 public:
  Scraper(EventQueue& queue, Metrics& metrics) : queue_(queue), metrics_(metrics) {}
  ~Scraper() { *alive_ = false; }

  Scraper(const Scraper&) = delete;
  Scraper& operator=(const Scraper&) = delete;

  void AddRule(WatchdogRule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<WatchdogRule>& rules() const { return rules_; }

  // Every Alert edge is mirrored into the event log (kAlertRaise /
  // kAlertClear with the rule name and triggering value), so dumps and
  // alerts can never disagree.
  void set_eventlog(EventLog* log) { eventlog_ = log; }
  // Called on every Alert edge after it is recorded; the ensemble uses this
  // to cut a flight-recorder dump the moment a watchdog fires.
  void SetAlertHook(std::function<void(const Alert&)> hook) { alert_hook_ = std::move(hook); }
  // Called at the end of every scrape, after instruments are sampled and
  // watchdogs evaluated. The SLO engine rides this: burn rates are a pure
  // function of the scrape-time tenant snapshots, so same-seed runs evaluate
  // identical windows.
  void SetScrapeHook(std::function<void(SimTime)> hook) { scrape_hook_ = std::move(hook); }

  // Arms the background scrape timer; the first scrape fires at the next
  // exact multiple of the scrape interval. No-op when metrics are disabled.
  void Start();

  // One scrape right now: samples every instrument into its series, then
  // evaluates the watchdog rules. Exposed for tests; Start() drives this.
  void ScrapeOnce();

  // host -> metric name -> series. Histograms contribute their sample count.
  const std::map<uint32_t, std::map<std::string, TimeSeries, std::less<>>>& series() const {
    return series_;
  }
  // tenant -> metric name -> series (empty unless Metrics::ConfigureTenants
  // was called). Sampled each scrape: per-opclass ops/bytes, errors, bad_ops.
  const std::map<uint32_t, std::map<std::string, TimeSeries, std::less<>>>& tenant_series()
      const {
    return tenant_series_;
  }
  // Raise/clear edges in emission order (scrape time, then rule order, then
  // host order — deterministic).
  const std::vector<Alert>& alerts() const { return alerts_; }
  // Watchdogs currently in the raised state.
  size_t active_alerts() const;
  uint64_t scrapes() const { return scrapes_; }

 private:
  struct RuleState {
    int64_t prev = 0;
    bool has_prev = false;
    uint32_t above = 0;
    uint32_t below = 0;
    bool raised = false;
  };

  void ScheduleNext();
  void EvaluateRules(SimTime now);
  int64_t SampleMetric(const MetricsRegistry& reg, std::string_view name, bool* found) const;

  void EmitAlert(const Alert& alert);

  EventQueue& queue_;
  Metrics& metrics_;
  EventLog* eventlog_ = nullptr;
  std::function<void(const Alert&)> alert_hook_;
  std::function<void(SimTime)> scrape_hook_;
  std::vector<WatchdogRule> rules_;
  std::map<uint32_t, std::map<std::string, TimeSeries, std::less<>>> series_;
  std::map<uint32_t, std::map<std::string, TimeSeries, std::less<>>> tenant_series_;
  // (rule index, host) -> hysteresis state.
  std::map<std::pair<size_t, uint32_t>, RuleState> state_;
  std::vector<Alert> alerts_;
  uint64_t scrapes_ = 0;
  bool started_ = false;
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace slice::obs

#endif  // SLICE_OBS_TIMESERIES_H_
