#include "src/obs/critical_path.h"

#include <algorithm>
#include <cstdio>

namespace slice::obs {
namespace {

struct Boundary {
  SimTime at;
  int priority;
  SpanCat cat;
  bool open;
};

// Attributes the root window of one trace using a boundary sweep over its
// segment spans (already clipped to the window by the caller).
void SweepTrace(const Span& root, const std::vector<Span>& segments, CatBreakdown& out) {
  out.ops += 1;
  out.total += root.end - root.start;

  std::vector<Boundary> bounds;
  bounds.reserve(segments.size() * 2);
  for (const Span& s : segments) {
    bounds.push_back(Boundary{s.start, SpanCatPriority(s.cat), s.cat, true});
    bounds.push_back(Boundary{s.end, SpanCatPriority(s.cat), s.cat, false});
  }
  std::sort(bounds.begin(), bounds.end(), [](const Boundary& a, const Boundary& b) {
    if (a.at != b.at) {
      return a.at < b.at;
    }
    return a.open < b.open;  // closes before opens at the same instant
  });

  // Active span count per category; the attributed category of an interval
  // is the highest-priority one with a nonzero count.
  std::array<uint32_t, kNumSpanCats> active{};
  SimTime cursor = root.start;
  size_t i = 0;
  auto attribute = [&](SimTime upto) {
    if (upto <= cursor) {
      return;
    }
    int best_priority = -1;
    SpanCat best = SpanCat::kOther;
    for (size_t c = 0; c < kNumSpanCats; ++c) {
      if (active[c] > 0 && SpanCatPriority(static_cast<SpanCat>(c)) > best_priority) {
        best_priority = SpanCatPriority(static_cast<SpanCat>(c));
        best = static_cast<SpanCat>(c);
      }
    }
    out.by_cat[static_cast<size_t>(best)] += upto - cursor;
    cursor = upto;
  };

  // Segments are pre-clipped to [root.start, root.end], so every boundary
  // falls inside the window.
  while (i < bounds.size()) {
    const SimTime at = bounds[i].at;
    attribute(at);
    while (i < bounds.size() && bounds[i].at == at) {
      const size_t c = static_cast<size_t>(bounds[i].cat);
      if (bounds[i].open) {
        ++active[c];
      } else if (active[c] > 0) {
        --active[c];
      }
      ++i;
    }
  }
  attribute(root.end);
}

}  // namespace

CriticalPathReport CriticalPath::Analyze(const std::vector<Span>& spans) {
  CriticalPathReport report;

  // Group by trace: find each trace's root and its candidate segments.
  std::map<uint64_t, const Span*> roots;
  std::map<uint64_t, std::vector<Span>> segments;
  for (const Span& s : spans) {
    if (s.root) {
      roots[s.trace_id] = &s;
    } else if (!s.instant && s.end > s.start) {
      segments[s.trace_id].push_back(s);
    }
  }

  for (const auto& [trace_id, root] : roots) {
    ++report.traces_analyzed;
    CatBreakdown breakdown;
    std::vector<Span> clipped;
    if (auto it = segments.find(trace_id); it != segments.end()) {
      for (Span s : it->second) {
        s.start = std::max(s.start, root->start);
        s.end = std::min(s.end, root->end);
        if (s.end > s.start) {
          clipped.push_back(s);
        }
      }
    }
    SweepTrace(*root, clipped, breakdown);
    report.per_class[std::string(root->name_view())].Merge(breakdown);
    report.overall.Merge(breakdown);
  }
  for (const auto& [trace_id, segs] : segments) {
    if (!roots.contains(trace_id)) {
      ++report.traces_without_root;
    }
  }
  return report;
}

std::string CriticalPath::Format(const CriticalPathReport& report) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line), "%-16s %8s %10s %6s %6s %6s %6s %6s %6s %7s\n",
                "opclass", "ops", "mean_ms", "wire%", "queue%", "cpu%", "disk%", "svc%",
                "other%", "covered");
  out += line;
  auto emit = [&](const std::string& name, const CatBreakdown& b) {
    if (b.ops == 0) {
      return;
    }
    const double total = static_cast<double>(b.total);
    auto pct = [&](SpanCat c) {
      return total == 0 ? 0.0
                        : 100.0 * static_cast<double>(b.by_cat[static_cast<size_t>(c)]) / total;
    };
    const double other_pct =
        total == 0 ? 0.0
                   : 100.0 * static_cast<double>(b.total - b.attributed()) / total;
    std::snprintf(line, sizeof(line),
                  "%-16s %8llu %10.3f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f %6.1f%%\n",
                  name.c_str(), static_cast<unsigned long long>(b.ops),
                  ToMillis(b.total) / static_cast<double>(b.ops), pct(SpanCat::kWire),
                  pct(SpanCat::kQueue), pct(SpanCat::kCpu), pct(SpanCat::kDisk),
                  pct(SpanCat::kService), other_pct, 100.0 * b.coverage());
    out += line;
  };
  for (const auto& [name, breakdown] : report.per_class) {
    emit(name, breakdown);
  }
  emit("TOTAL", report.overall);
  return out;
}

}  // namespace slice::obs
