#include "src/obs/trace.h"

namespace slice::obs {

const char* SpanCatName(SpanCat cat) {
  switch (cat) {
    case SpanCat::kWire:
      return "wire";
    case SpanCat::kQueue:
      return "queue";
    case SpanCat::kCpu:
      return "cpu";
    case SpanCat::kDisk:
      return "disk";
    case SpanCat::kService:
      return "service";
    case SpanCat::kOther:
      return "other";
  }
  return "other";
}

int SpanCatPriority(SpanCat cat) {
  // Overlap resolution for critical-path attribution: the most specific
  // resource wins. Disk I/O subsumes the service window it completes in;
  // CPU beats the queueing that fed it; wire beats the catch-all service.
  switch (cat) {
    case SpanCat::kDisk:
      return 5;
    case SpanCat::kCpu:
      return 4;
    case SpanCat::kQueue:
      return 3;
    case SpanCat::kWire:
      return 2;
    case SpanCat::kService:
      return 1;
    case SpanCat::kOther:
      return 0;
  }
  return 0;
}

uint64_t Tracer::RecordSpan(uint32_t host, const TraceContext& ctx, SpanCat cat,
                            const char* name, SimTime start, SimTime end, bool root) {
  if (!params_.enabled || !ctx.valid()) {
    return 0;
  }
  Span span;
  span.trace_id = ctx.trace_id;
  span.span_id = root ? ctx.span_id : ++last_span_id_;
  span.parent_id = root ? 0 : ctx.span_id;
  span.start = start;
  span.end = end >= start ? end : start;
  span.host = host;
  span.cat = cat;
  span.root = root;
  span.set_name(name);
  auto it = rings_.find(host);
  if (it == rings_.end()) {
    it = rings_.try_emplace(host, params_.ring_capacity).first;
  }
  it->second.Push(span);
  ++recorded_;
  return span.span_id;
}

uint64_t Tracer::RecordInstant(uint32_t host, const TraceContext& ctx, const char* name,
                               SimTime at) {
  if (!params_.enabled || !ctx.valid()) {
    return 0;
  }
  Span span;
  span.trace_id = ctx.trace_id;
  span.span_id = ++last_span_id_;
  span.parent_id = ctx.span_id;
  span.start = at;
  span.end = at;
  span.host = host;
  span.cat = SpanCat::kOther;
  span.instant = true;
  span.set_name(name);
  auto it = rings_.find(host);
  if (it == rings_.end()) {
    it = rings_.try_emplace(host, params_.ring_capacity).first;
  }
  it->second.Push(span);
  ++recorded_;
  return span.span_id;
}

std::vector<Span> Tracer::Collect() const {
  std::vector<Span> out;
  size_t total = 0;
  for (const auto& [host, ring] : rings_) {
    total += ring.size();
  }
  out.reserve(total);
  for (const auto& [host, ring] : rings_) {
    ring.CopyTo(out);
  }
  return out;
}

uint64_t Tracer::total_evicted() const {
  uint64_t total = 0;
  for (const auto& [host, ring] : rings_) {
    total += ring.evicted();
  }
  return total;
}

}  // namespace slice::obs
