#include "src/obs/metrics_export.h"

#include <cmath>
#include <utility>
#include <vector>

namespace slice::obs {
namespace {

void AppendHistogramQuantiles(std::string& out, const LatencyStats& stats) {
  out += "\"count\":";
  out += std::to_string(stats.count());
  out += ",\"sum\":";
  out += std::to_string(stats.sum());
  out += ",\"min\":";
  out += std::to_string(stats.min());
  out += ",\"max\":";
  out += std::to_string(stats.max());
  out += ",\"p50\":";
  out += std::to_string(stats.Percentile(50));
  out += ",\"p95\":";
  out += std::to_string(stats.Percentile(95));
  out += ",\"p99\":";
  out += std::to_string(stats.Percentile(99));
}

void HashBytes(uint64_t& h, const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
}

}  // namespace

std::string FormatHostAddr(uint32_t addr) {
  std::string out;
  out += std::to_string((addr >> 24) & 0xff);
  out += '.';
  out += std::to_string((addr >> 16) & 0xff);
  out += '.';
  out += std::to_string((addr >> 8) & 0xff);
  out += '.';
  out += std::to_string(addr & 0xff);
  return out;
}

void AppendFixed(std::string& out, double value, int decimals) {
  // Render via integer fixed-point so the bytes never depend on locale or
  // printf float behaviour. Good to 9 decimal places.
  static constexpr int64_t kPow10[10] = {1,      10,      100,      1000,      10000,
                                         100000, 1000000, 10000000, 100000000, 1000000000};
  if (decimals < 0) {
    decimals = 0;
  }
  if (decimals > 9) {
    decimals = 9;
  }
  double v = value;
  if (v < 0) {
    out += '-';
    v = -v;
  }
  const int64_t scale = kPow10[decimals];
  const auto scaled = static_cast<int64_t>(std::llround(v * static_cast<double>(scale)));
  out += std::to_string(scaled / scale);
  if (decimals > 0) {
    out += '.';
    const int64_t frac = scaled % scale;
    for (int d = decimals - 1; d >= 0; --d) {
      out += static_cast<char>('0' + (frac / kPow10[d]) % 10);
    }
  }
}

std::string ExportPrometheus(const Metrics& metrics) {
  std::string out;
  out.reserve(4096);
  // Group samples by family (metric name) across hosts, Prometheus-style.
  // Three passes keyed by the ordered registry maps keep it deterministic.
  std::map<std::string, std::vector<std::pair<uint32_t, uint64_t>>, std::less<>> counter_families;
  std::map<std::string, std::vector<std::pair<uint32_t, int64_t>>, std::less<>> gauge_families;
  std::map<std::string, std::vector<std::pair<uint32_t, const LatencyStats*>>, std::less<>>
      histogram_families;
  for (const auto& [host, reg] : metrics.registries()) {
    for (const auto& [name, counter] : reg.counters()) {
      counter_families[name].emplace_back(host, counter->Value());
    }
    for (const auto& [name, gauge] : reg.gauges()) {
      gauge_families[name].emplace_back(host, gauge->Value());
    }
    for (const auto& [name, histogram] : reg.histograms()) {
      histogram_families[name].emplace_back(host, &histogram->stats());
    }
  }
  for (const auto& [name, samples] : counter_families) {
    out += "# TYPE slice_";
    out += name;
    out += " counter\n";
    for (const auto& [host, value] : samples) {
      out += "slice_";
      out += name;
      out += "{host=\"";
      out += FormatHostAddr(host);
      out += "\"} ";
      out += std::to_string(value);
      out += '\n';
    }
  }
  for (const auto& [name, samples] : gauge_families) {
    out += "# TYPE slice_";
    out += name;
    out += " gauge\n";
    for (const auto& [host, value] : samples) {
      out += "slice_";
      out += name;
      out += "{host=\"";
      out += FormatHostAddr(host);
      out += "\"} ";
      out += std::to_string(value);
      out += '\n';
    }
  }
  for (const auto& [name, samples] : histogram_families) {
    out += "# TYPE slice_";
    out += name;
    out += " summary\n";
    for (const auto& [host, stats] : samples) {
      const std::string label = FormatHostAddr(host);
      static constexpr std::pair<const char*, double> kQuantiles[] = {
          {"0.5", 50.0}, {"0.95", 95.0}, {"0.99", 99.0}};
      for (const auto& [q_label, q] : kQuantiles) {
        out += "slice_";
        out += name;
        out += "{host=\"";
        out += label;
        out += "\",quantile=\"";
        out += q_label;
        out += "\"} ";
        out += std::to_string(stats->Percentile(q));
        out += '\n';
      }
      out += "slice_";
      out += name;
      out += "_sum{host=\"";
      out += label;
      out += "\"} ";
      out += std::to_string(stats->sum());
      out += '\n';
      out += "slice_";
      out += name;
      out += "_count{host=\"";
      out += label;
      out += "\"} ";
      out += std::to_string(stats->count());
      out += '\n';
    }
  }
  return out;
}

std::string ExportMetricsJson(const Metrics& metrics, const Scraper* scraper,
                              const SloEngine* slo) {
  std::string out;
  out.reserve(8192);
  out += "{\"hosts\":{";
  bool first_host = true;
  for (const auto& [host, reg] : metrics.registries()) {
    if (!first_host) {
      out += ',';
    }
    first_host = false;
    out += '"';
    out += FormatHostAddr(host);
    out += "\":{\"counters\":{";
    bool first = true;
    for (const auto& [name, counter] : reg.counters()) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += name;
      out += "\":";
      out += std::to_string(counter->Value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto& [name, gauge] : reg.gauges()) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += name;
      out += "\":";
      out += std::to_string(gauge->Value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto& [name, histogram] : reg.histograms()) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += name;
      out += "\":{";
      AppendHistogramQuantiles(out, histogram->stats());
      out += '}';
    }
    out += "}}";
  }
  out += '}';
  if (scraper != nullptr) {
    out += ",\"scrapes\":";
    out += std::to_string(scraper->scrapes());
    out += ",\"alerts\":[";
    bool first = true;
    for (const Alert& alert : scraper->alerts()) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += "{\"at\":";
      out += std::to_string(alert.at);
      out += ",\"rule\":\"";
      out += alert.rule;
      out += "\",\"host\":\"";
      out += FormatHostAddr(alert.host);
      out += "\",\"value\":";
      out += std::to_string(alert.value);
      out += ",\"raise\":";
      out += alert.raise ? '1' : '0';
      out += '}';
    }
    out += "],\"series\":{";
    bool first_series_host = true;
    for (const auto& [host, by_metric] : scraper->series()) {
      if (!first_series_host) {
        out += ',';
      }
      first_series_host = false;
      out += '"';
      out += FormatHostAddr(host);
      out += "\":{";
      bool first_metric = true;
      for (const auto& [name, series] : by_metric) {
        if (!first_metric) {
          out += ',';
        }
        first_metric = false;
        out += '"';
        out += name;
        out += "\":[";
        for (size_t i = 0; i < series.size(); ++i) {
          if (i > 0) {
            out += ',';
          }
          out += '[';
          out += std::to_string(series.at(i).at);
          out += ',';
          out += std::to_string(series.at(i).value);
          out += ']';
        }
        out += ']';
      }
      out += '}';
    }
    out += '}';
  }
  // Tenant plane: strictly opt-in sections, so untenanted runs stay
  // byte-identical with pre-tenant exports (pinned goldens).
  if (metrics.num_tenants() > 0) {
    out += ",\"tenants\":{";
    bool first_tenant = true;
    for (const TenantInstruments& ti : metrics.tenants()) {
      if (!first_tenant) {
        out += ',';
      }
      first_tenant = false;
      out += '"';
      out += std::to_string(ti.tenant);
      out += "\":{\"ops\":{";
      for (size_t i = 0; i < kTenantOpClassCount; ++i) {
        if (i > 0) {
          out += ',';
        }
        out += '"';
        out += TenantOpClassName(static_cast<TenantOpClass>(i));
        out += "\":";
        out += std::to_string(ti.ops[i].Value());
      }
      out += "},\"bytes\":{";
      for (size_t i = 0; i < kTenantOpClassCount; ++i) {
        if (i > 0) {
          out += ',';
        }
        out += '"';
        out += TenantOpClassName(static_cast<TenantOpClass>(i));
        out += "\":";
        out += std::to_string(ti.bytes[i].Value());
      }
      out += "},\"latency\":{";
      for (size_t i = 0; i < kTenantOpClassCount; ++i) {
        if (i > 0) {
          out += ',';
        }
        out += '"';
        out += TenantOpClassName(static_cast<TenantOpClass>(i));
        out += "\":{";
        AppendHistogramQuantiles(out, ti.latency[i].stats());
        out += '}';
      }
      out += "},\"errors\":";
      out += std::to_string(ti.errors.Value());
      out += ",\"bad_ops\":";
      out += std::to_string(ti.bad_ops.Value());
      out += ",\"slow_threshold\":";
      out += std::to_string(ti.slow_threshold);
      out += ",\"exemplars\":[";
      for (size_t i = 0; i < ti.exemplars.size(); ++i) {
        if (i > 0) {
          out += ',';
        }
        const TenantExemplar& ex = ti.exemplars.at(i);
        out += "{\"at\":";
        out += std::to_string(ex.at);
        out += ",\"latency\":";
        out += std::to_string(ex.latency);
        out += ",\"trace_id\":";
        out += std::to_string(ex.trace_id);
        out += ",\"class\":\"";
        out += TenantOpClassName(static_cast<TenantOpClass>(ex.opclass));
        out += "\"}";
      }
      out += "]}";
    }
    out += '}';
    if (scraper != nullptr) {
      out += ",\"tenant_series\":{";
      bool first_ts_tenant = true;
      for (const auto& [tenant, by_metric] : scraper->tenant_series()) {
        if (!first_ts_tenant) {
          out += ',';
        }
        first_ts_tenant = false;
        out += '"';
        out += std::to_string(tenant);
        out += "\":{";
        bool first_metric = true;
        for (const auto& [name, series] : by_metric) {
          if (!first_metric) {
            out += ',';
          }
          first_metric = false;
          out += '"';
          out += name;
          out += "\":[";
          for (size_t i = 0; i < series.size(); ++i) {
            if (i > 0) {
              out += ',';
            }
            out += '[';
            out += std::to_string(series.at(i).at);
            out += ',';
            out += std::to_string(series.at(i).value);
            out += ']';
          }
          out += ']';
        }
        out += '}';
      }
      out += '}';
    }
    if (slo != nullptr && slo->params().enabled) {
      const SloParams& sp = slo->params();
      out += ",\"slo\":{\"budget_ppm\":";
      out += std::to_string(sp.error_budget_ppm);
      out += ",\"latency_threshold\":";
      out += std::to_string(sp.latency_threshold);
      out += ",\"burn_threshold_milli\":";
      out += std::to_string(sp.burn_threshold_milli);
      out += ",\"fast_windows\":";
      out += std::to_string(sp.fast_windows);
      out += ",\"slow_windows\":";
      out += std::to_string(sp.slow_windows);
      out += ",\"alerts\":[";
      bool first_alert = true;
      for (const SloAlert& alert : slo->alerts()) {
        if (!first_alert) {
          out += ',';
        }
        first_alert = false;
        out += "{\"at\":";
        out += std::to_string(alert.at);
        out += ",\"tenant\":";
        out += std::to_string(alert.tenant);
        out += ",\"raise\":";
        out += alert.raise ? '1' : '0';
        out += ",\"fast\":";
        out += std::to_string(alert.fast_milli);
        out += ",\"slow\":";
        out += std::to_string(alert.slow_milli);
        out += ",\"trace_id\":";
        out += std::to_string(alert.trace_id);
        out += '}';
      }
      out += "]}";
    }
  }
  out += '}';
  return out;
}

uint64_t MetricsContentHash(std::string_view canonical_json) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  HashBytes(h, canonical_json.data(), canonical_json.size());
  return h;
}

}  // namespace slice::obs
