// Critical-path accounting: attributes each completed operation's end-to-end
// latency (its root span, recorded by the intercepting µproxy) to the
// wire / queue / CPU / disk / service segments recorded along its path, and
// aggregates per-opclass breakdowns — the decomposition the paper's Table 3
// and Figures 5–6 discussion reasons about informally.
//
// Attribution is a priority sweep: at every instant inside the root window,
// the time goes to the highest-priority category with an active span
// (disk > cpu > queue > wire > service); instants covered by no span at all
// count as "other". A healthy loss-free trace attributes > 99% of each op's
// latency, because the simulation's instrumentation points are gap-free.
#ifndef SLICE_OBS_CRITICAL_PATH_H_
#define SLICE_OBS_CRITICAL_PATH_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace slice::obs {

struct CatBreakdown {
  uint64_t ops = 0;
  SimTime total = 0;  // summed end-to-end (root) latency
  std::array<SimTime, kNumSpanCats> by_cat{};

  SimTime attributed() const {
    SimTime sum = 0;
    for (size_t i = 0; i < kNumSpanCats; ++i) {
      if (static_cast<SpanCat>(i) != SpanCat::kOther) {
        sum += by_cat[i];
      }
    }
    return sum;
  }
  // Fraction of end-to-end latency explained by recorded segments.
  double coverage() const {
    return total == 0 ? 1.0
                      : static_cast<double>(attributed()) / static_cast<double>(total);
  }

  void Merge(const CatBreakdown& other) {
    ops += other.ops;
    total += other.total;
    for (size_t i = 0; i < kNumSpanCats; ++i) {
      by_cat[i] += other.by_cat[i];
    }
  }
};

struct CriticalPathReport {
  // Root-span name (e.g. "op:read") -> aggregated breakdown.
  std::map<std::string, CatBreakdown> per_class;
  CatBreakdown overall;
  // Traces whose root span was found (completed operations).
  uint64_t traces_analyzed = 0;
  // Traces with recorded segments but no root (incomplete at collection).
  uint64_t traces_without_root = 0;
};

class CriticalPath {
 public:
  // Analyzes a merged span collection (Tracer::Collect()).
  static CriticalPathReport Analyze(const std::vector<Span>& spans);

  // Human-readable per-opclass table (percentages per category).
  static std::string Format(const CriticalPathReport& report);
};

}  // namespace slice::obs

#endif  // SLICE_OBS_CRITICAL_PATH_H_
