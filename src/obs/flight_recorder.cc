#include "src/obs/flight_recorder.h"

#include <fstream>

#include "src/obs/metrics_export.h"

namespace slice::obs {
namespace {

// JSON string escaping for the few free-text fields (reason, detail, arg
// keys). Details are short ASCII tags in practice; escape defensively
// anyway so the dump is always valid JSON.
void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xf];
          out += kHex[c & 0xf];
        } else {
          out += c;
        }
    }
  }
}

void AppendEvent(std::string& out, const Event& event) {
  out += "{\"at\":";
  out += std::to_string(event.at);
  out += ",\"seq\":";
  out += std::to_string(event.seq);
  out += ",\"host\":\"";
  out += FormatHostAddr(event.host);
  out += "\",\"sev\":\"";
  out += EventSevName(event.sev);
  out += "\",\"cat\":\"";
  out += EventCatName(event.cat);
  out += "\",\"code\":";
  out += std::to_string(static_cast<uint16_t>(event.code));
  out += ",\"name\":\"";
  out += EventCodeName(event.code);
  out += '"';
  if (event.detail[0] != '\0') {
    out += ",\"detail\":\"";
    AppendEscaped(out, event.detail_view());
    out += '"';
  }
  if (event.trace_id != 0) {
    out += ",\"trace\":";
    out += std::to_string(event.trace_id);
  }
  if (event.nargs > 0) {
    out += ",\"args\":{";
    for (uint8_t i = 0; i < event.nargs; ++i) {
      if (i > 0) {
        out += ',';
      }
      out += '"';
      AppendEscaped(out, std::string_view(event.args[i].key));
      out += "\":";
      out += std::to_string(event.args[i].value);
    }
    out += '}';
  }
  out += '}';
}

}  // namespace

std::string ExportFlightJson(const EventLog& log, SimTime at, const char* reason,
                             const std::vector<uint64_t>& inflight_traces, const Metrics* metrics,
                             const Scraper* scraper, const SloEngine* slo,
                             const Profiler* profiler) {
  std::string out;
  out.reserve(1 << 16);
  out += "{\"flight\":{\"reason\":\"";
  AppendEscaped(out, reason != nullptr ? reason : "manual");
  out += "\",\"at\":";
  out += std::to_string(at);
  out += ",\"recorded\":";
  out += std::to_string(log.total_recorded());
  out += ",\"evicted\":";
  out += std::to_string(log.total_evicted());
  out += ",\"events\":[";
  bool first = true;
  for (const Event& event : log.Collect()) {
    if (!first) {
      out += ',';
    }
    first = false;
    AppendEvent(out, event);
  }
  out += "]},\"inflight_traces\":[";
  first = true;
  for (uint64_t trace_id : inflight_traces) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += std::to_string(trace_id);
  }
  out += ']';
  if (metrics != nullptr) {
    out += ",\"metrics\":";
    out += ExportMetricsJson(*metrics, scraper, slo);
  }
  if (profiler != nullptr) {
    // Strictly appended opt-in section (same rule as the tenant sections in
    // the metrics snapshot): unprofiled dumps stay byte-identical to older
    // builds. ExportProfileJson wraps itself in {"profile":...} — splice the
    // inner object under our own key.
    const std::string profile = profiler->ExportProfileJson();
    constexpr std::string_view kPrefix = "{\"profile\":";
    out += ",\"profile\":";
    out.append(profile, kPrefix.size(), profile.size() - kPrefix.size() - 1);
  }
  out += '}';
  return out;
}

uint64_t FlightContentHash(std::string_view canonical_json) {
  uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a offset basis
  for (unsigned char c : canonical_json) {
    h ^= c;
    h *= 0x100000001b3ull;  // FNV-1a prime
  }
  return h;
}

bool WriteFlightDump(const std::string& path, std::string_view json) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out << json;
  return static_cast<bool>(out);
}

}  // namespace slice::obs
