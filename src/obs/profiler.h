// Fourth observability pillar: the profiler. The other pillars answer
// "what happened" (traces, events) and "how much" (metrics, SLO); this one
// answers "what it COST", in two clocks at once:
//
//   * Sim time — per-host utilization ledgers attributing every simulated
//     busy nanosecond to cpu / queue / disk / wire, extending the per-request
//     critical-path breakdown (obs/critical_path.h) to whole-host
//     utilization. Charges are pure integer adds against sim-deterministic
//     quantities, so the ledger export is byte-identical across same-seed
//     runs and packet-pool on/off.
//   * Wall clock — hierarchical scope timings (cycle counter, calibrated to
//     ns) for the real fast path: per-stage cost of µproxy decode / route /
//     rewrite / soft-state / trace / metrics work, rpc dispatch, storage
//     cache/disk charging, dir name ops, and the event-loop dispatch itself
//     so DES overhead is attributed rather than smeared.
//
// Discipline matches LogEvent/Inc: components hold a null Profiler pointer
// by default, every charge/scope helper is a single branch when disabled,
// and the enabled path never touches the heap (fixed node pool, fixed scope
// stack, cached ledger pointers) — the zero-alloc fast-path invariant holds
// with the profiler on (tests/fastpath_alloc_test.cc).
//
// Export: canonical JSON ({"profile":{"sim":...,"wall":...}}) merged into
// the flight dump, a collapsed-stack rendering for FlameGraph/speedscope,
// and ProfileSimHash — FNV-1a over the sim section ONLY, because wall-clock
// values vary across machines and must stay out-of-hash.
#ifndef SLICE_OBS_PROFILER_H_
#define SLICE_OBS_PROFILER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "src/sim/event_queue.h"

namespace slice::obs {

// Wall-clock scope identities. One X-macro so the enum, the exported names
// and the stage tables in benches/tools can never drift apart.
#define SLICE_PROFILE_SCOPES(X)         \
  X(kSimDispatch, "sim.dispatch")       \
  X(kUproxyOutbound, "uproxy.outbound") \
  X(kUproxyDecode, "uproxy.decode")     \
  X(kUproxyRoute, "uproxy.route")       \
  X(kUproxySoftState, "uproxy.soft_state") \
  X(kUproxyTrace, "uproxy.trace")       \
  X(kUproxyRewrite, "uproxy.rewrite")   \
  X(kUproxyAttrPatch, "uproxy.attr_patch") \
  X(kUproxyMetrics, "uproxy.metrics")   \
  X(kUproxyInbound, "uproxy.inbound")   \
  X(kUproxyInboundBatch, "uproxy.inbound_batch") \
  X(kRpcDispatch, "rpc.dispatch")       \
  X(kStorageCache, "storage.cache")     \
  X(kStorageDisk, "storage.disk")       \
  X(kDirNameOp, "dir.name_op")

enum class ProfScope : uint8_t {
#define SLICE_PROF_ENUM(sym, name) sym,
  SLICE_PROFILE_SCOPES(SLICE_PROF_ENUM)
#undef SLICE_PROF_ENUM
};
inline constexpr size_t kNumProfScopes = 0
#define SLICE_PROF_COUNT(sym, name) +1
    SLICE_PROFILE_SCOPES(SLICE_PROF_COUNT)
#undef SLICE_PROF_COUNT
    ;
const char* ProfScopeName(ProfScope scope);

// Sim-time ledger categories — same taxonomy as the critical-path span
// categories, minus service (a host is never "busy being remote").
enum class LedgerCat : uint8_t { kCpu = 0, kQueue = 1, kDisk = 2, kWire = 3 };
inline constexpr size_t kNumLedgerCats = 4;
const char* LedgerCatName(LedgerCat cat);

struct ProfilerParams {
  bool enabled = false;
};

class Profiler {
 public:
  // Raw monotonic cycle reading. rdtsc / cntvct are ~5-20 cycles vs ~25ns
  // for steady_clock; on other targets fall back to the chrono clock.
  static uint64_t Ticks() {
#if defined(__x86_64__)
    return __builtin_ia32_rdtsc();
#elif defined(__aarch64__)
    uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return static_cast<uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
  }

  explicit Profiler(const ProfilerParams& params);

  // --- sim-time ledger -------------------------------------------------
  //
  // LedgerFor returns a stable pointer to the host's 4-slot nanosecond
  // ledger (created on first use; std::map nodes never move). Components
  // cache it once in set_profiler, so a steady-state charge is one add.
  uint64_t* LedgerFor(uint32_t host);

  // The coverage reference: fills per-host *independent* busy-time totals
  // (BusyResource accounting), installed by the ensemble. Coverage =
  // (cpu+disk+wire attributed) / busy must be >= 99% in profiled runs.
  using BusyProvider = std::function<void(std::map<uint32_t, uint64_t>*)>;
  void SetBusyProvider(BusyProvider provider) { busy_provider_ = std::move(provider); }

  // --- wall-clock scope engine -----------------------------------------
  //
  // Begin/End pair into a path tree (fixed node pool, fixed-depth stack).
  // Per-pair measurement overhead is calibrated at construction (self cost
  // as seen by the pair itself, nested cost as seen by an enclosing scope)
  // and subtracted at pop, so stage sums track the unprofiled totals
  // closely enough for the table3 attribution check.
  void BeginScope(ProfScope scope) {
    if (depth_ >= kMaxDepth) {
      ++dropped_scopes_;
      ++depth_;  // keep pairing: EndScope undoes the overflow levels first
      return;
    }
    Frame& f = stack_[depth_++];
    f.node = FindOrAddChild(depth_ > 1 ? stack_[depth_ - 2].node : 0, scope);
    f.pops_at_push = pops_;
    f.child_ticks = 0;
    f.start = Ticks();
  }

  void EndScope() {
    const uint64_t end = Ticks();
    if (depth_ == 0) {
      return;  // unbalanced pop — ignore defensively
    }
    if (depth_ > kMaxDepth) {
      --depth_;  // overflow level recorded nothing
      return;
    }
    Frame& f = stack_[--depth_];
    const uint64_t inner_pops = pops_ - f.pops_at_push;
    ++pops_;
    uint64_t raw = end - f.start;
    // Subtract calibrated measurement overhead: this pair's own recorded
    // slice plus the full cost of every pair that popped inside it.
    const uint64_t overhead = ovh_self_ticks_ + inner_pops * ovh_nested_ticks_;
    uint64_t adjusted = raw > overhead ? raw - overhead : 0;
    if (adjusted < f.child_ticks) {
      adjusted = f.child_ticks;  // inclusive can never undercut its children
    }
    Node& n = nodes_[f.node];
    ++n.count;
    n.ticks += adjusted;
    n.child_ticks += f.child_ticks;
    if (depth_ > 0) {
      stack_[depth_ - 1].child_ticks += adjusted;
    }
  }

  // RAII guard used by components; single branch when the pointer is null.
  class Scope {
   public:
    Scope(Profiler* p, ProfScope s) : p_(p) {
      if (p_ != nullptr) {
        p_->BeginScope(s);
      }
    }
    ~Scope() {
      if (p_ != nullptr) {
        p_->EndScope();
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    Profiler* p_;
  };

  // Per-scope rollups (adjusted ticks converted to ns). Used by the table3
  // attribution report and tests; export uses the full tree.
  uint64_t ScopeInclusiveNs(ProfScope scope) const;
  uint64_t ScopeExclusiveNs(ProfScope scope) const;
  uint64_t ScopeCount(ProfScope scope) const;

  // Resets wall-clock state (tree + stack) but not the sim ledger — lets a
  // bench warm up scope paths, then measure a clean window.
  void ResetWall();

  // --- export ------------------------------------------------------------
  //
  // The "sim" object alone: per-host ledgers plus busy/coverage from the
  // busy provider. Byte-identical same-seed; this is what gets hashed.
  std::string ExportProfileSimJson() const;
  // Full {"profile":{"sim":...,"wall":...}} object (wall ns values are
  // machine-dependent — out of every pinned hash).
  std::string ExportProfileJson() const;
  // Collapsed-stack rendering ("a;b;c <exclusive_ns>" lines, sorted) for
  // FlameGraph / speedscope.
  std::string ExportProfileFolded() const;
  // FNV-1a over ExportProfileSimJson() bytes.
  uint64_t ProfileSimHash() const;
  // Lowest per-host coverage (basis points of attributed/busy) over hosts
  // with nonzero busy time; 10000 when the provider reports none. The fig5
  // acceptance bar is >= 9900 on every host.
  uint64_t MinCoverageBp() const;

  uint64_t ns_from_ticks(uint64_t ticks) const;
  uint64_t dropped_scopes() const { return dropped_scopes_; }
  // Calibration readbacks (diagnostics): the per-pair overhead constants
  // subtracted at pop, in ns.
  uint64_t overhead_self_ns() const { return ns_from_ticks(ovh_self_ticks_); }
  uint64_t overhead_nested_ns() const { return ns_from_ticks(ovh_nested_ticks_); }

 private:
  static constexpr size_t kMaxDepth = 32;
  static constexpr size_t kMaxNodes = 256;

  struct Node {
    ProfScope scope;
    uint32_t parent = 0;       // node index; 0 = synthetic root
    uint32_t first_child = 0;  // 0 = none (root is never a child)
    uint32_t next_sibling = 0;
    uint64_t count = 0;
    uint64_t ticks = 0;        // inclusive, overhead-adjusted
    uint64_t child_ticks = 0;  // sum of direct children's inclusive ticks
  };
  struct Frame {
    uint32_t node;
    uint64_t start;
    uint64_t pops_at_push;
    uint64_t child_ticks;
  };

  uint32_t FindOrAddChild(uint32_t parent, ProfScope scope) {
    for (uint32_t c = nodes_[parent].first_child; c != 0; c = nodes_[c].next_sibling) {
      if (nodes_[c].scope == scope) {
        return c;
      }
    }
    if (node_count_ >= kMaxNodes) {
      return parent;  // pool exhausted: fold into the parent, never allocate
    }
    const uint32_t idx = node_count_++;
    Node& n = nodes_[idx];
    n.scope = scope;
    n.parent = parent;
    n.first_child = 0;
    n.next_sibling = nodes_[parent].first_child;
    n.count = 0;
    n.ticks = 0;
    n.child_ticks = 0;
    nodes_[parent].first_child = idx;
    return idx;
  }

  void Calibrate();
  void AppendWallJson(std::string& out) const;

  Node nodes_[kMaxNodes];
  uint32_t node_count_ = 1;  // node 0 is the synthetic root
  Frame stack_[kMaxDepth];
  size_t depth_ = 0;
  uint64_t pops_ = 0;
  uint64_t dropped_scopes_ = 0;

  // Calibration: ns per raw tick (scaled by 2^20 for integer math) and the
  // two per-pair overhead constants, all measured at construction.
  uint64_t ns_per_tick_shifted_ = 1 << 20;  // ns = ticks * this >> 20
  uint64_t ovh_self_ticks_ = 0;
  uint64_t ovh_nested_ticks_ = 0;

  std::map<uint32_t, std::array<uint64_t, kNumLedgerCats>> ledger_;
  BusyProvider busy_provider_;
};

// Null-safe ledger charge: `ledger` is the pointer cached from LedgerFor
// (null when profiling is off) — one branch, one add.
inline void ChargeSim(uint64_t* ledger, LedgerCat cat, SimTime dur) {
  if (ledger != nullptr) {
    ledger[static_cast<size_t>(cat)] += dur;
  }
}

}  // namespace slice::obs

#endif  // SLICE_OBS_PROFILER_H_
