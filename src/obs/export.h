// Trace export: merges recorded spans into a chrome://tracing-compatible
// JSON document (load it in Perfetto / chrome://tracing to see one lane per
// host with every hop of every request), and reduces a trace to a stable
// content hash — the backbone of the same-seed trace-replay regression test:
// any behaviour change (extra retransmit, misroute, lost failover hold)
// shows up as a hash diff.
#ifndef SLICE_OBS_EXPORT_H_
#define SLICE_OBS_EXPORT_H_

#include <string>
#include <vector>

#include "src/obs/trace.h"

namespace slice::obs {

// Spans sorted into the canonical export order: (start, end, host, trace_id,
// span_id). Span ids are deterministic counters, so this order — and
// everything derived from it — is stable run-to-run for a given seed.
std::vector<Span> CanonicalOrder(std::vector<Span> spans);

// Chrome trace event format: complete ("X") events for spans, instant ("i")
// events for markers; pid = host address, tid = trace id.
std::string ExportChromeTrace(const std::vector<Span>& spans);

// FNV-1a over every field of every span in canonical order.
uint64_t TraceContentHash(const std::vector<Span>& spans);

}  // namespace slice::obs

#endif  // SLICE_OBS_EXPORT_H_
