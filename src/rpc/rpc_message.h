// ONC RPC v2 (RFC 1831) message framing over UDP datagrams.
//
// Calls carry AUTH_SYS credentials (RFC 1831 appendix) with a variable-length
// machine name and gid list — the variable-length header fields the paper
// identifies as the dominant µproxy decode cost (§5, Table 3).
#ifndef SLICE_RPC_RPC_MESSAGE_H_
#define SLICE_RPC_RPC_MESSAGE_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/xdr/xdr.h"

namespace slice {

constexpr uint32_t kRpcVersion = 2;

enum class RpcMsgType : uint32_t { kCall = 0, kReply = 1 };
enum class RpcReplyStat : uint32_t { kAccepted = 0, kDenied = 1 };
enum class RpcAcceptStat : uint32_t {
  kSuccess = 0,
  kProgUnavail = 1,
  kProgMismatch = 2,
  kProcUnavail = 3,
  kGarbageArgs = 4,
  kSystemErr = 5,
};

enum class RpcAuthFlavor : uint32_t { kNone = 0, kSys = 1 };

struct AuthSysCred {
  uint32_t stamp = 0;
  std::string machine_name = "client";
  uint32_t uid = 0;
  uint32_t gid = 0;
  std::vector<uint32_t> gids;
};

// Decode-side AUTH_SYS credential, parsed in place from the wire. The
// machine name is a view into the decoded buffer (valid only while that
// buffer lives) and the gid list is a bounded inline array — RFC 1831 caps
// AUTH_SYS at 16 gids, which the decoder enforces — so materializing a
// credential never touches the heap.
struct AuthSysCredView {
  static constexpr uint32_t kMaxGids = 16;

  struct GidList {
    std::array<uint32_t, kMaxGids> v{};
    uint32_t count = 0;
    size_t size() const { return count; }
    bool empty() const { return count == 0; }
    uint32_t operator[](size_t i) const { return v[i]; }
  };

  uint32_t stamp = 0;
  std::string_view machine_name;
  uint32_t uid = 0;
  uint32_t gid = 0;
  GidList gids;
};

struct RpcCall {
  uint32_t xid = 0;
  uint32_t prog = 0;
  uint32_t vers = 0;
  uint32_t proc = 0;
  AuthSysCred cred;
  Bytes args;  // procedure-specific XDR body

  Bytes Encode() const;
};

struct RpcReply {
  uint32_t xid = 0;
  RpcAcceptStat stat = RpcAcceptStat::kSuccess;
  Bytes result;  // procedure-specific XDR body (valid when stat == kSuccess)

  Bytes Encode() const;
};

// Decoded view of an incoming message. A true view: `cred.machine_name` and
// `body` alias the buffer passed to DecodeRpcMessage and are valid only
// while it lives — dispatch paths consume the view synchronously, while the
// packet is still in scope (the same packet-view lifetime rule as DESIGN.md
// §7's µproxy decode views).
struct RpcMessageView {
  RpcMsgType type = RpcMsgType::kCall;
  uint32_t xid = 0;
  // For calls:
  uint32_t prog = 0;
  uint32_t vers = 0;
  uint32_t proc = 0;
  AuthSysCredView cred;
  // For replies:
  RpcAcceptStat accept_stat = RpcAcceptStat::kSuccess;
  // Offset of the procedure body within the decoded buffer, and its bytes.
  size_t body_offset = 0;
  ByteSpan body;
};

Result<RpcMessageView> DecodeRpcMessage(ByteSpan data);

// Fast-path peek used by the µproxy: extracts (xid, msg type) and, for calls,
// (prog, vers, proc) plus the byte offset where the procedure arguments
// begin — skipping over the variable-length credential/verifier without
// materializing it. Mirrors the header walk the paper's µproxy performs.
struct RpcPeek {
  RpcMsgType type = RpcMsgType::kCall;
  uint32_t xid = 0;
  uint32_t prog = 0;
  uint32_t vers = 0;
  uint32_t proc = 0;
  RpcAcceptStat accept_stat = RpcAcceptStat::kSuccess;
  size_t body_offset = 0;  // offset of proc args (call) / results (reply)
  // Tenant tag riding in the AUTH_SYS uid (calls only; 0 = untenanted).
  // Read in place from the credential bytes during the skip walk.
  uint32_t tenant = 0;
};

Result<RpcPeek> PeekRpcMessage(ByteSpan data);

}  // namespace slice

#endif  // SLICE_RPC_RPC_MESSAGE_H_
