// Server-node skeleton: receives RPC calls from the simulated network,
// dispatches to a subclass handler, charges simulated service time (CPU +
// any disk completions the handler reports), and replies.
//
// Includes a duplicate-request cache so retransmitted non-idempotent calls
// (create, remove, rename...) return the original reply instead of
// re-executing — standard NFS/UDP server behavior that the loss-injection
// tests depend on.
#ifndef SLICE_RPC_RPC_SERVER_H_
#define SLICE_RPC_RPC_SERVER_H_

#include <deque>
#include <unordered_set>
#include <memory>
#include <unordered_map>

#include "src/net/host.h"
#include "src/obs/eventlog.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/rpc/rpc_message.h"
#include "src/sim/event_queue.h"

namespace slice {

// Accumulates the simulated cost of servicing one request.
class ServiceCost {
 public:
  void AddCpu(SimTime t) { cpu_ += t; }
  // Records an asynchronous completion (e.g. a disk I/O finishing at `t`).
  void MergeCompletion(SimTime t) {
    if (t > completion_) {
      completion_ = t;
    }
  }
  SimTime cpu() const { return cpu_; }
  SimTime completion() const { return completion_; }

 private:
  SimTime cpu_ = 0;
  SimTime completion_ = 0;
};

struct RpcServerParams {
  size_t duplicate_cache_entries = 4096;
};

class RpcServerNode {
 public:
  RpcServerNode(Network& net, EventQueue& queue, NetAddr addr, NetPort port,
                RpcServerParams params = {});
  virtual ~RpcServerNode();

  RpcServerNode(const RpcServerNode&) = delete;
  RpcServerNode& operator=(const RpcServerNode&) = delete;

  Endpoint endpoint() const { return Endpoint{host_->addr(), port_}; }
  NetAddr addr() const { return host_->addr(); }
  Network& network() { return net_; }
  EventQueue& queue() { return queue_; }
  SimTime now() const { return queue_.now(); }
  Host& host() { return *host_; }

  // Crash simulation: a failed node drops all traffic. Restart() clears the
  // failure and invokes OnRestart() so subclasses can run recovery.
  void Fail();
  void Restart();
  bool failed() const { return failed_; }

  uint64_t requests_served() const { return requests_served_; }
  uint64_t duplicates_answered() const { return duplicates_answered_; }
  const BusyResource& cpu() const { return cpu_; }

  // Observability: requests carrying a trace trailer get queue/CPU/service
  // spans, and their replies carry the context back. Virtual so servers with
  // internal clients (small-file server, WAL-backed managers) can forward
  // the tracer to them; overrides must call the base.
  virtual void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Metrics plane: registers this node's request/DRC/CPU instruments against
  // its host registry, all provider-backed (nothing added to the request hot
  // path). Virtual so subclasses can register their own instruments on top;
  // overrides must call the base.
  virtual void set_metrics(obs::Metrics* metrics);

  // Event log: node kill/recover and DRC duplicate replays are recorded so
  // crash-driven failovers have a causal trail. Subclasses may override to
  // wire nested components (e.g. the dir WAL).
  virtual void set_eventlog(obs::EventLog* log) { eventlog_ = log; }

  // Profiler: the rpc.dispatch wall scope around every served call plus
  // cpu/queue sim-time charges at the CPU acquire point. Virtual so
  // subclasses with nested scopes (storage cache/disk, dir name ops) can
  // hook the same call; overrides must call the base.
  virtual void set_profiler(obs::Profiler* profiler) {
    profiler_ = profiler;
    prof_ledger_ = profiler != nullptr ? profiler->LedgerFor(addr()) : nullptr;
  }

 protected:
  obs::Tracer* tracer() const { return tracer_; }
  obs::Metrics* metrics() const { return metrics_; }
  obs::EventLog* eventlog() const { return eventlog_; }
  obs::Profiler* profiler() const { return profiler_; }
  uint64_t* prof_ledger() const { return prof_ledger_; }
  // Completion functor for asynchronous dispatch: subclasses call it exactly
  // once with the accept stat, encoded result body, and accumulated cost.
  using ReplyFn = std::function<void(RpcAcceptStat, Bytes, ServiceCost)>;

  // Subclass request handler. Decodes args from `call.body`, encodes the
  // procedure-specific result into `reply`, reports simulated time in
  // `cost`. Returning a non-success accept stat suppresses `reply`.
  virtual RpcAcceptStat HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                                   ServiceCost& cost) = 0;

  // Dispatch hook. The default implementation runs HandleCall synchronously;
  // servers whose handlers must wait on their own network I/O (e.g. the
  // small-file server fetching from the storage array) override this and
  // invoke `done` when the reply is ready.
  virtual void DispatchCall(const RpcMessageView& call, const Endpoint& client, ReplyFn done);

  // Recovery hook; default does nothing.
  virtual void OnRestart() {}

  // For subclasses that originate their own traffic (e.g. log writes).
  void SendPacket(Packet&& pkt) { host_->Send(std::move(pkt)); }

 private:
  void OnPacket(Packet&& pkt);

  Network& net_;
  EventQueue& queue_;
  std::unique_ptr<Host> host_;
  NetPort port_;
  RpcServerParams params_;
  obs::Tracer* tracer_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  obs::EventLog* eventlog_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  uint64_t* prof_ledger_ = nullptr;  // cached LedgerFor(addr()); null when off
  BusyResource cpu_;
  bool failed_ = false;
  uint64_t requests_served_ = 0;
  uint64_t duplicates_answered_ = 0;
  // Per-tenant request counts (index j = tenant j+1, from the AUTH_SYS uid).
  // Sized once by set_metrics when the hub has tenants configured; empty
  // otherwise, so the untenanted hot path pays one empty() check.
  std::vector<uint64_t> tenant_requests_;

  // Duplicate request cache keyed by (client endpoint, xid).
  struct DrcKey {
    uint64_t client;
    uint32_t xid;
    bool operator==(const DrcKey&) const = default;
  };
  struct DrcKeyHash {
    size_t operator()(const DrcKey& k) const {
      return std::hash<uint64_t>()(k.client ^ (static_cast<uint64_t>(k.xid) << 32));
    }
  };
  struct DrcKeySetHash {
    size_t operator()(const DrcKey& k) const { return DrcKeyHash{}(k); }
  };

  std::unordered_map<DrcKey, Bytes, DrcKeyHash> drc_;
  std::deque<DrcKey> drc_order_;
  // Calls whose async dispatch has not completed yet; duplicates of these
  // are dropped (the client's retransmission will find the DRC entry later).
  std::unordered_set<DrcKey, DrcKeySetHash> in_progress_;
};

}  // namespace slice

#endif  // SLICE_RPC_RPC_SERVER_H_
