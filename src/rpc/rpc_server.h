// Server-node skeleton: receives RPC calls from the simulated network,
// dispatches to a subclass handler, charges simulated service time (CPU +
// any disk completions the handler reports), and replies.
//
// Includes a duplicate-request cache so retransmitted non-idempotent calls
// (create, remove, rename...) return the original reply instead of
// re-executing — standard NFS/UDP server behavior that the loss-injection
// tests depend on.
//
// Fast-path discipline (DESIGN.md, server-side pools): the reply envelope is
// encoded into a member scratch encoder, the DRC is a fixed reply ring plus
// a flat open-addressing index, the completion token is a concrete value
// (not a std::function), and the deferred reply send rides the network
// flight heap — so a steady-state served request never touches the heap.
#ifndef SLICE_RPC_RPC_SERVER_H_
#define SLICE_RPC_RPC_SERVER_H_

#include <memory>
#include <vector>

#include "src/core/pending_map.h"
#include "src/net/host.h"
#include "src/obs/eventlog.h"
#include "src/obs/metrics.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/rpc/rpc_message.h"
#include "src/sim/event_queue.h"

namespace slice {

// Accumulates the simulated cost of servicing one request.
class ServiceCost {
 public:
  void AddCpu(SimTime t) { cpu_ += t; }
  // Records an asynchronous completion (e.g. a disk I/O finishing at `t`).
  void MergeCompletion(SimTime t) {
    if (t > completion_) {
      completion_ = t;
    }
  }
  SimTime cpu() const { return cpu_; }
  SimTime completion() const { return completion_; }

 private:
  SimTime cpu_ = 0;
  SimTime completion_ = 0;
};

struct RpcServerParams {
  size_t duplicate_cache_entries = 4096;
};

// Duplicate-request cache key. The identity must cover the full call, not
// just (client, xid): xids are a per-client-socket sequence, so a
// retransmitted xid arriving for a different program/version/procedure must
// execute rather than replay the wrong cached reply (RFC 1813 DRC guidance).
struct DrcKey {
  uint64_t client = 0;  // (addr << 16) | port
  uint32_t xid = 0;
  uint32_t prog = 0;
  uint32_t vers = 0;
  uint32_t proc = 0;
  bool operator==(const DrcKey&) const = default;
};

struct DrcKeyHash {
  uint64_t operator()(const DrcKey& k) const {
    return MixU64(k.client) ^
           MixU64((static_cast<uint64_t>(k.xid) << 32) | k.proc) ^
           MixU64((static_cast<uint64_t>(k.prog) << 32) | k.vers);
  }
};

// Duplicate-request cache: a fixed FIFO ring of completed replies plus a
// flat open-addressing index, replacing the unordered_map + deque +
// unordered_set trio. In steady state a completing call reuses the evicted
// ring slot's wire buffer and the flat index never allocates. Semantics are
// unchanged: completed entries are evicted FIFO in completion order, an
// evicted key that re-executes re-enters the FIFO as a fresh entry, and
// calls still executing are marked in-progress so their duplicates can be
// dropped.
class DuplicateRequestCache {
 public:
  explicit DuplicateRequestCache(size_t capacity)
      : ring_(capacity > 0 ? capacity : 1), index_(2 * ring_.size()) {}

  // The cached reply wire for `key`, or null (unknown, or still executing).
  const Bytes* FindReply(const DrcKey& key) const {
    const uint32_t* slot = index_.Find(key);
    if (slot == nullptr || *slot == kInProgress) {
      return nullptr;
    }
    return &ring_[*slot].wire;
  }

  bool InProgress(const DrcKey& key) const {
    const uint32_t* slot = index_.Find(key);
    return slot != nullptr && *slot == kInProgress;
  }

  // Marks `key` as executing; the caller drops duplicates that arrive before
  // CompleteCall via InProgress().
  void BeginCall(const DrcKey& key) { *index_.Insert(key).first = kInProgress; }

  // Records the encoded reply, evicting the oldest completed entry when the
  // ring is full. The victim's wire buffer keeps its capacity.
  void CompleteCall(const DrcKey& key, ByteSpan wire) {
    index_.Erase(key);  // clear the in-progress marker
    Entry& e = ring_[head_];
    if (count_ == ring_.size()) {
      index_.Erase(e.key);  // FIFO eviction of the oldest entry
    } else {
      ++count_;
    }
    e.key = key;
    e.wire.assign(wire.begin(), wire.end());
    *index_.Insert(key).first = static_cast<uint32_t>(head_);
    head_ = (head_ + 1) % ring_.size();
  }

  void Clear() {
    index_.Clear();
    head_ = 0;
    count_ = 0;  // ring buffers keep their capacity for reuse
  }

  size_t size() const { return count_; }

 private:
  // Ring capacities sit far below 2^32-1, so the top value is a free
  // in-progress sentinel in the slot index.
  static constexpr uint32_t kInProgress = 0xffffffffu;
  struct Entry {
    DrcKey key{};
    Bytes wire;
  };
  std::vector<Entry> ring_;
  FlatMap<DrcKey, uint32_t, DrcKeyHash> index_;
  size_t head_ = 0;
  size_t count_ = 0;
};

class RpcServerNode {
 public:
  RpcServerNode(Network& net, EventQueue& queue, NetAddr addr, NetPort port,
                RpcServerParams params = {});
  virtual ~RpcServerNode();

  RpcServerNode(const RpcServerNode&) = delete;
  RpcServerNode& operator=(const RpcServerNode&) = delete;

  Endpoint endpoint() const { return Endpoint{host_->addr(), port_}; }
  NetAddr addr() const { return host_->addr(); }
  Network& network() { return net_; }
  EventQueue& queue() { return queue_; }
  SimTime now() const { return queue_.now(); }
  Host& host() { return *host_; }

  // Crash simulation: a failed node drops all traffic. Restart() clears the
  // failure and invokes OnRestart() so subclasses can run recovery.
  void Fail();
  void Restart();
  bool failed() const { return failed_; }

  uint64_t requests_served() const { return requests_served_; }
  uint64_t duplicates_answered() const { return duplicates_answered_; }
  const BusyResource& cpu() const { return cpu_; }

  // Observability: requests carrying a trace trailer get queue/CPU/service
  // spans, and their replies carry the context back. Virtual so servers with
  // internal clients (small-file server, WAL-backed managers) can forward
  // the tracer to them; overrides must call the base.
  virtual void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Metrics plane: registers this node's request/DRC/CPU instruments against
  // its host registry, all provider-backed (nothing added to the request hot
  // path). Virtual so subclasses can register their own instruments on top;
  // overrides must call the base.
  virtual void set_metrics(obs::Metrics* metrics);

  // Event log: node kill/recover and DRC duplicate replays are recorded so
  // crash-driven failovers have a causal trail. Subclasses may override to
  // wire nested components (e.g. the dir WAL).
  virtual void set_eventlog(obs::EventLog* log) { eventlog_ = log; }

  // Profiler: the rpc.dispatch wall scope around every served call plus
  // cpu/queue sim-time charges at the CPU acquire point. Virtual so
  // subclasses with nested scopes (storage cache/disk, dir name ops) can
  // hook the same call; overrides must call the base.
  virtual void set_profiler(obs::Profiler* profiler) {
    profiler_ = profiler;
    prof_ledger_ = profiler != nullptr ? profiler->LedgerFor(addr()) : nullptr;
  }

 protected:
  obs::Tracer* tracer() const { return tracer_; }
  obs::Metrics* metrics() const { return metrics_; }
  obs::EventLog* eventlog() const { return eventlog_; }
  obs::Profiler* profiler() const { return profiler_; }
  uint64_t* prof_ledger() const { return prof_ledger_; }

  // Completion token for asynchronous dispatch: subclasses invoke it exactly
  // once with the accept stat, encoded result body, and accumulated cost. A
  // concrete copyable value (node pointer + call identity) rather than a
  // std::function — moving it through async continuation chains (the
  // small-file server's backing fetches) never allocates.
  class ReplyFn {
   public:
    ReplyFn() = default;
    void operator()(RpcAcceptStat stat, const Bytes& result, const ServiceCost& cost) {
      node_->CompleteCall(key_, client_, trace_, stat, ByteSpan(result), cost);
    }

   private:
    friend class RpcServerNode;
    ReplyFn(RpcServerNode* node, const DrcKey& key, const Endpoint& client,
            const obs::TraceContext& trace)
        : node_(node), key_(key), client_(client), trace_(trace) {}

    RpcServerNode* node_ = nullptr;
    DrcKey key_{};
    Endpoint client_{};
    obs::TraceContext trace_{};
  };

  // Subclass request handler. Decodes args from `call.body`, encodes the
  // procedure-specific result into `reply`, reports simulated time in
  // `cost`. Returning a non-success accept stat suppresses `reply`.
  virtual RpcAcceptStat HandleCall(const RpcMessageView& call, XdrEncoder& reply,
                                   ServiceCost& cost) = 0;

  // Dispatch hook. The default implementation runs HandleCall synchronously
  // into a member scratch encoder; servers whose handlers must wait on their
  // own network I/O (e.g. the small-file server fetching from the storage
  // array) override this and invoke `done` when the reply is ready.
  virtual void DispatchCall(const RpcMessageView& call, const Endpoint& client, ReplyFn done);

  // Recovery hook; default does nothing.
  virtual void OnRestart() {}

  // For subclasses that originate their own traffic (e.g. log writes).
  void SendPacket(Packet&& pkt) { host_->Send(std::move(pkt)); }

 private:
  void OnPacket(Packet&& pkt);
  // The single completion point behind ReplyFn: encodes the reply envelope
  // around `result` into the member scratch, records it in the DRC, charges
  // CPU/queue time, and schedules the deferred send flight at the
  // service-done instant.
  void CompleteCall(const DrcKey& key, const Endpoint& client,
                    const obs::TraceContext& trace, RpcAcceptStat stat, ByteSpan result,
                    const ServiceCost& cost);

  Network& net_;
  EventQueue& queue_;
  std::unique_ptr<Host> host_;
  NetPort port_;
  RpcServerParams params_;
  obs::Tracer* tracer_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  obs::EventLog* eventlog_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  uint64_t* prof_ledger_ = nullptr;  // cached LedgerFor(addr()); null when off
  BusyResource cpu_;
  bool failed_ = false;
  uint64_t requests_served_ = 0;
  uint64_t duplicates_answered_ = 0;
  // Per-tenant request counts (index j = tenant j+1, from the AUTH_SYS uid).
  // Sized once by set_metrics when the hub has tenants configured; empty
  // otherwise, so the untenanted hot path pays one empty() check.
  std::vector<uint64_t> tenant_requests_;

  DuplicateRequestCache drc_;
  // Reply-envelope scratch and the default sync dispatch's result scratch
  // (capacities reused across calls). Distinct buffers: CompleteCall runs
  // inside DispatchCall while the result scratch is still being read.
  XdrEncoder reply_enc_;
  XdrEncoder dispatch_result_;
};

}  // namespace slice

#endif  // SLICE_RPC_RPC_SERVER_H_
