#include "src/rpc/rpc_client.h"

#include <cmath>

#include "src/common/logging.h"

namespace slice {

RpcClient::RpcClient(Host& host, EventQueue& queue, RpcClientParams params)
    : host_(host), queue_(queue), params_(params) {
  port_ = host_.Bind(0, [this](Packet&& pkt) { OnPacket(std::move(pkt)); });
}

RpcClient::~RpcClient() {
  *alive_ = false;
  host_.Unbind(port_);
}

void RpcClient::Call(Endpoint server, uint32_t prog, uint32_t vers, uint32_t proc, Bytes args,
                     ResponseHandler handler) {
  const uint32_t xid = next_xid_++;
  RpcCall call;
  call.xid = xid;
  call.prog = prog;
  call.vers = vers;
  call.proc = proc;
  call.cred.machine_name = "host" + std::to_string(host_.addr() & 0xff);
  call.cred.uid = tenant_;
  call.cred.gids = {0, 5};
  call.args = std::move(args);

  PendingCall pending;
  pending.server = server;
  pending.wire = call.Encode();
  pending.handler = std::move(handler);
  pending.generation = next_generation_++;
  if (tracer_ != nullptr) {
    pending.trace = tracer_->current();
  }
  pending_.emplace(xid, std::move(pending));

  Transmit(xid);
}

void RpcClient::Transmit(uint32_t xid) {
  auto it = pending_.find(xid);
  if (it == pending_.end()) {
    return;
  }
  PendingCall& pc = it->second;

  if (pc.transmissions >= params_.max_transmissions) {
    ResponseHandler handler = std::move(pc.handler);
    const obs::TraceContext trace = pc.trace;
    pending_.erase(it);
    if (tracer_ != nullptr) {
      tracer_->RecordInstant(host_.addr(), trace, "rpc_give_up", queue_.now());
    }
    obs::LogEvent(eventlog_, host_.addr(), queue_.now(), obs::EventSev::kError,
                  obs::EventCat::kRpc, obs::EventCode::kRpcGiveUp, trace.trace_id, nullptr,
                  {{"xid", xid}, {"tries", params_.max_transmissions}});
    RpcMessageView empty;
    obs::ScopedContext scope(tracer_, trace);
    handler(Status(StatusCode::kTimedOut, "rpc: call timed out"), empty);
    return;
  }

  if (pc.transmissions > 0) {
    ++retransmissions_;
    if (tracer_ != nullptr) {
      tracer_->RecordInstant(host_.addr(), pc.trace, "rpc_retransmit", queue_.now());
    }
    obs::LogEvent(eventlog_, host_.addr(), queue_.now(), obs::EventSev::kWarn,
                  obs::EventCat::kRpc, obs::EventCode::kRpcRetransmit, pc.trace.trace_id,
                  nullptr, {{"xid", xid}, {"attempt", pc.transmissions + 1}});
    SLICE_DLOG << "rpc: retransmit xid=" << xid << " attempt=" << pc.transmissions + 1;
  }
  ++pc.transmissions;
  ++calls_sent_;

  Packet pkt = Packet::MakeUdp(local(), pc.server, pc.wire);
  if (tracer_ != nullptr && pc.trace.valid()) {
    pkt.AttachTrace(pc.trace.trace_id, pc.trace.span_id);
  }
  host_.Send(std::move(pkt));

  // Clamp in double space: pow() runs away long before the cast back to
  // SimTime would saturate, so the comparison must happen before the cast.
  const double scale =
      pc.transmissions > 1
          ? std::pow(params_.backoff_factor, static_cast<double>(pc.transmissions - 1))
          : 1.0;
  const double scaled = static_cast<double>(params_.retransmit_timeout) * scale;
  const double ceiling = static_cast<double>(params_.max_retransmit_timeout);
  const SimTime timeout = static_cast<SimTime>(scaled < ceiling ? scaled : ceiling);
  ArmTimer(xid, timeout);
}

void RpcClient::ArmTimer(uint32_t xid, SimTime timeout) {
  auto it = pending_.find(xid);
  SLICE_CHECK(it != pending_.end());
  const uint64_t generation = it->second.generation;
  queue_.ScheduleAfter(timeout, [this, xid, generation, alive = alive_]() {
    if (!*alive) {
      return;
    }
    auto timer_it = pending_.find(xid);
    if (timer_it == pending_.end() || timer_it->second.generation != generation) {
      return;  // already answered (or replaced)
    }
    Transmit(xid);
  });
}

void RpcClient::OnPacket(Packet&& pkt) {
  Result<RpcMessageView> decoded = DecodeRpcMessage(pkt.payload());
  if (!decoded.ok() || decoded->type != RpcMsgType::kReply) {
    SLICE_WLOG << "rpc: dropping undecodable packet on client port";
    return;
  }
  auto it = pending_.find(decoded->xid);
  if (it == pending_.end()) {
    return;  // duplicate reply after retransmission; ignore
  }
  ResponseHandler handler = std::move(it->second.handler);
  const obs::TraceContext trace = it->second.trace;
  pending_.erase(it);

  // Restore the originating context so the handler's own nested calls (and
  // any spans it records) stay in the same trace.
  obs::ScopedContext scope(tracer_, trace);
  if (decoded->accept_stat != RpcAcceptStat::kSuccess) {
    handler(Status(StatusCode::kInternal,
                   "rpc: accept_stat=" +
                       std::to_string(static_cast<uint32_t>(decoded->accept_stat))),
            *decoded);
    return;
  }
  handler(OkStatus(), *decoded);
}

}  // namespace slice
