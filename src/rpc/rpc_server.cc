#include "src/rpc/rpc_server.h"

#include "src/common/logging.h"

namespace slice {

RpcServerNode::RpcServerNode(Network& net, EventQueue& queue, NetAddr addr, NetPort port,
                             RpcServerParams params)
    : net_(net), queue_(queue), host_(std::make_unique<Host>(net, addr)), port_(port),
      params_(params) {
  host_->Bind(port_, [this](Packet&& pkt) { OnPacket(std::move(pkt)); });
}

RpcServerNode::~RpcServerNode() = default;

void RpcServerNode::Fail() {
  failed_ = true;
  net_.SetHostFailed(host_->addr(), true);
}

void RpcServerNode::Restart() {
  failed_ = false;
  net_.SetHostFailed(host_->addr(), false);
  drc_.clear();
  drc_order_.clear();
  in_progress_.clear();
  OnRestart();
}

void RpcServerNode::DispatchCall(const RpcMessageView& call, const Endpoint& client,
                                 ReplyFn done) {
  (void)client;
  XdrEncoder result;
  ServiceCost cost;
  const RpcAcceptStat stat = HandleCall(call, result, cost);
  done(stat, result.Take(), cost);
}

void RpcServerNode::OnPacket(Packet&& pkt) {
  Result<RpcMessageView> decoded = DecodeRpcMessage(pkt.payload());
  if (!decoded.ok() || decoded->type != RpcMsgType::kCall) {
    SLICE_WLOG << "rpc-server: undecodable packet from " << EndpointToString(pkt.src());
    return;
  }

  const Endpoint client = pkt.src();
  const DrcKey key{(static_cast<uint64_t>(client.addr) << 16) | client.port, decoded->xid};

  if (auto cached = drc_.find(key); cached != drc_.end()) {
    ++duplicates_answered_;
    SendPacket(Packet::MakeUdp(endpoint(), client, cached->second));
    return;
  }
  if (in_progress_.contains(key)) {
    return;  // async execution already under way; let the DRC answer later
  }
  in_progress_.insert(key);

  const uint32_t xid = decoded->xid;
  DispatchCall(*decoded, client,
               [this, key, client, xid](RpcAcceptStat stat, Bytes result, ServiceCost cost) {
                 RpcReply reply;
                 reply.xid = xid;
                 reply.stat = stat;
                 if (stat == RpcAcceptStat::kSuccess) {
                   reply.result = std::move(result);
                 }
                 Bytes wire = reply.Encode();

                 in_progress_.erase(key);
                 drc_.emplace(key, wire);
                 drc_order_.push_back(key);
                 while (drc_order_.size() > params_.duplicate_cache_entries) {
                   drc_.erase(drc_order_.front());
                   drc_order_.pop_front();
                 }

                 ++requests_served_;

                 const SimTime cpu_done = cpu_.Acquire(queue_.now(), cost.cpu());
                 const SimTime done_at =
                     cpu_done > cost.completion() ? cpu_done : cost.completion();
                 const Endpoint self = endpoint();
                 queue_.ScheduleAt(done_at, [this, self, client, wire = std::move(wire)]() mutable {
                   SendPacket(Packet::MakeUdp(self, client, wire));
                 });
               });
}

}  // namespace slice
