#include "src/rpc/rpc_server.h"

#include <algorithm>
#include <cstdio>

#include "src/common/logging.h"

namespace slice {

RpcServerNode::RpcServerNode(Network& net, EventQueue& queue, NetAddr addr, NetPort port,
                             RpcServerParams params)
    : net_(net), queue_(queue), host_(std::make_unique<Host>(net, addr)), port_(port),
      params_(params), drc_(params_.duplicate_cache_entries) {
  host_->Bind(port_, [this](Packet&& pkt) { OnPacket(std::move(pkt)); });
}

RpcServerNode::~RpcServerNode() = default;

void RpcServerNode::set_metrics(obs::Metrics* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr || !metrics_->enabled()) {
    return;
  }
  obs::MetricsRegistry& reg = metrics_->Registry(addr());
  reg.GetCounter("srv_requests")->SetProvider([this]() { return requests_served_; });
  reg.GetCounter("srv_drc_replays")->SetProvider([this]() { return duplicates_answered_; });
  reg.GetCounter("srv_cpu_busy_ns")->SetProvider([this]() {
    return static_cast<uint64_t>(cpu_.total_busy_time());
  });
  reg.GetGauge("srv_cpu_backlog_ns")->SetProvider([this]() -> int64_t {
    const auto backlog =
        static_cast<int64_t>(cpu_.busy_until()) - static_cast<int64_t>(queue_.now());
    return backlog > 0 ? backlog : 0;
  });
  // Tenant plane (opt-in: registered only when tenants are configured, so
  // untenanted metrics exports stay byte-identical to older builds). Shows
  // which tenant's requests land on which node — the demand side of the
  // hotspot picture.
  if (const uint32_t tenants = metrics_->num_tenants(); tenants > 0) {
    tenant_requests_.assign(tenants, 0);
    for (uint32_t j = 0; j < tenants; ++j) {
      char name[32];
      std::snprintf(name, sizeof(name), "srv_tenant%u_requests", j + 1);
      reg.GetCounter(name)->SetProvider([this, j]() { return tenant_requests_[j]; });
    }
  }
}

void RpcServerNode::Fail() {
  failed_ = true;
  net_.SetHostFailed(host_->addr(), true);
  obs::LogEvent(eventlog_, addr(), queue_.now(), obs::EventSev::kError, obs::EventCat::kFailover,
                obs::EventCode::kNodeKill);
}

void RpcServerNode::Restart() {
  failed_ = false;
  net_.SetHostFailed(host_->addr(), false);
  // A restarted server has an empty DRC: retransmits of pre-crash calls
  // re-execute, which is exactly the at-least-once contract NFS retries
  // assume.
  drc_.Clear();
  obs::LogEvent(eventlog_, addr(), queue_.now(), obs::EventSev::kInfo, obs::EventCat::kFailover,
                obs::EventCode::kNodeRecover);
  OnRestart();
}

void RpcServerNode::DispatchCall(const RpcMessageView& call, const Endpoint& client,
                                 ReplyFn done) {
  (void)client;
  dispatch_result_.Clear();
  ServiceCost cost;
  const RpcAcceptStat stat = HandleCall(call, dispatch_result_, cost);
  CompleteCall(done.key_, done.client_, done.trace_, stat,
               ByteSpan(dispatch_result_.bytes()), cost);
}

void RpcServerNode::OnPacket(Packet&& pkt) {
  // Lift the span context off the wire (the trailer sits outside payload(),
  // so decoding below is oblivious to it either way).
  obs::TraceContext trace;
  if (tracer_ != nullptr || eventlog_ != nullptr) {
    pkt.PeekTrace(&trace.trace_id, &trace.span_id);
  }

  Result<RpcMessageView> decoded = DecodeRpcMessage(pkt.payload());
  if (!decoded.ok() || decoded->type != RpcMsgType::kCall) {
    SLICE_WLOG << "rpc-server: undecodable packet from " << EndpointToString(pkt.src());
    return;
  }

  const Endpoint client = pkt.src();
  const DrcKey key{(static_cast<uint64_t>(client.addr) << 16) | client.port, decoded->xid,
                   decoded->prog, decoded->vers, decoded->proc};

  if (const Bytes* cached = drc_.FindReply(key)) {
    ++duplicates_answered_;
    Packet out = Packet::MakeUdp(endpoint(), client, *cached);
    if (tracer_ != nullptr && trace.valid()) {
      tracer_->RecordInstant(addr(), trace, "drc_replay", queue_.now());
      out.AttachTrace(trace.trace_id, trace.span_id);
    }
    obs::LogEvent(eventlog_, addr(), queue_.now(), obs::EventSev::kInfo, obs::EventCat::kRpc,
                  obs::EventCode::kDrcReplay, trace.trace_id, nullptr,
                  {{"xid", decoded->xid}});
    SendPacket(std::move(out));
    return;
  }
  if (drc_.InProgress(key)) {
    return;  // async execution already under way; let the DRC answer later
  }
  drc_.BeginCall(key);

  // Tenant attribution from the decoded AUTH_SYS credential. Counted after
  // the DRC/in-progress checks: one executed request, one count.
  if (!tenant_requests_.empty()) {
    const uint32_t tenant = decoded->cred.uid;
    if (tenant >= 1 && tenant <= tenant_requests_.size()) {
      ++tenant_requests_[tenant - 1];
    }
  }

  // Run the dispatch under the request's context so handlers that issue
  // their own network I/O (small-file backing fetches, WAL appends) chain
  // those calls into this trace.
  obs::ScopedContext scope(tracer_, trace);
  obs::Profiler::Scope prof_scope(profiler_, obs::ProfScope::kRpcDispatch);
  DispatchCall(*decoded, client, ReplyFn(this, key, client, trace));
}

void RpcServerNode::CompleteCall(const DrcKey& key, const Endpoint& client,
                                 const obs::TraceContext& trace, RpcAcceptStat stat,
                                 ByteSpan result, const ServiceCost& cost) {
  // Reply envelope straight into the member scratch — bytes identical to the
  // old RpcReply::Encode (null verifier, opaque-fixed result body with XDR
  // padding), with no intermediate RpcReply/Bytes materialization.
  reply_enc_.Clear();
  reply_enc_.PutUint32(key.xid);
  reply_enc_.PutEnum(static_cast<uint32_t>(RpcMsgType::kReply));
  reply_enc_.PutEnum(static_cast<uint32_t>(RpcReplyStat::kAccepted));
  reply_enc_.PutEnum(static_cast<uint32_t>(RpcAuthFlavor::kNone));
  reply_enc_.PutUint32(0);  // zero-length verifier body
  reply_enc_.PutEnum(static_cast<uint32_t>(stat));
  if (stat == RpcAcceptStat::kSuccess) {
    reply_enc_.PutOpaqueFixed(result);
  }

  drc_.CompleteCall(key, ByteSpan(reply_enc_.bytes()));
  ++requests_served_;

  const SimTime ready_at = queue_.now();
  const SimTime cpu_start = std::max(cpu_.busy_until(), ready_at);
  const SimTime cpu_done = cpu_.Acquire(ready_at, cost.cpu());
  const SimTime done_at = cpu_done > cost.completion() ? cpu_done : cost.completion();
  obs::ChargeSim(prof_ledger_, obs::LedgerCat::kQueue, cpu_start - ready_at);
  obs::ChargeSim(prof_ledger_, obs::LedgerCat::kCpu, cost.cpu());
  if (tracer_ != nullptr && trace.valid()) {
    if (cpu_start > ready_at) {
      tracer_->RecordSpan(addr(), trace, obs::SpanCat::kQueue, "srv_cpu_wait", ready_at,
                          cpu_start);
    }
    if (cpu_done > cpu_start) {
      tracer_->RecordSpan(addr(), trace, obs::SpanCat::kCpu, "srv_cpu", cpu_start,
                          cpu_done);
    }
    if (done_at > cpu_done) {
      // Completion-bound tail (disk I/O finishing after the CPU); storage
      // nodes record the precise disk spans underneath this window.
      tracer_->RecordSpan(addr(), trace, obs::SpanCat::kService, "srv_completion",
                          cpu_done, done_at);
    }
  }

  // The reply is a deferred send flight, not a heap-allocated closure: the
  // wire bytes move into a pooled packet buffer now, and the network sends
  // it at the service-done instant. Ordering is identical to the old
  // ScheduleAt closure — a flight's paired drain draws from the same event
  // sequence the closure would have.
  Packet out = Packet::MakeUdp(endpoint(), client, ByteSpan(reply_enc_.bytes()));
  if (tracer_ != nullptr && trace.valid()) {
    out.AttachTrace(trace.trace_id, trace.span_id);
  }
  net_.SendAt(std::move(out), done_at);
}

}  // namespace slice
