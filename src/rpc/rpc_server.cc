#include "src/rpc/rpc_server.h"

#include <algorithm>
#include <cstdio>

#include "src/common/logging.h"

namespace slice {

RpcServerNode::RpcServerNode(Network& net, EventQueue& queue, NetAddr addr, NetPort port,
                             RpcServerParams params)
    : net_(net), queue_(queue), host_(std::make_unique<Host>(net, addr)), port_(port),
      params_(params) {
  host_->Bind(port_, [this](Packet&& pkt) { OnPacket(std::move(pkt)); });
}

RpcServerNode::~RpcServerNode() = default;

void RpcServerNode::set_metrics(obs::Metrics* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr || !metrics_->enabled()) {
    return;
  }
  obs::MetricsRegistry& reg = metrics_->Registry(addr());
  reg.GetCounter("srv_requests")->SetProvider([this]() { return requests_served_; });
  reg.GetCounter("srv_drc_replays")->SetProvider([this]() { return duplicates_answered_; });
  reg.GetCounter("srv_cpu_busy_ns")->SetProvider([this]() {
    return static_cast<uint64_t>(cpu_.total_busy_time());
  });
  reg.GetGauge("srv_cpu_backlog_ns")->SetProvider([this]() -> int64_t {
    const auto backlog =
        static_cast<int64_t>(cpu_.busy_until()) - static_cast<int64_t>(queue_.now());
    return backlog > 0 ? backlog : 0;
  });
  // Tenant plane (opt-in: registered only when tenants are configured, so
  // untenanted metrics exports stay byte-identical to older builds). Shows
  // which tenant's requests land on which node — the demand side of the
  // hotspot picture.
  if (const uint32_t tenants = metrics_->num_tenants(); tenants > 0) {
    tenant_requests_.assign(tenants, 0);
    for (uint32_t j = 0; j < tenants; ++j) {
      char name[32];
      std::snprintf(name, sizeof(name), "srv_tenant%u_requests", j + 1);
      reg.GetCounter(name)->SetProvider([this, j]() { return tenant_requests_[j]; });
    }
  }
}

void RpcServerNode::Fail() {
  failed_ = true;
  net_.SetHostFailed(host_->addr(), true);
  obs::LogEvent(eventlog_, addr(), queue_.now(), obs::EventSev::kError, obs::EventCat::kFailover,
                obs::EventCode::kNodeKill);
}

void RpcServerNode::Restart() {
  failed_ = false;
  net_.SetHostFailed(host_->addr(), false);
  drc_.clear();
  drc_order_.clear();
  in_progress_.clear();
  obs::LogEvent(eventlog_, addr(), queue_.now(), obs::EventSev::kInfo, obs::EventCat::kFailover,
                obs::EventCode::kNodeRecover);
  OnRestart();
}

void RpcServerNode::DispatchCall(const RpcMessageView& call, const Endpoint& client,
                                 ReplyFn done) {
  (void)client;
  XdrEncoder result;
  ServiceCost cost;
  const RpcAcceptStat stat = HandleCall(call, result, cost);
  done(stat, result.Take(), cost);
}

void RpcServerNode::OnPacket(Packet&& pkt) {
  // Lift the span context off the wire (the trailer sits outside payload(),
  // so decoding below is oblivious to it either way).
  obs::TraceContext trace;
  if (tracer_ != nullptr || eventlog_ != nullptr) {
    pkt.PeekTrace(&trace.trace_id, &trace.span_id);
  }

  Result<RpcMessageView> decoded = DecodeRpcMessage(pkt.payload());
  if (!decoded.ok() || decoded->type != RpcMsgType::kCall) {
    SLICE_WLOG << "rpc-server: undecodable packet from " << EndpointToString(pkt.src());
    return;
  }

  const Endpoint client = pkt.src();
  const DrcKey key{(static_cast<uint64_t>(client.addr) << 16) | client.port, decoded->xid};

  if (auto cached = drc_.find(key); cached != drc_.end()) {
    ++duplicates_answered_;
    Packet out = Packet::MakeUdp(endpoint(), client, cached->second);
    if (tracer_ != nullptr && trace.valid()) {
      tracer_->RecordInstant(addr(), trace, "drc_replay", queue_.now());
      out.AttachTrace(trace.trace_id, trace.span_id);
    }
    obs::LogEvent(eventlog_, addr(), queue_.now(), obs::EventSev::kInfo, obs::EventCat::kRpc,
                  obs::EventCode::kDrcReplay, trace.trace_id, nullptr,
                  {{"xid", decoded->xid}});
    SendPacket(std::move(out));
    return;
  }
  if (in_progress_.contains(key)) {
    return;  // async execution already under way; let the DRC answer later
  }
  in_progress_.insert(key);

  // Tenant attribution from the decoded AUTH_SYS credential. Counted after
  // the DRC/in-progress checks: one executed request, one count.
  if (!tenant_requests_.empty()) {
    const uint32_t tenant = decoded->cred.uid;
    if (tenant >= 1 && tenant <= tenant_requests_.size()) {
      ++tenant_requests_[tenant - 1];
    }
  }

  const uint32_t xid = decoded->xid;
  auto done = [this, key, client, xid, trace](RpcAcceptStat stat, Bytes result,
                                              ServiceCost cost) {
    RpcReply reply;
    reply.xid = xid;
    reply.stat = stat;
    if (stat == RpcAcceptStat::kSuccess) {
      reply.result = std::move(result);
    }
    Bytes wire = reply.Encode();

    in_progress_.erase(key);
    drc_.emplace(key, wire);
    drc_order_.push_back(key);
    while (drc_order_.size() > params_.duplicate_cache_entries) {
      drc_.erase(drc_order_.front());
      drc_order_.pop_front();
    }

    ++requests_served_;

    const SimTime ready_at = queue_.now();
    const SimTime cpu_start = std::max(cpu_.busy_until(), ready_at);
    const SimTime cpu_done = cpu_.Acquire(ready_at, cost.cpu());
    const SimTime done_at = cpu_done > cost.completion() ? cpu_done : cost.completion();
    obs::ChargeSim(prof_ledger_, obs::LedgerCat::kQueue, cpu_start - ready_at);
    obs::ChargeSim(prof_ledger_, obs::LedgerCat::kCpu, cost.cpu());
    if (tracer_ != nullptr && trace.valid()) {
      if (cpu_start > ready_at) {
        tracer_->RecordSpan(addr(), trace, obs::SpanCat::kQueue, "srv_cpu_wait", ready_at,
                            cpu_start);
      }
      if (cpu_done > cpu_start) {
        tracer_->RecordSpan(addr(), trace, obs::SpanCat::kCpu, "srv_cpu", cpu_start,
                            cpu_done);
      }
      if (done_at > cpu_done) {
        // Completion-bound tail (disk I/O finishing after the CPU); storage
        // nodes record the precise disk spans underneath this window.
        tracer_->RecordSpan(addr(), trace, obs::SpanCat::kService, "srv_completion",
                            cpu_done, done_at);
      }
    }
    const Endpoint self = endpoint();
    queue_.ScheduleAt(done_at, [this, self, client, trace, wire = std::move(wire)]() mutable {
      Packet out = Packet::MakeUdp(self, client, wire);
      if (tracer_ != nullptr && trace.valid()) {
        out.AttachTrace(trace.trace_id, trace.span_id);
      }
      SendPacket(std::move(out));
    });
  };

  // Run the dispatch under the request's context so handlers that issue
  // their own network I/O (small-file backing fetches, WAL appends) chain
  // those calls into this trace.
  obs::ScopedContext scope(tracer_, trace);
  obs::Profiler::Scope prof_scope(profiler_, obs::ProfScope::kRpcDispatch);
  DispatchCall(*decoded, client, std::move(done));
}

}  // namespace slice
