// Asynchronous ONC RPC client over simulated UDP with XID matching and
// timeout-driven retransmission. End-to-end retransmission is what lets the
// µproxy "discard its state and/or pending packets without compromising
// correctness" (paper §2.1) — drops in the network or the µproxy are masked
// here.
#ifndef SLICE_RPC_RPC_CLIENT_H_
#define SLICE_RPC_RPC_CLIENT_H_

#include <functional>
#include <memory>
#include <unordered_map>

#include "src/net/host.h"
#include "src/obs/eventlog.h"
#include "src/obs/trace.h"
#include "src/rpc/rpc_message.h"
#include "src/sim/event_queue.h"

namespace slice {

struct RpcClientParams {
  SimTime retransmit_timeout = FromMillis(400);
  int max_transmissions = 5;   // initial send + 4 retries
  double backoff_factor = 2.0;
  // Ceiling on the exponentially scaled timeout. Without it the pow()-scaled
  // interval grows without bound (and overflows SimTime once the double
  // exceeds 2^63), so a generous max_transmissions could park a call for
  // centuries of sim-time instead of giving up.
  SimTime max_retransmit_timeout = FromSeconds(10);
};

class RpcClient {
 public:
  // `handler(status, reply)`: status is kOk with a decoded reply view, or
  // kTimedOut / kUnavailable on failure.
  using ResponseHandler = std::function<void(Status, const RpcMessageView&)>;

  RpcClient(Host& host, EventQueue& queue, RpcClientParams params = {});
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  void Call(Endpoint server, uint32_t prog, uint32_t vers, uint32_t proc, Bytes args,
            ResponseHandler handler);

  Endpoint local() const { return Endpoint{host_.addr(), port_}; }
  uint64_t calls_sent() const { return calls_sent_; }
  uint64_t retransmissions() const { return retransmissions_; }
  size_t pending() const { return pending_.size(); }

  // Observability: calls issued while the tracer has a current context carry
  // that context on every (re)transmission, and response handlers run with
  // it restored — so nested calls chain into the same trace.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  // Event log: retransmissions and give-ups are recorded with the call's
  // trace id so a timed-out request explains itself in the flight dump.
  void set_eventlog(obs::EventLog* log) { eventlog_ = log; }

  // Tenant tag: stamped into the AUTH_SYS uid of every subsequent call, so
  // the µproxy and servers can attribute the request end-to-end. 0 (the
  // default) means untenanted/system traffic.
  void set_tenant(uint32_t tenant) { tenant_ = tenant; }
  uint32_t tenant() const { return tenant_; }

 private:
  struct PendingCall {
    Endpoint server;
    Bytes wire;  // encoded RPC call, kept for retransmission
    ResponseHandler handler;
    int transmissions = 0;
    SimTime next_timeout = 0;
    uint64_t generation = 0;
    obs::TraceContext trace;  // context captured at Call() time
  };

  void OnPacket(Packet&& pkt);
  void Transmit(uint32_t xid);
  void ArmTimer(uint32_t xid, SimTime timeout);

  Host& host_;
  EventQueue& queue_;
  RpcClientParams params_;
  obs::Tracer* tracer_ = nullptr;
  obs::EventLog* eventlog_ = nullptr;
  NetPort port_;
  // Guards timer callbacks scheduled into the event queue against running
  // after this client is destroyed.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  uint32_t next_xid_ = 1;
  uint32_t tenant_ = 0;
  uint64_t next_generation_ = 1;
  std::unordered_map<uint32_t, PendingCall> pending_;
  uint64_t calls_sent_ = 0;
  uint64_t retransmissions_ = 0;
};

}  // namespace slice

#endif  // SLICE_RPC_RPC_CLIENT_H_
