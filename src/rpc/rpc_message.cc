#include "src/rpc/rpc_message.h"

namespace slice {
namespace {

void EncodeAuthSys(XdrEncoder& enc, const AuthSysCred& cred) {
  enc.PutEnum(static_cast<uint32_t>(RpcAuthFlavor::kSys));
  XdrEncoder body;
  body.PutUint32(cred.stamp);
  body.PutString(cred.machine_name);
  body.PutUint32(cred.uid);
  body.PutUint32(cred.gid);
  body.PutUint32(static_cast<uint32_t>(cred.gids.size()));
  for (uint32_t g : cred.gids) {
    body.PutUint32(g);
  }
  enc.PutOpaqueVar(body.bytes());
}

// Parses an AUTH_SYS credential in place: the machine name stays a view into
// `body` and the gid list lands in the bounded inline array, so a credential
// decode never allocates. Callers must keep `body` alive while the view is
// consumed.
Result<AuthSysCredView> DecodeAuthBody(ByteSpan body) {
  XdrDecoder dec(body);
  AuthSysCredView cred;
  SLICE_ASSIGN_OR_RETURN(cred.stamp, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(cred.machine_name, dec.GetStringView(255));
  SLICE_ASSIGN_OR_RETURN(cred.uid, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(cred.gid, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(uint32_t n, dec.GetUint32());
  if (n > AuthSysCredView::kMaxGids) {
    return Status(StatusCode::kCorrupt, "rpc: too many gids");
  }
  for (uint32_t i = 0; i < n; ++i) {
    SLICE_ASSIGN_OR_RETURN(cred.gids.v[i], dec.GetUint32());
  }
  cred.gids.count = n;
  return cred;
}

// Allocation-free uid extraction from a raw AUTH_SYS credential body: stamp,
// variable-length machine name, then uid. Any short or oversized field falls
// back to 0 (untenanted) rather than failing the whole peek — the credential
// was already bounds-checked as an opaque blob by the caller.
uint32_t PeekAuthSysUid(ByteSpan cred_body) {
  XdrDecoder dec(cred_body);
  if (!dec.GetUint32().ok()) {  // stamp
    return 0;
  }
  Result<uint32_t> name_len = dec.GetUint32();
  if (!name_len.ok() || name_len.value() > 255) {
    return 0;
  }
  if (!dec.GetRawView(name_len.value() + XdrPad(name_len.value())).ok()) {
    return 0;
  }
  Result<uint32_t> uid = dec.GetUint32();
  return uid.ok() ? uid.value() : 0;
}

void EncodeNullVerifier(XdrEncoder& enc) {
  enc.PutEnum(static_cast<uint32_t>(RpcAuthFlavor::kNone));
  enc.PutUint32(0);  // zero-length opaque body
}

}  // namespace

Bytes RpcCall::Encode() const {
  XdrEncoder enc;
  enc.PutUint32(xid);
  enc.PutEnum(static_cast<uint32_t>(RpcMsgType::kCall));
  enc.PutUint32(kRpcVersion);
  enc.PutUint32(prog);
  enc.PutUint32(vers);
  enc.PutUint32(proc);
  EncodeAuthSys(enc, cred);
  EncodeNullVerifier(enc);
  enc.PutOpaqueFixed(args);
  return enc.Take();
}

Bytes RpcReply::Encode() const {
  XdrEncoder enc;
  enc.PutUint32(xid);
  enc.PutEnum(static_cast<uint32_t>(RpcMsgType::kReply));
  enc.PutEnum(static_cast<uint32_t>(RpcReplyStat::kAccepted));
  EncodeNullVerifier(enc);
  enc.PutEnum(static_cast<uint32_t>(stat));
  if (stat == RpcAcceptStat::kSuccess) {
    enc.PutOpaqueFixed(result);
  }
  return enc.Take();
}

Result<RpcMessageView> DecodeRpcMessage(ByteSpan data) {
  XdrDecoder dec(data);
  RpcMessageView view;
  SLICE_ASSIGN_OR_RETURN(view.xid, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(uint32_t type, dec.GetUint32());
  if (type > 1) {
    return Status(StatusCode::kCorrupt, "rpc: bad msg type");
  }
  view.type = static_cast<RpcMsgType>(type);

  if (view.type == RpcMsgType::kCall) {
    SLICE_ASSIGN_OR_RETURN(uint32_t rpcvers, dec.GetUint32());
    if (rpcvers != kRpcVersion) {
      return Status(StatusCode::kCorrupt, "rpc: bad version");
    }
    SLICE_ASSIGN_OR_RETURN(view.prog, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(view.vers, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(view.proc, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(uint32_t cred_flavor, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(uint32_t cred_len, dec.GetUint32());
    if (cred_len > 400) {
      return Status(StatusCode::kCorrupt, "rpc: oversized auth");
    }
    SLICE_ASSIGN_OR_RETURN(ByteSpan cred_body,
                           dec.GetRawView(cred_len + XdrPad(cred_len)));
    if (cred_flavor == static_cast<uint32_t>(RpcAuthFlavor::kSys)) {
      SLICE_ASSIGN_OR_RETURN(view.cred,
                             DecodeAuthBody(ByteSpan(cred_body.data(), cred_len)));
    }
    SLICE_ASSIGN_OR_RETURN(uint32_t verf_flavor, dec.GetUint32());
    (void)verf_flavor;
    SLICE_ASSIGN_OR_RETURN(uint32_t verf_len, dec.GetUint32());
    if (verf_len > 400) {
      return Status(StatusCode::kCorrupt, "rpc: oversized auth");
    }
    SLICE_ASSIGN_OR_RETURN(ByteSpan verf_body,
                           dec.GetRawView(verf_len + XdrPad(verf_len)));
    (void)verf_body;
  } else {
    SLICE_ASSIGN_OR_RETURN(uint32_t reply_stat, dec.GetUint32());
    if (reply_stat != static_cast<uint32_t>(RpcReplyStat::kAccepted)) {
      return Status(StatusCode::kCorrupt, "rpc: denied reply");
    }
    SLICE_ASSIGN_OR_RETURN(uint32_t verf_flavor, dec.GetUint32());
    (void)verf_flavor;
    SLICE_ASSIGN_OR_RETURN(uint32_t verf_len, dec.GetUint32());
    if (verf_len > 400) {
      return Status(StatusCode::kCorrupt, "rpc: oversized verifier");
    }
    SLICE_ASSIGN_OR_RETURN(ByteSpan verf_body,
                           dec.GetRawView(verf_len + XdrPad(verf_len)));
    (void)verf_body;
    SLICE_ASSIGN_OR_RETURN(uint32_t accept, dec.GetUint32());
    if (accept > static_cast<uint32_t>(RpcAcceptStat::kSystemErr)) {
      return Status(StatusCode::kCorrupt, "rpc: bad accept stat");
    }
    view.accept_stat = static_cast<RpcAcceptStat>(accept);
  }

  view.body_offset = dec.position();
  view.body = data.subspan(dec.position());
  return view;
}

Result<RpcPeek> PeekRpcMessage(ByteSpan data) {
  XdrDecoder dec(data);
  RpcPeek peek;
  SLICE_ASSIGN_OR_RETURN(peek.xid, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(uint32_t type, dec.GetUint32());
  if (type > 1) {
    return Status(StatusCode::kCorrupt, "rpc: bad msg type");
  }
  peek.type = static_cast<RpcMsgType>(type);

  if (peek.type == RpcMsgType::kCall) {
    SLICE_ASSIGN_OR_RETURN(uint32_t rpcvers, dec.GetUint32());
    if (rpcvers != kRpcVersion) {
      return Status(StatusCode::kCorrupt, "rpc: bad version");
    }
    SLICE_ASSIGN_OR_RETURN(peek.prog, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(peek.vers, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(peek.proc, dec.GetUint32());
    // Skip credential and verifier without materializing them; the tenant
    // tag (AUTH_SYS uid) is read in place from the credential bytes.
    for (int i = 0; i < 2; ++i) {
      SLICE_ASSIGN_OR_RETURN(uint32_t flavor, dec.GetUint32());
      SLICE_ASSIGN_OR_RETURN(uint32_t len, dec.GetUint32());
      if (len > 400) {
        return Status(StatusCode::kCorrupt, "rpc: oversized auth");
      }
      SLICE_ASSIGN_OR_RETURN(ByteSpan skipped, dec.GetRawView(len + XdrPad(len)));
      if (i == 0 && flavor == static_cast<uint32_t>(RpcAuthFlavor::kSys)) {
        peek.tenant = PeekAuthSysUid(ByteSpan(skipped.data(), len));
      }
    }
  } else {
    SLICE_ASSIGN_OR_RETURN(uint32_t reply_stat, dec.GetUint32());
    if (reply_stat != static_cast<uint32_t>(RpcReplyStat::kAccepted)) {
      return Status(StatusCode::kCorrupt, "rpc: denied reply");
    }
    SLICE_ASSIGN_OR_RETURN(uint32_t flavor, dec.GetUint32());
    (void)flavor;
    SLICE_ASSIGN_OR_RETURN(uint32_t len, dec.GetUint32());
    if (len > 400) {
      return Status(StatusCode::kCorrupt, "rpc: oversized verifier");
    }
    SLICE_ASSIGN_OR_RETURN(ByteSpan skipped, dec.GetRawView(len + XdrPad(len)));
    (void)skipped;
    SLICE_ASSIGN_OR_RETURN(uint32_t accept, dec.GetUint32());
    peek.accept_stat = static_cast<RpcAcceptStat>(accept);
  }

  peek.body_offset = dec.position();
  return peek;
}

}  // namespace slice
