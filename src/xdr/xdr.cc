#include "src/xdr/xdr.h"

namespace slice {

void XdrEncoder::PutOpaqueFixed(ByteSpan data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
  const size_t pad = XdrPad(data.size());
  buf_.insert(buf_.end(), pad, 0);
}

void XdrEncoder::PutOpaqueVar(ByteSpan data) {
  PutUint32(static_cast<uint32_t>(data.size()));
  PutOpaqueFixed(data);
}

Result<uint32_t> XdrDecoder::GetUint32() {
  SLICE_RETURN_IF_ERROR(Need(4));
  const uint32_t v = GetU32(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<uint64_t> XdrDecoder::GetUint64() {
  SLICE_RETURN_IF_ERROR(Need(8));
  const uint64_t v = GetU64(data_.data() + pos_);
  pos_ += 8;
  return v;
}

Result<bool> XdrDecoder::GetBool() {
  SLICE_ASSIGN_OR_RETURN(uint32_t v, GetUint32());
  if (v > 1) {
    return Status(StatusCode::kCorrupt, "xdr: bad bool");
  }
  return v == 1;
}

Result<Bytes> XdrDecoder::GetOpaqueFixed(size_t len) {
  const size_t padded = len + XdrPad(len);
  SLICE_RETURN_IF_ERROR(Need(padded));
  Bytes out(data_.begin() + static_cast<ptrdiff_t>(pos_),
            data_.begin() + static_cast<ptrdiff_t>(pos_ + len));
  pos_ += padded;
  return out;
}

Result<Bytes> XdrDecoder::GetOpaqueVar(size_t max_len) {
  SLICE_ASSIGN_OR_RETURN(uint32_t len, GetUint32());
  if (len > max_len) {
    return Status(StatusCode::kCorrupt, "xdr: opaque too long");
  }
  return GetOpaqueFixed(len);
}

Result<std::string> XdrDecoder::GetString(size_t max_len) {
  SLICE_ASSIGN_OR_RETURN(Bytes raw, GetOpaqueVar(max_len));
  return std::string(raw.begin(), raw.end());
}

Result<std::string_view> XdrDecoder::GetStringView(size_t max_len) {
  SLICE_ASSIGN_OR_RETURN(uint32_t len, GetUint32());
  if (len > max_len) {
    return Status(StatusCode::kCorrupt, "xdr: string too long");
  }
  const size_t padded = len + XdrPad(len);
  SLICE_RETURN_IF_ERROR(Need(padded));
  std::string_view view(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += padded;
  return view;
}

Result<ByteSpan> XdrDecoder::GetRawView(size_t n) {
  SLICE_RETURN_IF_ERROR(Need(n));
  ByteSpan view = data_.subspan(pos_, n);
  pos_ += n;
  return view;
}

}  // namespace slice
