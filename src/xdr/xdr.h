// XDR (RFC 4506) encoder and decoder, the wire encoding beneath ONC RPC and
// NFSv3. Everything is big-endian and 4-byte aligned; variable-length opaques
// and strings carry a length word and are zero-padded to a 4-byte boundary.
#ifndef SLICE_XDR_XDR_H_
#define SLICE_XDR_XDR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"
#include "src/common/status.h"

namespace slice {

class XdrEncoder {
 public:
  XdrEncoder() = default;

  void PutUint32(uint32_t v) { AppendU32(buf_, v); }
  void PutInt32(int32_t v) { PutUint32(static_cast<uint32_t>(v)); }
  void PutUint64(uint64_t v) { AppendU64(buf_, v); }
  void PutInt64(int64_t v) { PutUint64(static_cast<uint64_t>(v)); }
  void PutBool(bool v) { PutUint32(v ? 1 : 0); }
  void PutEnum(uint32_t v) { PutUint32(v); }

  // Fixed-length opaque: raw bytes padded to 4-byte alignment.
  void PutOpaqueFixed(ByteSpan data);
  // Variable-length opaque: length word + bytes + padding.
  void PutOpaqueVar(ByteSpan data);
  // Appends pre-encoded XDR verbatim — no length word, no padding. The
  // server reply path splices an already-encoded result body into the RPC
  // envelope through this without an intermediate Bytes copy.
  void PutRawBytes(ByteSpan data) { buf_.insert(buf_.end(), data.begin(), data.end()); }
  void PutString(std::string_view s) {
    PutOpaqueVar(ByteSpan(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }

  const Bytes& bytes() const { return buf_; }
  Bytes Take() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

  // Empties the buffer but keeps its capacity, so a long-lived encoder (the
  // µproxy's attr-patch scratch) reaches a steady state with no allocations.
  void Clear() { buf_.clear(); }

 private:
  Bytes buf_;
};

class XdrDecoder {
 public:
  explicit XdrDecoder(ByteSpan data) : data_(data) {}

  Result<uint32_t> GetUint32();
  Result<int32_t> GetInt32() {
    SLICE_ASSIGN_OR_RETURN(uint32_t v, GetUint32());
    return static_cast<int32_t>(v);
  }
  Result<uint64_t> GetUint64();
  Result<int64_t> GetInt64() {
    SLICE_ASSIGN_OR_RETURN(uint64_t v, GetUint64());
    return static_cast<int64_t>(v);
  }
  Result<bool> GetBool();

  // Fixed-length opaque of `len` bytes (consumes padding).
  Result<Bytes> GetOpaqueFixed(size_t len);
  // Variable-length opaque with a sanity cap on the length word.
  Result<Bytes> GetOpaqueVar(size_t max_len = 1 << 22);
  Result<std::string> GetString(size_t max_len = 4096);
  // Zero-copy string read: a view into the underlying buffer, valid only
  // while that buffer lives. The single-pass decode path uses this to avoid
  // materializing file names it may never route on.
  Result<std::string_view> GetStringView(size_t max_len = 4096);

  // Consumes `n` raw (already padded) bytes without copying, returning a view
  // into the underlying buffer. Used by zero-copy READ/WRITE paths.
  Result<ByteSpan> GetRawView(size_t n);

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == data_.size(); }

 private:
  Status Need(size_t n) {
    if (remaining() < n) {
      return Status(StatusCode::kCorrupt, "xdr: short buffer");
    }
    return OkStatus();
  }

  ByteSpan data_;
  size_t pos_ = 0;
};

// Padding needed to align `n` bytes up to a 4-byte boundary.
inline size_t XdrPad(size_t n) { return (4 - (n & 3)) & 3; }

}  // namespace slice

#endif  // SLICE_XDR_XDR_H_
