// XDR codecs for NFSv3 procedure arguments and results (RFC 1813 wire
// layout). Every request/result is a plain struct with Encode/Decode; the
// µproxy, servers, and client library all share these.
#ifndef SLICE_NFS_NFS_XDR_H_
#define SLICE_NFS_NFS_XDR_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/nfs/nfs_types.h"
#include "src/xdr/xdr.h"

namespace slice {

// --- shared helpers ---

void EncodeFileHandle(XdrEncoder& enc, const FileHandle& fh);
Result<FileHandle> DecodeFileHandle(XdrDecoder& dec);

void EncodeFattr3(XdrEncoder& enc, const Fattr3& attr);
Result<Fattr3> DecodeFattr3(XdrDecoder& dec);

void EncodePostOpAttr(XdrEncoder& enc, const std::optional<Fattr3>& attr);
Result<std::optional<Fattr3>> DecodePostOpAttr(XdrDecoder& dec);

void EncodeWccData(XdrEncoder& enc, const WccData& wcc);
Result<WccData> DecodeWccData(XdrDecoder& dec);

void EncodeSattr3(XdrEncoder& enc, const Sattr3& sattr);
Result<Sattr3> DecodeSattr3(XdrDecoder& dec);

void EncodePostOpFh(XdrEncoder& enc, const std::optional<FileHandle>& fh);
Result<std::optional<FileHandle>> DecodePostOpFh(XdrDecoder& dec);

// --- per-procedure argument structs ---

struct GetattrArgs {
  FileHandle object;
  void Encode(XdrEncoder& enc) const;
  static Result<GetattrArgs> Decode(XdrDecoder& dec);
};

struct SetattrArgs {
  FileHandle object;
  Sattr3 new_attributes;
  std::optional<NfsTime> guard_ctime;
  void Encode(XdrEncoder& enc) const;
  static Result<SetattrArgs> Decode(XdrDecoder& dec);
};

// lookup / create-style (dir, name) arguments.
struct DirOpArgs {
  FileHandle dir;
  std::string name;
  void Encode(XdrEncoder& enc) const;
  static Result<DirOpArgs> Decode(XdrDecoder& dec);
};

struct AccessArgs {
  FileHandle object;
  uint32_t access = 0x3f;
  void Encode(XdrEncoder& enc) const;
  static Result<AccessArgs> Decode(XdrDecoder& dec);
};

struct ReadArgs {
  FileHandle file;
  uint64_t offset = 0;
  uint32_t count = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<ReadArgs> Decode(XdrDecoder& dec);
};

struct WriteArgs {
  FileHandle file;
  uint64_t offset = 0;
  uint32_t count = 0;
  StableHow stable = StableHow::kUnstable;
  Bytes data;
  void Encode(XdrEncoder& enc) const;
  static Result<WriteArgs> Decode(XdrDecoder& dec);
};

struct CreateArgs {
  FileHandle dir;
  std::string name;
  CreateMode mode = CreateMode::kUnchecked;
  Sattr3 attributes;
  void Encode(XdrEncoder& enc) const;
  static Result<CreateArgs> Decode(XdrDecoder& dec);
};

struct MkdirArgs {
  FileHandle dir;
  std::string name;
  Sattr3 attributes;
  void Encode(XdrEncoder& enc) const;
  static Result<MkdirArgs> Decode(XdrDecoder& dec);
};

struct SymlinkArgs {
  FileHandle dir;
  std::string name;
  Sattr3 attributes;
  std::string target;
  void Encode(XdrEncoder& enc) const;
  static Result<SymlinkArgs> Decode(XdrDecoder& dec);
};

struct RenameArgs {
  FileHandle from_dir;
  std::string from_name;
  FileHandle to_dir;
  std::string to_name;
  void Encode(XdrEncoder& enc) const;
  static Result<RenameArgs> Decode(XdrDecoder& dec);
};

struct LinkArgs {
  FileHandle file;
  FileHandle dir;
  std::string name;
  void Encode(XdrEncoder& enc) const;
  static Result<LinkArgs> Decode(XdrDecoder& dec);
};

struct ReaddirArgs {
  FileHandle dir;
  uint64_t cookie = 0;
  uint64_t cookieverf = 0;
  uint32_t count = 4096;
  bool plus = false;  // READDIRPLUS (adds maxcount on the wire)
  uint32_t maxcount = 8192;
  void Encode(XdrEncoder& enc) const;
  static Result<ReaddirArgs> Decode(XdrDecoder& dec, bool plus);
};

struct CommitArgs {
  FileHandle file;
  uint64_t offset = 0;
  uint32_t count = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<CommitArgs> Decode(XdrDecoder& dec);
};

// --- per-procedure result structs ---
// Every result starts with an nfsstat3. Error cases still carry the
// RFC-specified attributes where applicable.

struct GetattrRes {
  Nfsstat3 status = Nfsstat3::kOk;
  Fattr3 attributes;
  void Encode(XdrEncoder& enc) const;
  static Result<GetattrRes> Decode(XdrDecoder& dec);
};

struct SetattrRes {
  Nfsstat3 status = Nfsstat3::kOk;
  WccData wcc;
  void Encode(XdrEncoder& enc) const;
  static Result<SetattrRes> Decode(XdrDecoder& dec);
};

struct LookupRes {
  Nfsstat3 status = Nfsstat3::kOk;
  FileHandle object;                  // ok only
  std::optional<Fattr3> obj_attributes;
  std::optional<Fattr3> dir_attributes;
  void Encode(XdrEncoder& enc) const;
  static Result<LookupRes> Decode(XdrDecoder& dec);
};

struct AccessRes {
  Nfsstat3 status = Nfsstat3::kOk;
  std::optional<Fattr3> obj_attributes;
  uint32_t access = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<AccessRes> Decode(XdrDecoder& dec);
};

struct ReadlinkRes {
  Nfsstat3 status = Nfsstat3::kOk;
  std::optional<Fattr3> symlink_attributes;
  std::string target;
  void Encode(XdrEncoder& enc) const;
  static Result<ReadlinkRes> Decode(XdrDecoder& dec);
};

struct ReadRes {
  Nfsstat3 status = Nfsstat3::kOk;
  std::optional<Fattr3> file_attributes;
  uint32_t count = 0;
  bool eof = false;
  Bytes data;
  void Encode(XdrEncoder& enc) const;
  // Encodes with `payload` as the data body instead of `data`, so the
  // storage node's READ path can splice its reusable scratch buffer into the
  // reply without materializing a Bytes copy per request. Byte-identical to
  // Encode(enc) when payload == data.
  void Encode(XdrEncoder& enc, ByteSpan payload) const;
  static Result<ReadRes> Decode(XdrDecoder& dec);
};

struct WriteRes {
  Nfsstat3 status = Nfsstat3::kOk;
  WccData wcc;
  uint32_t count = 0;
  StableHow committed = StableHow::kUnstable;
  uint64_t verf = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<WriteRes> Decode(XdrDecoder& dec);
};

// create / mkdir / symlink share this shape.
struct CreateRes {
  Nfsstat3 status = Nfsstat3::kOk;
  std::optional<FileHandle> object;
  std::optional<Fattr3> obj_attributes;
  WccData dir_wcc;
  void Encode(XdrEncoder& enc) const;
  static Result<CreateRes> Decode(XdrDecoder& dec);
};

struct RemoveRes {
  Nfsstat3 status = Nfsstat3::kOk;
  WccData dir_wcc;
  void Encode(XdrEncoder& enc) const;
  static Result<RemoveRes> Decode(XdrDecoder& dec);
};

struct RenameRes {
  Nfsstat3 status = Nfsstat3::kOk;
  WccData from_dir_wcc;
  WccData to_dir_wcc;
  void Encode(XdrEncoder& enc) const;
  static Result<RenameRes> Decode(XdrDecoder& dec);
};

struct LinkRes {
  Nfsstat3 status = Nfsstat3::kOk;
  std::optional<Fattr3> file_attributes;
  WccData dir_wcc;
  void Encode(XdrEncoder& enc) const;
  static Result<LinkRes> Decode(XdrDecoder& dec);
};

struct ReaddirRes {
  Nfsstat3 status = Nfsstat3::kOk;
  std::optional<Fattr3> dir_attributes;
  uint64_t cookieverf = 0;
  std::vector<DirEntry> entries;
  bool eof = true;
  bool plus = false;
  void Encode(XdrEncoder& enc) const;
  static Result<ReaddirRes> Decode(XdrDecoder& dec, bool plus);
};

struct FsstatRes {
  Nfsstat3 status = Nfsstat3::kOk;
  std::optional<Fattr3> obj_attributes;
  uint64_t tbytes = 0, fbytes = 0, abytes = 0;
  uint64_t tfiles = 0, ffiles = 0, afiles = 0;
  uint32_t invarsec = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<FsstatRes> Decode(XdrDecoder& dec);
};

struct FsinfoRes {
  Nfsstat3 status = Nfsstat3::kOk;
  std::optional<Fattr3> obj_attributes;
  uint32_t rtmax = 32768, rtpref = 32768, rtmult = 512;
  uint32_t wtmax = 32768, wtpref = 32768, wtmult = 512;
  uint32_t dtpref = 8192;
  uint64_t maxfilesize = ~0ull;
  NfsTime time_delta{0, 1000000};
  uint32_t properties = 0x1b;
  void Encode(XdrEncoder& enc) const;
  static Result<FsinfoRes> Decode(XdrDecoder& dec);
};

struct CommitRes {
  Nfsstat3 status = Nfsstat3::kOk;
  WccData wcc;
  uint64_t verf = 0;
  void Encode(XdrEncoder& enc) const;
  static Result<CommitRes> Decode(XdrDecoder& dec);
};

}  // namespace slice

#endif  // SLICE_NFS_NFS_XDR_H_
