// NFS version 3 protocol types (RFC 1813), plus the Slice file-handle
// layout. The Slice fhandle packs the routing-relevant fields — fileID,
// file type, replication degree — at fixed offsets so the µproxy can route
// on them, and carries a NASD-style capability tag that storage nodes verify
// (paper §2.2: object protection lets the µproxy live outside the trust
// boundary).
#ifndef SLICE_NFS_NFS_TYPES_H_
#define SLICE_NFS_NFS_TYPES_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/hash.h"

namespace slice {

constexpr uint32_t kNfsProgram = 100003;
constexpr uint32_t kNfsVersion = 3;
constexpr uint16_t kNfsPort = 2049;

enum class NfsProc : uint32_t {
  kNull = 0,
  kGetattr = 1,
  kSetattr = 2,
  kLookup = 3,
  kAccess = 4,
  kReadlink = 5,
  kRead = 6,
  kWrite = 7,
  kCreate = 8,
  kMkdir = 9,
  kSymlink = 10,
  kMknod = 11,
  kRemove = 12,
  kRmdir = 13,
  kRename = 14,
  kLink = 15,
  kReaddir = 16,
  kReaddirplus = 17,
  kFsstat = 18,
  kFsinfo = 19,
  kPathconf = 20,
  kCommit = 21,
};

// Number of procedures in the NfsProc enum (contiguous from kNull).
inline constexpr size_t kNfsProcCount = 22;

const char* NfsProcName(NfsProc proc);

enum class Nfsstat3 : uint32_t {
  kOk = 0,
  kErrPerm = 1,
  kErrNoent = 2,
  kErrIo = 5,
  kErrAcces = 13,
  kErrExist = 17,
  kErrXdev = 18,
  kErrNodev = 19,
  kErrNotdir = 20,
  kErrIsdir = 21,
  kErrInval = 22,
  kErrFbig = 27,
  kErrNospc = 28,
  kErrRofs = 30,
  kErrMlink = 31,
  kErrNametoolong = 63,
  kErrNotempty = 66,
  kErrDquot = 69,
  kErrStale = 70,
  kErrRemote = 71,
  kErrBadhandle = 10001,
  kErrNotSync = 10002,
  kErrBadCookie = 10003,
  kErrNotsupp = 10004,
  kErrToosmall = 10005,
  kErrServerfault = 10006,
  kErrBadtype = 10007,
  kErrJukebox = 10008,
};

enum class FileType3 : uint32_t {
  kReg = 1,
  kDir = 2,
  kBlk = 3,
  kChr = 4,
  kLnk = 5,
  kSock = 6,
  kFifo = 7,
};

enum class StableHow : uint32_t { kUnstable = 0, kDataSync = 1, kFileSync = 2 };
enum class CreateMode : uint32_t { kUnchecked = 0, kGuarded = 1, kExclusive = 2 };

struct NfsTime {
  uint32_t seconds = 0;
  uint32_t nseconds = 0;

  bool operator==(const NfsTime&) const = default;
  bool operator<(const NfsTime& other) const {
    return seconds != other.seconds ? seconds < other.seconds : nseconds < other.nseconds;
  }
};

// Full RFC 1813 fattr3: 84 bytes on the wire, fixed layout — the µproxy's
// attribute-patching relies on the fixed size.
struct Fattr3 {
  FileType3 type = FileType3::kReg;
  uint32_t mode = 0644;
  uint32_t nlink = 1;
  uint32_t uid = 0;
  uint32_t gid = 0;
  uint64_t size = 0;
  uint64_t used = 0;
  uint32_t rdev_major = 0;
  uint32_t rdev_minor = 0;
  uint64_t fsid = 0;
  uint64_t fileid = 0;
  NfsTime atime;
  NfsTime mtime;
  NfsTime ctime;

  bool operator==(const Fattr3&) const = default;
};

constexpr size_t kFattr3WireSize = 84;

// Settable attributes (sattr3).
struct Sattr3 {
  std::optional<uint32_t> mode;
  std::optional<uint32_t> uid;
  std::optional<uint32_t> gid;
  std::optional<uint64_t> size;
  std::optional<NfsTime> atime;  // SET_TO_CLIENT_TIME only
  std::optional<NfsTime> mtime;
};

// Weak cache consistency attributes.
struct WccAttr {
  uint64_t size = 0;
  NfsTime mtime;
  NfsTime ctime;
};

struct WccData {
  std::optional<WccAttr> before;
  std::optional<Fattr3> after;
};

// ---------------------------------------------------------------------------
// Slice file handle: 32 opaque bytes with fixed internal layout.
//
//   [0..4)   volume id
//   [4..12)  fileID (drives all routing)
//   [12..16) generation
//   [16]     file type (FileType3)
//   [17]     replication degree (1 = unmirrored)
//   [18..20) reserved
//   [20..28) capability tag = MixU64 over the fields + volume secret
//   [28..32) zero
// ---------------------------------------------------------------------------

class FileHandle {
 public:
  static constexpr size_t kSize = 32;

  FileHandle() { bytes_.fill(0); }

  static FileHandle Make(uint32_t volume, uint64_t fileid, uint32_t generation,
                         FileType3 type, uint8_t replication, uint64_t volume_secret);

  static FileHandle FromBytes(ByteSpan raw);

  uint32_t volume() const { return GetU32(bytes_.data()); }
  uint64_t fileid() const { return GetU64(bytes_.data() + 4); }
  uint32_t generation() const { return GetU32(bytes_.data() + 12); }
  FileType3 type() const { return static_cast<FileType3>(bytes_[16]); }
  uint8_t replication() const { return bytes_[17]; }
  uint64_t capability() const { return GetU64(bytes_.data() + 20); }

  bool IsDir() const { return type() == FileType3::kDir; }
  bool VerifyCapability(uint64_t volume_secret) const;

  ByteSpan bytes() const { return ByteSpan(bytes_.data(), kSize); }
  bool empty() const;

  bool operator==(const FileHandle&) const = default;

  struct Hash {
    size_t operator()(const FileHandle& fh) const {
      return static_cast<size_t>(Fnv1a64(fh.bytes()));
    }
  };

 private:
  std::array<uint8_t, kSize> bytes_;
};

// Storage-node index for (file, byte offset) under static mirrored striping:
// stripe blocks of `stripe_unit` bytes round-robin across `num_nodes` nodes
// starting at a per-file hash base; `replica` < fh.replication() selects a
// mirror. Shared by the µproxy's routing path and the coordinator's
// degraded-region resync so both always agree on placement.
inline uint32_t StripeSiteFor(const FileHandle& fh, uint64_t offset, uint32_t stripe_unit,
                              uint32_t num_nodes, uint32_t replica = 0) {
  const uint32_t k = fh.replication() == 0 ? 1 : fh.replication();
  const uint64_t block = offset / stripe_unit;
  return static_cast<uint32_t>((Fnv1a64(fh.bytes()) + block * k + replica) % num_nodes);
}

// Directory entries (readdir / readdirplus).
struct DirEntry {
  uint64_t fileid = 0;
  std::string name;
  uint64_t cookie = 0;
  // readdirplus extras:
  std::optional<Fattr3> attr;
  std::optional<FileHandle> handle;
};

}  // namespace slice

#endif  // SLICE_NFS_NFS_TYPES_H_
