// Typed NFSv3 client. Async methods issue RPC calls over the simulated
// network; SyncNfsClient layers a blocking convenience API on top by driving
// the event queue (for tests, examples and simple workloads).
//
// Like SPECsfs, this client speaks NFS directly from "user space" — it does
// not model a kernel client cache, so every operation hits the wire, which
// is exactly what the paper's server-side evaluation wants.
#ifndef SLICE_NFS_NFS_CLIENT_H_
#define SLICE_NFS_NFS_CLIENT_H_

#include <functional>
#include <memory>

#include "src/nfs/nfs_xdr.h"
#include "src/rpc/rpc_client.h"

namespace slice {

class NfsClient {
 public:
  template <typename Res>
  using Callback = std::function<void(Status, const Res&)>;

  // `server` is the (possibly virtual) NFS service endpoint. The mount-style
  // root file handle is obtained out of band via the volume configuration.
  NfsClient(Host& host, EventQueue& queue, Endpoint server, RpcClientParams rpc_params = {});

  void Null(std::function<void(Status)> cb);
  void Getattr(const FileHandle& object, Callback<GetattrRes> cb);
  void Setattr(const SetattrArgs& args, Callback<SetattrRes> cb);
  void Lookup(const FileHandle& dir, const std::string& name, Callback<LookupRes> cb);
  void Access(const FileHandle& object, uint32_t access, Callback<AccessRes> cb);
  void Readlink(const FileHandle& link, Callback<ReadlinkRes> cb);
  void Read(const FileHandle& file, uint64_t offset, uint32_t count, Callback<ReadRes> cb);
  void Write(const FileHandle& file, uint64_t offset, ByteSpan data, StableHow stable,
             Callback<WriteRes> cb);
  void Create(const FileHandle& dir, const std::string& name, Callback<CreateRes> cb);
  void Mkdir(const FileHandle& dir, const std::string& name, Callback<CreateRes> cb);
  void Symlink(const FileHandle& dir, const std::string& name, const std::string& target,
               Callback<CreateRes> cb);
  void Remove(const FileHandle& dir, const std::string& name, Callback<RemoveRes> cb);
  void Rmdir(const FileHandle& dir, const std::string& name, Callback<RemoveRes> cb);
  void Rename(const FileHandle& from_dir, const std::string& from_name,
              const FileHandle& to_dir, const std::string& to_name, Callback<RenameRes> cb);
  void Link(const FileHandle& file, const FileHandle& dir, const std::string& name,
            Callback<LinkRes> cb);
  void Readdir(const FileHandle& dir, uint64_t cookie, uint32_t count, Callback<ReaddirRes> cb);
  void Readdirplus(const FileHandle& dir, uint64_t cookie, uint32_t count,
                   Callback<ReaddirRes> cb);
  void Fsstat(const FileHandle& root, Callback<FsstatRes> cb);
  void Fsinfo(const FileHandle& root, Callback<FsinfoRes> cb);
  void Commit(const FileHandle& file, uint64_t offset, uint32_t count, Callback<CommitRes> cb);

  Endpoint server() const { return server_; }
  RpcClient& rpc() { return rpc_; }
  void set_tracer(obs::Tracer* tracer) { rpc_.set_tracer(tracer); }

 private:
  template <typename Res>
  void CallTyped(NfsProc proc, Bytes args, Callback<Res> cb);
  template <typename Res>
  void CallReaddir(NfsProc proc, Bytes args, bool plus, Callback<Res> cb);

  RpcClient rpc_;
  Endpoint server_;
};

// Blocking facade over NfsClient: each method drives the event queue until
// the reply arrives. Only valid when the caller owns the event loop.
class SyncNfsClient {
 public:
  SyncNfsClient(Host& host, EventQueue& queue, Endpoint server)
      : queue_(queue), client_(host, queue, server) {}

  Result<Fattr3> Getattr(const FileHandle& object);
  Result<SetattrRes> Setattr(const SetattrArgs& args);
  Result<LookupRes> Lookup(const FileHandle& dir, const std::string& name);
  Result<AccessRes> Access(const FileHandle& object, uint32_t access = 0x3f);
  Result<ReadRes> Read(const FileHandle& file, uint64_t offset, uint32_t count);
  Result<WriteRes> Write(const FileHandle& file, uint64_t offset, ByteSpan data,
                         StableHow stable = StableHow::kUnstable);
  Result<CreateRes> Create(const FileHandle& dir, const std::string& name);
  Result<CreateRes> Mkdir(const FileHandle& dir, const std::string& name);
  Result<CreateRes> Symlink(const FileHandle& dir, const std::string& name,
                            const std::string& target);
  Result<ReadlinkRes> Readlink(const FileHandle& link);
  Result<RemoveRes> Remove(const FileHandle& dir, const std::string& name);
  Result<RemoveRes> Rmdir(const FileHandle& dir, const std::string& name);
  Result<RenameRes> Rename(const FileHandle& from_dir, const std::string& from_name,
                           const FileHandle& to_dir, const std::string& to_name);
  Result<LinkRes> Link(const FileHandle& file, const FileHandle& dir, const std::string& name);
  Result<ReaddirRes> Readdir(const FileHandle& dir, uint64_t cookie = 0, uint32_t count = 4096);
  Result<ReaddirRes> Readdirplus(const FileHandle& dir, uint64_t cookie = 0,
                                 uint32_t count = 8192);
  Result<FsstatRes> Fsstat(const FileHandle& root);
  Result<FsinfoRes> Fsinfo(const FileHandle& root);
  Result<CommitRes> Commit(const FileHandle& file, uint64_t offset = 0, uint32_t count = 0);

  // Reads all entries of a directory, following cookies.
  Result<std::vector<DirEntry>> ReadWholeDir(const FileHandle& dir);

  NfsClient& async() { return client_; }

 private:
  template <typename Res>
  Result<Res> Wait(std::function<void(NfsClient::Callback<Res>)> issue);

  EventQueue& queue_;
  NfsClient client_;
};

}  // namespace slice

#endif  // SLICE_NFS_NFS_CLIENT_H_
