#include "src/nfs/nfs_client.h"

namespace slice {

NfsClient::NfsClient(Host& host, EventQueue& queue, Endpoint server, RpcClientParams rpc_params)
    : rpc_(host, queue, rpc_params), server_(server) {}

template <typename Res>
void NfsClient::CallTyped(NfsProc proc, Bytes args, Callback<Res> cb) {
  rpc_.Call(server_, kNfsProgram, kNfsVersion, static_cast<uint32_t>(proc), std::move(args),
            [cb = std::move(cb)](Status st, const RpcMessageView& reply) {
              if (!st.ok()) {
                cb(st, Res{});
                return;
              }
              XdrDecoder dec(reply.body);
              Result<Res> res = Res::Decode(dec);
              if (!res.ok()) {
                cb(res.status(), Res{});
                return;
              }
              cb(OkStatus(), *res);
            });
}

template <typename Res>
void NfsClient::CallReaddir(NfsProc proc, Bytes args, bool plus, Callback<Res> cb) {
  rpc_.Call(server_, kNfsProgram, kNfsVersion, static_cast<uint32_t>(proc), std::move(args),
            [cb = std::move(cb), plus](Status st, const RpcMessageView& reply) {
              if (!st.ok()) {
                cb(st, Res{});
                return;
              }
              XdrDecoder dec(reply.body);
              Result<Res> res = Res::Decode(dec, plus);
              if (!res.ok()) {
                cb(res.status(), Res{});
                return;
              }
              cb(OkStatus(), *res);
            });
}

void NfsClient::Null(std::function<void(Status)> cb) {
  rpc_.Call(server_, kNfsProgram, kNfsVersion, static_cast<uint32_t>(NfsProc::kNull), Bytes{},
            [cb = std::move(cb)](Status st, const RpcMessageView&) { cb(st); });
}

void NfsClient::Getattr(const FileHandle& object, Callback<GetattrRes> cb) {
  XdrEncoder enc;
  GetattrArgs{object}.Encode(enc);
  CallTyped(NfsProc::kGetattr, enc.Take(), std::move(cb));
}

void NfsClient::Setattr(const SetattrArgs& args, Callback<SetattrRes> cb) {
  XdrEncoder enc;
  args.Encode(enc);
  CallTyped(NfsProc::kSetattr, enc.Take(), std::move(cb));
}

void NfsClient::Lookup(const FileHandle& dir, const std::string& name, Callback<LookupRes> cb) {
  XdrEncoder enc;
  DirOpArgs{dir, name}.Encode(enc);
  CallTyped(NfsProc::kLookup, enc.Take(), std::move(cb));
}

void NfsClient::Access(const FileHandle& object, uint32_t access, Callback<AccessRes> cb) {
  XdrEncoder enc;
  AccessArgs{object, access}.Encode(enc);
  CallTyped(NfsProc::kAccess, enc.Take(), std::move(cb));
}

void NfsClient::Readlink(const FileHandle& link, Callback<ReadlinkRes> cb) {
  XdrEncoder enc;
  GetattrArgs{link}.Encode(enc);
  CallTyped(NfsProc::kReadlink, enc.Take(), std::move(cb));
}

void NfsClient::Read(const FileHandle& file, uint64_t offset, uint32_t count,
                     Callback<ReadRes> cb) {
  XdrEncoder enc;
  ReadArgs{file, offset, count}.Encode(enc);
  CallTyped(NfsProc::kRead, enc.Take(), std::move(cb));
}

void NfsClient::Write(const FileHandle& file, uint64_t offset, ByteSpan data, StableHow stable,
                      Callback<WriteRes> cb) {
  XdrEncoder enc;
  WriteArgs args;
  args.file = file;
  args.offset = offset;
  args.count = static_cast<uint32_t>(data.size());
  args.stable = stable;
  args.data.assign(data.begin(), data.end());
  args.Encode(enc);
  CallTyped(NfsProc::kWrite, enc.Take(), std::move(cb));
}

void NfsClient::Create(const FileHandle& dir, const std::string& name, Callback<CreateRes> cb) {
  XdrEncoder enc;
  CreateArgs args;
  args.dir = dir;
  args.name = name;
  args.Encode(enc);
  CallTyped(NfsProc::kCreate, enc.Take(), std::move(cb));
}

void NfsClient::Mkdir(const FileHandle& dir, const std::string& name, Callback<CreateRes> cb) {
  XdrEncoder enc;
  MkdirArgs args;
  args.dir = dir;
  args.name = name;
  args.Encode(enc);
  CallTyped(NfsProc::kMkdir, enc.Take(), std::move(cb));
}

void NfsClient::Symlink(const FileHandle& dir, const std::string& name,
                        const std::string& target, Callback<CreateRes> cb) {
  XdrEncoder enc;
  SymlinkArgs args;
  args.dir = dir;
  args.name = name;
  args.target = target;
  args.Encode(enc);
  CallTyped(NfsProc::kSymlink, enc.Take(), std::move(cb));
}

void NfsClient::Remove(const FileHandle& dir, const std::string& name, Callback<RemoveRes> cb) {
  XdrEncoder enc;
  DirOpArgs{dir, name}.Encode(enc);
  CallTyped(NfsProc::kRemove, enc.Take(), std::move(cb));
}

void NfsClient::Rmdir(const FileHandle& dir, const std::string& name, Callback<RemoveRes> cb) {
  XdrEncoder enc;
  DirOpArgs{dir, name}.Encode(enc);
  CallTyped(NfsProc::kRmdir, enc.Take(), std::move(cb));
}

void NfsClient::Rename(const FileHandle& from_dir, const std::string& from_name,
                       const FileHandle& to_dir, const std::string& to_name,
                       Callback<RenameRes> cb) {
  XdrEncoder enc;
  RenameArgs{from_dir, from_name, to_dir, to_name}.Encode(enc);
  CallTyped(NfsProc::kRename, enc.Take(), std::move(cb));
}

void NfsClient::Link(const FileHandle& file, const FileHandle& dir, const std::string& name,
                     Callback<LinkRes> cb) {
  XdrEncoder enc;
  LinkArgs{file, dir, name}.Encode(enc);
  CallTyped(NfsProc::kLink, enc.Take(), std::move(cb));
}

void NfsClient::Readdir(const FileHandle& dir, uint64_t cookie, uint32_t count,
                        Callback<ReaddirRes> cb) {
  XdrEncoder enc;
  ReaddirArgs args;
  args.dir = dir;
  args.cookie = cookie;
  args.count = count;
  args.Encode(enc);
  CallReaddir(NfsProc::kReaddir, enc.Take(), /*plus=*/false, std::move(cb));
}

void NfsClient::Readdirplus(const FileHandle& dir, uint64_t cookie, uint32_t count,
                            Callback<ReaddirRes> cb) {
  XdrEncoder enc;
  ReaddirArgs args;
  args.dir = dir;
  args.cookie = cookie;
  args.count = count;
  args.plus = true;
  args.Encode(enc);
  CallReaddir(NfsProc::kReaddirplus, enc.Take(), /*plus=*/true, std::move(cb));
}

void NfsClient::Fsstat(const FileHandle& root, Callback<FsstatRes> cb) {
  XdrEncoder enc;
  GetattrArgs{root}.Encode(enc);
  CallTyped(NfsProc::kFsstat, enc.Take(), std::move(cb));
}

void NfsClient::Fsinfo(const FileHandle& root, Callback<FsinfoRes> cb) {
  XdrEncoder enc;
  GetattrArgs{root}.Encode(enc);
  CallTyped(NfsProc::kFsinfo, enc.Take(), std::move(cb));
}

void NfsClient::Commit(const FileHandle& file, uint64_t offset, uint32_t count,
                       Callback<CommitRes> cb) {
  XdrEncoder enc;
  CommitArgs{file, offset, count}.Encode(enc);
  CallTyped(NfsProc::kCommit, enc.Take(), std::move(cb));
}

// --- SyncNfsClient ---

template <typename Res>
Result<Res> SyncNfsClient::Wait(std::function<void(NfsClient::Callback<Res>)> issue) {
  bool done = false;
  Status status;
  Res result{};
  issue([&](Status st, const Res& res) {
    done = true;
    status = st;
    result = res;
  });
  while (!done && queue_.RunOne()) {
  }
  if (!done) {
    return Status(StatusCode::kInternal, "sync nfs: event queue drained without reply");
  }
  if (!status.ok()) {
    return status;
  }
  return result;
}

Result<Fattr3> SyncNfsClient::Getattr(const FileHandle& object) {
  SLICE_ASSIGN_OR_RETURN(
      GetattrRes res, (Wait<GetattrRes>([&](NfsClient::Callback<GetattrRes> cb) {
        client_.Getattr(object, std::move(cb));
      })));
  if (res.status != Nfsstat3::kOk) {
    return Status(StatusCode::kInternal,
                  "getattr: nfsstat=" + std::to_string(static_cast<uint32_t>(res.status)));
  }
  return res.attributes;
}

Result<SetattrRes> SyncNfsClient::Setattr(const SetattrArgs& args) {
  return Wait<SetattrRes>(
      [&](NfsClient::Callback<SetattrRes> cb) { client_.Setattr(args, std::move(cb)); });
}

Result<LookupRes> SyncNfsClient::Lookup(const FileHandle& dir, const std::string& name) {
  return Wait<LookupRes>(
      [&](NfsClient::Callback<LookupRes> cb) { client_.Lookup(dir, name, std::move(cb)); });
}

Result<AccessRes> SyncNfsClient::Access(const FileHandle& object, uint32_t access) {
  return Wait<AccessRes>([&](NfsClient::Callback<AccessRes> cb) {
    client_.Access(object, access, std::move(cb));
  });
}

Result<ReadRes> SyncNfsClient::Read(const FileHandle& file, uint64_t offset, uint32_t count) {
  return Wait<ReadRes>([&](NfsClient::Callback<ReadRes> cb) {
    client_.Read(file, offset, count, std::move(cb));
  });
}

Result<WriteRes> SyncNfsClient::Write(const FileHandle& file, uint64_t offset, ByteSpan data,
                                      StableHow stable) {
  return Wait<WriteRes>([&](NfsClient::Callback<WriteRes> cb) {
    client_.Write(file, offset, data, stable, std::move(cb));
  });
}

Result<CreateRes> SyncNfsClient::Create(const FileHandle& dir, const std::string& name) {
  return Wait<CreateRes>(
      [&](NfsClient::Callback<CreateRes> cb) { client_.Create(dir, name, std::move(cb)); });
}

Result<CreateRes> SyncNfsClient::Mkdir(const FileHandle& dir, const std::string& name) {
  return Wait<CreateRes>(
      [&](NfsClient::Callback<CreateRes> cb) { client_.Mkdir(dir, name, std::move(cb)); });
}

Result<CreateRes> SyncNfsClient::Symlink(const FileHandle& dir, const std::string& name,
                                         const std::string& target) {
  return Wait<CreateRes>([&](NfsClient::Callback<CreateRes> cb) {
    client_.Symlink(dir, name, target, std::move(cb));
  });
}

Result<ReadlinkRes> SyncNfsClient::Readlink(const FileHandle& link) {
  return Wait<ReadlinkRes>(
      [&](NfsClient::Callback<ReadlinkRes> cb) { client_.Readlink(link, std::move(cb)); });
}

Result<RemoveRes> SyncNfsClient::Remove(const FileHandle& dir, const std::string& name) {
  return Wait<RemoveRes>(
      [&](NfsClient::Callback<RemoveRes> cb) { client_.Remove(dir, name, std::move(cb)); });
}

Result<RemoveRes> SyncNfsClient::Rmdir(const FileHandle& dir, const std::string& name) {
  return Wait<RemoveRes>(
      [&](NfsClient::Callback<RemoveRes> cb) { client_.Rmdir(dir, name, std::move(cb)); });
}

Result<RenameRes> SyncNfsClient::Rename(const FileHandle& from_dir, const std::string& from_name,
                                        const FileHandle& to_dir, const std::string& to_name) {
  return Wait<RenameRes>([&](NfsClient::Callback<RenameRes> cb) {
    client_.Rename(from_dir, from_name, to_dir, to_name, std::move(cb));
  });
}

Result<LinkRes> SyncNfsClient::Link(const FileHandle& file, const FileHandle& dir,
                                    const std::string& name) {
  return Wait<LinkRes>(
      [&](NfsClient::Callback<LinkRes> cb) { client_.Link(file, dir, name, std::move(cb)); });
}

Result<ReaddirRes> SyncNfsClient::Readdir(const FileHandle& dir, uint64_t cookie,
                                          uint32_t count) {
  return Wait<ReaddirRes>([&](NfsClient::Callback<ReaddirRes> cb) {
    client_.Readdir(dir, cookie, count, std::move(cb));
  });
}

Result<ReaddirRes> SyncNfsClient::Readdirplus(const FileHandle& dir, uint64_t cookie,
                                              uint32_t count) {
  return Wait<ReaddirRes>([&](NfsClient::Callback<ReaddirRes> cb) {
    client_.Readdirplus(dir, cookie, count, std::move(cb));
  });
}

Result<FsstatRes> SyncNfsClient::Fsstat(const FileHandle& root) {
  return Wait<FsstatRes>(
      [&](NfsClient::Callback<FsstatRes> cb) { client_.Fsstat(root, std::move(cb)); });
}

Result<FsinfoRes> SyncNfsClient::Fsinfo(const FileHandle& root) {
  return Wait<FsinfoRes>(
      [&](NfsClient::Callback<FsinfoRes> cb) { client_.Fsinfo(root, std::move(cb)); });
}

Result<CommitRes> SyncNfsClient::Commit(const FileHandle& file, uint64_t offset,
                                        uint32_t count) {
  return Wait<CommitRes>([&](NfsClient::Callback<CommitRes> cb) {
    client_.Commit(file, offset, count, std::move(cb));
  });
}

Result<std::vector<DirEntry>> SyncNfsClient::ReadWholeDir(const FileHandle& dir) {
  std::vector<DirEntry> all;
  uint64_t cookie = 0;
  while (true) {
    SLICE_ASSIGN_OR_RETURN(ReaddirRes res, Readdir(dir, cookie));
    if (res.status != Nfsstat3::kOk) {
      return Status(StatusCode::kInternal,
                    "readdir: nfsstat=" + std::to_string(static_cast<uint32_t>(res.status)));
    }
    for (const DirEntry& entry : res.entries) {
      cookie = entry.cookie;
      all.push_back(entry);
    }
    if (res.eof || res.entries.empty()) {
      break;
    }
  }
  return all;
}

}  // namespace slice
