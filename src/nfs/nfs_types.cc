#include "src/nfs/nfs_types.h"

#include <algorithm>

#include "src/common/status.h"

namespace slice {

const char* NfsProcName(NfsProc proc) {
  switch (proc) {
    case NfsProc::kNull:
      return "null";
    case NfsProc::kGetattr:
      return "getattr";
    case NfsProc::kSetattr:
      return "setattr";
    case NfsProc::kLookup:
      return "lookup";
    case NfsProc::kAccess:
      return "access";
    case NfsProc::kReadlink:
      return "readlink";
    case NfsProc::kRead:
      return "read";
    case NfsProc::kWrite:
      return "write";
    case NfsProc::kCreate:
      return "create";
    case NfsProc::kMkdir:
      return "mkdir";
    case NfsProc::kSymlink:
      return "symlink";
    case NfsProc::kMknod:
      return "mknod";
    case NfsProc::kRemove:
      return "remove";
    case NfsProc::kRmdir:
      return "rmdir";
    case NfsProc::kRename:
      return "rename";
    case NfsProc::kLink:
      return "link";
    case NfsProc::kReaddir:
      return "readdir";
    case NfsProc::kReaddirplus:
      return "readdirplus";
    case NfsProc::kFsstat:
      return "fsstat";
    case NfsProc::kFsinfo:
      return "fsinfo";
    case NfsProc::kPathconf:
      return "pathconf";
    case NfsProc::kCommit:
      return "commit";
  }
  return "unknown";
}

namespace {

uint64_t ComputeCapability(ByteSpan prefix, uint64_t volume_secret) {
  // A keyed scramble of the identifying fields. Not cryptographic — the
  // simulation has no real adversary — but structurally it plays the role of
  // the NASD capability: storage nodes reject handles whose tag does not
  // verify under the volume secret.
  return MixU64(Fnv1a64(prefix) ^ MixU64(volume_secret));
}

}  // namespace

FileHandle FileHandle::Make(uint32_t volume, uint64_t fileid, uint32_t generation,
                            FileType3 type, uint8_t replication, uint64_t volume_secret) {
  FileHandle fh;
  PutU32(fh.bytes_.data(), volume);
  PutU64(fh.bytes_.data() + 4, fileid);
  PutU32(fh.bytes_.data() + 12, generation);
  fh.bytes_[16] = static_cast<uint8_t>(type);
  fh.bytes_[17] = replication == 0 ? 1 : replication;
  fh.bytes_[18] = 0;
  fh.bytes_[19] = 0;
  const uint64_t tag = ComputeCapability(ByteSpan(fh.bytes_.data(), 20), volume_secret);
  PutU64(fh.bytes_.data() + 20, tag);
  PutU32(fh.bytes_.data() + 28, 0);
  return fh;
}

FileHandle FileHandle::FromBytes(ByteSpan raw) {
  FileHandle fh;
  SLICE_CHECK(raw.size() == kSize);
  std::copy(raw.begin(), raw.end(), fh.bytes_.begin());
  return fh;
}

bool FileHandle::VerifyCapability(uint64_t volume_secret) const {
  return capability() == ComputeCapability(ByteSpan(bytes_.data(), 20), volume_secret);
}

bool FileHandle::empty() const {
  for (uint8_t b : bytes_) {
    if (b != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace slice
