#include "src/nfs/nfs_xdr.h"

namespace slice {
namespace {

void EncodeNfsTime(XdrEncoder& enc, const NfsTime& t) {
  enc.PutUint32(t.seconds);
  enc.PutUint32(t.nseconds);
}

Result<NfsTime> DecodeNfsTime(XdrDecoder& dec) {
  NfsTime t;
  SLICE_ASSIGN_OR_RETURN(t.seconds, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(t.nseconds, dec.GetUint32());
  return t;
}

Result<Nfsstat3> DecodeStatus(XdrDecoder& dec) {
  SLICE_ASSIGN_OR_RETURN(uint32_t v, dec.GetUint32());
  return static_cast<Nfsstat3>(v);
}

void EncodeWccAttr(XdrEncoder& enc, const WccAttr& attr) {
  enc.PutUint64(attr.size);
  EncodeNfsTime(enc, attr.mtime);
  EncodeNfsTime(enc, attr.ctime);
}

Result<WccAttr> DecodeWccAttr(XdrDecoder& dec) {
  WccAttr attr;
  SLICE_ASSIGN_OR_RETURN(attr.size, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(attr.mtime, DecodeNfsTime(dec));
  SLICE_ASSIGN_OR_RETURN(attr.ctime, DecodeNfsTime(dec));
  return attr;
}

}  // namespace

void EncodeFileHandle(XdrEncoder& enc, const FileHandle& fh) {
  enc.PutOpaqueVar(fh.bytes());
}

Result<FileHandle> DecodeFileHandle(XdrDecoder& dec) {
  // Allocation-free: length check first, then a raw view straight into the
  // packet buffer — fhandles are decoded on every hot-path request.
  SLICE_ASSIGN_OR_RETURN(uint32_t len, dec.GetUint32());
  if (len != FileHandle::kSize) {
    return Status(StatusCode::kCorrupt, "nfs: bad fhandle size");
  }
  SLICE_ASSIGN_OR_RETURN(ByteSpan raw, dec.GetRawView(len + XdrPad(len)));
  return FileHandle::FromBytes(raw.subspan(0, len));
}

void EncodeFattr3(XdrEncoder& enc, const Fattr3& attr) {
  enc.PutEnum(static_cast<uint32_t>(attr.type));
  enc.PutUint32(attr.mode);
  enc.PutUint32(attr.nlink);
  enc.PutUint32(attr.uid);
  enc.PutUint32(attr.gid);
  enc.PutUint64(attr.size);
  enc.PutUint64(attr.used);
  enc.PutUint32(attr.rdev_major);
  enc.PutUint32(attr.rdev_minor);
  enc.PutUint64(attr.fsid);
  enc.PutUint64(attr.fileid);
  EncodeNfsTime(enc, attr.atime);
  EncodeNfsTime(enc, attr.mtime);
  EncodeNfsTime(enc, attr.ctime);
}

Result<Fattr3> DecodeFattr3(XdrDecoder& dec) {
  Fattr3 attr;
  SLICE_ASSIGN_OR_RETURN(uint32_t type, dec.GetUint32());
  attr.type = static_cast<FileType3>(type);
  SLICE_ASSIGN_OR_RETURN(attr.mode, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(attr.nlink, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(attr.uid, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(attr.gid, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(attr.size, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(attr.used, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(attr.rdev_major, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(attr.rdev_minor, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(attr.fsid, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(attr.fileid, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(attr.atime, DecodeNfsTime(dec));
  SLICE_ASSIGN_OR_RETURN(attr.mtime, DecodeNfsTime(dec));
  SLICE_ASSIGN_OR_RETURN(attr.ctime, DecodeNfsTime(dec));
  return attr;
}

void EncodePostOpAttr(XdrEncoder& enc, const std::optional<Fattr3>& attr) {
  enc.PutBool(attr.has_value());
  if (attr.has_value()) {
    EncodeFattr3(enc, *attr);
  }
}

Result<std::optional<Fattr3>> DecodePostOpAttr(XdrDecoder& dec) {
  SLICE_ASSIGN_OR_RETURN(bool present, dec.GetBool());
  if (!present) {
    return std::optional<Fattr3>();
  }
  SLICE_ASSIGN_OR_RETURN(Fattr3 attr, DecodeFattr3(dec));
  return std::optional<Fattr3>(attr);
}

void EncodeWccData(XdrEncoder& enc, const WccData& wcc) {
  enc.PutBool(wcc.before.has_value());
  if (wcc.before.has_value()) {
    EncodeWccAttr(enc, *wcc.before);
  }
  EncodePostOpAttr(enc, wcc.after);
}

Result<WccData> DecodeWccData(XdrDecoder& dec) {
  WccData wcc;
  SLICE_ASSIGN_OR_RETURN(bool has_before, dec.GetBool());
  if (has_before) {
    SLICE_ASSIGN_OR_RETURN(WccAttr before, DecodeWccAttr(dec));
    wcc.before = before;
  }
  SLICE_ASSIGN_OR_RETURN(wcc.after, DecodePostOpAttr(dec));
  return wcc;
}

void EncodeSattr3(XdrEncoder& enc, const Sattr3& sattr) {
  auto put_opt32 = [&enc](const std::optional<uint32_t>& v) {
    enc.PutBool(v.has_value());
    if (v.has_value()) {
      enc.PutUint32(*v);
    }
  };
  put_opt32(sattr.mode);
  put_opt32(sattr.uid);
  put_opt32(sattr.gid);
  enc.PutBool(sattr.size.has_value());
  if (sattr.size.has_value()) {
    enc.PutUint64(*sattr.size);
  }
  // RFC 1813 time_how: 0 = DONT_CHANGE, 2 = SET_TO_CLIENT_TIME.
  auto put_time = [&enc](const std::optional<NfsTime>& t) {
    enc.PutEnum(t.has_value() ? 2u : 0u);
    if (t.has_value()) {
      EncodeNfsTime(enc, *t);
    }
  };
  put_time(sattr.atime);
  put_time(sattr.mtime);
}

Result<Sattr3> DecodeSattr3(XdrDecoder& dec) {
  Sattr3 sattr;
  auto get_opt32 = [&dec](std::optional<uint32_t>& out) -> Status {
    SLICE_ASSIGN_OR_RETURN(bool present, dec.GetBool());
    if (present) {
      SLICE_ASSIGN_OR_RETURN(uint32_t v, dec.GetUint32());
      out = v;
    }
    return OkStatus();
  };
  SLICE_RETURN_IF_ERROR(get_opt32(sattr.mode));
  SLICE_RETURN_IF_ERROR(get_opt32(sattr.uid));
  SLICE_RETURN_IF_ERROR(get_opt32(sattr.gid));
  {
    SLICE_ASSIGN_OR_RETURN(bool present, dec.GetBool());
    if (present) {
      SLICE_ASSIGN_OR_RETURN(uint64_t v, dec.GetUint64());
      sattr.size = v;
    }
  }
  auto get_time = [&dec](std::optional<NfsTime>& out) -> Status {
    SLICE_ASSIGN_OR_RETURN(uint32_t how, dec.GetUint32());
    if (how == 2) {
      SLICE_ASSIGN_OR_RETURN(NfsTime t, DecodeNfsTime(dec));
      out = t;
    } else if (how > 2) {
      return Status(StatusCode::kCorrupt, "nfs: bad time_how");
    }
    return OkStatus();
  };
  SLICE_RETURN_IF_ERROR(get_time(sattr.atime));
  SLICE_RETURN_IF_ERROR(get_time(sattr.mtime));
  return sattr;
}

void EncodePostOpFh(XdrEncoder& enc, const std::optional<FileHandle>& fh) {
  enc.PutBool(fh.has_value());
  if (fh.has_value()) {
    EncodeFileHandle(enc, *fh);
  }
}

Result<std::optional<FileHandle>> DecodePostOpFh(XdrDecoder& dec) {
  SLICE_ASSIGN_OR_RETURN(bool present, dec.GetBool());
  if (!present) {
    return std::optional<FileHandle>();
  }
  SLICE_ASSIGN_OR_RETURN(FileHandle fh, DecodeFileHandle(dec));
  return std::optional<FileHandle>(fh);
}

// --- arguments ---

void GetattrArgs::Encode(XdrEncoder& enc) const { EncodeFileHandle(enc, object); }

Result<GetattrArgs> GetattrArgs::Decode(XdrDecoder& dec) {
  GetattrArgs args;
  SLICE_ASSIGN_OR_RETURN(args.object, DecodeFileHandle(dec));
  return args;
}

void SetattrArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, object);
  EncodeSattr3(enc, new_attributes);
  enc.PutBool(guard_ctime.has_value());
  if (guard_ctime.has_value()) {
    EncodeNfsTime(enc, *guard_ctime);
  }
}

Result<SetattrArgs> SetattrArgs::Decode(XdrDecoder& dec) {
  SetattrArgs args;
  SLICE_ASSIGN_OR_RETURN(args.object, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.new_attributes, DecodeSattr3(dec));
  SLICE_ASSIGN_OR_RETURN(bool guarded, dec.GetBool());
  if (guarded) {
    SLICE_ASSIGN_OR_RETURN(NfsTime t, DecodeNfsTime(dec));
    args.guard_ctime = t;
  }
  return args;
}

void DirOpArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, dir);
  enc.PutString(name);
}

Result<DirOpArgs> DirOpArgs::Decode(XdrDecoder& dec) {
  DirOpArgs args;
  SLICE_ASSIGN_OR_RETURN(args.dir, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.name, dec.GetString(255));
  return args;
}

void AccessArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, object);
  enc.PutUint32(access);
}

Result<AccessArgs> AccessArgs::Decode(XdrDecoder& dec) {
  AccessArgs args;
  SLICE_ASSIGN_OR_RETURN(args.object, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.access, dec.GetUint32());
  return args;
}

void ReadArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, file);
  enc.PutUint64(offset);
  enc.PutUint32(count);
}

Result<ReadArgs> ReadArgs::Decode(XdrDecoder& dec) {
  ReadArgs args;
  SLICE_ASSIGN_OR_RETURN(args.file, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.offset, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(args.count, dec.GetUint32());
  return args;
}

void WriteArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, file);
  enc.PutUint64(offset);
  enc.PutUint32(count);
  enc.PutEnum(static_cast<uint32_t>(stable));
  enc.PutOpaqueVar(data);
}

Result<WriteArgs> WriteArgs::Decode(XdrDecoder& dec) {
  WriteArgs args;
  SLICE_ASSIGN_OR_RETURN(args.file, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.offset, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(args.count, dec.GetUint32());
  SLICE_ASSIGN_OR_RETURN(uint32_t stable, dec.GetUint32());
  if (stable > 2) {
    return Status(StatusCode::kCorrupt, "nfs: bad stable_how");
  }
  args.stable = static_cast<StableHow>(stable);
  SLICE_ASSIGN_OR_RETURN(args.data, dec.GetOpaqueVar(1 << 20));
  return args;
}

void CreateArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, dir);
  enc.PutString(name);
  enc.PutEnum(static_cast<uint32_t>(mode));
  if (mode != CreateMode::kExclusive) {
    EncodeSattr3(enc, attributes);
  } else {
    enc.PutUint64(0);  // createverf3
  }
}

Result<CreateArgs> CreateArgs::Decode(XdrDecoder& dec) {
  CreateArgs args;
  SLICE_ASSIGN_OR_RETURN(args.dir, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.name, dec.GetString(255));
  SLICE_ASSIGN_OR_RETURN(uint32_t mode, dec.GetUint32());
  if (mode > 2) {
    return Status(StatusCode::kCorrupt, "nfs: bad createmode");
  }
  args.mode = static_cast<CreateMode>(mode);
  if (args.mode != CreateMode::kExclusive) {
    SLICE_ASSIGN_OR_RETURN(args.attributes, DecodeSattr3(dec));
  } else {
    SLICE_ASSIGN_OR_RETURN(uint64_t verf, dec.GetUint64());
    (void)verf;
  }
  return args;
}

void MkdirArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, dir);
  enc.PutString(name);
  EncodeSattr3(enc, attributes);
}

Result<MkdirArgs> MkdirArgs::Decode(XdrDecoder& dec) {
  MkdirArgs args;
  SLICE_ASSIGN_OR_RETURN(args.dir, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.name, dec.GetString(255));
  SLICE_ASSIGN_OR_RETURN(args.attributes, DecodeSattr3(dec));
  return args;
}

void SymlinkArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, dir);
  enc.PutString(name);
  EncodeSattr3(enc, attributes);
  enc.PutString(target);
}

Result<SymlinkArgs> SymlinkArgs::Decode(XdrDecoder& dec) {
  SymlinkArgs args;
  SLICE_ASSIGN_OR_RETURN(args.dir, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.name, dec.GetString(255));
  SLICE_ASSIGN_OR_RETURN(args.attributes, DecodeSattr3(dec));
  SLICE_ASSIGN_OR_RETURN(args.target, dec.GetString(1024));
  return args;
}

void RenameArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, from_dir);
  enc.PutString(from_name);
  EncodeFileHandle(enc, to_dir);
  enc.PutString(to_name);
}

Result<RenameArgs> RenameArgs::Decode(XdrDecoder& dec) {
  RenameArgs args;
  SLICE_ASSIGN_OR_RETURN(args.from_dir, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.from_name, dec.GetString(255));
  SLICE_ASSIGN_OR_RETURN(args.to_dir, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.to_name, dec.GetString(255));
  return args;
}

void LinkArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, file);
  EncodeFileHandle(enc, dir);
  enc.PutString(name);
}

Result<LinkArgs> LinkArgs::Decode(XdrDecoder& dec) {
  LinkArgs args;
  SLICE_ASSIGN_OR_RETURN(args.file, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.dir, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.name, dec.GetString(255));
  return args;
}

void ReaddirArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, dir);
  enc.PutUint64(cookie);
  enc.PutUint64(cookieverf);
  if (plus) {
    enc.PutUint32(count);     // dircount
    enc.PutUint32(maxcount);  // maxcount
  } else {
    enc.PutUint32(count);
  }
}

Result<ReaddirArgs> ReaddirArgs::Decode(XdrDecoder& dec, bool plus) {
  ReaddirArgs args;
  args.plus = plus;
  SLICE_ASSIGN_OR_RETURN(args.dir, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.cookie, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(args.cookieverf, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(args.count, dec.GetUint32());
  if (plus) {
    SLICE_ASSIGN_OR_RETURN(args.maxcount, dec.GetUint32());
  }
  return args;
}

void CommitArgs::Encode(XdrEncoder& enc) const {
  EncodeFileHandle(enc, file);
  enc.PutUint64(offset);
  enc.PutUint32(count);
}

Result<CommitArgs> CommitArgs::Decode(XdrDecoder& dec) {
  CommitArgs args;
  SLICE_ASSIGN_OR_RETURN(args.file, DecodeFileHandle(dec));
  SLICE_ASSIGN_OR_RETURN(args.offset, dec.GetUint64());
  SLICE_ASSIGN_OR_RETURN(args.count, dec.GetUint32());
  return args;
}

// --- results ---

void GetattrRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  if (status == Nfsstat3::kOk) {
    EncodeFattr3(enc, attributes);
  }
}

Result<GetattrRes> GetattrRes::Decode(XdrDecoder& dec) {
  GetattrRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.attributes, DecodeFattr3(dec));
  }
  return res;
}

void SetattrRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodeWccData(enc, wcc);
}

Result<SetattrRes> SetattrRes::Decode(XdrDecoder& dec) {
  SetattrRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.wcc, DecodeWccData(dec));
  return res;
}

void LookupRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  if (status == Nfsstat3::kOk) {
    EncodeFileHandle(enc, object);
    EncodePostOpAttr(enc, obj_attributes);
  }
  EncodePostOpAttr(enc, dir_attributes);
}

Result<LookupRes> LookupRes::Decode(XdrDecoder& dec) {
  LookupRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.object, DecodeFileHandle(dec));
    SLICE_ASSIGN_OR_RETURN(res.obj_attributes, DecodePostOpAttr(dec));
  }
  SLICE_ASSIGN_OR_RETURN(res.dir_attributes, DecodePostOpAttr(dec));
  return res;
}

void AccessRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodePostOpAttr(enc, obj_attributes);
  if (status == Nfsstat3::kOk) {
    enc.PutUint32(access);
  }
}

Result<AccessRes> AccessRes::Decode(XdrDecoder& dec) {
  AccessRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.obj_attributes, DecodePostOpAttr(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.access, dec.GetUint32());
  }
  return res;
}

void ReadlinkRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodePostOpAttr(enc, symlink_attributes);
  if (status == Nfsstat3::kOk) {
    enc.PutString(target);
  }
}

Result<ReadlinkRes> ReadlinkRes::Decode(XdrDecoder& dec) {
  ReadlinkRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.symlink_attributes, DecodePostOpAttr(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.target, dec.GetString(1024));
  }
  return res;
}

void ReadRes::Encode(XdrEncoder& enc) const { Encode(enc, ByteSpan(data)); }

void ReadRes::Encode(XdrEncoder& enc, ByteSpan payload) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodePostOpAttr(enc, file_attributes);
  if (status == Nfsstat3::kOk) {
    enc.PutUint32(count);
    enc.PutBool(eof);
    enc.PutOpaqueVar(payload);
  }
}

Result<ReadRes> ReadRes::Decode(XdrDecoder& dec) {
  ReadRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.file_attributes, DecodePostOpAttr(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.count, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.eof, dec.GetBool());
    SLICE_ASSIGN_OR_RETURN(res.data, dec.GetOpaqueVar(1 << 20));
  }
  return res;
}

void WriteRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodeWccData(enc, wcc);
  if (status == Nfsstat3::kOk) {
    enc.PutUint32(count);
    enc.PutEnum(static_cast<uint32_t>(committed));
    enc.PutUint64(verf);
  }
}

Result<WriteRes> WriteRes::Decode(XdrDecoder& dec) {
  WriteRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.wcc, DecodeWccData(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.count, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(uint32_t committed, dec.GetUint32());
    res.committed = static_cast<StableHow>(committed);
    SLICE_ASSIGN_OR_RETURN(res.verf, dec.GetUint64());
  }
  return res;
}

void CreateRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  if (status == Nfsstat3::kOk) {
    EncodePostOpFh(enc, object);
    EncodePostOpAttr(enc, obj_attributes);
  }
  EncodeWccData(enc, dir_wcc);
}

Result<CreateRes> CreateRes::Decode(XdrDecoder& dec) {
  CreateRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.object, DecodePostOpFh(dec));
    SLICE_ASSIGN_OR_RETURN(res.obj_attributes, DecodePostOpAttr(dec));
  }
  SLICE_ASSIGN_OR_RETURN(res.dir_wcc, DecodeWccData(dec));
  return res;
}

void RemoveRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodeWccData(enc, dir_wcc);
}

Result<RemoveRes> RemoveRes::Decode(XdrDecoder& dec) {
  RemoveRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.dir_wcc, DecodeWccData(dec));
  return res;
}

void RenameRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodeWccData(enc, from_dir_wcc);
  EncodeWccData(enc, to_dir_wcc);
}

Result<RenameRes> RenameRes::Decode(XdrDecoder& dec) {
  RenameRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.from_dir_wcc, DecodeWccData(dec));
  SLICE_ASSIGN_OR_RETURN(res.to_dir_wcc, DecodeWccData(dec));
  return res;
}

void LinkRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodePostOpAttr(enc, file_attributes);
  EncodeWccData(enc, dir_wcc);
}

Result<LinkRes> LinkRes::Decode(XdrDecoder& dec) {
  LinkRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.file_attributes, DecodePostOpAttr(dec));
  SLICE_ASSIGN_OR_RETURN(res.dir_wcc, DecodeWccData(dec));
  return res;
}

void ReaddirRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodePostOpAttr(enc, dir_attributes);
  if (status != Nfsstat3::kOk) {
    return;
  }
  enc.PutUint64(cookieverf);
  for (const DirEntry& entry : entries) {
    enc.PutBool(true);
    enc.PutUint64(entry.fileid);
    enc.PutString(entry.name);
    enc.PutUint64(entry.cookie);
    if (plus) {
      EncodePostOpAttr(enc, entry.attr);
      EncodePostOpFh(enc, entry.handle);
    }
  }
  enc.PutBool(false);
  enc.PutBool(eof);
}

Result<ReaddirRes> ReaddirRes::Decode(XdrDecoder& dec, bool plus) {
  ReaddirRes res;
  res.plus = plus;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.dir_attributes, DecodePostOpAttr(dec));
  if (res.status != Nfsstat3::kOk) {
    return res;
  }
  SLICE_ASSIGN_OR_RETURN(res.cookieverf, dec.GetUint64());
  while (true) {
    SLICE_ASSIGN_OR_RETURN(bool more, dec.GetBool());
    if (!more) {
      break;
    }
    DirEntry entry;
    SLICE_ASSIGN_OR_RETURN(entry.fileid, dec.GetUint64());
    SLICE_ASSIGN_OR_RETURN(entry.name, dec.GetString(255));
    SLICE_ASSIGN_OR_RETURN(entry.cookie, dec.GetUint64());
    if (plus) {
      SLICE_ASSIGN_OR_RETURN(entry.attr, DecodePostOpAttr(dec));
      SLICE_ASSIGN_OR_RETURN(entry.handle, DecodePostOpFh(dec));
    }
    res.entries.push_back(std::move(entry));
  }
  SLICE_ASSIGN_OR_RETURN(res.eof, dec.GetBool());
  return res;
}

void FsstatRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodePostOpAttr(enc, obj_attributes);
  if (status == Nfsstat3::kOk) {
    enc.PutUint64(tbytes);
    enc.PutUint64(fbytes);
    enc.PutUint64(abytes);
    enc.PutUint64(tfiles);
    enc.PutUint64(ffiles);
    enc.PutUint64(afiles);
    enc.PutUint32(invarsec);
  }
}

Result<FsstatRes> FsstatRes::Decode(XdrDecoder& dec) {
  FsstatRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.obj_attributes, DecodePostOpAttr(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.tbytes, dec.GetUint64());
    SLICE_ASSIGN_OR_RETURN(res.fbytes, dec.GetUint64());
    SLICE_ASSIGN_OR_RETURN(res.abytes, dec.GetUint64());
    SLICE_ASSIGN_OR_RETURN(res.tfiles, dec.GetUint64());
    SLICE_ASSIGN_OR_RETURN(res.ffiles, dec.GetUint64());
    SLICE_ASSIGN_OR_RETURN(res.afiles, dec.GetUint64());
    SLICE_ASSIGN_OR_RETURN(res.invarsec, dec.GetUint32());
  }
  return res;
}

void FsinfoRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodePostOpAttr(enc, obj_attributes);
  if (status == Nfsstat3::kOk) {
    enc.PutUint32(rtmax);
    enc.PutUint32(rtpref);
    enc.PutUint32(rtmult);
    enc.PutUint32(wtmax);
    enc.PutUint32(wtpref);
    enc.PutUint32(wtmult);
    enc.PutUint32(dtpref);
    enc.PutUint64(maxfilesize);
    enc.PutUint32(time_delta.seconds);
    enc.PutUint32(time_delta.nseconds);
    enc.PutUint32(properties);
  }
}

Result<FsinfoRes> FsinfoRes::Decode(XdrDecoder& dec) {
  FsinfoRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.obj_attributes, DecodePostOpAttr(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.rtmax, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.rtpref, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.rtmult, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.wtmax, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.wtpref, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.wtmult, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.dtpref, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.maxfilesize, dec.GetUint64());
    SLICE_ASSIGN_OR_RETURN(res.time_delta.seconds, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.time_delta.nseconds, dec.GetUint32());
    SLICE_ASSIGN_OR_RETURN(res.properties, dec.GetUint32());
  }
  return res;
}

void CommitRes::Encode(XdrEncoder& enc) const {
  enc.PutEnum(static_cast<uint32_t>(status));
  EncodeWccData(enc, wcc);
  if (status == Nfsstat3::kOk) {
    enc.PutUint64(verf);
  }
}

Result<CommitRes> CommitRes::Decode(XdrDecoder& dec) {
  CommitRes res;
  SLICE_ASSIGN_OR_RETURN(res.status, DecodeStatus(dec));
  SLICE_ASSIGN_OR_RETURN(res.wcc, DecodeWccData(dec));
  if (res.status == Nfsstat3::kOk) {
    SLICE_ASSIGN_OR_RETURN(res.verf, dec.GetUint64());
  }
  return res;
}

}  // namespace slice
