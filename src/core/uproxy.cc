#include "src/core/uproxy.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "src/common/logging.h"

namespace slice {
namespace {

constexpr size_t kMaxPending = 8192;

// Coin in [0,1) derived from the (parent, name) fingerprint, so retransmitted
// mkdirs take the same redirect decision (paper §3.2).
double RedirectCoin(uint64_t fingerprint) {
  return static_cast<double>(MixU64(fingerprint) >> 11) * 0x1.0p-53;
}

// NFS procedure -> coarse tenant op class (per-tenant accounting buckets).
obs::TenantOpClass ClassOfProc(NfsProc proc) {
  switch (proc) {
    case NfsProc::kRead:
      return obs::TenantOpClass::kRead;
    case NfsProc::kWrite:
    case NfsProc::kCommit:
      return obs::TenantOpClass::kWrite;
    case NfsProc::kLookup:
    case NfsProc::kCreate:
    case NfsProc::kMkdir:
    case NfsProc::kSymlink:
    case NfsProc::kRemove:
    case NfsProc::kRmdir:
    case NfsProc::kRename:
    case NfsProc::kLink:
    case NfsProc::kReaddir:
    case NfsProc::kReaddirplus:
      return obs::TenantOpClass::kName;
    case NfsProc::kGetattr:
    case NfsProc::kSetattr:
    case NfsProc::kAccess:
      return obs::TenantOpClass::kAttr;
    default:
      return obs::TenantOpClass::kOther;
  }
}

}  // namespace

Uproxy::Uproxy(Network& net, EventQueue& queue, Host& client_host, UproxyConfig config)
    : net_(net),
      queue_(queue),
      client_host_(client_host),
      config_(std::move(config)),
      attr_cache_(config_.attr_cache_entries),
      lookup_cache_(config_.lookup_cache_entries) {
  SLICE_CHECK(!config_.dir_servers.empty());
  SLICE_CHECK(!config_.storage_nodes.empty());
  dir_table_ = RoutingTable(config_.logical_name_slots, config_.dir_servers);
  if (!config_.small_file_servers.empty()) {
    sfs_table_ = RoutingTable(config_.logical_name_slots, config_.small_file_servers);
    if (config_.rendezvous_routing) {
      // HRW slot fill: a small-file server's death (manager-installed
      // assignment) or addition rebinds only the slots it owns/wins.
      sfs_table_.InstallAssignment(
          0, config_.small_file_servers,
          RendezvousAssignment(config_.logical_name_slots,
                               config_.small_file_servers.size()));
    }
  }
  own_rpc_ = std::make_unique<RpcClient>(client_host_, queue_, config_.own_rpc_params);
  net_.InstallTap(client_host_.addr(), this);
}

Uproxy::~Uproxy() {
  *alive_ = false;
  net_.RemoveTap(client_host_.addr());
}

void Uproxy::set_metrics(obs::Metrics* metrics) {
  if (metrics == nullptr || !metrics->enabled()) {
    return;
  }
  obs::MetricsRegistry& reg = metrics->Registry(client_host_.addr());
  // Hot-path instruments.
  m_cpu_ = reg.GetHistogram("uproxy_cpu_ns");
  m_attr_hits_ = reg.GetCounter("uproxy_attr_hits");
  m_attr_misses_ = reg.GetCounter("uproxy_attr_misses");
  // Route mix and soft-state counters: providers over the OpCounters the
  // µproxy already maintains — nothing new on the request path.
  static constexpr std::pair<const char*, const char*> kFromOpCounters[] = {
      {"uproxy_intercepted", "intercepted"},
      {"uproxy_pass_through", "pass_through"},
      {"uproxy_duplicates_absorbed", "duplicate_absorbed"},
      {"uproxy_route_dir", "routed_dir"},
      {"uproxy_route_sfs", "routed_sfs"},
      {"uproxy_route_storage", "routed_storage"},
      {"uproxy_mirrored_writes", "mirrored_writes"},
      {"uproxy_small_commits", "small_commits"},
      {"uproxy_multi_commits", "multi_commits"},
      {"uproxy_unavailable_rejected", "unavailable_rejected"},
      {"uproxy_map_fetches", "map_fetches"},
      {"uproxy_attrs_patched", "attrs_patched"},
      {"uproxy_table_installs", "table_installs"},
      {"uproxy_table_fetches", "table_fetches"},
      {"uproxy_misdirect_notices", "misdirect_notices"},
      {"uproxy_soft_state_drops", "soft_state_drops"},
  };
  for (const auto& [metric, op] : kFromOpCounters) {
    reg.GetCounter(metric)->SetProvider(
        [this, op = std::string_view(op)]() { return counters_.Get(op); });
  }
  if (config_.proxy_cache) {
    // Registered only when the proxy cache is on so metrics snapshots of
    // cache-off runs stay byte-identical to earlier builds.
    m_lookup_hits_ = reg.GetCounter("uproxy_cache_lookup_hits");
    m_lookup_misses_ = reg.GetCounter("uproxy_cache_lookup_misses");
    reg.GetCounter("uproxy_cache_getattr_hits")
        ->SetProvider([this]() { return counters_.Get("cache_getattr_hits"); });
    reg.GetCounter("uproxy_cache_flushed_entries")
        ->SetProvider([this]() { return counters_.Get("cache_flushed_entries"); });
    reg.GetCounter("uproxy_lookup_cache_evictions")
        ->SetProvider([this]() { return lookup_cache_.evictions(); });
    reg.GetGauge("uproxy_lookup_cache_size")->SetProvider([this]() {
      return static_cast<int64_t>(lookup_cache_.size());
    });
  }
  reg.GetCounter("uproxy_attr_evictions")->SetProvider(
      [this]() { return attr_cache_.evictions(); });
  reg.GetCounter("uproxy_own_retransmits")->SetProvider(
      [this]() { return own_rpc_->retransmissions(); });
  reg.GetGauge("uproxy_pending")->SetProvider(
      [this]() { return static_cast<int64_t>(pending_.size()); });
  reg.GetGauge("uproxy_table_epoch")->SetProvider(
      [this]() { return static_cast<int64_t>(table_epoch_); });
  // Tenant plane: cache the hub's preallocated instrument array so the hot
  // path is one bounds check and an array index (no map, no allocation).
  tenant_data_ = metrics->TenantData();
  tenant_count_ = metrics->num_tenants();
}

void Uproxy::AccountTenant(uint32_t tenant, NfsProc proc, uint32_t nbytes, SimTime latency,
                           uint64_t trace_id, bool error) {
  if (tenant == 0 || tenant > tenant_count_) {
    return;  // untenanted/system traffic, or a tag we were not configured for
  }
  tenant_data_[tenant - 1].Account(ClassOfProc(proc), nbytes, latency, trace_id,
                                   queue_.now(), error);
}

NfsTime Uproxy::Now() const {
  return NfsTime{static_cast<uint32_t>(queue_.now() / kNanosPerSec),
                 static_cast<uint32_t>(queue_.now() % kNanosPerSec)};
}

SimTime Uproxy::ChargeCpu() {
  const SimTime now = queue_.now();
  const SimTime start = std::max(cpu_.busy_until(), now);
  const SimTime done = cpu_.Acquire(now, FromMicros(config_.per_packet_cpu_us));
  obs::ChargeSim(prof_ledger_, obs::LedgerCat::kQueue, start - now);
  obs::ChargeSim(prof_ledger_, obs::LedgerCat::kCpu, done - start);
  obs::Observe(m_cpu_, done - now);
  return done;
}

SimTime Uproxy::ChargeCpu(const obs::TraceContext& ctx) {
  const SimTime now = queue_.now();
  const SimTime start = std::max(cpu_.busy_until(), now);
  const SimTime done = cpu_.Acquire(now, FromMicros(config_.per_packet_cpu_us));
  obs::ChargeSim(prof_ledger_, obs::LedgerCat::kQueue, start - now);
  obs::ChargeSim(prof_ledger_, obs::LedgerCat::kCpu, done - start);
  obs::Observe(m_cpu_, done - now);
  if (tracer_ != nullptr && ctx.valid()) {
    if (start > now) {
      tracer_->RecordSpan(client_host_.addr(), ctx, obs::SpanCat::kQueue, "uproxy_cpu_wait",
                          now, start);
    }
    if (done > start) {
      tracer_->RecordSpan(client_host_.addr(), ctx, obs::SpanCat::kCpu, "uproxy_cpu", start,
                          done);
    }
  }
  return done;
}

obs::TraceContext Uproxy::BeginTrace(Pending& pending, const char* route) {
  if (tracer_ == nullptr || !tracer_->enabled()) {
    return obs::TraceContext{};
  }
  if (pending.trace_id == 0) {
    pending.trace_id = tracer_->NewTraceId();
    pending.root_span_id = tracer_->NewSpanId();
    pending.trace_start = queue_.now();
    tracer_->RecordInstant(client_host_.addr(),
                           obs::TraceContext{pending.trace_id, pending.root_span_id}, route,
                           queue_.now());
  } else {
    tracer_->RecordInstant(client_host_.addr(),
                           obs::TraceContext{pending.trace_id, pending.root_span_id},
                           "client_retransmit", queue_.now());
  }
  return obs::TraceContext{pending.trace_id, pending.root_span_id};
}

void Uproxy::FinishTrace(const Pending& pending, SimTime end) {
  if (tracer_ == nullptr || pending.trace_id == 0) {
    return;
  }
  char name[obs::kSpanNameCap];
  std::snprintf(name, sizeof(name), "op:%s", NfsProcName(pending.proc));
  tracer_->RecordSpan(client_host_.addr(),
                      obs::TraceContext{pending.trace_id, pending.root_span_id},
                      obs::SpanCat::kOther, name, pending.trace_start, end, /*root=*/true);
}

void Uproxy::DropSoftState() {
  pending_.Clear();
  attr_cache_.Clear();
  lookup_cache_.Clear();
  map_cache_.clear();
  // "It is free to discard its state and/or pending packets without
  // compromising correctness" (§2.1): in-flight µproxy-originated calls die
  // too; coordinators finish any orphaned multi-site operations.
  own_rpc_ = std::make_unique<RpcClient>(client_host_, queue_, config_.own_rpc_params);
  own_rpc_->set_tracer(tracer_);
  own_rpc_->set_eventlog(eventlog_);
  table_fetch_inflight_ = false;
  counters_.Add("soft_state_drops");
  obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kWarn,
                obs::EventCat::kCache, obs::EventCode::kSoftStateDrop);
}

uint32_t Uproxy::StripeSite(const FileHandle& fh, uint64_t offset, uint32_t replica) const {
  if (config_.rendezvous_routing) {
    return RendezvousStripeSite(Fnv1a64(fh.bytes()), offset, config_.stripe_unit,
                                config_.storage_nodes.size(), replica);
  }
  return StripeSiteFor(fh, offset, config_.stripe_unit,
                       static_cast<uint32_t>(config_.storage_nodes.size()), replica);
}

Uproxy::RouteDecision Uproxy::SelectRoute(const DecodedRequest& req) {
  return SelectRouteImpl(req.proc, req.fh, req.name, req.offset);
}

Uproxy::RouteDecision Uproxy::SelectRoute(const DecodedView& req, ByteSpan payload) {
  return SelectRouteImpl(req.proc, req.fh, req.name(payload), req.offset);
}

Uproxy::RouteDecision Uproxy::SelectRouteImpl(NfsProc proc, const FileHandle& fh,
                                              std::string_view name, uint64_t offset) {
  RouteDecision out;
  switch (proc) {
    case NfsProc::kNull:
    case NfsProc::kFsstat:
    case NfsProc::kFsinfo:
      out.cls = RouteClass::kDirServer;
      out.target = DirServerForSite(0);
      return out;

    case NfsProc::kGetattr:
    case NfsProc::kSetattr:
    case NfsProc::kAccess:
    case NfsProc::kReadlink:
    case NfsProc::kReaddir:
    case NfsProc::kReaddirplus:
      // fhandle-keyed: fixed placement embeds the owning site in the fileID;
      // a manager-installed binding rebinds a dead site to its adopter.
      out.cls = RouteClass::kDirServer;
      out.target = DirServerForSite(SiteOfFileid(fh.fileid()));
      return out;

    case NfsProc::kLookup:
    case NfsProc::kCreate:
    case NfsProc::kSymlink:
    case NfsProc::kRemove:
    case NfsProc::kRmdir:
    case NfsProc::kLink:
    case NfsProc::kRename: {
      out.cls = RouteClass::kDirServer;
      if (config_.name_policy == NamePolicy::kNameHashing) {
        out.target = dir_table_.Lookup(NameFingerprint(fh, name));
      } else {
        out.target = DirServerForSite(SiteOfFileid(fh.fileid()));
      }
      return out;
    }

    case NfsProc::kMkdir: {
      out.cls = RouteClass::kDirServer;
      const uint64_t fingerprint = NameFingerprint(fh, name);
      if (config_.name_policy == NamePolicy::kNameHashing) {
        out.target = dir_table_.Lookup(fingerprint);
      } else if (RedirectCoin(fingerprint) < config_.mkdir_redirect_probability) {
        // Mkdir switching: place the new directory (and its descendants) on
        // a different site chosen by hash — races involve at most two sites.
        out.target = dir_table_.Lookup(fingerprint);
      } else {
        out.target = DirServerForSite(SiteOfFileid(fh.fileid()));
      }
      return out;
    }

    case NfsProc::kRead:
    case NfsProc::kWrite: {
      const bool small = !config_.small_file_servers.empty() && offset < config_.threshold;
      if (small) {
        // Small-file slots are identity-bound (a replacement server would not
        // have the file data), so a dead SFS fails fast with a retryable
        // error instead of misrouting.
        const uint32_t sfs = sfs_table_.PhysicalIndexFor(MixU64(fh.fileid()));
        if (!SfsAlive(sfs)) {
          out.cls = RouteClass::kUnavailable;
          out.error = Nfsstat3::kErrJukebox;
          return out;
        }
        out.cls = RouteClass::kSmallFile;
        out.target = sfs_table_.Lookup(MixU64(fh.fileid()));
        return out;
      }
      const uint32_t replication = std::max<uint32_t>(1, fh.replication());
      if (proc == NfsProc::kWrite && replication > 1) {
        out.cls = RouteClass::kMirrorWrite;
        return out;
      }
      // Mirrored reads alternate between the replicas to balance load; a
      // replica the manager declared dead is skipped (mirrored-partner
      // promotion). With every replica dead, fail fast instead of hanging.
      const uint32_t replica =
          replication > 1
              ? static_cast<uint32_t>((offset / config_.stripe_unit) % replication)
              : 0;
      uint32_t node = StripeSite(fh, offset, replica);
      if (!StorageAlive(node)) {
        bool found = false;
        for (uint32_t step = 1; step < replication && !found; ++step) {
          const uint32_t alt = StripeSite(fh, offset, (replica + step) % replication);
          if (StorageAlive(alt)) {
            node = alt;
            found = true;
          }
        }
        if (!found) {
          out.cls = RouteClass::kUnavailable;
          out.error = Nfsstat3::kErrIo;
          return out;
        }
        counters_.Add("failover_redirects");
        obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kWarn,
                      obs::EventCat::kRoute, obs::EventCode::kRouteFailoverRedirect,
                      /*trace_id=*/0, nullptr, {{"node", node}});
      }
      out.cls = RouteClass::kStorage;
      out.storage_index = node;
      out.target = config_.storage_nodes[node];
      return out;
    }

    case NfsProc::kCommit: {
      // A commit may cover data on several sites (striped blocks, mirrors,
      // the small-file portion); fan out unless one storage node holds
      // everything.
      if (config_.storage_nodes.size() > 1 || !config_.small_file_servers.empty() ||
          fh.replication() > 1) {
        out.cls = RouteClass::kMultiCommit;
        return out;
      }
      if (!StorageAlive(0)) {
        out.cls = RouteClass::kUnavailable;
        out.error = Nfsstat3::kErrIo;
        return out;
      }
      out.cls = RouteClass::kStorage;
      out.storage_index = 0;
      out.target = config_.storage_nodes[0];
      return out;
    }

    default:
      out.cls = RouteClass::kPassThrough;
      return out;
  }
}

void Uproxy::PassThroughOutbound(Packet&& pkt) {
  counters_.Add("pass_through");
  net_.Inject(std::move(pkt));
}

void Uproxy::HandleOutbound(Packet&& pkt) {
  if (!(pkt.dst() == config_.virtual_server)) {
    net_.Inject(std::move(pkt));
    return;
  }
  obs::Profiler::Scope prof(profiler_, obs::ProfScope::kUproxyOutbound);
  // First sight decodes once; a retransmission that already carries the
  // cached view (e.g. re-forwarded by the RPC layer) skips the parse.
  DecodedView req;
  {
    obs::Profiler::Scope prof_decode(profiler_, obs::ProfScope::kUproxyDecode);
    if (!pkt.get_view(kDecodedViewTag, &req)) {
      if (!DecodeNfsRequestView(pkt.payload(), &req).ok()) {
        PassThroughOutbound(std::move(pkt));
        return;
      }
      pkt.set_view(kDecodedViewTag, req);
    }
  }
  counters_.Add("intercepted");

  const uint64_t key = KeyOf(pkt.src_port(), req.xid);
  {
    obs::Profiler::Scope prof_soft(profiler_, obs::ProfScope::kUproxySoftState);
    if (const Pending* dup = pending_.Find(key); dup != nullptr && dup->absorbed) {
      counters_.Add("duplicate_absorbed");
      return;  // fan-out already in flight; our own RPC layer retransmits
    }
  }

  // Dynamic placement: bulk I/O consults the coordinator block maps.
  if (config_.use_block_maps && !config_.coordinators.empty() &&
      (req.proc == NfsProc::kRead || req.proc == NfsProc::kWrite) &&
      (config_.small_file_servers.empty() || req.offset >= config_.threshold)) {
    const uint64_t block = req.offset / config_.stripe_unit;
    auto map_it = map_cache_.find(req.fh.fileid());
    if (map_it == map_cache_.end() || map_it->second.size() <= block ||
        map_it->second[block] == kUnmappedBlock) {
      // Hold the request, fetch a map fragment, then route.
      counters_.Add("map_fetches");
      GetMapArgs margs;
      margs.file = req.fh;
      margs.first_block = block;
      margs.count = 64;
      margs.allocate = req.proc == NfsProc::kWrite;
      XdrEncoder enc;
      margs.Encode(enc);
      auto held = std::make_shared<Packet>(std::move(pkt));
      own_rpc_->Call(CoordinatorFor(req.fh), kCoordProgram, kCoordVersion,
                     static_cast<uint32_t>(CoordProc::kGetMap), enc.Take(),
                     [this, held, req](Status st, const RpcMessageView& reply) {
                       if (st.ok()) {
                         XdrDecoder dec(reply.body);
                         Result<GetMapRes> res = GetMapRes::Decode(dec);
                         if (res.ok()) {
                           std::vector<uint32_t>& map = map_cache_[req.fh.fileid()];
                           if (map.size() < res->first_block + res->sites.size()) {
                             map.resize(res->first_block + res->sites.size(), kUnmappedBlock);
                           }
                           for (size_t i = 0; i < res->sites.size(); ++i) {
                             map[res->first_block + i] = res->sites[i];
                           }
                         }
                       }
                       // Re-process; a still-unmapped read block falls back
                       // to static striping (reading a hole).
                       const uint64_t blk = req.offset / config_.stripe_unit;
                       const std::vector<uint32_t>& map = map_cache_[req.fh.fileid()];
                       Endpoint target;
                       if (blk < map.size() && map[blk] != kUnmappedBlock) {
                         target = config_.storage_nodes[map[blk] %
                                                        config_.storage_nodes.size()];
                       } else {
                         target = config_.storage_nodes[StripeSite(req.fh, req.offset)];
                       }
                       ForwardRequest(std::move(*held), req, target, "route:map");
                     });
      return;
    }
    const Endpoint target =
        config_.storage_nodes[map_it->second[block] % config_.storage_nodes.size()];
    ForwardRequest(std::move(pkt), req, target, "route:map");
    return;
  }

  RouteDecision route;
  {
    obs::Profiler::Scope prof_route(profiler_, obs::ProfScope::kUproxyRoute);
    route = SelectRoute(req, pkt.payload());
  }
  switch (route.cls) {
    case RouteClass::kPassThrough:
      PassThroughOutbound(std::move(pkt));
      return;
    case RouteClass::kUnavailable:
      counters_.Add("unavailable_rejected");
      obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kError,
                    obs::EventCat::kRoute, obs::EventCode::kRouteUnavailable, /*trace_id=*/0,
                    NfsProcName(req.proc), {{"xid", req.xid}});
      SynthesizeErrorReply(req.proc, req.xid, pkt.src(), route.error, req.tenant);
      return;
    case RouteClass::kDirServer: {
      if (config_.proxy_cache) {
        if (req.proc == NfsProc::kLookup) {
          if (TryServeLookup(pkt, req,
                             NameFingerprint(req.fh, req.name(pkt.payload())))) {
            return;
          }
        } else if (req.proc == NfsProc::kGetattr) {
          if (TryServeGetattr(pkt, req)) {
            return;
          }
        } else {
          // Name-mutating ops invalidate at request time: conservative (the
          // op may yet fail) but never serves a name past its removal.
          InvalidateOnNameOp(req, pkt.payload());
        }
      }
      counters_.Add("routed_dir");
      // Removes need the victim's identity to reclaim its data afterwards;
      // ask ahead (FIFO ordering guarantees the lookup is served first).
      if (req.proc == NfsProc::kRemove) {
        OwnLookup(route.target, req.fh, std::string(req.name(pkt.payload())),
                  [this, key](Status st, const LookupRes& res) {
                    Pending* p = pending_.Find(key);
                    if (!st.ok() || p == nullptr || res.status != Nfsstat3::kOk) {
                      return;
                    }
                    // Only reclaim data when the last link goes away.
                    if (res.object.type() == FileType3::kReg && res.obj_attributes &&
                        res.obj_attributes->nlink <= 1) {
                      p->fh = res.object;
                      p->count = 1;  // marks "data removal armed"
                    }
                  });
      }
      ForwardRequest(std::move(pkt), req, route.target, "route:dir");
      return;
    }
    case RouteClass::kSmallFile:
      counters_.Add("routed_sfs");
      ForwardRequest(std::move(pkt), req, route.target, "route:sfs");
      return;
    case RouteClass::kStorage:
      counters_.Add("routed_storage");
      ForwardRequest(std::move(pkt), req, route.target, "route:storage");
      return;
    case RouteClass::kMirrorWrite:
      counters_.Add("mirrored_writes");
      AbsorbMirrorWrite(req, pkt.src(), pkt.payload());
      return;
    case RouteClass::kMultiCommit: {
      // A file the µproxy knows to be wholly below the threshold has all of
      // its data at one small-file server: commit there directly instead of
      // fanning out (the common case — 94% of an SFS file set is small).
      if (!config_.small_file_servers.empty()) {
        const AttrCache::Entry* entry = attr_cache_.Find(req.fh.fileid());
        if (entry != nullptr && entry->attr.size <= config_.threshold) {
          counters_.Add("small_commits");
          ForwardRequest(std::move(pkt), req, sfs_table_.Lookup(MixU64(req.fh.fileid())),
                         "route:small_commit");
          return;
        }
      }
      counters_.Add("multi_commits");
      AbsorbMultiCommit(req, pkt.src());
      return;
    }
  }
}

void Uproxy::ForwardRequest(Packet&& pkt, const DecodedView& req, Endpoint target,
                            const char* route) {
  Pending* p = nullptr;
  {
    obs::Profiler::Scope prof_soft(profiler_, obs::ProfScope::kUproxySoftState);
    if (pending_.size() >= kMaxPending) {
      pending_.Clear();  // soft state; clients retransmit
    }
    bool inserted = false;
    std::tie(p, inserted) = pending_.Insert(KeyOf(pkt.src_port(), req.xid));
    if (inserted) {
      p->proc = req.proc;
      p->fh = req.fh;
      p->offset = req.offset;
      p->tenant = req.tenant;
      p->issued_at = queue_.now();
      if (req.proc != NfsProc::kRemove) {
        p->count = req.count;
      }
      if (config_.proxy_cache && req.proc == NfsProc::kLookup) {
        // Arm the reply-side cache fill with the (dir, name) key.
        p->name_fp = NameFingerprint(req.fh, req.name(pkt.payload()));
      }
    } else {
      // Retransmission: keep existing record (it may hold the remove lookup).
      // Repeated retransmissions of one call suggest the target is dead and
      // our table is stale — ask the manager for a fresh one (lazy pull; the
      // re-forward below re-routes with whatever table is current).
      if (config_.mgmt_enabled && ++p->retransmits >= 2) {
        FetchTables();
      }
    }
  }
  obs::TraceContext ctx;
  {
    obs::Profiler::Scope prof_trace(profiler_, obs::ProfScope::kUproxyTrace);
    ctx = BeginTrace(*p, route);
    obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kDebug,
                  obs::EventCat::kRoute, obs::EventCode::kRouteDecision, ctx.trace_id, route,
                  {{"dst", target.addr}, {"xid", req.xid}});
  }

  {
    obs::Profiler::Scope prof_rewrite(profiler_, obs::ProfScope::kUproxyRewrite);
    pkt.RewriteDst(target);
    if (ctx.valid()) {
      pkt.AttachTrace(ctx.trace_id, ctx.span_id);
    }
  }
  // Hand the rewritten packet straight to the network's flight queue at the
  // CPU-done instant — no closure, no shared_ptr, no per-packet allocation.
  SimTime ready;
  {
    obs::Profiler::Scope prof_metrics(profiler_, obs::ProfScope::kUproxyMetrics);
    ready = ChargeCpu(ctx);
  }
  net_.InjectAt(std::move(pkt), ready, alive_);
}

void Uproxy::HandleInbound(Packet&& pkt) {
  // Control-plane messages (table pushes from the manager, misdirect notices
  // from servers) arrive on the dedicated control port and terminate here.
  if (config_.mgmt_enabled && pkt.dst_port() == config_.control_port) {
    HandleControl(pkt.payload());
    return;
  }
  // The µproxy's own RPC traffic (fan-outs, writebacks, coordinator calls)
  // rides on a separate port; hand it up without interference.
  if (pkt.dst_port() == own_rpc_->local().port) {
    net_.DeliverLocal(pkt.dst_addr(), std::move(pkt));
    return;
  }
  obs::Profiler::Scope prof(profiler_, obs::ProfScope::kUproxyInbound);
  DecodedReply reply;
  {
    obs::Profiler::Scope prof_decode(profiler_, obs::ProfScope::kUproxyDecode);
    if (!DecodeNfsReply(pkt.payload(), &reply).ok()) {
      net_.DeliverLocal(pkt.dst_addr(), std::move(pkt));
      return;
    }
  }
  const uint64_t key = KeyOf(pkt.dst_port(), reply.xid);
  const Pending* found;
  {
    obs::Profiler::Scope prof_soft(profiler_, obs::ProfScope::kUproxySoftState);
    found = pending_.Find(key);
  }
  if (found == nullptr) {
    net_.DeliverLocal(pkt.dst_addr(), std::move(pkt));
    return;
  }
  Pending pending = *found;
  {
    obs::Profiler::Scope prof_soft(profiler_, obs::ProfScope::kUproxySoftState);
    pending_.Erase(key);
  }

  // Reply-side work (attr writebacks, remove/truncate fan-outs) chains into
  // the originating trace.
  const obs::TraceContext ctx{pending.trace_id, pending.root_span_id};
  obs::ScopedContext scope(tracer_, ctx);

  if (reply.stat == RpcAcceptStat::kSuccess) {
    // Track I/O side effects on attributes, then patch a complete, current
    // attribute set into the reply.
    if (pending.proc == NfsProc::kRead) {
      attr_cache_.NoteRead(pending.fh.fileid(), Now());
    } else if (pending.proc == NfsProc::kWrite) {
      attr_cache_.NoteWrite(pending.fh.fileid(), pending.offset + pending.count, Now());
      ArmWritebackTimer();
    } else if (pending.proc == NfsProc::kRemove && pending.count == 1) {
      // Forwarded remove succeeded and the lookup armed data reclamation.
      XdrDecoder dec(pkt.payload().subspan(reply.body_offset));
      Result<RemoveRes> res = RemoveRes::Decode(dec);
      if (res.ok() && res->status == Nfsstat3::kOk) {
        ScheduleDataRemove(pending.fh);
        attr_cache_.Erase(pending.fh.fileid());
      }
    } else if (pending.proc == NfsProc::kSetattr && pending.count == 1) {
      // Truncate observed: propagate to the data servers.
      XdrDecoder dec(pkt.payload().subspan(reply.body_offset));
      Result<SetattrRes> res = SetattrRes::Decode(dec);
      if (res.ok() && res->status == Nfsstat3::kOk) {
        ScheduleDataTruncate(pending.fh, pending.offset);
      }
    } else if (pending.proc == NfsProc::kCommit) {
      // Push the committed file's attributes home; the periodic timer
      // handles the rest of the dirty set.
      if (const AttrCache::Entry* entry = attr_cache_.Find(pending.fh.fileid());
          entry != nullptr && entry->dirty) {
        WritebackAttrs(pending.fh.fileid(), entry->attr);
      }
    }
    {
      obs::Profiler::Scope prof_patch(profiler_, obs::ProfScope::kUproxyAttrPatch);
      PatchReplyAttrs(pkt, pending, reply);
    }
    if (config_.proxy_cache && pending.proc == NfsProc::kLookup &&
        pending.name_fp != 0) {
      // Fill after patching so the cached attributes match what the client
      // sees in this reply.
      obs::Profiler::Scope prof_soft(profiler_, obs::ProfScope::kUproxySoftState);
      FillLookupCache(pkt, pending);
    }
  }

  {
    obs::Profiler::Scope prof_rewrite(profiler_, obs::ProfScope::kUproxyRewrite);
    pkt.RewriteSrc(config_.virtual_server);
  }
  SimTime ready;
  {
    obs::Profiler::Scope prof_metrics(profiler_, obs::ProfScope::kUproxyMetrics);
    ready = ChargeCpu(ctx);
  }
  {
    obs::Profiler::Scope prof_trace(profiler_, obs::ProfScope::kUproxyTrace);
    FinishTrace(pending, ready);
  }
  if (pending.tenant != 0 && pending.tenant <= tenant_count_) {
    // Error = RPC-level rejection or a nonzero nfsstat3 (always the first
    // word of the result body). Read in place; nothing allocates.
    obs::Profiler::Scope prof_metrics(profiler_, obs::ProfScope::kUproxyMetrics);
    bool error = reply.stat != RpcAcceptStat::kSuccess;
    const ByteSpan payload = pkt.payload();
    if (!error && payload.size() >= reply.body_offset + 4) {
      error = GetU32(payload.data() + reply.body_offset) != 0;
    }
    const uint32_t nbytes =
        (pending.proc == NfsProc::kRead || pending.proc == NfsProc::kWrite) ? pending.count
                                                                            : 0;
    AccountTenant(pending.tenant, pending.proc, nbytes, ready - pending.issued_at,
                  pending.trace_id, error);
  }
  const NetAddr client_addr = pkt.dst_addr();
  net_.DeliverLocalAt(client_addr, std::move(pkt), ready, alive_);
}

void Uproxy::HandleInboundBatch(std::span<Packet> pkts) {
  // One wall scope covers the whole delivery flight; the per-packet scopes
  // inside HandleInbound nest beneath it, so the stage report can show how
  // much of the inbound wall time batching amortized. Processing stays
  // strictly in flight order — behavior and same-seed artifacts are
  // identical to per-packet delivery.
  obs::Profiler::Scope prof(profiler_, obs::ProfScope::kUproxyInboundBatch);
  for (Packet& pkt : pkts) {
    HandleInbound(std::move(pkt));
  }
}

std::optional<size_t> Uproxy::LocateTargetAttr(ByteSpan payload, const Pending& pending,
                                               const DecodedReply& reply) const {
  ByteSpan body = payload.subspan(reply.body_offset);
  if (body.size() < 4) {
    return std::nullopt;
  }
  const uint32_t status = GetU32(body.data());
  size_t pos = 4;
  auto post_op_attr_here = [&]() -> std::optional<size_t> {
    if (body.size() < pos + 4) {
      return std::nullopt;
    }
    const bool present = GetU32(body.data() + pos) == 1;
    pos += 4;
    if (!present || body.size() < pos + kFattr3WireSize) {
      return std::nullopt;
    }
    return reply.body_offset + pos;
  };

  switch (pending.proc) {
    case NfsProc::kGetattr:
      if (status != 0 || body.size() < 4 + kFattr3WireSize) {
        return std::nullopt;
      }
      return reply.body_offset + 4;
    case NfsProc::kRead:
    case NfsProc::kAccess:
      return post_op_attr_here();
    case NfsProc::kWrite:
    case NfsProc::kCommit: {
      // wcc_data: pre-op bool (+24) then post-op attr.
      if (body.size() < pos + 4) {
        return std::nullopt;
      }
      const bool pre = GetU32(body.data() + pos) == 1;
      pos += 4 + (pre ? 24 : 0);
      return post_op_attr_here();
    }
    case NfsProc::kLookup: {
      if (status != 0) {
        return std::nullopt;
      }
      // fh is a variable opaque: length word + padded bytes.
      if (body.size() < pos + 4) {
        return std::nullopt;
      }
      const uint32_t fh_len = GetU32(body.data() + pos);
      pos += 4 + fh_len + XdrPad(fh_len);
      return post_op_attr_here();
    }
    case NfsProc::kCreate:
    case NfsProc::kMkdir: {
      if (status != 0) {
        return std::nullopt;
      }
      if (body.size() < pos + 4) {
        return std::nullopt;
      }
      const bool has_fh = GetU32(body.data() + pos) == 1;
      pos += 4;
      if (has_fh) {
        if (body.size() < pos + 4) {
          return std::nullopt;
        }
        const uint32_t fh_len = GetU32(body.data() + pos);
        pos += 4 + fh_len + XdrPad(fh_len);
      }
      return post_op_attr_here();
    }
    default:
      return std::nullopt;
  }
}

void Uproxy::PatchReplyAttrs(Packet& pkt, const Pending& pending, const DecodedReply& reply) {
  const std::optional<size_t> attr_offset = LocateTargetAttr(pkt.payload(), pending, reply);
  if (!attr_offset.has_value()) {
    return;
  }
  ByteSpan attr_bytes = pkt.payload().subspan(*attr_offset, kFattr3WireSize);
  XdrDecoder dec(attr_bytes);
  Result<Fattr3> server_attr = DecodeFattr3(dec);
  if (!server_attr.ok()) {
    return;
  }
  // Hit = the cache already knew this file before the reply merged in
  // (merge always inserts, so the check must precede it).
  if (attr_cache_.Find(server_attr->fileid) != nullptr) {
    obs::Inc(m_attr_hits_);
  } else {
    obs::Inc(m_attr_misses_);
  }
  attr_cache_.MergeFromReply(server_attr->fileid, *server_attr);
  const AttrCache::Entry* entry = attr_cache_.Find(server_attr->fileid);
  if (entry == nullptr || entry->attr == *server_attr) {
    return;  // nothing to patch
  }
  patch_enc_.Clear();
  EncodeFattr3(patch_enc_, entry->attr);
  pkt.RewriteBytes(kPacketHeaderSize + *attr_offset, patch_enc_.bytes());
  counters_.Add("attrs_patched");
}

// --- in-proxy metadata cache (proxy_cache) ---

namespace {

// Accepted-success RPC reply header, hand-encoded to keep the cache-served
// path on the reused encoder (RpcReply::Encode allocates a fresh Bytes).
// Layout mirrors RpcReply::Encode exactly.
void EncodeReplyHeader(XdrEncoder& enc, uint32_t xid) {
  enc.PutUint32(xid);
  enc.PutEnum(static_cast<uint32_t>(RpcMsgType::kReply));
  enc.PutEnum(static_cast<uint32_t>(RpcReplyStat::kAccepted));
  enc.PutEnum(static_cast<uint32_t>(RpcAuthFlavor::kNone));  // null verifier
  enc.PutUint32(0);                                          //   (empty body)
  enc.PutEnum(static_cast<uint32_t>(RpcAcceptStat::kSuccess));
}

}  // namespace

bool Uproxy::TryServeLookup(const Packet& pkt, const DecodedView& req, uint64_t name_fp) {
  const LookupCache::Entry* e = lookup_cache_.Find(
      req.fh.fileid(), name_fp, static_cast<uint64_t>(queue_.now()),
      static_cast<uint64_t>(config_.proxy_cache_ttl));
  if (e == nullptr) {
    counters_.Add("cache_lookup_misses");
    obs::Inc(m_lookup_misses_);
    return false;
  }
  counters_.Add("cache_lookup_hits");
  obs::Inc(m_lookup_hits_);
  obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kDebug,
                obs::EventCat::kCache, obs::EventCode::kCacheHit, /*trace_id=*/0,
                "lookup",
                {{"epoch", static_cast<int64_t>(table_epoch_)}, {"xid", req.xid}});
  LookupRes res;
  res.status = Nfsstat3::kOk;
  res.object = e->fh;
  res.obj_attributes = e->attr;
  // Serve the freshest attribute view held: the attr cache may have absorbed
  // I/O since the lookup was cached (same merge the patch stage applies).
  if (const AttrCache::Entry* a = attr_cache_.Find(e->fh.fileid());
      a != nullptr && a->complete) {
    res.obj_attributes = a->attr;
  }
  reply_enc_.Clear();
  EncodeReplyHeader(reply_enc_, req.xid);
  res.Encode(reply_enc_);
  const SimTime ready = SendCachedReply(pkt.src());
  AccountTenant(req.tenant, req.proc, 0, ready - queue_.now(), /*trace_id=*/0,
                /*error=*/false);
  return true;
}

bool Uproxy::TryServeGetattr(const Packet& pkt, const DecodedView& req) {
  const AttrCache::Entry* a = attr_cache_.Find(req.fh.fileid());
  if (a == nullptr || !a->complete) {
    return false;  // partial (write-only) entries go to the directory server
  }
  counters_.Add("cache_getattr_hits");
  obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kDebug,
                obs::EventCat::kCache, obs::EventCode::kCacheHit, /*trace_id=*/0,
                "getattr",
                {{"epoch", static_cast<int64_t>(table_epoch_)}, {"xid", req.xid}});
  GetattrRes res;
  res.status = Nfsstat3::kOk;
  res.attributes = a->attr;
  reply_enc_.Clear();
  EncodeReplyHeader(reply_enc_, req.xid);
  res.Encode(reply_enc_);
  const SimTime ready = SendCachedReply(pkt.src());
  AccountTenant(req.tenant, req.proc, 0, ready - queue_.now(), /*trace_id=*/0,
                /*error=*/false);
  return true;
}

SimTime Uproxy::SendCachedReply(Endpoint client) {
  Packet out = Packet::MakeUdp(config_.virtual_server, client, reply_enc_.bytes());
  const SimTime ready = ChargeCpu();
  net_.DeliverLocalAt(client.addr, std::move(out), ready, alive_);
  return ready;
}

void Uproxy::InvalidateOnNameOp(const DecodedView& req, ByteSpan payload) {
  switch (req.proc) {
    case NfsProc::kCreate:
    case NfsProc::kMkdir:
    case NfsProc::kSymlink:
    case NfsProc::kLink:
    case NfsProc::kRemove:
    case NfsProc::kRmdir: {
      const uint64_t fp = NameFingerprint(req.fh, req.name(payload));
      if (req.proc == NfsProc::kRemove || req.proc == NfsProc::kRmdir) {
        // The victim's attributes must not outlive its name: a later getattr
        // on the stale handle has to reach the authoritative server.
        if (const LookupCache::Entry* e = lookup_cache_.Find(
                req.fh.fileid(), fp, static_cast<uint64_t>(queue_.now()),
                static_cast<uint64_t>(config_.proxy_cache_ttl));
            e != nullptr) {
          attr_cache_.Erase(e->fh.fileid());
        }
      }
      lookup_cache_.Erase(req.fh.fileid(), fp);
      return;
    }
    case NfsProc::kRename:
      lookup_cache_.Erase(req.fh.fileid(), NameFingerprint(req.fh, req.name(payload)));
      lookup_cache_.Erase(req.fh2.fileid(),
                          NameFingerprint(req.fh2, req.name2(payload)));
      return;
    default:
      return;
  }
}

void Uproxy::FillLookupCache(const Packet& pkt, const Pending& pending) {
  LookupReplyView view;
  if (!DecodeLookupReplyView(pkt.payload(), &view).ok() || view.nfs_status != 0 ||
      !view.has_attr) {
    return;
  }
  lookup_cache_.Insert(pending.fh.fileid(), pending.name_fp, view.fh, view.attr,
                       dir_table_.SlotFor(pending.name_fp),
                       static_cast<uint64_t>(queue_.now()));
}

// --- µproxy-originated calls ---

void Uproxy::OwnWrite(Endpoint server, const FileHandle& fh, uint64_t offset, ByteSpan data,
                      StableHow stable, std::function<void(Status, const WriteRes&)> cb) {
  WriteArgs args;
  args.file = fh;
  args.offset = offset;
  args.count = static_cast<uint32_t>(data.size());
  args.stable = stable;
  args.data.assign(data.begin(), data.end());
  XdrEncoder enc;
  args.Encode(enc);
  own_rpc_->Call(server, kNfsProgram, kNfsVersion, static_cast<uint32_t>(NfsProc::kWrite),
                 enc.Take(), [cb = std::move(cb)](Status st, const RpcMessageView& reply) {
                   WriteRes res;
                   if (st.ok()) {
                     XdrDecoder dec(reply.body);
                     Result<WriteRes> decoded = WriteRes::Decode(dec);
                     if (decoded.ok()) {
                       res = *decoded;
                     } else {
                       st = decoded.status();
                     }
                   }
                   cb(st, res);
                 });
}

void Uproxy::OwnCommit(Endpoint server, const FileHandle& fh,
                       std::function<void(Status, const CommitRes&)> cb) {
  XdrEncoder enc;
  CommitArgs{fh, 0, 0}.Encode(enc);
  own_rpc_->Call(server, kNfsProgram, kNfsVersion, static_cast<uint32_t>(NfsProc::kCommit),
                 enc.Take(), [cb = std::move(cb)](Status st, const RpcMessageView& reply) {
                   CommitRes res;
                   if (st.ok()) {
                     XdrDecoder dec(reply.body);
                     Result<CommitRes> decoded = CommitRes::Decode(dec);
                     if (decoded.ok()) {
                       res = *decoded;
                     } else {
                       st = decoded.status();
                     }
                   }
                   cb(st, res);
                 });
}

void Uproxy::OwnSetattrSize(Endpoint server, const FileHandle& fh, uint64_t size,
                            std::function<void(Status)> cb) {
  SetattrArgs args;
  args.object = fh;
  args.new_attributes.size = size;
  XdrEncoder enc;
  args.Encode(enc);
  own_rpc_->Call(server, kNfsProgram, kNfsVersion, static_cast<uint32_t>(NfsProc::kSetattr),
                 enc.Take(),
                 [cb = std::move(cb)](Status st, const RpcMessageView&) { cb(st); });
}

void Uproxy::OwnRemoveObject(Endpoint server, const FileHandle& fh,
                             std::function<void(Status)> cb) {
  XdrEncoder enc;
  DirOpArgs{fh, ""}.Encode(enc);
  own_rpc_->Call(server, kNfsProgram, kNfsVersion, static_cast<uint32_t>(NfsProc::kRemove),
                 enc.Take(),
                 [cb = std::move(cb)](Status st, const RpcMessageView&) { cb(st); });
}

void Uproxy::OwnLookup(Endpoint server, const FileHandle& dir, const std::string& name,
                       std::function<void(Status, const LookupRes&)> cb) {
  XdrEncoder enc;
  DirOpArgs{dir, name}.Encode(enc);
  own_rpc_->Call(server, kNfsProgram, kNfsVersion, static_cast<uint32_t>(NfsProc::kLookup),
                 enc.Take(), [cb = std::move(cb)](Status st, const RpcMessageView& reply) {
                   LookupRes res;
                   if (st.ok()) {
                     XdrDecoder dec(reply.body);
                     Result<LookupRes> decoded = LookupRes::Decode(dec);
                     if (decoded.ok()) {
                       res = *decoded;
                     } else {
                       st = decoded.status();
                     }
                   }
                   cb(st, res);
                 });
}

// --- absorb paths ---

void Uproxy::ReplyToClient(Endpoint client, uint32_t xid, const Bytes& result_body) {
  RpcReply reply;
  reply.xid = xid;
  reply.result = result_body;
  Packet pkt = Packet::MakeUdp(config_.virtual_server, client, reply.Encode());
  // Absorbed operations (and synthesized errors) end here: the pending record
  // is still present — callers erase it after this — so the root can close at
  // the moment the reply is handed to the client.
  if (const Pending* p = pending_.Find(KeyOf(client.port, xid)); p != nullptr) {
    const obs::TraceContext ctx{p->trace_id, p->root_span_id};
    const SimTime ready = ChargeCpu(ctx);
    FinishTrace(*p, ready);
    // Absorbed operations complete here: account against the tenant carried
    // on the pending record. The result body leads with nfsstat3.
    const bool error =
        result_body.size() >= 4 && GetU32(result_body.data()) != 0;
    const uint32_t nbytes =
        (p->proc == NfsProc::kRead || p->proc == NfsProc::kWrite) ? p->count : 0;
    AccountTenant(p->tenant, p->proc, nbytes, ready - p->issued_at, p->trace_id, error);
    net_.DeliverLocalAt(client.addr, std::move(pkt), ready, alive_);
    return;
  }
  const SimTime ready = ChargeCpu();
  net_.DeliverLocalAt(client.addr, std::move(pkt), ready, alive_);
}

void Uproxy::SynthesizeErrorReply(NfsProc proc, uint32_t xid, Endpoint client,
                                  Nfsstat3 status, uint32_t tenant) {
  // Fail-fast rejections with no pending record still charge the tenant's
  // error budget (ReplyToClient accounts the pending-backed cases).
  if (tenant != 0 && pending_.Find(KeyOf(client.port, xid)) == nullptr) {
    AccountTenant(tenant, proc, 0, /*latency=*/0, /*trace_id=*/0, /*error=*/true);
  }
  XdrEncoder enc;
  switch (proc) {
    case NfsProc::kRead: {
      ReadRes res;
      res.status = status;
      res.Encode(enc);
      break;
    }
    case NfsProc::kWrite: {
      WriteRes res;
      res.status = status;
      res.Encode(enc);
      break;
    }
    case NfsProc::kCommit: {
      CommitRes res;
      res.status = status;
      res.Encode(enc);
      break;
    }
    default:
      enc.PutEnum(static_cast<uint32_t>(status));
      break;
  }
  ReplyToClient(client, xid, enc.bytes());
}

// --- control-plane integration ---

bool Uproxy::InstallTables(const MgmtTableSet& tables, bool force) {
  if (!force && tables.epoch <= table_epoch_) {
    return false;
  }
  table_epoch_ = tables.epoch;
  if (!tables.dir_servers.empty() && !tables.dir_slots.empty()) {
    if (config_.proxy_cache) {
      // Epoch invalidation, slot-granular: diff the old slot binding against
      // the incoming one and flush exactly the entries resolved through a
      // rebound slot. Everything else survives the epoch bump.
      const std::vector<uint32_t>& old_slots = dir_table_.slots();
      const size_t n = std::max(old_slots.size(), tables.dir_slots.size());
      changed_slots_.assign(n, 0);
      size_t slots_changed = 0;
      for (size_t s = 0; s < n; ++s) {
        const bool same = s < old_slots.size() && s < tables.dir_slots.size() &&
                          old_slots[s] == tables.dir_slots[s];
        if (!same) {
          changed_slots_[s] = 1;
          ++slots_changed;
        }
      }
      if (slots_changed > 0) {
        size_t flushed = lookup_cache_.InvalidateSlots(changed_slots_);
        // Clean attr entries route by fileID-embedded site through the same
        // binding; dirty ones stay (the µproxy is authoritative until
        // writeback, which re-resolves the target at send time).
        flushed += attr_cache_.FlushWhere([this](uint64_t fileid) {
          return changed_slots_[SiteOfFileid(fileid) % changed_slots_.size()] != 0;
        });
        counters_.Add("cache_flushes");
        counters_.Add("cache_flushed_entries", flushed);
        obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(),
                      obs::EventSev::kInfo, obs::EventCat::kCache,
                      obs::EventCode::kCacheFlush, /*trace_id=*/0, nullptr,
                      {{"epoch", static_cast<int64_t>(tables.epoch)},
                       {"slots", static_cast<int64_t>(slots_changed)},
                       {"entries", static_cast<int64_t>(flushed)}});
      }
    }
    dir_table_.InstallAssignment(tables.epoch, tables.dir_servers, tables.dir_slots);
    // The manager's slot assignment doubles as the fixed-placement binding
    // for fileID-embedded sites (site -> adopter when the owner is dead).
    dir_site_binding_ = tables.dir_slots;
  }
  if (!config_.small_file_servers.empty() && !tables.sfs_servers.empty() &&
      !tables.sfs_slots.empty()) {
    sfs_table_.InstallAssignment(tables.epoch, tables.sfs_servers, tables.sfs_slots);
  }
  if (tables.storage_alive.size() == config_.storage_nodes.size()) {
    storage_alive_ = tables.storage_alive;
  }
  if (tables.sfs_alive.size() == config_.small_file_servers.size()) {
    sfs_alive_ = tables.sfs_alive;
  }
  counters_.Add("table_installs");
  obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kInfo,
                obs::EventCat::kMgmt, obs::EventCode::kTableInstall, /*trace_id=*/0, nullptr,
                {{"epoch", static_cast<int64_t>(tables.epoch)}});
  return true;
}

void Uproxy::HandleControl(ByteSpan payload) {
  XdrDecoder dec(payload);
  Result<uint32_t> magic = dec.GetUint32();
  if (!magic.ok()) {
    return;
  }
  if (*magic == kTablePushMagic) {
    Result<MgmtTableSet> tables = MgmtTableSet::Decode(dec);
    if (tables.ok()) {
      InstallTables(*tables);
    }
  } else if (*magic == kMisdirectMagic) {
    Result<uint64_t> epoch = dec.GetUint64();
    if (epoch.ok() && *epoch > table_epoch_) {
      counters_.Add("misdirect_notices");
      obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kWarn,
                    obs::EventCat::kRoute, obs::EventCode::kMisdirectNotice, /*trace_id=*/0,
                    nullptr,
                    {{"epoch", static_cast<int64_t>(*epoch)},
                     {"have", static_cast<int64_t>(table_epoch_)}});
      FetchTables();
    }
  }
}

void Uproxy::FetchTables() {
  if (!config_.mgmt_enabled || table_fetch_inflight_) {
    return;
  }
  table_fetch_inflight_ = true;
  counters_.Add("table_fetches");
  obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kInfo,
                obs::EventCat::kMgmt, obs::EventCode::kTableFetch, /*trace_id=*/0, nullptr,
                {{"epoch", static_cast<int64_t>(table_epoch_)}});
  own_rpc_->Call(config_.manager, kMgmtProgram, kMgmtVersion,
                 static_cast<uint32_t>(MgmtProc::kFetchTables), Bytes{},
                 [this, alive = alive_](Status st, const RpcMessageView& reply) {
                   if (!*alive) {
                     return;
                   }
                   table_fetch_inflight_ = false;
                   if (!st.ok()) {
                     return;
                   }
                   XdrDecoder dec(reply.body);
                   Result<MgmtTableSet> tables = MgmtTableSet::Decode(dec);
                   if (tables.ok()) {
                     InstallTables(*tables);
                   }
                 });
}

void Uproxy::LogDegradedWrite(const FileHandle& fh, uint64_t offset, uint32_t count,
                              uint32_t node, std::function<void(bool)> cb) {
  DegradedArgs args;
  args.file = fh;
  args.offset = offset;
  args.count = count;
  args.node = node;
  XdrEncoder enc;
  args.Encode(enc);
  counters_.Add("degraded_writes");
  own_rpc_->Call(CoordinatorFor(fh), kCoordProgram, kCoordVersion,
                 static_cast<uint32_t>(CoordProc::kLogDegraded), enc.Take(),
                 [cb = std::move(cb)](Status st, const RpcMessageView&) { cb(st.ok()); });
}

Endpoint Uproxy::CoordinatorFor(const FileHandle& fh) const {
  SLICE_CHECK(!config_.coordinators.empty());
  return config_.coordinators[fh.fileid() % config_.coordinators.size()];
}

void Uproxy::WithIntent(IntentOp op, const FileHandle& fh, uint64_t arg,
                        std::function<void(std::function<void()> complete)> body) {
  if (config_.coordinators.empty()) {
    body([]() {});
    return;
  }
  LogIntentArgs args;
  args.op = op;
  args.file = fh;
  args.arg = arg;
  XdrEncoder enc;
  args.Encode(enc);
  const Endpoint coord = CoordinatorFor(fh);
  counters_.Add("intents_logged");
  own_rpc_->Call(
      coord, kCoordProgram, kCoordVersion, static_cast<uint32_t>(CoordProc::kLogIntent),
      enc.Take(),
      [this, coord, body = std::move(body)](Status st, const RpcMessageView& reply) {
        uint64_t intent_id = 0;
        if (st.ok()) {
          XdrDecoder dec(reply.body);
          Result<LogIntentRes> res = LogIntentRes::Decode(dec);
          if (res.ok()) {
            intent_id = res->intent_id;
          }
        }
        body([this, coord, intent_id]() {
          if (intent_id == 0) {
            return;
          }
          CompleteArgs cargs;
          cargs.intent_id = intent_id;
          XdrEncoder cenc;
          cargs.Encode(cenc);
          own_rpc_->Call(coord, kCoordProgram, kCoordVersion,
                         static_cast<uint32_t>(CoordProc::kComplete), cenc.Take(),
                         [](Status, const RpcMessageView&) {});
        });
      });
}

void Uproxy::AbsorbMirrorWrite(const DecodedView& req, Endpoint client, ByteSpan payload) {
  XdrDecoder dec(payload.subspan(req.body_offset));
  Result<WriteArgs> decoded = WriteArgs::Decode(dec);
  if (!decoded.ok()) {
    return;  // drop; client retransmits, then fails decode at the server
  }
  const WriteArgs args = *decoded;
  const uint32_t replication = std::max<uint32_t>(2, args.file.replication());

  Pending pending;
  pending.proc = NfsProc::kWrite;
  pending.fh = args.file;
  pending.offset = args.offset;
  pending.count = args.count;
  pending.absorbed = true;
  pending.tenant = req.tenant;
  pending.issued_at = queue_.now();
  Pending* stored = pending_.Insert(KeyOf(client.port, req.xid)).first;
  *stored = pending;
  const obs::TraceContext ctx = BeginTrace(*stored, "route:mirror_write");
  obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kDebug,
                obs::EventCat::kRoute, obs::EventCode::kRouteDecision, ctx.trace_id,
                "route:mirror_write", {{"xid", req.xid}});

  // Duplicating the payload for the extra replicas costs client-host CPU.
  const SimTime copy_now = queue_.now();
  const SimTime copy_start = std::max(cpu_.busy_until(), copy_now);
  const SimTime copy_done =
      cpu_.Acquire(copy_now,
                   static_cast<SimTime>(static_cast<double>(args.data.size()) *
                                        (replication - 1) * config_.mirror_copy_ns_per_byte));
  obs::ChargeSim(prof_ledger_, obs::LedgerCat::kQueue, copy_start - copy_now);
  obs::ChargeSim(prof_ledger_, obs::LedgerCat::kCpu, copy_done - copy_start);
  if (tracer_ != nullptr && ctx.valid() && copy_done > copy_start) {
    tracer_->RecordSpan(client_host_.addr(), ctx, obs::SpanCat::kCpu, "mirror_copy",
                        copy_start, copy_done);
  }

  // Partition the replica set by manager-reported liveness: live replicas
  // take the write now; dead ones become degraded regions the coordinator
  // records for resync when the node rejoins (mirrored-partner promotion).
  std::vector<uint32_t> live_nodes;
  std::vector<uint32_t> dead_nodes;
  for (uint32_t r = 0; r < replication; ++r) {
    const uint32_t node = StripeSite(args.file, args.offset, r);
    (StorageAlive(node) ? live_nodes : dead_nodes).push_back(node);
  }
  if (live_nodes.empty()) {
    counters_.Add("unavailable_rejected");
    SynthesizeErrorReply(req.proc, req.xid, client, Nfsstat3::kErrIo, req.tenant);
    pending_.Erase(KeyOf(client.port, req.xid));
    return;
  }
  const bool log_degraded = !dead_nodes.empty() && !config_.coordinators.empty();

  // Fan-out calls issued below (intent log, replica writes, degraded-region
  // acks) all inherit this context through own_rpc_.
  obs::ScopedContext scope(tracer_, ctx);
  WithIntent(IntentOp::kMirrorWrite, args.file, args.offset,
             [this, args, client, req, live_nodes, dead_nodes,
              log_degraded](std::function<void()> complete) {
               auto results = std::make_shared<std::vector<WriteRes>>();
               auto failures = std::make_shared<int>(0);
               // The client's reply also waits for the degraded-region acks:
               // acking a write whose missing replica was never recorded
               // would silently lose redundancy.
               auto remaining = std::make_shared<uint32_t>(static_cast<uint32_t>(
                   live_nodes.size() + (log_degraded ? dead_nodes.size() : 0)));
               auto finish = [this, results, failures, remaining, client, req, args,
                              complete]() {
                 if (--*remaining > 0) {
                   return;
                 }
                 complete();
                 if (*failures > 0 || results->empty()) {
                   counters_.Add("mirror_write_failures");
                   pending_.Erase(KeyOf(client.port, req.xid));
                   return;  // stay silent; client retransmits
                 }
                 attr_cache_.NoteWrite(args.file.fileid(), args.offset + args.count,
                                       Now());
                 ArmWritebackTimer();
                 WriteRes merged = results->front();
                 for (const WriteRes& r2 : *results) {
                   if (r2.committed == StableHow::kUnstable) {
                     merged.committed = StableHow::kUnstable;
                   }
                   merged.count = std::min(merged.count, r2.count);
                 }
                 if (const AttrCache::Entry* e = attr_cache_.Find(args.file.fileid());
                     e != nullptr) {
                   merged.wcc.after = e->attr;
                 }
                 XdrEncoder enc;
                 merged.Encode(enc);
                 ReplyToClient(client, req.xid, enc.bytes());
                 pending_.Erase(KeyOf(client.port, req.xid));
               };
               if (log_degraded) {
                 for (uint32_t node : dead_nodes) {
                   LogDegradedWrite(args.file, args.offset, args.count, node,
                                    [failures, finish](bool ok) {
                                      if (!ok) {
                                        ++*failures;
                                      }
                                      finish();
                                    });
                 }
               }
               for (uint32_t node : live_nodes) {
                 OwnWrite(config_.storage_nodes[node], args.file, args.offset, args.data,
                          args.stable,
                          [results, failures, finish](Status st, const WriteRes& res) {
                            if (!st.ok() || res.status != Nfsstat3::kOk) {
                              ++*failures;
                            } else {
                              results->push_back(res);
                            }
                            finish();
                          });
               }
             });
}

void Uproxy::AbsorbMultiCommit(const DecodedView& req, Endpoint client) {
  Pending pending;
  pending.proc = NfsProc::kCommit;
  pending.fh = req.fh;
  pending.absorbed = true;
  pending.tenant = req.tenant;
  pending.issued_at = queue_.now();
  Pending* stored = pending_.Insert(KeyOf(client.port, req.xid)).first;
  *stored = pending;
  const obs::TraceContext ctx = BeginTrace(*stored, "route:multi_commit");
  obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kDebug,
                obs::EventCat::kRoute, obs::EventCode::kRouteDecision, ctx.trace_id,
                "route:multi_commit", {{"xid", req.xid}});
  obs::ScopedContext scope(tracer_, ctx);

  // Commit pushes the file's attribute view back to the directory service.
  if (const AttrCache::Entry* entry = attr_cache_.Find(req.fh.fileid());
      entry != nullptr && entry->dirty) {
    WritebackAttrs(req.fh.fileid(), entry->attr);
  }

  // Targets: every live storage node (striping may have touched any of them)
  // and the file's small-file server. Dead nodes are skipped — a mirrored
  // file's surviving replicas carry the data; a dead node's unstable writes
  // were already re-recorded as degraded regions.
  std::vector<Endpoint> targets;
  for (uint32_t i = 0; i < config_.storage_nodes.size(); ++i) {
    if (StorageAlive(i)) {
      targets.push_back(config_.storage_nodes[i]);
    }
  }
  if (!config_.small_file_servers.empty()) {
    const uint32_t sfs = sfs_table_.PhysicalIndexFor(MixU64(req.fh.fileid()));
    if (SfsAlive(sfs)) {
      targets.push_back(sfs_table_.Lookup(MixU64(req.fh.fileid())));
    }
  }
  if (targets.empty()) {
    counters_.Add("unavailable_rejected");
    SynthesizeErrorReply(req.proc, req.xid, client, Nfsstat3::kErrIo, req.tenant);
    pending_.Erase(KeyOf(client.port, req.xid));
    return;
  }

  WithIntent(
      IntentOp::kCommit, req.fh, 0,
      [this, req, client, targets](std::function<void()> complete) {
        auto verf = std::make_shared<uint64_t>(0);
        auto failures = std::make_shared<int>(0);
        auto remaining = std::make_shared<size_t>(targets.size());
        for (const Endpoint& target : targets) {
          OwnCommit(target, req.fh,
                    [this, verf, failures, remaining, client, req,
                     complete](Status st, const CommitRes& res) {
                      if (!st.ok() || res.status != Nfsstat3::kOk) {
                        ++*failures;
                      } else {
                        *verf = MixU64(*verf ^ res.verf);
                      }
                      if (--*remaining > 0) {
                        return;
                      }
                      complete();
                      if (*failures > 0) {
                        counters_.Add("commit_failures");
                        pending_.Erase(KeyOf(client.port, req.xid));
                        return;
                      }
                      CommitRes merged;
                      merged.verf = *verf;
                      if (const AttrCache::Entry* e = attr_cache_.Find(req.fh.fileid());
                          e != nullptr) {
                        merged.wcc.after = e->attr;
                      }
                      XdrEncoder enc;
                      merged.Encode(enc);
                      ReplyToClient(client, req.xid, enc.bytes());
                      pending_.Erase(KeyOf(client.port, req.xid));
                    });
        }
      });
}

void Uproxy::ScheduleDataRemove(const FileHandle& fh) {
  counters_.Add("data_removes");
  std::vector<Endpoint> targets;
  for (uint32_t i = 0; i < config_.storage_nodes.size(); ++i) {
    if (StorageAlive(i)) {
      targets.push_back(config_.storage_nodes[i]);
    }
  }
  if (!config_.small_file_servers.empty()) {
    targets.push_back(sfs_table_.Lookup(MixU64(fh.fileid())));
  }
  if (targets.empty()) {
    return;
  }
  WithIntent(IntentOp::kRemove, fh, 0,
             [this, fh, targets](std::function<void()> complete) {
               auto remaining = std::make_shared<size_t>(targets.size());
               for (const Endpoint& target : targets) {
                 OwnRemoveObject(target, fh, [remaining, complete](Status) {
                   if (--*remaining == 0) {
                     complete();
                   }
                 });
               }
             });
}

void Uproxy::ScheduleDataTruncate(const FileHandle& fh, uint64_t size) {
  counters_.Add("data_truncates");
  std::vector<Endpoint> targets;
  for (uint32_t i = 0; i < config_.storage_nodes.size(); ++i) {
    if (StorageAlive(i)) {
      targets.push_back(config_.storage_nodes[i]);
    }
  }
  if (!config_.small_file_servers.empty()) {
    targets.push_back(sfs_table_.Lookup(MixU64(fh.fileid())));
  }
  if (targets.empty()) {
    return;
  }
  WithIntent(IntentOp::kTruncate, fh, size,
             [this, fh, size, targets](std::function<void()> complete) {
               auto remaining = std::make_shared<size_t>(targets.size());
               for (const Endpoint& target : targets) {
                 OwnSetattrSize(target, fh, size, [remaining, complete](Status) {
                   if (--*remaining == 0) {
                     complete();
                   }
                 });
               }
             });
}

// --- attribute writeback ---

void Uproxy::WritebackAttrs(uint64_t fileid, const Fattr3& attr) {
  obs::LogEvent(eventlog_, client_host_.addr(), queue_.now(), obs::EventSev::kDebug,
                obs::EventCat::kCache, obs::EventCode::kAttrWriteback, /*trace_id=*/0, nullptr,
                {{"fileid", static_cast<int64_t>(fileid)},
                 {"size", static_cast<int64_t>(attr.size)}});
  SetattrArgs args;
  args.object =
      FileHandle::Make(static_cast<uint32_t>(attr.fsid), fileid, 1, attr.type, 1, 0);
  // The directory server routes on the fileid; capability checking applies
  // to storage objects, not file managers, so a zero-secret handle is fine
  // for the manager-side setattr. Size and mtime are what I/O changed.
  args.new_attributes.size = attr.size;
  args.new_attributes.mtime = attr.mtime;
  args.new_attributes.atime = attr.atime;
  XdrEncoder enc;
  args.Encode(enc);
  const Endpoint target = DirServerForSite(SiteOfFileid(fileid));
  counters_.Add("attr_writebacks");
  // Optimistically mark clean at issue so concurrent flush triggers do not
  // duplicate the setattr; a lost writeback re-dirties on the next write.
  attr_cache_.MarkClean(fileid);
  own_rpc_->Call(target, kNfsProgram, kNfsVersion, static_cast<uint32_t>(NfsProc::kSetattr),
                 enc.Take(), [](Status, const RpcMessageView&) {});
}

void Uproxy::FlushDirtyAttrs() {
  for (uint64_t fileid : attr_cache_.DirtyFiles()) {
    const AttrCache::Entry* entry = attr_cache_.Find(fileid);
    if (entry != nullptr) {
      WritebackAttrs(fileid, entry->attr);
    }
  }
  for (const auto& [fileid, attr] : attr_cache_.TakeEvictedDirty()) {
    WritebackAttrs(fileid, attr);
  }
}

void Uproxy::ArmWritebackTimer() {
  if (writeback_timer_armed_) {
    return;
  }
  writeback_timer_armed_ = true;
  queue_.ScheduleAfter(config_.attr_writeback_interval, [this, alive = alive_]() {
    if (!*alive) {
      return;
    }
    writeback_timer_armed_ = false;
    FlushDirtyAttrs();
    if (!attr_cache_.DirtyFiles().empty()) {
      ArmWritebackTimer();
    }
  });
}

}  // namespace slice
